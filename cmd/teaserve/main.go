// Command teaserve hosts a fleet of compiled TEA images and serves
// concurrent replay/publish sessions over the length-prefixed wire
// protocol (internal/serve), with an admin HTTP surface for metrics and
// health probes.
//
// Usage:
//
//	teaserve                       # serve demo images on :7421, admin on :7422
//	teaserve -addr :9000           # wire listener address
//	teaserve -admin :9001          # admin HTTP (metrics, /healthz, /readyz)
//	teaserve -session-timeout 30s  # per-session context deadline
//	teaserve -max-concurrent 16    # per-tenant concurrent-session bound
//	teaserve -smoke                # self-test: serve on loopback, run a
//	                               # chaos subset through the client, shut
//	                               # down cleanly; exit 0 iff all invariants
//	                               # held
//
// The server hosts the paper's demo programs (figure1, figure2, repdemo,
// calldemo) recorded with the MRET strategy at startup, so a fresh binary
// is immediately serveable; production embedders use internal/serve
// directly and host their own images.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	tea "github.com/lsc-tea/tea"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/obs"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/serve"
	"github.com/lsc-tea/tea/internal/serve/client"
)

func main() {
	addr := flag.String("addr", ":7421", "wire listener address")
	admin := flag.String("admin", ":7422", "admin HTTP address (metrics, /healthz, /readyz)")
	sessionTimeout := flag.Duration("session-timeout", serve.DefaultSessionTimeout, "per-session context deadline")
	maxConcurrent := flag.Int("max-concurrent", serve.DefaultMaxConcurrent, "per-tenant concurrent-session bound")
	maxEdges := flag.Uint64("max-session-edges", 0, "per-session edge quota (0 = unbounded)")
	smoke := flag.Bool("smoke", false, "run the self-test chaos subset and exit")
	flag.Parse()

	cfg := serve.Config{Quota: serve.Quota{
		MaxConcurrent:   *maxConcurrent,
		MaxSessionEdges: *maxEdges,
		SessionTimeout:  *sessionTimeout,
	}}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "teaserve: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("teaserve: smoke ok")
		return
	}
	if err := run(cfg, *addr, *admin); err != nil {
		fmt.Fprintf(os.Stderr, "teaserve: %v\n", err)
		os.Exit(1)
	}
}

// demoImages builds and records the demo program fleet.
func demoImages() (map[string]*isa.Program, map[string]*core.Automaton, error) {
	programs := map[string]*isa.Program{
		"figure1":  progs.Figure1(6, 40),
		"figure2":  progs.Figure2(8, 30),
		"repdemo":  progs.RepDemo(30),
		"calldemo": progs.CallDemo(20),
	}
	automata := make(map[string]*core.Automaton, len(programs))
	for name, p := range programs {
		set, err := tea.RecordTraces(p, "mret", tea.TraceConfig{HotThreshold: 5})
		if err != nil {
			return nil, nil, fmt.Errorf("record %s: %w", name, err)
		}
		automata[name] = core.Build(set)
	}
	return programs, automata, nil
}

// run hosts the demo fleet and serves until SIGINT/SIGTERM, then drains.
func run(cfg serve.Config, addr, admin string) error {
	s := serve.NewServer(cfg)
	programs, automata, err := demoImages()
	if err != nil {
		return err
	}
	for name := range programs {
		if err := s.Host(name, programs[name], automata[name]); err != nil {
			return fmt.Errorf("host %s: %w", name, err)
		}
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: admin, Handler: s.Handler()}
	go func() { _ = httpSrv.ListenAndServe() }()
	fmt.Printf("teaserve: serving %d images on %s (admin %s)\n", len(programs), l.Addr(), admin)

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("teaserve: %v, draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	return s.Shutdown(ctx)
}

// runSmoke is the CI self-test: bring the server up on loopback, replay a
// clean session plus one session per wire-fault class through the retrying
// client, assert every session ends in the exact sequential-replay answer
// or a structured error, check the health endpoints flip on drain, and
// shut down within a bounded deadline.
func runSmoke(cfg serve.Config) error {
	cfg.IdleTimeout = 2 * time.Second
	s := serve.NewServer(cfg)
	programs, automata, err := demoImages()
	if err != nil {
		return err
	}
	for name := range programs {
		if err := s.Host(name, programs[name], automata[name]); err != nil {
			return fmt.Errorf("host %s: %w", name, err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	go func() { _ = s.Serve(l) }()

	// Ground truth: the in-process sequential replay of the same stream.
	const image = "figure1"
	p := programs[image]
	edges, _, err := tea.CaptureStream(p)
	if err != nil {
		return err
	}
	compiled := core.Compile(automata[image], cfg.Lookup)
	wantStats, wantFinal := core.SequentialReplay(compiled, edges)

	check := func(label string, dial func() (net.Conn, error)) error {
		c, err := client.New(client.Config{Tenant: "smoke", Dial: dial, Seed: 1})
		if err != nil {
			return err
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		stats, final, err := c.Replay(ctx, image, edges, 512)
		if err != nil {
			var serr *serve.Error
			if asStructured(err, &serr) {
				fmt.Printf("teaserve: smoke %-10s structured error: %v\n", label, serr)
				return nil
			}
			return fmt.Errorf("%s: unstructured failure: %w", label, err)
		}
		if *stats != wantStats || final != wantFinal {
			return fmt.Errorf("%s: stats diverged from sequential replay", label)
		}
		fmt.Printf("teaserve: smoke %-10s ok (%d edges, %d desyncs)\n", label, len(edges), stats.Desyncs)
		return nil
	}

	tcpDial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	if err := check("clean", tcpDial); err != nil {
		return err
	}
	// One session per fault class: the first connection is faulty, retries
	// dial clean — the client must converge through resume.
	for i, fault := range faultinject.WireFaults {
		fault := fault
		inj := faultinject.New(int64(100 + i))
		dials := 0
		dial := func() (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			if dials == 1 {
				return faultinject.NewFaultyConn(conn, inj, fault, 3, time.Millisecond), nil
			}
			return conn, nil
		}
		if err := check(fault.String(), dial); err != nil {
			return err
		}
	}

	// Flight-recorder leg: a second server with a tiny edge quota kills the
	// session with a structured error; the post-mortem artifact must be
	// fetchable over the admin surface and fully decodable, ending with the
	// EvSessionFail that terminated the session.
	if err := smokeFlight(cfg, programs, automata, edges); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	fmt.Printf("teaserve: smoke %-10s ok (quota kill -> decodable artifact)\n", "flight")

	// Drain: readiness must flip before the listener closes, liveness after.
	if !s.Health().Ready() {
		return fmt.Errorf("server not ready while serving")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if s.Health().Ready() || s.Health().Live() {
		return fmt.Errorf("health flags not cleared after shutdown")
	}
	return nil
}

// smokeFlight drives one quota-doomed session and verifies the flight
// recorder end to end: the artifact is served at /debug/flight/last on the
// admin surface, decodes cleanly, and its event log ends with the
// structured failure.
func smokeFlight(cfg serve.Config, programs map[string]*isa.Program, automata map[string]*core.Automaton, edges []core.Edge) error {
	cfg.Quota.MaxSessionEdges = 64
	cfg.IdleTimeout = 2 * time.Second
	s := serve.NewServer(cfg)
	const image = "figure1"
	if err := s.Host(image, programs[image], automata[image]); err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = s.Serve(l) }()
	al, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	admin := &http.Server{Handler: s.Handler()}
	go func() { _ = admin.Serve(al) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = admin.Shutdown(ctx)
		_ = s.Shutdown(ctx)
	}()

	c, err := client.New(client.Config{
		Tenant: "doomed",
		Dial:   func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) },
		Seed:   7,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, rerr := c.Replay(ctx, image, edges, 512)
	var serr *serve.Error
	if !asStructured(rerr, &serr) || serr.Code != serve.CodeQuotaSteps {
		return fmt.Errorf("expected quota-steps kill, got %v", rerr)
	}

	resp, err := http.Get("http://" + al.Addr().String() + "/debug/flight/last")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/flight/last: HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	rec, err := tea.DecodeFlight(raw)
	if err != nil {
		return fmt.Errorf("artifact does not decode: %w", err)
	}
	if rec.Reason != "session-fail" || rec.Err == "" || len(rec.Events) == 0 {
		return fmt.Errorf("artifact incoherent: reason=%q err=%q events=%d", rec.Reason, rec.Err, len(rec.Events))
	}
	last := rec.Events[len(rec.Events)-1]
	if last.Kind != obs.EvSessionFail || last.Aux != uint64(serve.CodeQuotaSteps) {
		return fmt.Errorf("artifact does not end with the structured kill: %+v", last)
	}
	return nil
}

// asStructured reports whether err is (or wraps) a *serve.Error.
func asStructured(err error, out **serve.Error) bool {
	for err != nil {
		if e, ok := err.(*serve.Error); ok {
			*out = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
