package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tea "github.com/lsc-tea/tea"
)

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestDumpEventsSourceColumn: the -events listing round-trips a log through
// the facade codec and renders the source-id column — a numeric id for
// attributed events, "-" for kernel events.
func TestDumpEventsSourceColumn(t *testing.T) {
	events := []tea.ObsEvent{
		{Edge: 4, Aux: 0x400, Src: 0, State: 2, Kind: 1}, // EvTraceEnter, unattributed
		{Edge: 9, Aux: 3, Src: 77, State: -1, Kind: 12},  // EvQuotaReject from session 77
	}
	path := filepath.Join(t.TempDir(), "trace.evlog")
	if err := os.WriteFile(path, tea.EncodeEvents(events), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { dumpEvents(path) })
	if !strings.Contains(out, "2 events") {
		t.Fatalf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "src        -") || !strings.Contains(lines[1], "TraceEnter") {
		t.Fatalf("kernel event line wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "src       77") || !strings.Contains(lines[2], "QuotaReject") {
		t.Fatalf("attributed event line wrong: %q", lines[2])
	}
}

// TestDumpFlightRoundTrip: a flight artifact encoded through the facade
// decodes and renders its trip metadata plus the embedded event suffix.
func TestDumpFlightRoundTrip(t *testing.T) {
	rec := tea.FlightRecord{
		Seq: 3, Reason: "session-fail", Src: 9, Err: "quota exhausted",
		Events: []tea.ObsEvent{
			{Edge: 100, Aux: 5, Src: 9, State: -1, Kind: 12}, // EvQuotaReject
			{Edge: 100, Aux: 5, Src: 9, State: -1, Kind: 11}, // EvSessionFail
		},
		Metrics: []byte(`[{"name":"tea_flight_trips_total","kind":"counter","value":1}]`),
	}
	path := filepath.Join(t.TempDir(), "flight.bin")
	if err := os.WriteFile(path, tea.EncodeFlight(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { dumpFlight(path) })
	for _, want := range []string{
		"flight artifact #3",
		"reason:  session-fail",
		"source:  9",
		"error:   quota exhausted",
		"events:  2",
		"SessionFail",
		"QuotaReject",
		"metrics: ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("flight dump missing %q:\n%s", want, out)
		}
	}
	// A corrupt artifact must be rejected by the decoder, not rendered.
	data := tea.EncodeFlight(rec)
	if _, err := tea.DecodeFlight(data[:len(data)-2]); err == nil {
		t.Fatal("truncated artifact decoded")
	}
}
