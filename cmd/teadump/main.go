// Command teadump inspects a serialized TEA: statistics, the full state
// listing in the paper's $$Ti.block notation, or Graphviz output.
//
// Decoding needs the program the TEA was recorded on (block metadata is
// re-discovered and cross-checked against the recorded shapes), so teadump
// takes the same -bench/-asm selectors as teaprof.
//
// Usage:
//
//	teadump -bench mcf file.tea              # statistics
//	teadump -bench mcf file.tea -states      # full state listing
//	teadump -bench mcf file.tea -dot         # Graphviz digraph
//	teadump -bench mcf file.tea -verify      # static invariant audit (exit 3 on findings)
//	teadump -bench mcf file.tea -verify -stride tab.teas  # also re-prove a stride table (C-STRIDE)
//	teadump -events trace.evlog              # decode a binary event log (teaprof -events)
//	teadump -flight flight.bin               # decode a flight-recorder artifact (/debug/flight)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	tea "github.com/lsc-tea/tea"
	"github.com/lsc-tea/tea/internal/cli"
	"github.com/lsc-tea/tea/internal/dcfg"
)

func main() {
	bench := flag.String("bench", "", "synthetic benchmark the TEA was recorded on")
	asmFile := flag.String("asm", "", "assembly source file instead of -bench")
	target := flag.Uint64("target", 1_000_000, "dynamic instruction target for -bench")
	states := flag.Bool("states", false, "print the full state listing")
	verify := flag.Bool("verify", false, "statically verify the TEA (automaton, compiled form, image); exit 3 on findings")
	strideFile := flag.String("stride", "", "with -verify: TEAS stride-table blob to attach and re-prove (C-STRIDE)")
	dot := flag.Bool("dot", false, "print a Graphviz digraph")
	dcfgDot := flag.Bool("dcfg", false, "print the dynamic CFG (code-replicating view, §3) as Graphviz")
	traceID := flag.Int("trace", 0, "disassemble one trace by ID (1-based)")
	events := flag.Bool("events", false, "treat the file argument as a binary event log (teaprof -events) and decode it")
	flight := flag.Bool("flight", false, "treat the file argument as a flight-recorder artifact (/debug/flight) and decode it")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "teadump: exactly one file argument is required")
		flag.Usage()
		os.Exit(2)
	}
	if *events {
		// Event logs are self-contained; no program or TEA is needed.
		dumpEvents(flag.Arg(0))
		return
	}
	if *flight {
		dumpFlight(flag.Arg(0))
		return
	}
	prog, err := cli.LoadProgram("teadump", *bench, *asmFile, *target)
	if err != nil {
		fail(err)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	a, err := tea.Decode(data, prog)
	if err != nil {
		fail(err)
	}

	if *verify {
		// Exit codes let CI distinguish the failure modes: 1 = the image did
		// not decode (handled above), 3 = it decoded but a rule fired.
		r := tea.Verify(a, prog, tea.ConfigGlobalLocal)
		strides := 0
		if *strideFile != "" {
			// A stride blob is verified like the image: decode is only a
			// structural bound; C-STRIDE then re-proves every entry against
			// this TEA's compiled form, so a blob recorded for a different
			// TEA (or tampered with) fails here even though it decoded.
			blob, err := os.ReadFile(*strideFile)
			if err != nil {
				fail(err)
			}
			tab, err := tea.DecodeStrideTable(blob)
			if err != nil {
				fail(fmt.Errorf("%s: %v", *strideFile, err))
			}
			strides = len(tab)
			r.Merge(tea.VerifyStrideTable(a, tea.ConfigGlobalLocal, tab))
		}
		if out := r.String(); out != "" {
			fmt.Print(out)
		}
		if len(r.Findings) > 0 {
			fmt.Fprintf(os.Stderr, "teadump: %s: %d finding(s)\n", flag.Arg(0), len(r.Findings))
			os.Exit(3)
		}
		if *strideFile != "" {
			fmt.Printf("verify: %s + %s ok (%d states, %d traces, %d stride entries, 0 findings)\n",
				flag.Arg(0), *strideFile, a.NumStates(), a.Set().Len(), strides)
			return
		}
		fmt.Printf("verify: %s ok (%d states, %d traces, 0 findings)\n",
			flag.Arg(0), a.NumStates(), a.Set().Len())
		return
	}

	switch {
	case *traceID > 0:
		var target *tea.Trace
		for _, tr := range a.Set().Traces {
			if int(tr.ID) == *traceID {
				target = tr
			}
		}
		if target == nil {
			fail(fmt.Errorf("no trace T%d (set has %d traces)", *traceID, a.Set().Len()))
		}
		fmt.Printf("%v\n", target)
		for _, tbb := range target.TBBs {
			fmt.Printf("%s:\n", tbb.Name())
			fmt.Print(indent(prog.Disassemble(tbb.Block.Head, tbb.Block.End+1)))
			for _, label := range tbb.SuccLabels() {
				fmt.Printf("    --0x%x--> %s\n", label, tbb.Succs[label].Name())
			}
		}
	case *dcfgDot:
		g := dcfg.FromSet(a.Set())
		fmt.Print(g.Dot(flag.Arg(0)))
	case *dot:
		fmt.Print(tea.Dot(a, flag.Arg(0)))
	case *states:
		fmt.Print(tea.Summary(a))
	default:
		set := a.Set()
		fmt.Printf("file:       %s (%d bytes)\n", flag.Arg(0), len(data))
		fmt.Printf("strategy:   %s\n", set.Strategy)
		fmt.Printf("traces:     %d\n", set.Len())
		fmt.Printf("TBB states: %d (+1 NTE)\n", set.NumTBBs())
		fmt.Printf("in-trace transitions: %d\n", a.NumTrans())
		fmt.Printf("code replication equivalent: %d bytes (savings %.0f%%)\n",
			tea.CodeBytes(set), (1-float64(len(data))/float64(tea.CodeBytes(set)))*100)

		// Size histogram of traces.
		sizes := make([]int, set.Len())
		for i, t := range set.Traces {
			sizes[i] = t.Len()
		}
		sort.Ints(sizes)
		if n := len(sizes); n > 0 {
			fmt.Printf("trace sizes: min %d, median %d, max %d TBBs\n",
				sizes[0], sizes[n/2], sizes[n-1])
		}
	}
}

// dumpEvents decodes a binary event log and prints one deterministic line
// per event: the logical edge timestamp, the source id (which session,
// shard or worker emitted it; "-" for unattributed kernel events), the
// kind, the automaton state the event concerns, and the kind-specific
// payload.
func dumpEvents(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	events, err := tea.DecodeEvents(data)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d events\n", path, len(events))
	printEvents(events)
}

// printEvents renders decoded events in the deterministic -events layout.
func printEvents(events []tea.ObsEvent) {
	for _, e := range events {
		src := "-"
		if e.Src != 0 {
			src = fmt.Sprintf("%d", e.Src)
		}
		fmt.Printf("edge %8d  src %8s  %-14v state %4d  aux 0x%x\n", e.Edge, src, e.Kind, e.State, e.Aux)
	}
}

// dumpFlight decodes one flight-recorder artifact: the trip metadata, the
// embedded event suffix (same layout as -events), and the size of the
// frozen registry snapshot.
func dumpFlight(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	rec, err := tea.DecodeFlight(data)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: flight artifact #%d\n", path, rec.Seq)
	fmt.Printf("reason:  %s\n", rec.Reason)
	fmt.Printf("source:  %d\n", rec.Src)
	if rec.Err != "" {
		fmt.Printf("error:   %s\n", rec.Err)
	}
	fmt.Printf("events:  %d (%d overwritten before snapshot)\n", len(rec.Events), rec.Dropped)
	printEvents(rec.Events)
	fmt.Printf("metrics: %d bytes of registry snapshot\n", len(rec.Metrics))
}

// indent prefixes every line with two spaces.
func indent(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "teadump: %v\n", err)
	os.Exit(1)
}
