// Command teavet is the repository's typed static-analysis suite — four
// analyzers over the fully typechecked module (internal/analysis/driver),
// each guarding a load-bearing runtime invariant at the source level:
//
//	hotalloc  — no allocation-inducing constructs in //tea:hotpath
//	            functions or their intra-module callee closure (the static
//	            complement to the 0 allocs/edge bench gates);
//	atomicmix — no plain load/store of a field that is accessed through
//	            sync/atomic elsewhere (the mixed-access race class -race
//	            only catches when the schedule cooperates);
//	wirelock  — the serve Code taxonomy and obs EventKind tags diffed
//	            against cmd/teavet/wirelock.json: renumbering or removing
//	            a wire value is a hard failure, appending updates the
//	            golden via -update;
//	failsem   — the old tealint panic-site / exported-no-error ratchet,
//	            ported onto typed analysis.
//
// hotalloc, atomicmix and failsem findings are ratcheted against
// cmd/teavet/baseline.txt ("key count" lines): only findings beyond the
// baseline fail, so deliberate slow-path allocations stay recorded (with
// justification comments) instead of demanding a flag-day cleanup.
// wirelock findings are hard failures a baseline cannot absorb.
//
// Usage (from the repository root, as scripts/ci.sh does):
//
//	go run ./cmd/teavet            # vet against baseline + golden
//	go run ./cmd/teavet -update    # rewrite baseline, lock appended wire values
//
// Exit codes: 0 clean, 1 findings, 2 internal error — mirrored by the CI
// negative self-test, which runs the suite over cmd/teavet/testdata/selftest
// (a fixture module every analyzer must flag) and requires exit 1.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/lsc-tea/tea/internal/analysis/atomicmix"
	"github.com/lsc-tea/tea/internal/analysis/driver"
	"github.com/lsc-tea/tea/internal/analysis/failsem"
	"github.com/lsc-tea/tea/internal/analysis/hotalloc"
	"github.com/lsc-tea/tea/internal/analysis/wirelock"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	baselinePath := flag.String("baseline", "cmd/teavet/baseline.txt", "ratchet baseline (relative to -root)")
	wirelockPath := flag.String("wirelock", "cmd/teavet/wirelock.json", "wire-stability golden (relative to -root)")
	update := flag.Bool("update", false, "rewrite the baseline and lock appended wire values")
	flag.Parse()
	os.Exit(run(*root, *baselinePath, *wirelockPath, *update, os.Stdout))
}

// maxExamples bounds the per-key positions printed for beyond-baseline
// findings.
const maxExamples = 3

// run executes the suite; factored out of main so tests drive the exact CLI
// semantics, exit code included.
func run(root, baselineRel, wirelockRel string, update bool, out io.Writer) int {
	baselineAbs := filepath.Join(root, baselineRel)
	wirelockAbs := filepath.Join(root, wirelockRel)

	prog, err := driver.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teavet:", err)
		return 2
	}

	if update {
		if err := wirelock.Update(wirelockAbs, prog, nil); err != nil {
			fmt.Fprintln(os.Stderr, "teavet:", err)
			return 2
		}
		fmt.Fprintf(out, "teavet: wirelock golden updated (%s)\n", wirelockRel)
	}

	analyzers := []*driver.Analyzer{
		hotalloc.Analyzer,
		atomicmix.Analyzer,
		wirelock.New(wirelockAbs, nil),
		failsem.Analyzer,
	}

	counts := make(map[string]int)        // ratchet key -> occurrences
	examples := make(map[string][]string) // ratchet key -> example positions
	var hard []driver.Diagnostic
	for _, a := range analyzers {
		diags, err := driver.Run(prog, a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teavet:", err)
			return 2
		}
		for _, d := range diags {
			if d.Key == "" {
				hard = append(hard, d)
				continue
			}
			counts[d.Key]++
			if len(examples[d.Key]) < maxExamples {
				examples[d.Key] = append(examples[d.Key], relPos(root, d)+": "+d.Message)
			}
		}
	}

	if update {
		if err := writeBaseline(baselineAbs, counts); err != nil {
			fmt.Fprintln(os.Stderr, "teavet:", err)
			return 2
		}
		fmt.Fprintf(out, "teavet: baseline updated (%d keys)\n", len(counts))
		if len(hard) > 0 {
			reportHard(out, root, hard)
			return 1
		}
		return 0
	}

	bad := 0
	if len(hard) > 0 {
		reportHard(out, root, hard)
		bad += len(hard)
	}

	baseline, err := readBaseline(baselineAbs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teavet:", err)
		return 2
	}
	for _, key := range sortedKeys(counts) {
		if counts[key] > baseline[key] {
			fmt.Fprintf(out, "teavet: %s: %d occurrence(s), baseline allows %d\n", key, counts[key], baseline[key])
			for _, pos := range examples[key] {
				fmt.Fprintf(out, "teavet:   at %s\n", pos)
			}
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "teavet: %d finding(s); fix them or, for ratcheted keys on an intentional change, run `go run ./cmd/teavet -update`\n", bad)
		return 1
	}
	for _, key := range sortedKeys(baseline) {
		if counts[key] < baseline[key] {
			fmt.Fprintf(out, "teavet: note: %s below baseline (%d < %d); consider -update\n", key, counts[key], baseline[key])
		}
	}
	fmt.Fprintf(out, "teavet: ok (%d keyed sites within baseline, %d analyzers)\n", len(counts), len(analyzers))
	return 0
}

// reportHard prints the un-ratchetable findings.
func reportHard(out io.Writer, root string, hard []driver.Diagnostic) {
	for _, d := range hard {
		pos := "-"
		if d.Pos.IsValid() {
			pos = relPos(root, d)
		}
		fmt.Fprintf(out, "teavet: %s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
}

// relPos renders a diagnostic position relative to the module root.
func relPos(root string, d driver.Diagnostic) string {
	p := d.Pos
	if abs, err := filepath.Abs(root); err == nil {
		if rel, err := filepath.Rel(abs, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			return fmt.Sprintf("%s:%d:%d", filepath.ToSlash(rel), p.Line, p.Column)
		}
	}
	return p.String()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readBaseline parses "key count" lines, with optional trailing
// " # justification" comments; a missing file is an empty baseline (every
// finding is then beyond it).
func readBaseline(path string) (map[string]int, error) {
	out := make(map[string]int)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " #"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("%s: malformed baseline line %q", path, line)
		}
		n, err := strconv.Atoi(line[i+1:])
		if err != nil {
			return nil, fmt.Errorf("%s: malformed baseline line %q", path, line)
		}
		out[line[:i]] = n
	}
	return out, sc.Err()
}

func writeBaseline(path string, counts map[string]int) error {
	comments := readBaselineComments(path)
	var b strings.Builder
	b.WriteString("# teavet ratchet baseline: accepted findings per key, \"key count\" lines.\n")
	b.WriteString("# The suite fails only on findings beyond these counts; wirelock findings\n")
	b.WriteString("# are hard failures and never appear here. Regenerate (after reviewing\n")
	b.WriteString("# every change): go run ./cmd/teavet -update\n")
	for _, key := range sortedKeys(counts) {
		if c := comments[key]; c != "" {
			fmt.Fprintf(&b, "%s %d  # %s\n", key, counts[key], c)
		} else {
			fmt.Fprintf(&b, "%s %d\n", key, counts[key])
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaselineComments collects the per-key " # justification" comments from
// an existing baseline so -update preserves them across regeneration.
func readBaselineComments(path string) map[string]string {
	out := make(map[string]string)
	f, err := os.Open(path)
	if err != nil {
		return out
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.Index(line, " #")
		if i < 0 {
			continue
		}
		key := strings.TrimSpace(line[:i])
		if j := strings.LastIndexByte(key, ' '); j >= 0 {
			key = key[:j]
		}
		out[key] = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line[i:]), "#"))
	}
	return out
}
