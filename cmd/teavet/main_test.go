package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoClean runs the full suite over the repository exactly as CI does
// and requires a clean exit: the checked-in baseline and wirelock golden
// must match the tree this test ships with.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis load")
	}
	if code := run("../..", "cmd/teavet/baseline.txt", "cmd/teavet/wirelock.json", false, io.Discard); code != 0 {
		t.Fatalf("teavet over the repository exited %d, want 0 (run `go run ./cmd/teavet` for details)", code)
	}
}

// TestSelftest is the in-process half of the CI negative self-test: the
// fixture module must make every analyzer produce findings and the suite
// exit 1. If a rewrite of an analyzer silently stops flagging, this fails
// before CI does.
func TestSelftest(t *testing.T) {
	var buf bytes.Buffer
	code := run("testdata/selftest", "baseline.txt", "wirelock.json", false, &buf)
	if code != 1 {
		t.Fatalf("teavet over the selftest fixture exited %d, want 1\n%s", code, buf.String())
	}
	out := buf.String()
	for _, marker := range []string{
		"hotalloc core.Kernel make",
		"atomicmix core.Mixed.n plain",
		"failsem panic core.Reset",
		"wirelock: wire constant Code.CodeProto renumbered",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("selftest output lost the %q finding:\n%s", marker, out)
		}
	}
}

// TestBaselineRoundTrip pins the baseline grammar: counts parse, inline
// `# justification` comments are ignored by the reader but preserved by
// the writer across -update regeneration.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	orig := "# header\n" +
		"failsem panic core.X 2  # guards an API-misuse invariant\n" +
		"hotalloc core.Y make 1\n"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["failsem panic core.X"] != 2 || got["hotalloc core.Y make"] != 1 {
		t.Fatalf("readBaseline = %v", got)
	}
	// Regenerate with a changed count: the justification must survive.
	if err := writeBaseline(path, map[string]int{
		"failsem panic core.X":  1,
		"hotalloc core.Y make":  1,
		"atomicmix core.Z copy": 3,
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	if !strings.Contains(text, "failsem panic core.X 1  # guards an API-misuse invariant") {
		t.Errorf("justification comment lost across rewrite:\n%s", text)
	}
	reread, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if reread["failsem panic core.X"] != 1 || reread["atomicmix core.Z copy"] != 3 {
		t.Errorf("rewritten baseline rereads as %v", reread)
	}
}

// TestBaselineMalformed rejects lines without a trailing count.
func TestBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, []byte("justonetoken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}
