// Package obs matches its golden exactly; it exists so the selftest
// exercises a multi-group wirelock diff with exactly one drifting group.
package obs

// EventKind mirrors the repo's event-tag shape.
type EventKind uint8

const (
	EvEnter EventKind = 1
	EvExit  EventKind = 2
)
