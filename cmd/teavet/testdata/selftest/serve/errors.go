// Package serve renumbers a wire constant relative to wirelock.json, so
// wirelock must produce a hard finding here.
package serve

// Code mirrors the repo's wire-failure taxonomy shape.
type Code uint32

const (
	CodeOK    Code = 0
	CodeProto Code = 3 // renumbered: the golden records 1
)
