module selftest

go 1.22
