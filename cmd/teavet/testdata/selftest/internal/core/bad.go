// Package core violates hotalloc (allocations under //tea:hotpath),
// failsem (panic and exported no-error in a guarded path — the module's
// internal/core suffix matches the default guard list) and atomicmix
// (mixed plain/atomic field access). The selftest baseline is empty, so
// every keyed finding is beyond it and the suite must exit 1.
package core

import "sync/atomic"

var sink []int

// Kernel allocates on its hot path.
//
//tea:hotpath
func Kernel(n int) {
	buf := make([]int, n)
	sink = append(sink, buf...)
}

// Mixed drives a field through sync/atomic and plainly.
type Mixed struct {
	n uint64
}

// Bump is the atomic side.
func (m *Mixed) Bump() {
	atomic.AddUint64(&m.n, 1)
}

// Read is the racing plain side.
func (m *Mixed) Read() uint64 {
	return m.n
}

// Reset panics and returns no error — both failsem kinds at once.
func Reset(n int) {
	if n < 0 {
		panic("negative")
	}
}
