// Command teagen materializes the synthetic SPEC CPU2000 stand-ins as
// assembly source, so workloads can be inspected, modified and fed back to
// teaprof/teadump through -asm. The emitted source assembles back to the
// byte-identical program (asm.Write's round-trip guarantee).
//
// Usage:
//
//	teagen -bench mcf                       # write 181.mcf.s next to you
//	teagen -bench gcc -target 500000 -o -   # calibrated for 500k instrs, to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "synthetic benchmark name (e.g. mcf, 176.gcc)")
	target := flag.Uint64("target", 1_000_000, "dynamic instruction target for calibration")
	out := flag.String("o", "", "output file (default <name>.s, \"-\" for stdout)")
	flag.Parse()

	if *bench == "" {
		fmt.Fprintln(os.Stderr, "teagen: -bench is required; available:")
		for _, s := range workload.Benchmarks() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}
	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "teagen: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	p, err := workload.Generate(spec, *target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "teagen: %v\n", err)
		os.Exit(1)
	}
	text := asm.Write(p)

	path := *out
	if path == "" {
		path = spec.Name + ".s"
	}
	if path == "-" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "teagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "teagen: wrote %s (%d instructions, %d bytes of text)\n",
		path, p.Len(), len(text))
}
