// Command teabench regenerates the paper's evaluation tables (Tables 1-4)
// on the synthetic SPEC CPU2000 workloads.
//
// Usage:
//
//	teabench -table 1            # Table 1: size savings (MRET/CTT/TT)
//	teabench -table 2            # Table 2: replay coverage and time
//	teabench -table 3            # Table 3: recording coverage and time
//	teabench -table 4            # Table 4: transition-function ablation
//	teabench -table all          # everything
//	teabench -target 500000      # dynamic instructions per benchmark
//	teabench -bench gcc,swim     # subset of benchmarks
//	teabench -threshold 50       # hot threshold
//	teabench -replaybench BENCH_replay.json  # replay hot-path ns/edge + allocs/edge
//	teabench -recordbench BENCH_record.json  # recording hot-path ns/edge + allocs/edge
//	teabench -obsbench BENCH_obs.json        # observability layer overhead (off vs on)
//	teabench -pipebench BENCH_pipeline.json  # capture→process pipeline scaling + allocs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/lsc-tea/tea/internal/expr"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/workload"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1, 2, 3, 4 or all")
	target := flag.Uint64("target", 5_000_000, "dynamic instructions per benchmark")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default all 26)")
	threshold := flag.Int("threshold", 0, "hot threshold for trace selection (0 = scaled default)")
	parallel := flag.Int("parallel", 0, "worker goroutines (default GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	list := flag.Bool("list", false, "list the synthetic benchmarks and exit")
	replayBench := flag.String("replaybench", "", "run the replay micro-benchmark and write machine-readable results to this file (e.g. BENCH_replay.json)")
	recordBench := flag.String("recordbench", "", "run the recording micro-benchmark and write machine-readable results to this file (e.g. BENCH_record.json)")
	obsBench := flag.String("obsbench", "", "run the observability overhead micro-benchmark and write machine-readable results to this file (e.g. BENCH_obs.json)")
	pipeBench := flag.String("pipebench", "", "run the capture→process pipeline micro-benchmark and write machine-readable results to this file (e.g. BENCH_pipeline.json)")
	flag.Parse()
	emitJSON = *jsonOut

	if *list {
		fmt.Printf("%-14s %-5s %6s %6s %6s %7s %6s %5s\n",
			"benchmark", "suite", "funcs", "stmts", "loops", "iters", "branch", "bias")
		for _, s := range workload.Benchmarks() {
			fmt.Printf("%-14s %-5s %6d %6d %6d %7d %6.2f %5d\n",
				s.Name, s.Suite, s.Funcs, s.Stmts, s.LoopDepth, s.LoopIters, s.BranchProb, s.BiasBits)
		}
		return
	}

	opts := expr.Options{
		Target:   *target,
		TraceCfg: trace.Config{HotThreshold: *threshold},
		Parallel: *parallel,
	}
	if *benchList != "" {
		for _, name := range strings.Split(*benchList, ",") {
			spec, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "teabench: unknown benchmark %q\n", name)
				os.Exit(1)
			}
			opts.Benchmarks = append(opts.Benchmarks, spec)
		}
	}

	if *replayBench != "" {
		res, err := expr.RunReplayBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*replayBench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("=== Replay hot path: ns/edge and allocs/edge ===\n")
		fmt.Println(res.Render())
		fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", *replayBench)
		return
	}

	if *recordBench != "" {
		res, err := expr.RunRecordBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*recordBench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("=== Recording hot path: ns/edge and allocs/edge ===\n")
		fmt.Println(res.Render())
		fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", *recordBench)
		return
	}

	if *obsBench != "" {
		res, err := expr.RunObsBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*obsBench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("=== Observability layer: enabled vs disabled ns/edge ===\n")
		fmt.Println(res.Render())
		fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", *obsBench)
		return
	}

	if *pipeBench != "" {
		res, err := expr.RunPipeBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*pipeBench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("=== Capture→process pipeline: modeled scaling and allocs/edge ===\n")
		fmt.Println(res.Render())
		fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", *pipeBench)
		return
	}

	want := func(n string) bool { return *table == "all" || *table == n }
	start := time.Now()

	if want("1") {
		run("Table 1: Size Savings with TEA (KB)", func() (interface{ Render() string }, error) {
			return expr.RunTable1(opts)
		})
	}
	if want("2") {
		run("Table 2: TEA Runtime Aspects - Replaying (time in M units)", func() (interface{ Render() string }, error) {
			return expr.RunTable2(opts)
		})
	}
	if want("3") {
		run("Table 3: TEA Runtime Aspects - Recording (time in M units)", func() (interface{ Render() string }, error) {
			return expr.RunTable3(opts)
		})
	}
	if want("4") {
		run("Table 4: TEA Overhead for Various Configurations (x native)", func() (interface{ Render() string }, error) {
			return expr.RunTable4(opts)
		})
	}
	fmt.Fprintf(os.Stderr, "teabench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

// emitJSON switches output to machine-readable JSON.
var emitJSON bool

func run(title string, f func() (interface{ Render() string }, error)) {
	res, err := f()
	if err != nil {
		fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
		os.Exit(1)
	}
	if emitJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"title": title, "result": res}); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("=== %s ===\n", title)
	fmt.Println(res.Render())
}
