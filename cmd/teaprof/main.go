// Command teaprof is the "pintool" of the paper's evaluation: it records a
// TEA for a program, or loads a previously recorded TEA and replays (and
// optionally profiles) it against a fresh execution of the unmodified
// program.
//
// Usage:
//
//	teaprof -bench mcf -record out.tea              # record (Table 3 mode)
//	teaprof -bench mcf -replay out.tea              # replay (Table 2 mode)
//	teaprof -bench mcf -replay out.tea -profile     # + per-trace profile
//	teaprof -bench mcf -replay out.tea -compiled    # batched compiled replay
//	teaprof -bench mcf -replay out.tea -layout      # SoA/stride-table layout report
//	teaprof -bench mcf -replay out.tea -shards 4    # sharded parallel replay
//	teaprof -asm prog.s -record out.tea             # use an assembly file
//	teaprof -bench gcc -record out.tea -strategy tt # TT instead of MRET
//
// Observability (disabled unless requested; see DESIGN.md §12):
//
//	teaprof -bench mcf -replay out.tea -obs                  # + Prometheus metrics on stdout
//	teaprof -bench mcf -replay out.tea -obs -events t.evlog  # + binary event log (teadump -events)
//	teaprof -bench mcf -replay out.tea -serve :8080          # replay loop + /metrics, /debug/events, pprof
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	tea "github.com/lsc-tea/tea"
	"github.com/lsc-tea/tea/internal/cli"
)

func main() {
	bench := flag.String("bench", "", "synthetic benchmark name (e.g. mcf, 176.gcc)")
	asmFile := flag.String("asm", "", "assembly source file to run instead of -bench")
	target := flag.Uint64("target", 1_000_000, "dynamic instruction target for -bench")
	record := flag.String("record", "", "record a TEA and write it to this file")
	replay := flag.String("replay", "", "load a TEA from this file and replay it")
	strategy := flag.String("strategy", "mret", "trace strategy: mret, tt, ctt, mfet")
	threshold := flag.Int("threshold", 12, "hot threshold")
	profileFlag := flag.Bool("profile", false, "with -replay: collect and print the trace profile")
	top := flag.Int("top", 5, "with -profile: how many hottest traces to print")
	compiled := flag.Bool("compiled", false, "with -replay: replay through the compiled flat automaton")
	layout := flag.Bool("layout", false, "with -replay: print the compiled form's memory-layout report (SoA residency, stride-table occupancy, cycle hit rate)")
	shards := flag.Int("shards", 1, "with -replay: capture the block stream and replay it in N parallel shards")
	pipelineFlag := flag.Bool("pipeline", false, "decouple capture from processing: sequenced chunks, scan workers, reconciling drain (works with -record and -replay)")
	workers := flag.Int("workers", 0, "with -pipeline: scan worker count (0 = GOMAXPROCS)")
	chunkEdges := flag.Int("chunk", 0, "with -pipeline: edges per chunk (0 = default 4096)")
	obsFlag := flag.Bool("obs", false, "attach the observability layer and print Prometheus metrics after the run")
	eventsOut := flag.String("events", "", "with -obs: write the drained binary event log to this file (decode with teadump -events)")
	serve := flag.String("serve", "", "with -replay: replay the stream in a loop and serve /metrics, /metrics.json, /debug/events and /debug/pprof on this address")
	flag.Parse()

	prog, err := cli.LoadProgram("teaprof", *bench, *asmFile, *target)
	if err != nil {
		fail(err)
	}

	var o *tea.Obs
	if *obsFlag || *eventsOut != "" || *serve != "" {
		o = tea.NewObs()
	}

	pcfg := tea.PipelineConfig{Workers: *workers, ChunkEdges: *chunkEdges, Obs: o}

	switch {
	case *record != "":
		if *pipelineFlag {
			a, stats, pm, err := tea.RecordPipeline(prog, *strategy, tea.TraceConfig{HotThreshold: *threshold}, pcfg)
			if err != nil {
				fail(err)
			}
			data, err := tea.Encode(a)
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*record, data, 0o644); err != nil {
				fail(err)
			}
			set := a.Set()
			fmt.Printf("pipeline-recorded %d traces (%d TBBs) with %s\n", set.Len(), set.NumTBBs(), *strategy)
			fmt.Printf("recording-run coverage: %.1f%% of %d instructions\n", stats.Coverage()*100, stats.Instrs)
			printPipeMetrics(pm)
			emitObs(o, *eventsOut)
			return
		}
		a, stats, err := tea.RecordOnlineObs(prog, *strategy, tea.TraceConfig{HotThreshold: *threshold}, tea.ConfigGlobalLocal, o)
		if err != nil {
			fail(err)
		}
		data, err := tea.Encode(a)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*record, data, 0o644); err != nil {
			fail(err)
		}
		set := a.Set()
		fmt.Printf("recorded %d traces (%d TBBs) with %s\n", set.Len(), set.NumTBBs(), *strategy)
		fmt.Printf("recording-run coverage: %.1f%% of %d instructions\n", stats.Coverage()*100, stats.Instrs)
		fmt.Printf("wrote %s: %d bytes (code replication would take %d bytes, %.0f%% savings)\n",
			*record, len(data), tea.CodeBytes(set),
			(1-float64(len(data))/float64(tea.CodeBytes(set)))*100)
		emitObs(o, *eventsOut)

	case *replay != "":
		data, err := os.ReadFile(*replay)
		if err != nil {
			fail(err)
		}
		a, err := tea.Decode(data, prog)
		if err != nil {
			fail(err)
		}
		if *serve != "" {
			serveObs(prog, a, o, *shards, *serve)
			return
		}
		if *layout {
			// Specialize against the program's own captured stream so the
			// report shows the stride table this TEA would actually carry,
			// then replay once to measure how much of the stream it fuses.
			stream, _, err := tea.CaptureStream(prog)
			if err != nil {
				fail(err)
			}
			sp := tea.Specialize(tea.Compile(a, tea.ConfigGlobalLocal), stream)
			fmt.Print(tea.CompiledLayout(sp))
			r := tea.NewCompiledReplayer(sp)
			r.AdvanceBatch(stream)
			if len(stream) > 0 {
				fmt.Printf("cycle hit rate:      %.1f%% of %d captured edges consumed by fused cycles\n",
					100*float64(r.StrideEdges())/float64(len(stream)), len(stream))
			}
			return
		}
		if *pipelineFlag {
			stats, pm, err := tea.ReplayPipeline(prog, a, pcfg)
			if err != nil {
				fail(err)
			}
			fmt.Printf("pipeline replay: %d chunks drained\n", pm.Drained)
			printStats(stats)
			printPipeMetrics(pm)
			emitObs(o, *eventsOut)
			return
		}
		if *shards > 1 {
			stream, tail, err := tea.CaptureStream(prog)
			if err != nil {
				fail(err)
			}
			c := tea.Compile(a, tea.ConfigGlobalLocal)
			stats, final := tea.ParallelReplayObs(c, stream, *shards, o)
			stats.AccountTail(final, tail)
			fmt.Printf("parallel replay: %d edges in %d shards\n", len(stream), *shards)
			printStats(&stats)
			emitObs(o, *eventsOut)
			return
		}
		if *compiled {
			if o != nil {
				stream, tail, err := tea.CaptureStream(prog)
				if err != nil {
					fail(err)
				}
				r := tea.NewCompiledReplayer(tea.Compile(a, tea.ConfigGlobalLocal))
				r.SetObs(o)
				r.AdvanceBatch(stream)
				stats := *r.Stats()
				stats.AccountTail(r.Cur(), tail)
				printStats(&stats)
				emitObs(o, *eventsOut)
				return
			}
			stats, err := tea.ReplayCompiled(prog, a, tea.ConfigGlobalLocal)
			if err != nil {
				fail(err)
			}
			printStats(stats)
			return
		}
		if *profileFlag {
			prof, stats, err := tea.ProfileReplay(prog, a, tea.ConfigGlobalLocal, nil)
			if err != nil {
				fail(err)
			}
			printStats(stats)
			fmt.Printf("\nhottest traces:\n")
			for _, h := range prof.HottestTraces(*top) {
				fmt.Printf("  %-28v entered %8d  instrs %10d  exit ratio %.3f\n",
					h.Trace, h.Enters, h.Instrs, prof.ExitRatio(h.Trace))
			}
			return
		}
		stats, err := tea.ReplayObs(prog, a, tea.ConfigGlobalLocal, o)
		if err != nil {
			fail(err)
		}
		printStats(stats)
		emitObs(o, *eventsOut)

	default:
		fmt.Fprintln(os.Stderr, "teaprof: one of -record or -replay is required")
		flag.Usage()
		os.Exit(2)
	}
}

// emitObs prints the Prometheus exposition after an observed run and, when
// requested, writes the drained binary event log.
func emitObs(o *tea.Obs, eventsOut string) {
	if o == nil {
		return
	}
	if eventsOut != "" {
		events, dropped := o.Tracer.Drain()
		if err := os.WriteFile(eventsOut, tea.EncodeEvents(events), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %d events (%d dropped by the ring)\n", eventsOut, len(events), dropped)
	}
	fmt.Println()
	if err := o.Reg.WritePrometheus(os.Stdout); err != nil {
		fail(err)
	}
}

// serveObs replays the captured stream in a loop while serving the
// observability endpoints; it blocks until the process is killed.
func serveObs(prog *tea.Program, a *tea.Automaton, o *tea.Obs, shards int, addr string) {
	stream, _, err := tea.CaptureStream(prog)
	if err != nil {
		fail(err)
	}
	c := tea.Compile(a, tea.ConfigGlobalLocal)
	go func() {
		for {
			tea.ParallelReplayObs(c, stream, shards, o)
		}
	}()
	fmt.Printf("serving /metrics, /metrics.json, /debug/events, /debug/pprof on %s (replaying %d edges in a loop, %d shard(s))\n",
		addr, len(stream), shards)
	if err := http.ListenAndServe(addr, tea.ObsHandler(o)); err != nil {
		fail(err)
	}
}

// printPipeMetrics prints the pipeline's self-telemetry after a -pipeline
// run.
func printPipeMetrics(m tea.PipelineMetrics) {
	fmt.Printf("pipeline: %d chunks, %d backpressure waits, %d quiet / %d handoff / %d sequential, %d recompiles\n",
		m.Drained, m.BackpressureWaits, m.QuietChunks, m.Handoffs, m.SeqChunks, m.Recompiles)
}

func printStats(s *tea.ReplayStats) {
	fmt.Printf("replay coverage: %.1f%% of %d instructions (%d blocks)\n",
		s.Coverage()*100, s.Instrs, s.Blocks)
	fmt.Printf("transitions: %d in-trace, %d enters, %d links, %d exits\n",
		s.InTraceHits, s.TraceEnters, s.TraceLinks, s.TraceExits)
	fmt.Printf("lookups: %d local hits, %d local misses, %d global (%d hits)\n",
		s.LocalHits, s.LocalMisses, s.GlobalLookups, s.GlobalHits)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "teaprof: %v\n", err)
	os.Exit(1)
}
