package main

import (
	"path/filepath"
	"testing"
)

// TestCollectFindsKnownSites: the lint sees the two accepted panic call
// sites and classifies exported no-error functions.
func TestCollectFindsKnownSites(t *testing.T) {
	findings, err := collect("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"panic trace.mustLink", "panic isa.(*Program).MustAt", "noerror core.Build"} {
		if findings[key] == 0 {
			t.Errorf("missing expected finding %q", key)
		}
	}
	// Error-returning exported functions must NOT be flagged.
	if _, ok := findings["noerror core.Encode"]; ok {
		t.Error("core.Encode returns error but was flagged")
	}
}

// TestBaselineRoundTrip: the baseline format round-trips through
// write/read, and the current tree is within the checked-in baseline.
func TestBaselineRoundTrip(t *testing.T) {
	findings, err := collect("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "baseline.txt")
	if err := writeBaseline(tmp, findings); err != nil {
		t.Fatal(err)
	}
	back, err := readBaseline(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(findings) {
		t.Fatalf("round trip lost entries: %d != %d", len(back), len(findings))
	}
	for k, v := range findings {
		if back[k] != v {
			t.Errorf("%s: %d != %d", k, back[k], v)
		}
	}

	baseline, err := readBaseline(filepath.Join("../..", "cmd/tealint/baseline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range findings {
		if v > baseline[k] {
			t.Errorf("%s: %d occurrence(s) beyond checked-in baseline %d", k, v, baseline[k])
		}
	}
}
