// Command tealint is deprecated: its panic-site and exported-no-error
// ratchet moved into cmd/teavet's failsem analyzer, which runs on full type
// information (a shadowed panic no longer counts; a concrete *serve.Error
// result satisfies the error convention) and shares one baseline with the
// hotalloc and atomicmix checks at cmd/teavet/baseline.txt.
//
// This shim exists so stale invocations fail loudly with a pointer instead
// of silently vetting nothing. It performs no analysis and always exits 2.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Fprintln(os.Stderr, "tealint is deprecated: the panic/no-error ratchet is now cmd/teavet's failsem analyzer.")
	fmt.Fprintln(os.Stderr, "run instead:  go run ./cmd/teavet          (vet against cmd/teavet/baseline.txt)")
	fmt.Fprintln(os.Stderr, "              go run ./cmd/teavet -update  (re-ratchet after an intentional change)")
	os.Exit(2)
}
