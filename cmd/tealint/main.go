// Command tealint is a stdlib go/ast source lint enforcing the repository's
// failure-semantics conventions in the packages that own them:
//
//   - no new panic( calls in internal/core, internal/optim, internal/trace,
//     internal/isa, internal/serve (+ client) and internal/faultinject —
//     the panic→error conversions keep regressing risk,
//     so panics are ratcheted: every existing call site is recorded in a
//     baseline, and any call beyond the baseline fails the lint;
//   - exported functions in those packages that return no error are flagged
//     the same way, so new API defaults to reporting failures as errors.
//
// The baseline lives at cmd/tealint/baseline.txt; regenerate it with
// `go run ./cmd/tealint -update` after an intentional change. The lint
// fails (exit 1) only on findings beyond the baseline, so it ratchets
// downward without demanding a flag-day cleanup.
//
// Usage (from the repository root, as scripts/ci.sh does):
//
//	go run ./cmd/tealint            # lint against the baseline
//	go run ./cmd/tealint -update    # rewrite the baseline
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// lintDirs are the packages whose failure semantics the lint guards.
var lintDirs = []string{
	"internal/core",
	"internal/optim",
	"internal/trace",
	"internal/isa",
	"internal/serve",
	"internal/serve/client",
	"internal/faultinject",
}

func main() {
	root := flag.String("root", ".", "repository root")
	baselinePath := flag.String("baseline", "cmd/tealint/baseline.txt", "baseline file (relative to -root)")
	update := flag.Bool("update", false, "rewrite the baseline from the current source")
	flag.Parse()

	findings, err := collect(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tealint:", err)
		os.Exit(2)
	}
	path := filepath.Join(*root, *baselinePath)
	if *update {
		if err := writeBaseline(path, findings); err != nil {
			fmt.Fprintln(os.Stderr, "tealint:", err)
			os.Exit(2)
		}
		fmt.Printf("tealint: baseline updated (%d entries)\n", len(findings))
		return
	}
	baseline, err := readBaseline(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tealint:", err)
		os.Exit(2)
	}

	bad := 0
	for _, key := range sortedKeys(findings) {
		if findings[key] > baseline[key] {
			fmt.Printf("tealint: %s: %d occurrence(s), baseline allows %d\n", key, findings[key], baseline[key])
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "tealint: %d finding(s) beyond baseline; convert to errors or run `go run ./cmd/tealint -update` for an intentional change\n", bad)
		os.Exit(1)
	}
	// Stale entries are informational: the ratchet moved down.
	for _, key := range sortedKeys(baseline) {
		if findings[key] < baseline[key] {
			fmt.Printf("tealint: note: %s below baseline (%d < %d); consider -update\n", key, findings[key], baseline[key])
		}
	}
	fmt.Printf("tealint: ok (%d call sites within baseline)\n", len(findings))
}

// collect parses every non-test file in the linted packages and counts the
// two finding kinds, keyed "kind pkg.Func".
func collect(root string) (map[string]int, error) {
	out := make(map[string]int)
	fset := token.NewFileSet()
	for _, dir := range lintDirs {
		pkg := filepath.Base(dir)
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(root, dir, name), nil, 0)
			if err != nil {
				return nil, err
			}
			lintFile(out, pkg, f)
		}
	}
	return out, nil
}

// lintFile records panic call sites per enclosing function and exported
// functions whose results carry no error.
func lintFile(out map[string]int, pkg string, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn := funcKey(pkg, fd)
		if fd.Body != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					out["panic "+fn]++
				}
				return true
			})
		}
		if fd.Name.IsExported() && !returnsError(fd.Type) {
			out["noerror "+fn] = 1
		}
	}
}

// funcKey renders pkg.Func or pkg.(*Recv).Method.
func funcKey(pkg string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return pkg + "." + recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return pkg + "." + fd.Name.Name
}

func recvString(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(e.X) + ")"
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvString(e.X)
	case *ast.IndexListExpr:
		return recvString(e.X)
	default:
		return "?"
	}
}

// returnsError reports whether any result type is the predeclared error.
func returnsError(ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readBaseline parses "key count" lines; missing file means empty baseline.
func readBaseline(path string) (map[string]int, error) {
	out := make(map[string]int)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("%s: malformed baseline line %q", path, line)
		}
		n, err := strconv.Atoi(line[i+1:])
		if err != nil {
			return nil, fmt.Errorf("%s: malformed baseline line %q", path, line)
		}
		out[line[:i]] = n
	}
	return out, sc.Err()
}

func writeBaseline(path string, findings map[string]int) error {
	var b strings.Builder
	b.WriteString("# tealint baseline: accepted panic call sites and exported no-error\n")
	b.WriteString("# functions in the guarded packages (see lintDirs). The lint fails only on\n")
	b.WriteString("# findings beyond these counts. Regenerate: go run ./cmd/tealint -update\n")
	for _, key := range sortedKeys(findings) {
		fmt.Fprintf(&b, "%s %d\n", key, findings[key])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
