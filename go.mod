module github.com/lsc-tea/tea

go 1.22
