#!/usr/bin/env bash
# Repository verification gate: static checks, the full test suite under the
# race detector (which covers the sharded parallel-replay tests), a
# one-iteration smoke of every benchmark so the bench code cannot rot
# silently, and a short fuzz run over the wire-format decoder (the
# robustness surface most exposed to hostile input). Run from the repo root:
#
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./...
go test -race -run 'Parallel' . ./internal/core
go test -run='^$' -bench=. -benchtime=1x ./...
go test -run='^$' -fuzz=FuzzDecode -fuzztime=10s ./internal/core
