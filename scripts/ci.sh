#!/usr/bin/env bash
# Repository verification gate: static checks, the full test suite under the
# race detector (which covers the sharded parallel-replay tests), a
# one-iteration smoke of every benchmark so the bench code cannot rot
# silently, a short fuzz run over the wire-format decoder (the robustness
# surface most exposed to hostile input), the teavet typed-analysis suite
# (with a negative self-test proving the analyzers still flag), and the
# static-verifier gate: every checked-in valid corpus image must verify with
# zero findings, and the known-bad image (decodes cleanly, CFG-impossible
# link) must be flagged. Run from the repo root:
#
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Formatting gate: gofmt must be clean everywhere, fixture modules under
# testdata/ included (they are parsed by the analysis tests).
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "ci: gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./...
go test -race -run 'Parallel' . ./internal/core
go test -run='^$' -bench=. -benchtime=1x ./...
go test -run='^$' -fuzz=FuzzDecode -fuzztime=10s ./internal/core
go test -run='^$' -fuzz=FuzzDecodeEvents -fuzztime=10s ./internal/obs
go test -run='^$' -fuzz=FuzzDecodeFlight -fuzztime=10s ./internal/obs

# Serving-layer gate: the wire/session/breaker suites and the chaos matrix
# under the race detector — including the flight-recorder suffix check, which
# requires every fault-class kill to leave a decodable post-mortem artifact —
# then the teaserve smoke: a live server replayed through every injected
# wire-fault class, requiring byte-exact stats or structured errors
# (DESIGN.md §13), plus the quota-kill flight leg fetched over the admin
# HTTP surface (DESIGN.md §17).
go test -race ./internal/serve/... ./internal/faultinject
go run ./cmd/teaserve -smoke
echo "ci: serve gate ok"

bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT

# Typed static-analysis gate: the four teavet analyzers (hotalloc,
# atomicmix, wirelock, failsem) against the checked-in ratchet baseline and
# wire-format golden. Built as a binary so the exact exit code is visible
# (`go run` collapses every nonzero status to 1).
go build -o "$bin/teavet" ./cmd/teavet
"$bin/teavet"
# Negative self-test, mirroring the badcfg.bin check below: the fixture
# module must keep producing findings from every analyzer (exit 1). If a
# refactor makes an analyzer silently stop flagging, this catches it.
rc=0
"$bin/teavet" -root cmd/teavet/testdata/selftest \
    -baseline baseline.txt -wirelock wirelock.json \
    > "$bin/selftest.out" || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "ci: teavet selftest should exit 1 (findings), got $rc" >&2
    cat "$bin/selftest.out" >&2
    exit 1
fi
for analyzer in hotalloc atomicmix wirelock failsem; do
    if ! grep -q "$analyzer" "$bin/selftest.out"; then
        echo "ci: teavet selftest lost its $analyzer findings" >&2
        cat "$bin/selftest.out" >&2
        exit 1
    fi
done
echo "ci: teavet gate ok"

# Static-verifier gate. Built as a binary so the exact exit code is visible
# (`go run` collapses every nonzero status to 1).
go build -o "$bin/teadump" ./cmd/teadump
for f in internal/core/testdata/decode_corpus/*-valid.bin; do
    "$bin/teadump" -bench figure2 -verify "$f"
done
# Negative test: the forged image must decode yet fail verification (exit 3).
rc=0
"$bin/teadump" -bench figure2 -verify internal/verify/testdata/badcfg.bin || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "ci: badcfg.bin should exit 3 (verifier findings), got $rc" >&2
    exit 1
fi
# Stride-table corpus (C-STRIDE): the table Specialize admitted for the
# steady-state TEA must verify clean, and the forged blob — identical wire
# format, one per-traversal delta off by one — must be flagged (exit 3).
# The forgery is invisible to the decoder; only the admission re-proof
# against the compiled form can catch it.
"$bin/teadump" -bench 901.steady -target 200000 -verify \
    -stride internal/verify/testdata/goodstride.teas internal/verify/testdata/steady.tea
rc=0
"$bin/teadump" -bench 901.steady -target 200000 -verify \
    -stride internal/verify/testdata/badstride.teas internal/verify/testdata/steady.tea || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "ci: badstride.teas should exit 3 (C-STRIDE findings), got $rc" >&2
    exit 1
fi
echo "ci: verify gate ok"

# Recording fast-path gate: a quick recordbench run must hold the batched
# recorder's hard invariant — zero steady-state allocations per edge. The
# instruction target is deliberately small (the smoke is about allocs, not
# timing), so benchdiff skips the ns/edge comparison against the checked-in
# baseline; rerun teabench with the baseline's target before trusting a
# timing diff.
go run ./cmd/teabench -recordbench "$bin/record.json" -target 300000 -bench gcc
go run ./scripts/benchdiff -base BENCH_record.json -new "$bin/record.json" -zero-allocs batch
echo "ci: recordbench gate ok"

# Replay fast-path gate: a one-benchmark smoke run of the replay
# micro-benchmark is compared row-by-row against the checked-in baseline
# (-gate compares ns/edge on the shared rows only, so the mcf subset is
# fine). The exact zero-alloc claim is checked by the obsbench gate below,
# whose allocs come from testing.AllocsPerRun; replaybench's are averaged
# out of the timing loop and legitimately show stray one-time allocations.
go run ./cmd/teabench -replaybench "$bin/replay.json" -target 300000 -bench mcf
go run ./scripts/benchdiff -base BENCH_replay.json -new "$bin/replay.json" -gate 25
echo "ci: replaybench gate ok"

# Stride speedup gate: on the steady-state cycle workloads the fused
# trace-cycle kernel must deliver at least 1.5× over the plain batched
# kernel. The gate is a ratio inside one run, so host speed drops out; the
# measured margin is ~8× (901.steady) and ~2.7× (902.stream), leaving
# honest headroom for a throttled runner. The exact zero-alloc claim for
# the stride kernel is checked by the obsbench gate below (AllocsPerRun is
# precise; replaybench's loop-averaged allocs legitimately show stray
# one-time allocations).
go run ./cmd/teabench -replaybench "$bin/stride.json" -target 300000 -bench 901.steady,902.stream
go run ./scripts/benchdiff -new "$bin/stride.json" \
    -faster compiled-stride:compiled-batch:1.5:901.steady,902.stream
echo "ci: stride gate ok"

# Observability gate: with no context attached the instrumented fast paths
# must stay at their BENCH_obs.json numbers — in particular every compiled
# kernel (batch and stride) stays exactly zero allocs/edge in both modes —
# and enabling the layer must not regress past its own checked-in baseline.
# The serve-session rows ride the same gate: a full wire Replay per pass,
# session events off (DisableSessionEvents) vs on, so the cost of the
# session event stream is regression-tested alongside the replay kernels.
go run ./cmd/teabench -obsbench "$bin/obs.json" -target 300000 -bench mcf
go run ./scripts/benchdiff -base BENCH_obs.json -new "$bin/obs.json" -gate 30 -zero-allocs compiled
# Same claims where the stride kernel actually fuses: on 901.steady the
# fused runs dominate (~99.9% of the stream), so this is the row that holds
# the stride consume loops — prefetch included — to zero allocations.
go run ./cmd/teabench -obsbench "$bin/obs9.json" -target 300000 -bench 901.steady
go run ./scripts/benchdiff -base BENCH_obs.json -new "$bin/obs9.json" -gate 40 -zero-allocs compiled
echo "ci: obsbench gate ok"

# Pipeline gate: the decoupled capture→process pipeline must stay
# byte-identical to sequential under the race detector (the property test
# randomizes worker counts and chunk sizes), and a one-benchmark smoke of
# the pipeline micro-benchmark must hold both hard claims — zero
# steady-state allocs/edge on every pipe row, and the ≥3× modeled recording
# scaling self-gate inside RunPipeBench — without regressing the shared
# rows of the checked-in baseline.
go test -race ./internal/pipeline
go run ./cmd/teabench -pipebench "$bin/pipe.json" -target 300000 -bench mcf
go run ./scripts/benchdiff -base BENCH_pipeline.json -new "$bin/pipe.json" -gate 30 -zero-allocs pipe
echo "ci: pipebench gate ok"
