#!/usr/bin/env bash
# Repository verification gate: static checks, the full test suite under the
# race detector, and a short fuzz run over the wire-format decoder (the
# robustness surface most exposed to hostile input). Run from the repo root:
#
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./...
go test -run='^$' -fuzz=FuzzDecode -fuzztime=10s ./internal/core
