// Command gencorpus regenerates the decoder regression corpus at
// internal/core/testdata/decode_corpus: deterministic fault-injected
// mutants (truncations, bit flips, varint corruption) of valid TEA
// encodings, one file per mutant. FuzzDecode and TestDecodeCorpus read
// the files back, so every class of corruption the decoder must reject
// stays covered by plain `go test`.
//
// It also emits internal/verify/testdata/badcfg.bin: an image that decodes
// cleanly (all structural checks pass) but carries a same-trace link that
// is impossible in the program's CFG. The static verifier must flag it
// (A-CFG); scripts/ci.sh uses it as the negative test for the verify gate.
//
// And it emits the stride-table corpus for the same gate, recorded on the
// 901.steady cycle workload at a 200k-instruction target (so `teadump
// -bench 901.steady -target 200000` regenerates the identical program):
//
//	internal/verify/testdata/steady.tea        the TEA image
//	internal/verify/testdata/goodstride.teas   the table Specialize admitted
//	internal/verify/testdata/badstride.teas    one forged per-traversal delta
//
// badstride decodes cleanly — the wire format cannot see the forgery — and
// is proven to trip C-STRIDE before being written, mirroring badcfg.
//
// Usage: go run ./scripts/gencorpus
package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/serve"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/verify"
	"github.com/lsc-tea/tea/internal/workload"
)

const outDir = "internal/core/testdata/decode_corpus"
const badDir = "internal/verify/testdata"
const wireDir = "internal/serve/testdata/wire_corpus"

// strideCorpusTarget is the dynamic-size target the stride corpus records
// 901.steady at; teadump must be invoked with the same -target to
// regenerate the identical program.
const strideCorpusTarget = 200_000

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	// The same program FuzzDecode decodes against.
	p := progs.Figure2(60, 200)
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		s, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 30})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
		if err != nil {
			return err
		}
		data, err := core.Encode(core.Build(set))
		if err != nil {
			return err
		}
		if err := write(strategy+"-valid", data); err != nil {
			return err
		}
		for i, mut := range faultinject.Corpus(42, data, 24) {
			if err := write(fmt.Sprintf("%s-mut%02d", strategy, i), mut); err != nil {
				return err
			}
		}
	}
	bad, err := makeBadCFG(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(badDir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(badDir, "badcfg.bin"), bad, 0o644); err != nil {
		return err
	}
	if err := writeStrideCorpus(); err != nil {
		return err
	}
	return writeWireCorpus()
}

// writeStrideCorpus records the 901.steady cycle workload, specializes its
// compiled form against the captured stream, and emits the image plus a
// good and a forged stride blob. Both blobs are proven before writing: the
// good one must verify clean against the image's compiled form; the bad one
// must decode (the forgery is semantic, invisible to the wire format) and
// trip a C-STRIDE error, so the checked-in negative test cannot go stale.
func writeStrideCorpus() error {
	spec, ok := workload.ByName("901.steady")
	if !ok {
		return errors.New("901.steady not registered")
	}
	p, err := workload.Generate(spec, strideCorpusTarget)
	if err != nil {
		return err
	}
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 8})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		return err
	}
	a := core.Build(set)
	data, err := core.Encode(a)
	if err != nil {
		return err
	}
	cache := cfg.NewCache(p, cfg.StarDBT)
	if r := verify.Image(data, cache, core.ConfigGlobalLocal); !r.OK() {
		return fmt.Errorf("steady image does not verify:\n%s", r)
	}

	cap := teatool.NewCaptureTool()
	if _, err := pin.New().Run(p, cap, 0); err != nil {
		return err
	}
	c := core.Compile(a, core.ConfigGlobalLocal)
	sp := core.Specialize(c, cap.Stream())
	if !sp.Specialized() {
		return errors.New("901.steady yielded no stride entries")
	}
	tab := sp.StrideTable()

	good := core.EncodeStrideTable(tab)
	dec, err := core.DecodeStrideTable(good)
	if err != nil {
		return fmt.Errorf("good stride blob does not decode: %v", err)
	}
	if r := verify.Compiled(c.WithStrideTable(dec)); !r.OK() {
		return fmt.Errorf("good stride blob does not verify:\n%s", r)
	}

	// Forge the fused instruction total of the first entry: every traversal
	// of that cycle would over-count Instrs, corrupting Stats silently.
	tab[0].Instrs++
	tab[0].DeltaGlobal.Instrs++
	tab[0].DeltaLocal.Instrs++
	bad := core.EncodeStrideTable(tab)
	decBad, err := core.DecodeStrideTable(bad)
	if err != nil {
		return fmt.Errorf("bad stride blob must still decode, got: %v", err)
	}
	if r := verify.Compiled(c.WithStrideTable(decBad)); !hasErrRule(r, "C-STRIDE") {
		return fmt.Errorf("forged stride blob does not trip C-STRIDE:\n%s", r)
	}

	for name, blob := range map[string][]byte{
		"steady.tea":      data,
		"goodstride.teas": good,
		"badstride.teas":  bad,
	} {
		if err := os.WriteFile(filepath.Join(badDir, name), blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeWireCorpus emits internal/serve/testdata/wire_corpus: one valid
// framed message per wire type plus deterministic fault-injected mutants
// of each full frame (header, checksum and payload all in scope).
// TestWireCorpus reads the files back and requires the valid frames to
// parse exactly and every mutant to fail — if at all — with a structured
// *serve.Error, keeping the serving layer's rejection paths covered by
// plain `go test`.
func writeWireCorpus() error {
	if err := os.MkdirAll(wireDir, 0o755); err != nil {
		return err
	}
	stats := core.Stats{Blocks: 1000, Instrs: 4000, TraceBlocks: 600, Desyncs: 2, Resyncs: 2}
	seeds := []struct {
		name    string
		payload []byte
	}{
		{"hello", (&serve.Hello{Version: serve.ProtoVersion, Tenant: "corpus"}).Append(nil)},
		{"helloack", (&serve.HelloAck{Version: serve.ProtoVersion}).Append(nil)},
		{"open", (&serve.Open{Image: "figure2", Resume: "s00000001"}).Append(nil)},
		{"openack", (&serve.OpenAck{Session: "s00000001", Gen: 1, Watermark: 128}).Append(nil)},
		{"edges", serve.AppendEdges(nil, []core.Edge{
			{Label: 0x400, Instrs: 12}, {Label: 0x41c, Instrs: 3}, {Label: 0x400, Instrs: 12},
		}, serve.NoClock)},
		{"edges-clock", serve.AppendEdges(nil, []core.Edge{
			{Label: 0x400, Instrs: 12}, {Label: 0x41c, Instrs: 3},
		}, 128)},
		{"edgesack", (&serve.EdgesAck{Watermark: 131}).Append(nil)},
		{"stats", (&serve.StatsMsg{Stats: stats, Final: core.NTE, Watermark: 1000}).Append(nil)},
		{"error", serve.AppendError(nil, &serve.Error{Code: serve.CodeBackpressure, Msg: "corpus", RetryAfter: 50 * time.Millisecond})},
		{"publish", (&serve.Publish{Image: "figure2", Data: []byte{1, 2, 3, 4}}).Append(nil)},
		{"publishack", (&serve.PublishAck{Gen: 2}).Append(nil)},
	}
	for _, seed := range seeds {
		var frame bytes.Buffer
		if err := serve.WriteFrame(&frame, seed.payload); err != nil {
			return err
		}
		if err := writeTo(wireDir, seed.name+"-valid", frame.Bytes()); err != nil {
			return err
		}
		for i, mut := range faultinject.Corpus(271828, frame.Bytes(), 12) {
			if err := writeTo(wireDir, fmt.Sprintf("%s-mut%02d", seed.name, i), mut); err != nil {
				return err
			}
		}
	}
	return nil
}

// makeBadCFG records an mret TEA and forges one same-trace link that skips
// an intermediate block — structurally valid wire format, impossible in the
// CFG. It proves the forgery both decodes and trips A-CFG before returning
// it, so the checked-in negative test can never go stale silently.
func makeBadCFG(p *isa.Program) ([]byte, error) {
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 30})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		return nil, err
	}
	cache := cfg.NewCache(p, cfg.StarDBT)
	for _, tr := range set.Traces {
		for i := 0; i+2 < len(tr.TBBs); i++ {
			from, to := tr.TBBs[i], tr.TBBs[i+2]
			if _, linked := from.Succs[to.Block.Head]; linked {
				continue
			}
			if err := from.Link(to); err != nil {
				continue
			}
			data, err := core.Encode(core.Build(set))
			if err != nil {
				return nil, err
			}
			if _, err := core.Decode(data, cache); err != nil {
				delete(from.Succs, to.Block.Head)
				continue
			}
			r := verify.Image(data, cache, core.ConfigGlobalLocal)
			if r.OK() || !hasErrRule(r, "A-CFG") {
				delete(from.Succs, to.Block.Head)
				continue
			}
			return data, nil
		}
	}
	return nil, errors.New("no trace admits a decodable CFG-impossible link")
}

func hasErrRule(r *verify.Report, rule string) bool {
	for _, f := range r.Findings {
		if f.Rule == rule && f.Severity == verify.Error {
			return true
		}
	}
	return false
}

func write(name string, data []byte) error {
	return writeTo(outDir, name, data)
}

func writeTo(dir, name string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, name+".bin"), data, 0o644)
}
