// Command gencorpus regenerates the decoder regression corpus at
// internal/core/testdata/decode_corpus: deterministic fault-injected
// mutants (truncations, bit flips, varint corruption) of valid TEA
// encodings, one file per mutant. FuzzDecode and TestDecodeCorpus read
// the files back, so every class of corruption the decoder must reject
// stays covered by plain `go test`.
//
// It also emits internal/verify/testdata/badcfg.bin: an image that decodes
// cleanly (all structural checks pass) but carries a same-trace link that
// is impossible in the program's CFG. The static verifier must flag it
// (A-CFG); scripts/ci.sh uses it as the negative test for the verify gate.
//
// Usage: go run ./scripts/gencorpus
package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/serve"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/verify"
)

const outDir = "internal/core/testdata/decode_corpus"
const badDir = "internal/verify/testdata"
const wireDir = "internal/serve/testdata/wire_corpus"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	// The same program FuzzDecode decodes against.
	p := progs.Figure2(60, 200)
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		s, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 30})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
		if err != nil {
			return err
		}
		data, err := core.Encode(core.Build(set))
		if err != nil {
			return err
		}
		if err := write(strategy+"-valid", data); err != nil {
			return err
		}
		for i, mut := range faultinject.Corpus(42, data, 24) {
			if err := write(fmt.Sprintf("%s-mut%02d", strategy, i), mut); err != nil {
				return err
			}
		}
	}
	bad, err := makeBadCFG(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(badDir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(badDir, "badcfg.bin"), bad, 0o644); err != nil {
		return err
	}
	return writeWireCorpus()
}

// writeWireCorpus emits internal/serve/testdata/wire_corpus: one valid
// framed message per wire type plus deterministic fault-injected mutants
// of each full frame (header, checksum and payload all in scope).
// TestWireCorpus reads the files back and requires the valid frames to
// parse exactly and every mutant to fail — if at all — with a structured
// *serve.Error, keeping the serving layer's rejection paths covered by
// plain `go test`.
func writeWireCorpus() error {
	if err := os.MkdirAll(wireDir, 0o755); err != nil {
		return err
	}
	stats := core.Stats{Blocks: 1000, Instrs: 4000, TraceBlocks: 600, Desyncs: 2, Resyncs: 2}
	seeds := []struct {
		name    string
		payload []byte
	}{
		{"hello", (&serve.Hello{Version: serve.ProtoVersion, Tenant: "corpus"}).Append(nil)},
		{"helloack", (&serve.HelloAck{Version: serve.ProtoVersion}).Append(nil)},
		{"open", (&serve.Open{Image: "figure2", Resume: "s00000001"}).Append(nil)},
		{"openack", (&serve.OpenAck{Session: "s00000001", Gen: 1, Watermark: 128}).Append(nil)},
		{"edges", serve.AppendEdges(nil, []core.Edge{
			{Label: 0x400, Instrs: 12}, {Label: 0x41c, Instrs: 3}, {Label: 0x400, Instrs: 12},
		})},
		{"edgesack", (&serve.EdgesAck{Watermark: 131}).Append(nil)},
		{"stats", (&serve.StatsMsg{Stats: stats, Final: core.NTE, Watermark: 1000}).Append(nil)},
		{"error", serve.AppendError(nil, &serve.Error{Code: serve.CodeBackpressure, Msg: "corpus", RetryAfter: 50 * time.Millisecond})},
		{"publish", (&serve.Publish{Image: "figure2", Data: []byte{1, 2, 3, 4}}).Append(nil)},
		{"publishack", (&serve.PublishAck{Gen: 2}).Append(nil)},
	}
	for _, seed := range seeds {
		var frame bytes.Buffer
		if err := serve.WriteFrame(&frame, seed.payload); err != nil {
			return err
		}
		if err := writeTo(wireDir, seed.name+"-valid", frame.Bytes()); err != nil {
			return err
		}
		for i, mut := range faultinject.Corpus(271828, frame.Bytes(), 12) {
			if err := writeTo(wireDir, fmt.Sprintf("%s-mut%02d", seed.name, i), mut); err != nil {
				return err
			}
		}
	}
	return nil
}

// makeBadCFG records an mret TEA and forges one same-trace link that skips
// an intermediate block — structurally valid wire format, impossible in the
// CFG. It proves the forgery both decodes and trips A-CFG before returning
// it, so the checked-in negative test can never go stale silently.
func makeBadCFG(p *isa.Program) ([]byte, error) {
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 30})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		return nil, err
	}
	cache := cfg.NewCache(p, cfg.StarDBT)
	for _, tr := range set.Traces {
		for i := 0; i+2 < len(tr.TBBs); i++ {
			from, to := tr.TBBs[i], tr.TBBs[i+2]
			if _, linked := from.Succs[to.Block.Head]; linked {
				continue
			}
			if err := from.Link(to); err != nil {
				continue
			}
			data, err := core.Encode(core.Build(set))
			if err != nil {
				return nil, err
			}
			if _, err := core.Decode(data, cache); err != nil {
				delete(from.Succs, to.Block.Head)
				continue
			}
			r := verify.Image(data, cache, core.ConfigGlobalLocal)
			if r.OK() || !hasErrRule(r, "A-CFG") {
				delete(from.Succs, to.Block.Head)
				continue
			}
			return data, nil
		}
	}
	return nil, errors.New("no trace admits a decodable CFG-impossible link")
}

func hasErrRule(r *verify.Report, rule string) bool {
	for _, f := range r.Findings {
		if f.Rule == rule && f.Severity == verify.Error {
			return true
		}
	}
	return false
}

func write(name string, data []byte) error {
	return writeTo(outDir, name, data)
}

func writeTo(dir, name string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, name+".bin"), data, 0o644)
}
