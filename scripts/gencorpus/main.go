// Command gencorpus regenerates the decoder regression corpus at
// internal/core/testdata/decode_corpus: deterministic fault-injected
// mutants (truncations, bit flips, varint corruption) of valid TEA
// encodings, one file per mutant. FuzzDecode and TestDecodeCorpus read
// the files back, so every class of corruption the decoder must reject
// stays covered by plain `go test`.
//
// Usage: go run ./scripts/gencorpus
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

const outDir = "internal/core/testdata/decode_corpus"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	// The same program FuzzDecode decodes against.
	p := progs.Figure2(60, 200)
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		s, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 30})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
		if err != nil {
			return err
		}
		data, err := core.Encode(core.Build(set))
		if err != nil {
			return err
		}
		if err := write(strategy+"-valid", data); err != nil {
			return err
		}
		for i, mut := range faultinject.Corpus(42, data, 24) {
			if err := write(fmt.Sprintf("%s-mut%02d", strategy, i), mut); err != nil {
				return err
			}
		}
	}
	return nil
}

func write(name string, data []byte) error {
	return os.WriteFile(filepath.Join(outDir, name+".bin"), data, 0o644)
}
