package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseJSON = `{"target": 300000, "rows": [
  {"bench": "mcf", "config": "compiled-batch", "ns_per_edge": 6.0, "allocs_per_edge": 0},
  {"bench": "gcc", "config": "compiled-batch", "ns_per_edge": 10.0, "allocs_per_edge": 0}
]}`

func TestGatePassesOnSharedRowsAcrossTargets(t *testing.T) {
	base := writeBench(t, "base.json", baseJSON)
	// Subset smoke run at a different target, within the gate.
	smoke := writeBench(t, "smoke.json", `{"target": 100000, "rows": [
	  {"bench": "mcf", "config": "compiled-batch", "ns_per_edge": 6.5, "allocs_per_edge": 0}
	]}`)
	if err := run(base, smoke, 25, "", 10, ""); err != nil {
		t.Fatalf("gate failed on a subset within threshold: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeBench(t, "base.json", baseJSON)
	slow := writeBench(t, "slow.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "compiled-batch", "ns_per_edge": 9.0, "allocs_per_edge": 0}
	]}`)
	err := run(base, slow, 25, "", 10, "")
	if err == nil || !strings.Contains(err.Error(), "gate +10%") {
		t.Fatalf("gate accepted a +50%% regression: %v", err)
	}
}

func TestGateFailsWhenNothingShared(t *testing.T) {
	base := writeBench(t, "base.json", baseJSON)
	other := writeBench(t, "other.json", `{"target": 300000, "rows": [
	  {"bench": "swim", "config": "reference-hash-local", "ns_per_edge": 30.0, "allocs_per_edge": 0}
	]}`)
	err := run(base, other, 25, "", 10, "")
	if err == nil || !strings.Contains(err.Error(), "gate compared nothing") {
		t.Fatalf("gate passed with zero shared rows: %v", err)
	}
}

func TestGateKeysOnObsMode(t *testing.T) {
	// Off/on rows share bench+config; the obs field must keep them from
	// being compared against each other.
	base := writeBench(t, "base.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "compiled-batch", "obs": "off", "ns_per_edge": 6.0, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "compiled-batch", "obs": "on", "ns_per_edge": 9.0, "allocs_per_edge": 0}
	]}`)
	fresh := writeBench(t, "fresh.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "compiled-batch", "obs": "off", "ns_per_edge": 6.1, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "compiled-batch", "obs": "on", "ns_per_edge": 9.1, "allocs_per_edge": 0}
	]}`)
	if err := run(base, fresh, 25, "", 10, ""); err != nil {
		t.Fatalf("obs-keyed rows misrouted: %v", err)
	}
	// The on-row regressing must name its obs mode.
	slow := writeBench(t, "slow.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "compiled-batch", "obs": "off", "ns_per_edge": 6.0, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "compiled-batch", "obs": "on", "ns_per_edge": 20.0, "allocs_per_edge": 0}
	]}`)
	err := run(base, slow, 25, "", 10, "")
	if err == nil || !strings.Contains(err.Error(), "mcf/compiled-batch/obs-on") {
		t.Fatalf("regressing obs-on row not identified: %v", err)
	}
}

func TestGateKeysOnWorkers(t *testing.T) {
	// Pipeline rows share bench+config and differ only in the worker count;
	// the workers field must keep a w1 row from being compared against w4.
	base := writeBench(t, "base.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "pipe", "workers": 1, "ns_per_edge": 12.0, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "pipe", "workers": 4, "ns_per_edge": 4.0, "allocs_per_edge": 0}
	]}`)
	fresh := writeBench(t, "fresh.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "pipe", "workers": 1, "ns_per_edge": 12.5, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "pipe", "workers": 4, "ns_per_edge": 4.1, "allocs_per_edge": 0}
	]}`)
	if err := run(base, fresh, 25, "", 10, ""); err != nil {
		t.Fatalf("workers-keyed rows misrouted: %v", err)
	}
	// Only the w4 row regresses; the failure must name it via the /w4 label
	// and leave the healthy w1 row out of it.
	slow := writeBench(t, "slow.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "pipe", "workers": 1, "ns_per_edge": 12.0, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "pipe", "workers": 4, "ns_per_edge": 9.0, "allocs_per_edge": 0}
	]}`)
	err := run(base, slow, 25, "", 10, "")
	if err == nil || !strings.Contains(err.Error(), "mcf/pipe/w4") {
		t.Fatalf("regressing w4 row not identified: %v", err)
	}
	if strings.Contains(err.Error(), "mcf/pipe/w1") {
		t.Fatalf("healthy w1 row dragged into the failure: %v", err)
	}
}

func TestMissingWorkersRowFailsAtSameTarget(t *testing.T) {
	// At equal targets the default comparison demands every baseline row;
	// dropping one worker-count row must fail and name it.
	base := writeBench(t, "base.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "pipe", "workers": 1, "ns_per_edge": 12.0, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "pipe", "workers": 4, "ns_per_edge": 4.0, "allocs_per_edge": 0}
	]}`)
	fresh := writeBench(t, "fresh.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "pipe", "workers": 1, "ns_per_edge": 12.0, "allocs_per_edge": 0}
	]}`)
	err := run(base, fresh, 25, "", 0, "")
	if err == nil || !strings.Contains(err.Error(), "mcf/pipe/w4") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("dropped w4 row not reported: %v", err)
	}
}

func TestZeroAllocsStillExact(t *testing.T) {
	leaky := writeBench(t, "leaky.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "compiled-batch", "obs": "off", "ns_per_edge": 6.0, "allocs_per_edge": 0.0001}
	]}`)
	err := run("", leaky, 25, "compiled-batch", 0, "")
	if err == nil || !strings.Contains(err.Error(), "want 0") {
		t.Fatalf("zero-alloc check accepted a nonzero row: %v", err)
	}
}

func TestZeroAllocsScopedToMatchingConfigs(t *testing.T) {
	// Only rows whose config contains the substring are held to zero; a
	// reference row may allocate freely.
	mixed := writeBench(t, "mixed.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "batch", "workers": 2, "ns_per_edge": 6.0, "allocs_per_edge": 0},
	  {"bench": "mcf", "config": "reference-hash-local", "ns_per_edge": 30.0, "allocs_per_edge": 2.5}
	]}`)
	if err := run("", mixed, 25, "batch", 0, ""); err != nil {
		t.Fatalf("zero-alloc check leaked onto non-matching rows: %v", err)
	}
}

func TestZeroAllocsFailsWhenMatchingNothing(t *testing.T) {
	// A typo'd (or renamed-away) config substring must fail loudly instead
	// of silently checking zero rows.
	fresh := writeBench(t, "fresh.json", `{"target": 300000, "rows": [
	  {"bench": "mcf", "config": "pipe", "workers": 2, "ns_per_edge": 6.0, "allocs_per_edge": 0}
	]}`)
	err := run("", fresh, 25, "no-such-config", 0, "")
	if err == nil || !strings.Contains(err.Error(), "matched nothing") {
		t.Fatalf("empty zero-alloc match not reported: %v", err)
	}
}

const strideJSON = `{"target": 300000, "rows": [
  {"bench": "901.steady", "config": "compiled-batch", "ns_per_edge": 3.2, "allocs_per_edge": 0},
  {"bench": "901.steady", "config": "compiled-stride", "ns_per_edge": 0.4, "allocs_per_edge": 0},
  {"bench": "902.stream", "config": "compiled-batch", "ns_per_edge": 4.1, "allocs_per_edge": 0},
  {"bench": "902.stream", "config": "compiled-stride", "ns_per_edge": 1.5, "allocs_per_edge": 0}
]}`

func TestFasterGatePasses(t *testing.T) {
	f := writeBench(t, "stride.json", strideJSON)
	if err := run("", f, 25, "", 0, "compiled-stride:compiled-batch:1.5:901.steady,902.stream"); err != nil {
		t.Fatalf("speedup gate failed on 8x/2.7x margins: %v", err)
	}
}

func TestFasterGateFailsBelowRatio(t *testing.T) {
	f := writeBench(t, "slow.json", `{"target": 300000, "rows": [
	  {"bench": "901.steady", "config": "compiled-batch", "ns_per_edge": 3.2, "allocs_per_edge": 0},
	  {"bench": "901.steady", "config": "compiled-stride", "ns_per_edge": 3.0, "allocs_per_edge": 0}
	]}`)
	err := run("", f, 25, "", 0, "compiled-stride:compiled-batch:1.5:901.steady")
	if err == nil || !strings.Contains(err.Error(), "gate 1.50") {
		t.Fatalf("speedup gate accepted a 1.07x ratio: %v", err)
	}
}

func TestFasterGateFailsOnMissingRows(t *testing.T) {
	f := writeBench(t, "nofast.json", `{"target": 300000, "rows": [
	  {"bench": "901.steady", "config": "compiled-batch", "ns_per_edge": 3.2, "allocs_per_edge": 0}
	]}`)
	err := run("", f, 25, "", 0, "compiled-stride:compiled-batch:1.5:901.steady")
	if err == nil || !strings.Contains(err.Error(), "no compiled-stride row") {
		t.Fatalf("gate passed without the fast config's rows: %v", err)
	}
	empty := writeBench(t, "nobench.json", strideJSON)
	err = run("", empty, 25, "", 0, "compiled-stride:compiled-batch:1.5:equake")
	if err == nil || !strings.Contains(err.Error(), "compared nothing") {
		t.Fatalf("gate passed on a benchmark with no rows: %v", err)
	}
}

func TestFasterGateRejectsBadSpec(t *testing.T) {
	f := writeBench(t, "any.json", strideJSON)
	for _, bad := range []string{"a:b:1.5", "a:b:zero:mcf", "a:b:-1:mcf", "a:b:1.5:"} {
		if err := run("", f, 25, "", 0, bad); err == nil {
			t.Fatalf("malformed -faster %q accepted", bad)
		}
	}
}
