// Command benchdiff compares two machine-readable benchmark files
// (BENCH_replay.json / BENCH_record.json / BENCH_obs.json /
// BENCH_pipeline.json — all share the {target, rows[]} shape keyed by
// bench+config, plus the obs mode and pipeline worker count where the file
// distinguishes them) and fails when the new run regresses.
//
// Checks:
//
//   - With -base: every (bench, config) row of the baseline must exist in
//     the new file, and — when the two files were produced with the same
//     dynamic-instruction target, so the numbers are comparable — its
//     ns/edge must not exceed the baseline by more than -max-regress
//     percent. Differing targets skip the timing comparison with a notice,
//     so a quick smoke run can still be checked for the structural
//     invariants below.
//
//   - With -zero-allocs: every row whose config contains the substring must
//     report exactly 0 allocs/edge. This is the recording fast path's
//     hard invariant (steady-state batch recording performs no heap
//     allocation per edge), checked unconditionally on the new file.
//
//   - With -gate <pct>: CI-gate mode. Replaces the default baseline
//     comparison with a hard one: ns/edge is compared on the rows the two
//     files share even when their targets differ (ns/edge is normalized
//     per edge, so a subset smoke run is still comparable), rows present
//     only in one file are ignored (a smoke run legitimately measures a
//     subset), and any shared row regressing by more than <pct> percent
//     fails the run.
//
//   - With -faster fast:slow:ratio:bench1,bench2: a speedup gate inside
//     the new file alone. On every named benchmark, the fast config's
//     ns/edge must be at least ratio× lower than the slow config's on the
//     same (obs, workers) row. This is how CI holds the stride kernel to
//     its promise (compiled-stride ≥ 1.5× compiled-batch on the
//     steady-state workloads) without depending on the host's absolute
//     speed.
//
// Usage:
//
//	go run ./scripts/benchdiff -base BENCH_record.json -new fresh.json
//	go run ./scripts/benchdiff -new fresh.json -zero-allocs batch
//	go run ./scripts/benchdiff -base BENCH_replay.json -new smoke.json -gate 25
//	go run ./scripts/benchdiff -new fresh.json -faster compiled-stride:compiled-batch:1.5:901.steady,902.stream
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// row is the shared row shape of the BENCH_*.json files; fields not listed
// here (edges, traces, coverage) do not take part in the comparison.
type row struct {
	Bench    string  `json:"bench"`
	Config   string  `json:"config"`
	Obs      string  `json:"obs"`     // BENCH_obs.json only: "off"/"on"; empty elsewhere
	Workers  int     `json:"workers"` // BENCH_pipeline.json only; zero elsewhere
	NsPerOp  float64 `json:"ns_per_edge"`
	AllocsPO float64 `json:"allocs_per_edge"`
}

type file struct {
	Target uint64 `json:"target"`
	Rows   []row  `json:"rows"`
}

func load(path string) (*file, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return &f, nil
}

func key(r row) string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d", r.Bench, r.Config, r.Obs, r.Workers)
}

// label names a row in failure messages, including the obs mode and worker
// count when the file distinguishes them.
func label(r row) string {
	l := r.Bench + "/" + r.Config
	if r.Obs != "" {
		l += "/obs-" + r.Obs
	}
	if r.Workers != 0 {
		l += fmt.Sprintf("/w%d", r.Workers)
	}
	return l
}

func main() {
	basePath := flag.String("base", "", "baseline BENCH_*.json (omit to only run the structural checks on -new)")
	newPath := flag.String("new", "", "new BENCH_*.json to check (required)")
	maxRegress := flag.Float64("max-regress", 25, "maximum allowed ns/edge regression over the baseline, in percent")
	zeroAllocs := flag.String("zero-allocs", "", "require allocs/edge == 0 for every row whose config contains this substring")
	gate := flag.Float64("gate", 0, "CI-gate mode: compare ns/edge on shared rows even across differing targets, failing above this percent (0 = off; requires -base)")
	faster := flag.String("faster", "", "speedup gate fast:slow:ratio:bench1,bench2 — fast config must be ratio× faster than slow on the named benches of -new")
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	if *gate > 0 && *basePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -gate requires -base")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*basePath, *newPath, *maxRegress, *zeroAllocs, *gate, *faster); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// fasterSpec is the parsed -faster directive.
type fasterSpec struct {
	fast, slow string
	ratio      float64
	benches    []string
}

func parseFaster(s string) (fasterSpec, error) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) != 4 {
		return fasterSpec{}, fmt.Errorf("-faster wants fast:slow:ratio:bench1,bench2, got %q", s)
	}
	var ratio float64
	if _, err := fmt.Sscanf(parts[2], "%g", &ratio); err != nil || ratio <= 0 {
		return fasterSpec{}, fmt.Errorf("-faster ratio %q is not a positive number", parts[2])
	}
	benches := strings.Split(parts[3], ",")
	if len(benches) == 0 || benches[0] == "" {
		return fasterSpec{}, fmt.Errorf("-faster names no benchmarks in %q", s)
	}
	return fasterSpec{fast: parts[0], slow: parts[1], ratio: ratio, benches: benches}, nil
}

// checkFaster enforces the speedup gate on the new file: for every named
// benchmark, every (obs, workers) row of the slow config must have a fast
// twin at least ratio× quicker.
func checkFaster(nf *file, spec fasterSpec) []string {
	var failures []string
	for _, bench := range spec.benches {
		matched := false
		for _, slow := range nf.Rows {
			if slow.Bench != bench || slow.Config != spec.slow || slow.NsPerOp <= 0 {
				continue
			}
			fastKey := slow
			fastKey.Config = spec.fast
			var fast *row
			for i := range nf.Rows {
				if key(nf.Rows[i]) == key(fastKey) {
					fast = &nf.Rows[i]
					break
				}
			}
			if fast == nil {
				failures = append(failures, fmt.Sprintf(
					"%s: no %s row to compare against %s", bench, spec.fast, spec.slow))
				continue
			}
			matched = true
			if got := slow.NsPerOp / fast.NsPerOp; got < spec.ratio {
				failures = append(failures, fmt.Sprintf(
					"%s: %s %.2f ns/edge is only %.2f× faster than %s %.2f (gate %.2f×)",
					bench, spec.fast, fast.NsPerOp, got, spec.slow, slow.NsPerOp, spec.ratio))
			}
		}
		if !matched {
			failures = append(failures, fmt.Sprintf(
				"%s: no %s rows found; speedup gate compared nothing", bench, spec.slow))
		}
	}
	return failures
}

func run(basePath, newPath string, maxRegress float64, zeroAllocs string, gate float64, faster string) error {
	nf, err := load(newPath)
	if err != nil {
		return err
	}

	var failures []string

	if faster != "" {
		spec, err := parseFaster(faster)
		if err != nil {
			return err
		}
		failures = append(failures, checkFaster(nf, spec)...)
	}

	if zeroAllocs != "" {
		matched := 0
		for _, r := range nf.Rows {
			if !strings.Contains(r.Config, zeroAllocs) {
				continue
			}
			matched++
			if r.AllocsPO != 0 {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f allocs/edge, want 0", label(r), r.AllocsPO))
			}
		}
		if matched == 0 {
			failures = append(failures, fmt.Sprintf(
				"no row's config contains %q; zero-alloc check matched nothing", zeroAllocs))
		}
	}

	if basePath != "" {
		bf, err := load(basePath)
		if err != nil {
			return err
		}
		newByKey := make(map[string]row, len(nf.Rows))
		for _, r := range nf.Rows {
			newByKey[key(r)] = r
		}
		if gate > 0 {
			// CI-gate mode: shared rows only, compared regardless of target
			// (ns/edge is per-edge normalized), hard threshold.
			shared := 0
			for _, b := range bf.Rows {
				n, ok := newByKey[key(b)]
				if !ok || b.NsPerOp <= 0 {
					continue
				}
				shared++
				if n.NsPerOp > b.NsPerOp*(1+gate/100) {
					failures = append(failures, fmt.Sprintf(
						"%s: %.1f ns/edge vs baseline %.1f (+%.0f%%, gate +%.0f%%)",
						label(b), n.NsPerOp, b.NsPerOp,
						(n.NsPerOp/b.NsPerOp-1)*100, gate))
				}
			}
			if shared == 0 {
				failures = append(failures, fmt.Sprintf(
					"no rows shared between %s and %s; gate compared nothing", basePath, newPath))
			}
		} else {
			compareNs := bf.Target == nf.Target
			if !compareNs {
				fmt.Printf("benchdiff: targets differ (%d vs %d); skipping ns/edge comparison\n",
					bf.Target, nf.Target)
			}
			for _, b := range bf.Rows {
				n, ok := newByKey[key(b)]
				if !ok {
					// A baseline row the new run no longer produces is only a
					// failure when the runs cover the same benchmarks; a subset
					// smoke run legitimately measures fewer rows.
					if compareNs {
						failures = append(failures, fmt.Sprintf(
							"%s: present in baseline, missing from %s", label(b), newPath))
					}
					continue
				}
				if !compareNs || b.NsPerOp <= 0 {
					continue
				}
				limit := b.NsPerOp * (1 + maxRegress/100)
				if n.NsPerOp > limit {
					failures = append(failures, fmt.Sprintf(
						"%s: %.1f ns/edge vs baseline %.1f (+%.0f%%, limit +%.0f%%)",
						label(b), n.NsPerOp, b.NsPerOp,
						(n.NsPerOp/b.NsPerOp-1)*100, maxRegress))
				}
			}
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d check(s) failed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchdiff: %s ok (%d rows)\n", newPath, len(nf.Rows))
	return nil
}
