// Package tea is the public API of the Trace Execution Automata library, a
// from-scratch reproduction of "Trace Execution Automata in Dynamic Binary
// Translation" (Porto, Araujo, Borin, Wu — ISCA/AMAS-BT 2010).
//
// A TEA is a deterministic finite automaton that maps the executing
// program counter to the Trace Basic Block (TBB) of a previously recorded
// trace — storing traces implicitly, without replicating code. The library
// bundles everything the paper's evaluation needs: a synthetic x86-like
// ISA with assembler and interpreter, a StarDBT-like translator, a
// Pin-like instrumentation engine, the MRET/TT/CTT trace selectors, the
// automaton itself with its global-B+ tree/local-cache transition
// function, serialization, profiling and phase detection.
//
// Quick start:
//
//	prog, err := tea.Assemble("copy", src)        // or tea.Benchmark("176.gcc", 2_000_000)
//	set, err := tea.RecordTraces(prog, "mret", tea.TraceConfig{HotThreshold: 50})
//	a := tea.Build(set)                            // Algorithm 1
//	data, err := tea.Encode(a)                     // store for reuse
//	stats, err := tea.Replay(prog, a, tea.ConfigGlobalLocal)
//	fmt.Printf("coverage: %.1f%%\n", stats.Coverage()*100)
//
// Failure semantics: exported functions report all input-dependent
// failures as errors — a corrupt serialized TEA surfaces as a
// *DecodeError, never a panic — and the long-running entry points have
// *Context variants that honor cancellation and deadlines.
//
// The deeper machinery is exported through aliases below; see the package
// documentation of the internal packages for the full design discussion.
package tea

import (
	"context"
	"net/http"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/dbt"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/obs"
	"github.com/lsc-tea/tea/internal/optim"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/pipeline"
	"github.com/lsc-tea/tea/internal/profile"
	"github.com/lsc-tea/tea/internal/serve"
	"github.com/lsc-tea/tea/internal/serve/client"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/ucsim"
	"github.com/lsc-tea/tea/internal/verify"
	"github.com/lsc-tea/tea/internal/workload"
)

// Core model types.
type (
	// Program is a laid-out program for the synthetic ISA.
	Program = isa.Program
	// Machine is the functional interpreter executing a Program.
	Machine = cpu.Machine
	// Block is a dynamic basic block.
	Block = cfg.Block
	// BlockStyle selects the dynamic block discipline (StarDBT vs Pin).
	BlockStyle = cfg.Style
	// Trace is a recorded hot-code region; TBB one block instance in it.
	Trace = trace.Trace
	// TBB is a Trace Basic Block (paper Definition 2).
	TBB = trace.TBB
	// TraceSet is the collection of traces recorded for one run.
	TraceSet = trace.Set
	// TraceConfig carries trace-selection knobs.
	TraceConfig = trace.Config
	// Strategy is a pluggable trace-selection policy.
	Strategy = trace.Strategy

	// Automaton is the TEA itself.
	Automaton = core.Automaton
	// State is one automaton state; StateID its index (NTE is 0).
	State = core.State
	// StateID identifies a state.
	StateID = core.StateID
	// LookupConfig selects the transition-function configuration (Table 4).
	LookupConfig = core.LookupConfig
	// Replayer walks a TEA along a dynamic block stream.
	Replayer = core.Replayer
	// Recorder builds a TEA online (Algorithm 2).
	Recorder = core.Recorder
	// ReplayStats carries coverage and lookup counters.
	ReplayStats = core.Stats

	// Compiled is a frozen automaton lowered into flat arrays for the
	// fastest replay path (no interface dispatch, no pointer chasing).
	Compiled = core.Compiled
	// CompiledReplayer is the zero-allocation batched cursor over Compiled.
	CompiledReplayer = core.CompiledReplayer
	// StreamEdge is one captured dynamic-block-stream event (label, instrs).
	StreamEdge = core.Edge

	// Profile holds per-TBB-instance execution counts.
	Profile = profile.Profile
	// PhaseDetector finds stable/unstable phases from trace exit ratios.
	PhaseDetector = profile.PhaseDetector

	// SimConfig configures the micro-architectural timing simulator.
	SimConfig = ucsim.Config
	// SimStats carries simulated cycles, cache misses and mispredictions.
	SimStats = ucsim.Stats
	// SimResult is a TEA-attributed simulation of one execution.
	SimResult = ucsim.Result
)

// NTE is the "No Trace being Executed" state.
const NTE = core.NTE

// Block disciplines (paper §4.1).
const (
	StyleStarDBT = cfg.StarDBT
	StylePin     = cfg.Pin
)

// The transition-function configurations of Table 4.
var (
	ConfigGlobalLocal   = core.ConfigGlobalLocal
	ConfigGlobalNoLocal = core.ConfigGlobalNoLocal
	ConfigNoGlobalLocal = core.ConfigNoGlobalLocal
)

// Assemble translates assembly source into a Program.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// MustAssemble is Assemble for known-good sources; it panics on error.
func MustAssemble(name, src string) *Program { return asm.MustAssemble(name, src) }

// NewMachine creates an interpreter for the program.
func NewMachine(p *Program) *Machine { return cpu.New(p) }

// Benchmark generates one of the 26 synthetic SPEC CPU2000 stand-ins,
// calibrated to roughly target dynamic instructions. Names accept either
// form: "176.gcc" or "gcc".
func Benchmark(name string, target uint64) (*Program, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, &UnknownBenchmarkError{Name: name}
	}
	return workload.Generate(spec, target)
}

// BenchmarkNames lists the available synthetic benchmarks in Table 1 order.
func BenchmarkNames() []string {
	specs := workload.Benchmarks()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// UnknownBenchmarkError reports a benchmark name that is not in the suite.
type UnknownBenchmarkError struct{ Name string }

func (e *UnknownBenchmarkError) Error() string {
	return "tea: unknown benchmark " + e.Name
}

// NewStrategy constructs a trace selector by name: "mret", "tt", "ctt" or
// "mfet". It reports false for unknown names.
func NewStrategy(name string, p *Program, c TraceConfig) (Strategy, bool) {
	return trace.NewStrategy(name, p, c)
}

// RecordTraces executes the program to completion under the StarDBT block
// discipline and records traces with the named strategy.
func RecordTraces(p *Program, strategy string, c TraceConfig) (*TraceSet, error) {
	return RecordTracesContext(context.Background(), p, strategy, c, 0)
}

// RecordTracesContext is RecordTraces with resource guards: the run stops
// early when ctx is cancelled (returning the partial set alongside
// ctx.Err()) or when maxSteps dynamic instructions have executed
// (0 = unbounded).
func RecordTracesContext(ctx context.Context, p *Program, strategy string, c TraceConfig, maxSteps uint64) (*TraceSet, error) {
	s, ok := trace.NewStrategy(strategy, p, c)
	if !ok {
		return nil, &UnknownStrategyError{Name: strategy}
	}
	set, _, err := trace.RecordContext(ctx, cpu.New(p), cfg.StarDBT, s, maxSteps)
	return set, err
}

// UnknownStrategyError reports an unrecognized strategy name.
type UnknownStrategyError struct{ Name string }

func (e *UnknownStrategyError) Error() string {
	return "tea: unknown trace strategy " + e.Name
}

// Build converts a trace set into its TEA (the paper's Algorithm 1).
func Build(set *TraceSet) *Automaton { return core.Build(set) }

// NewReplayer prepares a transition-function cursor over the automaton.
func NewReplayer(a *Automaton, c LookupConfig) *Replayer { return core.NewReplayer(a, c) }

// NewInstrReplayer prepares an instruction-granularity cursor (the
// "instructions" variant of the paper's DFA): feed it every executed PC.
func NewInstrReplayer(a *Automaton, c LookupConfig, p *Program) *core.InstrReplayer {
	return core.NewInstrReplayer(a, c, p)
}

// NewRecorder prepares an online TEA recorder (the paper's Algorithm 2).
func NewRecorder(s Strategy, c LookupConfig) *Recorder { return core.NewRecorder(s, c) }

// Encode serializes the automaton; EncodeWithProfile additionally stores
// per-TBB execution counts. Encoding fails only on an automaton that was
// not produced by Build (states missing from the canonical numbering).
func Encode(a *Automaton) ([]byte, error) { return core.Encode(a) }

// EncodeWithProfile serializes the automaton with profile counters.
func EncodeWithProfile(a *Automaton, p *Profile) ([]byte, error) {
	return core.EncodeWithProfile(a, p)
}

// DecodeError describes why Decode rejected a serialized TEA: the byte
// offset, the wire-format field being read, and the reason. Every
// malformed input — truncation, corrupted varints, hostile counts, blocks
// that do not match the program — yields a *DecodeError (via errors.As),
// never a panic.
type DecodeError = core.DecodeError

// Decode reconstructs an automaton serialized by Encode. The program must
// be available so blocks can be re-discovered (the paper's replay setting);
// each decoded block's identity is cross-checked against it.
func Decode(data []byte, p *Program) (*Automaton, error) {
	return core.Decode(data, cfg.NewCache(p, cfg.StarDBT))
}

// Dot renders the automaton as a Graphviz digraph (Figure 3 style).
func Dot(a *Automaton, title string) string { return core.Dot(a, title) }

// Summary renders a human-readable view of the automaton.
func Summary(a *Automaton) string { return core.Summary(a) }

// Replay re-executes the unmodified program under the Pin-like engine with
// the TEA replay tool attached and returns the replay statistics — the
// paper's Table 2 workflow.
//
// Replaying an automaton against a program it does not describe (a stale
// or foreign TEA) does not fail: the replayer detects impossible
// transitions, falls back to NTE, and counts the events in the returned
// stats' Desyncs/Resyncs fields.
func Replay(p *Program, a *Automaton, c LookupConfig) (*ReplayStats, error) {
	return ReplayContext(context.Background(), p, a, c, 0)
}

// ReplayContext is Replay with resource guards: the run stops early when
// ctx is cancelled (returning the partial stats alongside ctx.Err()) or
// when maxSteps dynamic instructions have executed (0 = unbounded).
func ReplayContext(ctx context.Context, p *Program, a *Automaton, c LookupConfig, maxSteps uint64) (*ReplayStats, error) {
	tool := teatool.NewReplayTool(a, c)
	if _, err := pin.New().RunContext(ctx, p, tool, maxSteps); err != nil {
		return tool.Stats(), err
	}
	return tool.Stats(), nil
}

// Compile freezes the automaton into its flat compiled form. Only the
// Local cache settings of c matter; the compiled path always uses the flat
// open-addressed entry table as its global container.
func Compile(a *Automaton, c LookupConfig) *Compiled { return core.Compile(a, c) }

// NewCompiledReplayer prepares a zero-allocation cursor over a compiled
// automaton; AdvanceBatch consumes whole stream slices per call.
func NewCompiledReplayer(c *Compiled) *CompiledReplayer {
	return core.NewCompiledReplayer(c)
}

// StrideEntry is one fused trace-cycle of a specialized compiled form: a
// steady-state cycle proven through the production transition function,
// with per-traversal Stats deltas the batch kernel adds wholesale
// (DESIGN.md §16).
type StrideEntry = core.StrideEntry

// Specialize compiles the steady-state cycles of a captured stream into a
// fused stride table attached to a copy of c (the input is untouched).
// Every admitted entry is proven by simulation; when the sample shows the
// table would fuse too little of the stream to pay for probing, the result
// carries no table and replays through the unspecialized kernel.
func Specialize(c *Compiled, stream []StreamEdge) *Compiled {
	return core.Specialize(c, stream)
}

// CompiledLayout renders the compiled form's memory-layout report: SoA
// array residency, entry-table load, prefetch capability and stride-table
// occupancy (teaprof -layout).
func CompiledLayout(c *Compiled) string { return c.Layout() }

// EncodeStrideTable serializes a specialized form's stride table
// (Compiled.StrideTable) in the TEAS wire format.
func EncodeStrideTable(tab []StrideEntry) []byte { return core.EncodeStrideTable(tab) }

// DecodeStrideTable parses a TEAS stride-table blob. The result is only
// structurally bounded — semantic trust comes from VerifyStrideTable, which
// re-proves every entry against the compiled form it is attached to.
func DecodeStrideTable(data []byte) ([]StrideEntry, error) { return core.DecodeStrideTable(data) }

// VerifyStrideTable attaches a decoded stride table to the automaton's
// compiled form and runs the full compiled rule family over the result —
// in particular C-STRIDE, which re-derives every entry through the
// production admission simulation and rejects any forged field.
func VerifyStrideTable(a *Automaton, c LookupConfig, tab []StrideEntry) *VerifyReport {
	return verify.Compiled(core.Compile(a, c).WithStrideTable(tab))
}

// CaptureStream re-executes the program under the Pin-like engine recording
// its dynamic block stream as replay currency: the edges to feed
// AdvanceBatch or ParallelReplay, plus the unreported trailing instruction
// count (fold it in with ReplayStats.AccountTail).
func CaptureStream(p *Program) ([]StreamEdge, uint64, error) {
	tool := teatool.NewCaptureTool()
	if _, err := pin.New().Run(p, tool, 0); err != nil {
		return nil, 0, err
	}
	return tool.Stream(), tool.Tail(), nil
}

// ReplayCompiled is Replay on the compiled fast path: the automaton is
// frozen into flat arrays and the pintool advances it through the batched
// zero-allocation transition function. Stats semantics are identical to
// Replay with the same Local configuration.
func ReplayCompiled(p *Program, a *Automaton, c LookupConfig) (*ReplayStats, error) {
	tool := teatool.NewCompiledReplayTool(core.Compile(a, c))
	if _, err := pin.New().Run(p, tool, 0); err != nil {
		return tool.Stats(), err
	}
	return tool.Stats(), nil
}

// SequentialReplay replays a captured stream in order with the memoryless
// cache-less transition function — the byte-exact reference for
// ParallelReplay.
func SequentialReplay(c *Compiled, stream []StreamEdge) (ReplayStats, StateID) {
	return core.SequentialReplay(c, stream)
}

// ParallelReplay shards a captured stream across goroutines and merges the
// results; the merged stats and final state are byte-identical to
// SequentialReplay (see DESIGN.md §9 for the reconciliation argument).
// shards <= 0 selects GOMAXPROCS.
func ParallelReplay(c *Compiled, stream []StreamEdge, shards int) (ReplayStats, StateID) {
	return core.ParallelReplay(c, stream, shards)
}

// SequentialReplayContext is SequentialReplay honoring cancellation: it
// polls ctx every few thousand edges and returns ctx.Err() with zero stats
// if the context ends first (a prefix's stats are not the sequential
// answer, so partial accounting is deliberately withheld).
func SequentialReplayContext(ctx context.Context, c *Compiled, stream []StreamEdge) (ReplayStats, StateID, error) {
	return core.SequentialReplayContext(ctx, c, stream)
}

// ParallelReplayContext is ParallelReplay honoring cancellation: every
// shard worker polls a shared flag and abandons its slice when the context
// ends, so a cancelled replay releases its goroutines promptly instead of
// finishing the stream.
func ParallelReplayContext(ctx context.Context, c *Compiled, stream []StreamEdge, shards int) (ReplayStats, StateID, error) {
	return core.ParallelReplayContext(ctx, c, stream, shards)
}

// Pipeline (decoupled online capture→process; DESIGN.md §14).
type (
	// PipelineConfig sizes a capture→process pipeline (workers, chunk
	// edges, ring depth, optional Obs context).
	PipelineConfig = pipeline.Config
	// PipelineMetrics is the pipeline's self-telemetry snapshot
	// (published/drained chunks, backpressure waits, quiet/sequential/
	// handoff chunk split, snapshot recompiles).
	PipelineMetrics = pipeline.Metrics
	// PipelineReplayer is a live replay pipeline: feed edges from any
	// producer, Barrier for the sequential-identical answer.
	PipelineReplayer = pipeline.ReplayPipeline
	// PipelineRecorder is a live online-recording pipeline: the recorder
	// runs on the drain while workers scan chunks speculatively.
	PipelineRecorder = pipeline.RecordPipeline
	// PipelineReplayFeed / PipelineRecordFeed adapt the pipelines to the
	// pintool interface, making the instrumentation engine a producer.
	PipelineReplayFeed = pipeline.ReplayFeed
	PipelineRecordFeed = pipeline.RecordFeed
	// PinTool is the pintool interface every edge producer feeds.
	PinTool = pin.Tool
)

// NewPipelineReplayFeed wraps a replay pipeline as a pintool.
func NewPipelineReplayFeed(p *PipelineReplayer) *PipelineReplayFeed {
	return pipeline.NewReplayFeed(p)
}

// NewPipelineRecordFeed wraps a record pipeline as a pintool.
func NewPipelineRecordFeed(p *PipelineRecorder) *PipelineRecordFeed {
	return pipeline.NewRecordFeed(p)
}

// NewReplayPipeline starts a replay pipeline over a compiled automaton.
// Feeding is single-producer; Close it when done.
func NewReplayPipeline(c *Compiled, pc PipelineConfig) *PipelineReplayer {
	return pipeline.NewReplay(c, pc)
}

// NewRecordPipeline starts an online-recording pipeline around a fresh
// recorder on s (always cache-less, as required for reconcilable chunk
// scans). Feeding is single-producer; Close it when done.
func NewRecordPipeline(s Strategy, pc PipelineConfig) *PipelineRecorder {
	return pipeline.NewRecord(s, pc)
}

// ReplayPipeline is ReplayCompiled with capture decoupled from processing:
// the Pin-like engine's analysis routine only appends edges to sequenced
// chunks while scan workers and a reconciling drain do the automaton work
// concurrently. Stats are identical to ReplayCompiled with
// ConfigGlobalNoLocal; the pipeline's self-telemetry rides along.
func ReplayPipeline(p *Program, a *Automaton, pc PipelineConfig) (*ReplayStats, PipelineMetrics, error) {
	pl := pipeline.NewReplay(core.Compile(a, core.ConfigGlobalNoLocal), pc)
	feed := pipeline.NewReplayFeed(pl)
	_, err := pin.New().Run(p, feed, 0)
	st, cur := pl.Barrier()
	m := pl.Metrics()
	pl.Close()
	st.AccountTail(cur, feed.Tail())
	return &st, m, err
}

// RecordPipeline is RecordOnline with capture decoupled from recording —
// the paper's online use case at DBT speed: the frontend streams edge
// chunks and never waits for TEA maintenance. The final automaton and
// stats are byte-identical to RecordOnline with ConfigGlobalNoLocal.
func RecordPipeline(p *Program, strategy string, tc TraceConfig, pc PipelineConfig) (*Automaton, *ReplayStats, PipelineMetrics, error) {
	s, ok := trace.NewStrategy(strategy, p, tc)
	if !ok {
		return nil, nil, PipelineMetrics{}, &UnknownStrategyError{Name: strategy}
	}
	pl := pipeline.NewRecord(s, pc)
	feed := pipeline.NewRecordFeed(pl)
	_, err := pin.New().Run(p, feed, 0)
	pl.AccountTail(feed.Tail())
	st := pl.Barrier()
	m := pl.Metrics()
	pl.Close()
	return pl.Recorder().Automaton(), &st, m, err
}

// CapturePipeline drives the program's dynamic block stream straight from
// the interpreter (no instrumentation cost model) into any pintool — the
// cpu-level pipeline producer. RunTee on the DBT side and the pin engine
// itself are the other two producers.
func CapturePipeline(ctx context.Context, p *Program, maxSteps uint64, tool PinTool) error {
	return pipeline.CaptureMachine(ctx, cpu.New(p), cfg.StarDBT, maxSteps, tool)
}

// Observability (runtime metrics, event tracing, profiling hooks).
type (
	// Obs is an observability context: a metrics registry, a bounded event
	// ring and the logical edge clock. Attach one with Replayer.SetObs /
	// CompiledReplayer.SetObs / Recorder.SetObs, or pass it to
	// SequentialReplayObs / ParallelReplayObs. All hooks are disabled — and
	// free — when no context is attached.
	Obs = obs.Obs
	// ObsRegistry is the metric registry behind an Obs context.
	ObsRegistry = obs.Registry
	// ObsEvent is one ring-buffer trace event.
	ObsEvent = obs.Event
	// FlightRecord is one post-mortem flight-recorder artifact: the event
	// suffix that led up to a trip plus a frozen registry snapshot.
	FlightRecord = obs.FlightRecord
)

// NewObs creates an observability context with the full TEA metric set
// registered and the default event-ring capacity.
func NewObs() *Obs { return obs.New() }

// ObsHandler serves the context over HTTP: /metrics (Prometheus text),
// /metrics.json, /debug/events and /debug/pprof/*.
func ObsHandler(o *Obs) http.Handler { return obs.Handler(o) }

// EncodeEvents serializes a drained event slice into the compact binary
// event log that `teadump -events` decodes.
func EncodeEvents(events []ObsEvent) []byte { return obs.EncodeEvents(events) }

// DecodeEvents parses a binary event log produced by EncodeEvents.
func DecodeEvents(data []byte) ([]ObsEvent, error) { return obs.DecodeEvents(data) }

// EncodeFlight serializes one flight-recorder artifact into the binary form
// served at /debug/flight/<seq> and decoded by `teadump -flight`.
func EncodeFlight(rec FlightRecord) []byte { return obs.EncodeFlight(rec) }

// DecodeFlight parses a flight artifact produced by EncodeFlight, fully
// validating the embedded event log.
func DecodeFlight(data []byte) (FlightRecord, error) { return obs.DecodeFlight(data) }

// SequentialReplayObs is SequentialReplay with observability: identical
// stats and final state, plus events, counters and histograms recorded
// into o (nil o delegates to SequentialReplay).
func SequentialReplayObs(c *Compiled, stream []StreamEdge, o *Obs) (ReplayStats, StateID) {
	return core.SequentialReplayObs(c, stream, o)
}

// ParallelReplayObs is ParallelReplay with observability: the merged event
// stream and all derived metrics are identical to SequentialReplayObs on
// the same stream, with counters charged to per-shard cells (nil o
// delegates to ParallelReplay).
func ParallelReplayObs(c *Compiled, stream []StreamEdge, shards int, o *Obs) (ReplayStats, StateID) {
	return core.ParallelReplayObs(c, stream, shards, o)
}

// ReplayObs is Replay with an observability context attached to the
// replayer: counters, histograms and the event ring fill while the run
// proceeds, and the counter fold is flushed before returning. A nil o
// behaves exactly like Replay.
func ReplayObs(p *Program, a *Automaton, c LookupConfig, o *Obs) (*ReplayStats, error) {
	tool := teatool.NewReplayTool(a, c)
	tool.Replayer().SetObs(o)
	_, err := pin.New().Run(p, tool, 0)
	tool.Replayer().FlushObs()
	return tool.Stats(), err
}

// RecordOnlineObs is RecordOnline with an observability context attached
// to the recorder: sync spans, trace-set gauges and the recording
// replayer's metrics fill while the run proceeds. A nil o behaves exactly
// like RecordOnline.
func RecordOnlineObs(p *Program, strategy string, tc TraceConfig, lc LookupConfig, o *Obs) (*Automaton, *ReplayStats, error) {
	s, ok := trace.NewStrategy(strategy, p, tc)
	if !ok {
		return nil, nil, &UnknownStrategyError{Name: strategy}
	}
	tool := teatool.NewRecordTool(s, lc)
	tool.Recorder().SetObs(o)
	_, err := pin.New().Run(p, tool, 0)
	tool.Recorder().Replayer().FlushObs()
	return tool.Automaton(), tool.Stats(), err
}

// RecordOnline runs the program under the Pin-like engine while building a
// TEA online with the named strategy — the paper's Table 3 workflow. It
// returns the automaton and the recording run's statistics.
func RecordOnline(p *Program, strategy string, tc TraceConfig, lc LookupConfig) (*Automaton, *ReplayStats, error) {
	return RecordOnlineContext(context.Background(), p, strategy, tc, lc, 0)
}

// RecordOnlineContext is RecordOnline with resource guards: the run stops
// early when ctx is cancelled (returning the partial automaton and stats
// alongside ctx.Err()) or when maxSteps dynamic instructions have executed
// (0 = unbounded).
func RecordOnlineContext(ctx context.Context, p *Program, strategy string, tc TraceConfig, lc LookupConfig, maxSteps uint64) (*Automaton, *ReplayStats, error) {
	s, ok := trace.NewStrategy(strategy, p, tc)
	if !ok {
		return nil, nil, &UnknownStrategyError{Name: strategy}
	}
	tool := teatool.NewRecordTool(s, lc)
	if _, err := pin.New().RunContext(ctx, p, tool, maxSteps); err != nil {
		return tool.Automaton(), tool.Stats(), err
	}
	return tool.Automaton(), tool.Stats(), nil
}

// ProfileReplay replays the program while collecting a per-TBB-instance
// profile; det may be nil. This is the paper's §2 workflow: accurate
// profile for trace instances without generating trace code.
func ProfileReplay(p *Program, a *Automaton, c LookupConfig, det *PhaseDetector) (*Profile, *ReplayStats, error) {
	tool := teatool.NewProfileTool(a, c, det)
	if _, err := pin.New().Run(p, tool, 0); err != nil {
		return nil, nil, err
	}
	return tool.Profile(), tool.Replayer().Stats(), nil
}

// NewPhaseDetector creates a phase detector (window in transitions,
// exit-ratio threshold; zero values select defaults).
func NewPhaseDetector(window uint64, threshold float64) *PhaseDetector {
	return profile.NewPhaseDetector(window, threshold)
}

// DuplicateTrace returns a new set in which the identified simple-cycle
// trace appears duplicated (Figure 1(d)), plus the duplicated trace.
func DuplicateTrace(s *TraceSet, id int32) (*TraceSet, *Trace, error) {
	return optim.Duplicate(s, trace.ID(id))
}

// ProfileByCopy splits a duplicated trace's profile per copy — the
// specialized counts an unroller consumes (Figure 1(c)).
func ProfileByCopy(p *Profile, dup *Trace) (*optim.CopyProfile, error) {
	return optim.ProfileByCopy(p, dup)
}

// Merge unions trace sets recorded on different runs of the same program
// into one set; entry conflicts keep the larger trace.
func Merge(sets ...*TraceSet) (*TraceSet, error) { return optim.Merge(sets...) }

// Prune returns a new trace set keeping only traces whose heads executed
// at least minEnters times in the profiled run — the consumer side of
// "storing trace shape and profiling information for reuse in future
// executions": the next run loads a smaller TEA with the same hot-code
// coverage.
func Prune(s *TraceSet, p *Profile, minEnters uint64) (*TraceSet, error) {
	return optim.Prune(s, p, minEnters)
}

// CodeBytes returns the code-replication cost of representing the set as
// real trace code (Table 1's DBT column); EncodedSize the TEA cost.
func CodeBytes(s *TraceSet) uint64 { return s.CodeBytes() }

// EncodedSize returns the serialized TEA size in bytes.
func EncodedSize(a *Automaton) uint64 { return core.EncodedSize(a) }

// DefaultSimConfig returns the default timing-simulator model.
func DefaultSimConfig() SimConfig { return ucsim.DefaultConfig() }

// Simulate re-executes the unmodified program on the timing simulator
// while walking the TEA, attributing cycles, cache misses and branch
// mispredictions to each trace — the paper's cross-system statistics
// use case (§1).
func Simulate(p *Program, a *Automaton, lc LookupConfig, sc SimConfig) (*SimResult, error) {
	return ucsim.SimulateTEA(p, a, lc, sc)
}

// RunDBT executes the program under the StarDBT-like translator, recording
// traces — the baseline system of the paper's evaluation. It returns the
// recorded set, the trace code-replication bytes, and the coverage.
func RunDBT(p *Program, strategy string, c TraceConfig) (*TraceSet, uint64, float64, error) {
	res, err := dbt.New().Run(p, strategy, c, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	return res.Set, res.TraceBytes, res.Coverage(), nil
}

// Verification (static analysis over the three TEA representations).
type (
	// VerifyReport is an ordered, diffable collection of rule findings.
	VerifyReport = verify.Report
	// VerifyFinding is one rule violation (rule ID, severity, locus).
	VerifyFinding = verify.Finding
)

// Verify statically checks an automaton — and its compiled form — against
// the paper's invariants without replaying: determinism (Algorithm 1),
// state/TBB bijection, trace linearity, entry-table soundness,
// reachability, NTE-soundness, CFG consistency against the program image
// (pass nil to skip the image rules), plus the full compiled-form audit
// including a structural-equivalence proof between Compile(a, c) and a.
func Verify(a *Automaton, p *Program, c LookupConfig) *VerifyReport {
	var cache *cfg.Cache
	if p != nil {
		cache = cfg.NewCache(p, cfg.StarDBT)
	}
	r := verify.Automaton(a, cache)
	r.Merge(verify.Compiled(core.Compile(a, c)))
	return r
}

// VerifyImage audits a serialized TEA end-to-end: decode against the
// program, then run every automaton and compiled rule over the result. A
// decode rejection surfaces as a W-DEC finding carrying the byte offset.
func VerifyImage(data []byte, p *Program, c LookupConfig) *VerifyReport {
	return verify.Image(data, cfg.NewCache(p, cfg.StarDBT), c)
}

// Serving (long-running replay service; see DESIGN.md §13 for the failure
// semantics these types implement).
type (
	// Server hosts a fleet of compiled TEA images and serves concurrent
	// replay sessions over the length-prefixed binary wire protocol, with
	// per-tenant quotas, backpressure, panic isolation and a per-image
	// circuit breaker gated on re-verification.
	Server = serve.Server
	// ServeConfig configures a Server (quotas, breaker, timeouts).
	ServeConfig = serve.Config
	// ServeQuota bounds one tenant's concurrency, steps and bytes.
	ServeQuota = serve.Quota
	// ServeError is the structured, wire-stable error every session
	// failure surfaces as; Temporary() marks the retryable codes.
	ServeError = serve.Error
	// ServeCode is the stable error taxonomy of the serving layer.
	ServeCode = serve.Code
	// ServeClient is the session client: idempotent resume over
	// reconnects with jittered exponential backoff. One per session;
	// not safe for concurrent use.
	ServeClient = client.Client
	// ServeClientConfig configures a ServeClient (tenant, dialer,
	// retry budget, per-operation timeout).
	ServeClientConfig = client.Config
)

// The wire-stable error codes of the serving layer (DESIGN.md §13).
const (
	ServeCodeOK             = serve.CodeOK
	ServeCodeProto          = serve.CodeProto
	ServeCodeUnknownImage   = serve.CodeUnknownImage
	ServeCodeUnknownSession = serve.CodeUnknownSession
	ServeCodeBackpressure   = serve.CodeBackpressure
	ServeCodeQuotaSteps     = serve.CodeQuotaSteps
	ServeCodeQuotaBytes     = serve.CodeQuotaBytes
	ServeCodeDeadline       = serve.CodeDeadline
	ServeCodeQuarantined    = serve.CodeQuarantined
	ServeCodeBadImage       = serve.CodeBadImage
	ServeCodeShutdown       = serve.CodeShutdown
	ServeCodeInternal       = serve.CodeInternal
	ServeCodeCorrupt        = serve.CodeCorrupt
)

// NewServer creates a replay server; Host images on it, then Serve a
// listener. Shutdown drains attached sessions before returning.
func NewServer(c ServeConfig) *Server { return serve.NewServer(c) }

// NewServeClient creates a session client from an explicit configuration
// (cfg.Dial must be set; see DialServe for the TCP shorthand).
func NewServeClient(cfg ServeClientConfig) (*ServeClient, error) { return client.New(cfg) }

// DialServe creates a session client that dials addr over TCP.
func DialServe(addr string, cfg ServeClientConfig) (*ServeClient, error) {
	return client.Dial(addr, cfg)
}
