package tea

import (
	"errors"
	"testing"
)

const copySrc = `
; Figure 1(a): copy 100 words, repeated 60 rounds.
.entry main
.mem 8192
main:
    movi ebp, 60
round:
    movi ecx, 100
    movi esi, 1000
    movi edi, 4000
loop:
    load  eax, [esi+0]
    store [edi+0], eax
    addi  esi, 1
    addi  edi, 1
    subi  ecx, 1
    jne   loop
    subi ebp, 1
    jgt  round
    halt
`

func TestPublicEndToEnd(t *testing.T) {
	p, err := Assemble("copy", copySrc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := RecordTraces(p, "mret", TraceConfig{HotThreshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no traces")
	}
	a := Build(set)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}

	// Size claims.
	if EncodedSize(a) >= CodeBytes(set) {
		t.Error("TEA not smaller than code replication")
	}

	// Serialize, decode, replay.
	data, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(data, p)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(p, b, ConfigGlobalLocal)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Coverage() < 0.9 {
		t.Errorf("coverage = %.3f", stats.Coverage())
	}
}

func TestPublicRecordOnline(t *testing.T) {
	p := MustAssemble("copy", copySrc)
	a, stats, err := RecordOnline(p, "mret", TraceConfig{HotThreshold: 30}, ConfigGlobalLocal)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() < 2 {
		t.Error("online recording built nothing")
	}
	if stats.Instrs == 0 {
		t.Error("no instructions accounted")
	}
}

func TestPublicProfileAndDuplicate(t *testing.T) {
	p := MustAssemble("copy", copySrc)
	set, err := RecordTraces(p, "mret", TraceConfig{HotThreshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := set.ByEntry(p.Labels["loop"])
	if !ok {
		t.Fatal("no loop trace")
	}
	dupSet, dup, err := DuplicateTrace(set, int32(loop.ID))
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := ProfileReplay(p, Build(dupSet), ConfigGlobalLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ProfileByCopy(prof, dup)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Enters[0] == 0 || cp.Enters[1] == 0 {
		t.Errorf("copy counts: %+v", cp.Enters)
	}
}

func TestPublicBenchmark(t *testing.T) {
	if len(BenchmarkNames()) != 26 {
		t.Error("wrong benchmark count")
	}
	p, err := Benchmark("mcf", 200_000)
	if err != nil {
		t.Fatal(err)
	}
	set, _, cov, err := RunDBT(p, "mret", TraceConfig{HotThreshold: 12})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 || cov <= 0 {
		t.Errorf("set=%v cov=%.3f", set, cov)
	}
	var ub *UnknownBenchmarkError
	if _, err := Benchmark("doom", 1); !errors.As(err, &ub) {
		t.Errorf("err = %v, want UnknownBenchmarkError", err)
	}
}

func TestPublicErrors(t *testing.T) {
	p := MustAssemble("x", "e: halt\n")
	var us *UnknownStrategyError
	if _, err := RecordTraces(p, "bogus", TraceConfig{}); !errors.As(err, &us) {
		t.Errorf("err = %v, want UnknownStrategyError", err)
	}
	if _, _, err := RecordOnline(p, "bogus", TraceConfig{}, ConfigGlobalLocal); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := Decode([]byte("junk"), p); err == nil {
		t.Error("junk decoded")
	}
}

func TestPublicRendering(t *testing.T) {
	p := MustAssemble("copy", copySrc)
	set, _ := RecordTraces(p, "mret", TraceConfig{HotThreshold: 30})
	a := Build(set)
	if Dot(a, "t") == "" || Summary(a) == "" {
		t.Error("empty rendering")
	}
}

func TestPublicPhaseDetector(t *testing.T) {
	p := MustAssemble("copy", copySrc)
	set, _ := RecordTraces(p, "mret", TraceConfig{HotThreshold: 30})
	det := NewPhaseDetector(256, 0.15)
	_, _, err := ProfileReplay(p, Build(set), ConfigGlobalLocal, det)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Phases()) == 0 {
		t.Error("no phases detected")
	}
	if det.StableFraction() < 0.5 {
		t.Errorf("stable fraction %.2f for a steady loop", det.StableFraction())
	}
}

func TestPublicMergePruneSimulate(t *testing.T) {
	p := MustAssemble("copy", copySrc)
	setA, err := RecordTraces(p, "mret", TraceConfig{HotThreshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	setB, err := RecordTraces(p, "mret", TraceConfig{HotThreshold: 55})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(setA, setB)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() < setA.Len() {
		t.Error("merge lost traces")
	}

	prof, _, err := ProfileReplay(p, Build(merged), ConfigGlobalLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Prune(merged, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() == 0 {
		t.Error("prune removed everything at threshold 1")
	}

	res, err := Simulate(p, Build(pruned), ConfigGlobalLocal, DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.CPI() < 1 {
		t.Errorf("CPI = %.2f", res.Total.CPI())
	}
}

func TestPublicInstrReplayer(t *testing.T) {
	p := MustAssemble("copy", copySrc)
	set, err := RecordTraces(p, "mret", TraceConfig{HotThreshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	r := NewInstrReplayer(Build(set), ConfigGlobalLocal, p)
	m := NewMachine(p)
	for !m.Halted() {
		r.StepInstr(m.PC())
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Stats().Coverage() < 0.9 {
		t.Errorf("instruction-level coverage %.3f", r.Stats().Coverage())
	}
}

func TestPublicConstructors(t *testing.T) {
	p := MustAssemble("copy", copySrc)
	s, ok := NewStrategy("mret", p, TraceConfig{HotThreshold: 30})
	if !ok {
		t.Fatal("mret not found")
	}
	rec := NewRecorder(s, ConfigGlobalLocal)
	if rec.Automaton().NumStates() != 1 {
		t.Error("fresh recorder should have only NTE")
	}
	set, _ := RecordTraces(p, "mret", TraceConfig{HotThreshold: 30})
	a := Build(set)
	r := NewReplayer(a, ConfigGlobalNoLocal)
	if r.Cur() != NTE {
		t.Error("fresh replayer not at NTE")
	}
	prof, _, err := ProfileReplay(p, a, ConfigGlobalLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	withProf, err := EncodeWithProfile(a, prof)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(withProf) <= len(plain) {
		t.Error("profile counters did not grow the encoding")
	}
}
