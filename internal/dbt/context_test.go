package dbt

import (
	"context"
	"errors"
	"testing"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

func TestRunWithContextCanceled(t *testing.T) {
	p, err := asm.Assemble("spin", "e:\n addi eax, 1\n jmp e\n")
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := New().RunWithContext(ctx, p, sel, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Set == nil {
		t.Fatal("no partial result returned on cancellation")
	}
}

func TestRunWithContextStepCap(t *testing.T) {
	p := progs.Figure2(60, 300)
	sel, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 50})
	res, err := New().RunWithContext(context.Background(), p, sel, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Steps < 500 {
		t.Errorf("stopped after %d steps, cap was 500", res.Info.Steps)
	}
	full, err := New().Run(p, "mret", trace.Config{HotThreshold: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Steps >= full.Info.Steps {
		t.Errorf("capped run executed the whole program: %d steps", res.Info.Steps)
	}
}

func TestRunWithContextNil(t *testing.T) {
	p := progs.Figure1(10, 1)
	sel, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 5})
	if _, err := New().RunWithContext(nil, p, sel, 0); err != nil { //nolint:staticcheck
		t.Fatalf("nil context: %v", err)
	}
}
