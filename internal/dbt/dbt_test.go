package dbt

import (
	"testing"

	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

func TestRunRecordsTraces(t *testing.T) {
	p := progs.Figure2(60, 300)
	res, err := New().Run(p, "mret", trace.Config{HotThreshold: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() == 0 {
		t.Fatal("no traces recorded")
	}
	if res.TraceBytes != res.Set.CodeBytes() {
		t.Error("TraceBytes disagrees with Set.CodeBytes")
	}
	if res.BlockCacheBytes == 0 {
		t.Error("no translated block bytes")
	}
	if res.Coverage() <= 0.5 {
		t.Errorf("coverage = %.3f", res.Coverage())
	}
	if res.Info.Steps == 0 || res.Info.Blocks == 0 {
		t.Errorf("info = %+v", res.Info)
	}
	_ = res.String()
}

func TestUnknownStrategyRejected(t *testing.T) {
	p := progs.Figure1(10, 1)
	if _, err := New().Run(p, "nope", trace.Config{}, 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestTimeUnitsIncludeTranslationAndRecording(t *testing.T) {
	p := progs.Figure2(60, 300)
	res, err := New().Run(p, "mret", trace.Config{HotThreshold: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeUnits <= float64(res.Instrs) {
		t.Error("time units do not include translation overhead")
	}
	// But the DBT overhead is modest: well under 2x for a loopy program.
	if res.TimeUnits > 2*float64(res.Instrs) {
		t.Errorf("DBT slowdown %.2fx too high for a loopy program",
			res.TimeUnits/float64(res.Instrs))
	}
}

func TestCoverageZeroWithImpossibleThreshold(t *testing.T) {
	p := progs.Figure1(50, 2)
	res, err := New().Run(p, "mret", trace.Config{HotThreshold: 1 << 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 0 || res.Coverage() != 0 {
		t.Errorf("set=%v coverage=%.3f", res.Set, res.Coverage())
	}
}

func TestStepCap(t *testing.T) {
	p := progs.Figure1(100, 1000)
	res, err := New().Run(p, "mret", trace.Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Steps > 1300 {
		t.Errorf("Steps = %d with cap 1000", res.Info.Steps)
	}
}

func TestAllStrategiesRunUnderDBT(t *testing.T) {
	for _, s := range []string{"mret", "tt", "ctt", "mfet"} {
		p := progs.Figure2(60, 300)
		res, err := New().Run(p, s, trace.Config{HotThreshold: 30}, 0)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Set.Strategy != s {
			t.Errorf("strategy = %q", res.Set.Strategy)
		}
		if res.Set.Len() == 0 {
			t.Errorf("%s recorded nothing", s)
		}
	}
}

func TestCustomCostModel(t *testing.T) {
	p := progs.Figure1(50, 5)
	free := NewWithCost(CostModel{PerInstr: 1})
	res, err := free.Run(p, "mret", trace.Config{HotThreshold: 1 << 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeUnits != float64(res.Instrs) {
		t.Errorf("TimeUnits = %.0f, want %d", res.TimeUnits, res.Instrs)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := progs.Figure2(60, 300)
	r1, err := New().Run(p, "ctt", trace.Config{HotThreshold: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New().Run(p, "ctt", trace.Config{HotThreshold: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Set.NumTBBs() != r2.Set.NumTBBs() || r1.TimeUnits != r2.TimeUnits ||
		r1.TraceBytes != r2.TraceBytes {
		t.Error("DBT runs not deterministic")
	}
}

func TestCodeImageMatchesAccounting(t *testing.T) {
	p := progs.Figure2(60, 300)
	res, err := New().Run(p, "mret", trace.Config{HotThreshold: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.CodeImage)) != res.BlockCacheBytes {
		t.Errorf("code image %d bytes, accounting says %d", len(res.CodeImage), res.BlockCacheBytes)
	}
	if len(res.CodeImage) == 0 {
		t.Error("empty code image")
	}
}
