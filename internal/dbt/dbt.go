// Package dbt models a conventional dynamic binary translator in the mould
// of StarDBT [Wang et al. 2007], the baseline system of the paper's
// evaluation.
//
// The translator discovers dynamic basic blocks StarDBT-style (blocks start
// at branch targets and end at branches), translates each block once into a
// code cache, chains translated blocks, records hot traces with a pluggable
// selection strategy, and *replicates code* to materialize those traces —
// the representation whose memory cost the paper's Table 1 compares against
// TEA. Because traces are real code, executing them requires no transition
// function; the only costs are translation and recording, which is why the
// DBT columns of Tables 2-4 are fast.
package dbt

import (
	"context"
	"fmt"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/trace"
)

// CostModel carries the simulated per-event costs of the translator, in
// abstract units of one interpreted instruction. The defaults model a
// translation-based DBT: executing translated code is as fast as native
// code (cost 1 per instruction), translating a block costs a constant plus
// a per-instruction term, and recording a trace costs per TBB copied.
type CostModel struct {
	// PerInstr is the cost of executing one already-translated instruction.
	PerInstr float64
	// TranslateBlock is the one-time cost of translating a block.
	TranslateBlock float64
	// TranslatePerInstr is the per-instruction translation cost.
	TranslatePerInstr float64
	// DispatchCold is the dispatcher cost paid each time control enters a
	// block that is not yet chained to its predecessor.
	DispatchCold float64
	// RecordPerTBB is the cost of copying one TBB into a trace.
	RecordPerTBB float64
}

// DefaultCostModel returns costs representative of a lightweight
// same-ISA translator (StarDBT translates IA-32 to IA-32).
func DefaultCostModel() CostModel {
	return CostModel{
		PerInstr:          1,
		TranslateBlock:    60,
		TranslatePerInstr: 12,
		DispatchCold:      8,
		RecordPerTBB:      40,
	}
}

// BlockStubBytes is the per-block overhead the code cache pays for a
// translated basic block (chaining stubs and bookkeeping).
const BlockStubBytes = 10

// Result summarizes one program execution under the translator.
type Result struct {
	// Set holds the traces recorded during the run.
	Set *trace.Set
	// Info carries dynamic counts of the run.
	Info trace.RunInfo

	// BlockCacheBytes is the code cache spent on translated basic blocks.
	BlockCacheBytes uint64
	// CodeImage is the translated block code itself: every block's real
	// byte encoding plus its chaining stub, in translation order. Its
	// length equals BlockCacheBytes.
	CodeImage []byte
	// TraceBytes is the code-replication cost of the recorded traces — the
	// "DBT" column of Table 1.
	TraceBytes uint64

	// TraceInstrs counts dynamic instructions executed inside trace code
	// and Instrs all dynamic instructions (StarDBT counting: REP once).
	TraceInstrs uint64
	Instrs      uint64

	// TimeUnits is the simulated run time under the cost model.
	TimeUnits float64
}

// Coverage returns the fraction of dynamic instructions spent in traces
// (the DBT "Coverage" column of Tables 2 and 3).
func (r *Result) Coverage() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.TraceInstrs) / float64(r.Instrs)
}

func (r *Result) String() string {
	return fmt.Sprintf("dbt(%s: %d traces, %dB traces, coverage %.1f%%)",
		r.Set.Strategy, r.Set.Len(), r.TraceBytes, r.Coverage()*100)
}

// Translator executes programs under the modelled DBT.
type Translator struct {
	cost CostModel
}

// New creates a Translator with the default cost model.
func New() *Translator { return &Translator{cost: DefaultCostModel()} }

// NewWithCost creates a Translator with a custom cost model.
func NewWithCost(c CostModel) *Translator { return &Translator{cost: c} }

// Run executes p to completion (or maxSteps, 0 = unbounded), recording
// traces with the given strategy.
func (t *Translator) Run(p *isa.Program, strategy string, c trace.Config, maxSteps uint64) (*Result, error) {
	sel, ok := trace.NewStrategy(strategy, p, c)
	if !ok {
		return nil, fmt.Errorf("dbt: unknown strategy %q", strategy)
	}
	return t.RunWith(p, sel, maxSteps)
}

// RunWith executes p under the translator with an explicit selector.
func (t *Translator) RunWith(p *isa.Program, sel trace.Strategy, maxSteps uint64) (*Result, error) {
	return t.RunWithContext(context.Background(), p, sel, maxSteps)
}

// ctxCheckMask batches context polls to one per 1024 block edges.
const ctxCheckMask = 1<<10 - 1

// RunWithContext is RunWith with cancellation: a program that never halts
// cannot hang the caller when the context carries a deadline or is
// cancelled. The partial Result is returned alongside ctx.Err().
func (t *Translator) RunWithContext(ctx context.Context, p *isa.Program, sel trace.Strategy, maxSteps uint64) (*Result, error) {
	return t.run(ctx, p, sel, maxSteps, nil)
}

// RunTee is RunWithContext, additionally teeing every observed block edge —
// including the final nil-To halt edge, whose instrs carry the trailing
// count — with its StarDBT-counted instruction delta into sink. This is the
// translator-side producer for the capture→process pipeline: the DBT keeps
// translating and recording at full speed while a decoupled TEA consumer
// rides along on the teed stream.
func (t *Translator) RunTee(ctx context.Context, p *isa.Program, sel trace.Strategy, maxSteps uint64, sink func(e cfg.Edge, instrs uint64)) (*Result, error) {
	return t.run(ctx, p, sel, maxSteps, sink)
}

func (t *Translator) run(ctx context.Context, p *isa.Program, sel trace.Strategy, maxSteps uint64, sink func(e cfg.Edge, instrs uint64)) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m := cpu.New(p)
	r := cfg.NewRunner(m, cfg.StarDBT)
	res := &Result{}

	translated := make(map[uint64]bool)
	// chained marks (pred terminator, succ head) pairs already patched so
	// the dispatcher is skipped on later executions.
	type chainKey struct {
		from uint64
		to   uint64
	}
	chained := make(map[chainKey]bool)

	// pos tracks execution through recorded trace code, mirroring how
	// translated trace code would run: enter at the trace head, follow
	// in-trace links, leave at side exits.
	var pos *trace.TBB
	set := sel.Set()

	var mark cpu.StepMark
	var canceled error
	var iter uint64
	for {
		if maxSteps > 0 && m.Steps() >= maxSteps {
			break
		}
		if iter&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				canceled = ctx.Err()
			default:
			}
			if canceled != nil {
				break
			}
		}
		iter++
		e, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}

		// Account the instructions of the block that just finished.
		instrs := mark.Delta(m.Steps())
		res.Instrs += instrs
		if pos != nil {
			res.TraceInstrs += instrs
		}
		if sink != nil {
			sink(e, instrs)
		}

		if e.To == nil {
			sel.Observe(e)
			break
		}
		res.Info.Edges++

		// Translation: first touch of a block pays the translator and
		// copies the block's code into the cache, followed by its stub.
		if !translated[e.To.Head] {
			translated[e.To.Head] = true
			res.TimeUnits += t.cost.TranslateBlock + t.cost.TranslatePerInstr*float64(e.To.NumInstrs)
			code, err := p.EncodeRange(e.To.Head, e.To.Term.Next())
			if err != nil {
				return nil, err
			}
			res.CodeImage = append(res.CodeImage, code...)
			res.CodeImage = append(res.CodeImage, make([]byte, BlockStubBytes)...)
			res.BlockCacheBytes += e.To.Bytes + BlockStubBytes
		}
		// Chaining: the first traversal of an edge goes through the
		// dispatcher, after which the edge is patched.
		if e.From != nil {
			k := chainKey{e.From.End, e.To.Head}
			if !chained[k] {
				chained[k] = true
				res.TimeUnits += t.cost.DispatchCold
			}
		}

		// Trace execution tracking.
		if pos != nil {
			if next, ok := pos.Succs[e.To.Head]; ok {
				pos = next
			} else {
				pos = nil
			}
		}
		if pos == nil {
			if tr, ok := set.ByEntry(e.To.Head); ok {
				pos = tr.Head()
			}
		}

		// Trace recording (the DBT records while executing).
		before := set.NumTBBs()
		sel.Observe(e)
		if after := set.NumTBBs(); after > before {
			res.TimeUnits += t.cost.RecordPerTBB * float64(after-before)
		}
	}

	res.Set = set
	res.Info.Steps = m.Steps()
	res.Info.PinSteps = m.PinSteps()
	res.Info.Blocks = r.Cache().Len()
	res.TraceBytes = set.CodeBytes()
	res.TimeUnits += t.cost.PerInstr * float64(res.Instrs)
	return res, canceled
}
