package pin

import (
	"context"
	"errors"
	"testing"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/isa"
)

// spinProg never halts; cancellation is the only way out.
func spinProg(t *testing.T) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("spin", "e:\n addi eax, 1\n jmp e\n")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunContextCanceled(t *testing.T) {
	p := spinProg(t)
	tool := &countingTool{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := New().RunContext(ctx, p, tool, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned on cancellation")
	}
	// The tool contract holds even on a cancelled run: Fini is delivered
	// exactly once with the unreported tail.
	if tool.finis != 1 {
		t.Errorf("Fini called %d times on cancellation, want 1", tool.finis)
	}
}

func TestRunContextStepCap(t *testing.T) {
	p := spinProg(t)
	res, err := New().RunContext(context.Background(), p, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 2000 {
		t.Errorf("stopped after %d steps, cap was 2000", res.Steps)
	}
	// The cap bounds the run: the spin program would otherwise never return.
	if res.Steps > 2000+4096 {
		t.Errorf("ran %d steps past a 2000-step cap", res.Steps)
	}
}

func TestRunContextNil(t *testing.T) {
	p := spinProg(t)
	if _, err := New().RunContext(nil, p, nil, 100); err != nil { //nolint:staticcheck
		t.Fatalf("nil context: %v", err)
	}
}
