// Package pin models the instrumentation framework the paper implements
// its TEA tool in: a Pin-like engine [Luk et al. 2005] that runs a program
// out of a code cache and calls user "analysis routines" at instrumented
// points.
//
// Two behaviours of the real Pin matter for the paper's experiments and
// are reproduced here (§4.1):
//
//   - Pin breaks dynamic basic blocks at "unexpected" instructions (CPUID)
//     and at REP-prefixed instructions, which it expands into loops.
//     Because of that, the paper's pintool instruments the *taken and
//     fall-through edges* of branches rather than the beginnings of TBBs,
//     so that it sees exactly the transitions StarDBT saw. This engine does
//     the same: tools receive one callback per *branch* edge, with Pin's
//     internal split edges merged into the preceding block.
//
//   - Pin counts every iteration of a REP instruction as one dynamic
//     instruction, whereas StarDBT counts the instruction once. The per-
//     callback instruction counts here use Pin's convention.
package pin

import (
	"context"
	"fmt"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
)

// Tool is a pintool: a set of analysis routines invoked on instrumented
// edges. Edge is called once per observed branch edge with the number of
// dynamic instructions (Pin-counted) executed since the previous callback;
// for the initial pseudo-edge into the program entry instrs is zero. Fini
// is called once after the program halts with the trailing instruction
// count.
type Tool interface {
	Edge(e cfg.Edge, instrs uint64)
	Fini(instrs uint64)
}

// CostModel carries the engine's simulated costs in units of one natively
// executed instruction.
type CostModel struct {
	// PerInstr is the cost of one instruction run from the code cache.
	PerInstr float64
	// PerBlock is the engine's per-block overhead (code-cache dispatch,
	// versus native fall-through). Paid for every Pin block whether or not
	// a tool is attached; this alone produces the "Without Pintool" row of
	// Table 4.
	PerBlock float64
	// JitBlock is the one-time instrumentation/compilation cost per block.
	JitBlock float64
	// PerCall is the cost of calling an analysis routine: argument setup,
	// register spills and the call itself. Paid per reported edge when a
	// tool is attached; the paper blames this overhead for most of TEA's
	// slowdown (§4).
	PerCall float64
}

// DefaultCostModel reflects Pin's published overheads: low single-digit
// percent per-block cost and tens of cycles per inlined-call analysis
// routine.
func DefaultCostModel() CostModel {
	return CostModel{
		PerInstr: 1,
		PerBlock: 2.8,
		JitBlock: 400,
		PerCall:  108,
	}
}

// Result summarizes one run under the engine.
type Result struct {
	// Steps is the StarDBT-style dynamic instruction count; PinSteps the
	// Pin-style count (REP iterations expanded).
	Steps    uint64
	PinSteps uint64
	// Blocks counts executed Pin blocks; StaticBlocks distinct ones.
	Blocks       uint64
	StaticBlocks int
	// Edges counts the branch edges reported to the tool.
	Edges uint64
	// EngineUnits is the simulated time of the engine itself (excluding
	// whatever work the tool does in its callbacks).
	EngineUnits float64
}

// Engine executes programs under instrumentation.
type Engine struct {
	cost CostModel
}

// New creates an Engine with the default cost model.
func New() *Engine { return &Engine{cost: DefaultCostModel()} }

// NewWithCost creates an Engine with a custom cost model.
func NewWithCost(c CostModel) *Engine { return &Engine{cost: c} }

// Run executes p to completion (or maxSteps; 0 = unbounded) with the tool
// attached; tool may be nil, which corresponds to Table 4's "Without
// Pintool" configuration.
func (en *Engine) Run(p *isa.Program, tool Tool, maxSteps uint64) (*Result, error) {
	return en.RunContext(context.Background(), p, tool, maxSteps)
}

// ctxCheckMask batches the engine's context polls to one per 1024 block
// edges, keeping the cancellation guard off the per-block hot path.
const ctxCheckMask = 1<<10 - 1

// RunContext is Run with cancellation: a program that never halts cannot
// hang the caller when the context carries a deadline or is cancelled. On
// cancellation the tool still receives Fini with the unreported tail, the
// partial Result is returned, and the error is ctx.Err().
func (en *Engine) RunContext(ctx context.Context, p *isa.Program, tool Tool, maxSteps uint64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m := cpu.New(p)
	r := cfg.NewRunner(m, cfg.Pin)
	res := &Result{}
	jitted := make(map[uint64]bool)

	// Tools must see StarDBT-equivalent transitions (paper §4.1): the
	// engine executes Pin-split blocks internally, but every reported edge
	// is remapped onto the StarDBT block at the same head. Between two
	// reported edges there is no branch instruction, so the StarDBT block
	// decoded from the last reported head terminates exactly at the branch
	// that triggers the next report.
	sdCache := cfg.NewCache(p, cfg.StarDBT)
	var curSD *cfg.Block
	report := func(raw cfg.Edge, instrs uint64) error {
		var toSD *cfg.Block
		if raw.To != nil {
			var err error
			toSD, err = sdCache.BlockAt(raw.To.Head)
			if err != nil {
				return err
			}
		}
		res.Edges++
		tool.Edge(cfg.Edge{From: curSD, To: toSD, Taken: raw.Taken}, instrs)
		curSD = toSD
		return nil
	}

	var prevPin uint64
	var pending uint64 // Pin-counted instrs accumulated across split edges
	var canceled error
	var iter uint64

	for {
		if maxSteps > 0 && m.Steps() >= maxSteps {
			break
		}
		if iter&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				canceled = ctx.Err()
			default:
			}
			if canceled != nil {
				break
			}
		}
		iter++
		e, ok, err := r.Next()
		if err != nil {
			return nil, fmt.Errorf("pin: %w", err)
		}
		if !ok {
			break
		}

		pin := m.PinSteps()
		pending += pin - prevPin
		prevPin = pin

		if e.To != nil {
			res.Blocks++
			if !jitted[e.To.Head] {
				jitted[e.To.Head] = true
				res.EngineUnits += en.cost.JitBlock
			}
			res.EngineUnits += en.cost.PerBlock
		}

		if e.To == nil {
			// Program halted: the final edge flushes the trailing
			// instructions.
			if tool != nil {
				if err := report(e, pending); err != nil {
					return nil, err
				}
			}
			pending = 0
			break
		}

		// Report only the edges StarDBT would see: the initial entry and
		// branch edges. Pin's internal splits (REP, CPUID) merge into the
		// preceding block.
		if e.From == nil || e.From.Term.IsBranch() {
			if tool != nil {
				if err := report(e, pending); err != nil {
					return nil, err
				}
			}
			pending = 0
		}
	}

	if tool != nil {
		// pending is zero after a normal halt and carries the unreported
		// tail of a step-capped or cancelled run.
		tool.Fini(pending)
	}
	res.Steps = m.Steps()
	res.PinSteps = m.PinSteps()
	res.StaticBlocks = r.Cache().Len()
	res.EngineUnits += en.cost.PerInstr * float64(res.PinSteps)
	return res, canceled
}

// Cost returns the engine's cost model.
func (en *Engine) Cost() CostModel { return en.cost }
