package pin

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/progs"
)

// countingTool records every callback it receives.
type countingTool struct {
	edges      int
	finis      int
	instrs     uint64
	finiInstrs uint64
	sawEntry   bool
	sawFinal   bool
	nonBranch  int
}

func (c *countingTool) Edge(e cfg.Edge, instrs uint64) {
	c.edges++
	c.instrs += instrs
	if e.From == nil {
		c.sawEntry = true
		if instrs != 0 {
			c.nonBranch++ // entry edge must carry no instructions
		}
	} else if e.To == nil {
		c.sawFinal = true
	} else if !e.From.Term.IsBranch() {
		c.nonBranch++
	}
}

func (c *countingTool) Fini(instrs uint64) {
	c.finis++
	c.finiInstrs += instrs
}

func TestRunWithoutTool(t *testing.T) {
	p := progs.Figure1(50, 4)
	res, err := New().Run(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.Blocks == 0 || res.StaticBlocks == 0 {
		t.Errorf("result = %+v", res)
	}
	if res.EngineUnits <= float64(res.PinSteps) {
		t.Error("engine overhead missing")
	}
}

func TestToolSeesOnlyBranchEdges(t *testing.T) {
	// RepDemo has REP and CPUID instructions: Pin splits blocks there, but
	// the tool must only see StarDBT-visible transitions (§4.1).
	p := progs.RepDemo(30)
	tool := &countingTool{}
	res, err := New().Run(p, tool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tool.nonBranch != 0 {
		t.Errorf("%d non-branch edges leaked to the tool", tool.nonBranch)
	}
	if !tool.sawEntry || !tool.sawFinal {
		t.Error("entry or final edge missing")
	}
	if tool.finis != 1 {
		t.Errorf("Fini called %d times", tool.finis)
	}
	// Pin reported fewer edges to the tool than blocks executed (splits
	// were merged).
	if res.Edges >= res.Blocks {
		t.Errorf("edges %d >= blocks %d; splits not merged", res.Edges, res.Blocks)
	}
}

func TestInstructionCountsPinConvention(t *testing.T) {
	p := progs.RepDemo(10)
	tool := &countingTool{}
	res, err := New().Run(p, tool, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every Pin-counted instruction reaches the tool exactly once.
	if got := tool.instrs + tool.finiInstrs; got != res.PinSteps {
		t.Errorf("tool saw %d instrs, machine ran %d", got, res.PinSteps)
	}
	// REP expansion: Pin count exceeds StarDBT count.
	if res.PinSteps <= res.Steps {
		t.Errorf("PinSteps %d <= Steps %d; REP not expanded", res.PinSteps, res.Steps)
	}
}

func TestStepCapFlushesToFini(t *testing.T) {
	p := progs.Figure1(100, 100)
	tool := &countingTool{}
	res, err := New().Run(p, tool, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 300 {
		t.Errorf("Steps = %d", res.Steps)
	}
	if tool.finis != 1 {
		t.Errorf("Fini called %d times", tool.finis)
	}
	if tool.instrs+tool.finiInstrs != res.PinSteps {
		t.Error("instructions lost on step cap")
	}
}

func TestEngineUnitsGrowWithBranchiness(t *testing.T) {
	// Same dynamic instruction budget, more blocks => more overhead. The
	// call-heavy demo has far smaller blocks than the straight-line copy.
	copyProg := progs.Figure1(400, 10)
	callProg := progs.CallDemo(1000)
	rc, err := New().Run(copyProg, nil, 20000)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := New().Run(callProg, nil, 20000)
	if err != nil {
		t.Fatal(err)
	}
	relCopy := rc.EngineUnits / float64(rc.PinSteps)
	relCall := rb.EngineUnits / float64(rb.PinSteps)
	if relCall <= relCopy {
		t.Errorf("branchy overhead %.3f <= straight-line overhead %.3f", relCall, relCopy)
	}
}

func TestCostAccessors(t *testing.T) {
	e := NewWithCost(CostModel{PerInstr: 2})
	if e.Cost().PerInstr != 2 {
		t.Error("cost model not stored")
	}
	if DefaultCostModel().PerCall <= DefaultCostModel().PerBlock {
		t.Error("analysis calls should dominate block overhead")
	}
}
