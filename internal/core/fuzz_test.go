package core

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

// FuzzDecode hammers the wire-format decoder: arbitrary bytes must decode
// to an error or to an automaton that passes Check — never panic, never
// return an inconsistent automaton. (go test runs the seed corpus; `go
// test -fuzz=FuzzDecode ./internal/core` explores further.)
func FuzzDecode(f *testing.F) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)

	// Seeds: a valid stream for each strategy, plus junk.
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		s, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 30})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(Encode(Build(set)))
	}
	f.Add([]byte{})
	f.Add([]byte("TEA2"))
	f.Add([]byte("TEA2\x00\x00\x00"))
	f.Add([]byte("garbage that is long enough to walk through several fields"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data, cache)
		if err != nil {
			return
		}
		if cerr := a.Check(); cerr != nil {
			t.Fatalf("decoded automaton fails Check: %v", cerr)
		}
		// A decoded automaton must re-encode decodably.
		again := Encode(a)
		if _, err := Decode(again, cache); err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
	})
}
