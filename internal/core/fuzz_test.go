// FuzzDecode lives in package core_test (not core) so it can drive the
// static verifier over every decoded input: internal/verify imports core,
// and the external test package breaks the cycle.
package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/verify"
)

// corpusDir holds regression inputs for FuzzDecode and TestDecodeCorpus:
// faultinject-generated mutants of valid encodings, checked in so every
// decoder fix stays covered (regenerate with go run ./scripts/gencorpus).
const corpusDir = "testdata/decode_corpus"

// auditDecoded applies the static-verification fuzz invariant to a decoded
// automaton: the verifier must run to completion (no panic — the harness
// catches those), findings must be well-formed, and the only Error-severity
// rules a decodable image may trip are the image-consistency family — the
// decoder owns structure, the verifier owns CFG plausibility. Anything else
// means decoder and verifier disagree about a structural invariant.
func auditDecoded(t *testing.T, a *core.Automaton, cache *cfg.Cache) {
	t.Helper()
	r := verify.Automaton(a, cache)
	r.Merge(verify.Compiled(core.Compile(a, core.ConfigGlobalLocal)))
	for _, f := range r.Findings {
		if f.Rule == "" {
			t.Fatalf("finding with empty rule: %+v", f)
		}
		if f.Severity != verify.Warn && f.Severity != verify.Error {
			t.Fatalf("finding with invalid severity: %+v", f)
		}
		if f.Severity == verify.Error && f.Rule != "A-CFG" && f.Rule != "A-IMG" {
			t.Fatalf("decodable image trips structural rule %s: %s", f.Rule, f)
		}
	}
}

// FuzzDecode hammers the wire-format decoder: arbitrary bytes must decode
// to an error or to an automaton that passes Check and the static verifier
// — never panic, never return an inconsistent automaton. (go test runs the
// seed corpus; `go test -fuzz=FuzzDecode ./internal/core` explores further.)
func FuzzDecode(f *testing.F) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)

	// Seeds: a valid stream for each strategy, deterministic fault-injected
	// mutants of each, plus hand-picked junk.
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		s, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 30})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
		if err != nil {
			f.Fatal(err)
		}
		data, err := core.Encode(core.Build(set))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		for _, mut := range faultinject.Corpus(1, data, 16) {
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TEA2"))
	f.Add([]byte("TEA2\x00\x00\x00"))
	f.Add([]byte("garbage that is long enough to walk through several fields"))

	// Checked-in regression corpus.
	if files, err := filepath.Glob(filepath.Join(corpusDir, "*.bin")); err == nil {
		for _, name := range files {
			data, err := os.ReadFile(name)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := core.Decode(data, cache)
		if err != nil {
			return
		}
		if cerr := a.Check(); cerr != nil {
			t.Fatalf("decoded automaton fails Check: %v", cerr)
		}
		auditDecoded(t, a, cache)
		// A decoded automaton must re-encode decodably.
		again, err := core.Encode(a)
		if err != nil {
			t.Fatalf("decoded automaton does not re-encode: %v", err)
		}
		if _, err := core.Decode(again, cache); err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
	})
}

// TestDecodeCorpus runs every checked-in corpus file through the decoder
// under the FuzzDecode invariants, so the regression corpus is exercised
// by plain `go test` too.
func TestDecodeCorpus(t *testing.T) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files in %s; run go run ./scripts/gencorpus", corpusDir)
	}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Decode(data, cache)
		if err != nil {
			continue
		}
		if cerr := a.Check(); cerr != nil {
			t.Errorf("%s: decoded automaton fails Check: %v", filepath.Base(name), cerr)
		}
		auditDecoded(t, a, cache)
	}
}
