package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

// corpusDir holds regression inputs for FuzzDecode and TestDecodeCorpus:
// faultinject-generated mutants of valid encodings, checked in so every
// decoder fix stays covered (regenerate with go run ./scripts/gencorpus).
const corpusDir = "testdata/decode_corpus"

// FuzzDecode hammers the wire-format decoder: arbitrary bytes must decode
// to an error or to an automaton that passes Check — never panic, never
// return an inconsistent automaton. (go test runs the seed corpus; `go
// test -fuzz=FuzzDecode ./internal/core` explores further.)
func FuzzDecode(f *testing.F) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)

	// Seeds: a valid stream for each strategy, deterministic fault-injected
	// mutants of each, plus hand-picked junk.
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		s, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 30})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
		if err != nil {
			f.Fatal(err)
		}
		data, err := Encode(Build(set))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		for _, mut := range faultinject.Corpus(1, data, 16) {
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TEA2"))
	f.Add([]byte("TEA2\x00\x00\x00"))
	f.Add([]byte("garbage that is long enough to walk through several fields"))

	// Checked-in regression corpus.
	if files, err := filepath.Glob(filepath.Join(corpusDir, "*.bin")); err == nil {
		for _, name := range files {
			data, err := os.ReadFile(name)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data, cache)
		if err != nil {
			return
		}
		if cerr := a.Check(); cerr != nil {
			t.Fatalf("decoded automaton fails Check: %v", cerr)
		}
		// A decoded automaton must re-encode decodably.
		again, err := Encode(a)
		if err != nil {
			t.Fatalf("decoded automaton does not re-encode: %v", err)
		}
		if _, err := Decode(again, cache); err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
	})
}

// TestDecodeCorpus runs every checked-in corpus file through the decoder
// under the FuzzDecode invariants, so the regression corpus is exercised
// by plain `go test` too.
func TestDecodeCorpus(t *testing.T) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files in %s; run go run ./scripts/gencorpus", corpusDir)
	}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Decode(data, cache)
		if err != nil {
			continue
		}
		if cerr := a.Check(); cerr != nil {
			t.Errorf("%s: decoded automaton fails Check: %v", filepath.Base(name), cerr)
		}
	}
}
