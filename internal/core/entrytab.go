package core

// entryTab is a flat open-addressed shadow of the replayer's entry index,
// consulted by the batched fast path (trace.AutoView aliases its storage)
// in place of the configurable EntryIndex. The paper's global containers
// (b-tree, sorted table, list, hash) model what a DBT pays per lookup and
// are measured via their probe counters; the batched recorder amortizes
// that cost by keeping a contiguous label→state table that is updated on
// every AddEntry, the way a production DBT shadows its dispatch table with
// an inline cache. Results are identical to EntryIndex.Lookup by
// construction: both are written at exactly the AddEntry sites (plus
// construction-time seeding).
//
// Targets are stored as raw int32 (not StateID) so the slices can be lent
// to trace.AutoView without a copy; the hash function must stay identical
// to trace.HashAddr for the aliased probes to agree slot-for-slot.
//
// Key 0 cannot live in the table (it marks an empty slot); a real entry at
// address 0 is displaced to a dedicated field. The table only ever grows —
// entries are added or overwritten, never removed.
type entryTab struct {
	keys    []uint64
	targets []int32
	n       int

	zeroLive  bool
	zeroState int32
}

// entryTabMinSize is the initial capacity (power of two).
const entryTabMinSize = 64

// hashEntryAddr mixes an entry address into a slot index seed (splitmix64
// finalizer: block addresses are small and regular, the low bits need the
// avalanche).
func hashEntryAddr(a uint64) uint64 {
	a ^= a >> 30
	a *= 0xbf58476d1ce4e5b9
	a ^= a >> 27
	a *= 0x94d049bb133111eb
	a ^= a >> 31
	return a
}

// get returns the head state recorded for addr, if any.
func (t *entryTab) get(addr uint64) (StateID, bool) {
	if addr == 0 {
		return StateID(t.zeroState), t.zeroLive
	}
	if len(t.keys) == 0 {
		return NTE, false
	}
	mask := uint64(len(t.keys) - 1)
	i := hashEntryAddr(addr) & mask
	for {
		k := t.keys[i]
		if k == addr {
			return StateID(t.targets[i]), true
		}
		if k == 0 {
			return NTE, false
		}
		i = (i + 1) & mask
	}
}

// put inserts or overwrites addr's head state.
func (t *entryTab) put(addr uint64, s StateID) {
	if addr == 0 {
		t.zeroLive = true
		t.zeroState = int32(s)
		return
	}
	// Grow at 50% load (not the usual 75%): the fused scans probe this
	// table once per cold edge with the home slot inlined, so keeping
	// displacement rare buys more than the extra few KB costs.
	if (t.n+1)*2 >= len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := hashEntryAddr(addr) & mask
	for {
		k := t.keys[i]
		if k == addr {
			t.targets[i] = int32(s)
			return
		}
		if k == 0 {
			t.keys[i] = addr
			t.targets[i] = int32(s)
			t.n++
			return
		}
		i = (i + 1) & mask
	}
}

func (t *entryTab) grow() {
	size := len(t.keys) * 2
	if size == 0 {
		size = entryTabMinSize
	}
	old, oldT := t.keys, t.targets
	t.keys = make([]uint64, size)
	t.targets = make([]int32, size)
	t.n = 0
	mask := uint64(size - 1)
	for i, k := range old {
		if k == 0 {
			continue
		}
		j := hashEntryAddr(k) & mask
		for t.keys[j] != 0 {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.targets[j] = oldT[i]
		t.n++
	}
}
