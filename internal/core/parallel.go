package core

import (
	"runtime"
)

// This file implements sharded parallel replay over a Compiled automaton.
//
// The exactness argument (see DESIGN.md §9): with the local caches out of
// the picture, consuming one stream edge is a *memoryless* function — the
// post-state (cursor, desync flag) and every Stats increment are pure
// functions of the pre-state and the edge, because the flat entry table and
// transition spans are immutable. Each shard therefore replays its segment
// speculatively from (NTE, in-sync); reconciliation re-replays the head of
// the segment from the predecessor's true exit state until the true
// trajectory meets the speculative one, swaps the speculative prefix
// accounting for the true prefix accounting, and keeps the speculative
// remainder verbatim. Once the trajectories touch at one edge they coincide
// for the rest of the segment by induction, so the merged Stats are
// byte-identical to a sequential replay. Local caches are excluded because
// their hit/miss counters depend on unboundedly old history, which no
// bounded re-replay can reconstruct; ParallelReplay always uses the
// cache-less transition function, matching SequentialReplay.

// step consumes one edge with the memoryless (cache-less) transition
// function, charging the increments to st and returning the post-state.
func (c *Compiled) step(cur StateID, desynced bool, label, instrs uint64, st *Stats) (StateID, bool) {
	if instrs != 0 {
		st.Blocks++
		st.Instrs += instrs
		if cur != NTE {
			st.TraceBlocks++
			st.TraceInstrs += instrs
		}
	}
	var next StateID
	if cur != NTE {
		rec := &c.hot[cur]
		if rec.lab0 == label {
			st.InTraceHits++
			next = rec.tgt0
		} else if rec.lab1 == label {
			st.InTraceHits++
			next = rec.tgt1
		} else if t, ok := c.nextSlow(cur, label); ok {
			st.InTraceHits++
			next = t
		} else {
			if !c.cold[cur].plausible(label) {
				st.Desyncs++
				desynced = true
			}
			st.GlobalLookups++
			if t, ok := c.entry(label); ok {
				st.GlobalHits++
				next = t
			}
			if next == NTE {
				st.TraceExits++
			} else {
				st.TraceLinks++
			}
		}
	} else {
		st.GlobalLookups++
		if t, ok := c.entry(label); ok {
			st.GlobalHits++
			next = t
			st.TraceEnters++
		}
	}
	if next != NTE && desynced {
		desynced = false
		st.Resyncs++
	}
	return next, desynced
}

// SequentialReplay replays the stream in order from NTE with the
// memoryless (cache-less) transition function and returns the stats and
// final state. It is the reference ParallelReplay must match byte for byte,
// and equals a CompiledReplayer over a Local-less Compile of the same
// automaton.
func SequentialReplay(c *Compiled, stream []Edge) (Stats, StateID) {
	var st Stats
	cur, desynced := NTE, false
	for k := range stream {
		cur, desynced = c.step(cur, desynced, stream[k].Label, stream[k].Instrs, &st)
	}
	return st, cur
}

// ParallelReplay shards the stream into contiguous segments replayed
// concurrently and merges the results. The merged Stats and final state are
// byte-identical to SequentialReplay on the same stream (the reconciliation
// argument above); the speed-up comes from the speculative segment replays
// running on all cores with reconciliation touching only the short
// non-converged prefix of each junction. The scans run on the persistent
// shard worker pool and every per-pass buffer is pooled (shard.go), so the
// steady state allocates nothing.
//
// shards <= 1 (or a stream shorter than the shard count) falls back to
// SequentialReplay; shards <= 0 selects GOMAXPROCS.
func ParallelReplay(c *Compiled, stream []Edge, shards int) (Stats, StateID) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(stream) {
		shards = len(stream)
	}
	if shards <= 1 {
		return SequentialReplay(c, stream)
	}
	st, cur, _ := parallelReplay(c, stream, shards, nil, nil)
	return st, cur
}

// Add accumulates o into s field by field — the merge operation junction
// reconciliation and the pipeline drain build totals with.
func (s *Stats) Add(o *Stats) { s.add(o) }

// add accumulates o into s field by field.
func (s *Stats) add(o *Stats) {
	s.Blocks += o.Blocks
	s.Instrs += o.Instrs
	s.TraceBlocks += o.TraceBlocks
	s.TraceInstrs += o.TraceInstrs
	s.InTraceHits += o.InTraceHits
	s.LocalHits += o.LocalHits
	s.LocalMisses += o.LocalMisses
	s.GlobalLookups += o.GlobalLookups
	s.GlobalHits += o.GlobalHits
	s.TraceEnters += o.TraceEnters
	s.TraceLinks += o.TraceLinks
	s.TraceExits += o.TraceExits
	s.Desyncs += o.Desyncs
	s.Resyncs += o.Resyncs
}

// sub removes o from s field by field.
func (s *Stats) sub(o *Stats) {
	s.Blocks -= o.Blocks
	s.Instrs -= o.Instrs
	s.TraceBlocks -= o.TraceBlocks
	s.TraceInstrs -= o.TraceInstrs
	s.InTraceHits -= o.InTraceHits
	s.LocalHits -= o.LocalHits
	s.LocalMisses -= o.LocalMisses
	s.GlobalLookups -= o.GlobalLookups
	s.GlobalHits -= o.GlobalHits
	s.TraceEnters -= o.TraceEnters
	s.TraceLinks -= o.TraceLinks
	s.TraceExits -= o.TraceExits
	s.Desyncs -= o.Desyncs
	s.Resyncs -= o.Resyncs
}
