package core

import (
	"encoding/binary"
	"fmt"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/trace"
)

// Binary serialization of a TEA, the paper's third use-case: "storing trace
// shape and profiling information for reuse in future executions". The
// format stores only *state* — block identities, the in-trace transition
// structure and a per-TBB profile counter — never code, which is where the
// size savings of Table 1 come from.
//
// Layout (integers are varints; addresses are zig-zag deltas against the
// previously written address, so nearby code costs ~2 bytes each):
//
//	magic "TEA2"
//	strategy name (len, bytes)
//	trace count, total state count
//	per trace:
//	    TBB count
//	    per TBB:
//	        head-address delta
//	        instruction count, encoded byte size   (block identity check)
//	        terminator class                       (block identity check)
//	        profile counter                        (execution count, or 0)
//	    per TBB: successor count, then per successor:
//	        label delta (vs the TBB head), absolute target state id
//
// Decoding needs the original program (via a cfg.Cache using the same
// block discipline that recorded the traces) to rebuild full block
// metadata — exactly the paper's replay scenario, where the unmodified
// executable is available on the replaying system. The stored instruction
// count, byte size and terminator class cross-check that the re-discovered
// block really is the recorded one.

const magic = "TEA2"

// termClass encodes the block terminator kind for decode-time validation.
func termClass(in *isa.Instr) byte {
	switch {
	case in.IsCondBranch():
		return 1
	case in.IsCall():
		return 2
	case in.IsIndirect():
		return 3 // ret or indirect jump
	case in.IsBranch():
		return 4 // direct jump or halt
	default:
		return 5 // Pin-style split (REP/CPUID) or decode fall-off
	}
}

// Profiler supplies per-TBB execution counts for serialization; the
// profile package implements it. A nil Profiler stores zero counts.
type Profiler interface {
	CountFor(tbb *trace.TBB) uint64
}

// Encode serializes the automaton's trace set without profile counts.
func Encode(a *Automaton) []byte { return EncodeWithProfile(a, nil) }

// EncodeWithProfile serializes the automaton along with per-TBB execution
// counts from prof (zeros when prof is nil).
func EncodeWithProfile(a *Automaton, prof Profiler) []byte {
	out := make([]byte, 0, 64+12*a.NumStates())
	out = append(out, magic...)
	set := a.set
	out = appendUvarint(out, uint64(len(set.Strategy)))
	out = append(out, set.Strategy...)
	out = appendUvarint(out, uint64(len(set.Traces)))
	// Canonical state numbering: traces in order, TBBs in order, from 1
	// (state 0 is NTE). An online-recorded automaton may have assigned its
	// ids in a different order (tree extensions arrive late), so the wire
	// format re-numbers; Decode rebuilds with the same rule.
	canon := make(map[*trace.TBB]uint64, a.NumStates())
	next := uint64(1)
	for _, t := range set.Traces {
		for _, tbb := range t.TBBs {
			canon[tbb] = next
			next++
		}
	}
	out = appendUvarint(out, next)
	prevAddr := uint64(0)
	for _, t := range set.Traces {
		out = appendUvarint(out, uint64(len(t.TBBs)))
		for _, tbb := range t.TBBs {
			out = appendZigzag(out, int64(tbb.Block.Head)-int64(prevAddr))
			prevAddr = tbb.Block.Head
			out = appendUvarint(out, uint64(tbb.Block.NumInstrs))
			out = appendUvarint(out, tbb.Block.Bytes)
			out = append(out, termClass(tbb.Block.Term))
			var count uint64
			if prof != nil {
				count = prof.CountFor(tbb)
			}
			out = appendUvarint(out, count)
		}
		for _, tbb := range t.TBBs {
			out = appendUvarint(out, uint64(len(tbb.Succs)))
			for _, label := range tbb.SuccLabels() {
				out = appendZigzag(out, int64(label)-int64(tbb.Block.Head))
				succ := tbb.Succs[label]
				id, ok := canon[succ]
				if !ok {
					panic(fmt.Sprintf("core: TBB %v not in its own set", succ))
				}
				out = appendUvarint(out, id)
			}
		}
	}
	return out
}

// EncodedSize returns the serialized size in bytes (the "TEA" column of
// Table 1; trace.Set.CodeBytes is the "DBT" column).
func EncodedSize(a *Automaton) uint64 { return uint64(len(Encode(a))) }

// DecodedProfile carries the profile counters read back by Decode, keyed
// by state id.
type DecodedProfile map[StateID]uint64

// Decode reconstructs an automaton from Encode's output. Blocks are
// re-discovered from the program through cache, which must use the block
// discipline the traces were recorded under.
func Decode(data []byte, cache *cfg.Cache) (*Automaton, error) {
	a, _, err := DecodeWithProfile(data, cache)
	return a, err
}

// DecodeWithProfile additionally returns the stored per-state profile
// counters.
func DecodeWithProfile(data []byte, cache *cfg.Cache) (*Automaton, DecodedProfile, error) {
	d := &decoder{data: data}
	if string(d.take(len(magic))) != magic {
		return nil, nil, fmt.Errorf("core: bad magic")
	}
	nameLen := d.uvarint()
	if d.err != nil || nameLen > uint64(len(d.data)) {
		return nil, nil, fmt.Errorf("core: corrupt strategy name")
	}
	strategy := string(d.take(int(nameLen)))
	set := trace.NewSet(strategy, cache.Program())
	nTraces := d.uvarint()
	nStates := d.uvarint()
	if d.err != nil {
		return nil, nil, d.err
	}
	prof := make(DecodedProfile)
	prevAddr := uint64(0)
	nextState := uint64(1) // state 0 is NTE
	type pendingLink struct {
		from   *trace.TBB
		label  uint64
		target uint64 // absolute state id
	}
	stateTBB := make(map[uint64]*trace.TBB)
	var links []pendingLink

	for ti := uint64(0); ti < nTraces; ti++ {
		nTBBs := d.uvarint()
		if d.err != nil {
			return nil, nil, d.err
		}
		if nTBBs == 0 {
			return nil, nil, fmt.Errorf("core: trace %d has no TBBs", ti+1)
		}
		var tr *trace.Trace
		tbbs := make([]*trace.TBB, nTBBs)
		for i := uint64(0); i < nTBBs; i++ {
			delta := d.zigzag()
			head := uint64(int64(prevAddr) + delta)
			prevAddr = head
			nInstr := d.uvarint()
			nBytes := d.uvarint()
			tclass := d.take(1)
			count := d.uvarint()
			if d.err != nil {
				return nil, nil, d.err
			}
			b, err := cache.BlockAt(head)
			if err != nil {
				return nil, nil, fmt.Errorf("core: trace %d TBB %d: %v", ti+1, i, err)
			}
			if uint64(b.NumInstrs) != nInstr || b.Bytes != nBytes || termClass(b.Term) != tclass[0] {
				return nil, nil, fmt.Errorf("core: trace %d TBB %d: block at 0x%x does not match recorded shape", ti+1, i, head)
			}
			if i == 0 {
				tr, err = set.NewTrace(b)
				if err != nil {
					return nil, nil, fmt.Errorf("core: trace %d: %v", ti+1, err)
				}
				tbbs[0] = tr.Head()
			} else {
				tbbs[i] = tr.Append(b)
			}
			stateTBB[nextState] = tbbs[i]
			if count > 0 {
				prof[StateID(nextState)] = count
			}
			nextState++
		}
		for i := uint64(0); i < nTBBs; i++ {
			nSucc := d.uvarint()
			if d.err != nil {
				return nil, nil, d.err
			}
			for k := uint64(0); k < nSucc; k++ {
				delta := d.zigzag()
				target := d.uvarint()
				if d.err != nil {
					return nil, nil, d.err
				}
				label := uint64(int64(tbbs[i].Block.Head) + delta)
				links = append(links, pendingLink{tbbs[i], label, target})
			}
		}
	}
	if nextState != nStates {
		return nil, nil, fmt.Errorf("core: header says %d states, stream has %d", nStates, nextState)
	}
	for _, l := range links {
		succ, ok := stateTBB[l.target]
		if !ok {
			return nil, nil, fmt.Errorf("core: transition to unknown state %d", l.target)
		}
		if succ.Trace != l.from.Trace {
			return nil, nil, fmt.Errorf("core: cross-trace transition %v -> %v", l.from, succ)
		}
		if succ.Block.Head != l.label {
			return nil, nil, fmt.Errorf("core: label 0x%x does not match target head 0x%x", l.label, succ.Block.Head)
		}
		l.from.Link(succ)
	}
	if d.pos != len(d.data) {
		return nil, nil, fmt.Errorf("core: %d trailing bytes", len(d.data)-d.pos)
	}
	a := Build(set)
	if err := a.Check(); err != nil {
		return nil, nil, err
	}
	return a, prof, nil
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || d.pos+n > len(d.data) {
		d.fail()
		return []byte{0}
	}
	out := d.data[d.pos : d.pos+n]
	d.pos += n
	return out
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) zigzag() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: truncated or corrupt TEA stream at offset %d", d.pos)
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}
