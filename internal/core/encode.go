package core

import (
	"encoding/binary"
	"fmt"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/trace"
)

// Binary serialization of a TEA, the paper's third use-case: "storing trace
// shape and profiling information for reuse in future executions". The
// format stores only *state* — block identities, the in-trace transition
// structure and a per-TBB profile counter — never code, which is where the
// size savings of Table 1 come from.
//
// Layout (integers are varints; addresses are zig-zag deltas against the
// previously written address, so nearby code costs ~2 bytes each):
//
//	magic "TEA2"
//	strategy name (len, bytes)
//	trace count, total state count
//	per trace:
//	    TBB count
//	    per TBB:
//	        head-address delta
//	        instruction count, encoded byte size   (block identity check)
//	        terminator class                       (block identity check)
//	        profile counter                        (execution count, or 0)
//	    per TBB: successor count, then per successor:
//	        label delta (vs the TBB head), absolute target state id
//
// Decoding needs the original program (via a cfg.Cache using the same
// block discipline that recorded the traces) to rebuild full block
// metadata — exactly the paper's replay scenario, where the unmodified
// executable is available on the replaying system. The stored instruction
// count, byte size and terminator class cross-check that the re-discovered
// block really is the recorded one.
//
// Failure semantics: Decode treats its input as hostile. Every rejection —
// truncation, forged counts, identity mismatches against the program,
// malformed transition structure — returns a *DecodeError naming the wire
// field, the byte offset, and the reason. Decode never panics and never
// sizes an allocation from an unvalidated count.

const magic = "TEA2"

// minTBBBytes is the smallest possible wire size of one TBB record: one
// byte each for head delta, instruction count, byte size, terminator class
// and profile counter. Counts claiming more TBBs than the remaining bytes
// could hold are rejected before any allocation.
const minTBBBytes = 5

// minTraceBytes is the smallest possible wire size of one trace: a TBB
// count, one TBB record, and one successor count.
const minTraceBytes = minTBBBytes + 2

// DecodeError reports why a serialized TEA was rejected: the wire-format
// field being read, the byte offset where decoding stopped, and the reason.
// Every rejection path of Decode returns a *DecodeError; Decode never
// panics, however hostile the input.
type DecodeError struct {
	// Offset is the byte offset into the stream where decoding failed (for
	// record-level checks, the start of the offending record).
	Offset int
	// Field names the wire-format field being decoded.
	Field string
	// Reason says what was wrong with it.
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("core: decode %s at offset %d: %s", e.Field, e.Offset, e.Reason)
}

// termClass encodes the block terminator kind for decode-time validation.
func termClass(in *isa.Instr) byte {
	switch {
	case in.IsCondBranch():
		return 1
	case in.IsCall():
		return 2
	case in.IsIndirect():
		return 3 // ret or indirect jump
	case in.IsBranch():
		return 4 // direct jump or halt
	default:
		return 5 // Pin-style split (REP/CPUID) or decode fall-off
	}
}

// Profiler supplies per-TBB execution counts for serialization; the
// profile package implements it. A nil Profiler stores zero counts.
type Profiler interface {
	CountFor(tbb *trace.TBB) uint64
}

// Encode serializes the automaton's trace set without profile counts. It
// returns an error when the set is malformed (a TBB links to a TBB that is
// not part of the set).
func Encode(a *Automaton) ([]byte, error) { return EncodeWithProfile(a, nil) }

// EncodeWithProfile serializes the automaton along with per-TBB execution
// counts from prof (zeros when prof is nil).
func EncodeWithProfile(a *Automaton, prof Profiler) ([]byte, error) {
	out := make([]byte, 0, 64+12*a.NumStates())
	out = append(out, magic...)
	set := a.set
	out = appendUvarint(out, uint64(len(set.Strategy)))
	out = append(out, set.Strategy...)
	out = appendUvarint(out, uint64(len(set.Traces)))
	// Canonical state numbering: traces in order, TBBs in order, from 1
	// (state 0 is NTE). An online-recorded automaton may have assigned its
	// ids in a different order (tree extensions arrive late), so the wire
	// format re-numbers; Decode rebuilds with the same rule.
	canon := make(map[*trace.TBB]uint64, a.NumStates())
	next := uint64(1)
	for _, t := range set.Traces {
		for _, tbb := range t.TBBs {
			canon[tbb] = next
			next++
		}
	}
	out = appendUvarint(out, next)
	prevAddr := uint64(0)
	for _, t := range set.Traces {
		out = appendUvarint(out, uint64(len(t.TBBs)))
		for _, tbb := range t.TBBs {
			out = appendZigzag(out, int64(tbb.Block.Head)-int64(prevAddr))
			prevAddr = tbb.Block.Head
			out = appendUvarint(out, uint64(tbb.Block.NumInstrs))
			out = appendUvarint(out, tbb.Block.Bytes)
			out = append(out, termClass(tbb.Block.Term))
			var count uint64
			if prof != nil {
				count = prof.CountFor(tbb)
			}
			out = appendUvarint(out, count)
		}
		for _, tbb := range t.TBBs {
			out = appendUvarint(out, uint64(len(tbb.Succs)))
			for _, label := range tbb.SuccLabels() {
				out = appendZigzag(out, int64(label)-int64(tbb.Block.Head))
				succ := tbb.Succs[label]
				id, ok := canon[succ]
				if !ok {
					return nil, fmt.Errorf("core: cannot encode: %v links to %v, which is not in the set", tbb, succ)
				}
				out = appendUvarint(out, id)
			}
		}
	}
	return out, nil
}

// EncodedSize returns the serialized size in bytes (the "TEA" column of
// Table 1; trace.Set.CodeBytes is the "DBT" column). It returns 0 for an
// automaton whose set cannot be encoded.
func EncodedSize(a *Automaton) uint64 {
	data, err := Encode(a)
	if err != nil {
		return 0
	}
	return uint64(len(data))
}

// DecodedProfile carries the profile counters read back by Decode, keyed
// by state id.
type DecodedProfile map[StateID]uint64

// Decode reconstructs an automaton from Encode's output. Blocks are
// re-discovered from the program through cache, which must use the block
// discipline the traces were recorded under. Any rejection is reported as
// a *DecodeError.
func Decode(data []byte, cache *cfg.Cache) (*Automaton, error) {
	a, _, err := DecodeWithProfile(data, cache)
	return a, err
}

// DecodeWithProfile additionally returns the stored per-state profile
// counters.
func DecodeWithProfile(data []byte, cache *cfg.Cache) (*Automaton, DecodedProfile, error) {
	d := &decoder{data: data}
	if string(d.take(len(magic), "magic")) != magic {
		return nil, nil, &DecodeError{Offset: 0, Field: "magic", Reason: "bad magic"}
	}
	nameLen := d.uvarint("strategy length")
	if d.err == nil && nameLen > uint64(d.remaining()) {
		d.setErr(&DecodeError{Offset: d.pos, Field: "strategy length",
			Reason: fmt.Sprintf("claims %d bytes, %d remain", nameLen, d.remaining())})
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	strategy := string(d.take(int(nameLen), "strategy name"))
	set := trace.NewSet(strategy, cache.Program())
	nTraces := d.uvarint("trace count")
	nStates := d.uvarint("state count")
	if d.err != nil {
		return nil, nil, d.err
	}
	// Forged counts must not size allocations or drive long loops: every
	// trace costs at least minTraceBytes on the wire and every state (TBB)
	// at least minTBBBytes, so counts beyond what the remaining bytes can
	// hold are rejected here.
	if nTraces > uint64(d.remaining())/minTraceBytes {
		return nil, nil, &DecodeError{Offset: d.pos, Field: "trace count",
			Reason: fmt.Sprintf("claims %d traces, only %d bytes remain", nTraces, d.remaining())}
	}
	if nStates == 0 || nStates-1 > uint64(d.remaining())/minTBBBytes {
		return nil, nil, &DecodeError{Offset: d.pos, Field: "state count",
			Reason: fmt.Sprintf("claims %d states, only %d bytes remain", nStates, d.remaining())}
	}
	prof := make(DecodedProfile)
	prevAddr := uint64(0)
	nextState := uint64(1) // state 0 is NTE
	type pendingLink struct {
		off    int
		from   *trace.TBB
		label  uint64
		target uint64 // absolute state id
	}
	stateTBB := make(map[uint64]*trace.TBB)
	var links []pendingLink

	for ti := uint64(0); ti < nTraces; ti++ {
		countOff := d.pos
		nTBBs := d.uvarint("TBB count")
		if d.err != nil {
			return nil, nil, d.err
		}
		if nTBBs == 0 {
			return nil, nil, &DecodeError{Offset: countOff, Field: "TBB count",
				Reason: fmt.Sprintf("trace %d has no TBBs", ti+1)}
		}
		if nTBBs > uint64(d.remaining())/minTBBBytes {
			return nil, nil, &DecodeError{Offset: countOff, Field: "TBB count",
				Reason: fmt.Sprintf("trace %d claims %d TBBs, only %d bytes remain", ti+1, nTBBs, d.remaining())}
		}
		var tr *trace.Trace
		tbbs := make([]*trace.TBB, nTBBs)
		for i := uint64(0); i < nTBBs; i++ {
			recOff := d.pos
			delta := d.zigzag("block head delta")
			head := uint64(int64(prevAddr) + delta)
			prevAddr = head
			nInstr := d.uvarint("instruction count")
			nBytes := d.uvarint("block bytes")
			tclass := d.take(1, "terminator class")
			count := d.uvarint("profile counter")
			if d.err != nil {
				return nil, nil, d.err
			}
			b, err := cache.BlockAt(head)
			if err != nil {
				return nil, nil, &DecodeError{Offset: recOff, Field: "block head",
					Reason: fmt.Sprintf("trace %d TBB %d: %v", ti+1, i, err)}
			}
			if uint64(b.NumInstrs) != nInstr || b.Bytes != nBytes || termClass(b.Term) != tclass[0] {
				return nil, nil, &DecodeError{Offset: recOff, Field: "block identity",
					Reason: fmt.Sprintf("trace %d TBB %d: block at 0x%x does not match recorded shape", ti+1, i, head)}
			}
			if i == 0 {
				tr, err = set.NewTrace(b)
				if err != nil {
					return nil, nil, &DecodeError{Offset: recOff, Field: "trace entry",
						Reason: fmt.Sprintf("trace %d: %v", ti+1, err)}
				}
				tbbs[0] = tr.Head()
			} else {
				tbbs[i] = tr.Append(b)
			}
			stateTBB[nextState] = tbbs[i]
			if count > 0 {
				prof[StateID(nextState)] = count
			}
			nextState++
		}
		for i := uint64(0); i < nTBBs; i++ {
			countOff := d.pos
			nSucc := d.uvarint("successor count")
			if d.err != nil {
				return nil, nil, d.err
			}
			// One successor costs at least a label delta and a target id.
			if nSucc > uint64(d.remaining())/2 {
				return nil, nil, &DecodeError{Offset: countOff, Field: "successor count",
					Reason: fmt.Sprintf("trace %d TBB %d claims %d successors, only %d bytes remain", ti+1, i, nSucc, d.remaining())}
			}
			for k := uint64(0); k < nSucc; k++ {
				recOff := d.pos
				delta := d.zigzag("successor label delta")
				target := d.uvarint("successor target")
				if d.err != nil {
					return nil, nil, d.err
				}
				label := uint64(int64(tbbs[i].Block.Head) + delta)
				links = append(links, pendingLink{recOff, tbbs[i], label, target})
			}
		}
	}
	if nextState != nStates {
		return nil, nil, &DecodeError{Offset: d.pos, Field: "state count",
			Reason: fmt.Sprintf("header says %d states, stream has %d", nStates, nextState)}
	}
	for _, l := range links {
		succ, ok := stateTBB[l.target]
		if !ok {
			return nil, nil, &DecodeError{Offset: l.off, Field: "transition",
				Reason: fmt.Sprintf("transition to unknown state %d", l.target)}
		}
		if succ.Trace != l.from.Trace {
			return nil, nil, &DecodeError{Offset: l.off, Field: "transition",
				Reason: fmt.Sprintf("cross-trace transition %v -> %v", l.from, succ)}
		}
		if succ.Block.Head != l.label {
			return nil, nil, &DecodeError{Offset: l.off, Field: "transition",
				Reason: fmt.Sprintf("label 0x%x does not match target head 0x%x", l.label, succ.Block.Head)}
		}
		if err := l.from.Link(succ); err != nil {
			return nil, nil, &DecodeError{Offset: l.off, Field: "transition", Reason: err.Error()}
		}
	}
	if d.pos != len(d.data) {
		return nil, nil, &DecodeError{Offset: d.pos, Field: "trailing bytes",
			Reason: fmt.Sprintf("%d trailing bytes", len(d.data)-d.pos)}
	}
	a := Build(set)
	if err := a.Check(); err != nil {
		return nil, nil, &DecodeError{Offset: len(d.data), Field: "automaton", Reason: err.Error()}
	}
	return a, prof, nil
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

// remaining returns the unread byte count.
func (d *decoder) remaining() int { return len(d.data) - d.pos }

// setErr records the first error; later reads become no-ops.
func (d *decoder) setErr(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) take(n int, field string) []byte {
	if d.err != nil || n < 0 || d.pos+n > len(d.data) {
		d.setErr(&DecodeError{Offset: d.pos, Field: field, Reason: "truncated"})
		return []byte{0}
	}
	out := d.data[d.pos : d.pos+n]
	d.pos += n
	return out
}

func (d *decoder) uvarint(field string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.setErr(&DecodeError{Offset: d.pos, Field: field, Reason: "truncated or malformed varint"})
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) zigzag(field string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.setErr(&DecodeError{Offset: d.pos, Field: field, Reason: "truncated or malformed varint"})
		return 0
	}
	d.pos += n
	return v
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}
