package core

// Specialize: the fused trace-cycle pass. The paper's Figure 1 steady state
// is a handful of trace loops executing millions of times; per-edge replay
// pays the full dependent-load chain (edge → hot record → compare → next
// state) for every one of those iterations even though the automaton walks
// the same short cycle of states each time. Specialize detects those cycles
// statically — cycles over the in-trace successor graph *extended with the
// trace-link edges the entry table resolves* — and compiles each into a
// stride-table entry: the cycle's k (label, instrs) edges as one flat
// pattern, the post-state trajectory, and the Stats delta of one traversal
// collapsed to a handful of precomputed numbers. The batch kernels then
// consume a whole traversal (and every immediately repeating one) with a
// single vectorized slice comparison instead of k dependent chases.
//
// Two constructions matter beyond the textbook simple cycle:
//
//   - Miss edges. A loop whose body is one trace closes through the entry
//     table (a TraceLink), not through an in-trace transition — restricting
//     cycles to the fast-slot graph caps fusion at the tight single-block
//     loops and strands every outer loop body. An entry therefore admits
//     edges the kernel resolves outside the fast slots — warm trace links,
//     trace exits, whole cold-code excursions through NTE — recording their
//     pattern positions in MissPos and carrying two precomputed per-traversal
//     Stats deltas: DeltaGlobal in the cache-less currency (misses charge
//     GlobalLookups/GlobalHits) and DeltaLocal in the warm embedded-cache
//     currency (non-NTE misses charge LocalHits). Where local caches are
//     live, the kernel verifies at probe time that the cache slots already
//     hold exactly the miss resolutions, which is what keeps the fused delta
//     equal to the per-edge replay byte for byte, local-cache words included
//     (the warm hit path never writes the slot).
//
//   - Rotations. A nested loop interrupts its outer cycle mid-rotation: the
//     stream at the outer cycle's minimum state first spins the inner
//     self-loop, so a pattern anchored there never matches. Each cycle is
//     therefore recorded at every rotation — one entry per on-cycle state —
//     and replay re-attaches wherever the per-edge kernel happens to leave
//     the cursor when an inner run ends.
//
// Exactness: an entry is admitted only if simulating its pattern from
// (anchor, in-sync) with the production transition function is k steps over
// non-NTE states ending back at the anchor, each step either an in-trace hit
// or a plausible trace link resolved by the immutable entry table, with the
// Stats delta collapsing to the precomputed expansion and the desync flag
// never raised. Fast steps touch no mutable state; link steps are fused only
// when the kernel's cache (if any) is already warm, so no kernel observes
// any difference — Stats, cursor, desync, cache words and the event stream
// (events only come from the branches a fused traversal proves it never
// takes) all match the per-edge replay exactly, which is what keeps Stats
// identical to the reference replayer and junction reconciliation sound.

import (
	"bytes"
	"sort"
	"unsafe"
)

// StrideEntry is one fused steady-state cycle, recorded at one rotation.
// Anchor is the state the entry is keyed on; consuming Pattern from Anchor
// lands back on Anchor with States as the per-edge trajectory. The pattern
// need not be a simple cycle: compound periods (an inner loop spun a fixed
// number of times inside an outer body) and excursions through NTE (trace
// exit, cold blocks, re-entry) are admitted, because the proof obligation is
// simulation exactness, not graph shape.
type StrideEntry struct {
	// Anchor is the state whose hot record's chain this entry is on.
	Anchor StateID
	// Exit is the state after one full traversal — always the anchor itself
	// for a cycle, kept explicit so the verifier can prove it.
	Exit StateID
	// Next chains further entries anchored at the same state; NoStride ends
	// the chain.
	Next int32
	// Pattern is the cycle's k (label, instrs) edges in traversal order.
	Pattern []Edge
	// States[j] is the state after consuming Pattern[j]; States[k-1] ==
	// Anchor. NTE may appear mid-trajectory (cold-code excursions).
	States []StateID
	// MissPos lists the pattern positions (ascending) not resolved by an
	// in-trace transition: warm trace links, trace exits, and every edge
	// consumed from NTE. Empty for a pure fast-slot cycle.
	MissPos []int32
	// Crossings counts the positions that involve NTE (trace exits, cold
	// edges and re-entries). Zero for entries whose misses are all warm
	// trace links; the instrumented kernels only fuse when it is zero,
	// because NTE crossings emit events on the per-edge path.
	Crossings uint64
	// Edges (k) and Instrs (the pattern's instruction sum) size the fused
	// consumption: strideEdges advances by Edges per traversal.
	Edges  uint64
	Instrs uint64
	// DeltaGlobal is the Stats delta of one traversal under the cache-less
	// transition function (c.step): misses from non-NTE states charge
	// GlobalLookups (+GlobalHits when resolved). DeltaLocal is the same
	// traversal under warm embedded local caches: those misses charge
	// LocalHits instead. Both are produced — and proved — by simulation.
	DeltaGlobal Stats
	DeltaLocal  Stats

	// Tile is Pattern repeated TileReps times (derived, never on the wire;
	// empty when the pattern is too long to repeat). Once a kernel has
	// confirmed a few traversals it switches to whole-tile compares, which
	// run at vectorized-memequal speed instead of one compare per edge or
	// per traversal.
	Tile     []Edge
	TileReps uint64
}

// strideTileLen is the tile's target length in edges: long enough that one
// compare call amortizes across many traversals, short enough that the hot
// entries' tiles stay cache-resident.
const strideTileLen = 128

// tile fills e.Tile/e.TileReps from e.Pattern (a no-op for patterns too
// long to repeat within the target length).
func (e *StrideEntry) tile() {
	m := len(e.Pattern)
	if m == 0 || m > strideTileLen/2 {
		return
	}
	reps := strideTileLen / m
	e.TileReps = uint64(reps)
	e.Tile = make([]Edge, 0, reps*m)
	for i := 0; i < reps; i++ {
		e.Tile = append(e.Tile, e.Pattern...)
	}
}

// strideProbeRec is the probe-loop view of one stride entry: the first
// pattern edge, the pattern length, the miss/crossing counts and the chain
// link, packed to 32 bytes so a whole table's probe side stays in a few L1
// lines. Probing through the full StrideEntry costs two dependent cache
// loads per chain step (entry → pattern header → pattern data); this array
// costs one, and single-edge miss-free matches — the dominant attach shape —
// resolve from it without touching the entry at all.
type strideProbeRec struct {
	first Edge
	m     int32
	next  int32
	miss  int32
	cross int32
}

// buildStrideProbes derives the probe side-array from a stride table. An
// empty pattern (possible only through the unvalidated WithStrideTable path)
// gets an unsatisfiable length so the kernels skip it instead of spinning on
// a zero-width match.
func buildStrideProbes(tab []StrideEntry) []strideProbeRec {
	if len(tab) == 0 {
		return nil
	}
	out := make([]strideProbeRec, len(tab))
	for i := range tab {
		e := &tab[i]
		p := strideProbeRec{m: 1 << 30, next: e.Next}
		if len(e.Pattern) > 0 {
			p.first = e.Pattern[0]
			p.m = int32(len(e.Pattern))
			p.miss = int32(len(e.MissPos))
			p.cross = int32(e.Crossings)
		}
		out[i] = p
	}
	return out
}

// StrideTableCopy deep-copies a stride table (audit snapshots and the
// verifier-side constructor both need detached entries).
func StrideTableCopy(tab []StrideEntry) []StrideEntry {
	if len(tab) == 0 {
		return nil
	}
	out := make([]StrideEntry, len(tab))
	for i, e := range tab {
		e.Pattern = append([]Edge(nil), e.Pattern...)
		e.States = append([]StateID(nil), e.States...)
		e.MissPos = append([]int32(nil), e.MissPos...)
		e.Tile = append([]Edge(nil), e.Tile...)
		out[i] = e
	}
	return out
}

// StrideTable returns a deep copy of the fused trace-cycle table (nil when
// the form is unspecialized).
func (c *Compiled) StrideTable() []StrideEntry { return StrideTableCopy(c.stride) }

// edgeBytesLen is the wire width of one Edge in the flat pattern compare.
const edgeBytesLen = int(unsafe.Sizeof(Edge{}))

// The flat compare below reinterprets []Edge as raw bytes; that is only the
// field bytes — no padding — while the struct is exactly two uint64s.
var _ = [1]struct{}{}[unsafe.Sizeof(Edge{})-16]

// edgesEqual reports whether seg and pat carry identical (label, instrs)
// sequences, comparing them as one flat byte run so the runtime's vectorized
// memequal replaces k dependent 16-byte compares. Edge is two uint64s with
// no padding, so byte equality is exactly field equality. Callers pre-filter
// on the first edge with a scalar compare — a chain probe miss never pays
// the call.
func edgesEqual(seg, pat []Edge) bool {
	n := len(seg)
	if n != len(pat) {
		return false
	}
	if n == 0 {
		return true
	}
	sb := unsafe.Slice((*byte)(unsafe.Pointer(&seg[0])), n*edgeBytesLen)
	pb := unsafe.Slice((*byte)(unsafe.Pointer(&pat[0])), n*edgeBytesLen)
	return bytes.Equal(sb, pb)
}

// Specialization caps: patterns longer than maxStrideLen stop paying for
// their probe-time compares, chains deeper than maxStrideWays stop paying
// for their probe misses (each miss costs two scalar compares thanks to the
// first-edge pre-filter, but eight of them is the budget), and the DFS depth
// and node budgets bound the static walk on pathological indirect-branch
// fans. maxStrideCands bounds the static candidate pool the sample selection
// prunes; strideMinSampleEdges is the keep threshold — an entry that fused
// fewer sample edges than that would not amortize its own probe misses at
// replay time.
const (
	maxStrideLen         = 128
	maxStrideDFSDepth    = 64
	maxStrideWays        = 8
	maxStrideEntries     = 1024
	maxStrideCands       = 8192
	strideDFSBudget      = 4096
	strideMinSampleEdges = 32
	// strideMissCostFactor is the selection cost model's margin: an anchor's
	// kept entries must fuse at least this many sample edges per probe miss
	// its chain took, or the whole bucket is dropped as a net loss.
	strideMissCostFactor = 2
	// Per-attach break-even floors (fused edges per attach): probe-record
	// self-loop attaches are nearly free, general attaches pay the flat
	// compare, the warm check and the delta fold.
	strideAttachFloorSelf    = 3
	strideAttachFloorGeneral = 12
	// strideMinFusedPct is the global bailout: when the selected table fuses
	// less than this percentage of the profiling sample, Specialize returns
	// an unspecialized form instead. The specialized kernel's per-edge
	// residue path is slightly heavier than the plain kernel and probe
	// misses are pure overhead, so a thin table is a guaranteed net loss —
	// dispatching to the plain kernel caps the downside at zero.
	strideMinFusedPct = 35
)

// Specialize builds the fused trace-cycle stride table for c and returns a
// new Compiled carrying it. The arenas, cold records and entry table are
// shared with c (they are immutable); only the hot array is copied so the
// per-state stride heads can be linked in. c itself is not modified and
// replays exactly as before.
//
// Cycle discovery is static, but the trace graph over-approximates
// execution badly: its link edges (address-ordered trace chaining) close
// far more cycles than any run ever walks, and probing dead entries is pure
// overhead. sample — typically a captured stream prefix, the profile-guided
// idiom every DBT already lives by — selects: candidates are replayed
// against it and only entries that fused at least strideMinSampleEdges of
// it are kept. A nil sample keeps every candidate (capped), which is always
// correct — selection is a cost model, not a soundness condition, and the
// verifier judges the resulting table either way.
func Specialize(c *Compiled, sample []Edge) *Compiled {
	sp := &specializer{c: c, onPath: make([]bool, len(c.hot))}
	spec := &Compiled{}
	*spec = *c
	spec.hot = append([]hotRec(nil), c.hot...)
	spec.stride = nil
	spec.strideProbe = nil
	for i := range spec.hot {
		spec.hot[i].stride = noStride
	}

	// Phase 1: enumerate cycles. Rooting the DFS at each state in order and
	// only traversing through states > root finds every cycle exactly once,
	// canonicalized at its minimum StateID.
	n := len(c.hot)
	var cycles [][]pathEdge
	total := 0
	for root := StateID(1); int(root) < n && total < maxStrideCands; root++ {
		sp.found = sp.found[:0]
		sp.budget = strideDFSBudget
		sp.path = sp.path[:0]
		sp.dfs(root, root, 0)
		for _, cyc := range sp.found {
			cycles = append(cycles, cyc)
			total += len(cyc)
		}
	}

	// Phase 2: admit every rotation of every cycle, bucketed by anchor. A
	// simple cycle visits each of its states once, so rotations have
	// distinct anchors; buckets only grow past one entry when several
	// cycles share a state.
	buckets := map[StateID][]StrideEntry{}
	for _, cyc := range cycles {
		m := len(cyc)
		for j := 0; j < m; j++ {
			// Rotation j starts right after edge j-1: its anchor is the state
			// edge j leaves from (the DFS root for j == 0).
			anchor := cyc[m-1].to
			if j > 0 {
				anchor = cyc[j-1].to
			}
			rot := make([]pathEdge, 0, m)
			rot = append(rot, cyc[j:]...)
			rot = append(rot, cyc[:j]...)
			if pat, ok := lowerCycle(c, anchor, rot); ok {
				if e, ok := buildStrideEntry(c, anchor, pat); ok {
					addStrideEntry(buckets, e)
				}
			}
		}
	}
	for a, b := range buckets {
		sort.SliceStable(b, func(i, j int) bool { return len(b[i].Pattern) > len(b[j].Pattern) })
		buckets[a] = b
	}

	// Phase 3: profile-guided selection and mining. The sample is replayed
	// with the production transition function twice: selection fuses
	// greedily out of the static candidate buckets exactly as the kernels
	// would and keeps only the entries that earned their keep; mining then
	// detects the periodic regions the static graph cannot see — compound
	// periods (inner loop × fixed count + outer body) and cycles that cross
	// NTE through cold code — and lowers each into a proved entry.
	if len(sample) > 0 {
		selectBySample(c, buckets, sample)
		mineStrideEntries(c, sample, buckets)
	}

	// Phase 4: flatten buckets in anchor order, each chain contiguous and
	// head-first so an encode/decode round trip (which re-heads chains at
	// the first table-order entry per anchor) reproduces the table exactly.
	anchors := make([]StateID, 0, len(buckets))
	for a := range buckets {
		if len(buckets[a]) > 0 {
			anchors = append(anchors, a)
		}
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })
	for _, a := range anchors {
		b := buckets[a]
		// Longest-first is the probe order: when two entries share a first
		// edge the longer match (the compound period) fuses more per attach.
		sort.SliceStable(b, func(i, j int) bool { return len(b[i].Pattern) > len(b[j].Pattern) })
		if len(b) > maxStrideWays {
			b = b[:maxStrideWays]
		}
		if len(spec.stride)+len(b) > maxStrideEntries {
			break
		}
		head := int32(len(spec.stride))
		for i := range b {
			b[i].Next = head + int32(i) + 1
			spec.stride = append(spec.stride, b[i])
		}
		spec.stride[len(spec.stride)-1].Next = noStride
		spec.hot[a].stride = head
	}
	spec.strideProbe = buildStrideProbes(spec.stride)

	// Global bailout: a table that fuses only a thin slice of the profile
	// makes replay slower, not faster — the specialized kernel's residue
	// path and its probe misses are overhead the plain kernel never pays.
	// Dropping the table here routes AdvanceBatch to the plain kernel, so a
	// workload the pass cannot help replays exactly as fast as before.
	if len(sample) > 0 && len(spec.stride) > 0 {
		if strideSampleFused(spec, sample)*100 < strideMinFusedPct*uint64(len(sample)) {
			for i := range spec.hot {
				spec.hot[i].stride = noStride
			}
			spec.stride = nil
			spec.strideProbe = nil
		}
	}
	return spec
}

// strideSampleFused counts the sample edges the finished table would fuse,
// attaching greedily exactly as the kernels do (warm checks elided — the
// steady state they converge to fuses every matched attach).
func strideSampleFused(spec *Compiled, sample []Edge) uint64 {
	var fusedTotal uint64
	var sink Stats
	n := len(sample)
	cur, des := NTE, false
	for k := 0; k < n; {
		if cur != NTE && !des {
			if si := spec.hot[cur].stride; si >= 0 {
				matched := false
				for si >= 0 {
					p := &spec.strideProbe[si]
					m := int(p.m)
					if m > n-k || sample[k] != p.first {
						si = p.next
						continue
					}
					e := &spec.stride[si]
					if m > 1 && !edgesEqual(sample[k:k+m], e.Pattern) {
						si = p.next
						continue
					}
					runs := uint64(1)
					k += m
					for m <= n-k && edgesEqual(sample[k:k+m], e.Pattern) {
						runs++
						k += m
					}
					fusedTotal += e.Edges * runs
					matched = true
					break
				}
				if matched {
					continue
				}
			}
		}
		cur, des = spec.step(cur, des, sample[k].Label, sample[k].Instrs, &sink)
		k++
	}
	return fusedTotal
}

// selectBySample replays sample with the memoryless transition function,
// attaching candidate entries greedily in bucket (probe) order and counting
// both the edges each entry fuses and the probe misses each anchor's chain
// takes, then prunes. Two prunes apply: an entry below the keep threshold
// is dead weight, and a whole bucket whose fused edges don't clear a
// multiple of its probe misses is a net loss — the anchor is visited mostly
// off-cycle, and every off-cycle visit pays the chain walk for nothing
// (this is what made probe-heavy pointer-chasing workloads slower
// specialized than plain). The count walk assumes warm links (the steady
// state the cached kernels converge to), which only ever overestimates — a
// dead cycle still counts zero.
func selectBySample(c *Compiled, buckets map[StateID][]StrideEntry, sample []Edge) {
	type slot struct {
		anchor StateID
		idx    int
	}
	fused := map[slot]uint64{}
	attaches := map[slot]uint64{}
	missAt := map[StateID]uint64{}
	n := len(sample)
	cur, des := NTE, false
	for k := 0; k < n; {
		if cur != NTE && !des {
			b := buckets[cur]
			matched := false
			for i := range b {
				e := &b[i]
				m := len(e.Pattern)
				if m > n-k || sample[k] != e.Pattern[0] {
					continue
				}
				if m > 1 && !edgesEqual(sample[k:k+m], e.Pattern) {
					continue
				}
				runs := uint64(1)
				k += m
				for m <= n-k && edgesEqual(sample[k:k+m], e.Pattern) {
					runs++
					k += m
				}
				fused[slot{cur, i}] += e.Edges * runs
				attaches[slot{cur, i}]++
				matched = true
				break
			}
			if matched {
				continue
			}
			if len(b) > 0 {
				missAt[cur]++
			}
		}
		var sink Stats
		cur, des = c.step(cur, des, sample[k].Label, sample[k].Instrs, &sink)
		k++
	}
	for a, b := range buckets {
		kept := b[:0]
		var total uint64
		for i := range b {
			s := slot{a, i}
			f := fused[s]
			if f < strideMinSampleEdges {
				continue
			}
			// Per-attach floor: an attach must fuse enough edges to cover
			// its own fixed cost. A miss-free self-loop attach resolves
			// entirely from the 32-byte probe record; a general attach pays
			// the pattern compare, the warm check and the scaled delta fold,
			// so it needs a longer region to break even. Entries whose
			// average region is shorter than that floor made replay slower
			// than the per-edge kernel on short-run workloads.
			floor := attaches[s] * strideAttachFloorSelf
			if len(b[i].Pattern) > 1 || len(b[i].MissPos) > 0 {
				floor = attaches[s] * strideAttachFloorGeneral
			}
			if f < floor {
				continue
			}
			kept = append(kept, b[i])
			total += f
		}
		// A fused edge saves roughly one fast-slot resolution; a probe miss
		// costs roughly one chain walk. Requiring the savings to double the
		// walks keeps only anchors that are on-cycle most of the time.
		if total < strideMissCostFactor*missAt[a] {
			kept = kept[:0]
		}
		buckets[a] = kept
	}
}

// pathEdge is one DFS step: the label taken and the state it lands on.
type pathEdge struct {
	label uint64
	to    StateID
}

type specializer struct {
	c      *Compiled
	onPath []bool
	path   []pathEdge
	found  [][]pathEdge
	budget int
}

// dfs enumerates cycles rooted (and minimal) at root over the in-trace
// successor graph extended with trace-link edges. In-trace successors are
// the state's full transition span; link successors are the block's branch
// target and fall-through — the only labels plausibleSuccessor admits off a
// direct terminator — resolved through the entry table, skipped when the
// span already covers the label (the kernel resolves in-trace first).
func (sp *specializer) dfs(root, cur StateID, depth int) {
	if sp.budget <= 0 || len(sp.found) >= maxStrideWays {
		return
	}
	sp.budget--
	c := sp.c
	lo, hi := c.off[cur], c.off[cur+1]
	for j := lo; j < hi; j++ {
		sp.tryEdge(root, c.labels[j], c.targets[j], depth)
	}
	cr := &c.cold[cur]
	if cr.flags&flagBranch != 0 && !sp.inSpan(cur, cr.btgt) {
		if t, ok := c.entry(cr.btgt); ok {
			sp.tryEdge(root, cr.btgt, t, depth)
		}
	}
	if cr.flags&flagFallThru != 0 && cr.fthru != cr.btgt && !sp.inSpan(cur, cr.fthru) {
		if t, ok := c.entry(cr.fthru); ok {
			sp.tryEdge(root, cr.fthru, t, depth)
		}
	}
}

// inSpan reports whether label is among s's in-trace transitions (in which
// case the kernel never reaches the entry table for it).
func (sp *specializer) inSpan(s StateID, label uint64) bool {
	c := sp.c
	for j := c.off[s]; j < c.off[s+1]; j++ {
		if c.labels[j] == label {
			return true
		}
	}
	return false
}

// tryEdge extends the DFS path along one successor edge: closing the cycle
// when it returns to the root, recursing when it stays above it.
func (sp *specializer) tryEdge(root StateID, lab uint64, tgt StateID, depth int) {
	if lab == impossibleLabel || len(sp.found) >= maxStrideWays {
		return
	}
	if tgt == root {
		cyc := make([]pathEdge, len(sp.path)+1)
		copy(cyc, sp.path)
		cyc[len(cyc)-1] = pathEdge{label: lab, to: tgt}
		sp.found = append(sp.found, cyc)
		return
	}
	if tgt <= root || depth+1 >= maxStrideDFSDepth || sp.onPath[tgt] {
		return
	}
	sp.onPath[tgt] = true
	sp.path = append(sp.path, pathEdge{label: lab, to: tgt})
	sp.dfs(root, tgt, depth+1)
	sp.path = sp.path[:len(sp.path)-1]
	sp.onPath[tgt] = false
}

// lowerCycle converts a DFS cycle rotation into a pattern, taking each
// edge's instruction count from the static block sizes. Cycles through
// blocks whose dynamic retire count can diverge from the static one
// (REP-style) simply fail the stream compare at replay time and fall back
// to the per-edge kernel, so admission only needs the static counts to be
// positive.
func lowerCycle(c *Compiled, anchor StateID, cyc []pathEdge) ([]Edge, bool) {
	pat := make([]Edge, len(cyc))
	from := anchor
	for j, pe := range cyc {
		s := c.a.State(from)
		if s == nil || s.TBB == nil {
			return nil, false
		}
		instrs := uint64(s.TBB.Block.NumInstrs)
		if instrs == 0 {
			return nil, false
		}
		pat[j] = Edge{Label: pe.label, Instrs: instrs}
		from = pe.to
	}
	return pat, true
}

// buildStrideEntry lowers a candidate pattern into a stride entry by
// simulating it with the production transition function from (anchor,
// in-sync) and proving it exact: every step lands where the recorded
// trajectory says with the desync flag never raised, and the traversal ends
// back at the anchor. The simulation *is* the entry's Stats delta — the
// cache-less run fills DeltaGlobal directly, and DeltaLocal rewrites the
// misses consumed from non-NTE states into warm local hits (the probe-time
// warm check is what licenses that substitution at replay time).
func buildStrideEntry(c *Compiled, anchor StateID, pat []Edge) (StrideEntry, bool) {
	m := len(pat)
	if m == 0 || m > maxStrideLen || anchor == NTE {
		return StrideEntry{}, false
	}
	e := StrideEntry{
		Anchor:  anchor,
		Exit:    anchor,
		Next:    noStride,
		Pattern: append([]Edge(nil), pat...),
		States:  make([]StateID, m),
		Edges:   uint64(m),
	}
	cur, des := anchor, false
	for j := 0; j < m; j++ {
		lbl, ins := pat[j].Label, pat[j].Instrs
		from := cur
		inTrace := false
		if from != NTE {
			if _, ok := c.next(from, lbl); ok {
				inTrace = true
			}
		}
		cur, des = c.step(cur, des, lbl, ins, &e.DeltaGlobal)
		if des {
			return StrideEntry{}, false
		}
		e.States[j] = cur
		if !inTrace {
			e.MissPos = append(e.MissPos, int32(j))
			if from == NTE || cur == NTE {
				e.Crossings++
			}
		}
		e.Instrs += ins
	}
	if cur != anchor {
		return StrideEntry{}, false
	}
	// DeltaLocal: the same traversal under warm embedded caches. Misses
	// from non-NTE states resolved as warm local hits charge LocalHits
	// instead of GlobalLookups (+GlobalHits when the entry table answered);
	// edges consumed from NTE bypass the cache on every kernel.
	e.DeltaLocal = e.DeltaGlobal
	for _, p := range e.MissPos {
		from := e.Anchor
		if p > 0 {
			from = e.States[p-1]
		}
		if from == NTE {
			continue
		}
		e.DeltaLocal.GlobalLookups--
		if e.States[p] != NTE {
			e.DeltaLocal.GlobalHits--
		}
		e.DeltaLocal.LocalHits++
	}
	e.tile()
	return e, true
}

// addStrideEntry appends e to its anchor's bucket unless an identical
// pattern is already there (static rotations and mined regions overlap on
// plain self-loops).
func addStrideEntry(buckets map[StateID][]StrideEntry, e StrideEntry) {
	for i := range buckets[e.Anchor] {
		if edgesEqual(buckets[e.Anchor][i].Pattern, e.Pattern) {
			return
		}
	}
	buckets[e.Anchor] = append(buckets[e.Anchor], e)
}

// mineStrideEntries scans the sample with the production transition
// function and lowers its periodic regions into stride entries. This is the
// detector for the steady states the static cycle graph cannot express: a
// compound period (an inner loop spun a fixed number of iterations inside
// an outer body) is not a simple cycle — it revisits states — and a loop
// whose body leaves the trace set entirely (exit, cold blocks, re-entry)
// has edges the automaton graph doesn't carry. Both are plain periodic
// windows of the stream, so the miner finds the smallest period that
// repeats at each in-sync position, counts its consecutive traversals, and
// keeps regions that fused at least the selection threshold. buildStrideEntry
// then proves the pattern exact (or rejects it) exactly as for static
// candidates; when the edge period is shorter than the state period the
// pattern is doubled until the trajectory closes.
func mineStrideEntries(c *Compiled, sample []Edge, buckets map[StateID][]StrideEntry) {
	n := len(sample)
	var sink Stats
	cur, des := NTE, false
	k := 0
	for k < n {
		if cur == NTE || des {
			cur, des = c.step(cur, des, sample[k].Label, sample[k].Instrs, &sink)
			k++
			continue
		}
		// Smallest period first, or a multiple of it when the automaton
		// trajectory has a longer period than the edge stream.
		period := 0
		limit := maxStrideLen
		if limit > (n-k)/2 {
			limit = (n - k) / 2
		}
		for m := 1; m <= limit; m++ {
			if sample[k+m] != sample[k] {
				continue
			}
			if edgesEqual(sample[k:k+m], sample[k+m:k+2*m]) {
				period = m
				break
			}
		}
		consumed := 1
		if period != 0 {
			m := period
			r := 2
			for k+(r+1)*m <= n && edgesEqual(sample[k:k+m], sample[k+r*m:k+(r+1)*m]) {
				r++
			}
			if uint64(r)*uint64(m) >= strideMinSampleEdges {
				for mm := m; mm <= maxStrideLen && mm*2 <= r*m; mm += m {
					if e, ok := buildStrideEntry(c, cur, sample[k:k+mm]); ok {
						addStrideEntry(buckets, e)
						break
					}
				}
				// Step through the whole region: every edge of it is now
				// (at best) covered by the mined entry, and re-probing each
				// suffix position would only re-derive rotations of it.
				consumed = r * m
			}
		}
		for j := 0; j < consumed; j++ {
			cur, des = c.step(cur, des, sample[k].Label, sample[k].Instrs, &sink)
			k++
		}
	}
}

// WithStrideTable returns a copy of c carrying tab verbatim, with each
// state's chain head pointing at the first entry in table order that names
// it as Anchor. No validation is performed — this is the verifier-side
// constructor for decoded and deliberately corrupted tables; production
// code builds tables through Specialize only.
func (c *Compiled) WithStrideTable(tab []StrideEntry) *Compiled {
	spec := &Compiled{}
	*spec = *c
	spec.hot = append([]hotRec(nil), c.hot...)
	for i := range spec.hot {
		spec.hot[i].stride = noStride
	}
	spec.stride = StrideTableCopy(tab)
	spec.strideProbe = buildStrideProbes(spec.stride)
	for i := len(spec.stride) - 1; i >= 0; i-- {
		a := spec.stride[i].Anchor
		if a >= 0 && int(a) < len(spec.hot) {
			spec.hot[a].stride = int32(i)
		}
	}
	return spec
}
