package core

import (
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

// recordSet produces a trace set for p with the given strategy.
func recordSet(t *testing.T, p *isa.Program, strategy string, c trace.Config) *trace.Set {
	t.Helper()
	s, ok := trace.NewStrategy(strategy, p, c)
	if !ok {
		t.Fatalf("unknown strategy %q", strategy)
	}
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// mustEncode serializes an automaton that is known to be encodable.
func mustEncode(t testing.TB, a *Automaton) []byte {
	t.Helper()
	data, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestBuildSatisfiesProperties(t *testing.T) {
	for _, strategy := range []string{"mret", "tt", "ctt", "mfet"} {
		t.Run(strategy, func(t *testing.T) {
			p := progs.Figure2(60, 200)
			set := recordSet(t, p, strategy, trace.Config{HotThreshold: 20})
			if set.Len() == 0 {
				t.Fatal("no traces recorded")
			}
			a := Build(set)
			if err := a.Check(); err != nil {
				t.Fatal(err)
			}
			// Property 1: one state per TBB plus NTE.
			if a.NumStates() != set.NumTBBs()+1 {
				t.Errorf("states = %d, want %d", a.NumStates(), set.NumTBBs()+1)
			}
		})
	}
}

func TestEmptyAutomaton(t *testing.T) {
	set := trace.NewSet("mret", nil)
	a := NewAutomaton(set)
	if a.NumStates() != 1 || a.State(NTE).Name() != "NTE" {
		t.Error("empty automaton malformed")
	}
	if err := a.Check(); err != nil {
		t.Error(err)
	}
	if _, ok := a.EntryFor(0x1234); ok {
		t.Error("EntryFor found entry in empty automaton")
	}
}

func TestFullTransitionsFigure2(t *testing.T) {
	// Reproduce the Figure 3(b) structure for the linked-list program.
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 50})
	a := Build(set)
	header := p.Labels["header"]
	t1, ok := set.ByEntry(header)
	if !ok {
		t.Fatal("no trace at header")
	}
	headID, _ := a.StateFor(t1.Head())

	// NTE must have a transition on the trace entry label.
	nteTrans := a.FullTransitions(NTE)
	found := false
	for _, tr := range nteTrans {
		if tr.Label == header && tr.To == headID {
			found = true
		}
		if tr.From != NTE {
			t.Errorf("NTE transition with wrong From: %+v", tr)
		}
	}
	if !found {
		t.Errorf("NTE has no transition into T%d on 0x%x", t1.ID, header)
	}

	// The header state's conditional terminator has two logical successors:
	// one stays in trace (or links), the other(s) resolve somewhere.
	full := a.FullTransitions(headID)
	if len(full) < 2 {
		t.Errorf("head state has %d logical transitions, want >= 2", len(full))
	}
	inTrace := 0
	for _, tr := range full {
		if tr.InTrace {
			inTrace++
		}
	}
	if inTrace == 0 {
		t.Error("head state has no in-trace transition")
	}
}

func TestReplayMapsExecutionToTBBs(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 50})
	a := Build(set)
	r := NewReplayer(a, ConfigGlobalLocal)

	// Re-execute the unmodified program and feed the edge stream.
	m := cpu.New(p)
	run := cfg.NewRunner(m, cfg.StarDBT)
	var prevSteps uint64
	for {
		e, ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.To == nil {
			break
		}
		steps := m.Steps()
		instrs := steps - prevSteps
		prevSteps = steps
		st := r.Advance(e.To.Head, instrs)
		// The map must be precise: when in a state, its TBB's block head
		// equals the executing block head.
		if st != NTE {
			tbb := a.State(st).TBB
			if tbb.Block.Head != e.To.Head {
				t.Fatalf("state %v maps to 0x%x but executing 0x%x", st, tbb.Block.Head, e.To.Head)
			}
		}
	}
	stats := r.Stats()
	if stats.TraceEnters == 0 {
		t.Fatal("replay never entered a trace")
	}
	cov := stats.Coverage()
	// The scan loop dominates execution: coverage must be high.
	if cov < 0.80 {
		t.Errorf("coverage = %.3f, want >= 0.80", cov)
	}
	if stats.InTraceHits == 0 || stats.GlobalLookups == 0 {
		t.Errorf("stats incomplete: %+v", stats)
	}
}

// replayProgram replays set over a fresh execution of p and returns stats.
func replayProgram(t *testing.T, p *isa.Program, a *Automaton, cfgL LookupConfig) *Stats {
	t.Helper()
	r := NewReplayer(a, cfgL)
	m := cpu.New(p)
	run := cfg.NewRunner(m, cfg.StarDBT)
	var prevSteps uint64
	for {
		e, ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.To == nil {
			break
		}
		instrs := m.Steps() - prevSteps
		prevSteps = m.Steps()
		r.Advance(e.To.Head, instrs)
	}
	return r.Stats()
}

func TestAllLookupConfigsAgreeOnCoverage(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	a := Build(set)
	configs := []LookupConfig{
		ConfigNoGlobalLocal,
		ConfigGlobalNoLocal,
		ConfigGlobalLocal,
		{Global: GlobalHash, Local: true},
		{Global: GlobalBTree, Local: true, LocalSize: 1},
		{Global: GlobalBTree, Local: true, LocalSize: 16, Fanout: 4},
	}
	var want float64
	for i, c := range configs {
		st := replayProgram(t, p, a, c)
		if i == 0 {
			want = st.Coverage()
			continue
		}
		if st.Coverage() != want {
			t.Errorf("config %v coverage %.6f != %.6f", c, st.Coverage(), want)
		}
	}
}

func TestLocalCacheReducesGlobalLookups(t *testing.T) {
	p := progs.Figure2(60, 400)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	a := Build(set)
	noLocal := replayProgram(t, p, a, ConfigGlobalNoLocal)
	withLocal := replayProgram(t, p, a, ConfigGlobalLocal)
	if withLocal.GlobalLookups >= noLocal.GlobalLookups {
		t.Errorf("local cache did not reduce global lookups: %d vs %d",
			withLocal.GlobalLookups, noLocal.GlobalLookups)
	}
	if withLocal.LocalHits == 0 {
		t.Error("no local hits")
	}
}

func TestRecorderMatchesOfflineBuild(t *testing.T) {
	// Recording online (Algorithm 2) and building offline (Algorithm 1)
	// from the same strategy on the same execution must yield the same
	// automaton structure.
	p := progs.Figure2(60, 200)

	// Online.
	sOnline, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 30})
	rec := NewRecorder(sOnline, ConfigGlobalLocal)
	m := cpu.New(p)
	run := cfg.NewRunner(m, cfg.StarDBT)
	var prevSteps uint64
	for {
		e, ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		instrs := m.Steps() - prevSteps
		prevSteps = m.Steps()
		rec.Observe(e, instrs)
		if e.To == nil {
			break
		}
	}
	online := rec.Automaton()
	if err := online.Check(); err != nil {
		t.Fatal(err)
	}

	// Offline from an identical fresh recording.
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	offline := Build(set)

	if online.NumStates() != offline.NumStates() {
		t.Errorf("online %d states, offline %d", online.NumStates(), offline.NumStates())
	}
	if online.NumTrans() != offline.NumTrans() {
		t.Errorf("online %d transitions, offline %d", online.NumTrans(), offline.NumTrans())
	}
	if len(online.Entries()) != len(offline.Entries()) {
		t.Errorf("online %d entries, offline %d", len(online.Entries()), len(offline.Entries()))
	}
	// Identical serialized form.
	if string(mustEncode(t, online)) != string(mustEncode(t, offline)) {
		t.Error("online and offline automata serialize differently")
	}
}

func TestRecorderStateMachine(t *testing.T) {
	p := progs.Figure1(100, 10)
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 50})
	rec := NewRecorder(s, ConfigGlobalLocal)
	if rec.State() != RecInitial {
		t.Errorf("initial state = %v", rec.State())
	}
	m := cpu.New(p)
	run := cfg.NewRunner(m, cfg.StarDBT)
	sawCreating := false
	var prevSteps uint64
	for {
		e, ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		instrs := m.Steps() - prevSteps
		prevSteps = m.Steps()
		rec.Observe(e, instrs)
		if rec.State() == RecCreating {
			sawCreating = true
		}
		if e.To == nil {
			break
		}
	}
	if !sawCreating {
		t.Error("recorder never entered Creating")
	}
	if rec.State() != RecExecuting {
		t.Errorf("final state = %v", rec.State())
	}
	if rec.Set().Len() == 0 {
		t.Error("no traces recorded")
	}
	if rec.Replayer().Stats().Instrs == 0 {
		t.Error("recorder accounted no instructions")
	}
	for _, name := range []RecState{RecInitial, RecExecuting, RecCreating, RecState(99)} {
		_ = name.String()
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		t.Run(strategy, func(t *testing.T) {
			p := progs.Figure2(60, 200)
			set := recordSet(t, p, strategy, trace.Config{HotThreshold: 20})
			a := Build(set)
			data := mustEncode(t, a)
			if uint64(len(data)) != EncodedSize(a) {
				t.Error("EncodedSize disagrees with Encode")
			}
			cache := cfg.NewCache(p, cfg.StarDBT)
			b, err := Decode(data, cache)
			if err != nil {
				t.Fatal(err)
			}
			if b.NumStates() != a.NumStates() || b.NumTrans() != a.NumTrans() {
				t.Errorf("decoded %d/%d, want %d/%d",
					b.NumStates(), b.NumTrans(), a.NumStates(), a.NumTrans())
			}
			// Re-encoding is byte-identical.
			if string(mustEncode(t, b)) != string(data) {
				t.Error("re-encode differs")
			}
			// The decoded set's strategy survives.
			if b.Set().Strategy != strategy {
				t.Errorf("strategy = %q", b.Set().Strategy)
			}
		})
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	a := Build(set)
	data := mustEncode(t, a)
	cache := cfg.NewCache(p, cfg.StarDBT)

	if _, err := Decode([]byte("BOGUS"), cache); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(data[:len(data)/2], cache); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := Decode(append(append([]byte{}, data...), 0xFF), cache); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Flipping an address byte must be caught by block re-discovery or
	// label validation (not silently accepted).
	mut := append([]byte{}, data...)
	mut[len(magic)+10] ^= 0x40
	if _, err := Decode(mut, cache); err == nil {
		t.Log("single-byte mutation decoded; validating invariants instead")
	}
}

func TestEncodeSmallerThanCodeReplication(t *testing.T) {
	// The headline claim of Table 1: the TEA representation is much
	// smaller than replicating trace code.
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		p := progs.Figure2(64, 400)
		set := recordSet(t, p, strategy, trace.Config{HotThreshold: 20})
		if set.Len() == 0 {
			t.Fatalf("%s recorded nothing", strategy)
		}
		a := Build(set)
		tea := EncodedSize(a)
		dbt := set.CodeBytes()
		if tea >= dbt {
			t.Errorf("%s: TEA %dB not smaller than DBT %dB", strategy, tea, dbt)
		}
		savings := 1 - float64(tea)/float64(dbt)
		if savings < 0.5 {
			t.Errorf("%s: savings only %.0f%%", strategy, savings*100)
		}
	}
}

func TestDotAndSummary(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 50})
	a := Build(set)
	dot := Dot(a, "fig3")
	for _, want := range []string{"digraph", "NTE", "->", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	sum := Summary(a)
	if !strings.Contains(sum, "NTE") || !strings.Contains(sum, "$$T") {
		t.Errorf("summary missing content:\n%s", sum)
	}
	if !strings.Contains(sum, "trace entry") {
		t.Error("summary missing entry transitions")
	}
}

func TestLookupConfigStrings(t *testing.T) {
	if ConfigGlobalLocal.String() != "btree/local" {
		t.Errorf("%q", ConfigGlobalLocal.String())
	}
	if ConfigNoGlobalLocal.String() != "list/local" {
		t.Errorf("%q", ConfigNoGlobalLocal.String())
	}
	if (LookupConfig{Global: GlobalHash}).String() != "hash/nolocal" {
		t.Errorf("%q", LookupConfig{Global: GlobalHash}.String())
	}
}

func TestLocalCacheSizeRoundedToPowerOfTwo(t *testing.T) {
	c := LookupConfig{Local: true, LocalSize: 5}.withDefaults()
	if c.LocalSize != 8 {
		t.Errorf("LocalSize = %d, want 8", c.LocalSize)
	}
}

func TestListIndexProbesGrowWithTraces(t *testing.T) {
	li := &listIndex{known: make(map[uint64]*listNode)}
	for i := uint64(1); i <= 100; i++ {
		li.Insert(i*16, StateID(i))
	}
	if li.Len() != 100 {
		t.Fatalf("Len = %d", li.Len())
	}
	li.Lookup(16) // oldest entry: scans the whole list
	if li.Probes() != 100 {
		t.Errorf("probes = %d, want 100", li.Probes())
	}
	// Re-insert replaces, does not duplicate.
	li.Insert(16, 5)
	if li.Len() != 100 {
		t.Error("duplicate insert grew the list")
	}
	if s, ok := li.Lookup(16); !ok || s != 5 {
		t.Error("replacement lost")
	}
	if _, ok := li.Lookup(7); ok {
		t.Error("found absent key")
	}
}

func TestReplayerReset(t *testing.T) {
	p := progs.Figure2(60, 100)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	a := Build(set)
	r := NewReplayer(a, ConfigGlobalLocal)
	r.Advance(p.Entry, 5)
	r.Reset()
	if r.Cur() != NTE || r.Stats().Blocks != 0 {
		t.Error("Reset incomplete")
	}
}

func TestRecorderTreeStrategiesMatchOffline(t *testing.T) {
	// Tree strategies exercise the incremental path hardest: extensions
	// re-sync existing traces, adding states to an already-live automaton.
	for _, strategy := range []string{"tt", "ctt"} {
		t.Run(strategy, func(t *testing.T) {
			p := progs.Figure2(60, 300)

			sOnline, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 20})
			rec := NewRecorder(sOnline, ConfigGlobalLocal)
			m := cpu.New(p)
			run := cfg.NewRunner(m, cfg.StarDBT)
			var prev uint64
			for {
				e, ok, err := run.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				instrs := m.Steps() - prev
				prev = m.Steps()
				rec.Observe(e, instrs)
				if e.To == nil {
					break
				}
			}
			online := rec.Automaton()
			if err := online.Check(); err != nil {
				t.Fatal(err)
			}

			set := recordSet(t, p, strategy, trace.Config{HotThreshold: 20})
			offline := Build(set)
			if string(mustEncode(t, online)) != string(mustEncode(t, offline)) {
				t.Errorf("%s online and offline automata differ (%d vs %d states)",
					strategy, online.NumStates(), offline.NumStates())
			}
			// The online automaton replays with the same coverage.
			onCov := replayProgram(t, p, online, ConfigGlobalLocal).Coverage()
			offCov := replayProgram(t, p, offline, ConfigGlobalLocal).Coverage()
			if onCov != offCov {
				t.Errorf("coverage differs: %.4f vs %.4f", onCov, offCov)
			}
		})
	}
}
