package core

import (
	"testing"
	"testing/quick"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/workload"
)

// randomSet records a trace set from a seeded synthetic program, giving
// the property tests a wide variety of realistic trace shapes (linear
// superblocks, trees, mid-trace duplicates, indirect-branch successors).
func randomSet(t testing.TB, seed int64, strategy string, threshold int) *trace.Set {
	t.Helper()
	spec, _ := workload.ByName("181.mcf")
	spec.Seed = seed
	spec.WorkScale = 8
	p := workload.Program(spec)
	s, ok := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: threshold})
	if !ok {
		t.Fatalf("strategy %q", strategy)
	}
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestQuickAlgorithm1Postconditions verifies the paper's Properties 1 and
// 2 on automata built from randomly seeded programs across all strategies.
func TestQuickAlgorithm1Postconditions(t *testing.T) {
	strategies := []string{"mret", "tt", "ctt", "mfet"}
	f := func(seed int64, stratIdx uint8, thrBits uint8) bool {
		strategy := strategies[int(stratIdx)%len(strategies)]
		threshold := 4 + int(thrBits%24)
		set := randomSet(t, seed, strategy, threshold)
		a := Build(set)
		if err := a.Check(); err != nil {
			t.Logf("seed %d %s: %v", seed, strategy, err)
			return false
		}
		// Property 1 cardinality: states = TBBs + NTE.
		if a.NumStates() != set.NumTBBs()+1 {
			t.Logf("seed %d %s: %d states for %d TBBs", seed, strategy, a.NumStates(), set.NumTBBs())
			return false
		}
		// Determinism of the logical relation: no state has two transitions
		// on the same label.
		for i := 0; i < a.NumStates(); i++ {
			seen := make(map[uint64]bool)
			for _, tr := range a.FullTransitions(StateID(i)) {
				if seen[tr.Label] {
					t.Logf("seed %d %s: duplicate label 0x%x in state %d", seed, strategy, tr.Label, i)
					return false
				}
				seen[tr.Label] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeRoundTrip: serialization round-trips byte-identically for
// random sets under every strategy.
func TestQuickEncodeRoundTrip(t *testing.T) {
	strategies := []string{"mret", "tt", "ctt"}
	f := func(seed int64, stratIdx uint8) bool {
		strategy := strategies[int(stratIdx)%len(strategies)]
		set := randomSet(t, seed, strategy, 8)
		if set.Len() == 0 {
			return true
		}
		a := Build(set)
		data, err := Encode(a)
		if err != nil {
			t.Logf("seed %d %s: encode: %v", seed, strategy, err)
			return false
		}

		spec, _ := workload.ByName("181.mcf")
		spec.Seed = seed
		spec.WorkScale = 8
		p := workload.Program(spec)
		b, err := Decode(data, cfg.NewCache(p, cfg.StarDBT))
		if err != nil {
			t.Logf("seed %d %s: decode: %v", seed, strategy, err)
			return false
		}
		again, err := Encode(b)
		if err != nil {
			t.Logf("seed %d %s: re-encode: %v", seed, strategy, err)
			return false
		}
		if string(again) != string(data) {
			t.Logf("seed %d %s: re-encode differs", seed, strategy)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics: every prefix truncation of a valid stream decodes
// to an error (or, for the empty-trace prefix boundaries, a valid smaller
// automaton) without panicking.
func TestDecodeNeverPanics(t *testing.T) {
	set := randomSet(t, 1, "mret", 8)
	a := Build(set)
	data := mustEncode(t, a)
	spec, _ := workload.ByName("181.mcf")
	spec.Seed = 1
	spec.WorkScale = 8
	p := workload.Program(spec)
	cache := cfg.NewCache(p, cfg.StarDBT)

	for k := 0; k <= len(data); k++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode(data[:%d]) panicked: %v", k, r)
				}
			}()
			_, _ = Decode(data[:k], cache)
		}()
	}
	// Random single-byte corruptions never panic either.
	for k := 0; k < len(data); k += 7 {
		mut := append([]byte{}, data...)
		mut[k] ^= 0x5A
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode with corrupt byte %d panicked: %v", k, r)
				}
			}()
			_, _ = Decode(mut, cache)
		}()
	}
}

// TestQuickReplayCoverageConfigInvariant: coverage is a pure function of
// the automaton and the execution — the lookup configuration must never
// change it.
func TestQuickReplayCoverageConfigInvariant(t *testing.T) {
	f := func(seed int64) bool {
		spec, _ := workload.ByName("181.mcf")
		spec.Seed = seed
		spec.WorkScale = 8
		p := workload.Program(spec)
		s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 8})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
		if err != nil {
			t.Log(err)
			return false
		}
		a := Build(set)
		var first float64
		for i, lc := range []LookupConfig{
			{Global: GlobalList, Local: true},
			{Global: GlobalBTree},
			{Global: GlobalSorted, Local: true, LocalSize: 2},
			{Global: GlobalHash, Local: true, LocalSize: 16},
		} {
			r := NewReplayer(a, lc)
			m := cpu.New(p)
			run := cfg.NewRunner(m, cfg.StarDBT)
			var prev uint64
			for {
				e, ok, err := run.Next()
				if err != nil {
					t.Log(err)
					return false
				}
				if !ok || e.To == nil {
					break
				}
				instrs := m.Steps() - prev
				prev = m.Steps()
				r.Advance(e.To.Head, instrs)
			}
			cov := r.Stats().Coverage()
			if i == 0 {
				first = cov
			} else if cov != first {
				t.Logf("seed %d: config %v coverage %f != %f", seed, lc, cov, first)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
