package core

import (
	"testing"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/trace"
)

// compileTestProg exercises a loop nest with a conditional branch so the
// recorded traces have both branch-target and fall-through successors.
const compileTestProg = `
.entry main
main:
    movi ecx, 60
loop:
    addi eax, 3
    cmpi eax, 90
    jlt  low
    subi eax, 90
low:
    subi ecx, 1
    jgt  loop
    halt
`

// buildTestAutomaton records traces for the program and builds its TEA.
func buildTestAutomaton(t *testing.T) (*Automaton, *cpu.Machine) {
	t.Helper()
	p := asm.MustAssemble("compiletest", compileTestProg)
	strat, ok := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 4})
	if !ok {
		t.Fatal("mret strategy missing")
	}
	m := cpu.New(p)
	set, _, err := trace.RecordContext(nil, m, cfg.StarDBT, strat, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := Build(set)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.NumStates() < 3 {
		t.Fatalf("test automaton too small: %d states", a.NumStates())
	}
	return a, cpu.New(p)
}

// TestCompiledNextMatchesStateNext drives the flat transition lookup over
// every state's own labels, every other state's labels, and guaranteed
// misses, comparing against the reference State.Next.
func TestCompiledNextMatchesStateNext(t *testing.T) {
	a, _ := buildTestAutomaton(t)
	c := Compile(a, ConfigGlobalLocal)

	var labels []uint64
	for i := 0; i < a.NumStates(); i++ {
		s := a.State(StateID(i))
		labels = append(labels, s.labels...)
	}
	labels = append(labels, 0, 1, 0xdeadbeef)

	for i := 0; i < a.NumStates(); i++ {
		id := StateID(i)
		for _, label := range labels {
			wantT, wantOK := a.State(id).Next(label)
			gotT, gotOK := c.next(id, label)
			if wantT != gotT || wantOK != gotOK {
				t.Fatalf("state %d label 0x%x: compiled (%d,%v) want (%d,%v)",
					id, label, gotT, gotOK, wantT, wantOK)
			}
		}
	}
}

// TestCompiledEntryMatchesEntryFor checks the open-addressed entry table
// against the automaton's canonical entry map, hits and misses.
func TestCompiledEntryMatchesEntryFor(t *testing.T) {
	a, _ := buildTestAutomaton(t)
	c := Compile(a, ConfigGlobalLocal)

	if c.NumEntries() != len(a.Entries()) {
		t.Fatalf("NumEntries = %d, want %d", c.NumEntries(), len(a.Entries()))
	}
	for _, e := range a.Entries() {
		got, ok := c.entry(e.Addr)
		if !ok || got != e.State {
			t.Fatalf("entry(0x%x) = (%d,%v), want (%d,true)", e.Addr, got, ok, e.State)
		}
	}
	for _, miss := range []uint64{0, 1, 3, 0xfffffff0, ^uint64(0)} {
		if _, ok := a.EntryFor(miss); ok {
			continue
		}
		if got, ok := c.entry(miss); ok {
			t.Fatalf("entry(0x%x) = (%d,true), want miss", miss, got)
		}
	}
}

// TestCompiledPlausibleMatchesReference compares the precomputed desync
// predicate against plausibleSuccessor over a label sample.
func TestCompiledPlausibleMatchesReference(t *testing.T) {
	a, _ := buildTestAutomaton(t)
	c := Compile(a, ConfigGlobalLocal)

	var labels []uint64
	for i := 1; i < a.NumStates(); i++ {
		s := a.State(StateID(i))
		labels = append(labels, s.labels...)
		labels = append(labels, s.TBB.Block.Head, s.TBB.Block.End)
		if ft, ok := s.TBB.Block.FallThrough(); ok {
			labels = append(labels, ft)
		}
	}
	labels = append(labels, 0, 2, 0xdeadbeef)

	for i := 1; i < a.NumStates(); i++ {
		id := StateID(i)
		for _, label := range labels {
			want := plausibleSuccessor(a.State(id).TBB, label)
			if got := c.plausible(id, label); got != want {
				t.Fatalf("state %d label 0x%x: plausible=%v want %v", id, label, got, want)
			}
		}
	}
}

// TestCompiledReplayerMatchesReference replays the program's own stream
// through the reference replayer and the compiled one (single-edge and
// batched) and demands identical stats and cursors at the end.
func TestCompiledReplayerMatchesReference(t *testing.T) {
	a, m := buildTestAutomaton(t)

	// Regenerate the dynamic block stream directly from the machine.
	var stream []Edge
	r := cfg.NewRunner(m, cfg.StarDBT)
	var prev uint64
	for {
		e, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps := r.Machine().Steps()
		instrs := steps - prev
		prev = steps
		if e.To == nil {
			break
		}
		stream = append(stream, Edge{Label: e.To.Head, Instrs: instrs})
	}
	if len(stream) < 20 {
		t.Fatalf("stream too short: %d edges", len(stream))
	}

	for _, cfgCase := range []LookupConfig{
		{Global: GlobalHash, Local: true},
		{Global: GlobalBTree, Local: true, LocalSize: 2},
		{Global: GlobalBTree, Local: false},
		{Global: GlobalList, Local: true},
	} {
		ref := NewReplayer(a, cfgCase)
		for _, e := range stream {
			ref.Advance(e.Label, e.Instrs)
		}

		comp := NewCompiledReplayer(Compile(a, cfgCase))
		for _, e := range stream {
			comp.Advance(e.Label, e.Instrs)
		}
		if *ref.Stats() != *comp.Stats() {
			t.Fatalf("%v: single-edge stats diverge:\nref  %+v\ncomp %+v", cfgCase, *ref.Stats(), *comp.Stats())
		}
		if ref.Cur() != comp.Cur() {
			t.Fatalf("%v: cursor %d vs %d", cfgCase, ref.Cur(), comp.Cur())
		}

		batch := NewCompiledReplayer(Compile(a, cfgCase))
		batch.AdvanceBatch(stream)
		if *ref.Stats() != *batch.Stats() {
			t.Fatalf("%v: batched stats diverge:\nref   %+v\nbatch %+v", cfgCase, *ref.Stats(), *batch.Stats())
		}
		if ref.Cur() != batch.Cur() {
			t.Fatalf("%v: batched cursor %d vs %d", cfgCase, ref.Cur(), batch.Cur())
		}
	}
}

// TestSequentialReplayMatchesNoLocalCompiled pins the documented identity:
// the memoryless SequentialReplay equals a CompiledReplayer compiled
// without local caches.
func TestSequentialReplayMatchesNoLocalCompiled(t *testing.T) {
	a, m := buildTestAutomaton(t)
	var stream []Edge
	r := cfg.NewRunner(m, cfg.StarDBT)
	var prev uint64
	for {
		e, ok, err := r.Next()
		if err != nil || !ok || e.To == nil {
			break
		}
		steps := r.Machine().Steps()
		stream = append(stream, Edge{Label: e.To.Head, Instrs: steps - prev})
		prev = steps
	}
	c := Compile(a, LookupConfig{Global: GlobalHash})
	st, final := SequentialReplay(c, stream)
	rep := NewCompiledReplayer(c)
	rep.AdvanceBatch(stream)
	if st != *rep.Stats() || final != rep.Cur() {
		t.Fatalf("SequentialReplay diverges from cache-less CompiledReplayer:\nseq %+v cur=%d\nrep %+v cur=%d",
			st, final, *rep.Stats(), rep.Cur())
	}
}

// TestAddEntryReusesCaches is the cache-invalidation satellite: AddEntry
// must invalidate the local caches without dropping them for reallocation.
// Under the generation scheme the flush is lazy — it happens in place the
// next time the cache is consulted — so the observable contract is: same
// cache object, and no stale (negative) entry survives past AddEntry.
func TestAddEntryReusesCaches(t *testing.T) {
	a, _ := buildTestAutomaton(t)
	r := NewReplayer(a, ConfigGlobalLocal)

	// Warm a cache on a real state so the slice and a cache object exist.
	var sid StateID
	for i := 1; i < a.NumStates(); i++ {
		if a.State(StateID(i)).NumTrans() > 0 {
			sid = StateID(i)
			break
		}
	}
	if sid == NTE {
		t.Fatal("no state with transitions")
	}
	r.resolve(sid, 0xabcd)
	if len(r.caches) == 0 || r.caches[sid] == nil {
		t.Fatal("cache was not materialized")
	}
	before := r.caches[sid]
	if before.labels[before.slot(0xabcd)] != 0xabcd {
		t.Fatal("cache slot not warmed")
	}

	r.AddEntry(0x999999, sid)

	if len(r.caches) == 0 {
		t.Fatal("AddEntry dropped the cache slice")
	}
	// The stale negative entry must be gone: the lookup now hits the new
	// entry (the lazy flush runs before the cache is consulted).
	if got := r.resolve(sid, 0x999999); got != sid {
		t.Fatalf("resolve after AddEntry = %d, want %d", got, sid)
	}
	after := r.caches[sid]
	if after != before {
		t.Fatal("AddEntry reallocated the cache instead of flushing it in place")
	}
	// The flush zeroed every slot; only the slot the post-AddEntry resolve
	// re-populated may be live, and it must hold the fresh entry.
	live := after.slot(0x999999)
	for i := range after.labels {
		if i == live {
			continue
		}
		if after.labels[i] != 0 || after.targets[i] != NTE {
			t.Fatalf("cache slot %d not flushed: label=0x%x target=%d", i, after.labels[i], after.targets[i])
		}
	}
	if after.labels[live] != 0x999999 || after.targets[live] != sid {
		t.Fatalf("fresh entry not cached: label=0x%x target=%d", after.labels[live], after.targets[live])
	}
}
