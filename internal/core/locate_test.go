package core

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

func TestLocateMapsEveryInstructionOfEveryTBB(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 50})
	a := Build(set)

	for _, tr := range set.Traces {
		for _, tbb := range tr.TBBs {
			id, _ := a.StateFor(tbb)
			// Walk the block's instructions through the program and check
			// each locates to the right index.
			addr := tbb.Block.Head
			for i := 0; i < tbb.Block.NumInstrs; i++ {
				loc, ok := a.LocateIn(p, id, addr)
				if !ok {
					t.Fatalf("%v: instruction %d at 0x%x not located", tbb, i, addr)
				}
				if loc.Index != i || loc.TBB != tbb || loc.State != id {
					t.Fatalf("%v: Locate(0x%x) = %+v, want index %d", tbb, addr, loc, i)
				}
				if loc.Instr.Addr != addr {
					t.Fatalf("wrong instruction resolved")
				}
				addr = loc.Instr.Next()
			}
			// One past the block end is out of range.
			if _, ok := a.LocateIn(p, id, tbb.Block.End+uint64(tbb.Block.Term.Size)); ok {
				t.Fatalf("%v: located past block end", tbb)
			}
		}
	}
}

func TestLocateRejections(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 50})
	a := Build(set)
	r := NewReplayer(a, ConfigGlobalLocal)

	// NTE never locates.
	if _, ok := r.Locate(p, p.Entry); ok {
		t.Error("located while at NTE")
	}

	// Mid-instruction addresses never locate.
	tbb := set.Traces[0].TBBs[0]
	id, _ := a.StateFor(tbb)
	if tbb.Block.NumInstrs > 0 && tbb.Block.Head+1 <= tbb.Block.End {
		if _, ok := a.LocateIn(p, id, tbb.Block.Head+1); ok {
			// Head+1 might coincidentally be a boundary only if the first
			// instruction is 1 byte; our programs' first block instrs are
			// multi-byte, but guard anyway.
			if in, valid := p.At(tbb.Block.Head + 1); !valid || in == nil {
				t.Error("located a mid-instruction address")
			}
		}
	}
}

func TestLocateDuringReplay(t *testing.T) {
	// While replaying, the cursor plus the machine PC identify the exact
	// trace instruction about to execute.
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 50})
	a := Build(set)
	r := NewReplayer(a, ConfigGlobalLocal)

	m := cpu.New(p)
	run := cfg.NewRunner(m, cfg.StarDBT)
	located := 0
	var prev uint64
	for {
		e, ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.To == nil {
			break
		}
		instrs := m.Steps() - prev
		prev = m.Steps()
		st := r.Advance(e.To.Head, instrs)
		if st != NTE {
			loc, ok := r.Locate(p, e.To.Head)
			if !ok || loc.Index != 0 {
				t.Fatalf("block head did not locate to index 0: %+v ok=%v", loc, ok)
			}
			located++
		}
	}
	if located == 0 {
		t.Fatal("never located during replay")
	}
}
