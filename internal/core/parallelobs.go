package core

import (
	"runtime"

	"github.com/lsc-tea/tea/internal/obs"
)

// This file is the observability-enabled twin of parallel.go. The shape of
// the problem: naive per-shard event recording would publish observations
// from the speculative prefix of each shard — observations that junction
// reconciliation later proves wrong — so the merged event stream would
// differ from a sequential replay's. The fix reuses the memoryless-step
// argument: events, like Stats increments, are pure functions of
// (pre-state, edge), so the reconciliation that swaps the speculative
// prefix's Stats for the true prefix's Stats swaps its events the same
// way. Each shard collects raw events tagged with global edge indices into
// a private slice (its per-shard sink — no synchronization on the hot
// path); reconciliation splices true-prefix events with post-convergence
// speculative events; and the merged, edge-ordered stream is folded
// through the same Obs emitters the sequential path uses. Counters are
// charged to per-shard cells (obs.Counter.AddShard), so concurrent shards
// never contend on a cache line and the aggregate equals the sequential
// fold by the byte-identical-Stats theorem of DESIGN.md §9.

// stepObs is step with event collection: identical Stats increments and
// post-state for every input, additionally appending the edge's events
// (timestamped eidx) to evs. Kept structurally parallel to step so the
// differential tests can hold them against each other.
func (c *Compiled) stepObs(cur StateID, desynced bool, label, instrs uint64, st *Stats, evs *[]obs.Event, eidx uint64) (StateID, bool) {
	if instrs != 0 {
		st.Blocks++
		st.Instrs += instrs
		if cur != NTE {
			st.TraceBlocks++
			st.TraceInstrs += instrs
		}
	}
	var next StateID
	if cur != NTE {
		rec := &c.hot[cur]
		if rec.lab0 == label {
			st.InTraceHits++
			next = rec.tgt0
		} else if rec.lab1 == label {
			st.InTraceHits++
			next = rec.tgt1
		} else if t, ok := c.nextSlow(cur, label); ok {
			st.InTraceHits++
			next = t
		} else {
			if !c.cold[cur].plausible(label) {
				st.Desyncs++
				desynced = true
				*evs = append(*evs, obs.Event{Edge: eidx, Aux: label, State: int32(cur), Kind: obs.EvDesync})
			}
			st.GlobalLookups++
			t, ok, depth := c.entryProbes(label)
			*evs = append(*evs, obs.Event{Edge: eidx, Aux: depth, State: int32(cur), Kind: obs.EvCacheMissProbe})
			if ok {
				st.GlobalHits++
				next = t
			}
			if next == NTE {
				st.TraceExits++
				*evs = append(*evs, obs.Event{Edge: eidx, Aux: label, State: int32(cur), Kind: obs.EvTraceExit})
			} else {
				st.TraceLinks++
				*evs = append(*evs, obs.Event{Edge: eidx, Aux: label, State: int32(next), Kind: obs.EvEntryTableHit})
			}
		}
	} else {
		st.GlobalLookups++
		if t, ok := c.entry(label); ok {
			st.GlobalHits++
			next = t
			st.TraceEnters++
			*evs = append(*evs, obs.Event{Edge: eidx, Aux: label, State: int32(next), Kind: obs.EvTraceEnter})
		}
	}
	if next != NTE && desynced {
		desynced = false
		st.Resyncs++
		*evs = append(*evs, obs.Event{Edge: eidx, Aux: label, State: int32(next), Kind: obs.EvResync})
	}
	return next, desynced
}

// SequentialReplayObs is SequentialReplay with observability: identical
// Stats and final state, with events collected per edge, counters folded
// once, and the derived histograms fed through the shared ingest path. A
// nil context delegates to the plain SequentialReplay.
func SequentialReplayObs(c *Compiled, stream []Edge, o *obs.Obs) (Stats, StateID) {
	if o == nil {
		return SequentialReplay(c, stream)
	}
	var st Stats
	evs := make([]obs.Event, 0, 256)
	base := o.EdgeBase()
	cur, desynced := NTE, false
	for k := range stream {
		cur, desynced = c.stepObs(cur, desynced, stream[k].Label, stream[k].Instrs, &st, &evs, base+uint64(k))
	}
	o.AdvanceEdges(uint64(len(stream)))
	obsFoldReplay(o, 0, &st)
	o.IngestReplay(evs)
	return st, cur
}

// ParallelReplayObs is ParallelReplay with observability. The merged Stats
// and final state stay byte-identical to SequentialReplay; additionally the
// merged event stream — and therefore the ring contents and every derived
// histogram — is identical to what SequentialReplayObs produces on the same
// stream, because reconciliation splices speculative-prefix events out
// exactly where it swaps speculative-prefix Stats out. Counter updates land
// in per-shard cells, the shard scans run SpecReplayObs's call-free loop on
// the persistent pool, and the event sinks, trajectories and junction
// scratch are all pooled (shard.go) — obs=on parallel replay allocates
// nothing in the steady state. A nil context delegates to ParallelReplay.
func ParallelReplayObs(c *Compiled, stream []Edge, shards int, o *obs.Obs) (Stats, StateID) {
	if o == nil {
		return ParallelReplay(c, stream, shards)
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(stream) {
		shards = len(stream)
	}
	if shards <= 1 {
		return SequentialReplayObs(c, stream, o)
	}
	st, cur, _ := parallelReplay(c, stream, shards, o, nil)
	return st, cur
}
