package core

import (
	"github.com/lsc-tea/tea/internal/obs"
)

// This file is the bridge between core and the observability layer. The
// direction of knowledge is one-way — obs knows nothing about core — so
// the counter fold lives here: replay counters are not incremented on the
// hot path but folded in from Stats deltas at batch boundaries (AdvanceBatch
// epilogue, FlushObs, shard reconciliation), which keeps the enabled-mode
// per-edge cost at zero atomics for counter maintenance and the
// disabled-mode cost at a nil check on the slow branches only.

// obsFoldReplay charges a Stats delta to the replay counter set under the
// given shard's cells.
func obsFoldReplay(o *obs.Obs, shard int, d *Stats) {
	m := o.Replay
	m.Blocks.AddShard(shard, d.Blocks)
	m.Instrs.AddShard(shard, d.Instrs)
	m.TraceBlocks.AddShard(shard, d.TraceBlocks)
	m.TraceInstrs.AddShard(shard, d.TraceInstrs)
	m.InTraceHits.AddShard(shard, d.InTraceHits)
	m.LocalHits.AddShard(shard, d.LocalHits)
	m.LocalMisses.AddShard(shard, d.LocalMisses)
	m.GlobalLookups.AddShard(shard, d.GlobalLookups)
	m.GlobalHits.AddShard(shard, d.GlobalHits)
	m.Enters.AddShard(shard, d.TraceEnters)
	m.Links.AddShard(shard, d.TraceLinks)
	m.Exits.AddShard(shard, d.TraceExits)
	m.Desyncs.AddShard(shard, d.Desyncs)
	m.Resyncs.AddShard(shard, d.Resyncs)
}

// SetObs attaches (or with nil detaches) an observability context to the
// reference replayer. Counters fold from the point of attachment; when the
// global container is the B+ tree, its per-search probe hook additionally
// feeds a tea_btree_probe_depth histogram covering every tree search,
// NTE-side lookups included.
func (r *Replayer) SetObs(o *obs.Obs) {
	r.obs = o
	r.obsFolded = r.stats
	if bi, ok := r.index.(*btreeIndex); ok {
		if o == nil {
			bi.t.SetProbeHook(nil)
		} else {
			h := o.Reg.Histogram("tea_btree_probe_depth",
				"B+ tree nodes visited per global-container search", obs.ProbeDepthBuckets)
			bi.t.SetProbeHook(obs.NewProbe(h, 0).Observe)
		}
	}
}

// Obs returns the attached observability context (nil when disabled).
func (r *Replayer) Obs() *obs.Obs { return r.obs }

// FlushObs folds the Stats accumulated since the last flush (or since
// SetObs) into the replay counters. The reference replayer does not fold
// per edge; callers flush at natural boundaries — end of a replay pass,
// recorder sync, metrics scrape.
func (r *Replayer) FlushObs() {
	o := r.obs
	if o == nil {
		return
	}
	d := r.stats
	d.sub(&r.obsFolded)
	r.obsFolded = r.stats
	obsFoldReplay(o, 0, &d)
}

// lookupGlobalFrom is resolve's global search with observability: the
// container's cumulative probe counter is read around the lookup so the
// per-search depth feeds the probe-depth histogram and the
// CacheMiss→probe event — the Table 4 ablation signal.
func (r *Replayer) lookupGlobalFrom(from StateID, label uint64) StateID {
	o := r.obs
	if o == nil {
		return r.lookupGlobal(label)
	}
	before := r.index.Probes()
	t := r.lookupGlobal(label)
	o.CacheMissProbe(int32(from), r.index.Probes()-before)
	return t
}

// SetObs attaches an observability context to the compiled replayer.
// AdvanceBatch folds counters once per batch and emits events from its
// slow branches only; with a nil context the batch loop is untouched.
func (r *CompiledReplayer) SetObs(o *obs.Obs) { r.obs = o }

// Obs returns the attached observability context (nil when disabled).
func (r *CompiledReplayer) Obs() *obs.Obs { return r.obs }

// SetObs attaches an observability context to the recorder and its
// replayer: replay metrics flow from the cursor, record metrics
// (sync spans, entry churn, table occupancy) from the recorder itself.
func (r *Recorder) SetObs(o *obs.Obs) {
	r.obs = o
	r.rep.SetObs(o)
	r.syncSpan = obs.NewSpanTimer(o, "record_sync")
	if o != nil {
		r.lastSync = o.EdgeBase()
	}
}

// Obs returns the attached observability context (nil when disabled).
func (r *Recorder) Obs() *obs.Obs { return r.obs }
