package core

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

// runInstrReplay drives the instruction-level replayer with the machine's
// per-instruction PC stream.
func runInstrReplay(t *testing.T, p *isa.Program, a *Automaton) *InstrStats {
	t.Helper()
	r := NewInstrReplayer(a, ConfigGlobalLocal, p)
	m := cpu.New(p)
	for !m.Halted() {
		pc := m.PC()
		r.StepInstr(pc)
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return r.Stats()
}

func TestInstrReplayCoverageMatchesBlockLevel(t *testing.T) {
	// Instruction-level and block-level replay are two views of the same
	// automaton: their coverage must agree exactly (both count StarDBT
	// style here: the machine loop counts a REP once).
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	a := Build(set)

	instr := runInstrReplay(t, p, a)
	block := replayProgram(t, p, a, ConfigGlobalLocal)

	if instr.Instrs == 0 {
		t.Fatal("no instructions replayed")
	}
	// The block-level driver misses the final block's instructions (the
	// loop breaks at e.To == nil); tolerate that sliver.
	if d := instr.Coverage() - block.Coverage(); d > 0.01 || d < -0.01 {
		t.Errorf("instruction coverage %.4f vs block coverage %.4f",
			instr.Coverage(), block.Coverage())
	}
	if instr.SeqHits == 0 || instr.Boundary == 0 || instr.ColdSeq == 0 {
		t.Errorf("stats incomplete: %+v", instr)
	}
	// Sequential hits dominate: most instructions are not block heads.
	if instr.SeqHits < instr.Boundary {
		t.Errorf("sequential hits (%d) should dominate boundaries (%d)",
			instr.SeqHits, instr.Boundary)
	}
}

func TestInstrReplayCursorTracksIndices(t *testing.T) {
	p := progs.Figure1(100, 60)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	a := Build(set)
	r := NewInstrReplayer(a, ConfigGlobalLocal, p)

	m := cpu.New(p)
	for !m.Halted() {
		pc := m.PC()
		in := r.StepInstr(pc)
		if in {
			st, idx := r.Cur()
			tbb := a.State(st).TBB
			// The cursor's (state, index) must locate to exactly pc.
			loc, ok := a.LocateIn(p, st, pc)
			if !ok || loc.Index != idx {
				t.Fatalf("cursor (%v,%d) vs Locate %+v ok=%v at 0x%x", tbb, idx, loc, ok, pc)
			}
		}
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInstrLevelEncodingLargerThanBlockLevel(t *testing.T) {
	// The ablation that justifies block granularity: the instruction-level
	// wire format is several times the block-level one, though both stay
	// below code replication for typical blocks.
	p := progs.Figure2(64, 400)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 20})
	a := Build(set)

	blockBytes := EncodedSize(a)
	instrBytes, err := InstrLevelSize(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if instrBytes <= blockBytes {
		t.Errorf("instruction-level (%d) not larger than block-level (%d)", instrBytes, blockBytes)
	}
	code := set.CodeBytes()
	t.Logf("code %dB, instr-TEA %dB, block-TEA %dB", code, instrBytes, blockBytes)
	if instrBytes >= code {
		t.Errorf("instruction-level TEA (%d) not smaller than code (%d)", instrBytes, code)
	}
}

func TestEncodeInstrLevelRejectsForeignProgram(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	a := Build(set)
	other := progs.Figure1(10, 1)
	if _, err := EncodeInstrLevel(a, other); err == nil {
		t.Error("foreign program accepted")
	}
}
