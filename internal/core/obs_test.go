package core

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/obs"
)

// captureTestStream regenerates the dynamic block stream of the test
// program (the same loop compile_test.go uses).
func captureTestStream(t *testing.T, m *cpu.Machine) []Edge {
	t.Helper()
	var stream []Edge
	r := cfg.NewRunner(m, cfg.StarDBT)
	var prev uint64
	for {
		e, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.To == nil {
			break
		}
		steps := r.Machine().Steps()
		stream = append(stream, Edge{Label: e.To.Head, Instrs: steps - prev})
		prev = steps
	}
	if len(stream) < 20 {
		t.Fatalf("stream too short: %d edges", len(stream))
	}
	return stream
}

// perturb corrupts every n-th label so the replay hits desyncs and
// resyncs; the returned stream exercises every event kind.
func perturb(stream []Edge, n int) []Edge {
	out := append([]Edge(nil), stream...)
	for i := n; i < len(out); i += n {
		out[i].Label = 0xdead0000 + uint64(i)
	}
	return out
}

// replayCounters reads the replay counter set back into a Stats for
// field-by-field comparison against the ground truth.
func replayCounters(o *obs.Obs) Stats {
	m := o.Replay
	return Stats{
		Blocks:        m.Blocks.Value(),
		Instrs:        m.Instrs.Value(),
		TraceBlocks:   m.TraceBlocks.Value(),
		TraceInstrs:   m.TraceInstrs.Value(),
		InTraceHits:   m.InTraceHits.Value(),
		LocalHits:     m.LocalHits.Value(),
		LocalMisses:   m.LocalMisses.Value(),
		GlobalLookups: m.GlobalLookups.Value(),
		GlobalHits:    m.GlobalHits.Value(),
		TraceEnters:   m.Enters.Value(),
		TraceLinks:    m.Links.Value(),
		TraceExits:    m.Exits.Value(),
		Desyncs:       m.Desyncs.Value(),
		Resyncs:       m.Resyncs.Value(),
	}
}

// TestStatsCoverageZeroGuard pins the degenerate-input contract: a replay
// that consumed no instructions reports coverage 0, never NaN, across
// every Coverage implementation.
func TestStatsCoverageZeroGuard(t *testing.T) {
	var s Stats
	if got := s.Coverage(); got != 0 {
		t.Fatalf("Stats.Coverage() on zero totals = %v, want 0", got)
	}
	s.TraceInstrs = 5 // corrupt: trace instrs without totals must still not divide by zero
	if got := s.Coverage(); got != 0 {
		t.Fatalf("Stats.Coverage() with Instrs=0 = %v, want 0", got)
	}
	var is InstrStats
	if got := is.Coverage(); got != 0 {
		t.Fatalf("InstrStats.Coverage() on zero totals = %v, want 0", got)
	}
}

// TestAccountTailDegenerate audits AccountTail on the degenerate inputs:
// zero instructions must account nothing (the initial pseudo-edge), from
// both NTE and a trace state.
func TestAccountTailDegenerate(t *testing.T) {
	var s Stats
	s.AccountTail(NTE, 0)
	s.AccountTail(StateID(3), 0)
	if s != (Stats{}) {
		t.Fatalf("AccountTail(_, 0) mutated stats: %+v", s)
	}
	s.AccountTail(NTE, 7)
	if s.Blocks != 1 || s.Instrs != 7 || s.TraceBlocks != 0 || s.TraceInstrs != 0 {
		t.Fatalf("AccountTail(NTE, 7): %+v", s)
	}
	s.AccountTail(StateID(2), 5)
	if s.Blocks != 2 || s.Instrs != 12 || s.TraceBlocks != 1 || s.TraceInstrs != 5 {
		t.Fatalf("AccountTail(state, 5): %+v", s)
	}
	if got := s.Coverage(); got <= 0 || got >= 1 {
		t.Fatalf("Coverage after tails = %v", got)
	}
}

// TestObsEnabledDoesNotPerturbStats replays the same stream with and
// without an observability context on every replayer flavour and demands
// byte-identical Stats and cursors: observation must never change what is
// observed.
func TestObsEnabledDoesNotPerturbStats(t *testing.T) {
	a, m := buildTestAutomaton(t)
	stream := perturb(captureTestStream(t, m), 7)

	for _, cfgCase := range []LookupConfig{
		ConfigGlobalLocal,
		{Global: GlobalBTree, Local: false},
		{Global: GlobalHash, Local: true},
	} {
		// Reference replayer.
		plain := NewReplayer(a, cfgCase)
		for _, e := range stream {
			plain.Advance(e.Label, e.Instrs)
		}
		observed := NewReplayer(a, cfgCase)
		observed.SetObs(obs.New())
		for _, e := range stream {
			observed.Advance(e.Label, e.Instrs)
		}
		if *plain.Stats() != *observed.Stats() || plain.Cur() != observed.Cur() {
			t.Fatalf("%v: reference replayer perturbed by obs:\nplain %+v\nobs   %+v",
				cfgCase, *plain.Stats(), *observed.Stats())
		}

		// Compiled batched replayer.
		cb := NewCompiledReplayer(Compile(a, cfgCase))
		cb.AdvanceBatch(stream)
		co := NewCompiledReplayer(Compile(a, cfgCase))
		co.SetObs(obs.New())
		co.AdvanceBatch(stream)
		if *cb.Stats() != *co.Stats() || cb.Cur() != co.Cur() {
			t.Fatalf("%v: compiled replayer perturbed by obs:\nplain %+v\nobs   %+v",
				cfgCase, *cb.Stats(), *co.Stats())
		}
	}
}

// TestCompiledBatchFoldsCounters pins the counter-fold contract: after a
// batched replay with obs attached, the counter set equals the Stats.
func TestCompiledBatchFoldsCounters(t *testing.T) {
	a, m := buildTestAutomaton(t)
	stream := perturb(captureTestStream(t, m), 9)
	o := obs.New()
	r := NewCompiledReplayer(Compile(a, ConfigGlobalLocal))
	r.SetObs(o)
	r.AdvanceBatch(stream[:len(stream)/2])
	r.AdvanceBatch(stream[len(stream)/2:])
	r.AccountOnly(11)
	if got := replayCounters(o); got != *r.Stats() {
		t.Fatalf("counters diverge from stats:\ncounters %+v\nstats    %+v", got, *r.Stats())
	}
}

// TestReplayerFlushObs pins the reference replayer's lazy fold: counters
// are zero until FlushObs, equal to Stats after, and flushing twice does
// not double-count.
func TestReplayerFlushObs(t *testing.T) {
	a, m := buildTestAutomaton(t)
	stream := captureTestStream(t, m)
	o := obs.New()
	r := NewReplayer(a, ConfigGlobalLocal)
	r.SetObs(o)
	for _, e := range stream {
		r.Advance(e.Label, e.Instrs)
	}
	if got := replayCounters(o); got.Blocks != 0 {
		t.Fatalf("counters folded before FlushObs: %+v", got)
	}
	r.FlushObs()
	r.FlushObs()
	if got := replayCounters(o); got != *r.Stats() {
		t.Fatalf("counters diverge after FlushObs:\ncounters %+v\nstats    %+v", got, *r.Stats())
	}
}

// TestBTreeProbeHistogram checks the B+ tree probe hook wiring: replaying
// with the btree container and obs attached must populate the
// tea_btree_probe_depth histogram.
func TestBTreeProbeHistogram(t *testing.T) {
	a, m := buildTestAutomaton(t)
	stream := captureTestStream(t, m)
	o := obs.New()
	r := NewReplayer(a, ConfigGlobalLocal)
	r.SetObs(o)
	for _, e := range stream {
		r.Advance(e.Label, e.Instrs)
	}
	h := o.Reg.Histogram("tea_btree_probe_depth", "", obs.ProbeDepthBuckets)
	if _, count, _ := h.Buckets(); count == 0 {
		t.Fatal("tea_btree_probe_depth never observed")
	}
	// The trace-side probe histogram must agree with the container's own
	// accounting direction: at least one observation, none deeper than the
	// tree could be.
	if _, count, sum := o.Replay.ProbeDepth.Buckets(); count == 0 || sum == 0 {
		t.Fatalf("tea_replay_probe_depth empty: count=%d sum=%d", count, sum)
	}
}

// eventsEqual compares two event streams exactly.
func eventsEqual(t *testing.T, label string, a, b []obs.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: event counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: event %d differs:\n%+v\n%+v", label, i, a[i], b[i])
		}
	}
}

// TestBatchEventsMatchSequentialObs pins the event-policy agreement between
// the cache-less batched replayer and the memoryless SequentialReplayObs:
// identical streams in, identical event logs out.
func TestBatchEventsMatchSequentialObs(t *testing.T) {
	a, m := buildTestAutomaton(t)
	stream := perturb(captureTestStream(t, m), 5)
	c := Compile(a, LookupConfig{Global: GlobalHash})

	ob := obs.NewWith(obs.NewRegistry(), 1<<16)
	rb := NewCompiledReplayer(c)
	rb.SetObs(ob)
	rb.AdvanceBatch(stream)
	batchEvents, _ := ob.Tracer.Snapshot()

	os := obs.NewWith(obs.NewRegistry(), 1<<16)
	seqSt, seqCur := SequentialReplayObs(c, stream, os)
	seqEvents, _ := os.Tracer.Snapshot()

	if seqSt != *rb.Stats() || seqCur != rb.Cur() {
		t.Fatalf("stats diverge:\nbatch %+v cur=%d\nseq   %+v cur=%d", *rb.Stats(), rb.Cur(), seqSt, seqCur)
	}
	eventsEqual(t, "batch vs sequential", batchEvents, seqEvents)
}

// TestParallelObsMatchesSequentialObs is the shard-merge property test:
// for several shard counts, the parallel replay's summed per-shard
// counters, merged event stream, derived histograms, Stats and final state
// all equal the sequential replay's on the same stream — including streams
// with desyncs landing near shard boundaries.
func TestParallelObsMatchesSequentialObs(t *testing.T) {
	a, m := buildTestAutomaton(t)
	base := captureTestStream(t, m)

	for _, streamCase := range []struct {
		name   string
		stream []Edge
	}{
		{"clean", base},
		{"desyncs", perturb(base, 5)},
		{"desync-heavy", perturb(base, 2)},
	} {
		seqO := obs.NewWith(obs.NewRegistry(), 1<<16)
		c := Compile(a, ConfigGlobalNoLocal)
		seqSt, seqCur := SequentialReplayObs(c, streamCase.stream, seqO)
		seqEvents, _ := seqO.Tracer.Snapshot()

		for _, shards := range []int{2, 3, 4, 7} {
			parO := obs.NewWith(obs.NewRegistry(), 1<<16)
			parSt, parCur := ParallelReplayObs(c, streamCase.stream, shards, parO)
			if parSt != seqSt || parCur != seqCur {
				t.Fatalf("%s/%d shards: stats diverge:\nseq %+v cur=%d\npar %+v cur=%d",
					streamCase.name, shards, seqSt, seqCur, parSt, parCur)
			}
			if got, want := replayCounters(parO), replayCounters(seqO); got != want {
				t.Fatalf("%s/%d shards: summed per-shard counters diverge:\nseq %+v\npar %+v",
					streamCase.name, shards, want, got)
			}
			parEvents, _ := parO.Tracer.Snapshot()
			eventsEqual(t, streamCase.name, seqEvents, parEvents)
			for _, h := range []struct {
				name string
				s, p *obs.Histogram
			}{
				{"probe", seqO.Replay.ProbeDepth, parO.Replay.ProbeDepth},
				{"visit", seqO.Replay.VisitEdges, parO.Replay.VisitEdges},
				{"gap", seqO.Replay.ResyncGap, parO.Replay.ResyncGap},
			} {
				sb, sc, ss := h.s.Buckets()
				pb, pc, ps := h.p.Buckets()
				if sc != pc || ss != ps {
					t.Fatalf("%s/%d shards: %s histogram count/sum diverge: %d/%d vs %d/%d",
						streamCase.name, shards, h.name, sc, ss, pc, ps)
				}
				for i := range sb {
					if sb[i] != pb[i] {
						t.Fatalf("%s/%d shards: %s bucket %d diverges: %d vs %d",
							streamCase.name, shards, h.name, i, sb[i], pb[i])
					}
				}
			}
		}
	}
}

// TestParallelObsNilDelegates checks the nil-context fast path returns the
// plain parallel result.
func TestParallelObsNilDelegates(t *testing.T) {
	a, m := buildTestAutomaton(t)
	stream := captureTestStream(t, m)
	c := Compile(a, ConfigGlobalNoLocal)
	wantSt, wantCur := ParallelReplay(c, stream, 4)
	gotSt, gotCur := ParallelReplayObs(c, stream, 4, nil)
	if gotSt != wantSt || gotCur != wantCur {
		t.Fatal("ParallelReplayObs(nil) diverges from ParallelReplay")
	}
}

// TestEventLogRoundTripFromReplay drains a real replay's ring into the
// binary log and back — the teadump -events contract end to end.
func TestEventLogRoundTripFromReplay(t *testing.T) {
	a, m := buildTestAutomaton(t)
	stream := perturb(captureTestStream(t, m), 6)
	o := obs.NewWith(obs.NewRegistry(), 1<<16)
	r := NewCompiledReplayer(Compile(a, ConfigGlobalLocal))
	r.SetObs(o)
	r.AdvanceBatch(stream)
	events, _ := o.Tracer.Drain()
	if len(events) == 0 {
		t.Fatal("replay produced no events")
	}
	enc := obs.EncodeEvents(events)
	dec, err := obs.DecodeEvents(enc)
	if err != nil {
		t.Fatal(err)
	}
	eventsEqual(t, "round trip", events, dec)
}
