package core

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Cooperative cancellation for the batch replay entry points. The serving
// layer (internal/serve) runs replays on behalf of remote tenants, so every
// long loop reachable from a session handler must be interruptible: a
// cancelled tenant context has to stop shard workers promptly rather than
// letting them run a multi-million-edge stream to completion.
//
// cancelStride balances polling cost against responsiveness: one atomic
// load per 4096 edges is far below the noise floor of the replay loop
// itself (each edge is ~a handful of ns) while bounding the overshoot
// after cancellation to microseconds.
const cancelStride = 4096

// SequentialReplayContext is SequentialReplay with cooperative
// cancellation: the context is polled every cancelStride edges. On
// cancellation it returns the zero Stats, NTE, and ctx.Err() — the partial
// accounting is deliberately withheld, because a prefix's stats are not
// the sequential reference for the stream and must not be mistaken for it.
func SequentialReplayContext(ctx context.Context, c *Compiled, stream []Edge) (Stats, StateID, error) {
	var st Stats
	cur, desynced := NTE, false
	done := ctx.Done()
	for k := range stream {
		if k%cancelStride == 0 && done != nil {
			select {
			case <-done:
				return Stats{}, NTE, ctx.Err()
			default:
			}
		}
		cur, desynced = c.step(cur, desynced, stream[k].Label, stream[k].Instrs, &st)
	}
	return st, cur, nil
}

// ParallelReplayContext is ParallelReplay with cooperative cancellation
// propagated into the shard workers: each worker polls a shared flag every
// cancelStride edges and abandons its segment once the context is
// cancelled, so a dead session cannot pin GOMAXPROCS goroutines on a long
// stream. On cancellation it returns the zero Stats, NTE, and ctx.Err();
// otherwise the result is byte-identical to SequentialReplay, exactly as
// ParallelReplay is.
func ParallelReplayContext(ctx context.Context, c *Compiled, stream []Edge, shards int) (Stats, StateID, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(stream) {
		shards = len(stream)
	}
	if shards <= 1 {
		return SequentialReplayContext(ctx, c, stream)
	}

	var cancelled atomic.Bool
	stop := make(chan struct{})
	defer close(stop)
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				cancelled.Store(true)
			case <-stop:
			}
		}()
	}

	st, cur, ok := parallelReplay(c, stream, shards, nil, &cancelled)
	if !ok || ctx.Err() != nil {
		return Stats{}, NTE, ctx.Err()
	}
	return st, cur, nil
}
