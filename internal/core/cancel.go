package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cooperative cancellation for the batch replay entry points. The serving
// layer (internal/serve) runs replays on behalf of remote tenants, so every
// long loop reachable from a session handler must be interruptible: a
// cancelled tenant context has to stop shard workers promptly rather than
// letting them run a multi-million-edge stream to completion.
//
// cancelStride balances polling cost against responsiveness: one atomic
// load per 4096 edges is far below the noise floor of the replay loop
// itself (each edge is ~a handful of ns) while bounding the overshoot
// after cancellation to microseconds.
const cancelStride = 4096

// SequentialReplayContext is SequentialReplay with cooperative
// cancellation: the context is polled every cancelStride edges. On
// cancellation it returns the zero Stats, NTE, and ctx.Err() — the partial
// accounting is deliberately withheld, because a prefix's stats are not
// the sequential reference for the stream and must not be mistaken for it.
func SequentialReplayContext(ctx context.Context, c *Compiled, stream []Edge) (Stats, StateID, error) {
	var st Stats
	cur, desynced := NTE, false
	done := ctx.Done()
	for k := range stream {
		if k%cancelStride == 0 && done != nil {
			select {
			case <-done:
				return Stats{}, NTE, ctx.Err()
			default:
			}
		}
		cur, desynced = c.step(cur, desynced, stream[k].Label, stream[k].Instrs, &st)
	}
	return st, cur, nil
}

// ParallelReplayContext is ParallelReplay with cooperative cancellation
// propagated into the shard workers: each worker polls a shared flag every
// cancelStride edges and abandons its segment once the context is
// cancelled, so a dead session cannot pin GOMAXPROCS goroutines on a long
// stream. On cancellation it returns the zero Stats, NTE, and ctx.Err();
// otherwise the result is byte-identical to SequentialReplay, exactly as
// ParallelReplay is.
func ParallelReplayContext(ctx context.Context, c *Compiled, stream []Edge, shards int) (Stats, StateID, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(stream) {
		shards = len(stream)
	}
	if shards <= 1 {
		return SequentialReplayContext(ctx, c, stream)
	}

	bounds := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		bounds[i] = i * len(stream) / shards
	}

	var cancelled atomic.Bool
	stop := make(chan struct{})
	defer close(stop)
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				cancelled.Store(true)
			case <-stop:
			}
		}()
	}

	res := make([]shardTrace, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seg := stream[bounds[i]:bounds[i+1]]
			r := &res[i]
			cur, desynced := NTE, false
			if i == 0 {
				for k := range seg {
					if k%cancelStride == 0 && cancelled.Load() {
						return
					}
					cur, desynced = c.step(cur, desynced, seg[k].Label, seg[k].Instrs, &r.stats)
				}
				r.curs = []StateID{cur}
				r.desyn = []bool{desynced}
				return
			}
			r.curs = make([]StateID, len(seg))
			r.desyn = make([]bool, len(seg))
			for k := range seg {
				if k%cancelStride == 0 && cancelled.Load() {
					r.curs = nil // mark the shard abandoned
					return
				}
				cur, desynced = c.step(cur, desynced, seg[k].Label, seg[k].Instrs, &r.stats)
				r.curs[k] = cur
				r.desyn[k] = desynced
			}
		}(i)
	}
	wg.Wait()
	if cancelled.Load() || ctx.Err() != nil {
		return Stats{}, NTE, ctx.Err()
	}

	// No cancellation: merge exactly as ParallelReplay does.
	total := res[0].stats
	cur := res[0].curs[0]
	desynced := res[0].desyn[0]
	for i := 1; i < shards; i++ {
		seg := stream[bounds[i]:bounds[i+1]]
		r := &res[i]
		var trueSt Stats
		tcur, tdes := cur, desynced
		conv := -1
		for j := 0; j < len(seg); j++ {
			tcur, tdes = c.step(tcur, tdes, seg[j].Label, seg[j].Instrs, &trueSt)
			if tcur == r.curs[j] && tdes == r.desyn[j] {
				conv = j
				break
			}
		}
		if conv < 0 {
			total.add(&trueSt)
			cur, desynced = tcur, tdes
			continue
		}
		var specSt Stats
		scur, sdes := NTE, false
		for j := 0; j <= conv; j++ {
			scur, sdes = c.step(scur, sdes, seg[j].Label, seg[j].Instrs, &specSt)
		}
		shard := r.stats
		shard.sub(&specSt)
		shard.add(&trueSt)
		total.add(&shard)
		cur, desynced = r.curs[len(seg)-1], r.desyn[len(seg)-1]
	}
	return total, cur, nil
}
