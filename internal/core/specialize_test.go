package core

import (
	"reflect"
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/obs"
)

// testStream drives the recorded program again and captures its edges.
func testStream(t *testing.T) (*Automaton, []Edge) {
	t.Helper()
	a, m := buildTestAutomaton(t)
	var stream []Edge
	r := cfg.NewRunner(m, cfg.StarDBT)
	var prev uint64
	for {
		e, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.To == nil {
			break
		}
		steps := r.Machine().Steps()
		stream = append(stream, Edge{Label: e.To.Head, Instrs: steps - prev})
		prev = steps
	}
	if len(stream) < 20 {
		t.Fatalf("stream too short: %d edges", len(stream))
	}
	return a, stream
}

// TestSpecializeFindsCycles: the loop-nest test program must yield at least
// one fused cycle, every entry must be self-consistent, and the original
// Compiled must stay untouched.
func TestSpecializeFindsCycles(t *testing.T) {
	a, stream := testStream(t)
	c := Compile(a, ConfigGlobalLocal)
	spec := Specialize(c, stream)

	if c.Specialized() {
		t.Fatal("Specialize mutated its input")
	}
	if !spec.Specialized() {
		t.Fatal("no stride entries found on a loop-nest automaton")
	}
	tab := spec.StrideTable()
	for i, e := range tab {
		if len(e.Pattern) == 0 || len(e.Pattern) != len(e.States) {
			t.Fatalf("entry %d: pattern/states shape %d/%d", i, len(e.Pattern), len(e.States))
		}
		if e.Exit != e.Anchor {
			t.Fatalf("entry %d: exit %d != anchor %d", i, e.Exit, e.Anchor)
		}
		if e.States[len(e.States)-1] != e.Anchor {
			t.Fatalf("entry %d: trajectory does not return to anchor", i)
		}
		if e.Edges != uint64(len(e.Pattern)) {
			t.Fatalf("entry %d: Edges %d != k %d", i, e.Edges, len(e.Pattern))
		}
		miss := map[int32]bool{}
		for _, p := range e.MissPos {
			miss[p] = true
		}
		// Re-run the admission proof: simulate the pattern with the
		// production transition function, checking the trajectory, the
		// in-trace/miss classification and the cache-less delta.
		var sum uint64
		var delta Stats
		cur, des := e.Anchor, false
		for j, p := range e.Pattern {
			inTrace := false
			if cur != NTE {
				if _, ok := spec.NextState(cur, p.Label); ok {
					inTrace = true
				}
			}
			if inTrace == miss[int32(j)] {
				t.Fatalf("entry %d edge %d: miss classification mismatch (in-trace=%v, MissPos says %v)",
					i, j, inTrace, miss[int32(j)])
			}
			cur, des = spec.step(cur, des, p.Label, p.Instrs, &delta)
			if des {
				t.Fatalf("entry %d edge %d: pattern desyncs under simulation", i, j)
			}
			if cur != e.States[j] {
				t.Fatalf("entry %d edge %d: production walk %d != recorded %d",
					i, j, cur, e.States[j])
			}
			sum += p.Instrs
		}
		if sum != e.Instrs {
			t.Fatalf("entry %d: Instrs %d != pattern sum %d", i, e.Instrs, sum)
		}
		if delta != e.DeltaGlobal {
			t.Fatalf("entry %d: DeltaGlobal %+v != simulated %+v", i, e.DeltaGlobal, delta)
		}
		// DeltaLocal and Crossings must be exactly the declared rewrite of
		// the simulated delta.
		var cross uint64
		dl := e.DeltaGlobal
		for _, p := range e.MissPos {
			from := e.Anchor
			if p > 0 {
				from = e.States[p-1]
			}
			if from == NTE || e.States[p] == NTE {
				cross++
			}
			if from == NTE {
				continue
			}
			dl.GlobalLookups--
			if e.States[p] != NTE {
				dl.GlobalHits--
			}
			dl.LocalHits++
		}
		if cross != e.Crossings {
			t.Fatalf("entry %d: Crossings %d != recomputed %d", i, e.Crossings, cross)
		}
		if dl != e.DeltaLocal {
			t.Fatalf("entry %d: DeltaLocal %+v != derived %+v", i, e.DeltaLocal, dl)
		}
	}
}

// TestSpecializedBatchMatchesUnspecialized replays the captured stream (and
// single-edge Advance) through the specialized and plain forms: identical
// Stats and cursor, and the stride path must actually fire.
func TestSpecializedBatchMatchesUnspecialized(t *testing.T) {
	a, stream := testStream(t)
	for _, lk := range []LookupConfig{ConfigGlobalLocal, {Global: GlobalHash}} {
		c := Compile(a, lk)
		// Sample-selected is the production shape; the nil sample keeps every
		// static candidate and must be just as exact (selection is a cost
		// model, not a soundness condition).
		for _, sample := range map[string][]Edge{"sampled": stream, "static": nil} {
			spec := Specialize(c, sample)

			plain := NewCompiledReplayer(c)
			plain.AdvanceBatch(stream)

			fused := NewCompiledReplayer(spec)
			fused.AdvanceBatch(stream)

			if *plain.Stats() != *fused.Stats() || plain.Cur() != fused.Cur() {
				t.Fatalf("%+v: specialized batch diverges:\nplain %+v cur=%d\nfused %+v cur=%d",
					lk, *plain.Stats(), plain.Cur(), *fused.Stats(), fused.Cur())
			}
			if sample != nil && fused.StrideEdges() == 0 {
				t.Fatalf("%+v: stride path never fired on a loop-heavy stream", lk)
			}
			if plain.StrideEdges() != 0 {
				t.Fatalf("%+v: unspecialized replayer reported stride hits", lk)
			}

			single := NewCompiledReplayer(spec)
			for _, e := range stream {
				single.Advance(e.Label, e.Instrs)
			}
			if *single.Stats() != *fused.Stats() || single.Cur() != fused.Cur() {
				t.Fatalf("%+v: single-edge specialized replay diverges", lk)
			}
		}
	}
}

// TestSpecializedMidCycleDesync corrupts labels inside the steady-state
// cycle region and checks the specialized replayer against the reference —
// Desyncs/Resyncs byte-exact even when the fault lands mid-traversal.
func TestSpecializedMidCycleDesync(t *testing.T) {
	a, stream := testStream(t)
	c := Compile(a, ConfigGlobalLocal)
	spec := Specialize(c, stream)

	for _, at := range []int{len(stream) / 4, len(stream) / 2, len(stream) - 2} {
		for _, label := range []uint64{0xdeadbeef, 0, stream[0].Label} {
			mut := append([]Edge(nil), stream...)
			mut[at].Label = label

			ref := NewReplayer(a, ConfigGlobalLocal)
			for _, e := range mut {
				ref.Advance(e.Label, e.Instrs)
			}
			fused := NewCompiledReplayer(spec)
			fused.AdvanceBatch(mut)
			if *ref.Stats() != *fused.Stats() || ref.Cur() != fused.Cur() {
				t.Fatalf("fault at %d label 0x%x: specialized diverges from reference:\nref   %+v cur=%d\nfused %+v cur=%d",
					at, label, *ref.Stats(), ref.Cur(), *fused.Stats(), fused.Cur())
			}
		}
	}
}

// TestSpecializedSpecReplayTrajectory holds the stride-aware speculative
// scan against the per-edge one: identical Stats and per-edge trajectory,
// which is what junction reconciliation consumes.
func TestSpecializedSpecReplayTrajectory(t *testing.T) {
	a, stream := testStream(t)
	c := Compile(a, LookupConfig{Global: GlobalHash})
	spec := Specialize(c, stream)

	var plain, fused SpecResult
	c.SpecReplay(stream, &plain)
	spec.SpecReplay(stream, &fused)

	if plain.Stats != fused.Stats {
		t.Fatalf("SpecReplay stats diverge:\nplain %+v\nfused %+v", plain.Stats, fused.Stats)
	}
	if !reflect.DeepEqual(plain.Curs, fused.Curs) {
		t.Fatal("SpecReplay trajectories diverge")
	}
	if !reflect.DeepEqual(plain.Desyn, fused.Desyn) {
		t.Fatal("SpecReplay desync trajectories diverge")
	}

	// Dirty the result buffers with a desynced pass, then rerun the clean
	// stream: stale Desyn values must not leak through the stride path.
	mut := append([]Edge(nil), stream...)
	for i := range mut {
		mut[i].Label ^= 0xf00d
	}
	spec.SpecReplay(mut, &fused)
	spec.SpecReplay(stream, &fused)
	if plain.Stats != fused.Stats || !reflect.DeepEqual(plain.Desyn, fused.Desyn) {
		t.Fatal("stride SpecReplay leaked stale trajectory state across Reset")
	}
}

// TestSpecializedParallelAndSequential: sequential, parallel-4 and the
// stride-aware forms all agree byte for byte.
func TestSpecializedParallelAndSequential(t *testing.T) {
	a, stream := testStream(t)
	c := Compile(a, LookupConfig{Global: GlobalHash})
	spec := Specialize(c, stream)

	seqSt, seqCur := SequentialReplay(c, stream)
	specSeqSt, specSeqCur := SequentialReplay(spec, stream)
	parSt, parCur := ParallelReplay(spec, stream, 4)

	if seqSt != specSeqSt || seqCur != specSeqCur {
		t.Fatalf("specialized SequentialReplay diverges:\nplain %+v\nspec  %+v", seqSt, specSeqSt)
	}
	if seqSt != parSt || seqCur != parCur {
		t.Fatalf("specialized ParallelReplay diverges:\nseq %+v cur=%d\npar %+v cur=%d",
			seqSt, seqCur, parSt, parCur)
	}
}

// TestStrideZeroAllocSteadyState is the permanent 0 allocs/edge gate for
// the stride path, obs off and on.
func TestStrideZeroAllocSteadyState(t *testing.T) {
	a, stream := testStream(t)
	spec := Specialize(Compile(a, ConfigGlobalLocal), stream)

	r := NewCompiledReplayer(spec)
	r.AdvanceBatch(stream) // warm caches
	if n := testing.AllocsPerRun(20, func() { r.AdvanceBatch(stream) }); n != 0 {
		t.Fatalf("stride AdvanceBatch obs=off allocates %.2f per batch, want 0", n)
	}

	ro := NewCompiledReplayer(spec)
	ro.SetObs(obs.New())
	ro.AdvanceBatch(stream)
	if n := testing.AllocsPerRun(20, func() { ro.AdvanceBatch(stream) }); n != 0 {
		t.Fatalf("stride AdvanceBatch obs=on allocates %.2f per batch, want 0", n)
	}
}

// TestStrideTableRoundTrip: encode → decode is deep-equal, and the decoded
// table attached via WithStrideTable replays identically to the original
// specialized form.
func TestStrideTableRoundTrip(t *testing.T) {
	a, stream := testStream(t)
	c := Compile(a, ConfigGlobalLocal)
	spec := Specialize(c, stream)

	tab := spec.StrideTable()
	blob := EncodeStrideTable(tab)
	back, err := DecodeStrideTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, back) {
		t.Fatal("stride table round trip not deep-equal")
	}

	attached := c.WithStrideTable(back)
	want := NewCompiledReplayer(spec)
	want.AdvanceBatch(stream)
	got := NewCompiledReplayer(attached)
	got.AdvanceBatch(stream)
	if *want.Stats() != *got.Stats() || want.StrideEdges() != got.StrideEdges() {
		t.Fatal("decoded stride table replays differently from Specialize's")
	}

	// Corrupt wire bytes must yield a structured *DecodeError, never a panic.
	for _, cut := range []int{0, 3, 5, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeStrideTable(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		} else if _, ok := err.(*DecodeError); !ok {
			t.Fatalf("truncation at %d: error %T, want *DecodeError", cut, err)
		}
	}
}
