package core

import (
	"encoding/binary"
	"fmt"

	"github.com/lsc-tea/tea/internal/isa"
)

// Instruction-granularity TEA. The paper's technique "builds a DFA that
// represents basic blocks (or instructions) from traces" (§1): this file
// is the *instructions* variant. Logically the instruction-level automaton
// has one state per instruction instance in every TBB; transitions within
// a block are the sequential PC successions and the terminator's
// transitions are the block-level ones. Because the in-block structure is
// fully determined by the program, the runtime representation wraps the
// block-level automaton with an (TBB, index) cursor rather than
// materializing the states — but the wire format (EncodeInstrLevel) stores
// every instruction state explicitly, which is what a system without block
// discovery would have to ship, and is the honest size ablation against
// the block-level format.

// InstrStats counts an instruction-level replay.
type InstrStats struct {
	// Instrs and TraceInstrs define instruction-level coverage.
	Instrs      uint64
	TraceInstrs uint64
	// SeqHits counts in-block sequential transitions (nearly free);
	// Boundary counts block-boundary transitions that consulted the
	// block-level transition function; ColdSeq counts sequential cold-code
	// instructions that skipped the lookup entirely.
	SeqHits  uint64
	Boundary uint64
	ColdSeq  uint64
}

// Coverage returns the fraction of instructions executed inside traces.
func (s *InstrStats) Coverage() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.TraceInstrs) / float64(s.Instrs)
}

// InstrReplayer walks the instruction-level TEA along a per-instruction PC
// stream (cpu.Machine.PC before every Step).
type InstrReplayer struct {
	rep  *Replayer
	prog *isa.Program

	idx      int    // instruction index within the current TBB
	expect   uint64 // next sequential address inside the block
	prevFall uint64 // fall-through address of the previous cold instruction

	stats InstrStats
}

// NewInstrReplayer wraps the block-level automaton for per-instruction
// replay on prog.
func NewInstrReplayer(a *Automaton, lc LookupConfig, prog *isa.Program) *InstrReplayer {
	return &InstrReplayer{rep: NewReplayer(a, lc), prog: prog, prevFall: ^uint64(0)}
}

// Stats returns the instruction-level counters.
func (r *InstrReplayer) Stats() *InstrStats { return &r.stats }

// Replayer exposes the underlying block-level cursor.
func (r *InstrReplayer) Replayer() *Replayer { return r.rep }

// Cur returns the current instruction-level location: the block state and
// the instruction index within it (index is meaningless at NTE).
func (r *InstrReplayer) Cur() (StateID, int) { return r.rep.Cur(), r.idx }

// StepInstr consumes the PC of the instruction about to execute and
// reports whether it is covered by a trace.
func (r *InstrReplayer) StepInstr(pc uint64) bool {
	r.stats.Instrs++
	if cur := r.rep.Cur(); cur != NTE {
		tbb := r.rep.a.State(cur).TBB
		if r.idx+1 < tbb.Block.NumInstrs && pc == r.expect {
			// Sequential in-block transition: the next instruction state.
			r.idx++
			if in, ok := r.prog.At(pc); ok {
				r.expect = in.Next()
			}
			r.stats.SeqHits++
			r.stats.TraceInstrs++
			return true
		}
		// Terminator fired (or the stream diverged): block-level boundary.
		return r.boundary(pc)
	}
	// At NTE, sequential fall-through needs no lookup; only targets of
	// control transfers can enter a trace (trace entries are branch
	// targets).
	if pc == r.prevFall {
		r.stats.ColdSeq++
		if in, ok := r.prog.At(pc); ok && !in.IsBranch() {
			r.prevFall = in.Next()
		} else {
			r.prevFall = ^uint64(0)
		}
		return false
	}
	return r.boundary(pc)
}

// boundary performs a block-level transition at pc.
func (r *InstrReplayer) boundary(pc uint64) bool {
	r.stats.Boundary++
	st := r.rep.Advance(pc, 0)
	if st == NTE {
		if in, ok := r.prog.At(pc); ok && !in.IsBranch() {
			r.prevFall = in.Next()
		} else {
			r.prevFall = ^uint64(0)
		}
		return false
	}
	tbb := r.rep.a.State(st).TBB
	r.idx = 0
	if in, ok := r.prog.At(tbb.Block.Head); ok {
		r.expect = in.Next()
	}
	r.stats.TraceInstrs++
	return true
}

const instrMagic = "TEI1"

// EncodeInstrLevel serializes the instruction-level automaton: every
// instruction instance of every TBB becomes an explicit state record. This
// is what a runtime without dynamic block discovery would store, and it is
// deliberately larger than Encode's block-level format — the ablation that
// justifies the paper's (and this library's) block-granularity default.
//
// Layout: magic, trace count; per trace: TBB count; per TBB: instruction
// count, then per instruction an address delta and a profile-counter slot
// (instruction granularity exists precisely so each instruction instance
// can carry its own profile, §2); then per TBB the terminator's transition
// count and (label delta, target state) pairs, exactly as the block-level
// format stores them.
func EncodeInstrLevel(a *Automaton, prog *isa.Program) ([]byte, error) {
	return EncodeInstrLevelWithProfile(a, prog, nil)
}

// InstrProfiler supplies a per-instruction-instance execution count.
type InstrProfiler interface {
	CountForInstr(tbb interface{ Name() string }, index int) uint64
}

// EncodeInstrLevelWithProfile serializes the instruction-level automaton
// with per-instruction profile counters (zeros when prof is nil).
func EncodeInstrLevelWithProfile(a *Automaton, prog *isa.Program, prof InstrProfiler) ([]byte, error) {
	set := a.set
	out := make([]byte, 0, 64)
	out = append(out, instrMagic...)
	out = binary.AppendUvarint(out, uint64(len(set.Traces)))

	canon := make(map[interface{}]uint64)
	next := uint64(1)
	for _, t := range set.Traces {
		for _, tbb := range t.TBBs {
			canon[tbb] = next
			next += uint64(tbb.Block.NumInstrs)
		}
	}

	prevAddr := uint64(0)
	for _, t := range set.Traces {
		out = binary.AppendUvarint(out, uint64(len(t.TBBs)))
		for _, tbb := range t.TBBs {
			out = binary.AppendUvarint(out, uint64(tbb.Block.NumInstrs))
			addr := tbb.Block.Head
			for i := 0; i < tbb.Block.NumInstrs; i++ {
				in, ok := prog.At(addr)
				if !ok {
					return nil, fmt.Errorf("core: no instruction at 0x%x in %v", addr, tbb)
				}
				out = binary.AppendVarint(out, int64(addr)-int64(prevAddr))
				var count uint64
				if prof != nil {
					count = prof.CountForInstr(tbb, i)
				}
				out = binary.AppendUvarint(out, count)
				prevAddr = addr
				addr = in.Next()
			}
			out = binary.AppendUvarint(out, uint64(len(tbb.Succs)))
			for _, label := range tbb.SuccLabels() {
				out = binary.AppendVarint(out, int64(label)-int64(tbb.Block.Head))
				out = binary.AppendUvarint(out, canon[tbb.Succs[label]])
			}
		}
	}
	return out, nil
}

// InstrLevelSize returns the serialized size of the instruction-level
// automaton in bytes.
func InstrLevelSize(a *Automaton, prog *isa.Program) (uint64, error) {
	data, err := EncodeInstrLevel(a, prog)
	if err != nil {
		return 0, err
	}
	return uint64(len(data)), nil
}
