package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEntryIndexAgreement drives all four containers with the same random
// operation sequence and requires identical answers.
func TestEntryIndexAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		indexes := []EntryIndex{
			newEntryIndex(LookupConfig{Global: GlobalList}.withDefaults()),
			newEntryIndex(LookupConfig{Global: GlobalBTree}.withDefaults()),
			newEntryIndex(LookupConfig{Global: GlobalHash}.withDefaults()),
			newEntryIndex(LookupConfig{Global: GlobalSorted}.withDefaults()),
		}
		ref := make(map[uint64]StateID)
		for op := 0; op < 300; op++ {
			addr := uint64(rng.Intn(64))*8 + 0x1000
			if rng.Intn(2) == 0 {
				st := StateID(rng.Intn(100) + 1)
				ref[addr] = st
				for _, ix := range indexes {
					ix.Insert(addr, st)
				}
			} else {
				want, wantOK := ref[addr]
				for _, ix := range indexes {
					got, ok := ix.Lookup(addr)
					if ok != wantOK || (ok && got != want) {
						t.Logf("index %T: Lookup(%#x) = %v,%v want %v,%v", ix, addr, got, ok, want, wantOK)
						return false
					}
				}
			}
		}
		for _, ix := range indexes {
			if ix.Len() != len(ref) {
				t.Logf("index %T: Len = %d, want %d", ix, ix.Len(), len(ref))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIndexProbeReset(t *testing.T) {
	for _, k := range []GlobalKind{GlobalList, GlobalBTree, GlobalHash, GlobalSorted} {
		ix := newEntryIndex(LookupConfig{Global: k}.withDefaults())
		for i := uint64(1); i <= 32; i++ {
			ix.Insert(i*16, StateID(i))
		}
		ix.ResetProbes()
		ix.Lookup(16)
		if ix.Probes() == 0 {
			t.Errorf("%v: lookup counted no probes", k)
		}
		ix.ResetProbes()
		if ix.Probes() != 0 {
			t.Errorf("%v: reset did not zero probes", k)
		}
	}
}

func TestGlobalKindStrings(t *testing.T) {
	cases := map[GlobalKind]string{
		GlobalList:     "list",
		GlobalBTree:    "btree",
		GlobalHash:     "hash",
		GlobalSorted:   "sorted",
		GlobalKind(99): "global?99",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestLocalCacheBasics(t *testing.T) {
	c := newLocalCache(4)
	if _, ok := c.get(0x1000); ok {
		t.Error("empty cache hit")
	}
	c.put(0x1000, 7)
	if s, ok := c.get(0x1000); !ok || s != 7 {
		t.Error("cache miss after put")
	}
	// Negative results are cacheable.
	c.put(0x2000, NTE)
	if s, ok := c.get(0x2000); !ok || s != NTE {
		t.Error("negative entry not cached")
	}
	// Conflicting labels evict (direct-mapped): two labels in the same slot.
	a := uint64(0x1000)
	b := a + uint64(len(c.labels))<<1 // same slot by construction
	if c.slot(a) != c.slot(b) {
		t.Skip("slot function changed; conflict pair invalid")
	}
	c.put(a, 1)
	c.put(b, 2)
	if _, ok := c.get(a); ok {
		t.Error("evicted entry still present")
	}
	if s, ok := c.get(b); !ok || s != 2 {
		t.Error("newest entry lost")
	}
}

func TestSortedIndexOrderedInserts(t *testing.T) {
	s := &sortedIndex{}
	// Descending inserts must still produce a sorted array.
	for i := 100; i > 0; i-- {
		s.Insert(uint64(i*8), StateID(i))
	}
	for i := 1; i < len(s.addrs); i++ {
		if s.addrs[i-1] >= s.addrs[i] {
			t.Fatal("sortedIndex not sorted")
		}
	}
	if st, ok := s.Lookup(8); !ok || st != 1 {
		t.Error("lookup of smallest failed")
	}
	if _, ok := s.Lookup(7); ok {
		t.Error("found absent key")
	}
	// Replacement does not grow.
	n := s.Len()
	s.Insert(8, 42)
	if s.Len() != n {
		t.Error("replacement grew the index")
	}
}
