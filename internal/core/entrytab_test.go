package core

import (
	"math/rand"
	"testing"

	"github.com/lsc-tea/tea/internal/trace"
)

// TestEntryHashMatchesTrace pins the slot-agreement contract between the
// replayer's entry table and the view lent to the strategies' fused scans:
// trace.AutoView probes the aliased key/target arrays with trace.HashAddr,
// so the two hash functions must be bit-identical or probes would start
// from different home slots.
func TestEntryHashMatchesTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		a := rng.Uint64()
		if i < 256 {
			a = uint64(i) // small, regular addresses — the realistic shape
		}
		if got, want := hashEntryAddr(a), trace.HashAddr(a); got != want {
			t.Fatalf("hashEntryAddr(%#x) = %#x, trace.HashAddr = %#x", a, got, want)
		}
	}
}

// TestEntryTabMatchesMap drives entryTab and a reference map through the
// same random put/get sequence — overwrites, growth across doublings, and
// the displaced zero key included.
func TestEntryTabMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var et entryTab
	ref := map[uint64]StateID{}
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = rng.Uint64() >> 40
	}
	keys[0] = 0
	for op := 0; op < 10000; op++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(2) == 0 {
			s := StateID(rng.Intn(1000) + 1)
			ref[k] = s
			et.put(k, s)
		}
		got, ok := et.get(k)
		want, wok := ref[k]
		if ok != wok || (ok && got != want) {
			t.Fatalf("op %d: get(%#x) = %d,%v; want %d,%v", op, k, got, ok, want, wok)
		}
	}
}

// TestFillViewAliasesEntryTab checks the zero-copy lending contract: the
// view the replayer hands to a fused scan must alias the entry table's own
// storage (not a snapshot), so entries added by a sync are visible to the
// next scan without any rebuild.
func TestFillViewAliasesEntryTab(t *testing.T) {
	a, _ := buildTestAutomaton(t)
	r := NewReplayer(a, ConfigGlobalLocal)
	var v trace.AutoView
	r.fillView(&v)
	if len(v.EKeys) == 0 || len(r.etab.keys) == 0 {
		t.Fatal("entry table empty; test automaton has no entries")
	}
	if &v.EKeys[0] != &r.etab.keys[0] || &v.EVals[0] != &r.etab.targets[0] {
		t.Fatal("view copies the entry table instead of aliasing it")
	}
	if v.EZeroLive != r.etab.zeroLive || v.EVals[0] != r.etab.targets[0] {
		t.Fatal("view zero-key state diverges from the table's")
	}
	// Every automaton entry must be reachable through the aliased arrays at
	// the slot trace.HashAddr names (linear probe from the home slot).
	mask := uint64(len(v.EKeys) - 1)
	for _, e := range a.Entries() {
		i := trace.HashAddr(e.Addr) & mask
		for v.EKeys[i] != e.Addr {
			if v.EKeys[i] == 0 {
				t.Fatalf("entry %#x unreachable from its home slot", e.Addr)
			}
			i = (i + 1) & mask
		}
		if StateID(v.EVals[i]) != e.State {
			t.Fatalf("entry %#x maps to state %d in the view, %d in the automaton", e.Addr, v.EVals[i], e.State)
		}
	}
}
