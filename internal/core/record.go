package core

import (
	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/trace"
)

// RecState is the recording state machine's state (the paper's
// Algorithm 2): Initial → Executing ⇄ Creating.
type RecState int

const (
	// RecInitial runs once before real execution: it sets up the empty TEA.
	RecInitial RecState = iota
	// RecExecuting means the program runs cold code or previously created
	// traces; the TEA cursor advances on every transition and the trace
	// selector watches for a recording trigger.
	RecExecuting
	// RecCreating means a trace is being recorded; each transition appends
	// a TBB until the selector decides the trace is done.
	RecCreating
)

func (s RecState) String() string {
	switch s {
	case RecInitial:
		return "Initial"
	case RecExecuting:
		return "Executing"
	case RecCreating:
		return "Creating"
	}
	return "?"
}

// Recorder builds a TEA online while the program executes — the paper's
// §3.2: trace recording without constructing any trace code. It is invoked
// once per block transition (after the previous TBB finished, before the
// next begins), exactly like Algorithm 2, with the trace-selection policy
// (MRET, TT, CTT, ...) plugged in as the TriggerTraceRecording /
// AddTBBToTrace / DoneTraceRecording rules.
type Recorder struct {
	strat trace.Strategy
	auto  *Automaton
	rep   *Replayer
	state RecState
}

// NewRecorder creates a recorder around the selection strategy, with the
// transition function configured by cfg (the paper records with
// Global/Local, its fastest configuration).
func NewRecorder(strat trace.Strategy, cfg LookupConfig) *Recorder {
	r := &Recorder{strat: strat, state: RecInitial}
	// Algorithm 2, "Initial": InitializeTEA.
	r.auto = NewAutomaton(strat.Set())
	r.rep = NewReplayer(r.auto, cfg)
	return r
}

// Automaton returns the TEA built so far.
func (r *Recorder) Automaton() *Automaton { return r.auto }

// Replayer returns the recorder's cursor/statistics (coverage of the
// recording run itself, Table 3).
func (r *Recorder) Replayer() *Replayer { return r.rep }

// Set returns the recorded trace set.
func (r *Recorder) Set() *trace.Set { return r.strat.Set() }

// State returns the recording state machine's current state.
func (r *Recorder) State() RecState { return r.state }

// Observe consumes one block transition: Current = e.From just finished
// executing instrs dynamic instructions, Next = e.To is about to begin.
func (r *Recorder) Observe(e cfg.Edge, instrs uint64) {
	if r.state == RecInitial {
		// InitializeTEA happened at construction; enter Executing.
		r.state = RecExecuting
	}

	switch r.state {
	case RecExecuting:
		// ChangeState(TEA, Current, Next).
		if e.To != nil {
			r.rep.Advance(e.To.Head, instrs)
		} else if instrs > 0 {
			r.rep.AccountOnly(instrs)
		}
		// TriggerTraceRecording / StartCreatingTrace.
		if changed := r.strat.Observe(e); changed != nil {
			r.sync(changed)
		}
		if r.strat.Recording() {
			r.state = RecCreating
		}

	case RecCreating:
		// Algorithm 2 performs no ChangeState while creating; the executed
		// instructions still count toward the run's totals.
		if instrs > 0 {
			r.rep.AccountOnly(instrs)
		}
		// AddTBBToTrace / DoneTraceRecording / FinishTrace.
		if changed := r.strat.Observe(e); changed != nil {
			r.sync(changed)
		}
		if !r.strat.Recording() {
			r.state = RecExecuting
			// The cursor went stale while creating; resume from NTE. If the
			// next transition enters a trace the global lookup re-acquires it.
			r.rep.ForceState(NTE)
		}
	}
}

// sync folds a created or extended trace into the automaton and the
// replayer's global container.
func (r *Recorder) sync(t *trace.Trace) {
	r.auto.SyncTrace(t)
	if head, ok := r.auto.EntryFor(t.EntryAddr()); ok {
		r.rep.AddEntry(t.EntryAddr(), head)
	}
}
