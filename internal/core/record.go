package core

import (
	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/obs"
	"github.com/lsc-tea/tea/internal/trace"
)

// RecState is the recording state machine's state (the paper's
// Algorithm 2): Initial → Executing ⇄ Creating.
type RecState int

const (
	// RecInitial runs once before real execution: it sets up the empty TEA.
	RecInitial RecState = iota
	// RecExecuting means the program runs cold code or previously created
	// traces; the TEA cursor advances on every transition and the trace
	// selector watches for a recording trigger.
	RecExecuting
	// RecCreating means a trace is being recorded; each transition appends
	// a TBB until the selector decides the trace is done.
	RecCreating
)

func (s RecState) String() string {
	switch s {
	case RecInitial:
		return "Initial"
	case RecExecuting:
		return "Executing"
	case RecCreating:
		return "Creating"
	}
	return "?"
}

// Recorder builds a TEA online while the program executes — the paper's
// §3.2: trace recording without constructing any trace code. It is invoked
// once per block transition (after the previous TBB finished, before the
// next begins), exactly like Algorithm 2, with the trace-selection policy
// (MRET, TT, CTT, ...) plugged in as the TriggerTraceRecording /
// AddTBBToTrace / DoneTraceRecording rules.
type Recorder struct {
	strat trace.Strategy
	auto  *Automaton
	rep   *Replayer
	state RecState

	// fused is non-nil when the strategy implements the fused batch scan;
	// view is the automaton view lent to it, allocated once per recorder.
	fused trace.FusedObserver
	view  trace.AutoView

	// obs is the (nil when disabled) observability sink; lastSync is the
	// edge-clock reading at the previous sync, for the sync-gap histogram;
	// syncSpan holds the span counters pre-resolved at SetObs time so the
	// sync path never takes the registry lock or builds metric names.
	obs      *obs.Obs
	lastSync uint64
	syncSpan obs.SpanTimer
}

// NewRecorder creates a recorder around the selection strategy, with the
// transition function configured by cfg (the paper records with
// Global/Local, its fastest configuration).
func NewRecorder(strat trace.Strategy, cfg LookupConfig) *Recorder {
	r := &Recorder{strat: strat, state: RecInitial}
	// Algorithm 2, "Initial": InitializeTEA.
	r.auto = NewAutomaton(strat.Set())
	r.rep = NewReplayer(r.auto, cfg)
	r.fused, _ = strat.(trace.FusedObserver)
	// Trace-exit resolution inside a fused scan routes through the same
	// resolve path (local cache → configured global container) as the
	// sequential recorder, so LocalHits/Misses and the container's probe
	// counters accumulate identically.
	r.view.Resolve = func(from int32, label uint64) int32 {
		return int32(r.rep.resolve(StateID(from), label))
	}
	return r
}

// Automaton returns the TEA built so far.
func (r *Recorder) Automaton() *Automaton { return r.auto }

// Replayer returns the recorder's cursor/statistics (coverage of the
// recording run itself, Table 3).
func (r *Recorder) Replayer() *Replayer { return r.rep }

// Set returns the recorded trace set.
func (r *Recorder) Set() *trace.Set { return r.strat.Set() }

// State returns the recording state machine's current state.
func (r *Recorder) State() RecState { return r.state }

// Observe consumes one block transition: Current = e.From just finished
// executing instrs dynamic instructions, Next = e.To is about to begin.
func (r *Recorder) Observe(e cfg.Edge, instrs uint64) {
	if r.state == RecInitial {
		// InitializeTEA happened at construction; enter Executing.
		r.state = RecExecuting
	}

	switch r.state {
	case RecExecuting:
		// ChangeState(TEA, Current, Next).
		if e.To != nil {
			r.rep.Advance(e.To.Head, instrs)
		} else if instrs > 0 {
			r.rep.AccountOnly(instrs)
		}
		// TriggerTraceRecording / StartCreatingTrace.
		if changed := r.strat.Observe(e); changed != nil {
			r.sync(changed)
		}
		if r.strat.Recording() {
			r.state = RecCreating
		}

	case RecCreating:
		// Algorithm 2 performs no ChangeState while creating; the executed
		// instructions still count toward the run's totals.
		if instrs > 0 {
			r.rep.AccountOnly(instrs)
		}
		// AddTBBToTrace / DoneTraceRecording / FinishTrace.
		if changed := r.strat.Observe(e); changed != nil {
			r.sync(changed)
		}
		if !r.strat.Recording() {
			r.state = RecExecuting
			// The cursor went stale while creating; resume from NTE. If the
			// next transition enters a trace the global lookup re-acquires it.
			r.rep.ForceState(NTE)
		}
	}
}

// ObserveBatch consumes a run of block transitions at once: edges[i] is
// one transition and instrs[i] the dynamic instructions the finished block
// executed, exactly as in Observe. It is observably identical to calling
// Observe(edges[i], instrs[i]) in order — same Stats, same RecState, same
// trace set and automaton — but amortizes the per-edge costs the way
// CompiledReplayer.AdvanceBatch does for replay.
//
// The fast path is a *fused* scan: the strategy's cursor (its position in
// the trace it last entered) and the replayer's cursor (the automaton
// state) mirror each other — the automaton has one state per TBB and its
// transitions are synced from exactly the TBB links the strategy follows —
// so one in-trace dispatch per edge serves both. The recorder lends the
// strategy a flat view of the automaton (compiled transition spans, the
// entry-table storage, and the precomputed plausible-successor test), and
// the strategy interleaves the replayer's exact Advance bookkeeping with
// its own trigger counting in a single pass, keeping both cursors and all
// counters in locals.
//
// Ordering within the scan is exactly sequential: for each edge the
// automaton transition is applied first, then the strategy's decision — the
// same Advance-then-Observe order Observe uses. The scan stops at the first
// eventful edge (trace created/extended, recording started); the recorder
// then re-establishes the sequential epilogue — sync, then the
// state-machine flip — before resuming. If the strategy detects its cursor
// and the view's cursor are (transiently, after an immediate trace link)
// out of lockstep, it consumes nothing and the recorder steps one edge
// sequentially until they reconverge.
//
//tea:hotpath
func (r *Recorder) ObserveBatch(edges []cfg.Edge, instrs []uint64) {
	if len(edges) != len(instrs) {
		panic("core: ObserveBatch edges/instrs length mismatch")
	}
	if r.fused == nil {
		for i, e := range edges {
			r.Observe(e, instrs[i])
		}
		return
	}
	if len(edges) == 0 {
		return
	}
	if r.state == RecInitial {
		r.state = RecExecuting
	}
	for i := 0; i < len(edges); {
		if r.state != RecExecuting || r.strat.Recording() {
			// Algorithm 2 performs no ChangeState while creating; the fused
			// scan only models the Executing state.
			r.Observe(edges[i], instrs[i])
			i++
			continue
		}
		r.rep.fillView(&r.view)
		n, changed := r.fused.ObserveFused(edges[i:], instrs[i:], &r.view)
		r.rep.foldView(&r.view)
		if n <= 0 {
			// Strategy and automaton cursors out of lockstep (or a strategy
			// that consumed nothing): step sequentially to reconverge.
			r.Observe(edges[i], instrs[i])
			i++
			continue
		}
		if o := r.rep.obs; o != nil {
			// The fused scan consumed n edges without per-edge ticks; move
			// the logical clock in one step and keep event stamps monotonic.
			o.AdvanceEdges(uint64(n))
			o.SetEdge(o.EdgeBase())
		}
		if changed != nil {
			r.sync(changed)
		}
		if r.strat.Recording() {
			r.state = RecCreating
		}
		i += n
	}
}

// Snapshot returns an independent deep copy of the TEA built so far. The
// copy's states, transition tables and entry table are private to the
// caller and safe to read from other goroutines while recording continues
// on the recorder; the underlying trace set and TBB objects are shared and
// still being mutated, so concurrent readers must confine themselves to the
// automaton's own structure (NumStates, State, Next, Entries, EntryFor).
func (r *Recorder) Snapshot() *Automaton { return r.auto.Clone() }

// sync folds a created or extended trace into the automaton and the
// replayer's global container. With observability attached it is also the
// recorder's sampling point: syncs are rare (once per created or extended
// trace), so this is where the span timing, churn histogram and occupancy
// gauges live — never on the per-edge path.
func (r *Recorder) sync(t *trace.Trace) {
	sp := r.syncSpan.Start()
	r.auto.SyncTrace(t)
	entered := false
	if head, ok := r.auto.EntryFor(t.EntryAddr()); ok {
		r.rep.AddEntry(t.EntryAddr(), head)
		entered = true
	}
	sp.End()
	if o := r.obs; o != nil {
		m := o.Record
		m.Syncs.Add(1)
		if entered {
			m.Entries.Add(1)
		}
		edge := o.EdgeBase()
		m.SyncGap.Observe(edge - r.lastSync)
		r.lastSync = edge
		m.SetBlocks.Set(uint64(r.strat.Set().NumTBBs()))
		if oc, ok := r.strat.(trace.OccupancySource); ok {
			hot, ext := oc.Occupancy()
			m.HotHeads.Set(uint64(hot))
			m.ExtCounts.Set(uint64(ext))
		}
		o.SetEdge(edge)
		o.SyncEvent(int32(r.rep.Cur()), uint64(t.Len()))
		r.rep.FlushObs()
	}
}
