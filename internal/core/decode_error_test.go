package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

// wire hand-crafts decoder inputs field by field, recording offsets so the
// tests can assert exactly where a rejection is reported.
type wire struct{ buf []byte }

func newWire() *wire              { return &wire{buf: []byte(magic)} }
func (w *wire) pos() int          { return len(w.buf) }
func (w *wire) uv(v uint64) *wire { w.buf = appendUvarint(w.buf, v); return w }
func (w *wire) zz(v int64) *wire  { w.buf = appendZigzag(w.buf, v); return w }
func (w *wire) raw(b ...byte) *wire {
	w.buf = append(w.buf, b...)
	return w
}
func (w *wire) str(s string) *wire {
	w.uv(uint64(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// tbb appends one TBB record for block b with the identity fields taken
// from the block itself (optionally skewed) and a given profile counter.
func (w *wire) tbb(b *cfg.Block, prevAddr uint64, dInstr int, count uint64) *wire {
	w.zz(int64(b.Head) - int64(prevAddr))
	w.uv(uint64(b.NumInstrs + dInstr))
	w.uv(b.Bytes)
	w.raw(termClass(b.Term))
	w.uv(count)
	return w
}

// TestDecodeErrorCorpus drives every rejection path of the decoder with a
// hand-built input and asserts the *DecodeError names the right wire field
// at the right offset.
func TestDecodeErrorCorpus(t *testing.T) {
	p := progs.Figure1(10, 1)
	cache := cfg.NewCache(p, cfg.StarDBT)
	b, err := cache.BlockAt(p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cache.BlockAt(p.Labels["loop"])
	if err != nil {
		t.Fatal(err)
	}

	type tc struct {
		name       string
		data       []byte
		wantField  string
		wantOffset int // -1: don't check
	}
	var cases []tc
	add := func(name string, data []byte, field string, off int) {
		cases = append(cases, tc{name, data, field, off})
	}

	add("empty input", nil, "magic", 0)
	add("bad magic", []byte("BOGUS"), "magic", 0)
	add("short magic", []byte("TE"), "magic", 0)
	add("nothing after magic", newWire().buf, "strategy length", len(magic))

	{
		w := newWire().uv(200)
		add("strategy length over-claims", w.buf, "strategy length", w.pos())
	}
	{
		w := newWire().str("mret")
		add("missing trace count", w.buf, "trace count", w.pos())
	}
	{
		w := newWire().str("mret").uv(1)
		add("missing state count", w.buf, "state count", w.pos())
	}
	{
		w := newWire().str("mret").uv(1 << 40).uv(2)
		add("hostile trace count", w.buf, "trace count", w.pos())
	}
	{
		w := newWire().str("mret").uv(0).uv(0)
		add("zero state count", w.buf, "state count", w.pos())
	}
	{
		w := newWire().str("mret").uv(0).uv(1 << 40)
		add("hostile state count", w.buf, "state count", w.pos())
	}
	{
		w := newWire().str("mret").uv(1).uv(2)
		off := w.pos()
		w.uv(0).raw(0, 0, 0, 0, 0, 0) // filler so the trace-count guard passes
		add("zero TBB count", w.buf, "TBB count", off)
	}
	{
		w := newWire().str("mret").uv(1).uv(2)
		off := w.pos()
		w.uv(100000).raw(0, 0, 0, 0, 0)
		add("hostile TBB count", w.buf, "TBB count", off)
	}
	{
		w := newWire().str("mret").uv(1).uv(2).uv(1)
		off := w.pos()
		w.zz(0x7FFFFFF).uv(3).uv(9).raw(1).uv(0).uv(0)
		add("unknown block head", w.buf, "block head", off)
	}
	{
		w := newWire().str("mret").uv(1).uv(2).uv(1)
		off := w.pos()
		w.tbb(b, 0, +1, 0).uv(0) // instruction count off by one
		add("block identity mismatch", w.buf, "block identity", off)
	}
	{
		// Two single-TBB traces anchored at the same address: the second
		// NewTrace must be rejected.
		w := newWire().str("mret").uv(2).uv(3)
		w.uv(1).tbb(b, 0, 0, 0).uv(0)
		w.uv(1)
		off := w.pos()
		w.tbb(b, b.Head, 0, 0).uv(0)
		add("duplicate trace entry", w.buf, "trace entry", off)
	}
	{
		w := newWire().str("mret").uv(1).uv(2).uv(1).tbb(b, 0, 0, 0)
		w.uv(1)
		off := w.pos()
		w.zz(0).uv(99) // transition to a state that does not exist
		add("transition to unknown state", w.buf, "transition", off)
	}
	{
		w := newWire().str("mret").uv(1).uv(2).uv(1).tbb(b, 0, 0, 0)
		w.uv(1)
		off := w.pos()
		w.zz(1).uv(1) // label head+1 does not match the target's head
		add("transition label mismatch", w.buf, "transition", off)
	}
	{
		// Trace 1 links to trace 2's state: structurally impossible in a TEA
		// (in-trace tables only hold same-trace successors).
		w := newWire().str("mret").uv(2).uv(3)
		w.uv(1).tbb(b, 0, 0, 0)
		w.uv(1)
		off := w.pos()
		w.zz(int64(b2.Head) - int64(b.Head)).uv(2)
		w.uv(1).tbb(b2, b.Head, 0, 0).uv(0)
		add("cross-trace transition", w.buf, "transition", off)
	}
	{
		// Header promises 3 states but the stream carries one TBB. The fat
		// profile counter keeps the up-front state-count guard satisfied so
		// the end-of-stream reconciliation is what fires.
		w := newWire().str("mret").uv(1).uv(3).uv(1).tbb(b, 0, 0, 1<<40).uv(0)
		add("state count mismatch", w.buf, "state count", -1)
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(c.data, cache)
			if err == nil {
				t.Fatal("decode accepted malformed input")
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error is %T, want *DecodeError: %v", err, err)
			}
			if de.Field != c.wantField {
				t.Errorf("field = %q, want %q (%v)", de.Field, c.wantField, de)
			}
			if c.wantOffset >= 0 && de.Offset != c.wantOffset {
				t.Errorf("offset = %d, want %d (%v)", de.Offset, c.wantOffset, de)
			}
			if !strings.Contains(de.Error(), de.Field) ||
				!strings.Contains(de.Error(), fmt.Sprintf("%d", de.Offset)) {
				t.Errorf("Error() %q does not mention field and offset", de.Error())
			}
		})
	}
}

// TestDecodeErrorTrailing covers the trailing-bytes rejection, which needs
// a fully valid stream as its prefix.
func TestDecodeErrorTrailing(t *testing.T) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	data := mustEncode(t, Build(set))

	_, err := Decode(append(append([]byte{}, data...), 0xAB), cache)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T, want *DecodeError: %v", err, err)
	}
	if de.Field != "trailing bytes" || de.Offset != len(data) {
		t.Errorf("got %v, want trailing bytes at %d", de, len(data))
	}
}

// TestDecodeEveryPrefixIsDecodeError: every strict prefix of a valid
// stream is rejected with a *DecodeError whose offset lies inside the
// prefix — no wrapped foreign errors, no panics, no silent acceptance of
// a shorter automaton.
func TestDecodeEveryPrefixIsDecodeError(t *testing.T) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	data := mustEncode(t, Build(set))

	for k := 0; k < len(data); k++ {
		_, err := Decode(data[:k], cache)
		if err == nil {
			t.Fatalf("prefix %d/%d accepted", k, len(data))
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("prefix %d: error is %T, want *DecodeError: %v", k, err, err)
		}
		if de.Offset < 0 || de.Offset > k {
			t.Fatalf("prefix %d: offset %d out of range", k, de.Offset)
		}
	}
}

// TestDecodeFaultinjectMutants: deterministic byte-level mutants either
// decode to a consistent automaton or fail with a *DecodeError — the
// tentpole contract, checked across all three fault classes.
func TestDecodeFaultinjectMutants(t *testing.T) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 30})
	data := mustEncode(t, Build(set))

	for seed := int64(1); seed <= 8; seed++ {
		j := faultinject.New(seed)
		for i, mut := range [][]byte{
			j.Truncate(data),
			j.FlipBits(data, 1),
			j.FlipBits(data, 8),
			j.CorruptVarint(data),
			j.Mutate(data),
		} {
			a, err := Decode(mut, cache)
			if err != nil {
				var de *DecodeError
				if !errors.As(err, &de) {
					t.Fatalf("seed %d mutant %d: %T is not *DecodeError: %v", seed, i, err, err)
				}
				continue
			}
			if cerr := a.Check(); cerr != nil {
				t.Fatalf("seed %d mutant %d: accepted automaton fails Check: %v", seed, i, cerr)
			}
		}
	}
}

// TestEncodeDecodeCleanProperty: Decode(Encode(a)) succeeds and round-trips
// byte-identically for every strategy — the positive side of the corpus.
func TestEncodeDecodeCleanProperty(t *testing.T) {
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)
	for _, strategy := range []string{"mret", "tt", "ctt", "mfet"} {
		set := recordSet(t, p, strategy, trace.Config{HotThreshold: 20})
		a := Build(set)
		data, err := Encode(a)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		back, err := Decode(data, cache)
		if err != nil {
			t.Fatalf("%s: clean stream rejected: %v", strategy, err)
		}
		if string(mustEncode(t, back)) != string(data) {
			t.Errorf("%s: round trip not byte-identical", strategy)
		}
	}
}

// TestEncodeRejectsForeignLink: an automaton whose set links outside
// itself is reported as an encode error, not a panic (the former
// EncodeWithProfile canon-miss panic).
func TestEncodeRejectsForeignLink(t *testing.T) {
	p := progs.Figure1(10, 1)
	cache := cfg.NewCache(p, cfg.StarDBT)
	b, _ := cache.BlockAt(p.Entry)
	b2, _ := cache.BlockAt(p.Labels["loop"])

	set := trace.NewSet("mret", p)
	tr, err := set.NewTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	tbb := tr.Append(b2)
	if err := tr.Head().Link(tbb); err != nil {
		t.Fatal(err)
	}

	// Graft a TBB from a different set into Succs, simulating a corrupted
	// in-memory set whose link escapes the canonical numbering.
	foreign := trace.NewSet("mret", p)
	ftr, err := foreign.NewTrace(b2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Head().Succs[0x12345] = ftr.Head()

	if _, err := Encode(Build(set)); err == nil {
		t.Error("Encode accepted a set linking to a TBB outside itself")
	}
}
