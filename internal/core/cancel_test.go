package core

import (
	"context"
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
)

// cancelFixture builds a compiled automaton and a long stream by tiling
// the program's real captured block stream out to n edges.
func cancelFixture(t *testing.T, n int) (*Compiled, []Edge) {
	t.Helper()
	a, m := buildTestAutomaton(t)
	var base []Edge
	r := cfg.NewRunner(m, cfg.StarDBT)
	var prev uint64
	for {
		e, ok, err := r.Next()
		if err != nil || !ok || e.To == nil {
			break
		}
		steps := r.Machine().Steps()
		base = append(base, Edge{Label: e.To.Head, Instrs: steps - prev})
		prev = steps
	}
	stream := make([]Edge, 0, n)
	for len(stream) < n {
		stream = append(stream, base[len(stream)%len(base)])
	}
	return Compile(a, LookupConfig{}), stream
}

func TestReplayContextMatchesSequential(t *testing.T) {
	c, stream := cancelFixture(t, 50_000)
	want, wantFinal := SequentialReplay(c, stream)
	st, final, err := SequentialReplayContext(context.Background(), c, stream)
	if err != nil {
		t.Fatalf("SequentialReplayContext: %v", err)
	}
	if st != want || final != wantFinal {
		t.Fatalf("sequential-context diverged:\n got %+v\nwant %+v", st, want)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		st, final, err := ParallelReplayContext(context.Background(), c, stream, shards)
		if err != nil {
			t.Fatalf("ParallelReplayContext(%d): %v", shards, err)
		}
		if st != want || final != wantFinal {
			t.Fatalf("parallel-context(%d) diverged:\n got %+v\nwant %+v", shards, st, want)
		}
	}
}

func TestReplayContextCancellation(t *testing.T) {
	c, stream := cancelFixture(t, 200_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: both variants must stop almost immediately
	if _, _, err := SequentialReplayContext(ctx, c, stream); err != context.Canceled {
		t.Fatalf("sequential: err %v, want context.Canceled", err)
	}
	st, final, err := ParallelReplayContext(ctx, c, stream, 4)
	if err != context.Canceled {
		t.Fatalf("parallel: err %v, want context.Canceled", err)
	}
	if st != (Stats{}) || final != NTE {
		t.Fatalf("cancelled replay leaked partial accounting: %+v, %v", st, final)
	}
}
