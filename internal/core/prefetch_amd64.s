// Software prefetch for the fused stride kernels (DESIGN.md §16). A
// non-temporal hint would evict the stream too early; T0 keeps the line in
// every level, which is right for edges that are about to be compared.
#include "textflag.h"

// func prefetchT0(p unsafe.Pointer)
TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET
