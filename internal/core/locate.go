package core

import (
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/trace"
)

// Instruction-granularity mapping. The paper's abstract promises a map
// from executing *instructions* — not just blocks — to their counterparts
// in recorded traces: "a DFA that maps executing instructions to
// instructions or basic blocks in previously recorded traces". The
// block-level states already determine the instruction-level map: within a
// TBB, the instruction at pc corresponds to the same-offset instruction of
// the TBB's block. Locate makes that explicit; it needs the program (as
// the replay site always has it) to walk instruction boundaries.

// Location identifies one instruction instance inside a trace.
type Location struct {
	// State is the TBB state covering the instruction.
	State StateID
	// TBB is the trace basic block instance.
	TBB *trace.TBB
	// Index is the instruction's position within the block (0-based).
	Index int
	// Instr is the program instruction.
	Instr *isa.Instr
}

// Locate maps a program counter inside the currently executing block to
// its trace-instruction instance. It reports false when the cursor is at
// NTE, when pc lies outside the current TBB's block, or when pc is not an
// instruction boundary.
func (r *Replayer) Locate(prog *isa.Program, pc uint64) (Location, bool) {
	return r.a.LocateIn(prog, r.cur, pc)
}

// LocateIn is Locate for an explicit state, independent of any replayer.
func (a *Automaton) LocateIn(prog *isa.Program, s StateID, pc uint64) (Location, bool) {
	if s == NTE {
		return Location{}, false
	}
	tbb := a.State(s).TBB
	b := tbb.Block
	if pc < b.Head || pc > b.End {
		return Location{}, false
	}
	target, ok := prog.At(pc)
	if !ok {
		return Location{}, false
	}
	addr := b.Head
	for i := 0; i < b.NumInstrs; i++ {
		if addr == pc {
			return Location{State: s, TBB: tbb, Index: i, Instr: target}, true
		}
		in, ok := prog.At(addr)
		if !ok {
			return Location{}, false
		}
		addr = in.Next()
	}
	return Location{}, false
}
