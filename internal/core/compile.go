package core

import "unsafe"

// The SoA split is only a win if the hot record really is a half cache line:
// two per 64-byte line, and the cold record no wider than the hot one. Break
// the build, not the benchmark, if a field addition upsets that.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(hotRec{})-32]  // hotRec exactly 32 bytes
	_ = [1]struct{}{}[32-unsafe.Sizeof(hotRec{})]  // (both directions)
	_ = [32]struct{}{}[unsafe.Sizeof(coldRec{})-1] // coldRec at most 32 bytes
)

// Compiled is a frozen Automaton lowered into contiguous flat arrays — the
// replay-side counterpart of Table 4's lookup ablation, taken to its
// logical end: no pointers chased per transition, no interface dispatch
// into the global container, and the per-state local caches of the paper's
// "Local" configurations embedded in the same arrays.
//
// Layout, indexed by StateID:
//
//   - off[s]..off[s+1] spans the state's in-trace transitions inside the
//     shared labels/targets arenas (the flattened State.labels/targets).
//   - hot and cold split each state's record structure-of-arrays style. The
//     hot record carries only what the in-trace fast path consumes — the two
//     inlined successor slots and the state's stride-table head — packed
//     into 32 bytes so two records share one cache line, doubling the
//     fast path's effective cache density over the old 64-byte combined
//     record. Trace states overwhelmingly have at most two successors — the
//     direct branch target and the fall-through — so the common transition
//     is two compares against adjacent words, no span lookup at all. States
//     with one transition duplicate it into both slots; states with none
//     park the impossible label in both.
//   - cold carries plausibleSuccessor's precomputed inputs (indirect flag,
//     branch target, fall-through address). It is touched only on a slot
//     miss — the desync check — so steady-state in-trace replay never pulls
//     its lines into cache at all.
//   - stride is the fused trace-cycle table built by Specialize (nil on an
//     unspecialized form): each entry is one steady-state cycle of the
//     automaton — k (label, instrs) edges returning to their anchor state —
//     that the batch kernels consume k edges at a time via one flat slice
//     comparison (specialize.go).
//   - ent is the entry table — the global container — as an open-addressed
//     hash with linear probing at <=50% load, key and value interleaved per
//     slot, replacing the EntryIndex interface on the frozen path.
//
// A Compiled is immutable after Compile and safe for concurrent readers;
// all mutable replay state (cursor, stats, local caches) lives in
// CompiledReplayer, which is what lets ParallelReplay shard one Compiled
// across goroutines without synchronization.
type Compiled struct {
	a *Automaton

	off     []uint32
	labels  []uint64
	targets []StateID

	hot    []hotRec
	cold   []coldRec
	stride []StrideEntry
	// strideProbe mirrors stride entry-for-entry with just the fields the
	// probe loop reads (first edge, length, links, chain link) — one compact
	// L1-resident array instead of a pointer chase per chain step.
	strideProbe []strideProbeRec

	ent      []entSlot
	entMask  uint64
	entShift uint8
	entLen   int

	// filt is a one-bit-per-hash presence filter in front of ent, sized to
	// ~12% load so it stays L1-resident. Cold-code labels — the common case
	// for lookups from NTE — miss here without touching the table. Same
	// multiply-shift hash as ent, so there are no false negatives.
	filt      []uint64
	filtShift uint8

	localSize int
	cfg       LookupConfig
}

// hotRec is the fast-path half of a state: the two inlined successor slots
// plus the head of the state's stride-entry chain (noStride when the state
// anchors no fused cycle). Exactly 32 bytes — two records per 64-byte cache
// line — so the stride check rides in what used to be padding and costs the
// in-trace path zero extra lines.
type hotRec struct {
	lab0, lab1 uint64
	tgt0, tgt1 StateID
	stride     int32
	_          [4]byte
}

// coldRec is the slot-miss half: plausibleSuccessor's precomputed inputs.
// Only the desync check reads it, so it stays out of the fast path's cache
// footprint entirely.
type coldRec struct {
	btgt  uint64
	fthru uint64
	flags uint8
	_     [7]byte
}

// noStride marks a state that anchors no stride entry and terminates
// stride-entry chains.
const noStride = int32(-1)

// entSlot is one open-addressed entry-table slot; val < 0 marks an empty
// slot (valid entry states are trace heads, never NTE).
type entSlot struct {
	key uint64
	val StateID
}

const (
	flagIndirect = 1 << iota
	flagBranch
	flagFallThru
)

// impossibleLabel fills unused fast slots. Block heads are instruction
// addresses inside the program image; a stream producer would fault before
// emitting an edge to the all-ones address, so it can never arrive as a
// label.
const impossibleLabel = ^uint64(0)

// fibHash is the 64-bit Fibonacci multiplier for the entry table's
// multiply-shift hash.
const fibHash = 0x9E3779B97F4A7C15

// Compile freezes a into its flat form. Only cfg.Local and cfg.LocalSize
// matter: the global container is always the open-addressed entry table
// (cfg.Global selects among the interface-dispatched containers the
// reference Replayer keeps for differential testing). The automaton must
// not be mutated afterwards; the online recorder keeps using the reference
// replayer, whose container supports incremental AddEntry.
func Compile(a *Automaton, cfg LookupConfig) *Compiled {
	cfg = cfg.withDefaults()
	n := a.NumStates()
	c := &Compiled{
		a:       a,
		cfg:     cfg,
		off:     make([]uint32, n+1),
		hot:     make([]hotRec, n),
		cold:    make([]coldRec, n),
		labels:  make([]uint64, 0, a.NumTrans()),
		targets: make([]StateID, 0, a.NumTrans()),
	}
	if cfg.Local {
		c.localSize = cfg.LocalSize
	}

	for i := 0; i < n; i++ {
		s := a.states[i]
		c.off[i] = uint32(len(c.labels))
		c.labels = append(c.labels, s.labels...)
		c.targets = append(c.targets, s.targets...)

		rec := hotRec{lab0: impossibleLabel, lab1: impossibleLabel, stride: noStride}
		switch {
		case len(s.labels) >= 2:
			rec.lab0, rec.tgt0 = s.labels[0], s.targets[0]
			rec.lab1, rec.tgt1 = s.labels[1], s.targets[1]
		case len(s.labels) == 1:
			rec.lab0, rec.tgt0 = s.labels[0], s.targets[0]
			rec.lab1, rec.tgt1 = rec.lab0, rec.tgt0
		}

		var cr coldRec
		if s.TBB != nil {
			term := s.TBB.Block.Term
			if term.IsIndirect() {
				cr.flags |= flagIndirect
			} else if term.IsBranch() {
				cr.flags |= flagBranch
				cr.btgt = term.Target
			}
			if ft, ok := s.TBB.Block.FallThrough(); ok {
				cr.flags |= flagFallThru
				cr.fthru = ft
			}
		}
		c.hot[i] = rec
		c.cold[i] = cr
	}
	c.off[n] = uint32(len(c.labels))

	c.buildEntryTable(a.Entries())
	return c
}

// buildEntryTable sizes the open-addressed table to at most 50% load (a
// power of two, so probing wraps with a mask) and inserts every entry.
func (c *Compiled) buildEntryTable(entries []Entry) {
	size := 8
	for size < 2*len(entries) {
		size <<= 1
	}
	c.ent = make([]entSlot, size)
	for i := range c.ent {
		c.ent[i].val = -1
	}
	c.entMask = uint64(size - 1)
	shift := uint8(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	c.entShift = shift
	bits := 512
	for bits < 8*len(entries) {
		bits <<= 1
	}
	c.filt = make([]uint64, bits/64)
	fshift := uint8(64)
	for b := bits; b > 1; b >>= 1 {
		fshift--
	}
	c.filtShift = fshift
	for _, e := range entries {
		h := e.Addr * fibHash
		i := h >> c.entShift
		for c.ent[i].val >= 0 {
			i = (i + 1) & c.entMask
		}
		c.ent[i] = entSlot{key: e.Addr, val: e.State}
		bit := h >> c.filtShift
		c.filt[bit>>6] |= 1 << (bit & 63)
	}
	c.entLen = len(entries)
}

// Automaton returns the automaton this compiled form was frozen from.
func (c *Compiled) Automaton() *Automaton { return c.a }

// Config returns the lookup configuration the form was compiled with.
func (c *Compiled) Config() LookupConfig { return c.cfg }

// NumStates returns the state count including NTE.
func (c *Compiled) NumStates() int { return len(c.hot) }

// Specialized reports whether the form carries a fused trace-cycle stride
// table (built by Specialize).
func (c *Compiled) Specialized() bool { return len(c.stride) > 0 }

// NumStrideEntries returns the size of the stride table (0 when the form is
// unspecialized).
func (c *Compiled) NumStrideEntries() int { return len(c.stride) }

// NumEntries returns the number of trace entries in the flat entry table.
func (c *Compiled) NumEntries() int { return c.entLen }

// LocalSize returns the embedded per-state cache size (0 = caches off).
func (c *Compiled) LocalSize() int { return c.localSize }

// next resolves an in-trace transition: the two inlined fast slots first,
// then the remainder of the state's span (only states with more than two
// transitions — indirect-branch TBBs — ever reach the scan).
func (c *Compiled) next(s StateID, label uint64) (StateID, bool) {
	rec := &c.hot[s]
	if rec.lab0 == label {
		return rec.tgt0, true
	}
	if rec.lab1 == label {
		return rec.tgt1, true
	}
	return c.nextSlow(s, label)
}

// entry resolves a trace entry address against the flat entry table. The
// presence filter answers most cold-code misses from L1 before the table's
// slots are touched at all.
func (c *Compiled) entry(addr uint64) (StateID, bool) {
	h := addr * fibHash
	bit := h >> c.filtShift
	if c.filt[bit>>6]&(1<<(bit&63)) == 0 {
		return NTE, false
	}
	i := h >> c.entShift
	for {
		e := c.ent[i]
		if e.val < 0 {
			return NTE, false
		}
		if e.key == addr {
			return e.val, true
		}
		i = (i + 1) & c.entMask
	}
}

// entryProbes is entry with probe accounting: it additionally reports how
// many table slots the search inspected (0 when the presence filter
// rejected the address without touching the table). Only the
// observability-enabled paths call it; the plain entry stays branch-lean
// for the disabled fast path.
func (c *Compiled) entryProbes(addr uint64) (StateID, bool, uint64) {
	h := addr * fibHash
	bit := h >> c.filtShift
	if c.filt[bit>>6]&(1<<(bit&63)) == 0 {
		return NTE, false, 0
	}
	i := h >> c.entShift
	probes := uint64(0)
	for {
		probes++
		e := c.ent[i]
		if e.val < 0 {
			return NTE, false, probes
		}
		if e.key == addr {
			return e.val, true, probes
		}
		i = (i + 1) & c.entMask
	}
}

// plausible mirrors plausibleSuccessor on the precomputed per-state fields:
// control leaving the record's block can arrive at label only via the branch
// target, the fall-through, or anywhere after an indirect terminator.
func (rec *coldRec) plausible(label uint64) bool {
	f := rec.flags
	if f&flagIndirect != 0 {
		return true
	}
	if f&flagBranch != 0 && label == rec.btgt {
		return true
	}
	return f&flagFallThru != 0 && label == rec.fthru
}

// plausible resolves the state's cold record; the hot loops index the cold
// array directly on their miss paths instead.
func (c *Compiled) plausible(s StateID, label uint64) bool {
	return c.cold[s].plausible(label)
}
