package core

import (
	"fmt"
	"strings"
)

// Layout renders the compiled form's memory-layout report: residency of the
// hot and cold SoA arrays, the transition arenas, the entry table and its
// filter, prefetch capability, and — when specialized — stride-table
// occupancy. teaprof -layout prints this so layout regressions (a record
// growing past its cache-line budget, a table blowing its cap) are visible
// without a profiler.
func (c *Compiled) Layout() string {
	var b strings.Builder
	n := len(c.hot)
	line := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	line("compiled layout (SoA split):")
	line("  states:            %d (+ NTE)", n)
	line("  hot array:         %d × %d B = %s (%d records per 64 B line, %d lines)",
		n, HotRecSize, byteCount(n*HotRecSize), 64/HotRecSize, (n*HotRecSize+63)/64)
	line("  cold array:        %d × %d B = %s (slot-miss plausibility only)",
		n, ColdRecSize, byteCount(n*ColdRecSize))
	line("  transition arena:  %d edges, %s labels + %s targets",
		len(c.labels), byteCount(len(c.labels)*8), byteCount(len(c.targets)*4))
	occupied := 0
	for _, e := range c.ent {
		if e.val >= 0 {
			occupied++
		}
	}
	pct := 0.0
	if len(c.ent) > 0 {
		pct = 100 * float64(occupied) / float64(len(c.ent))
	}
	line("  entry table:       %d/%d slots (%.0f%% load), filter %s",
		occupied, len(c.ent), pct, byteCount(len(c.filt)*8))
	if c.localSize > 0 {
		line("  local caches:      %d-way per-state (allocated on replayers, not here)", c.localSize)
	} else {
		line("  local caches:      off")
	}
	if havePrefetch {
		line("  software prefetch: on (PREFETCHT0, %d-edge / %d B lead in fused runs)",
			strideLookahead, strideLookahead*16)
	} else {
		line("  software prefetch: off (no asm helper on this architecture)")
	}

	if len(c.stride) == 0 {
		line("stride table:        none (unspecialized form)")
		return b.String()
	}
	anchors, tiled, chainMax := 0, 0, 0
	minK, maxK, sumK := int(^uint(0)>>1), 0, 0
	for i := range c.hot {
		depth := 0
		for si := c.hot[i].stride; si != noStride; si = c.stride[si].Next {
			depth++
		}
		if depth > 0 {
			anchors++
		}
		if depth > chainMax {
			chainMax = depth
		}
	}
	for i := range c.stride {
		k := len(c.stride[i].Pattern)
		sumK += k
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
		if c.stride[i].TileReps > 0 {
			tiled++
		}
	}
	line("stride table:")
	line("  entries:           %d/%d (cap), %d anchor state(s), longest chain %d/%d ways",
		len(c.stride), maxStrideEntries, anchors, chainMax, maxStrideWays)
	line("  pattern edges:     min %d / avg %.1f / max %d (cap %d)",
		minK, float64(sumK)/float64(len(c.stride)), maxK, maxStrideLen)
	line("  tiled entries:     %d (short cycles replicated toward %d-edge tiles)", tiled, strideTileLen)
	return b.String()
}

// byteCount formats n bytes human-readably (B / KiB / MiB).
func byteCount(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
