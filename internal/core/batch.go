package core

import (
	"unsafe"

	"github.com/lsc-tea/tea/internal/obs"
)

// strideLookahead is the software-prefetch distance of the fused consume
// loops, in edges. The 4-wide unroll retires one 64-byte cache line of
// stream per iteration, so hinting a single line strideLookahead edges
// (= strideLookahead/4 lines) ahead on every iteration walks the prefetch
// front exactly one line per iteration at a constant 512-byte lead — far
// enough to cover DRAM latency at the unroll's consumption rate, near
// enough not to thrash L1. See DESIGN.md §16 for the measurements behind
// the distance.
const strideLookahead = 32

// Edge is one event of a dynamic block stream in replay currency: the
// previously executing block retired Instrs dynamic instructions and
// control arrived at the block headed at Label — exactly the argument pair
// of Replayer.Advance, reified so streams can be captured, sharded and
// batched. faultinject.BlockEvent is the same shape on the test side.
type Edge struct {
	Label  uint64
	Instrs uint64
}

// CompiledReplayer is the cursor over a Compiled automaton. It reproduces
// the reference Replayer's observable behaviour exactly — the same Stats
// counters, including Desyncs/Resyncs, for the same stream and the same
// Local configuration — but runs on the flat arrays: no interface dispatch,
// no per-state cache allocation, and a batched entry point that amortizes
// call and bookkeeping overhead across whole stream slices.
//
// All mutable state (cursor, desync flag, stats, local-cache words) lives
// here; the Compiled itself is shared and read-only.
type CompiledReplayer struct {
	c *Compiled

	// cache holds the embedded per-state local caches: localSize
	// direct-mapped slots per state in one flat allocation, made once at
	// construction, label and target interleaved per slot. Zeroed slots
	// behave exactly like the reference's fresh caches (label 0 mapping to
	// NTE).
	cache []cacheSlot

	cur      StateID
	desynced bool
	stats    Stats

	// obs is the (nil when disabled) observability sink. AdvanceBatch folds
	// counters once per batch from the stats delta and emits events from its
	// slow branches; when nil the loop body is the PR 4 fast path plus one
	// predicted-not-taken branch per slow-path edge.
	obs *obs.Obs

	// strideEdges counts edges consumed through fused stride-table hits. It
	// lives outside Stats on purpose: Stats must stay byte-identical to the
	// reference replayer, and the reference has no stride path. The ratio
	// strideEdges/total is the bench suite's cycle_hit_rate.
	strideEdges uint64

	// cacheGen counts local-cache slot writes; warmGen[si] memoizes, per
	// stride entry, the generation at which its warm check last passed
	// (stored as gen+1 so the zero value means "never checked"). Once the
	// caches reach steady state no slot is written again, cacheGen stops
	// moving, and the per-attach warm check collapses from a chain of
	// dependent cache loads to one integer compare.
	cacheGen uint64
	warmGen  []uint64

	one [1]Edge // backing for the single-edge Advance, keeping it alloc-free
}

// cacheSlot is one direct-mapped local-cache entry. The zero value (label 0
// → NTE) is exactly the reference localCache's pristine slot.
type cacheSlot struct {
	label uint64
	tgt   StateID
}

// NewCompiledReplayer prepares a cursor over c. The returned replayer
// performs no further heap allocation: steady-state replay is 0 allocs/edge.
func NewCompiledReplayer(c *Compiled) *CompiledReplayer {
	r := &CompiledReplayer{c: c, cur: NTE}
	if c.localSize > 0 {
		r.cache = make([]cacheSlot, c.NumStates()*c.localSize)
		if len(c.stride) > 0 {
			r.warmGen = make([]uint64, len(c.stride))
		}
	}
	return r
}

// Compiled returns the frozen automaton being replayed.
func (r *CompiledReplayer) Compiled() *Compiled { return r.c }

// Cur returns the current state.
func (r *CompiledReplayer) Cur() StateID { return r.cur }

// Stats returns the accumulated counters.
func (r *CompiledReplayer) Stats() *Stats { return &r.stats }

// Desynced reports whether the cursor is currently desynchronized.
func (r *CompiledReplayer) Desynced() bool { return r.desynced }

// StrideEdges returns how many edges were consumed through fused
// stride-table hits (0 on an unspecialized Compiled). Deliberately not part
// of Stats, which stays byte-identical to the reference replayer.
func (r *CompiledReplayer) StrideEdges() uint64 { return r.strideEdges }

// Reset rewinds the cursor to NTE and zeroes the statistics, keeping the
// (warm) local caches — the same contract as Replayer.Reset.
func (r *CompiledReplayer) Reset() {
	r.cur = NTE
	r.desynced = false
	r.stats = Stats{}
	r.strideEdges = 0
}

// Advance consumes one edge; it is AdvanceBatch over a single-element batch.
func (r *CompiledReplayer) Advance(label, instrs uint64) StateID {
	r.one[0] = Edge{Label: label, Instrs: instrs}
	return r.AdvanceBatch(r.one[:])
}

// AccountOnly records instrs executed without advancing the automaton
// (the trailing instructions a pin.Tool receives in Fini).
func (r *CompiledReplayer) AccountOnly(instrs uint64) {
	prev := r.stats
	r.stats.AccountTail(r.cur, instrs)
	if o := r.obs; o != nil {
		d := r.stats
		d.sub(&prev)
		obsFoldReplay(o, 0, &d)
	}
}

// AdvanceBatch consumes a slice of stream edges and returns the final
// state. It allocates nothing and keeps the cursor, desync flag and stats
// in locals across the whole batch, writing them back once — the amortized
// form of calling Advance per edge, with identical results.
//
// On a Specialize'd Compiled the loop first tries the cursor's fused
// stride-table chain: a hit consumes the cycle's k edges (and every
// immediately repeating traversal) with one flat comparison per traversal
// and a constant-time stats update, then falls back to the per-edge kernel
// at the cycle exit. Stride hits are byte-equivalent to k per-edge steps —
// Specialize only admits cycles whose every transition is an in-trace hit —
// so Stats, cursor and desync behaviour are unchanged.
//
// With an observability context attached the batch routes through the
// instrumented twin; the disabled path below carries no obs code at all
// (not even nil checks inside the loop), so its code generation is exactly
// the pre-observability fast path.
//
//tea:hotpath
func (r *CompiledReplayer) AdvanceBatch(edges []Edge) StateID {
	if r.obs != nil {
		return r.advanceBatchObs(edges)
	}
	if len(r.c.stride) == 0 {
		return r.advanceBatchPlain(edges)
	}
	c := r.c
	cur, desynced := r.cur, r.desynced
	st := r.stats
	strideEdges := r.strideEdges
	cacheGen := r.cacheGen
	localSize := c.localSize
	var localMask uint64
	if localSize > 0 {
		localMask = uint64(localSize - 1)
	}
	// Hoist the arrays into locals: the in-loop stores to the cache slice
	// would otherwise force the compiler to reload every slice header on
	// each iteration (the stores could alias them).
	hot := c.hot
	cold := c.cold
	strides := c.stride
	probes := c.strideProbe
	cache := r.cache
	n := len(edges)

	for k := 0; k < n; {
		if cur == NTE {
			// From NTE every transition searches the global container.
			label, instrs := edges[k].Label, edges[k].Instrs
			k++
			if instrs != 0 {
				st.Blocks++
				st.Instrs += instrs
			}
			st.GlobalLookups++
			if t, ok := c.entry(label); ok {
				st.GlobalHits++
				st.TraceEnters++
				if desynced {
					desynced = false
					st.Resyncs++
				}
				cur = t
			}
			continue
		}

		rec := &hot[cur]

		// Fused trace-cycle fast path: when the cursor anchors a stride
		// chain and is in sync, one flat 16*k-byte comparison consumes a
		// whole cycle traversal — and repeats of it — without touching the
		// per-edge slots at all. The chain walks the compact probe array
		// (first edge, length, miss/crossing counts), so a probe miss costs
		// two scalar compares against an L1-resident record and never
		// dereferences the full entry; a single-edge miss-free match — the
		// dominant fused shape — resolves from the probe record alone. Long
		// runs upgrade to whole-tile compares (the pattern pre-repeated to
		// ~128 edges) so steady state runs at vectorized-memequal speed; the
		// upgrade is gated on a few confirmed traversals first, so short
		// runs never pay for a failed tile compare.
		if si := rec.stride; si >= 0 && !desynced {
			matched := false
			for si >= 0 {
				p := &probes[si]
				m := int(p.m)
				if m > n-k || edges[k] != p.first {
					si = p.next
					continue
				}
				if m == 1 && p.miss == 0 && p.first.Instrs != 0 {
					// In-trace self-loop run: Edges == 1, Instrs ==
					// first.Instrs, all in-trace hits — the whole delta comes
					// from the record. The 4-wide leg issues independent
					// compares (no carried dependency), which is what the
					// typical 5-40 edge run length rewards; tiles only start
					// paying past ~100 edges.
					runs := uint64(1)
					k++
					pe := p.first
					for k+4 <= n && edges[k] == pe && edges[k+1] == pe && edges[k+2] == pe && edges[k+3] == pe {
						runs += 4
						k += 4
						if k+strideLookahead < n {
							prefetchT0(unsafe.Pointer(&edges[k+strideLookahead]))
						}
					}
					for k < n && edges[k] == pe {
						runs++
						k++
					}
					st.Blocks += runs
					st.TraceBlocks += runs
					st.Instrs += pe.Instrs * runs
					st.TraceInstrs += pe.Instrs * runs
					st.InTraceHits += runs
					strideEdges += runs
					matched = true
					break
				}
				e := &strides[si]
				if m > 1 && !edgesEqual(edges[k:k+m], e.Pattern) {
					si = p.next
					continue
				}
				// Entries with miss positions are fused on the cached kernel
				// only while the local cache already holds each non-NTE miss's
				// resolution (a warm hit never writes the slot); the
				// cache-less configuration resolves every miss through the
				// immutable entry table, which the simulation proved, so it
				// needs no check. The check memoizes on the cache write
				// generation: while no slot has been written since the last
				// pass, warmth cannot have been lost.
				if p.miss != 0 && localSize > 0 && r.warmGen[si] != cacheGen+1 {
					if !r.strideMissWarm(e) {
						si = p.next
						continue
					}
					r.warmGen[si] = cacheGen + 1
				}
				runs := uint64(1)
				k += m
				if m == 1 {
					pe := e.Pattern[0]
					for k+4 <= n && edges[k] == pe && edges[k+1] == pe && edges[k+2] == pe && edges[k+3] == pe {
						runs += 4
						k += 4
						if k+strideLookahead < n {
							prefetchT0(unsafe.Pointer(&edges[k+strideLookahead]))
						}
					}
					for k < n && edges[k] == pe {
						runs++
						k++
					}
				} else {
					for m <= n-k && edgesEqual(edges[k:k+m], e.Pattern) {
						runs++
						k += m
						if runs == 4 {
							if tl := len(e.Tile); tl != 0 {
								for tl <= n-k && edgesEqual(edges[k:k+tl], e.Tile) {
									runs += e.TileReps
									k += tl
								}
							}
						}
					}
				}
				// The Stats delta of runs traversals is the simulated
				// per-traversal delta scaled: the warm-cache expansion when
				// embedded caches are live, the cache-less one otherwise.
				if localSize > 0 {
					st.addScaled(&e.DeltaLocal, runs)
				} else {
					st.addScaled(&e.DeltaGlobal, runs)
				}
				strideEdges += e.Edges * runs
				matched = true
				break
			}
			if matched {
				continue // a traversal exits where it entered: cur unchanged
			}
		}

		// Account the finished block to the state that covered it. The
		// initial pseudo-edge carries no finished block (instrs == 0).
		label, instrs := edges[k].Label, edges[k].Instrs
		k++
		if instrs != 0 {
			st.Blocks++
			st.Instrs += instrs
			st.TraceBlocks++
			st.TraceInstrs += instrs
		}

		// In-trace fast path: branchless 2-way select over the two inlined
		// slots — a conditional move, so a run of alternating slot hits
		// (the usual cycle-exit pattern) carries no slot-order branch to
		// mispredict. Measured neutral on slot-stable streams and ahead on
		// alternating ones; see DESIGN.md §16.
		hit0 := rec.lab0 == label
		next := rec.tgt1
		if hit0 {
			next = rec.tgt0
		}
		if hit0 || rec.lab1 == label {
			st.InTraceHits++
		} else if t, ok := c.nextSlow(cur, label); ok {
			st.InTraceHits++
			next = t
		} else {
			if !cold[cur].plausible(label) {
				st.Desyncs++
				desynced = true
			}
			// Trace exit or trace-to-trace link: local cache (when
			// compiled in) in front of the flat entry table, caching
			// negative results exactly like the reference resolve.
			if localSize > 0 {
				slot := &cache[int(cur)*localSize+int((label>>1)&localMask)]
				if slot.label == label {
					st.LocalHits++
					next = slot.tgt
				} else {
					st.LocalMisses++
					st.GlobalLookups++
					if t, ok := c.entry(label); ok {
						st.GlobalHits++
						next = t
					} else {
						next = NTE
					}
					slot.label = label
					slot.tgt = next
					cacheGen++
				}
			} else {
				st.GlobalLookups++
				if t, ok := c.entry(label); ok {
					st.GlobalHits++
					next = t
				} else {
					next = NTE
				}
			}
			if next == NTE {
				st.TraceExits++
			} else {
				st.TraceLinks++
			}
		}

		if next != NTE && desynced {
			desynced = false
			st.Resyncs++
		}
		cur = next
	}

	r.cur, r.desynced = cur, desynced
	r.stats = st
	r.strideEdges = strideEdges
	r.cacheGen = cacheGen
	return cur
}

// advanceBatchPlain is the unspecialized batch kernel: one edge per
// iteration, no stride probes. A form without a stride table can never hit
// one, and measurement showed the specialized loop's per-edge stride check
// and irregular advance cost an unspecialized replay ~25% on slot-stable
// streams — so the dispatch above keeps the two shapes separate instead of
// paying for the table that isn't there.
//
//tea:hotpath
func (r *CompiledReplayer) advanceBatchPlain(edges []Edge) StateID {
	c := r.c
	cur, desynced := r.cur, r.desynced
	st := r.stats
	localSize := c.localSize
	var localMask uint64
	if localSize > 0 {
		localMask = uint64(localSize - 1)
	}
	// Hoist the arrays into locals: the in-loop stores to the cache slice
	// would otherwise force the compiler to reload every slice header on
	// each iteration (the stores could alias them).
	hot := c.hot
	cold := c.cold
	cache := r.cache

	for k := range edges {
		label, instrs := edges[k].Label, edges[k].Instrs

		// Account the finished block to the state that covered it. The
		// initial pseudo-edge carries no finished block (instrs == 0).
		if instrs != 0 {
			st.Blocks++
			st.Instrs += instrs
			if cur != NTE {
				st.TraceBlocks++
				st.TraceInstrs += instrs
			}
		}

		var next StateID
		if cur != NTE {
			// In-trace fast path: the two inlined successor slots.
			rec := &hot[cur]
			if rec.lab0 == label {
				st.InTraceHits++
				next = rec.tgt0
			} else if rec.lab1 == label {
				st.InTraceHits++
				next = rec.tgt1
			} else if t, ok := c.nextSlow(cur, label); ok {
				st.InTraceHits++
				next = t
			} else {
				if !cold[cur].plausible(label) {
					st.Desyncs++
					desynced = true
				}
				// Trace exit or trace-to-trace link: local cache (when
				// compiled in) in front of the flat entry table, caching
				// negative results exactly like the reference resolve.
				if localSize > 0 {
					slot := &cache[int(cur)*localSize+int((label>>1)&localMask)]
					if slot.label == label {
						st.LocalHits++
						next = slot.tgt
					} else {
						st.LocalMisses++
						st.GlobalLookups++
						if t, ok := c.entry(label); ok {
							st.GlobalHits++
							next = t
						} else {
							next = NTE
						}
						slot.label = label
						slot.tgt = next
					}
				} else {
					st.GlobalLookups++
					if t, ok := c.entry(label); ok {
						st.GlobalHits++
						next = t
					} else {
						next = NTE
					}
				}
				if next == NTE {
					st.TraceExits++
				} else {
					st.TraceLinks++
				}
			}
		} else {
			// From NTE every transition searches the global container.
			st.GlobalLookups++
			if t, ok := c.entry(label); ok {
				st.GlobalHits++
				next = t
				st.TraceEnters++
			} else {
				next = NTE
			}
		}

		if next != NTE && desynced {
			desynced = false
			st.Resyncs++
		}
		cur = next
	}

	r.cur, r.desynced = cur, desynced
	r.stats = st
	return cur
}

// advanceBatchObs is AdvanceBatch's instrumented twin, entered only with a
// context attached: identical Stats, cursor and desync behaviour, plus
// events stamped base+k on the slow branches and one counter fold from the
// batch's stats delta in the epilogue. Kept structurally parallel to the
// disabled loop above — including the fused stride fast path, which emits
// no events because a fused traversal is all in-trace hits and the per-edge
// kernel only emits from slow branches; the differential tests hold the two
// against each other.
//
//tea:hotpath
func (r *CompiledReplayer) advanceBatchObs(edges []Edge) StateID {
	c := r.c
	cur, desynced := r.cur, r.desynced
	st := r.stats
	strideEdges := r.strideEdges
	localSize := c.localSize
	var localMask uint64
	if localSize > 0 {
		localMask = uint64(localSize - 1)
	}
	hot := c.hot
	cold := c.cold
	strides := c.stride
	probes := c.strideProbe
	cache := r.cache
	n := len(edges)

	// Events carry base+k as their logical timestamp and the counters fold
	// once from the batch's stats delta in the epilogue, so even enabled
	// mode adds no per-edge atomics for counter maintenance.
	o := r.obs
	base := o.EdgeBase()
	prev := st

	for k := 0; k < n; {
		if cur == NTE {
			label, instrs := edges[k].Label, edges[k].Instrs
			kAt := uint64(k)
			k++
			if instrs != 0 {
				st.Blocks++
				st.Instrs += instrs
			}
			st.GlobalLookups++
			if t, ok := c.entry(label); ok {
				st.GlobalHits++
				st.TraceEnters++
				o.SetEdge(base + kAt)
				o.TraceEnter(int32(t), label)
				if desynced {
					desynced = false
					st.Resyncs++
					o.SetEdge(base + kAt)
					o.ResyncEvent(int32(t), label)
				}
				cur = t
			}
			continue
		}

		rec := &hot[cur]

		if si := rec.stride; si >= 0 && !desynced {
			matched := false
			for si >= 0 {
				p := &probes[si]
				m := int(p.m)
				// The instrumented twin fuses only miss-free patterns: every
				// miss position — warm trace link, trace exit or NTE crossing
				// — emits an event on the per-edge path (EntryTableHit fires
				// even on warm local hits), and a fused traversal must
				// suppress nothing. Pure in-trace traversals emit nothing.
				if p.miss != 0 || m > n-k || edges[k] != p.first {
					si = p.next
					continue
				}
				if m == 1 && p.first.Instrs != 0 {
					runs := uint64(1)
					k++
					pe := p.first
					for k+4 <= n && edges[k] == pe && edges[k+1] == pe && edges[k+2] == pe && edges[k+3] == pe {
						runs += 4
						k += 4
						if k+strideLookahead < n {
							prefetchT0(unsafe.Pointer(&edges[k+strideLookahead]))
						}
					}
					for k < n && edges[k] == pe {
						runs++
						k++
					}
					st.Blocks += runs
					st.TraceBlocks += runs
					st.Instrs += pe.Instrs * runs
					st.TraceInstrs += pe.Instrs * runs
					st.InTraceHits += runs
					strideEdges += runs
					matched = true
					break
				}
				e := &strides[si]
				if m > 1 && !edgesEqual(edges[k:k+m], e.Pattern) {
					si = p.next
					continue
				}
				runs := uint64(1)
				k += m
				if m == 1 {
					pe := e.Pattern[0]
					for k < n && edges[k] == pe {
						runs++
						k++
					}
				} else {
					for m <= n-k && edgesEqual(edges[k:k+m], e.Pattern) {
						runs++
						k += m
						if runs == 4 {
							if tl := len(e.Tile); tl != 0 {
								for tl <= n-k && edgesEqual(edges[k:k+tl], e.Tile) {
									runs += e.TileReps
									k += tl
								}
							}
						}
					}
				}
				// Miss-free traversals have identical deltas under every
				// cache configuration (no slow-path counters at all).
				st.addScaled(&e.DeltaGlobal, runs)
				strideEdges += e.Edges * runs
				matched = true
				break
			}
			if matched {
				continue
			}
		}

		label, instrs := edges[k].Label, edges[k].Instrs
		kAt := uint64(k)
		k++
		if instrs != 0 {
			st.Blocks++
			st.Instrs += instrs
			st.TraceBlocks++
			st.TraceInstrs += instrs
		}

		hit0 := rec.lab0 == label
		next := rec.tgt1
		if hit0 {
			next = rec.tgt0
		}
		if hit0 || rec.lab1 == label {
			st.InTraceHits++
		} else if t, ok := c.nextSlow(cur, label); ok {
			st.InTraceHits++
			next = t
		} else {
			if !cold[cur].plausible(label) {
				st.Desyncs++
				desynced = true
				o.SetEdge(base + kAt)
				o.DesyncEvent(int32(cur), label)
			}
			if localSize > 0 {
				slot := &cache[int(cur)*localSize+int((label>>1)&localMask)]
				if slot.label == label {
					st.LocalHits++
					next = slot.tgt
				} else {
					st.LocalMisses++
					st.GlobalLookups++
					t, ok, depth := c.entryProbes(label)
					o.SetEdge(base + kAt)
					o.CacheMissProbe(int32(cur), depth)
					if ok {
						st.GlobalHits++
						next = t
					} else {
						next = NTE
					}
					slot.label = label
					slot.tgt = next
					r.cacheGen++
				}
			} else {
				st.GlobalLookups++
				t, ok, depth := c.entryProbes(label)
				o.SetEdge(base + kAt)
				o.CacheMissProbe(int32(cur), depth)
				if ok {
					st.GlobalHits++
					next = t
				} else {
					next = NTE
				}
			}
			if next == NTE {
				st.TraceExits++
				o.SetEdge(base + kAt)
				o.TraceExit(int32(cur), label)
			} else {
				st.TraceLinks++
				o.SetEdge(base + kAt)
				o.EntryTableHit(int32(next), label)
			}
		}

		if next != NTE && desynced {
			desynced = false
			st.Resyncs++
			o.SetEdge(base + kAt)
			o.ResyncEvent(int32(next), label)
		}
		cur = next
	}

	r.cur, r.desynced = cur, desynced
	r.stats = st
	r.strideEdges = strideEdges
	o.AdvanceEdges(uint64(len(edges)))
	d := st
	d.sub(&prev)
	obsFoldReplay(o, 0, &d)
	return cur
}

// strideMissWarm reports whether every miss position of e consumed from a
// non-NTE state currently resolves as a warm local-cache hit to exactly the
// state the trajectory proves (slot.tgt == NTE is a valid warm negative
// hit). That is the condition under which fusing the traversal is
// byte-equivalent to per-edge replay on the cached kernels: a warm hit
// charges LocalHits plus the link/exit counter and never writes the slot,
// which is exactly DeltaLocal's expansion. Positions consumed from NTE
// bypass the cache on every kernel (the immutable entry table answers
// them), so they need no check. Called once per chain attach and only for
// entries with misses; callers guarantee localSize > 0.
//
//tea:hotpath
func (r *CompiledReplayer) strideMissWarm(e *StrideEntry) bool {
	localSize := r.c.localSize
	localMask := uint64(localSize - 1)
	cache := r.cache
	for _, p := range e.MissPos {
		from := e.Anchor
		if p > 0 {
			from = e.States[p-1]
		}
		if from == NTE {
			continue
		}
		lbl := e.Pattern[p].Label
		slot := &cache[int(from)*localSize+int((lbl>>1)&localMask)]
		if slot.label != lbl || slot.tgt != e.States[p] {
			return false
		}
	}
	return true
}

// nextSlow scans the tail of a state's transition span; only states with
// more than two in-trace successors (indirect-branch TBBs) ever have one.
func (c *Compiled) nextSlow(s StateID, label uint64) (StateID, bool) {
	lo, hi := c.off[s], c.off[s+1]
	if hi-lo <= 2 {
		return NTE, false
	}
	for j := lo + 2; j < hi; j++ {
		if c.labels[j] == label {
			return c.targets[j], true
		}
	}
	return NTE, false
}
