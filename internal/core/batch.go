package core

import (
	"github.com/lsc-tea/tea/internal/obs"
)

// Edge is one event of a dynamic block stream in replay currency: the
// previously executing block retired Instrs dynamic instructions and
// control arrived at the block headed at Label — exactly the argument pair
// of Replayer.Advance, reified so streams can be captured, sharded and
// batched. faultinject.BlockEvent is the same shape on the test side.
type Edge struct {
	Label  uint64
	Instrs uint64
}

// CompiledReplayer is the cursor over a Compiled automaton. It reproduces
// the reference Replayer's observable behaviour exactly — the same Stats
// counters, including Desyncs/Resyncs, for the same stream and the same
// Local configuration — but runs on the flat arrays: no interface dispatch,
// no per-state cache allocation, and a batched entry point that amortizes
// call and bookkeeping overhead across whole stream slices.
//
// All mutable state (cursor, desync flag, stats, local-cache words) lives
// here; the Compiled itself is shared and read-only.
type CompiledReplayer struct {
	c *Compiled

	// cache holds the embedded per-state local caches: localSize
	// direct-mapped slots per state in one flat allocation, made once at
	// construction, label and target interleaved per slot. Zeroed slots
	// behave exactly like the reference's fresh caches (label 0 mapping to
	// NTE).
	cache []cacheSlot

	cur      StateID
	desynced bool
	stats    Stats

	// obs is the (nil when disabled) observability sink. AdvanceBatch folds
	// counters once per batch from the stats delta and emits events from its
	// slow branches; when nil the loop body is the PR 4 fast path plus one
	// predicted-not-taken branch per slow-path edge.
	obs *obs.Obs

	one [1]Edge // backing for the single-edge Advance, keeping it alloc-free
}

// cacheSlot is one direct-mapped local-cache entry. The zero value (label 0
// → NTE) is exactly the reference localCache's pristine slot.
type cacheSlot struct {
	label uint64
	tgt   StateID
}

// NewCompiledReplayer prepares a cursor over c. The returned replayer
// performs no further heap allocation: steady-state replay is 0 allocs/edge.
func NewCompiledReplayer(c *Compiled) *CompiledReplayer {
	r := &CompiledReplayer{c: c, cur: NTE}
	if c.localSize > 0 {
		r.cache = make([]cacheSlot, c.NumStates()*c.localSize)
	}
	return r
}

// Compiled returns the frozen automaton being replayed.
func (r *CompiledReplayer) Compiled() *Compiled { return r.c }

// Cur returns the current state.
func (r *CompiledReplayer) Cur() StateID { return r.cur }

// Stats returns the accumulated counters.
func (r *CompiledReplayer) Stats() *Stats { return &r.stats }

// Desynced reports whether the cursor is currently desynchronized.
func (r *CompiledReplayer) Desynced() bool { return r.desynced }

// Reset rewinds the cursor to NTE and zeroes the statistics, keeping the
// (warm) local caches — the same contract as Replayer.Reset.
func (r *CompiledReplayer) Reset() {
	r.cur = NTE
	r.desynced = false
	r.stats = Stats{}
}

// Advance consumes one edge; it is AdvanceBatch over a single-element batch.
func (r *CompiledReplayer) Advance(label, instrs uint64) StateID {
	r.one[0] = Edge{Label: label, Instrs: instrs}
	return r.AdvanceBatch(r.one[:])
}

// AccountOnly records instrs executed without advancing the automaton
// (the trailing instructions a pin.Tool receives in Fini).
func (r *CompiledReplayer) AccountOnly(instrs uint64) {
	prev := r.stats
	r.stats.AccountTail(r.cur, instrs)
	if o := r.obs; o != nil {
		d := r.stats
		d.sub(&prev)
		obsFoldReplay(o, 0, &d)
	}
}

// AdvanceBatch consumes a slice of stream edges and returns the final
// state. It allocates nothing and keeps the cursor, desync flag and stats
// in locals across the whole batch, writing them back once — the amortized
// form of calling Advance per edge, with identical results.
//
// With an observability context attached the batch routes through the
// instrumented twin; the disabled path below carries no obs code at all
// (not even nil checks inside the loop), so its code generation is exactly
// the pre-observability fast path.
//
//tea:hotpath
func (r *CompiledReplayer) AdvanceBatch(edges []Edge) StateID {
	if r.obs != nil {
		return r.advanceBatchObs(edges)
	}
	c := r.c
	cur, desynced := r.cur, r.desynced
	st := r.stats
	localSize := c.localSize
	var localMask uint64
	if localSize > 0 {
		localMask = uint64(localSize - 1)
	}
	// Hoist the arrays into locals: the in-loop stores to the cache slice
	// would otherwise force the compiler to reload every slice header on
	// each iteration (the stores could alias them).
	states := c.state
	cache := r.cache

	for k := range edges {
		label, instrs := edges[k].Label, edges[k].Instrs

		// Account the finished block to the state that covered it. The
		// initial pseudo-edge carries no finished block (instrs == 0).
		if instrs != 0 {
			st.Blocks++
			st.Instrs += instrs
			if cur != NTE {
				st.TraceBlocks++
				st.TraceInstrs += instrs
			}
		}

		var next StateID
		if cur != NTE {
			// In-trace fast path: the two inlined successor slots.
			rec := &states[cur]
			if rec.lab0 == label {
				st.InTraceHits++
				next = rec.tgt0
			} else if rec.lab1 == label {
				st.InTraceHits++
				next = rec.tgt1
			} else if t, ok := c.nextSlow(cur, label); ok {
				st.InTraceHits++
				next = t
			} else {
				if !rec.plausible(label) {
					st.Desyncs++
					desynced = true
				}
				// Trace exit or trace-to-trace link: local cache (when
				// compiled in) in front of the flat entry table, caching
				// negative results exactly like the reference resolve.
				if localSize > 0 {
					slot := &cache[int(cur)*localSize+int((label>>1)&localMask)]
					if slot.label == label {
						st.LocalHits++
						next = slot.tgt
					} else {
						st.LocalMisses++
						st.GlobalLookups++
						if t, ok := c.entry(label); ok {
							st.GlobalHits++
							next = t
						} else {
							next = NTE
						}
						slot.label = label
						slot.tgt = next
					}
				} else {
					st.GlobalLookups++
					if t, ok := c.entry(label); ok {
						st.GlobalHits++
						next = t
					} else {
						next = NTE
					}
				}
				if next == NTE {
					st.TraceExits++
				} else {
					st.TraceLinks++
				}
			}
		} else {
			// From NTE every transition searches the global container.
			st.GlobalLookups++
			if t, ok := c.entry(label); ok {
				st.GlobalHits++
				next = t
				st.TraceEnters++
			} else {
				next = NTE
			}
		}

		if next != NTE && desynced {
			desynced = false
			st.Resyncs++
		}
		cur = next
	}

	r.cur, r.desynced = cur, desynced
	r.stats = st
	return cur
}

// advanceBatchObs is AdvanceBatch's instrumented twin, entered only with a
// context attached: identical Stats, cursor and desync behaviour, plus
// events stamped base+k on the slow branches and one counter fold from the
// batch's stats delta in the epilogue. Kept structurally parallel to the
// disabled loop above; the differential tests hold the two against each
// other.
func (r *CompiledReplayer) advanceBatchObs(edges []Edge) StateID {
	c := r.c
	cur, desynced := r.cur, r.desynced
	st := r.stats
	localSize := c.localSize
	var localMask uint64
	if localSize > 0 {
		localMask = uint64(localSize - 1)
	}
	states := c.state
	cache := r.cache

	// Events carry base+k as their logical timestamp and the counters fold
	// once from the batch's stats delta in the epilogue, so even enabled
	// mode adds no per-edge atomics for counter maintenance.
	o := r.obs
	base := o.EdgeBase()
	prev := st

	for k := range edges {
		label, instrs := edges[k].Label, edges[k].Instrs

		if instrs != 0 {
			st.Blocks++
			st.Instrs += instrs
			if cur != NTE {
				st.TraceBlocks++
				st.TraceInstrs += instrs
			}
		}

		var next StateID
		if cur != NTE {
			rec := &states[cur]
			if rec.lab0 == label {
				st.InTraceHits++
				next = rec.tgt0
			} else if rec.lab1 == label {
				st.InTraceHits++
				next = rec.tgt1
			} else if t, ok := c.nextSlow(cur, label); ok {
				st.InTraceHits++
				next = t
			} else {
				if !rec.plausible(label) {
					st.Desyncs++
					desynced = true
					o.SetEdge(base + uint64(k))
					o.DesyncEvent(int32(cur), label)
				}
				if localSize > 0 {
					slot := &cache[int(cur)*localSize+int((label>>1)&localMask)]
					if slot.label == label {
						st.LocalHits++
						next = slot.tgt
					} else {
						st.LocalMisses++
						st.GlobalLookups++
						t, ok, depth := c.entryProbes(label)
						o.SetEdge(base + uint64(k))
						o.CacheMissProbe(int32(cur), depth)
						if ok {
							st.GlobalHits++
							next = t
						} else {
							next = NTE
						}
						slot.label = label
						slot.tgt = next
					}
				} else {
					st.GlobalLookups++
					t, ok, depth := c.entryProbes(label)
					o.SetEdge(base + uint64(k))
					o.CacheMissProbe(int32(cur), depth)
					if ok {
						st.GlobalHits++
						next = t
					} else {
						next = NTE
					}
				}
				if next == NTE {
					st.TraceExits++
					o.SetEdge(base + uint64(k))
					o.TraceExit(int32(cur), label)
				} else {
					st.TraceLinks++
					o.SetEdge(base + uint64(k))
					o.EntryTableHit(int32(next), label)
				}
			}
		} else {
			st.GlobalLookups++
			if t, ok := c.entry(label); ok {
				st.GlobalHits++
				next = t
				st.TraceEnters++
				o.SetEdge(base + uint64(k))
				o.TraceEnter(int32(next), label)
			} else {
				next = NTE
			}
		}

		if next != NTE && desynced {
			desynced = false
			st.Resyncs++
			o.SetEdge(base + uint64(k))
			o.ResyncEvent(int32(next), label)
		}
		cur = next
	}

	r.cur, r.desynced = cur, desynced
	r.stats = st
	o.AdvanceEdges(uint64(len(edges)))
	d := st
	d.sub(&prev)
	obsFoldReplay(o, 0, &d)
	return cur
}

// nextSlow scans the tail of a state's transition span; only states with
// more than two in-trace successors (indirect-branch TBBs) ever have one.
func (c *Compiled) nextSlow(s StateID, label uint64) (StateID, bool) {
	lo, hi := c.off[s], c.off[s+1]
	if hi-lo <= 2 {
		return NTE, false
	}
	for j := lo + 2; j < hi; j++ {
		if c.labels[j] == label {
			return c.targets[j], true
		}
	}
	return NTE, false
}
