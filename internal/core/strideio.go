package core

// Stride-table wire format: a small self-contained blob so a specialized
// form's cycle table can be shipped next to an encoded automaton, decoded
// unvalidated through WithStrideTable, and judged by the verifier's
// C-STRIDE rules — the same decode-then-verify discipline as the automaton
// image itself. Layout ("TEAS" magic + version byte, then varints):
//
//	count, then per entry:
//	  anchor, exit, next+1 (so NoStride encodes as 0), k,
//	  k × (label, instrs), k × state, miss, miss × position, crossings,
//	  edges, instrs, 14 × DeltaGlobal counter, 14 × DeltaLocal counter
//
// Tiles are derived (Pattern repeated), never carried on the wire. Every
// rejection path returns a *DecodeError naming the field; hostile counts
// are bounded against the remaining input before any allocation.

import "encoding/binary"

var strideMagic = [5]byte{'T', 'E', 'A', 'S', 2}

// statsWireOrder fixes the on-wire counter order for the per-traversal
// deltas; appendStats and readStats must agree field for field.
func appendStats(out []byte, s *Stats) []byte {
	out = binary.AppendUvarint(out, s.Blocks)
	out = binary.AppendUvarint(out, s.Instrs)
	out = binary.AppendUvarint(out, s.TraceBlocks)
	out = binary.AppendUvarint(out, s.TraceInstrs)
	out = binary.AppendUvarint(out, s.InTraceHits)
	out = binary.AppendUvarint(out, s.LocalHits)
	out = binary.AppendUvarint(out, s.LocalMisses)
	out = binary.AppendUvarint(out, s.GlobalLookups)
	out = binary.AppendUvarint(out, s.GlobalHits)
	out = binary.AppendUvarint(out, s.TraceEnters)
	out = binary.AppendUvarint(out, s.TraceLinks)
	out = binary.AppendUvarint(out, s.TraceExits)
	out = binary.AppendUvarint(out, s.Desyncs)
	out = binary.AppendUvarint(out, s.Resyncs)
	return out
}

func (d *strideDec) readStats(field string, s *Stats) {
	s.Blocks = d.uvarint(field)
	s.Instrs = d.uvarint(field)
	s.TraceBlocks = d.uvarint(field)
	s.TraceInstrs = d.uvarint(field)
	s.InTraceHits = d.uvarint(field)
	s.LocalHits = d.uvarint(field)
	s.LocalMisses = d.uvarint(field)
	s.GlobalLookups = d.uvarint(field)
	s.GlobalHits = d.uvarint(field)
	s.TraceEnters = d.uvarint(field)
	s.TraceLinks = d.uvarint(field)
	s.TraceExits = d.uvarint(field)
	s.Desyncs = d.uvarint(field)
	s.Resyncs = d.uvarint(field)
}

// EncodeStrideTable serializes a stride table (as returned by
// (*Compiled).StrideTable).
func EncodeStrideTable(tab []StrideEntry) []byte {
	out := make([]byte, 0, 64+64*len(tab))
	out = append(out, strideMagic[:]...)
	out = binary.AppendUvarint(out, uint64(len(tab)))
	for _, e := range tab {
		out = binary.AppendUvarint(out, uint64(uint32(e.Anchor)))
		out = binary.AppendUvarint(out, uint64(uint32(e.Exit)))
		out = binary.AppendUvarint(out, uint64(uint32(e.Next+1)))
		out = binary.AppendUvarint(out, uint64(len(e.Pattern)))
		for _, p := range e.Pattern {
			out = binary.AppendUvarint(out, p.Label)
			out = binary.AppendUvarint(out, p.Instrs)
		}
		for _, s := range e.States {
			out = binary.AppendUvarint(out, uint64(uint32(s)))
		}
		out = binary.AppendUvarint(out, uint64(len(e.MissPos)))
		for _, p := range e.MissPos {
			out = binary.AppendUvarint(out, uint64(uint32(p)))
		}
		out = binary.AppendUvarint(out, e.Crossings)
		out = binary.AppendUvarint(out, e.Edges)
		out = binary.AppendUvarint(out, e.Instrs)
		out = appendStats(out, &e.DeltaGlobal)
		out = appendStats(out, &e.DeltaLocal)
	}
	return out
}

// DecodeStrideTable parses a stride-table blob. The result is structurally
// well-formed but semantically unverified — attach it with WithStrideTable
// and run the verifier's C-STRIDE rules before trusting it.
func DecodeStrideTable(data []byte) ([]StrideEntry, error) {
	if len(data) < len(strideMagic) || string(data[:len(strideMagic)]) != string(strideMagic[:]) {
		return nil, &DecodeError{Offset: 0, Field: "stride magic", Reason: "bad magic"}
	}
	d := strideDec{data: data, pos: len(strideMagic)}
	count := d.uvarint("stride count")
	// Each entry costs at least 6 wire bytes; reject hostile counts before
	// sizing anything off them.
	if count > uint64(len(data)) {
		return nil, &DecodeError{Offset: d.pos, Field: "stride count",
			Reason: "exceeds input size"}
	}
	if d.err != nil {
		return nil, d.err
	}
	tab := make([]StrideEntry, 0, count)
	for i := uint64(0); i < count && d.err == nil; i++ {
		var e StrideEntry
		e.Anchor = StateID(int32(uint32(d.uvarint("stride anchor"))))
		e.Exit = StateID(int32(uint32(d.uvarint("stride exit"))))
		e.Next = int32(uint32(d.uvarint("stride next"))) - 1
		k := d.uvarint("stride pattern length")
		if k > uint64(len(data)) || k > maxStrideLen*16 {
			return nil, &DecodeError{Offset: d.pos, Field: "stride pattern length",
				Reason: "exceeds input size or cap"}
		}
		e.Pattern = make([]Edge, 0, k)
		for j := uint64(0); j < k && d.err == nil; j++ {
			lab := d.uvarint("stride pattern label")
			ins := d.uvarint("stride pattern instrs")
			e.Pattern = append(e.Pattern, Edge{Label: lab, Instrs: ins})
		}
		e.States = make([]StateID, 0, k)
		for j := uint64(0); j < k && d.err == nil; j++ {
			e.States = append(e.States, StateID(int32(uint32(d.uvarint("stride state")))))
		}
		miss := d.uvarint("stride miss count")
		// Miss positions index the pattern; out-of-range values would turn
		// the unvalidated kernels into out-of-bounds reads, so bounding them
		// is structural, not semantic.
		if miss > k {
			return nil, &DecodeError{Offset: d.pos, Field: "stride miss count",
				Reason: "exceeds pattern length"}
		}
		if miss > 0 {
			e.MissPos = make([]int32, 0, miss)
		}
		for j := uint64(0); j < miss && d.err == nil; j++ {
			p := d.uvarint("stride miss position")
			if p >= k {
				return nil, &DecodeError{Offset: d.pos, Field: "stride miss position",
					Reason: "exceeds pattern length"}
			}
			e.MissPos = append(e.MissPos, int32(p))
		}
		e.Crossings = d.uvarint("stride crossings")
		if e.Crossings > miss {
			return nil, &DecodeError{Offset: d.pos, Field: "stride crossings",
				Reason: "exceeds miss count"}
		}
		e.Edges = d.uvarint("stride edges")
		e.Instrs = d.uvarint("stride instrs")
		d.readStats("stride delta global", &e.DeltaGlobal)
		d.readStats("stride delta local", &e.DeltaLocal)
		e.tile()
		tab = append(tab, e)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(data) {
		return nil, &DecodeError{Offset: d.pos, Field: "stride trailing bytes",
			Reason: "unconsumed input"}
	}
	return tab, nil
}

// strideDec is a minimal error-latching varint reader over the blob.
type strideDec struct {
	data []byte
	pos  int
	err  error
}

func (d *strideDec) uvarint(field string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = &DecodeError{Offset: d.pos, Field: field,
			Reason: "truncated or malformed varint"}
		return 0
	}
	d.pos += n
	return v
}
