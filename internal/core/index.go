package core

import (
	"fmt"
	"sort"

	"github.com/lsc-tea/tea/internal/btree"
)

// GlobalKind selects the implementation of the global trace container the
// transition function searches on every transition from cold code to hot
// code or from one trace to another (§4.2).
type GlobalKind int

const (
	// GlobalList keeps traces in a linked list, the paper's unoptimized
	// container ("the traces were kept in a linked list").
	GlobalList GlobalKind = iota
	// GlobalBTree keeps trace entries in the global B+ tree.
	GlobalBTree
	// GlobalHash keeps trace entries in a hash map — an idealized
	// container the paper did not evaluate, provided for the ablation.
	GlobalHash
	// GlobalSorted keeps entries in a binary-searched sorted array — one of
	// the "other techniques to optimize the transition lookup" the paper's
	// conclusion proposes investigating. Inserts are O(n) but rare (once
	// per trace); lookups are cache-friendly log2(n)+1 probes.
	GlobalSorted
)

func (k GlobalKind) String() string {
	switch k {
	case GlobalList:
		return "list"
	case GlobalBTree:
		return "btree"
	case GlobalHash:
		return "hash"
	case GlobalSorted:
		return "sorted"
	}
	return fmt.Sprintf("global?%d", int(k))
}

// LookupConfig selects the transition-function configuration of Table 4.
type LookupConfig struct {
	// Global picks the trace container.
	Global GlobalKind
	// Local enables the per-state local caches that short-circuit repeated
	// trace-to-trace transitions.
	Local bool
	// LocalSize is the number of entries per local cache (power of two;
	// default 4).
	LocalSize int
	// Fanout is the B+ tree order (default btree.DefaultOrder).
	Fanout int
}

// The three loaded configurations of Table 4 plus the implicit baseline.
var (
	// ConfigNoGlobalLocal is Table 4's "No Global / Local": linked-list
	// container, local caches on.
	ConfigNoGlobalLocal = LookupConfig{Global: GlobalList, Local: true}
	// ConfigGlobalNoLocal is Table 4's "Global / No Local": B+ tree, no
	// local caches.
	ConfigGlobalNoLocal = LookupConfig{Global: GlobalBTree, Local: false}
	// ConfigGlobalLocal is Table 4's "Global / Local", the configuration
	// used for all the recording/replaying experiments.
	ConfigGlobalLocal = LookupConfig{Global: GlobalBTree, Local: true}
)

func (c LookupConfig) withDefaults() LookupConfig {
	if c.LocalSize <= 0 {
		c.LocalSize = 4
	}
	// Round LocalSize up to a power of two for direct mapping.
	for c.LocalSize&(c.LocalSize-1) != 0 {
		c.LocalSize++
	}
	if c.Fanout <= 0 {
		c.Fanout = btree.DefaultOrder
	}
	return c
}

func (c LookupConfig) String() string {
	l := "nolocal"
	if c.Local {
		l = "local"
	}
	return fmt.Sprintf("%s/%s", c.Global, l)
}

// EntryIndex is the global trace container: it maps trace entry addresses
// to head states and accounts the probes its searches cost.
type EntryIndex interface {
	// Insert registers (or replaces) a trace entry.
	Insert(addr uint64, s StateID)
	// Lookup resolves an address to a trace head state.
	Lookup(addr uint64) (StateID, bool)
	// Probes returns cumulative search cost in node/element visits.
	Probes() uint64
	// ResetProbes zeroes the probe counter (so population via Insert does
	// not pollute lookup-cost accounting).
	ResetProbes()
	// Len returns the number of entries.
	Len() int
}

// newEntryIndex builds the container selected by the config.
func newEntryIndex(c LookupConfig) EntryIndex {
	switch c.Global {
	case GlobalBTree:
		return &btreeIndex{t: btree.New[StateID](c.Fanout)}
	case GlobalHash:
		return &hashIndex{m: make(map[uint64]StateID)}
	case GlobalSorted:
		return &sortedIndex{}
	default:
		return &listIndex{known: make(map[uint64]*listNode)}
	}
}

type btreeIndex struct{ t *btree.Map[StateID] }

func (b *btreeIndex) Insert(addr uint64, s StateID) { b.t.Put(addr, s) }
func (b *btreeIndex) Lookup(addr uint64) (StateID, bool) {
	return b.t.Get(addr)
}
func (b *btreeIndex) Probes() uint64 { return b.t.Probes() }
func (b *btreeIndex) ResetProbes()   { b.t.ResetProbes() }
func (b *btreeIndex) Len() int       { return b.t.Len() }

// listIndex is the unoptimized container: a singly linked list scanned
// front to back on every lookup. New traces are prepended, so recently
// created traces are found quickly but cold misses scan the whole list —
// the behaviour that makes gcc and vortex blow up in Table 4's
// "No Global / Local" column.
type listIndex struct {
	head   *listNode
	known  map[uint64]*listNode
	n      int
	probes uint64
}

type listNode struct {
	addr  uint64
	state StateID
	next  *listNode
}

func (l *listIndex) Insert(addr uint64, s StateID) {
	if n, ok := l.known[addr]; ok {
		n.state = s
		return
	}
	n := &listNode{addr: addr, state: s, next: l.head}
	l.head = n
	l.known[addr] = n
	l.n++
}

func (l *listIndex) Lookup(addr uint64) (StateID, bool) {
	for n := l.head; n != nil; n = n.next {
		l.probes++
		if n.addr == addr {
			return n.state, true
		}
	}
	return NTE, false
}

func (l *listIndex) Probes() uint64 { return l.probes }
func (l *listIndex) ResetProbes()   { l.probes = 0 }
func (l *listIndex) Len() int       { return l.n }

type hashIndex struct {
	m      map[uint64]StateID
	probes uint64
}

func (h *hashIndex) Insert(addr uint64, s StateID) { h.m[addr] = s }
func (h *hashIndex) Lookup(addr uint64) (StateID, bool) {
	h.probes++
	s, ok := h.m[addr]
	return s, ok
}
func (h *hashIndex) Probes() uint64 { return h.probes }
func (h *hashIndex) ResetProbes()   { h.probes = 0 }
func (h *hashIndex) Len() int       { return len(h.m) }

// sortedIndex is a binary-searched sorted array of entries.
type sortedIndex struct {
	addrs  []uint64
	states []StateID
	probes uint64
}

func (s *sortedIndex) Insert(addr uint64, st StateID) {
	i := sort.Search(len(s.addrs), func(i int) bool { return s.addrs[i] >= addr })
	if i < len(s.addrs) && s.addrs[i] == addr {
		s.states[i] = st
		return
	}
	s.addrs = append(s.addrs, 0)
	copy(s.addrs[i+1:], s.addrs[i:])
	s.addrs[i] = addr
	s.states = append(s.states, 0)
	copy(s.states[i+1:], s.states[i:])
	s.states[i] = st
}

func (s *sortedIndex) Lookup(addr uint64) (StateID, bool) {
	lo, hi := 0, len(s.addrs)
	for lo < hi {
		s.probes++
		mid := (lo + hi) / 2
		switch {
		case s.addrs[mid] == addr:
			return s.states[mid], true
		case s.addrs[mid] < addr:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return NTE, false
}

func (s *sortedIndex) Probes() uint64 { return s.probes }
func (s *sortedIndex) ResetProbes()   { s.probes = 0 }
func (s *sortedIndex) Len() int       { return len(s.addrs) }

// localCache is one state's direct-mapped cache of resolved trace-entry
// targets. Both positive and negative results are cached (see
// Replayer.resolve); AddEntry bumps the replayer's generation, and a cache
// whose gen stamp lags is flushed before its next use, so a negative entry
// can never mask a trace created later.
type localCache struct {
	labels  []uint64
	targets []StateID
	// gen is the replayer generation this cache was last valid for.
	gen uint64
}

func newLocalCache(size int) *localCache {
	return &localCache{labels: make([]uint64, size), targets: make([]StateID, size)}
}

func (c *localCache) slot(label uint64) int {
	// Low bits above the typical instruction alignment spread entries.
	return int((label >> 1) & uint64(len(c.labels)-1))
}

func (c *localCache) get(label uint64) (StateID, bool) {
	i := c.slot(label)
	if c.labels[i] == label {
		return c.targets[i], true
	}
	return NTE, false
}

func (c *localCache) put(label uint64, s StateID) {
	i := c.slot(label)
	c.labels[i] = label
	c.targets[i] = s
}

// flush zeroes the cache in place, restoring the pristine state (every slot
// label 0 → NTE) without giving up the allocation.
func (c *localCache) flush() {
	for i := range c.labels {
		c.labels[i] = 0
		c.targets[i] = NTE
	}
}
