package core

import (
	"fmt"
	"strings"
)

// Dot renders the automaton's full logical transition relation as a
// Graphviz digraph, in the style of the paper's Figure 3(b): one node per
// state (NTE doubled-circled), edges labeled with the program counter that
// triggers them, in-trace edges solid and entry/exit edges dashed.
func Dot(a *Automaton, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=ellipse, fontname=\"Helvetica\"];\n")
	b.WriteString("  NTE [shape=doublecircle];\n")
	for i := 1; i < a.NumStates(); i++ {
		s := a.State(StateID(i))
		fmt.Fprintf(&b, "  s%d [label=%q];\n", i, s.Name())
	}
	for i := 0; i < a.NumStates(); i++ {
		id := StateID(i)
		for _, tr := range a.FullTransitions(id) {
			style := "solid"
			if !tr.InTrace {
				style = "dashed"
			}
			fmt.Fprintf(&b, "  %s -> %s [label=\"0x%x\", style=%s];\n",
				dotName(tr.From), dotName(tr.To), tr.Label, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func dotName(id StateID) string {
	if id == NTE {
		return "NTE"
	}
	return fmt.Sprintf("s%d", id)
}

// Summary renders a human-readable description of the automaton: the state
// list with each state's full transitions, in deterministic order. The
// linked-list example uses it to print the paper's Figure 3.
func Summary(a *Automaton) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TEA: %d states (incl. NTE), %d in-trace transitions, %d trace entries\n",
		a.NumStates(), a.NumTrans(), len(a.Entries()))
	for i := 0; i < a.NumStates(); i++ {
		s := a.State(StateID(i))
		fmt.Fprintf(&b, "  %s\n", s.Name())
		for _, tr := range a.FullTransitions(StateID(i)) {
			kind := "in-trace"
			if !tr.InTrace {
				if tr.To == NTE {
					kind = "to cold code"
				} else if tr.From == NTE {
					kind = "trace entry"
				} else {
					kind = "trace link"
				}
			}
			fmt.Fprintf(&b, "    --0x%x--> %-18s (%s)\n", tr.Label, a.State(tr.To).Name(), kind)
		}
	}
	return b.String()
}
