package core

// Audit accessors: the read-only structural surface internal/verify inspects
// to prove paper invariants without replaying. Everything here returns
// copies (or goes through the production lookup code), so a verifier can
// never perturb the representation it is auditing, and the hot replay paths
// stay untouched.

import "unsafe"

// Labels returns a copy of the state's in-trace transition labels in table
// order (sorted ascending by construction).
func (s *State) Labels() []uint64 {
	out := make([]uint64, len(s.labels))
	copy(out, s.labels)
	return out
}

// Targets returns a copy of the state's in-trace transition targets,
// parallel to Labels.
func (s *State) Targets() []StateID {
	out := make([]StateID, len(s.targets))
	copy(out, s.targets)
	return out
}

// ImpossibleLabel is the sentinel that fills unused inline fast slots of a
// compiled state record; no stream producer can emit it as a label.
const ImpossibleLabel = impossibleLabel

// FibHash is the multiply-shift hash multiplier shared by the compiled
// entry table and its presence filter, exported so the verifier can prove
// slot placement and filter coverage on an audit snapshot.
const FibHash = fibHash

// Audit flag bits mirroring the compiled cold-record plausibility flags.
const (
	AuditFlagIndirect = flagIndirect
	AuditFlagBranch   = flagBranch
	AuditFlagFallThru = flagFallThru
)

// HotRecSize and ColdRecSize expose the compiled record geometry for the
// verifier's C-SOA layout rule: the hot record must stay exactly half a
// 64-byte cache line, the cold record no wider than the hot one.
const (
	HotRecSize  = int(unsafe.Sizeof(hotRec{}))
	ColdRecSize = int(unsafe.Sizeof(coldRec{}))
)

// NoStride is the sentinel stride index of a state that anchors no fused
// cycle (and the chain terminator in StrideEntry.Next).
const NoStride = noStride

// MaxStrideLen is the longest admissible fused-cycle pattern, exported so
// the verifier can bound decoded tables with the same constant Specialize
// enforces.
const MaxStrideLen = maxStrideLen

// StateAudit is the audit view of one compiled state record — the hot and
// cold halves of the SoA split recombined.
type StateAudit struct {
	Lab0, Lab1 uint64
	Tgt0, Tgt1 StateID
	// Stride is the head of the state's stride-entry chain (NoStride when
	// the state anchors no fused cycle).
	Stride int32
	Flags  uint8
	// BranchTarget and FallThrough are plausibleSuccessor's precomputed
	// inputs (valid when the corresponding flag bit is set, zero otherwise).
	BranchTarget uint64
	FallThrough  uint64
}

// EntrySlotAudit is the audit view of one open-addressed entry-table slot;
// Val < 0 marks an empty slot.
type EntrySlotAudit struct {
	Key uint64
	Val StateID
}

// CompiledAudit is a deep-copied structural snapshot of a Compiled's flat
// layout. The verifier checks arena bounds, fast-slot consistency,
// entry-table placement and filter coverage against it; tests corrupt a
// snapshot to prove the rules fire.
type CompiledAudit struct {
	// Off/Labels/Targets are the transition arenas: Off[s]..Off[s+1] spans
	// state s inside Labels/Targets.
	Off     []uint32
	Labels  []uint64
	Targets []StateID
	// States are the recombined hot+cold records, one per state.
	States []StateAudit
	// Stride is the fused trace-cycle table (empty when unspecialized),
	// deep-copied entry by entry.
	Stride []StrideEntry
	// Ent is the open-addressed entry table with its probe parameters.
	Ent      []EntrySlotAudit
	EntMask  uint64
	EntShift uint8
	EntLen   int
	// Filt is the presence bitmap fronting Ent.
	Filt      []uint64
	FiltShift uint8
	// LocalSize is the embedded per-state cache size (0 = caches off).
	LocalSize int
}

// Audit snapshots the compiled form for structural verification.
func (c *Compiled) Audit() CompiledAudit {
	v := CompiledAudit{
		Off:       append([]uint32(nil), c.off...),
		Labels:    append([]uint64(nil), c.labels...),
		Targets:   append([]StateID(nil), c.targets...),
		States:    make([]StateAudit, len(c.hot)),
		Stride:    StrideTableCopy(c.stride),
		Ent:       make([]EntrySlotAudit, len(c.ent)),
		EntMask:   c.entMask,
		EntShift:  c.entShift,
		EntLen:    c.entLen,
		Filt:      append([]uint64(nil), c.filt...),
		FiltShift: c.filtShift,
		LocalSize: c.localSize,
	}
	for i, rec := range c.hot {
		cr := c.cold[i]
		v.States[i] = StateAudit{
			Lab0: rec.lab0, Lab1: rec.lab1,
			Tgt0: rec.tgt0, Tgt1: rec.tgt1,
			Stride:       rec.stride,
			Flags:        cr.flags,
			BranchTarget: cr.btgt,
			FallThrough:  cr.fthru,
		}
	}
	for i, e := range c.ent {
		v.Ent[i] = EntrySlotAudit{Key: e.key, Val: e.val}
	}
	return v
}

// NextState resolves an in-trace transition through the production fast
// path (inline slots, then span scan) — the compiled half of the verifier's
// structural-equivalence proof against the reference Automaton.
func (c *Compiled) NextState(s StateID, label uint64) (StateID, bool) {
	return c.next(s, label)
}

// EntryLookup resolves a trace-entry address through the production filter
// and open-addressed probe sequence.
func (c *Compiled) EntryLookup(addr uint64) (StateID, bool) {
	return c.entry(addr)
}

// StrideProve re-runs Specialize's admission proof for a claimed fused
// cycle: it walks pat from anchor through the production cache-less
// transition function and rebuilds the entire entry — trajectory, miss
// classification, crossing count, both per-traversal Stats deltas and the
// derived tile. ok is false when the pattern is inadmissible (bad shape, a
// desync mid-pattern, or a trajectory that does not close on its anchor).
// The verifier's C-STRIDE rule holds a decoded table against this ground
// truth, so a forged entry can only pass by being byte-identical to what
// the production simulation derives.
func (c *Compiled) StrideProve(anchor StateID, pat []Edge) (StrideEntry, bool) {
	return buildStrideEntry(c, anchor, pat)
}
