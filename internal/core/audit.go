package core

// Audit accessors: the read-only structural surface internal/verify inspects
// to prove paper invariants without replaying. Everything here returns
// copies (or goes through the production lookup code), so a verifier can
// never perturb the representation it is auditing, and the hot replay paths
// stay untouched.

// Labels returns a copy of the state's in-trace transition labels in table
// order (sorted ascending by construction).
func (s *State) Labels() []uint64 {
	out := make([]uint64, len(s.labels))
	copy(out, s.labels)
	return out
}

// Targets returns a copy of the state's in-trace transition targets,
// parallel to Labels.
func (s *State) Targets() []StateID {
	out := make([]StateID, len(s.targets))
	copy(out, s.targets)
	return out
}

// ImpossibleLabel is the sentinel that fills unused inline fast slots of a
// compiled state record; no stream producer can emit it as a label.
const ImpossibleLabel = impossibleLabel

// FibHash is the multiply-shift hash multiplier shared by the compiled
// entry table and its presence filter, exported so the verifier can prove
// slot placement and filter coverage on an audit snapshot.
const FibHash = fibHash

// Audit flag bits mirroring the compiled stateRec plausibility flags.
const (
	AuditFlagIndirect = flagIndirect
	AuditFlagBranch   = flagBranch
	AuditFlagFallThru = flagFallThru
)

// StateAudit is the audit view of one compiled state record.
type StateAudit struct {
	Lab0, Lab1 uint64
	Tgt0, Tgt1 StateID
	Flags      uint8
	// BranchTarget and FallThrough are plausibleSuccessor's precomputed
	// inputs (valid when the corresponding flag bit is set, zero otherwise).
	BranchTarget uint64
	FallThrough  uint64
}

// EntrySlotAudit is the audit view of one open-addressed entry-table slot;
// Val < 0 marks an empty slot.
type EntrySlotAudit struct {
	Key uint64
	Val StateID
}

// CompiledAudit is a deep-copied structural snapshot of a Compiled's flat
// layout. The verifier checks arena bounds, fast-slot consistency,
// entry-table placement and filter coverage against it; tests corrupt a
// snapshot to prove the rules fire.
type CompiledAudit struct {
	// Off/Labels/Targets are the transition arenas: Off[s]..Off[s+1] spans
	// state s inside Labels/Targets.
	Off     []uint32
	Labels  []uint64
	Targets []StateID
	// States are the 64-byte hot records, one per state.
	States []StateAudit
	// Ent is the open-addressed entry table with its probe parameters.
	Ent      []EntrySlotAudit
	EntMask  uint64
	EntShift uint8
	EntLen   int
	// Filt is the presence bitmap fronting Ent.
	Filt      []uint64
	FiltShift uint8
	// LocalSize is the embedded per-state cache size (0 = caches off).
	LocalSize int
}

// Audit snapshots the compiled form for structural verification.
func (c *Compiled) Audit() CompiledAudit {
	v := CompiledAudit{
		Off:       append([]uint32(nil), c.off...),
		Labels:    append([]uint64(nil), c.labels...),
		Targets:   append([]StateID(nil), c.targets...),
		States:    make([]StateAudit, len(c.state)),
		Ent:       make([]EntrySlotAudit, len(c.ent)),
		EntMask:   c.entMask,
		EntShift:  c.entShift,
		EntLen:    c.entLen,
		Filt:      append([]uint64(nil), c.filt...),
		FiltShift: c.filtShift,
		LocalSize: c.localSize,
	}
	for i, rec := range c.state {
		v.States[i] = StateAudit{
			Lab0: rec.lab0, Lab1: rec.lab1,
			Tgt0: rec.tgt0, Tgt1: rec.tgt1,
			Flags:        rec.flags,
			BranchTarget: rec.btgt,
			FallThrough:  rec.fthru,
		}
	}
	for i, e := range c.ent {
		v.Ent[i] = EntrySlotAudit{Key: e.key, Val: e.val}
	}
	return v
}

// NextState resolves an in-trace transition through the production fast
// path (inline slots, then span scan) — the compiled half of the verifier's
// structural-equivalence proof against the reference Automaton.
func (c *Compiled) NextState(s StateID, label uint64) (StateID, bool) {
	return c.next(s, label)
}

// EntryLookup resolves a trace-entry address through the production filter
// and open-addressed probe sequence.
func (c *Compiled) EntryLookup(addr uint64) (StateID, bool) {
	return c.entry(addr)
}
