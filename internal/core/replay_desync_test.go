package core

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
)

// TestReplayerDesyncOnImpossibleLabel: feeding a label that cannot follow
// the current block (here, an address nowhere near the program) records a
// desync, degrades to NTE, and keeps the replayer usable; re-entering the
// trace records a resync.
func TestReplayerDesyncOnImpossibleLabel(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 20})
	a := Build(set)
	r := NewReplayer(a, ConfigGlobalLocal)

	entry := a.Entries()[0].Addr
	if got := r.Advance(entry, 0); got == NTE {
		t.Fatal("did not enter trace at its own entry")
	}
	if r.Desynced() {
		t.Fatal("desynced before any fault")
	}

	// An address outside the program cannot be any block's successor.
	if got := r.Advance(0xDEAD0000, 3); got != NTE {
		t.Fatalf("impossible label resolved to state %d", got)
	}
	if r.Stats().Desyncs != 1 || !r.Desynced() || !r.Stats().Desynced() {
		t.Fatalf("desync not recorded: %+v", r.Stats())
	}

	// Re-acquiring the trace clears the flag and counts a resync.
	if got := r.Advance(entry, 2); got == NTE {
		t.Fatal("could not re-enter trace after desync")
	}
	if r.Desynced() || r.Stats().Resyncs != 1 {
		t.Fatalf("resync not recorded: %+v", r.Stats())
	}

	// Reset clears the flag along with the stats.
	r.Advance(0xDEAD0000, 1)
	r.Reset()
	if r.Desynced() || r.Stats().Desyncs != 0 {
		t.Error("Reset left desync state behind")
	}
}

// TestReplayerCleanRunHasNoDesyncs: replaying the recording program's own
// stream never trips the plausibility check — the desync counters are
// evidence of mismatch, not noise.
func TestReplayerCleanRunHasNoDesyncs(t *testing.T) {
	for _, strategy := range []string{"mret", "tt", "ctt"} {
		p := progs.Figure2(60, 200)
		set := recordSet(t, p, strategy, trace.Config{HotThreshold: 20})
		a := Build(set)
		r := NewReplayer(a, ConfigGlobalLocal)
		m := cpu.New(p)
		run := cfg.NewRunner(m, cfg.StarDBT)
		var prev uint64
		for {
			e, ok, err := run.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok || e.To == nil {
				break
			}
			instrs := m.Steps() - prev
			prev = m.Steps()
			r.Advance(e.To.Head, instrs)
		}
		if r.Stats().Desyncs != 0 || r.Stats().Resyncs != 0 {
			t.Errorf("%s: clean replay desynced: %+v", strategy, r.Stats())
		}
	}
}

// replayStream drives a replayer over a recorded event stream and returns
// its stats.
func replayStream(a *Automaton, events []faultinject.BlockEvent) *Stats {
	r := NewReplayer(a, ConfigGlobalLocal)
	for _, e := range events {
		r.Advance(e.Label, e.Instrs)
	}
	return r.Stats()
}

// recordStream captures a program's dynamic block stream as BlockEvents.
func recordStream(t *testing.T, p *isa.Program) []faultinject.BlockEvent {
	t.Helper()
	m := cpu.New(p)
	run := cfg.NewRunner(m, cfg.StarDBT)
	var events []faultinject.BlockEvent
	var prev uint64
	for {
		e, ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.To == nil {
			break
		}
		instrs := m.Steps() - prev
		prev = m.Steps()
		events = append(events, faultinject.BlockEvent{Label: e.To.Head, Instrs: instrs})
	}
	return events
}

// TestReplayerSurvivesPerturbedStreams: dropped, duplicated and reordered
// block streams complete without panicking; lossy variants surface as
// desyncs rather than garbage coverage.
func TestReplayerSurvivesPerturbedStreams(t *testing.T) {
	p := progs.Figure2(60, 200)
	set := recordSet(t, p, "mret", trace.Config{HotThreshold: 20})
	a := Build(set)
	events := recordStream(t, p)
	if len(events) < 10 {
		t.Fatalf("stream too short: %d events", len(events))
	}

	clean := replayStream(a, events)
	if clean.Desyncs != 0 {
		t.Fatalf("clean stream desynced: %+v", clean)
	}

	for seed := int64(1); seed <= 10; seed++ {
		j := faultinject.New(seed)
		for name, mut := range map[string][]faultinject.BlockEvent{
			"drop":      j.DropEvents(events, 5),
			"duplicate": j.DuplicateEvents(events, 5),
			"swap":      j.SwapEvents(events, 5),
			"mixed":     j.PerturbStream(events),
		} {
			st := replayStream(a, mut)
			if st.Blocks == 0 {
				t.Errorf("seed %d %s: replay consumed nothing", seed, name)
			}
			// Desyncs may be zero (a fault can land on an indirect-terminated
			// or NTE-covered span), but Instrs must still reconcile: the
			// replay consumed the whole stream.
			var want uint64
			for _, e := range mut {
				want += e.Instrs
			}
			if st.Instrs != want {
				t.Errorf("seed %d %s: accounted %d of %d instrs", seed, name, st.Instrs, want)
			}
		}
	}
}
