//go:build !amd64

package core

import "unsafe"

// prefetchT0 is a no-op on architectures without the assembly helper; the
// stride kernels degrade to relying on the hardware prefetcher alone.
func prefetchT0(p unsafe.Pointer) { _ = p }

// havePrefetch lets the layout report say whether the stride kernels issue
// real prefetch hints on this architecture.
const havePrefetch = false
