package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/obs"
)

// This file factors the sharded-replay machinery of parallel.go into
// reusable primitives: speculative segment scans (SpecReplay, SpecReplayObs,
// SpecRecord), junction reconciliation (Reconciler), and a persistent
// worker pool with pooled per-pass buffers. ParallelReplay,
// ParallelReplayObs and ParallelReplayContext are thin entry points over
// these, and internal/pipeline runs the same scans on sequence-stamped
// chunks of a *live* stream — the decoupled capture→process pipeline.
//
// Two properties carry everything (DESIGN.md §9, §14):
//
//   - Memorylessness: with local caches excluded, consuming one edge is a
//     pure function of (cursor, desync flag, edge), so a segment scanned
//     speculatively from (NTE, in-sync) differs from the true replay only
//     in a prefix that ends where the two trajectories first touch.
//
//   - Swap accounting: reconciliation re-replays that prefix from the true
//     entry state, subtracts the speculative prefix's charges and adds the
//     true prefix's. The suffix is identical by induction, so the merged
//     Stats (and events, and record-mode candidate decisions) are
//     byte-identical to a sequential pass.
//
// The pool exists for the zero-alloc invariant: `go func` closures, per-pass
// result slices and per-junction event scratch all allocate, which is why
// BENCH_obs.json used to show ~0.0007–0.003 allocs/edge on the parallel
// rows. Persistent workers fed job pointers over a channel, a mutex-guarded
// job free list (immune to GC clearing, unlike sync.Pool), and SpecResults
// that reuse their buffers bring the steady state to exactly 0 allocs/edge.

// SpecResult is one segment's speculative scan result: the Stats charged
// from the guessed (NTE, in-sync) entry, the post-state trajectory
// reconciliation compares against, and — depending on the scan — collected
// events (replay+obs) or head candidates and probe records (record mode).
// The buffers are reused across scans via Reset.
type SpecResult struct {
	Stats Stats
	Curs  []StateID
	Desyn []bool
	// Evs are the events of an obs scan, stamped with global edge indices.
	Evs []obs.Event
	// Cands are a record scan's head candidates in edge order.
	Cands []RecCand
	// Miss are a record scan's trace-side global-container searches, replayed
	// against the live index at drain time for probe-depth observability.
	Miss []ProbeRec

	// abandoned marks a cancelled scan (context path); the merge is skipped.
	abandoned bool
}

// Reset prepares the result for a segment of n edges, reusing capacity.
func (r *SpecResult) Reset(n int) {
	r.Stats = Stats{}
	if cap(r.Curs) < n {
		r.Curs = make([]StateID, n)
		r.Desyn = make([]bool, n)
	} else {
		r.Curs = r.Curs[:n]
		r.Desyn = r.Desyn[:n]
	}
	r.Evs = r.Evs[:0]
	r.Cands = r.Cands[:0]
	r.Miss = r.Miss[:0]
	r.abandoned = false
}

// RecCand is one recording head candidate observed by a speculative record
// scan: the stream offset within the chunk and the candidate head address.
// The drain replays the hot-counter policy over these in order.
type RecCand struct {
	Idx  int32
	Head uint64
}

// ProbeRec is one trace-side miss of a record scan: the edge offset, the
// state the miss left, and the label searched. The reference recorder
// resolves these through its live global container (emitting probe-depth
// observations); a speculative scan resolves them against the immutable
// compiled entry table, so the drain re-issues the container searches to
// keep the observability registry byte-identical.
type ProbeRec struct {
	Idx   int32
	From  int32
	Label uint64
}

// SpecReplay speculatively replays seg from (NTE, in-sync) with the
// memoryless transition function, recording the post-state trajectory.
//
// On a Specialize'd Compiled the scan consumes whole stride-table cycles at
// a time; a fused traversal still fills the per-edge trajectory (the cycle's
// precomputed state sequence, never desynced) so junction reconciliation
// sees exactly what a per-edge scan would have recorded.
//
//tea:hotpath
func (c *Compiled) SpecReplay(seg []Edge, r *SpecResult) {
	if len(c.stride) == 0 {
		r.Reset(len(seg))
		cur, des := NTE, false
		for k := range seg {
			cur, des = c.step(cur, des, seg[k].Label, seg[k].Instrs, &r.Stats)
			r.Curs[k] = cur
			r.Desyn[k] = des
		}
		return
	}
	r.Reset(len(seg))
	st := &r.Stats
	hot := c.hot
	strides := c.stride
	probes := c.strideProbe
	curs, desyn := r.Curs, r.Desyn
	cur, des := NTE, false
	n := len(seg)
	for k := 0; k < n; {
		if cur != NTE && !des {
			if si := hot[cur].stride; si >= 0 {
				matched := false
				for si >= 0 {
					p := &probes[si]
					m := int(p.m)
					if m > n-k || seg[k] != p.first {
						si = p.next
						continue
					}
					e := &strides[si]
					// The memoryless scan is exactly the simulation that
					// proved the entry — every miss resolves through the
					// immutable entry table — so entries fuse unconditionally
					// here, charged DeltaGlobal per traversal. The trajectory
					// is the proved state sequence (NTE may appear
					// mid-pattern on cold-code excursions), never desynced.
					runs := uint64(0)
					if m == 1 {
						pe := e.Pattern[0]
						s0 := e.States[0]
						for k < n && seg[k] == pe {
							curs[k] = s0
							desyn[k] = false
							k++
							runs++
						}
					} else {
						if !edgesEqual(seg[k:k+m], e.Pattern) {
							si = p.next
							continue
						}
						for {
							copy(curs[k:k+m], e.States)
							for j := k; j < k+m; j++ {
								desyn[j] = false
							}
							k += m
							runs++
							if m > n-k || !edgesEqual(seg[k:k+m], e.Pattern) {
								break
							}
						}
					}
					if runs != 0 {
						st.addScaled(&e.DeltaGlobal, runs)
						matched = true
						break
					}
					si = p.next
				}
				if matched {
					continue // the cycle exits where it entered: cur unchanged
				}
			}
		}
		cur, des = c.step(cur, des, seg[k].Label, seg[k].Instrs, st)
		curs[k] = cur
		desyn[k] = des
		k++
	}
}

// specReplayCancel is SpecReplay with cancellation polling; it reports
// whether the scan ran to completion.
func (c *Compiled) specReplayCancel(seg []Edge, r *SpecResult, cancelled *atomic.Bool) bool {
	r.Reset(len(seg))
	cur, des := NTE, false
	for k := range seg {
		if k%cancelStride == 0 && cancelled.Load() {
			r.abandoned = true
			return false
		}
		cur, des = c.step(cur, des, seg[k].Label, seg[k].Instrs, &r.Stats)
		r.Curs[k] = cur
		r.Desyn[k] = des
	}
	return true
}

// SpecReplayObs is SpecReplay with event collection: identical Stats and
// trajectory, with the segment's events appended to r.Evs stamped
// ebase+offset. The hot loop is written out manually (rather than calling
// stepObs per edge) so the common in-trace path stays branch-light and
// call-free — this loop is what removes the parallel obs=on cliff.
//
//tea:hotpath
func (c *Compiled) SpecReplayObs(seg []Edge, ebase uint64, r *SpecResult) {
	r.Reset(len(seg))
	evs := r.Evs
	st := &r.Stats
	hot := c.hot
	cold := c.cold
	strides := c.stride
	probes := c.strideProbe
	specialized := len(strides) > 0
	curs, desyn := r.Curs, r.Desyn
	cur, des := NTE, false
	n := len(seg)
	for k := 0; k < n; {
		// Fused stride fast path, mirroring SpecReplay's — except that miss
		// positions emit events on this scan's per-edge path (probe,
		// entry-table-hit, exit records), so only miss-free entries fuse
		// here: their traversals are all in-trace hits, which emit nothing,
		// and the event stream is untouched by fusing.
		if specialized && cur != NTE && !des {
			if si := hot[cur].stride; si >= 0 {
				matched := false
				for si >= 0 {
					p := &probes[si]
					m := int(p.m)
					if p.miss != 0 || m > n-k || seg[k] != p.first {
						si = p.next
						continue
					}
					e := &strides[si]
					runs := uint64(0)
					if m == 1 {
						pe := e.Pattern[0]
						s0 := e.States[0]
						for k < n && seg[k] == pe {
							curs[k] = s0
							desyn[k] = false
							k++
							runs++
						}
					} else {
						if !edgesEqual(seg[k:k+m], e.Pattern) {
							si = p.next
							continue
						}
						for {
							copy(curs[k:k+m], e.States)
							for j := k; j < k+m; j++ {
								desyn[j] = false
							}
							k += m
							runs++
							if m > n-k || !edgesEqual(seg[k:k+m], e.Pattern) {
								break
							}
						}
					}
					if runs != 0 {
						st.addScaled(&e.DeltaGlobal, runs)
						matched = true
						break
					}
					si = p.next
				}
				if matched {
					continue
				}
			}
		}
		label, instrs := seg[k].Label, seg[k].Instrs
		if instrs != 0 {
			st.Blocks++
			st.Instrs += instrs
			if cur != NTE {
				st.TraceBlocks++
				st.TraceInstrs += instrs
			}
		}
		var next StateID
		if cur != NTE {
			rec := &hot[cur]
			if rec.lab0 == label {
				st.InTraceHits++
				next = rec.tgt0
			} else if rec.lab1 == label {
				st.InTraceHits++
				next = rec.tgt1
			} else if t, ok := c.nextSlow(cur, label); ok {
				st.InTraceHits++
				next = t
			} else {
				eidx := ebase + uint64(k)
				if !cold[cur].plausible(label) {
					st.Desyncs++
					des = true
					evs = append(evs, obs.Event{Edge: eidx, Aux: label, State: int32(cur), Kind: obs.EvDesync})
				}
				st.GlobalLookups++
				t, ok, depth := c.entryProbes(label)
				evs = append(evs, obs.Event{Edge: eidx, Aux: depth, State: int32(cur), Kind: obs.EvCacheMissProbe})
				if ok {
					st.GlobalHits++
					next = t
				}
				if next == NTE {
					st.TraceExits++
					evs = append(evs, obs.Event{Edge: eidx, Aux: label, State: int32(cur), Kind: obs.EvTraceExit})
				} else {
					st.TraceLinks++
					evs = append(evs, obs.Event{Edge: eidx, Aux: label, State: int32(next), Kind: obs.EvEntryTableHit})
				}
			}
		} else {
			st.GlobalLookups++
			if t, ok := c.entry(label); ok {
				st.GlobalHits++
				next = t
				st.TraceEnters++
				evs = append(evs, obs.Event{Edge: ebase + uint64(k), Aux: label, State: int32(next), Kind: obs.EvTraceEnter})
			}
		}
		if next != NTE && des {
			des = false
			st.Resyncs++
			evs = append(evs, obs.Event{Edge: ebase + uint64(k), Aux: label, State: int32(next), Kind: obs.EvResync})
		}
		cur = next
		curs[k] = cur
		desyn[k] = des
		k++
	}
	r.Evs = evs
}

// recStep consumes one record-mode edge: the memoryless transition (exactly
// step, keyed by the destination block head) plus the head-candidate and
// probe-record classification the fused MRET scan applies. A nil To edge is
// account-only (AccountTail semantics), matching Recorder.Observe.
func (c *Compiled) recStep(cur StateID, des bool, e *cfg.Edge, instrs uint64, st *Stats) (next StateID, ndes bool, cand bool, miss bool, head uint64) {
	if e.To == nil {
		st.AccountTail(cur, instrs)
		return cur, des, false, false, 0
	}
	head = e.To.Head
	if instrs != 0 {
		st.Blocks++
		st.Instrs += instrs
		if cur != NTE {
			st.TraceBlocks++
			st.TraceInstrs += instrs
		}
	}
	// backFast(e): taken edge whose source block's terminator is a direct
	// backward branch — the BackSrc precomputation shared with the strategies.
	back := e.Taken && e.From != nil && e.From.BackSrc
	prev := cur
	hit := false
	if cur != NTE {
		rec := &c.hot[cur]
		if rec.lab0 == head {
			hit = true
			next = rec.tgt0
		} else if rec.lab1 == head {
			hit = true
			next = rec.tgt1
		} else if t, ok := c.nextSlow(cur, head); ok {
			hit = true
			next = t
		}
		if hit {
			st.InTraceHits++
		} else {
			miss = true
			if !c.cold[cur].plausible(head) {
				st.Desyncs++
				des = true
			}
			st.GlobalLookups++
			if t, ok := c.entry(head); ok {
				st.GlobalHits++
				next = t
			}
			if next == NTE {
				st.TraceExits++
			} else {
				st.TraceLinks++
			}
		}
	} else {
		st.GlobalLookups++
		if t, ok := c.entry(head); ok {
			st.GlobalHits++
			next = t
			st.TraceEnters++
		}
	}
	if next != NTE && des {
		des = false
		st.Resyncs++
	}
	// Head-candidate policy, mirroring MRET.ObserveFused decide-before-mutate:
	// an in-trace hit on a taken backward branch whose target anchors no
	// trace, or any transition that lands in cold code off a trace exit or a
	// taken backward branch. (The fused scan's Root[cur] test is only a probe
	// shortcut: a root hit implies the head is traced, which c.entry answers
	// identically.)
	if hit {
		if back {
			if _, traced := c.entry(head); !traced {
				cand = true
			}
		}
	} else if next == NTE {
		cand = prev != NTE || back
	}
	return next, des, cand, miss, head
}

// SpecRecord speculatively scans a record-mode chunk from (NTE, in-sync)
// against the frozen compiled snapshot: the memoryless transition charges
// r.Stats, the trajectory feeds reconciliation, and the strategy-side
// effects are *deferred* — head candidates and trace-side misses are
// collected for the drain to replay in sequence order instead of being
// applied to shared state.
//
//tea:hotpath
func (c *Compiled) SpecRecord(edges []cfg.Edge, instrs []uint64, r *SpecResult) {
	r.Reset(len(edges))
	cur, des := NTE, false
	for k := range edges {
		var cand, miss bool
		var head uint64
		cur, des, cand, miss, head = c.recStep(cur, des, &edges[k], instrs[k], &r.Stats)
		if cand {
			r.Cands = append(r.Cands, RecCand{Idx: int32(k), Head: head})
		}
		if miss {
			r.Miss = append(r.Miss, ProbeRec{Idx: int32(k), From: int32(r.prevState(k)), Label: head})
		}
		r.Curs[k] = cur
		r.Desyn[k] = des
	}
}

// prevState returns the state before edge k of a partially filled
// trajectory (NTE before the first edge).
func (r *SpecResult) prevState(k int) StateID {
	if k == 0 {
		return NTE
	}
	return r.Curs[k-1]
}

// RecReplay replays edges[:upto] of a record-mode chunk from (cur, des)
// with the true transition function, returning the charges and exit state.
// The drain uses it to account the prefix of a chunk that ends in a
// recording trigger before handing the suffix to the sequential recorder.
//
//tea:hotpath
func (c *Compiled) RecReplay(edges []cfg.Edge, instrs []uint64, cur StateID, des bool, upto int) (Stats, StateID, bool) {
	var st Stats
	for j := 0; j < upto; j++ {
		cur, des, _, _, _ = c.recStep(cur, des, &edges[j], instrs[j], &st)
	}
	return st, cur, des
}

// RecMerge is the outcome of reconciling one speculatively scanned
// record-mode chunk against its true entry state.
type RecMerge struct {
	// Delta is the chunk's Stats contribution if accepted wholesale.
	Delta Stats
	// Cands / Miss are the reconciled candidate and probe lists: the true
	// prefix's recomputed entries followed by the speculative suffix's. The
	// slices alias Reconciler scratch (or the SpecResult) and are valid only
	// until the next Merge* call.
	Cands []RecCand
	Miss  []ProbeRec
	// ExitCur / ExitDes is the chunk's true exit state.
	ExitCur StateID
	ExitDes bool
}

// Reconciler carries the drain-side scratch buffers junction merges reuse
// across batches; the zero value is ready to use.
type Reconciler struct {
	trueEvs []obs.Event
	specEvs []obs.Event
	cands   []RecCand
	miss    []ProbeRec
}

// Merge reconciles one speculatively scanned segment against its true entry
// state (cur, des), returning the segment's true Stats contribution and exit
// state. When the entry state matches the speculation's (NTE, in-sync) the
// speculative result is exact and is returned without re-replay.
func (rc *Reconciler) Merge(c *Compiled, seg []Edge, cur StateID, des bool, r *SpecResult) (Stats, StateID, bool) {
	n := len(seg)
	if n == 0 {
		return Stats{}, cur, des
	}
	if cur == NTE && !des {
		return r.Stats, r.Curs[n-1], r.Desyn[n-1]
	}
	var trueSt Stats
	tcur, tdes := cur, des
	conv := -1
	for j := 0; j < n; j++ {
		tcur, tdes = c.step(tcur, tdes, seg[j].Label, seg[j].Instrs, &trueSt)
		if tcur == r.Curs[j] && tdes == r.Desyn[j] {
			conv = j
			break
		}
	}
	if conv < 0 {
		// The trajectories never touched (degenerate tiny segments): the true
		// re-replay covered the whole segment and replaces the speculation.
		return trueSt, tcur, tdes
	}
	var specSt Stats
	scur, sdes := NTE, false
	for j := 0; j <= conv; j++ {
		scur, sdes = c.step(scur, sdes, seg[j].Label, seg[j].Instrs, &specSt)
	}
	out := r.Stats
	out.sub(&specSt)
	out.add(&trueSt)
	return out, r.Curs[n-1], r.Desyn[n-1]
}

// MergeObs is Merge with event splicing: the reconciled segment's events are
// appended to *merged — the true prefix's events followed by the
// speculative suffix's — so the concatenation over all segments equals the
// sequential event stream.
func (rc *Reconciler) MergeObs(c *Compiled, seg []Edge, ebase uint64, cur StateID, des bool, r *SpecResult, merged *[]obs.Event) (Stats, StateID, bool) {
	n := len(seg)
	if n == 0 {
		return Stats{}, cur, des
	}
	if cur == NTE && !des {
		*merged = append(*merged, r.Evs...)
		return r.Stats, r.Curs[n-1], r.Desyn[n-1]
	}
	var trueSt Stats
	rc.trueEvs = rc.trueEvs[:0]
	tcur, tdes := cur, des
	conv := -1
	for j := 0; j < n; j++ {
		tcur, tdes = c.stepObs(tcur, tdes, seg[j].Label, seg[j].Instrs, &trueSt, &rc.trueEvs, ebase+uint64(j))
		if tcur == r.Curs[j] && tdes == r.Desyn[j] {
			conv = j
			break
		}
	}
	if conv < 0 {
		*merged = append(*merged, rc.trueEvs...)
		return trueSt, tcur, tdes
	}
	var specSt Stats
	rc.specEvs = rc.specEvs[:0]
	scur, sdes := NTE, false
	for j := 0; j <= conv; j++ {
		scur, sdes = c.stepObs(scur, sdes, seg[j].Label, seg[j].Instrs, &specSt, &rc.specEvs, ebase+uint64(j))
	}
	out := r.Stats
	out.sub(&specSt)
	out.add(&trueSt)
	// Speculative events stamped past the junction edge are the kept suffix.
	junction := ebase + uint64(conv)
	cut := evsAfter(r.Evs, junction)
	*merged = append(*merged, rc.trueEvs...)
	*merged = append(*merged, r.Evs[cut:]...)
	return out, r.Curs[n-1], r.Desyn[n-1]
}

// evsAfter returns the index of the first event stamped strictly after
// edge. Hand-rolled binary search: the sort.Search closure would escape on
// the zero-alloc path.
func evsAfter(evs []obs.Event, edge uint64) int {
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if evs[mid].Edge <= edge {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MergeRecord reconciles one speculatively scanned record-mode chunk: the
// returned Delta, candidate list and probe list are exactly what a true
// scan from (cur, des) would have produced, with only the non-converged
// prefix re-replayed.
func (rc *Reconciler) MergeRecord(c *Compiled, edges []cfg.Edge, instrs []uint64, cur StateID, des bool, r *SpecResult) RecMerge {
	n := len(edges)
	m := RecMerge{ExitCur: cur, ExitDes: des}
	if n == 0 {
		return m
	}
	if cur == NTE && !des {
		m.Delta = r.Stats
		m.Cands = r.Cands
		m.Miss = r.Miss
		m.ExitCur, m.ExitDes = r.Curs[n-1], r.Desyn[n-1]
		return m
	}
	rc.cands = rc.cands[:0]
	rc.miss = rc.miss[:0]
	var trueSt Stats
	tcur, tdes := cur, des
	conv := -1
	for j := 0; j < n; j++ {
		prev := tcur
		var cand, miss bool
		var head uint64
		tcur, tdes, cand, miss, head = c.recStep(tcur, tdes, &edges[j], instrs[j], &trueSt)
		if cand {
			rc.cands = append(rc.cands, RecCand{Idx: int32(j), Head: head})
		}
		if miss {
			rc.miss = append(rc.miss, ProbeRec{Idx: int32(j), From: int32(prev), Label: head})
		}
		if tcur == r.Curs[j] && tdes == r.Desyn[j] {
			conv = j
			break
		}
	}
	if conv < 0 {
		m.Delta = trueSt
		m.Cands = rc.cands
		m.Miss = rc.miss
		m.ExitCur, m.ExitDes = tcur, tdes
		return m
	}
	var specSt Stats
	scur, sdes := NTE, false
	for j := 0; j <= conv; j++ {
		scur, sdes, _, _, _ = c.recStep(scur, sdes, &edges[j], instrs[j], &specSt)
	}
	delta := r.Stats
	delta.sub(&specSt)
	delta.add(&trueSt)
	for _, cd := range r.Cands {
		if int(cd.Idx) > conv {
			rc.cands = append(rc.cands, cd)
		}
	}
	for _, pr := range r.Miss {
		if int(pr.Idx) > conv {
			rc.miss = append(rc.miss, pr)
		}
	}
	m.Delta = delta
	m.Cands = rc.cands
	m.Miss = rc.miss
	m.ExitCur, m.ExitDes = r.Curs[n-1], r.Desyn[n-1]
	return m
}

// FoldReplayObs charges a Stats delta to the replay counter set under the
// given shard's cells — the exported form of the fold the parallel and
// pipeline drains use at sequence boundaries.
func FoldReplayObs(o *obs.Obs, shard int, d *Stats) { obsFoldReplay(o, shard, d) }

// ReplayProbeEvents re-issues the trace-side global-container searches a
// speculative record scan resolved against the compiled snapshot: one live
// index lookup per ProbeRec, feeding the probe-depth histograms and
// CacheMissProbe events exactly as the sequential recorder's resolve path
// would, without touching Stats (the chunk's counters were already folded
// from the scan). No-op with no context attached — the searches exist only
// for observability.
func (r *Replayer) ReplayProbeEvents(misses []ProbeRec, base uint64) {
	o := r.obs
	if o == nil || len(misses) == 0 {
		return
	}
	evs := r.probeEvs[:0]
	for _, m := range misses {
		before := r.index.Probes()
		r.index.Lookup(m.Label)
		depth := r.index.Probes() - before
		o.Replay.ProbeDepth.Observe(depth)
		evs = append(evs, obs.Event{Edge: base + uint64(m.Idx), Aux: depth, State: m.From, Kind: obs.EvCacheMissProbe})
	}
	o.Tracer.EmitBatch(evs)
	o.SetEdge(evs[len(evs)-1].Edge)
	r.probeEvs = evs
}

// ---------------------------------------------------------------------------
// Persistent shard worker pool.

// parJob is one parallel replay pass: the descriptor the persistent workers
// and the calling goroutine both draw shards from, plus every buffer the
// pass needs. Jobs recycle through a free list so the steady state
// allocates nothing.
type parJob struct {
	c      *Compiled
	stream []Edge
	bounds []int
	res    []SpecResult
	nshard int
	useObs bool
	base   uint64
	cancel *atomic.Bool

	// next is the shard-claim ticket; its Store in init publishes the fields
	// above to the workers that observe it.
	next atomic.Int32
	wg   sync.WaitGroup

	rc     Reconciler
	merged []obs.Event

	link *parJob // free-list link
}

var (
	parMu      sync.Mutex
	parFreeJob *parJob
	parQueue   chan *parJob
	parSpawned atomic.Int32
)

// parMaxWorkers caps the persistent helper pool; the calling goroutine
// always participates, so shard counts beyond the cap still complete.
const parMaxWorkers = 16

// ensureParWorkers lazily spawns the persistent shard workers, sized to the
// host (GOMAXPROCS-1 helpers; the caller is the final worker).
func ensureParWorkers() {
	parMu.Lock()
	defer parMu.Unlock()
	want := runtime.GOMAXPROCS(0) - 1
	if want > parMaxWorkers {
		want = parMaxWorkers
	}
	if parQueue == nil {
		parQueue = make(chan *parJob, 64)
	}
	for int(parSpawned.Load()) < want {
		parSpawned.Add(1)
		go func() {
			for j := range parQueue {
				j.run()
			}
		}()
	}
}

func acquireParJob() *parJob {
	parMu.Lock()
	defer parMu.Unlock()
	if j := parFreeJob; j != nil {
		parFreeJob = j.link
		j.link = nil
		return j
	}
	return &parJob{}
}

func releaseParJob(j *parJob) {
	// Drop the pass-specific references so a parked job cannot pin a
	// Compiled image or a captured stream; the scratch buffers are the
	// point of the pool and stay.
	j.c = nil
	j.stream = nil
	j.cancel = nil
	parMu.Lock()
	j.link = parFreeJob
	parFreeJob = j
	parMu.Unlock()
}

// init prepares the job for one pass. Field writes happen before the
// next.Store(0) publication; workers claim shards with next.Add, which
// synchronizes with the store.
func (j *parJob) init(c *Compiled, stream []Edge, shards int, useObs bool, base uint64, cancel *atomic.Bool) {
	j.c = c
	j.stream = stream
	j.nshard = shards
	j.useObs = useObs
	j.base = base
	j.cancel = cancel
	if cap(j.bounds) < shards+1 {
		j.bounds = make([]int, shards+1)
	} else {
		j.bounds = j.bounds[:shards+1]
	}
	for i := 0; i <= shards; i++ {
		j.bounds[i] = i * len(stream) / shards
	}
	if cap(j.res) < shards {
		nr := make([]SpecResult, shards)
		copy(nr, j.res[:cap(j.res)])
		j.res = nr
	} else {
		j.res = j.res[:shards]
	}
	j.wg.Add(shards)
	j.next.Store(0)
}

// run claims and scans shards until none remain. Both the persistent
// workers and the calling goroutine run this; a worker that receives the
// job after every shard is claimed (a stale queue entry) returns
// immediately.
func (j *parJob) run() {
	for {
		k := int(j.next.Add(1)) - 1
		if k >= j.nshard {
			return
		}
		j.scanShard(k)
		j.wg.Done()
	}
}

func (j *parJob) scanShard(k int) {
	seg := j.stream[j.bounds[k]:j.bounds[k+1]]
	r := &j.res[k]
	switch {
	case j.cancel != nil:
		j.c.specReplayCancel(seg, r, j.cancel)
	case j.useObs:
		j.c.SpecReplayObs(seg, j.base+uint64(j.bounds[k]), r)
	default:
		j.c.SpecReplay(seg, r)
	}
}

// dispatch offers the job to idle persistent workers (never blocking the
// caller: a full queue just means the caller scans more shards itself),
// participates, and waits for every shard.
func (j *parJob) dispatch() {
	helpers := j.nshard - 1
	if n := int(parSpawned.Load()); helpers > n {
		helpers = n
	}
offer:
	for i := 0; i < helpers; i++ {
		select {
		case parQueue <- j:
		default:
			break offer // queue full; the caller scans the rest itself
		}
	}
	j.run()
	j.wg.Wait()
}

// parallelReplay is the engine behind ParallelReplay, ParallelReplayObs and
// ParallelReplayContext: speculative shard scans on the persistent pool,
// then left-to-right junction reconciliation. The caller guarantees
// 2 <= shards <= len(stream). Returns ok=false when cancelled.
func parallelReplay(c *Compiled, stream []Edge, shards int, o *obs.Obs, cancel *atomic.Bool) (Stats, StateID, bool) {
	ensureParWorkers()
	j := acquireParJob()
	var base uint64
	if o != nil {
		base = o.EdgeBase()
	}
	j.init(c, stream, shards, o != nil, base, cancel)
	j.dispatch()
	if cancel != nil && cancel.Load() {
		releaseParJob(j)
		return Stats{}, NTE, false
	}

	var total Stats
	cur, des := NTE, false
	if o == nil {
		for i := 0; i < shards; i++ {
			seg := stream[j.bounds[i]:j.bounds[i+1]]
			d, c2, d2 := j.rc.Merge(c, seg, cur, des, &j.res[i])
			total.add(&d)
			cur, des = c2, d2
		}
		releaseParJob(j)
		return total, cur, true
	}

	// Junction reconciliation is the only sequential section, so it carries
	// the profiling span; counters fold per shard into per-shard cells and
	// the merged, edge-ordered event stream feeds the shared ingest path.
	sp := obs.StartSpan(o, "parallel_reconcile")
	j.merged = j.merged[:0]
	for i := 0; i < shards; i++ {
		seg := stream[j.bounds[i]:j.bounds[i+1]]
		ebase := base + uint64(j.bounds[i])
		d, c2, d2 := j.rc.MergeObs(c, seg, ebase, cur, des, &j.res[i], &j.merged)
		obsFoldReplay(o, i, &d)
		total.add(&d)
		cur, des = c2, d2
	}
	sp.End()
	o.AdvanceEdges(uint64(len(stream)))
	o.IngestReplay(j.merged)
	releaseParJob(j)
	return total, cur, true
}
