//go:build amd64

package core

import "unsafe"

// prefetchT0 issues a PREFETCHT0 hint for the cache line holding p. The
// instruction never faults, but Go pointer rules still apply to forming p:
// callers clamp the lookahead index inside the slice.
//
//go:noescape
func prefetchT0(p unsafe.Pointer)

// havePrefetch lets the layout report say whether the stride kernels issue
// real prefetch hints on this architecture.
const havePrefetch = true
