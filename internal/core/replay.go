package core

import (
	"github.com/lsc-tea/tea/internal/btree"
	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/obs"
	"github.com/lsc-tea/tea/internal/trace"
)

// Replayer walks a TEA along the dynamic block stream of an unmodified
// program execution, maintaining the precise map from the current program
// counter to the TBB being "executed" — the paper's trace replaying
// use-case (§4, Table 2).
//
// The transition function is the performance-critical piece the paper
// ablates in Table 4: in-trace transitions resolve against the current
// state's own (tiny) transition table; every other transition — trace
// entry from cold code, or trace-to-trace linking at an exit — must search
// the global trace container, optionally front-ended by the current
// state's local cache.
type Replayer struct {
	a     *Automaton
	cfg   LookupConfig
	index EntryIndex

	caches   []*localCache
	cur      StateID
	desynced bool
	stats    Stats

	// obs is the (nil when disabled) observability sink; obsFolded remembers
	// the stats already folded into its counters, so FlushObs charges deltas
	// and never double-counts. probeEvs is ReplayProbeEvents' reusable batch
	// buffer.
	obs       *obs.Obs
	obsFolded Stats
	probeEvs  []obs.Event

	// gen is the local-cache generation. AddEntry bumps it instead of
	// walking and zeroing every allocated cache; a cache whose stamp lags
	// behind gen is flushed lazily on its next use (see cacheFor), which is
	// observably identical to the old eager flush-all.
	gen uint64

	// etab shadows the entry index for the batched fast path (advanceRun):
	// a flat open-addressed label→state table written at exactly the sites
	// that write the index, so lookups agree by construction. The
	// configurable EntryIndex (and its probe accounting) remains the
	// per-edge reference path.
	etab entryTab

	// flat* is the compiled transition view lent to the strategies' fused
	// batch scans (trace.AutoView) — the recording analogue of
	// CompiledReplayer's arrays. Per-state label and target slices are
	// packed into two contiguous arrays indexed by flatStart[state]; labels
	// stay sorted, so lookups search one cache-resident span instead of
	// chasing per-State objects. flatWild/flatSuccA/flatSuccB precompute the
	// plausible-successor test per state. The view is stamped with the
	// automaton's version and rebuilt lazily after a sync, so steady-state
	// recording (no syncs) never rebuilds or allocates.
	flatVersion  uint64
	flatStart    []int32
	flatLabels   []uint64
	flatTargets  []int32
	flatTBBs     []*trace.TBB
	flatRoot     []bool
	flatWild     []bool
	flatSuccA    []uint64
	flatSuccB    []uint64
	flatSrcBlock []*cfg.Block
	flatSrcBack  []bool
}

// Stats aggregates the counters of one replayed (or recorded) execution.
type Stats struct {
	// Blocks and Instrs total the observed execution.
	Blocks uint64
	Instrs uint64
	// TraceBlocks and TraceInstrs total execution mapped to a TBB state.
	// TraceInstrs/Instrs is the paper's "coverage".
	TraceBlocks uint64
	TraceInstrs uint64

	// InTraceHits counts transitions resolved inside a state's own table.
	InTraceHits uint64
	// LocalHits and LocalMisses count local-cache consultations.
	LocalHits   uint64
	LocalMisses uint64
	// GlobalLookups counts searches of the global trace container;
	// GlobalHits those that found a trace.
	GlobalLookups uint64
	GlobalHits    uint64

	// TraceEnters counts NTE→trace transitions, TraceLinks trace→trace
	// transitions, and TraceExits trace→NTE transitions.
	TraceEnters uint64
	TraceLinks  uint64
	TraceExits  uint64

	// Desyncs counts stream labels that are impossible successors of the
	// current state's block — evidence that the automaton does not describe
	// the observed execution (a stale or foreign TEA, a perturbed program,
	// or a lossy block stream). The replayer degrades gracefully: it falls
	// back toward NTE and keeps consuming the stream instead of attributing
	// garbage coverage. Resyncs counts trace re-acquisitions after a
	// desync. A replay with Desyncs > 0 completed, but its automaton and
	// program disagree; coverage for the desynced spans is attributed to
	// cold code.
	Desyncs uint64
	Resyncs uint64
}

// Desynced reports whether the replay has ever observed an impossible
// transition (Desyncs > 0).
func (s *Stats) Desynced() bool { return s.Desyncs > 0 }

// addScaled accumulates n copies of delta d — the fused stride kernels use
// it to collapse n proved traversals into one Stats update.
func (s *Stats) addScaled(d *Stats, n uint64) {
	s.Blocks += d.Blocks * n
	s.Instrs += d.Instrs * n
	s.TraceBlocks += d.TraceBlocks * n
	s.TraceInstrs += d.TraceInstrs * n
	s.InTraceHits += d.InTraceHits * n
	s.LocalHits += d.LocalHits * n
	s.LocalMisses += d.LocalMisses * n
	s.GlobalLookups += d.GlobalLookups * n
	s.GlobalHits += d.GlobalHits * n
	s.TraceEnters += d.TraceEnters * n
	s.TraceLinks += d.TraceLinks * n
	s.TraceExits += d.TraceExits * n
	s.Desyncs += d.Desyncs * n
	s.Resyncs += d.Resyncs * n
}

// Coverage returns the fraction of dynamic instructions executed while
// inside a trace (the "Coverage" column of Tables 2 and 3).
func (s *Stats) Coverage() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.TraceInstrs) / float64(s.Instrs)
}

// NewReplayer prepares a replayer over automaton a with the given
// transition-function configuration. The global container is populated
// from the automaton's entry table; the B+ tree container is bulk-loaded
// from the (already sorted) entries rather than grown split by split.
func NewReplayer(a *Automaton, cfg LookupConfig) *Replayer {
	cfg = cfg.withDefaults()
	r := &Replayer{a: a, cfg: cfg, cur: NTE}
	entries := a.Entries()
	if cfg.Global == GlobalBTree {
		keys := make([]uint64, len(entries))
		vals := make([]StateID, len(entries))
		for i, e := range entries {
			keys[i], vals[i] = e.Addr, e.State
		}
		r.index = &btreeIndex{t: btree.Bulk(cfg.Fanout, keys, vals)}
	} else {
		r.index = newEntryIndex(cfg)
		for _, e := range entries {
			r.index.Insert(e.Addr, e.State)
		}
	}
	for _, e := range entries {
		r.etab.put(e.Addr, e.State)
	}
	r.index.ResetProbes()
	return r
}

// Automaton returns the automaton being replayed.
func (r *Replayer) Automaton() *Automaton { return r.a }

// Config returns the transition-function configuration.
func (r *Replayer) Config() LookupConfig { return r.cfg }

// Index exposes the global container (for probe accounting).
func (r *Replayer) Index() EntryIndex { return r.index }

// Cur returns the current state.
func (r *Replayer) Cur() StateID { return r.cur }

// CurState returns the current state object.
func (r *Replayer) CurState() *State { return r.a.State(r.cur) }

// Stats returns the accumulated counters.
func (r *Replayer) Stats() *Stats { return &r.stats }

// Desynced reports whether the cursor is currently desynchronized: an
// impossible transition was observed and no trace has been re-acquired
// since. While desynced, the cursor sits at (or near) NTE and coverage is
// attributed to cold code.
func (r *Replayer) Desynced() bool { return r.desynced }

// Reset rewinds the cursor to NTE and zeroes the statistics. The global
// container and local caches are kept.
func (r *Replayer) Reset() {
	r.cur = NTE
	r.desynced = false
	r.stats = Stats{}
	r.obsFolded = Stats{}
}

// AddEntry registers a trace entry created after the replayer was built
// (used by the online recorder as traces finish). All local caches are
// logically flushed: they may hold negative entries for the new trace's
// address. The flush is O(1) — a generation bump — rather than a walk over
// every allocated cache: each cache is zeroed lazily the next time it is
// consulted, and until then its contents are unreachable, which is
// equivalent to the old eager flush. The online recorder calls this once
// per created trace, so on record-heavy runs the old O(states) walk was
// quadratic in the trace count.
func (r *Replayer) AddEntry(addr uint64, s StateID) {
	r.index.Insert(addr, s)
	r.etab.put(addr, s)
	r.gen++
}

// Advance consumes one edge of the dynamic block stream: the previous block
// finished after executing instrs dynamic instructions, and control
// transferred to the block headed at label. The instructions are accounted
// to the state that covered the finished block (the current state), then
// the automaton transitions on label. It returns the new state.
func (r *Replayer) Advance(label uint64, instrs uint64) StateID {
	r.account(r.cur, instrs)
	from := r.cur
	o := r.obs
	if o != nil {
		o.Tick()
	}
	var next StateID
	if from != NTE {
		if t, ok := r.a.State(from).Next(label); ok {
			r.stats.InTraceHits++
			next = t
		} else {
			// A label that is not even a *possible* successor of the current
			// block means the automaton and the observed execution have
			// diverged (stale/foreign TEA, perturbed program, lossy stream).
			// Record the desync and degrade: the transition below falls back
			// toward NTE (or re-enters whatever trace anchors at label), and
			// the replay keeps going instead of producing garbage coverage.
			if !plausibleSuccessor(r.a.State(from).TBB, label) {
				r.stats.Desyncs++
				r.desynced = true
				if o != nil {
					o.DesyncEvent(int32(from), label)
				}
			}
			next = r.resolve(from, label)
			if next == NTE {
				r.stats.TraceExits++
				if o != nil {
					o.TraceExit(int32(from), label)
				}
			} else {
				r.stats.TraceLinks++
				if o != nil {
					o.EntryTableHit(int32(next), label)
				}
			}
		}
	} else {
		next = r.lookupGlobal(label)
		if next != NTE {
			r.stats.TraceEnters++
			if o != nil {
				o.TraceEnter(int32(next), label)
			}
		}
	}
	if next != NTE && r.desynced {
		// Back on a recorded trace after a desync: the cursor is trustworthy
		// again from here.
		r.desynced = false
		r.stats.Resyncs++
		if o != nil {
			o.ResyncEvent(int32(next), label)
		}
	}
	r.cur = next
	return next
}

// buildFlat (re)compiles the automaton's per-state transition tables into
// the contiguous flat arrays the fused batch scans dispatch on. Called only
// when the automaton's version moved past the view's stamp — i.e. after a
// sync — so the recording steady state never pays it.
func (r *Replayer) buildFlat() {
	a := r.a
	n := len(a.states)
	total := 0
	for _, s := range a.states {
		total += len(s.labels)
	}
	if cap(r.flatStart) < n+1 {
		r.flatStart = make([]int32, n+1, 2*(n+1))
	} else {
		r.flatStart = r.flatStart[:n+1]
	}
	if cap(r.flatLabels) < total {
		r.flatLabels = make([]uint64, total, 2*total)
		r.flatTargets = make([]int32, total, 2*total)
	} else {
		r.flatLabels = r.flatLabels[:total]
		r.flatTargets = r.flatTargets[:total]
	}
	if cap(r.flatTBBs) < n {
		r.flatTBBs = make([]*trace.TBB, n, 2*n)
		r.flatRoot = make([]bool, n, 2*n)
		r.flatWild = make([]bool, n, 2*n)
		r.flatSuccA = make([]uint64, n, 2*n)
		r.flatSuccB = make([]uint64, n, 2*n)
		r.flatSrcBlock = make([]*cfg.Block, n, 2*n)
		r.flatSrcBack = make([]bool, n, 2*n)
	} else {
		r.flatTBBs = r.flatTBBs[:n]
		r.flatRoot = r.flatRoot[:n]
		r.flatWild = r.flatWild[:n]
		r.flatSuccA = r.flatSuccA[:n]
		r.flatSuccB = r.flatSuccB[:n]
		r.flatSrcBlock = r.flatSrcBlock[:n]
		r.flatSrcBack = r.flatSrcBack[:n]
	}
	off := 0
	for i, s := range a.states {
		r.flatStart[i] = int32(off)
		copy(r.flatLabels[off:], s.labels)
		for j, tg := range s.targets {
			r.flatTargets[off+j] = int32(tg)
		}
		r.flatTBBs[i] = s.TBB
		// Precompute plausibleSuccessor per state: an impossible label (^0)
		// fills the absent slots, so the test is two compares and a flag.
		wild, sa, sb := false, ^uint64(0), ^uint64(0)
		var srcBlock *cfg.Block
		srcBack := false
		if s.TBB != nil {
			b := s.TBB.Block
			t := b.Term
			wild = t.IsIndirect()
			if t.IsBranch() {
				sa = t.Target
			}
			if ft, ok := b.FallThrough(); ok {
				sb = ft
			}
			srcBlock, srcBack = b, b.BackSrc
		}
		r.flatRoot[i] = s.TBB != nil && s.TBB.Index == 0
		r.flatSrcBlock[i] = srcBlock
		r.flatSrcBack[i] = srcBack
		r.flatWild[i] = wild
		r.flatSuccA[i] = sa
		r.flatSuccB[i] = sb
		off += len(s.labels)
	}
	r.flatStart[n] = int32(off)
	r.flatVersion = a.version + 1
}

// fillView refreshes the fused-scan view: recompiles the flat arrays if the
// automaton changed (a sync ran), re-aliases the entry-table storage (it
// may have grown), loads the cursor, and zeroes the counter block. In the
// recording steady state this is a handful of header copies — no
// allocation, no table walk.
func (r *Replayer) fillView(v *trace.AutoView) {
	if r.flatVersion != r.a.version+1 {
		r.buildFlat()
	}
	v.Cur = int32(r.cur)
	v.Desynced = r.desynced
	v.Start, v.Labels, v.Targets = r.flatStart, r.flatLabels, r.flatTargets
	v.TBBs, v.Root = r.flatTBBs, r.flatRoot
	v.SrcBlock, v.SrcBack = r.flatSrcBlock, r.flatSrcBack
	v.Wild, v.SuccA, v.SuccB = r.flatWild, r.flatSuccA, r.flatSuccB
	v.EKeys, v.EVals = r.etab.keys, r.etab.targets
	v.EZeroLive, v.EZeroVal = r.etab.zeroLive, int32(r.etab.zeroState)
	v.Blocks, v.Instrs, v.TraceBlocks, v.TraceInstrs = 0, 0, 0, 0
	v.InTraceHits, v.Enters, v.Links, v.Exits = 0, 0, 0, 0
	v.GlobalLookups, v.GlobalHits, v.Desyncs, v.Resyncs = 0, 0, 0, 0
}

// foldView folds a fused scan's results back: cursor, desync flag, and the
// counter block accumulated by the strategy. The counters the resolve
// closure mutates directly (LocalHits/Misses and its global lookups) are
// disjoint from the folded ones.
func (r *Replayer) foldView(v *trace.AutoView) {
	r.cur = StateID(v.Cur)
	r.desynced = v.Desynced
	st := &r.stats
	st.Blocks += v.Blocks
	st.Instrs += v.Instrs
	st.TraceBlocks += v.TraceBlocks
	st.TraceInstrs += v.TraceInstrs
	st.InTraceHits += v.InTraceHits
	st.GlobalLookups += v.GlobalLookups
	st.GlobalHits += v.GlobalHits
	st.TraceEnters += v.Enters
	st.TraceLinks += v.Links
	st.TraceExits += v.Exits
	st.Desyncs += v.Desyncs
	st.Resyncs += v.Resyncs
}

// plausibleSuccessor reports whether control leaving tbb's block could
// possibly arrive at label: the branch target, the fall-through address, or
// anywhere at all after an indirect terminator. Labels outside this set are
// proof the automaton's block no longer matches the executing program.
func plausibleSuccessor(tbb *trace.TBB, label uint64) bool {
	b := tbb.Block
	t := b.Term
	if t.IsIndirect() {
		return true
	}
	if t.IsBranch() && label == t.Target {
		return true
	}
	ft, ok := b.FallThrough()
	return ok && label == ft
}

// AccountOnly records instrs executed without advancing the automaton;
// the online recorder uses it while a trace is being created (Algorithm 2
// performs no ChangeState in the Creating state).
func (r *Replayer) AccountOnly(instrs uint64) {
	r.account(r.cur, instrs)
}

// ForceState repositions the cursor (used by the recorder after trace
// creation finishes and the automaton has changed underneath the cursor).
func (r *Replayer) ForceState(s StateID) { r.cur = s }

// ForceDesync overrides the degradation flag alongside ForceState: the
// pipeline drain repositions the cursor to a reconciled (state, desync)
// pair before handing a chunk suffix to the sequential recorder.
func (r *Replayer) ForceDesync(d bool) { r.desynced = d }

func (r *Replayer) account(state StateID, instrs uint64) {
	r.stats.AccountTail(state, instrs)
}

// AccountTail folds instrs executed without an automaton transition into s,
// attributed to state cur — what AccountOnly does through a replayer, made
// available to callers that hold only a Stats (e.g. after ParallelReplay,
// to account a run's unreported tail from pin's Fini callback).
func (s *Stats) AccountTail(cur StateID, instrs uint64) {
	if instrs == 0 {
		// The initial pseudo-edge carries no finished block.
		return
	}
	s.Blocks++
	s.Instrs += instrs
	if cur != NTE {
		s.TraceBlocks++
		s.TraceInstrs += instrs
	}
}

// resolve handles a transition that leaves state from on label: the target
// is either another trace's entry or cold code. The state's local cache is
// consulted first when enabled; the global container otherwise. Negative
// results (exits to cold code) are cached too — that is what lets the
// paper's "No Global / Local" configuration beat "Global / No Local" on
// average: once warm, trace-side transitions never search the global
// container at all, leaving only the (cache-less) NTE state's lookups.
// AddEntry invalidates the caches (by generation), so a negative entry can
// never mask a trace created later by the online recorder.
func (r *Replayer) resolve(from StateID, label uint64) StateID {
	if r.cfg.Local {
		c := r.cacheFor(from)
		if t, ok := c.get(label); ok {
			r.stats.LocalHits++
			return t
		}
		r.stats.LocalMisses++
		t := r.lookupGlobalFrom(from, label)
		c.put(label, t)
		return t
	}
	return r.lookupGlobalFrom(from, label)
}

func (r *Replayer) lookupGlobal(label uint64) StateID {
	r.stats.GlobalLookups++
	t, ok := r.index.Lookup(label)
	if !ok {
		return NTE
	}
	r.stats.GlobalHits++
	return t
}

// cacheFor lazily allocates the local cache of a state and brings it up to
// the current generation, flushing it if AddEntry ran since its last use.
// The cache slice grows with the automaton so the online recorder can keep
// using the same replayer as states are added.
func (r *Replayer) cacheFor(s StateID) *localCache {
	if int(s) >= len(r.caches) {
		grown := make([]*localCache, r.a.NumStates())
		copy(grown, r.caches)
		r.caches = grown
	}
	c := r.caches[s]
	if c == nil {
		c = newLocalCache(r.cfg.LocalSize)
		c.gen = r.gen
		r.caches[s] = c
	} else if c.gen != r.gen {
		c.flush()
		c.gen = r.gen
	}
	return c
}
