// Package core implements TEA — the Trace Execution Automaton — the
// paper's primary contribution.
//
// A TEA is a deterministic finite automaton with one state per Trace Basic
// Block (TBB) plus the distinguished NTE state ("No Trace being Executed").
// Transition labels are program counters: feeding the dynamic PC stream
// into the automaton maps, at every instant, the executing instruction to
// the TBB instance it belongs to, without replicating any trace code.
//
// Representation. Following the paper's implementation (§4.2), the
// automaton stores explicitly only the *in-trace* transitions of each TBB
// state; every transition into a trace — from NTE (cold code) or from a
// trace exit (trace-to-trace linking) — is resolved through the entry
// table, which the replayer materializes as either a global B+ tree or a
// linked list, optionally front-ended by small per-state local caches
// (Table 4's configurations). Transitions to NTE are the default for any
// unmatched label, which is semantically identical to Algorithm 1's
// explicit TBB→NTE transitions; the logical view (FullTransitions) renders
// them explicitly for inspection and for verifying the paper's Properties 1
// and 2.
package core

import (
	"fmt"
	"sort"

	"github.com/lsc-tea/tea/internal/trace"
)

// StateID identifies a state within one Automaton. NTE is always state 0.
type StateID int32

// NTE is the "No Trace being Executed" state (paper §3).
const NTE StateID = 0

// State is one automaton state. The zero StateID is NTE, whose TBB is nil.
type State struct {
	ID  StateID
	TBB *trace.TBB

	// In-trace transitions, sorted by label. A TBB has at most a handful;
	// lookups use linear scan below a threshold and binary search above.
	labels  []uint64
	targets []StateID
}

// Next resolves an in-trace transition on label.
func (s *State) Next(label uint64) (StateID, bool) {
	n := len(s.labels)
	if n <= 4 {
		for i := 0; i < n; i++ {
			if s.labels[i] == label {
				return s.targets[i], true
			}
		}
		return NTE, false
	}
	i := sort.Search(n, func(i int) bool { return s.labels[i] >= label })
	if i < n && s.labels[i] == label {
		return s.targets[i], true
	}
	return NTE, false
}

// NumTrans returns the number of explicit in-trace transitions.
func (s *State) NumTrans() int { return len(s.labels) }

// Name renders the state: "NTE" or the paper's $$Ti.block notation.
func (s *State) Name() string {
	if s.TBB == nil {
		return "NTE"
	}
	return s.TBB.Name()
}

func (s *State) String() string { return s.Name() }

// insertTrans adds (or rebinds) one transition, keeping the label slice
// sorted. States hold at most a handful of transitions, so the shifting
// insert is cheaper than any rebuild — and it is what makes SyncTrace cost
// O(changed edges) instead of O(trace).
func (s *State) insertTrans(label uint64, target StateID) {
	n := len(s.labels)
	i := sort.Search(n, func(i int) bool { return s.labels[i] >= label })
	if i < n && s.labels[i] == label {
		s.targets[i] = target
		return
	}
	s.labels = append(s.labels, 0)
	copy(s.labels[i+1:], s.labels[i:])
	s.labels[i] = label
	s.targets = append(s.targets, 0)
	copy(s.targets[i+1:], s.targets[i:])
	s.targets[i] = target
}

// Automaton is a TEA: the state set plus the trace-entry table.
type Automaton struct {
	states []*State
	byTBB  map[*trace.TBB]StateID

	// entries maps a trace entry address to its head state; it is the
	// canonical content of the NTE transition table and of trace-to-trace
	// linking.
	entries map[uint64]StateID

	// entriesCache is the sorted rendering of entries, rebuilt lazily when
	// entriesDirty: Entries() is called from verifier and dump loops and
	// must not pay a sort-and-allocate per call.
	entriesCache []Entry
	entriesDirty bool

	// synced remembers, per trace, how much of the trace (TBB count and
	// link-log length) this automaton has already folded in, so SyncTrace
	// applies only the delta.
	synced map[*trace.Trace]syncMark

	// version counts structural mutations (SyncTrace calls): consumers that
	// compile the automaton into a flat form (the batched recording path)
	// compare it against their build stamp to know when to rebuild.
	version uint64

	set *trace.Set
}

// syncMark is the high-water mark of one trace's state already mirrored
// into the automaton.
type syncMark struct {
	tbbs  int
	links int
}

// NewAutomaton creates a TEA containing only the NTE state (Algorithm 2's
// InitializeTEA).
func NewAutomaton(set *trace.Set) *Automaton {
	return &Automaton{
		states:  []*State{{ID: NTE}},
		byTBB:   make(map[*trace.TBB]StateID),
		entries: make(map[uint64]StateID),
		synced:  make(map[*trace.Trace]syncMark),
		set:     set,
	}
}

// Build converts a trace set into its TEA (the paper's Algorithm 1).
//
// Lines 1-2 initialize the automaton with the lone NTE state; lines 3-5 add
// one state per TBB (Property 1: every TBB execution is representable);
// lines 6-17 add the transitions: in-trace successor edges become explicit
// labeled transitions, successors outside any trace become (implicit)
// transitions to NTE, and the NTE→trace-head transitions are recorded in
// the entry table (Property 2: every transition of every TBB is
// represented).
func Build(set *trace.Set) *Automaton {
	a := NewAutomaton(set)
	for _, t := range set.Traces {
		a.SyncTrace(t)
	}
	return a
}

// Set returns the trace set this automaton represents.
func (a *Automaton) Set() *trace.Set { return a.set }

// NumStates returns the state count including NTE.
func (a *Automaton) NumStates() int { return len(a.states) }

// NumTrans returns the total explicit in-trace transitions.
func (a *Automaton) NumTrans() int {
	n := 0
	for _, s := range a.states {
		n += len(s.labels)
	}
	return n
}

// State returns the state with the given id.
func (a *Automaton) State(id StateID) *State { return a.states[id] }

// Version returns the structural mutation counter: it advances on every
// SyncTrace, so a consumer holding a compiled snapshot can tell whether the
// automaton has changed underneath it since the snapshot was taken.
func (a *Automaton) Version() uint64 { return a.version }

// StateFor returns the state representing tbb.
func (a *Automaton) StateFor(tbb *trace.TBB) (StateID, bool) {
	id, ok := a.byTBB[tbb]
	return id, ok
}

// EntryFor returns the head state of the trace entered at addr, if any.
// This is the canonical (structure-free) form of the global lookup.
func (a *Automaton) EntryFor(addr uint64) (StateID, bool) {
	id, ok := a.entries[addr]
	return id, ok
}

// Entries returns the entry table as (address, head state) pairs in
// ascending address order. The slice is cached and invalidated by
// SyncTrace; callers must treat it as read-only.
func (a *Automaton) Entries() []Entry {
	if a.entriesDirty || a.entriesCache == nil {
		out := a.entriesCache[:0]
		if cap(out) < len(a.entries) {
			out = make([]Entry, 0, len(a.entries))
		}
		for addr, id := range a.entries {
			out = append(out, Entry{addr, id})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
		a.entriesCache = out
		a.entriesDirty = false
	}
	return a.entriesCache
}

// Entry is one NTE→trace transition: a trace entry address and its head
// state.
type Entry struct {
	Addr  uint64
	State StateID
}

// SyncTrace brings the automaton up to date with t: states are created for
// any new TBB instances, the new link events of t's change log are applied
// as transition deltas, and the entry table learns t's entry address. It
// is what the online recorder calls each time a trace is created or
// extended, and what Build calls per trace.
//
// The sync is incremental: the automaton remembers how many TBBs and link
// events of t it has already mirrored, so extending an N-TBB trace by one
// block costs O(new edges), not O(N) map rebuilds. Replaying the link-log
// suffix reproduces exactly the successor tables the TBBs hold, because
// the log records every effective Succs mutation in application order. The
// first sync of a trace reads the Succs maps themselves instead — for a
// well-formed trace the two are identical (the log's final state *is* the
// Succs content), and it keeps the automaton faithful to traces whose
// successor tables were populated outside Link (hand-built or corrupted
// fixtures the static verifier must still see).
func (a *Automaton) SyncTrace(t *trace.Trace) {
	mark, seen := a.synced[t]
	tbbs := t.TBBs
	for _, tbb := range tbbs[mark.tbbs:] {
		if _, ok := a.byTBB[tbb]; ok {
			continue
		}
		id := StateID(len(a.states))
		a.states = append(a.states, &State{ID: id, TBB: tbb})
		a.byTBB[tbb] = id
	}
	log := t.LinkLog()
	if !seen {
		for _, tbb := range tbbs {
			from := a.states[a.byTBB[tbb]]
			for label, succ := range tbb.Succs {
				from.insertTrans(label, a.byTBB[succ])
			}
		}
	} else {
		for _, ev := range log[mark.links:] {
			a.states[a.byTBB[ev.From]].insertTrans(ev.Label, a.byTBB[ev.To])
		}
	}
	head := a.byTBB[t.Head()]
	if old, ok := a.entries[t.EntryAddr()]; !ok || old != head {
		a.entries[t.EntryAddr()] = head
		a.entriesDirty = true
	}
	a.synced[t] = syncMark{tbbs: len(tbbs), links: len(log)}
	a.version++
}

// Clone returns a deep copy of the automaton's own structure: states,
// transition tables, entry table and sync marks. The copy shares the
// (append-only) trace set and TBB objects with the original, so it remains
// a valid automaton over the same traces; the online recorder uses it to
// publish read-only snapshots while recording continues on the original.
func (a *Automaton) Clone() *Automaton {
	c := &Automaton{
		states:       make([]*State, len(a.states)),
		byTBB:        make(map[*trace.TBB]StateID, len(a.byTBB)),
		entries:      make(map[uint64]StateID, len(a.entries)),
		entriesDirty: true,
		synced:       make(map[*trace.Trace]syncMark, len(a.synced)),
		version:      a.version,
		set:          a.set,
	}
	for i, s := range a.states {
		ns := &State{ID: s.ID, TBB: s.TBB}
		ns.labels = append([]uint64(nil), s.labels...)
		ns.targets = append([]StateID(nil), s.targets...)
		c.states[i] = ns
	}
	for k, v := range a.byTBB {
		c.byTBB[k] = v
	}
	for k, v := range a.entries {
		c.entries[k] = v
	}
	for k, v := range a.synced {
		c.synced[k] = v
	}
	return c
}

// Transition is one logical DFA transition for inspection: from --label-->
// to. InTrace distinguishes explicit in-trace edges from entry-table and
// default-NTE edges.
type Transition struct {
	From    StateID
	Label   uint64
	To      StateID
	InTrace bool
}

// FullTransitions renders the complete logical transition relation of one
// state, including the transitions Algorithm 1 would add explicitly:
// in-trace successor edges, trace-linking edges for static successors that
// enter other traces, and TBB→NTE edges for static successors in cold
// code. For NTE it renders the entry table.
func (a *Automaton) FullTransitions(id StateID) []Transition {
	s := a.states[id]
	var out []Transition
	if s.TBB == nil {
		for _, e := range a.Entries() {
			out = append(out, Transition{NTE, e.Addr, e.State, false})
		}
		return out
	}
	seen := make(map[uint64]bool)
	for i, label := range s.labels {
		out = append(out, Transition{id, label, s.targets[i], true})
		seen[label] = true
	}
	for _, succ := range staticSuccs(s.TBB) {
		if seen[succ] {
			continue
		}
		seen[succ] = true
		if to, ok := a.entries[succ]; ok {
			out = append(out, Transition{id, succ, to, false})
		} else {
			out = append(out, Transition{id, succ, NTE, false})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// staticSuccs returns the statically known successor addresses of a TBB's
// block: the branch target of a direct branch and the fall-through address.
// Indirect terminators contribute no static successors.
func staticSuccs(tbb *trace.TBB) []uint64 {
	term := tbb.Block.Term
	var out []uint64
	if term.IsBranch() && !term.IsIndirect() && term.Op.String() != "halt" {
		out = append(out, term.Target)
	}
	if ft, ok := tbb.Block.FallThrough(); ok {
		out = append(out, ft)
	}
	return out
}

// Check verifies the automaton's structural invariants and the paper's
// correctness properties against its trace set:
//
//   - Property 1: every TBB of every trace has exactly one state.
//   - Property 2: every in-trace successor edge of every TBB is an explicit
//     transition, and every trace entry is in the entry table.
//   - Determinism: transition labels within a state are strictly sorted
//     and unique, and all targets are valid states.
func (a *Automaton) Check() error {
	if len(a.states) == 0 || a.states[0].TBB != nil {
		return fmt.Errorf("core: state 0 must be NTE")
	}
	seen := make(map[*trace.TBB]StateID)
	for _, s := range a.states[1:] {
		if s.TBB == nil {
			return fmt.Errorf("core: non-NTE state %d has no TBB", s.ID)
		}
		if prev, dup := seen[s.TBB]; dup {
			return fmt.Errorf("core: TBB %s has two states (%d, %d)", s.TBB, prev, s.ID)
		}
		seen[s.TBB] = s.ID
		for i := range s.labels {
			if i > 0 && s.labels[i-1] >= s.labels[i] {
				return fmt.Errorf("core: state %d labels not strictly sorted", s.ID)
			}
			if int(s.targets[i]) <= 0 || int(s.targets[i]) >= len(a.states) {
				return fmt.Errorf("core: state %d transition to invalid state %d", s.ID, s.targets[i])
			}
		}
	}
	if a.set == nil {
		return nil
	}
	for _, t := range a.set.Traces {
		for _, tbb := range t.TBBs {
			id, ok := a.byTBB[tbb]
			if !ok {
				return fmt.Errorf("core: property 1 violated: %s has no state", tbb)
			}
			for label, succ := range tbb.Succs {
				got, ok := a.states[id].Next(label)
				if !ok || got != a.byTBB[succ] {
					return fmt.Errorf("core: property 2 violated: %s --0x%x--> %s missing", tbb, label, succ)
				}
			}
		}
		if head, ok := a.entries[t.EntryAddr()]; !ok || head != a.byTBB[t.Head()] {
			return fmt.Errorf("core: property 2 violated: entry 0x%x of %s not in entry table", t.EntryAddr(), t)
		}
	}
	return nil
}
