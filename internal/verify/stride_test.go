package verify

import (
	"strings"
	"sync"
	"testing"

	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/dbt"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/workload"
)

// strideFixtureOnce caches the specialized fixture: capture and
// specialization are deterministic, and the mutant tests only ever corrupt
// deep copies of the table, never the shared Compiled.
var strideFixtureOnce struct {
	sync.Once
	spec *core.Compiled
	tab  []core.StrideEntry
}

// strideFixture builds a specialized compiled form from the 901.steady
// cycle workload — the stream is ~99.9% fused, so Specialize always admits
// entries — and returns it with a mutable copy of its stride table.
func strideFixture(t *testing.T) (*core.Compiled, []core.StrideEntry) {
	t.Helper()
	strideFixtureOnce.Do(func() {
		ws, ok := workload.ByName("901.steady")
		if !ok {
			return
		}
		p, err := workload.Generate(ws, 200_000)
		if err != nil {
			return
		}
		d, err := dbt.New().Run(p, "mret", trace.Config{HotThreshold: 8}, 0)
		if err != nil {
			return
		}
		cap := teatool.NewCaptureTool()
		if _, err := pin.New().Run(p, cap, 0); err != nil {
			return
		}
		c := core.Compile(core.Build(d.Set), core.ConfigGlobalLocal)
		spec := core.Specialize(c, cap.Stream())
		if !spec.Specialized() {
			return
		}
		strideFixtureOnce.spec = spec
		strideFixtureOnce.tab = spec.StrideTable()
	})
	if strideFixtureOnce.spec == nil {
		t.Fatal("steady-state fixture yielded no stride entries")
	}
	return strideFixtureOnce.spec, core.StrideTableCopy(strideFixtureOnce.tab)
}

// strideReport reattaches a (possibly corrupted) table and runs the full
// compiled rule set — exactly the path teadump -verify -stride takes.
func strideReport(spec *core.Compiled, tab []core.StrideEntry) *Report {
	return Compiled(spec.WithStrideTable(tab))
}

// TestStrideFixtureVerifiesClean: the table Specialize itself admitted must
// pass C-STRIDE with zero findings (the bisimulation covers the specialized
// form), both as-is and after a wire round trip.
func TestStrideFixtureVerifiesClean(t *testing.T) {
	spec, tab := strideFixture(t)
	if r := Compiled(spec); !r.Clean() {
		t.Fatalf("specialized form not clean:\n%s", r)
	}
	dec, err := core.DecodeStrideTable(core.EncodeStrideTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if r := strideReport(spec, dec); !r.Clean() {
		t.Fatalf("round-tripped table not clean:\n%s", r)
	}
}

// TestStrideMutantsCaught: every semantic field of a stride entry is load-
// bearing — forging any of them (the counters the kernel adds per fused
// traversal, the trajectory the desync re-entry uses, the miss
// classification the warm gate trusts) must surface as a C-STRIDE error.
func TestStrideMutantsCaught(t *testing.T) {
	spec, clean := strideFixture(t)
	mutants := []struct {
		name   string
		mutate func(tab []core.StrideEntry)
	}{
		{"instrs", func(tab []core.StrideEntry) { tab[0].Instrs++ }},
		{"edges", func(tab []core.StrideEntry) { tab[0].Edges++ }},
		{"exit", func(tab []core.StrideEntry) { tab[0].Exit++ }},
		{"crossings", func(tab []core.StrideEntry) { tab[0].Crossings++ }},
		{"pattern-label", func(tab []core.StrideEntry) { tab[0].Pattern[0].Label ^= 0x40 }},
		{"pattern-instrs", func(tab []core.StrideEntry) { tab[0].Pattern[0].Instrs++ }},
		{"trajectory", func(tab []core.StrideEntry) { tab[0].States[0]++ }},
		{"miss-pos", func(tab []core.StrideEntry) { tab[0].MissPos = append(tab[0].MissPos, 0) }},
		{"delta-global", func(tab []core.StrideEntry) { tab[0].DeltaGlobal.Blocks++ }},
		{"delta-local", func(tab []core.StrideEntry) { tab[0].DeltaLocal.LocalHits++ }},
		{"tile-reps", func(tab []core.StrideEntry) {
			if tab[0].TileReps > 0 {
				tab[0].TileReps++
			} else {
				tab[0].TileReps = 1
			}
		}},
		{"anchor-range", func(tab []core.StrideEntry) { tab[0].Anchor = core.StateID(1 << 20) }},
		{"empty-pattern", func(tab []core.StrideEntry) { tab[0].Pattern = nil }},
		{"chain-range", func(tab []core.StrideEntry) { tab[0].Next = int32(len(tab)) + 7 }},
	}
	for _, m := range mutants {
		t.Run(m.name, func(t *testing.T) {
			tab := core.StrideTableCopy(clean)
			m.mutate(tab)
			requireRule(t, strideReport(spec, tab), "C-STRIDE")
		})
	}
}

// TestStrideChainCycleCaught: a Next pointer looping back onto its own
// entry must be flagged as a non-terminating chain, not walked forever.
func TestStrideChainCycleCaught(t *testing.T) {
	spec, tab := strideFixture(t)
	for i := range tab {
		tab[i].Next = int32(i) // every chain becomes a self-loop
	}
	r := strideReport(spec, tab)
	requireRule(t, r, "C-STRIDE")
	found := false
	for _, f := range r.Findings {
		if f.Rule == "C-STRIDE" && strings.Contains(f.Msg, "cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no chain-cycle finding:\n%s", r)
	}
}

// TestStrideWrongAnchorChainCaught: an entry re-anchored at a different
// state is unreachable from its true anchor's chain and mis-anchored on the
// one that now heads it.
func TestStrideWrongAnchorChainCaught(t *testing.T) {
	spec, tab := strideFixture(t)
	other := tab[0].Anchor + 1
	if int(other) >= spec.NumStates() {
		other = 0
	}
	tab[0].Anchor = other
	requireRule(t, strideReport(spec, tab), "C-STRIDE")
}

// TestCompiledSoARuleHolds: the geometry rule passes on this architecture
// (the hot record is compile-time asserted to 32 bytes, so C-SOA firing
// would mean the audit constants drifted from the layout).
func TestCompiledSoARuleHolds(t *testing.T) {
	r := &Report{}
	compiledSoA(r)
	if !r.Clean() {
		t.Fatalf("C-SOA fired on the real layout:\n%s", r)
	}
	if core.HotRecSize != 32 || core.ColdRecSize > core.HotRecSize {
		t.Fatalf("geometry: hot=%d cold=%d", core.HotRecSize, core.ColdRecSize)
	}
}
