// Package verify is a static analyzer over the three TEA representations —
// the reference Automaton, the compiled flat form, and serialized images —
// that proves the paper's invariants by structural inspection alone: no PC
// stream, no replay.
//
// Until now every correctness guarantee in this repository was dynamic,
// established by differential replay over sampled streams. This package
// closes that gap the way model checking does for learned trace automata:
// each rule inspects one representation and reports violations as Findings
// (rule ID, severity, locus), so a corrupt image can be flagged before a
// single edge is replayed, and the compiled form is proven structurally
// equivalent to the automaton it was frozen from instead of being trusted
// on replay samples.
//
// Rule families (see DESIGN.md §10 for the rule → paper-construct map):
//
//	A-*  reference Automaton: determinism (Algorithm 1), state/TBB
//	     bijection, trace-chain linearity, entry-table soundness,
//	     reachability, NTE-soundness, CFG consistency against the image.
//	C-*  core.Compiled: arena bounds, inline-slot and plausibility-field
//	     agreement, entry-table placement and load, presence-filter
//	     coverage, B+ tree shape, and a bisimulation-style structural
//	     equivalence proof against the source Automaton.
//
// Serialized bytes are audited end-to-end by Image: anything core.Decode
// accepts must also pass both rule families (or the findings say exactly
// which rule rejected it and where).
package verify

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lsc-tea/tea/internal/core"
)

// Severity grades a finding.
type Severity int

const (
	// Warn marks representable-but-suspicious structure the replayer
	// tolerates (for example a hot cycle that can never exit to NTE).
	Warn Severity = iota
	// Error marks structure that violates a paper invariant; no recorder or
	// compiler in this repository produces it.
	Error
)

func (s Severity) String() string {
	if s == Warn {
		return "warn"
	}
	return "error"
}

// Finding is one rule violation: which rule fired, how bad it is, and the
// locus — the state and/or byte offset it anchors to — so CI output diffs
// cleanly and a reader can jump straight to the defect.
type Finding struct {
	// Rule is the stable rule identifier (e.g. "A-DET", "C-ENT").
	Rule string
	// Severity grades the finding.
	Severity Severity
	// State is the automaton/compiled state the finding anchors to, or -1
	// when the finding has no single-state locus.
	State core.StateID
	// Offset is the byte offset for wire-format findings, or -1.
	Offset int
	// Locus is the human-readable anchor ("state 5 ($$T2.loop)", "ent[12]").
	Locus string
	// Msg says what is wrong.
	Msg string
}

func (f Finding) String() string {
	locus := f.Locus
	if locus == "" {
		locus = "-"
	}
	return fmt.Sprintf("%s %s %s: %s", f.Rule, f.Severity, locus, f.Msg)
}

// Report is an ordered, diffable collection of findings.
type Report struct {
	Findings []Finding
}

func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// errf records an Error-severity finding anchored at state (or -1).
func (r *Report) errf(rule string, state core.StateID, locus, format string, args ...any) {
	r.add(Finding{Rule: rule, Severity: Error, State: state, Offset: -1,
		Locus: locus, Msg: fmt.Sprintf(format, args...)})
}

// warnf records a Warn-severity finding anchored at state (or -1).
func (r *Report) warnf(rule string, state core.StateID, locus, format string, args ...any) {
	r.add(Finding{Rule: rule, Severity: Warn, State: state, Offset: -1,
		Locus: locus, Msg: fmt.Sprintf(format, args...)})
}

// Merge appends another report's findings.
func (r *Report) Merge(o *Report) {
	if o != nil {
		r.Findings = append(r.Findings, o.Findings...)
	}
}

// Clean reports whether no rule fired at all.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// OK reports whether no Error-severity rule fired (warnings allowed).
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return false
		}
	}
	return true
}

// Errs returns the number of Error-severity findings.
func (r *Report) Errs() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == Error {
			n++
		}
	}
	return n
}

// Err returns nil when OK, otherwise an error summarizing the first
// Error-severity finding and the total count.
func (r *Report) Err() error {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return fmt.Errorf("verify: %d finding(s), first: %s", r.Errs(), f)
		}
	}
	return nil
}

// normalize sorts findings into the canonical (rule, state, offset, msg)
// order so that report output is deterministic and diffable across runs.
func (r *Report) normalize() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.State != b.State {
			return a.State < b.State
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return a.Msg < b.Msg
	})
}

// String renders one finding per line in canonical order; empty for a
// clean report.
func (r *Report) String() string {
	r.normalize()
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
