package verify

import (
	"fmt"

	"github.com/lsc-tea/tea/internal/btree"
	"github.com/lsc-tea/tea/internal/core"
)

// Compiled statically checks a compiled flat automaton: the arena layout,
// the inline fast slots, the precomputed plausibility fields, the
// open-addressed entry table and its presence filter, the B+ tree the
// replay path bulk-loads from the same entries, and — capping them all — a
// bisimulation-style structural equivalence proof against the Automaton
// the form was compiled from, so compiled correctness no longer rests on
// replay sampling.
//
// Rules:
//
//	C-OFF    arena offsets are monotone and bounded; the final offset spans
//	         the label/target arenas exactly.
//	C-SPAN   every state's span is strictly sorted with valid targets and
//	         equals the automaton state's transition table.
//	C-SLOT   the two inline fast slots agree with the span (two-slot copy,
//	         single-transition duplication, impossible-label fill).
//	C-PLAUS  the precomputed plausibility fields (flags, branch target,
//	         fall-through) match the state's block terminator.
//	C-ENT    the entry table is a power-of-two open-addressed map at <=50%
//	         load whose occupied slots are exactly the automaton's entries,
//	         each reachable from its home slot by linear probing.
//	C-FILT   the presence filter covers every entry (no false negatives).
//	C-LOCAL  the embedded local-cache geometry matches the configuration.
//	C-BTREE  the bulk-loaded B+ tree over the same entries passes the
//	         structural check at minimal height with every key retrievable.
//	C-EQ     structural equivalence: state-by-state, the compiled
//	         transition function and entry lookup agree with the reference
//	         automaton over the complete relevant label alphabet.
//	C-SOA    the SoA record geometry holds: the hot record is exactly half
//	         a 64-byte cache line (two per line), the cold record no wider.
//	C-STRIDE every fused trace-cycle entry is byte-identical to what the
//	         production admission simulation derives for its (anchor,
//	         pattern) — trajectory, miss classification, crossings, both
//	         per-traversal Stats deltas, tile — and the per-state chains
//	         are well-formed (in-range, anchor-consistent, acyclic).
func Compiled(c *core.Compiled) *Report {
	r := &Report{}
	v := c.Audit()
	a := c.Automaton()
	compiledStructural(r, v, a, c.Config())
	compiledBisim(r, c, a, v)
	compiledBTree(r, a.Entries(), c.Config().Fanout)
	compiledSoA(r)
	compiledStride(r, c, v)
	r.normalize()
	return r
}

// compiledSoA proves C-SOA: the structure-of-arrays split's record geometry.
// The hot record (two inline slots + stride chain head) must stay exactly
// half a 64-byte cache line so two states share a line on the fast path; the
// cold plausibility record must not grow past it, or the slot-miss path
// starts paying more lines than the layout promised.
func compiledSoA(r *Report) {
	if core.HotRecSize != 32 {
		r.errf("C-SOA", -1, "hot", "hot record is %d bytes, want exactly 32 (two per cache line)", core.HotRecSize)
	}
	if core.ColdRecSize > core.HotRecSize {
		r.errf("C-SOA", -1, "cold", "cold record (%d bytes) wider than the hot record (%d)", core.ColdRecSize, core.HotRecSize)
	}
}

// compiledStride proves C-STRIDE over the audit snapshot. Every entry of
// the fused trace-cycle table is re-proven through the production admission
// simulation (core.StrideProve is the same code path Specialize admits
// entries through): a decoded or forged entry passes only by being
// byte-identical to what the simulation derives for its anchor and pattern.
// On top of the per-entry proof the per-state chains must be structurally
// sound: heads in range and anchored at their state, Next links in range
// with the same anchor, no cycles, and no entry orphaned off every chain.
func compiledStride(r *Report, c *core.Compiled, v core.CompiledAudit) {
	tab := v.Stride
	n := len(v.States)
	for i := range tab {
		e := &tab[i]
		locus := fmt.Sprintf("stride[%d]", i)
		if len(e.Pattern) == 0 || len(e.Pattern) > core.MaxStrideLen {
			r.errf("C-STRIDE", e.Anchor, locus, "pattern length %d outside (0, %d]", len(e.Pattern), core.MaxStrideLen)
			continue
		}
		if e.Anchor < 0 || int(e.Anchor) >= n {
			r.errf("C-STRIDE", e.Anchor, locus, "anchor %d outside the %d-state form", e.Anchor, n)
			continue
		}
		if e.Next != core.NoStride && (e.Next < 0 || int(e.Next) >= len(tab)) {
			r.errf("C-STRIDE", e.Anchor, locus, "chain link %d outside the %d-entry table", e.Next, len(tab))
		}
		want, ok := c.StrideProve(e.Anchor, e.Pattern)
		if !ok {
			r.errf("C-STRIDE", e.Anchor, locus, "pattern is inadmissible: the production simulation desyncs or does not close on the anchor")
			continue
		}
		if e.Exit != want.Exit {
			r.errf("C-STRIDE", e.Anchor, locus, "exit %d, simulation proves %d", e.Exit, want.Exit)
		}
		if e.Edges != want.Edges || e.Instrs != want.Instrs {
			r.errf("C-STRIDE", e.Anchor, locus, "edges/instrs %d/%d, simulation proves %d/%d", e.Edges, e.Instrs, want.Edges, want.Instrs)
		}
		if !stateSliceEq(e.States, want.States) {
			r.errf("C-STRIDE", e.Anchor, locus, "trajectory %v, simulation proves %v", e.States, want.States)
		}
		if !int32SliceEq(e.MissPos, want.MissPos) {
			r.errf("C-STRIDE", e.Anchor, locus, "miss positions %v, simulation proves %v", e.MissPos, want.MissPos)
		}
		if e.Crossings != want.Crossings {
			r.errf("C-STRIDE", e.Anchor, locus, "crossings %d, simulation proves %d", e.Crossings, want.Crossings)
		}
		if e.DeltaGlobal != want.DeltaGlobal {
			r.errf("C-STRIDE", e.Anchor, locus, "cache-less delta %+v, simulation proves %+v", e.DeltaGlobal, want.DeltaGlobal)
		}
		if e.DeltaLocal != want.DeltaLocal {
			r.errf("C-STRIDE", e.Anchor, locus, "warm-cache delta %+v, simulation proves %+v", e.DeltaLocal, want.DeltaLocal)
		}
		if e.TileReps != want.TileReps || !edgeSliceEq(e.Tile, want.Tile) {
			r.errf("C-STRIDE", e.Anchor, locus, "tile (%d reps, %d edges) does not match the derived tile (%d reps, %d edges)",
				e.TileReps, len(e.Tile), want.TileReps, len(want.Tile))
		}
	}

	// Chain well-formedness over the hot records' heads.
	reached := make([]bool, len(tab))
	for i := 0; i < n; i++ {
		head := v.States[i].Stride
		if head == core.NoStride {
			continue
		}
		id := core.StateID(i)
		locus := fmt.Sprintf("state %d chain", i)
		if head < 0 || int(head) >= len(tab) {
			r.errf("C-STRIDE", id, locus, "chain head %d outside the %d-entry table", head, len(tab))
			continue
		}
		si, steps := head, 0
		for si != core.NoStride {
			if si < 0 || int(si) >= len(tab) {
				r.errf("C-STRIDE", id, locus, "chain link %d outside the %d-entry table", si, len(tab))
				break
			}
			if tab[si].Anchor != id {
				r.errf("C-STRIDE", id, locus, "chain entry %d anchored at %d, not this state", si, tab[si].Anchor)
				break
			}
			reached[si] = true
			if steps++; steps > len(tab) {
				r.errf("C-STRIDE", id, locus, "chain does not terminate within %d entries (cycle)", len(tab))
				break
			}
			si = tab[si].Next
		}
	}
	for i := range tab {
		if !reached[i] {
			r.warnf("C-STRIDE", tab[i].Anchor, fmt.Sprintf("stride[%d]", i), "entry unreachable from its anchor's chain (dead weight, never fused)")
		}
	}
}

func stateSliceEq(a, b []core.StateID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int32SliceEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func edgeSliceEq(a, b []core.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compiledStructural runs every rule that needs only the audit snapshot
// and the source automaton. Tests corrupt a snapshot to prove rules fire.
func compiledStructural(r *Report, v core.CompiledAudit, a *core.Automaton, cfg core.LookupConfig) {
	n := len(v.States)
	if a.NumStates() != n {
		r.errf("C-OFF", -1, "states", "compiled has %d states, automaton has %d", n, a.NumStates())
		return
	}
	if len(v.Off) != n+1 {
		r.errf("C-OFF", -1, "off", "offset table has %d entries for %d states", len(v.Off), n)
		return
	}
	if v.Off[0] != 0 {
		r.errf("C-OFF", -1, "off[0]", "first offset is %d, want 0", v.Off[0])
	}
	if len(v.Labels) != len(v.Targets) {
		r.errf("C-OFF", -1, "arenas", "label arena %d and target arena %d differ", len(v.Labels), len(v.Targets))
		return
	}
	if int(v.Off[n]) != len(v.Labels) {
		r.errf("C-OFF", -1, fmt.Sprintf("off[%d]", n), "final offset %d does not span the %d-entry arena", v.Off[n], len(v.Labels))
	}
	for i := 0; i < n; i++ {
		if v.Off[i] > v.Off[i+1] {
			r.errf("C-OFF", core.StateID(i), fmt.Sprintf("off[%d]", i), "offsets not monotone: %d > %d", v.Off[i], v.Off[i+1])
			return
		}
		if int(v.Off[i+1]) > len(v.Labels) {
			r.errf("C-OFF", core.StateID(i), fmt.Sprintf("off[%d]", i+1), "offset %d beyond arena of %d", v.Off[i+1], len(v.Labels))
			return
		}
	}

	for i := 0; i < n; i++ {
		id := core.StateID(i)
		locus := fmt.Sprintf("state %d", i)
		span := v.Labels[v.Off[i]:v.Off[i+1]]
		tgts := v.Targets[v.Off[i]:v.Off[i+1]]

		for k, label := range span {
			if k > 0 && span[k-1] >= label {
				r.errf("C-SPAN", id, locus, "span labels not strictly sorted at %d (0x%x after 0x%x)", k, label, span[k-1])
			}
			if tgts[k] <= 0 || int(tgts[k]) >= n {
				r.errf("C-SPAN", id, locus, "span target %d invalid on label 0x%x", tgts[k], label)
			}
		}
		want := a.State(id)
		wl, wt := want.Labels(), want.Targets()
		if len(wl) != len(span) {
			r.errf("C-SPAN", id, locus, "span has %d transitions, automaton state has %d", len(span), len(wl))
		} else {
			for k := range span {
				if span[k] != wl[k] || tgts[k] != wt[k] {
					r.errf("C-SPAN", id, locus, "span[%d] = (0x%x -> %d), automaton has (0x%x -> %d)", k, span[k], tgts[k], wl[k], wt[k])
				}
			}
		}

		rec := v.States[i]
		switch {
		case len(span) >= 2:
			if rec.Lab0 != span[0] || rec.Tgt0 != tgts[0] || rec.Lab1 != span[1] || rec.Tgt1 != tgts[1] {
				r.errf("C-SLOT", id, locus, "fast slots (0x%x->%d, 0x%x->%d) disagree with span head (0x%x->%d, 0x%x->%d)",
					rec.Lab0, rec.Tgt0, rec.Lab1, rec.Tgt1, span[0], tgts[0], span[1], tgts[1])
			}
		case len(span) == 1:
			if rec.Lab0 != span[0] || rec.Tgt0 != tgts[0] || rec.Lab1 != span[0] || rec.Tgt1 != tgts[0] {
				r.errf("C-SLOT", id, locus, "single transition 0x%x->%d not duplicated into both fast slots", span[0], tgts[0])
			}
		default:
			if rec.Lab0 != core.ImpossibleLabel || rec.Lab1 != core.ImpossibleLabel {
				r.errf("C-SLOT", id, locus, "empty state's fast slots hold 0x%x/0x%x, want impossible-label fill", rec.Lab0, rec.Lab1)
			}
		}

		checkPlausFields(r, id, locus, rec, want)
	}

	checkEntryTable(r, v, a)
	checkFilter(r, v, a)

	// C-LOCAL: embedded cache geometry.
	switch {
	case !cfg.Local && v.LocalSize != 0:
		r.errf("C-LOCAL", -1, "local", "caches disabled by config but LocalSize is %d", v.LocalSize)
	case cfg.Local && v.LocalSize != cfg.LocalSize:
		r.errf("C-LOCAL", -1, "local", "LocalSize %d does not match configured %d", v.LocalSize, cfg.LocalSize)
	case v.LocalSize != 0 && v.LocalSize&(v.LocalSize-1) != 0:
		r.errf("C-LOCAL", -1, "local", "LocalSize %d is not a power of two", v.LocalSize)
	}
}

// checkPlausFields proves C-PLAUS: the 64-byte record's desync-check fields
// must equal what Compile derives from the state's block terminator.
func checkPlausFields(r *Report, id core.StateID, locus string, rec core.StateAudit, want *core.State) {
	var flags uint8
	var btgt, fthru uint64
	if want.TBB != nil {
		term := want.TBB.Block.Term
		if term.IsIndirect() {
			flags |= core.AuditFlagIndirect
		} else if term.IsBranch() {
			flags |= core.AuditFlagBranch
			btgt = term.Target
		}
		if ft, ok := want.TBB.Block.FallThrough(); ok {
			flags |= core.AuditFlagFallThru
			fthru = ft
		}
	}
	if rec.Flags != flags {
		r.errf("C-PLAUS", id, locus, "flags 0x%x, block terminator implies 0x%x", rec.Flags, flags)
	}
	if rec.BranchTarget != btgt {
		r.errf("C-PLAUS", id, locus, "branch target 0x%x, block terminator implies 0x%x", rec.BranchTarget, btgt)
	}
	if rec.FallThrough != fthru {
		r.errf("C-PLAUS", id, locus, "fall-through 0x%x, block implies 0x%x", rec.FallThrough, fthru)
	}
}

// checkEntryTable proves C-ENT on the snapshot: table geometry, load
// factor, content agreement with the automaton's entry table, and probe
// reachability of every entry from its home slot.
func checkEntryTable(r *Report, v core.CompiledAudit, a *core.Automaton) {
	size := len(v.Ent)
	if size < 8 || size&(size-1) != 0 {
		r.errf("C-ENT", -1, "ent", "table size %d is not a power of two >= 8", size)
		return
	}
	if v.EntMask != uint64(size-1) {
		r.errf("C-ENT", -1, "ent", "mask 0x%x does not match size %d", v.EntMask, size)
	}
	if size != 1<<(64-int(v.EntShift)) {
		r.errf("C-ENT", -1, "ent", "shift %d does not match size %d", v.EntShift, size)
	}

	entries := a.Entries()
	want := make(map[uint64]core.StateID, len(entries))
	for _, e := range entries {
		want[e.Addr] = e.State
	}

	occupied := 0
	seen := make(map[uint64]bool, len(entries))
	for i, slot := range v.Ent {
		if slot.Val < 0 {
			continue
		}
		occupied++
		locus := fmt.Sprintf("ent[%d]", i)
		if seen[slot.Key] {
			r.errf("C-ENT", slot.Val, locus, "duplicate key 0x%x", slot.Key)
		}
		seen[slot.Key] = true
		w, ok := want[slot.Key]
		switch {
		case !ok:
			r.errf("C-ENT", slot.Val, locus, "fabricated entry 0x%x -> %d not in the automaton", slot.Key, slot.Val)
		case w != slot.Val:
			r.errf("C-ENT", slot.Val, locus, "entry 0x%x -> %d, automaton has %d", slot.Key, slot.Val, w)
		}
	}
	if occupied != v.EntLen {
		r.errf("C-ENT", -1, "ent", "EntLen %d but %d occupied slots", v.EntLen, occupied)
	}
	if occupied != len(entries) {
		r.errf("C-ENT", -1, "ent", "%d occupied slots for %d automaton entries", occupied, len(entries))
	}
	if 2*occupied > size {
		r.errf("C-ENT", -1, "ent", "load %d/%d exceeds 50%%", occupied, size)
	}

	// Probe reachability: each entry must be found by linear probing from
	// its home slot without crossing an empty slot.
	for _, e := range entries {
		i := (e.Addr * core.FibHash) >> v.EntShift
		found := false
		for probes := 0; probes <= size; probes++ {
			slot := v.Ent[i]
			if slot.Val < 0 {
				break
			}
			if slot.Key == e.Addr {
				found = true
				break
			}
			i = (i + 1) & v.EntMask
		}
		if !found {
			r.errf("C-ENT", e.State, fmt.Sprintf("entry 0x%x", e.Addr), "entry not reachable by linear probe from its home slot")
		}
	}
}

// checkFilter proves C-FILT: the presence bitmap has power-of-two geometry
// and covers every entry, so the fast path can never miss a real entry.
func checkFilter(r *Report, v core.CompiledAudit, a *core.Automaton) {
	bits := len(v.Filt) * 64
	if bits < 64 || bits&(bits-1) != 0 {
		r.errf("C-FILT", -1, "filt", "filter size %d bits is not a power of two", bits)
		return
	}
	if bits != 1<<(64-int(v.FiltShift)) {
		r.errf("C-FILT", -1, "filt", "shift %d does not match %d bits", v.FiltShift, bits)
		return
	}
	for _, e := range a.Entries() {
		bit := (e.Addr * core.FibHash) >> v.FiltShift
		if v.Filt[bit>>6]&(1<<(bit&63)) == 0 {
			r.errf("C-FILT", e.State, fmt.Sprintf("entry 0x%x", e.Addr), "presence filter bit clear: lookups would falsely miss this entry")
		}
	}
}

// compiledBisim proves C-EQ through the production lookup code: for every
// state, the compiled transition function must agree with the reference
// automaton over the complete relevant label alphabet — every label either
// side knows plus every statically plausible successor — and the compiled
// entry lookup must agree with the reference entry table over every entry
// and its near misses. Identity on states plus pointwise agreement on
// transitions is exactly a bisimulation between the two representations.
// Callers pass the automaton the compiled form claims to represent; tests
// pass a foreign one to prove disagreements are caught.
func compiledBisim(r *Report, c *core.Compiled, a *core.Automaton, v core.CompiledAudit) {
	n := a.NumStates()
	if len(v.States) != n || len(v.Off) != n+1 {
		// Not even the state sets line up; the per-label comparison below
		// would index out of range, so the mismatch itself is the finding.
		r.errf("C-EQ", -1, "states", "compiled form has %d states, reference automaton has %d", len(v.States), n)
		return
	}
	for i := 0; i < n; i++ {
		id := core.StateID(i)
		st := a.State(id)
		locus := stateLocus(id, st)

		alphabet := make(map[uint64]bool)
		for _, l := range st.Labels() {
			alphabet[l] = true
		}
		for _, l := range v.Labels[v.Off[i]:v.Off[i+1]] {
			alphabet[l] = true
		}
		if v.States[i].Lab0 != core.ImpossibleLabel {
			alphabet[v.States[i].Lab0] = true
		}
		if v.States[i].Lab1 != core.ImpossibleLabel {
			alphabet[v.States[i].Lab1] = true
		}
		if st.TBB != nil {
			for _, l := range staticSuccessors(st.TBB.Block) {
				alphabet[l] = true
			}
		}

		for label := range alphabet {
			wantTgt, wantOK := st.Next(label)
			gotTgt, gotOK := c.NextState(id, label)
			if wantOK != gotOK || (wantOK && wantTgt != gotTgt) {
				r.errf("C-EQ", id, locus, "transition on 0x%x: compiled (%d,%v) != automaton (%d,%v)", label, gotTgt, gotOK, wantTgt, wantOK)
			}
		}

		if st.TBB != nil {
			wantPl := plausibleByTerm(st, alphabet)
			for label, want := range wantPl {
				if got := auditPlausible(v.States[i], label); got != want {
					r.errf("C-EQ", id, locus, "plausibility of 0x%x: compiled %v != block terminator %v", label, got, want)
				}
			}
		}
	}

	// Entry lookup agreement over every entry plus near-miss probes.
	for _, e := range a.Entries() {
		got, ok := c.EntryLookup(e.Addr)
		if !ok || got != e.State {
			r.errf("C-EQ", e.State, fmt.Sprintf("entry 0x%x", e.Addr), "compiled entry lookup (%d,%v) != reference (%d,true)", got, ok, e.State)
		}
		for _, near := range []uint64{e.Addr - 1, e.Addr + 1} {
			wantTgt, wantOK := a.EntryFor(near)
			gotTgt, gotOK := c.EntryLookup(near)
			if wantOK != gotOK || (wantOK && wantTgt != gotTgt) {
				r.errf("C-EQ", -1, fmt.Sprintf("entry 0x%x", near), "compiled entry lookup (%d,%v) != reference (%d,%v)", gotTgt, gotOK, wantTgt, wantOK)
			}
		}
	}
}

// plausibleByTerm computes, for each alphabet label, whether the reference
// plausibility predicate accepts it given the state's block terminator.
func plausibleByTerm(st *core.State, alphabet map[uint64]bool) map[uint64]bool {
	b := st.TBB.Block
	term := b.Term
	ft, hasFT := b.FallThrough()
	out := make(map[uint64]bool, len(alphabet))
	for label := range alphabet {
		switch {
		case term.IsIndirect():
			out[label] = true
		case term.IsBranch() && label == term.Target:
			out[label] = true
		default:
			out[label] = hasFT && label == ft
		}
	}
	return out
}

// auditPlausible mirrors the compiled fast-path plausibility check on the
// audit snapshot.
func auditPlausible(rec core.StateAudit, label uint64) bool {
	if rec.Flags&core.AuditFlagIndirect != 0 {
		return true
	}
	if rec.Flags&core.AuditFlagBranch != 0 && label == rec.BranchTarget {
		return true
	}
	return rec.Flags&core.AuditFlagFallThru != 0 && label == rec.FallThrough
}

// compiledBTree proves C-BTREE: the B+ tree the replay path bulk-loads from
// the automaton's entries must pass the structural invariant check (sorted
// keys, separator correctness, occupancy, leaf chaining), store exactly the
// entry set, and come out at the minimal height a maximally packed
// bulk-load implies.
func compiledBTree(r *Report, entries []core.Entry, order int) {
	keys := make([]uint64, len(entries))
	vals := make([]core.StateID, len(entries))
	for i, e := range entries {
		keys[i], vals[i] = e.Addr, e.State
	}
	if order <= 0 {
		order = btree.DefaultOrder
	}
	t := btree.Bulk(order, keys, vals)
	if err := t.Check(); err != nil {
		r.errf("C-BTREE", -1, "btree", "structural check failed: %v", err)
		return
	}
	if t.Len() != len(entries) {
		r.errf("C-BTREE", -1, "btree", "tree holds %d keys for %d entries", t.Len(), len(entries))
	}
	for _, e := range entries {
		got, ok := t.Get(e.Addr)
		if !ok || got != e.State {
			r.errf("C-BTREE", e.State, fmt.Sprintf("entry 0x%x", e.Addr), "lookup (%d,%v) != (%d,true)", got, ok, e.State)
		}
	}
	// Minimal height for a maximally packed bulk-load: leaves hold up to
	// `order` keys, inner nodes up to order+1 children.
	height, capacity := 1, order
	for capacity < len(entries) {
		capacity *= order + 1
		height++
	}
	if len(entries) > 0 && t.Height() > height {
		r.errf("C-BTREE", -1, "btree", "height %d exceeds the bulk-load minimum %d for %d entries", t.Height(), height, len(entries))
	}
}
