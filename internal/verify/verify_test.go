package verify

import (
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/workload"
)

// recordedSet records a trace set from a seeded synthetic program, mirroring
// the core property-test generator so the verifier sees realistic shapes.
func recordedSet(t testing.TB, seed int64, strategy string, threshold int) (*trace.Set, *isa.Program) {
	t.Helper()
	spec, _ := workload.ByName("181.mcf")
	spec.Seed = seed
	spec.WorkScale = 8
	p := workload.Program(spec)
	s, ok := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: threshold})
	if !ok {
		t.Fatalf("strategy %q", strategy)
	}
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return set, p
}

func hasRule(r *Report, rule string) bool {
	for _, f := range r.Findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func requireRule(t *testing.T, r *Report, rule string) {
	t.Helper()
	if !hasRule(r, rule) {
		t.Fatalf("expected a %s finding, got:\n%s", rule, r)
	}
}

// TestRecordedAutomataVerifyClean: every automaton a recorder produces, over
// every strategy, passes the full automaton rule family with zero findings
// (including the CFG rules against its own program image), and its compiled
// form proves structurally equivalent under every Table 4 configuration.
func TestRecordedAutomataVerifyClean(t *testing.T) {
	for _, strategy := range []string{"mret", "tt", "ctt", "mfet"} {
		for _, seed := range []int64{1, 7, 42} {
			set, p := recordedSet(t, seed, strategy, 8)
			a := core.Build(set)
			cache := cfg.NewCache(p, cfg.StarDBT)
			if r := Automaton(a, cache); !r.Clean() {
				t.Errorf("%s seed %d: automaton findings:\n%s", strategy, seed, r)
			}
			for _, lc := range []core.LookupConfig{
				core.ConfigGlobalLocal, core.ConfigGlobalNoLocal,
				core.ConfigNoGlobalLocal, {Local: true, LocalSize: 2, Fanout: 4},
			} {
				if r := Compiled(core.Compile(a, lc)); !r.Clean() {
					t.Errorf("%s seed %d %+v: compiled findings:\n%s", strategy, seed, lc, r)
				}
			}
		}
	}
}

// TestFigure2VerifiesClean: the paper's Figure 2 workflow end to end,
// including the serialized image through the Image lint.
func TestFigure2VerifiesClean(t *testing.T) {
	p := progs.Figure2(60, 200)
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 16})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Build(set)
	cache := cfg.NewCache(p, cfg.StarDBT)
	if r := Automaton(a, cache); !r.Clean() {
		t.Fatalf("automaton findings:\n%s", r)
	}
	data, err := core.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := Image(data, cfg.NewCache(p, cfg.StarDBT), core.ConfigGlobalLocal); !r.Clean() {
		t.Fatalf("image findings:\n%s", r)
	}
}

// TestBadCFGLinkFlagged: a same-trace link whose label is not a successor of
// the source block in the image decodes fine but must trip A-CFG — the
// decoder gap the verifier exists to close.
func TestBadCFGLinkFlagged(t *testing.T) {
	set, p := recordedSet(t, 1, "mret", 8)
	var tr *trace.Trace
	for _, c := range set.Traces {
		if len(c.TBBs) >= 3 {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Skip("no trace with 3 TBBs")
	}
	// Link TBB 0 to TBB 2, skipping a block: the label is TBB 2's head,
	// which TBB 0's terminator cannot reach in one step.
	if err := tr.TBBs[0].Link(tr.TBBs[2]); err != nil {
		t.Fatal(err)
	}
	a := core.Build(set)
	r := Automaton(a, cfg.NewCache(p, cfg.StarDBT))
	requireRule(t, r, "A-CFG")
}

// TestCrossTraceLinkFlagged: trace.Link refuses cross-trace links, so forge
// one directly through the Succs map; A-LABEL must catch it.
func TestCrossTraceLinkFlagged(t *testing.T) {
	set, p := recordedSet(t, 1, "mret", 8)
	if len(set.Traces) < 2 {
		t.Skip("need two traces")
	}
	// Forge backwards (a later trace into an earlier one) so Build resolves
	// the target to a real state and the cross-trace rule itself fires.
	from, to := set.Traces[1].Head(), set.Traces[0].Head()
	if from.Succs == nil {
		from.Succs = make(map[uint64]*trace.TBB)
	}
	from.Succs[to.Block.Head] = to
	a := core.Build(set)
	r := Automaton(a, cfg.NewCache(p, cfg.StarDBT))
	requireRule(t, r, "A-LABEL")
}

// TestWrongLabelFlagged: a transition whose label is not its target's block
// head trips A-LABEL.
func TestWrongLabelFlagged(t *testing.T) {
	set, _ := recordedSet(t, 1, "mret", 8)
	var tr *trace.Trace
	for _, c := range set.Traces {
		if len(c.TBBs) >= 2 {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Skip("no trace with 2 TBBs")
	}
	head := tr.TBBs[0]
	if head.Succs == nil {
		head.Succs = make(map[uint64]*trace.TBB)
	}
	head.Succs[head.Block.Head^0x1] = tr.TBBs[1] // label != target head
	a := core.Build(set)
	r := Automaton(a, nil)
	requireRule(t, r, "A-LABEL")
}

// TestLinearityFlagged: corrupting a TBB index after Build trips A-LIN.
func TestLinearityFlagged(t *testing.T) {
	set, _ := recordedSet(t, 1, "mret", 8)
	var tr *trace.Trace
	for _, c := range set.Traces {
		if len(c.TBBs) >= 2 {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Skip("no trace with 2 TBBs")
	}
	a := core.Build(set)
	tr.TBBs[1].Index = 7
	r := Automaton(a, nil)
	requireRule(t, r, "A-LIN")
}

// TestEntryMidTraceFlagged: swapping a trace's head mid-chain makes the
// entry table point at a mid-trace TBB; A-ENTRY (and A-LIN) must fire.
func TestEntryMidTraceFlagged(t *testing.T) {
	set, _ := recordedSet(t, 1, "mret", 8)
	var tr *trace.Trace
	for _, c := range set.Traces {
		if len(c.TBBs) >= 2 {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Skip("no trace with 2 TBBs")
	}
	a := core.Build(set)
	tr.TBBs[0], tr.TBBs[1] = tr.TBBs[1], tr.TBBs[0]
	r := Automaton(a, nil)
	requireRule(t, r, "A-ENTRY")
	requireRule(t, r, "A-LIN")
}

// TestForeignImageFlagged: verifying an automaton against a different
// program's image trips the A-IMG shape checks.
func TestForeignImageFlagged(t *testing.T) {
	set, _ := recordedSet(t, 1, "mret", 8)
	a := core.Build(set)
	spec, _ := workload.ByName("181.mcf")
	spec.Seed = 99
	spec.WorkScale = 8
	foreign := workload.Program(spec)
	r := Automaton(a, cfg.NewCache(foreign, cfg.StarDBT))
	if r.OK() {
		t.Fatalf("foreign image verified clean:\n%s", r)
	}
	if !hasRule(r, "A-IMG") && !hasRule(r, "A-CFG") {
		t.Fatalf("expected A-IMG/A-CFG findings, got:\n%s", r)
	}
}

// TestInescapableLoopWarns: a trace that is a pure self-loop (unconditional
// jump to its own head) can never return to NTE; A-NTE warns but the report
// stays OK — the replayer tolerates the shape.
func TestInescapableLoopWarns(t *testing.T) {
	p := asm.MustAssemble("selfloop", `
.entry main
main:
    nop
loop:
    addi eax, 1
    jmp  loop
`)
	cache := cfg.NewCache(p, cfg.StarDBT)
	m := cpu.New(p)
	run := cfg.NewRunner(m, cfg.StarDBT)
	var loop *cfg.Block
	for i := 0; i < 4 && loop == nil; i++ {
		e, ok, err := run.Next()
		if err != nil || !ok || e.To == nil {
			break
		}
		if e.To.Term.Op == isa.JMP && e.To.Term.Target == e.To.Head {
			loop = e.To
		}
	}
	if loop == nil {
		t.Fatal("self-loop block not discovered")
	}
	set := trace.NewSet("manual", p)
	tr, err := set.NewTrace(loop)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Head().Link(tr.Head()); err != nil {
		t.Fatal(err)
	}
	a := core.Build(set)
	r := Automaton(a, cache)
	requireRule(t, r, "A-NTE")
	if !r.OK() {
		t.Fatalf("A-NTE must be a warning, report has errors:\n%s", r)
	}
	if r.Clean() {
		t.Fatal("report unexpectedly clean")
	}
}

// TestReportRendering: findings render one per line in canonical sorted
// order with rule, severity and locus, so CI output diffs cleanly.
func TestReportRendering(t *testing.T) {
	r := &Report{}
	r.errf("C-ENT", 3, "ent[4]", "second")
	r.warnf("A-NTE", 1, "state 1", "third")
	r.errf("A-DET", 2, "state 2", "first")
	out := r.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %q", out)
	}
	if !strings.HasPrefix(lines[0], "A-DET error state 2: ") ||
		!strings.HasPrefix(lines[1], "A-NTE warn state 1: ") ||
		!strings.HasPrefix(lines[2], "C-ENT error ent[4]: ") {
		t.Fatalf("unexpected rendering:\n%s", out)
	}
	if r.OK() {
		t.Fatal("report with errors must not be OK")
	}
	if r.Errs() != 2 {
		t.Fatalf("Errs() = %d, want 2", r.Errs())
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "A-DET") {
		t.Fatalf("Err() = %v", err)
	}
}

// TestImageRejectsCorrupt: a decode rejection surfaces as a W-DEC finding
// carrying the byte offset from the DecodeError.
func TestImageRejectsCorrupt(t *testing.T) {
	p := progs.Figure2(40, 100)
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 16})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.Encode(core.Build(set))
	if err != nil {
		t.Fatal(err)
	}
	r := Image(data[:len(data)/2], cfg.NewCache(p, cfg.StarDBT), core.ConfigGlobalLocal)
	requireRule(t, r, "W-DEC")
	if r.OK() {
		t.Fatal("truncated image verified OK")
	}
}
