package verify

import (
	"fmt"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/trace"
)

// Automaton statically checks the reference automaton against the paper's
// invariants. cache supplies the loaded program image for the CFG rules
// (A-IMG, A-CFG); pass nil to run only the image-independent rules.
//
// Rules:
//
//	A-STATE  state 0 is NTE; every other state has a TBB; the TBB↔state
//	         map is a bijection (Property 1).
//	A-DET    per-state transition labels are strictly sorted and unique —
//	         the determinism Algorithm 1 guarantees.
//	A-TARGET every transition target is a valid non-NTE state (dangling
//	         targets are findings, not faults).
//	A-LABEL  an in-trace transition's label is its target TBB's block head,
//	         and source and target share a trace.
//	A-LIN    trace TBB chains are linear and well-indexed: TBBs[i].Index ==
//	         i, back-pointers agree, the head is TBBs[0].
//	A-ENTRY  the entry table maps trace entry addresses to trace *head*
//	         states only — no transition fabricates a trace entry
//	         mid-block — and every trace's entry is present (Property 2).
//	A-REACH  every TBB state is reachable from NTE through the entry table
//	         plus in-trace transitions; unreachable states are dead weight
//	         no recorder emits.
//	A-NTE    NTE-soundness (warn): from every TBB state some plausible
//	         execution returns to NTE ("no trace executing" stays
//	         expressible); an inescapable in-trace cycle is flagged.
//	A-IMG    every state's recorded block matches the block re-discovered
//	         from the program image (shape identity), and entry addresses
//	         are instruction addresses.
//	A-CFG    every in-trace transition label is a plausible successor of
//	         the source block per the image: the branch target, the
//	         fall-through, or anything after an indirect terminator.
func Automaton(a *core.Automaton, cache *cfg.Cache) *Report {
	r := &Report{}
	n := a.NumStates()
	if n == 0 || a.State(core.NTE).TBB != nil {
		r.errf("A-STATE", core.NTE, "state 0", "state 0 is not NTE")
		return r
	}

	seen := make(map[*trace.TBB]core.StateID, n)
	for id := core.StateID(1); int(id) < n; id++ {
		st := a.State(id)
		locus := stateLocus(id, st)
		if st.TBB == nil {
			r.errf("A-STATE", id, locus, "non-NTE state has no TBB")
			continue
		}
		if prev, dup := seen[st.TBB]; dup {
			r.errf("A-STATE", id, locus, "TBB %s already owned by state %d (Property 1)", st.TBB, prev)
		}
		seen[st.TBB] = id

		labels, targets := st.Labels(), st.Targets()
		for i, label := range labels {
			if i > 0 && labels[i-1] >= label {
				r.errf("A-DET", id, locus, "labels not strictly sorted at index %d (0x%x after 0x%x)", i, label, labels[i-1])
			}
			tgt := targets[i]
			if tgt <= 0 || int(tgt) >= n {
				r.errf("A-TARGET", id, locus, "transition on 0x%x targets invalid state %d", label, tgt)
				continue
			}
			to := a.State(tgt)
			if to.TBB == nil {
				r.errf("A-TARGET", id, locus, "transition on 0x%x targets NTE-shaped state %d", label, tgt)
				continue
			}
			if to.TBB.Block.Head != label {
				r.errf("A-LABEL", id, locus, "label 0x%x does not match target %s head 0x%x", label, to.TBB, to.TBB.Block.Head)
			}
			if st.TBB != nil && to.TBB.Trace != st.TBB.Trace {
				r.errf("A-LABEL", id, locus, "in-trace transition crosses traces: %s -> %s", st.TBB, to.TBB)
			}
		}
	}

	set := a.Set()
	if set != nil {
		checkTraces(r, a, set)
	}
	checkEntries(r, a, set)
	checkReachability(r, a)
	checkNTESoundness(r, a)
	if cache != nil {
		checkImage(r, a, cache)
	}
	r.normalize()
	return r
}

// stateLocus renders the canonical locus of a state finding.
func stateLocus(id core.StateID, st *core.State) string {
	if st == nil {
		return fmt.Sprintf("state %d", id)
	}
	return fmt.Sprintf("state %d (%s)", id, st.Name())
}

// checkTraces proves A-LIN over the automaton's trace set and Property 1's
// cardinality (every TBB has a state).
func checkTraces(r *Report, a *core.Automaton, set *trace.Set) {
	for _, t := range set.Traces {
		if len(t.TBBs) == 0 {
			r.errf("A-LIN", -1, fmt.Sprintf("T%d", t.ID), "trace has no TBBs")
			continue
		}
		for i, tbb := range t.TBBs {
			locus := fmt.Sprintf("T%d.TBBs[%d]", t.ID, i)
			if tbb.Index != i {
				r.errf("A-LIN", -1, locus, "TBB index %d at position %d", tbb.Index, i)
			}
			if tbb.Trace != t {
				r.errf("A-LIN", -1, locus, "TBB back-pointer names %v, owner is T%d", tbb.Trace, t.ID)
			}
			if _, ok := a.StateFor(tbb); !ok {
				r.errf("A-STATE", -1, locus, "TBB %s has no state (Property 1)", tbb)
			}
		}
	}
}

// checkEntries proves A-ENTRY: entry-table targets are trace heads entered
// at their block head address, and every trace's entry is present.
func checkEntries(r *Report, a *core.Automaton, set *trace.Set) {
	n := a.NumStates()
	for _, e := range a.Entries() {
		locus := fmt.Sprintf("entry 0x%x", e.Addr)
		if e.State <= 0 || int(e.State) >= n {
			r.errf("A-ENTRY", e.State, locus, "entry targets invalid state %d", e.State)
			continue
		}
		tbb := a.State(e.State).TBB
		if tbb == nil {
			r.errf("A-ENTRY", e.State, locus, "entry targets NTE")
			continue
		}
		if tbb.Index != 0 {
			r.errf("A-ENTRY", e.State, locus, "entry fabricates a trace entry mid-block: %s is TBB %d of its trace", tbb, tbb.Index)
		}
		if tbb.Block.Head != e.Addr {
			r.errf("A-ENTRY", e.State, locus, "entry address does not match head block 0x%x of %s", tbb.Block.Head, tbb)
		}
		if set != nil {
			if t, ok := set.ByEntry(e.Addr); !ok {
				r.errf("A-ENTRY", e.State, locus, "entry has no trace anchored at 0x%x", e.Addr)
			} else if t.Head() != tbb {
				r.errf("A-ENTRY", e.State, locus, "entry targets %s, trace head is %s", tbb, t.Head())
			}
		}
	}
	if set != nil {
		for _, t := range set.Traces {
			if len(t.TBBs) == 0 {
				continue
			}
			head, ok := a.EntryFor(t.EntryAddr())
			if !ok {
				r.errf("A-ENTRY", -1, fmt.Sprintf("T%d", t.ID), "trace entry 0x%x missing from entry table (Property 2)", t.EntryAddr())
				continue
			}
			if want, ok := a.StateFor(t.Head()); ok && head != want {
				r.errf("A-ENTRY", head, fmt.Sprintf("T%d", t.ID), "entry 0x%x maps to state %d, head state is %d", t.EntryAddr(), head, want)
			}
		}
	}
}

// checkReachability proves A-REACH: BFS from NTE over entry-table edges and
// in-trace transitions must visit every state.
func checkReachability(r *Report, a *core.Automaton) {
	n := a.NumStates()
	visited := make([]bool, n)
	visited[core.NTE] = true
	var queue []core.StateID
	for _, e := range a.Entries() {
		if e.State > 0 && int(e.State) < n && !visited[e.State] {
			visited[e.State] = true
			queue = append(queue, e.State)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, tgt := range a.State(id).Targets() {
			if tgt > 0 && int(tgt) < n && !visited[tgt] {
				visited[tgt] = true
				queue = append(queue, tgt)
			}
		}
	}
	for id := core.StateID(1); int(id) < n; id++ {
		if !visited[id] {
			r.errf("A-REACH", id, stateLocus(id, a.State(id)), "state unreachable from NTE (dropped in-trace edge or fabricated state)")
		}
	}
}

// checkNTESoundness proves A-NTE: from every TBB state, some plausible
// execution eventually leaves every trace ("no trace executing" must stay
// reachable). A state escapes directly when its terminator is indirect
// (control may land in cold code), when it has no plausible successors at
// all (halt: execution ends), or when a plausible successor label has no
// in-trace transition and anchors no trace (the default transition to NTE).
// Escape then propagates backwards over in-trace and entry-linked edges; a
// strongly connected hot region with no escape is flagged as a warning —
// the replayer tolerates it, but no terminating program records it.
func checkNTESoundness(r *Report, a *core.Automaton) {
	n := a.NumStates()
	escapes := make([]bool, n)
	succs := make([][]core.StateID, n)
	var queue []core.StateID

	for id := core.StateID(1); int(id) < n; id++ {
		st := a.State(id)
		if st.TBB == nil {
			continue
		}
		labels := st.Labels()
		inTrace := make(map[uint64]bool, len(labels))
		for _, l := range labels {
			inTrace[l] = true
		}
		succs[id] = st.Targets()

		term := st.TBB.Block.Term
		direct := false
		switch {
		case term.IsIndirect():
			direct = true
		default:
			plausible := staticSuccessors(st.TBB.Block)
			if len(plausible) == 0 {
				direct = true // halt or fall-off: execution ends outside any trace
			}
			for _, label := range plausible {
				if inTrace[label] {
					continue
				}
				if to, ok := a.EntryFor(label); ok && to != core.NTE {
					// Trace-linking edge: escape depends on the target trace.
					succs[id] = append(succs[id], to)
					continue
				}
				direct = true // uncovered plausible label defaults to NTE
			}
		}
		if direct {
			escapes[id] = true
			queue = append(queue, id)
		}
	}

	// Propagate escape backwards: predecessors of an escaping state escape.
	preds := make([][]core.StateID, n)
	for id := core.StateID(1); int(id) < n; id++ {
		for _, tgt := range succs[id] {
			if tgt > 0 && int(tgt) < n {
				preds[tgt] = append(preds[tgt], id)
			}
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, p := range preds[id] {
			if !escapes[p] {
				escapes[p] = true
				queue = append(queue, p)
			}
		}
	}
	for id := core.StateID(1); int(id) < n; id++ {
		if a.State(id).TBB != nil && !escapes[id] {
			r.warnf("A-NTE", id, stateLocus(id, a.State(id)), "NTE unreachable: every plausible successor stays in-trace (inescapable hot cycle)")
		}
	}
}

// staticSuccessors returns the statically known successor addresses of a
// block: the direct branch target and/or the fall-through. Indirect and
// halting terminators contribute none.
func staticSuccessors(b *cfg.Block) []uint64 {
	term := b.Term
	var out []uint64
	if term.IsBranch() && !term.IsIndirect() && term.Op != isa.HALT {
		out = append(out, term.Target)
	}
	if ft, ok := b.FallThrough(); ok {
		out = append(out, ft)
	}
	return out
}

// checkImage proves A-IMG and A-CFG against the loaded program image: every
// recorded block must re-discover to the same shape, and every in-trace
// label must be a plausible successor of its source block per the image.
func checkImage(r *Report, a *core.Automaton, cache *cfg.Cache) {
	n := a.NumStates()
	prog := cache.Program()
	checked := make(map[uint64]*cfg.Block, n)
	for id := core.StateID(1); int(id) < n; id++ {
		st := a.State(id)
		if st.TBB == nil {
			continue
		}
		rec := st.TBB.Block
		locus := stateLocus(id, st)
		img, ok := checked[rec.Head]
		if !ok {
			var err error
			img, err = cache.BlockAt(rec.Head)
			if err != nil {
				r.errf("A-IMG", id, locus, "recorded block head 0x%x is not a block in the image: %v", rec.Head, err)
				checked[rec.Head] = nil
				continue
			}
			checked[rec.Head] = img
			if img.NumInstrs != rec.NumInstrs || img.Bytes != rec.Bytes || img.End != rec.End || img.Term.Op != rec.Term.Op {
				r.errf("A-IMG", id, locus, "recorded block %v does not match image block %v", rec, img)
			}
		}
		if img == nil {
			continue
		}

		// CFG consistency: labels must be reachable from this block's
		// terminator as the image defines it.
		term := img.Term
		for _, label := range st.Labels() {
			if term.IsIndirect() {
				if _, ok := prog.At(label); !ok {
					r.errf("A-CFG", id, locus, "indirect successor 0x%x is not an instruction in the image", label)
				}
				continue
			}
			if !plausibleLabel(img, label) {
				r.errf("A-CFG", id, locus, "label 0x%x is not a successor of %v in the image CFG", label, img)
			}
		}
	}

	// Entry addresses must be instruction addresses in the image.
	for _, e := range a.Entries() {
		if _, ok := prog.At(e.Addr); !ok {
			r.errf("A-IMG", e.State, fmt.Sprintf("entry 0x%x", e.Addr), "entry address is not an instruction in the image")
		}
	}
}

// plausibleLabel reports whether control leaving b can arrive at label:
// the direct branch target or the fall-through address.
func plausibleLabel(b *cfg.Block, label uint64) bool {
	for _, s := range staticSuccessors(b) {
		if s == label {
			return true
		}
	}
	return false
}
