package verify

import (
	"context"
	"os"
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
)

// semantic is the TEA-meaningful slice of replay stats: the fields that
// change when the automaton or its relationship to the program changes, and
// that stay put under perturbations the TEA genuinely does not describe
// (cold-code layout, raw instruction totals, cache-layer luck).
type semantic struct {
	traceBlocks, traceInstrs uint64
	inTraceHits              uint64
	enters, links, exits     uint64
	desyncs, resyncs         uint64
	final                    core.StateID
}

func semanticOf(s core.Stats, final core.StateID) semantic {
	return semantic{
		traceBlocks: s.TraceBlocks, traceInstrs: s.TraceInstrs,
		inTraceHits: s.InTraceHits,
		enters:      s.TraceEnters, links: s.TraceLinks, exits: s.TraceExits,
		desyncs: s.Desyncs, resyncs: s.Resyncs,
		final: final,
	}
}

// detectResult tallies one mutant class.
type detectResult struct {
	trials   int // mutants generated
	benign   int // replay behavior unchanged (not counted against detection)
	rejected int // core.Decode refused the mutant (detected by the decoder)
	flagged  int // decoded, but the static verifier reported an Error
	missed   int // decoded, verified clean, yet replay behavior changed
}

func (d detectResult) altering() int { return d.rejected + d.flagged + d.missed }
func (d detectResult) rate() float64 {
	if d.altering() == 0 {
		return 1
	}
	return float64(d.rejected+d.flagged) / float64(d.altering())
}

// detectFixture records the Figure 2 TEA once, captures its dynamic block
// stream, and precomputes the reference replay semantics.
type detectFixture struct {
	prog   *isa.Program
	cache  *cfg.Cache
	data   []byte
	stream []core.Edge
	ref    semantic
}

func newDetectFixture(t *testing.T) *detectFixture {
	t.Helper()
	p := progs.Figure2(40, 80)
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 16})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Build(set)
	data, err := core.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	cache := cfg.NewCache(p, cfg.StarDBT)
	cap := teatool.NewCaptureTool()
	if _, err := pin.New().Run(p, cap, 0); err != nil {
		t.Fatal(err)
	}
	decoded, err := core.Decode(data, cache)
	if err != nil {
		t.Fatal(err)
	}
	stats, final := core.SequentialReplay(core.Compile(decoded, core.ConfigGlobalNoLocal), cap.Stream())
	return &detectFixture{
		prog: p, cache: cache, data: data, stream: cap.Stream(),
		ref: semanticOf(stats, final),
	}
}

// auditMutant decodes and statically verifies a mutant image, then replays
// it over the recorded stream, and classifies the outcome.
func (fx *detectFixture) auditMutant(res *detectResult, mut []byte) {
	res.trials++
	a, err := core.Decode(mut, fx.cache)
	if err != nil {
		res.rejected++
		return
	}
	stats, final := core.SequentialReplay(core.Compile(a, core.ConfigGlobalNoLocal), fx.stream)
	if semanticOf(stats, final) == fx.ref {
		res.benign++
		return
	}
	r := Automaton(a, fx.cache)
	r.Merge(Compiled(core.Compile(a, core.ConfigGlobalLocal)))
	if !r.OK() {
		res.flagged++
		return
	}
	res.missed++
}

// TestDetectByteMutants measures, per byte-level fault class, how many
// behavior-altering mutants the decode+verify pipeline catches. The
// acceptance bar is 80% per class; any mutant that decodes, verifies clean,
// and still changes replay behavior is a decoder/verifier gap and fails the
// test outright.
func TestDetectByteMutants(t *testing.T) {
	fx := newDetectFixture(t)
	const trials = 60
	classes := []struct {
		name   string
		mutate func(j *faultinject.Injector) []byte
	}{
		{"bytes/Truncate", func(j *faultinject.Injector) []byte { return j.Truncate(fx.data) }},
		{"bytes/FlipBits", func(j *faultinject.Injector) []byte { return j.FlipBits(fx.data, 1+int(j.Seed()%4)) }},
		{"bytes/CorruptVarint", func(j *faultinject.Injector) []byte { return j.CorruptVarint(fx.data) }},
	}
	for _, class := range classes {
		var res detectResult
		for seed := int64(0); seed < trials; seed++ {
			fx.auditMutant(&res, class.mutate(faultinject.New(seed)))
		}
		logClass(t, class.name, res)
		if res.missed > 0 {
			t.Errorf("%s: %d mutant(s) decode and verify clean yet alter replay", class.name, res.missed)
		}
		if res.rate() < 0.8 {
			t.Errorf("%s: detection rate %.2f below 0.8", class.name, res.rate())
		}
	}
}

// TestDetectProgramMutants: the program-image fault classes. The image the
// TEA is decoded and verified against is the perturbed one — the stale-TEA
// scenario — and "behavior-altering" is judged by replaying the original
// TEA over the perturbed program's own stream.
func TestDetectProgramMutants(t *testing.T) {
	fx := newDetectFixture(t)
	const trials = 25
	for _, kind := range []faultinject.ProgramFault{
		faultinject.ShiftLayout, faultinject.MutateBlock, faultinject.EraseBlock,
	} {
		var res detectResult
		for seed := int64(0); seed < trials; seed++ {
			perturbed, err := faultinject.New(seed).PerturbProgram(fx.prog, kind)
			if err != nil {
				continue // this seed found no applicable site
			}
			res.trials++
			pcache := cfg.NewCache(perturbed, cfg.StarDBT)
			a, err := core.Decode(fx.data, pcache)
			if err != nil {
				res.rejected++
				continue
			}
			// Replay over the perturbed program's own stream (bounded: a
			// perturbed program may not halt).
			cap := teatool.NewCaptureTool()
			_, _ = pin.New().RunContext(context.Background(), perturbed, cap, 4_000_000)
			stats, final := core.SequentialReplay(core.Compile(a, core.ConfigGlobalNoLocal), cap.Stream())
			if semanticOf(stats, final) == fx.ref {
				res.benign++
				continue
			}
			r := Automaton(a, pcache)
			r.Merge(Compiled(core.Compile(a, core.ConfigGlobalLocal)))
			if !r.OK() {
				res.flagged++
				continue
			}
			res.missed++
		}
		logClass(t, "program/"+kind.String(), res)
		if res.missed > 0 {
			t.Errorf("program/%s: %d mutant(s) decode and verify clean yet alter replay", kind, res.missed)
		}
		if res.rate() < 0.8 {
			t.Errorf("program/%s: detection rate %.2f below 0.8", kind, res.rate())
		}
	}
}

// TestDetectBadCFGLink: the decoder gap the verifier closes — a same-trace
// link that skips a block decodes cleanly (labels match heads, traces
// agree) but desyncs replay; the A-CFG rule must flag it statically.
func TestDetectBadCFGLink(t *testing.T) {
	fx := newDetectFixture(t)
	a, err := core.Decode(fx.data, fx.cache)
	if err != nil {
		t.Fatal(err)
	}
	set := a.Set()
	var tr *trace.Trace
	for _, c := range set.Traces {
		if len(c.TBBs) >= 3 {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Skip("no trace with 3 TBBs")
	}
	if err := tr.TBBs[0].Link(tr.TBBs[2]); err != nil {
		t.Fatal(err)
	}
	bad, err := core.Encode(core.Build(set))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Decode(bad, fx.cache); err != nil {
		t.Fatalf("bad-link image should decode (that is the gap): %v", err)
	}
	r := Image(bad, fx.cache, core.ConfigGlobalLocal)
	if r.OK() {
		t.Fatalf("bad-link image verified clean:\n%s", r)
	}
	if !hasRule(r, "A-CFG") {
		t.Fatalf("expected A-CFG, got:\n%s", r)
	}
}

// TestCheckedInBadImage pins the negative-test artifact scripts/ci.sh uses:
// testdata/badcfg.bin (generated by scripts/gencorpus) must keep decoding
// cleanly against the Figure 2 image and keep failing verification on A-CFG.
func TestCheckedInBadImage(t *testing.T) {
	data, err := os.ReadFile("testdata/badcfg.bin")
	if err != nil {
		t.Fatalf("%v (regenerate with `go run ./scripts/gencorpus`)", err)
	}
	p := progs.Figure2(60, 200)
	cache := cfg.NewCache(p, cfg.StarDBT)
	if _, err := core.Decode(data, cache); err != nil {
		t.Fatalf("badcfg.bin must decode (the decoder gap is the point): %v", err)
	}
	r := Image(data, cache, core.ConfigGlobalLocal)
	if r.OK() {
		t.Fatal("badcfg.bin verified clean; the negative test is dead")
	}
	if !hasRule(r, "A-CFG") {
		t.Fatalf("expected A-CFG on badcfg.bin, got:\n%s", r)
	}
}

func logClass(t *testing.T, name string, res detectResult) {
	t.Helper()
	t.Logf("| %-22s | %3d | %3d | %3d | %3d | %3d | %.2f |",
		name, res.trials, res.benign, res.rejected, res.flagged, res.missed, res.rate())
}
