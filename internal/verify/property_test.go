package verify

import (
	"testing"
	"testing/quick"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/optim"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/workload"
)

// TestQuickRecordedAlwaysVerifies: for randomized workload programs across
// every strategy, the recorded automaton and all four compiled
// configurations pass the verifier with zero findings.
func TestQuickRecordedAlwaysVerifies(t *testing.T) {
	strategies := []string{"mret", "tt", "ctt", "mfet"}
	f := func(seed int64, stratIdx uint8, thrBits uint8) bool {
		strategy := strategies[int(stratIdx)%len(strategies)]
		threshold := 4 + int(thrBits%24)
		spec, _ := workload.ByName("181.mcf")
		spec.Seed = seed
		spec.WorkScale = 8
		p := workload.Program(spec)
		s, _ := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: threshold})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
		if err != nil {
			t.Log(err)
			return false
		}
		a := core.Build(set)
		if r := Automaton(a, cfg.NewCache(p, cfg.StarDBT)); !r.Clean() {
			t.Logf("seed %d %s thr %d:\n%s", seed, strategy, threshold, r)
			return false
		}
		if r := Compiled(core.Compile(a, core.ConfigGlobalLocal)); !r.Clean() {
			t.Logf("seed %d %s thr %d compiled:\n%s", seed, strategy, threshold, r)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickOptimOutputsAlwaysVerify: Prune and Merge outputs over
// randomized programs and thresholds always pass verify.Automaton — the
// property form of the optimization post-pass.
func TestQuickOptimOutputsAlwaysVerify(t *testing.T) {
	f := func(seed int64, minBits uint8) bool {
		spec, _ := workload.ByName("181.mcf")
		spec.Seed = seed
		spec.WorkScale = 8
		p := workload.Program(spec)
		s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 10})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
		if err != nil {
			t.Log(err)
			return false
		}
		a := core.Build(set)
		tool := teatool.NewProfileTool(a, core.ConfigGlobalLocal, nil)
		if _, err := pin.New().Run(p, tool, 0); err != nil {
			t.Log(err)
			return false
		}
		cache := cfg.NewCache(p, cfg.StarDBT)
		pruned, err := optim.Prune(set, tool.Profile(), uint64(1+minBits%64))
		if err != nil {
			t.Log(err)
			return false
		}
		if r := Automaton(optim.Rebuild(pruned), cache); !r.Clean() {
			t.Logf("seed %d: pruned set fails:\n%s", seed, r)
			return false
		}
		merged, err := optim.Merge(set, pruned)
		if err != nil {
			t.Log(err)
			return false
		}
		if r := Automaton(optim.Rebuild(merged), cache); !r.Clean() {
			t.Logf("seed %d: merged set fails:\n%s", seed, r)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestQuickVerifierMatchesReplay: the static CFG rules and the dynamic
// desync counters must agree on clean automatons — a verifier that flags
// nothing implies a replay with zero desyncs on the recording run, tying
// the static analysis back to the paper's dynamic ground truth.
func TestQuickVerifierMatchesReplay(t *testing.T) {
	f := func(seed int64) bool {
		spec, _ := workload.ByName("181.mcf")
		spec.Seed = seed
		spec.WorkScale = 8
		p := workload.Program(spec)
		s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 10})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
		if err != nil {
			t.Log(err)
			return false
		}
		a := core.Build(set)
		if r := Automaton(a, cfg.NewCache(p, cfg.StarDBT)); !r.Clean() {
			t.Logf("seed %d: verifier findings on clean recording:\n%s", seed, r)
			return false
		}
		tool := teatool.NewReplayTool(a, core.ConfigGlobalLocal)
		if _, err := pin.New().Run(p, tool, 0); err != nil {
			t.Log(err)
			return false
		}
		if tool.Stats().Desyncs != 0 {
			t.Logf("seed %d: clean verification but %d desyncs", seed, tool.Stats().Desyncs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
