package verify

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/trace"
)

// compiledFixture builds a recorded automaton and its compiled form plus a
// clean audit snapshot the corruption tests mutate.
func compiledFixture(t *testing.T) (*core.Automaton, *core.Compiled, core.CompiledAudit) {
	t.Helper()
	set, _ := recordedSet(t, 3, "mret", 8)
	a := core.Build(set)
	c := core.Compile(a, core.ConfigGlobalLocal)
	v := c.Audit()
	r := &Report{}
	compiledStructural(r, v, a, c.Config())
	if !r.Clean() {
		t.Fatalf("fixture not clean:\n%s", r)
	}
	return a, c, v
}

// structural runs compiledStructural over a (possibly corrupted) snapshot.
func structural(a *core.Automaton, c *core.Compiled, v core.CompiledAudit) *Report {
	r := &Report{}
	compiledStructural(r, v, a, c.Config())
	r.normalize()
	return r
}

func TestCompiledOffsetRulesFire(t *testing.T) {
	a, c, v := compiledFixture(t)

	bad := v
	bad.Off = append([]uint32(nil), v.Off...)
	bad.Off[1], bad.Off[2] = bad.Off[2]+1, bad.Off[1] // non-monotone
	requireRule(t, structural(a, c, bad), "C-OFF")

	bad = v
	bad.Off = v.Off[:len(v.Off)-1] // wrong table length
	requireRule(t, structural(a, c, bad), "C-OFF")

	bad = v
	bad.Off = append([]uint32(nil), v.Off...)
	bad.Off[len(bad.Off)-1]++ // final offset past the arena
	requireRule(t, structural(a, c, bad), "C-OFF")
}

func TestCompiledSpanRulesFire(t *testing.T) {
	a, c, v := compiledFixture(t)
	if len(v.Labels) < 2 {
		t.Skip("need 2 arena entries")
	}

	bad := v
	bad.Targets = append([]core.StateID(nil), v.Targets...)
	bad.Targets[0] = core.StateID(len(v.States)) // out of range
	requireRule(t, structural(a, c, bad), "C-SPAN")

	bad = v
	bad.Labels = append([]uint64(nil), v.Labels...)
	bad.Labels[0] ^= 0x40 // label no longer matches the automaton
	requireRule(t, structural(a, c, bad), "C-SPAN")
}

func TestCompiledSlotRuleFires(t *testing.T) {
	a, c, v := compiledFixture(t)
	bad := v
	bad.States = append([]core.StateAudit(nil), v.States...)
	// Find a state with transitions and corrupt its fast slot.
	for i := range bad.States {
		if bad.States[i].Lab0 != core.ImpossibleLabel {
			bad.States[i].Lab0 ^= 0x8
			requireRule(t, structural(a, c, bad), "C-SLOT")
			return
		}
	}
	t.Skip("no state with transitions")
}

func TestCompiledPlausRuleFires(t *testing.T) {
	a, c, v := compiledFixture(t)
	bad := v
	bad.States = append([]core.StateAudit(nil), v.States...)
	bad.States[1].Flags ^= core.AuditFlagIndirect
	requireRule(t, structural(a, c, bad), "C-PLAUS")
}

func TestCompiledEntryRulesFire(t *testing.T) {
	a, c, v := compiledFixture(t)

	// Fabricated key: also breaks probe reachability for the real entry.
	bad := v
	bad.Ent = append([]core.EntrySlotAudit(nil), v.Ent...)
	for i := range bad.Ent {
		if bad.Ent[i].Val >= 0 {
			bad.Ent[i].Key ^= 0x4000
			break
		}
	}
	requireRule(t, structural(a, c, bad), "C-ENT")

	// Occupancy miscount.
	bad = v
	bad.EntLen = v.EntLen + 1
	requireRule(t, structural(a, c, bad), "C-ENT")

	// Geometry: non-power-of-two table.
	bad = v
	bad.Ent = v.Ent[:len(v.Ent)-1]
	requireRule(t, structural(a, c, bad), "C-ENT")

	// Load factor: rebuild the table at the smallest power of two that
	// still fits every entry but breaks the 50% load bound.
	size, shift := 8, 61
	for size < v.EntLen {
		size <<= 1
		shift--
	}
	if 2*v.EntLen > size {
		small := core.CompiledAudit{
			Off: v.Off, Labels: v.Labels, Targets: v.Targets, States: v.States,
			Filt: v.Filt, FiltShift: v.FiltShift, LocalSize: v.LocalSize,
			Ent:     make([]core.EntrySlotAudit, size),
			EntMask: uint64(size - 1), EntShift: uint8(shift), EntLen: v.EntLen,
		}
		for i := range small.Ent {
			small.Ent[i].Val = -1
		}
		for _, e := range a.Entries() {
			i := (e.Addr * core.FibHash) >> small.EntShift
			for small.Ent[i].Val >= 0 {
				i = (i + 1) & small.EntMask
			}
			small.Ent[i] = core.EntrySlotAudit{Key: e.Addr, Val: e.State}
		}
		requireRule(t, structural(a, c, small), "C-ENT")
	}
}

func TestCompiledFilterRuleFires(t *testing.T) {
	a, c, v := compiledFixture(t)
	bad := v
	bad.Filt = make([]uint64, len(v.Filt)) // all-zero filter misses every entry
	requireRule(t, structural(a, c, bad), "C-FILT")
}

func TestCompiledLocalRuleFires(t *testing.T) {
	a, c, v := compiledFixture(t)
	bad := v
	bad.LocalSize = v.LocalSize + 1
	requireRule(t, structural(a, c, bad), "C-LOCAL")
}

// TestCompiledBisimCatchesForeignAutomaton: C-EQ is a real equivalence
// proof — handing the bisimulation a different recording's automaton (same
// program family, different seed) must produce disagreements.
func TestCompiledBisimCatchesForeignAutomaton(t *testing.T) {
	_, c, v := compiledFixture(t)
	set, _ := recordedSet(t, 11, "mret", 8)
	foreign := core.Build(set)
	r := &Report{}
	compiledBisim(r, c, foreign, v)
	requireRule(t, r, "C-EQ")
}

// TestCompiledBTreeRuleFires: a duplicated entry address collapses inside
// the tree, so the size and lookup cross-checks must catch it (unsorted
// input alone is healed by Bulk's insertion fallback).
func TestCompiledBTreeRuleFires(t *testing.T) {
	entries := []core.Entry{{Addr: 10, State: 1}, {Addr: 10, State: 2}, {Addr: 20, State: 3}}
	r := &Report{}
	compiledBTree(r, entries, 4)
	requireRule(t, r, "C-BTREE")
}

// TestCompiledSingleTransitionSlots: a state with exactly one transition
// must duplicate it into both fast slots; the verifier accepts the
// canonical form produced by Compile for every strategy.
func TestCompiledSingleTransitionSlots(t *testing.T) {
	for _, strategy := range []string{"tt", "ctt"} {
		set, _ := recordedSet(t, 5, strategy, 8)
		a := core.Build(set)
		if r := Compiled(core.Compile(a, core.ConfigGlobalNoLocal)); !r.Clean() {
			t.Errorf("%s: %s", strategy, r)
		}
	}
}

// TestCompiledEmptyAutomaton: the degenerate NTE-only automaton (no traces
// recorded) still compiles and verifies clean.
func TestCompiledEmptyAutomaton(t *testing.T) {
	_, p := recordedSet(t, 1, "mret", 8)
	set := trace.NewSet("empty", p)
	a := core.Build(set)
	if r := Automaton(a, cfg.NewCache(p, cfg.StarDBT)); !r.Clean() {
		t.Fatalf("automaton: %s", r)
	}
	if r := Compiled(core.Compile(a, core.ConfigGlobalLocal)); !r.Clean() {
		t.Fatalf("compiled: %s", r)
	}
}
