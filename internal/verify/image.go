package verify

import (
	"fmt"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
)

// Image audits a serialized TEA image end-to-end: decode it against the
// program image, then run every automaton rule (including the CFG rules)
// and every compiled rule over the result. Anything core.Decode accepts
// must pass both rule families, or the findings say which rule rejected
// it and where.
//
// A decode rejection is itself reported as a W-DEC finding carrying the
// byte offset and field from the *core.DecodeError, so fuzzers and the CI
// gate handle "rejected" and "decoded but structurally bad" through one
// interface.
func Image(data []byte, cache *cfg.Cache, cfg core.LookupConfig) *Report {
	r := &Report{}
	a, err := core.Decode(data, cache)
	if err != nil {
		f := Finding{Rule: "W-DEC", Severity: Error, State: -1, Offset: -1,
			Locus: "image", Msg: err.Error()}
		if de, ok := err.(*core.DecodeError); ok {
			f.Offset = de.Offset
			f.Locus = fmt.Sprintf("offset %d (%s)", de.Offset, de.Field)
		}
		r.add(f)
		return r
	}
	r.Merge(Automaton(a, cache))
	r.Merge(Compiled(core.Compile(a, cfg)))
	r.normalize()
	return r
}
