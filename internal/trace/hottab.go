package trace

// hotTab is an open-addressed linear-probe counter table keyed by block
// head address. It replaces the map[uint64]int hot-head counters on the
// strategies' per-edge paths: incrementing an existing key or inserting
// into free capacity performs no heap allocation, so once the table has
// grown to cover the program's candidate heads, steady-state recording is
// allocation-free. Semantics are exact — the same counts, thresholds and
// deletions as the map it replaces — so trace selection is unchanged.
//
// Key 0 marks an empty slot; a real key 0 is displaced to a dedicated
// field. Deletions use tombstone-free backward-shift, so the table never
// degrades under the strategies' insert/delete churn.
type hotTab struct {
	keys   []uint64
	counts []int32
	n      int // live entries

	// zeroCount holds the counter of key 0 (cannot live in the table
	// because key 0 marks an empty slot). Address 0 is not a real block
	// head in practice, but correctness must not depend on that.
	zeroCount int32
	zeroLive  bool
}

// hotTabMinSize is the initial capacity (power of two).
const hotTabMinSize = 64

func newHotTab() *hotTab {
	return &hotTab{
		keys:   make([]uint64, hotTabMinSize),
		counts: make([]int32, hotTabMinSize),
	}
}

// hashAddr mixes a block head address into a table index seed
// (splitmix64-style finalizer; addresses are small and regular, so the
// low bits need the avalanche).
func hashAddr(a uint64) uint64 {
	a ^= a >> 30
	a *= 0xbf58476d1ce4e5b9
	a ^= a >> 27
	a *= 0x94d049bb133111eb
	a ^= a >> 31
	return a
}

// Inc increments key's counter and returns the new value.
func (h *hotTab) Inc(key uint64) int {
	if key == 0 {
		if !h.zeroLive {
			h.zeroLive = true
			h.zeroCount = 0
		}
		h.zeroCount++
		return int(h.zeroCount)
	}
	if (h.n+1)*4 >= len(h.keys)*3 {
		h.grow()
	}
	mask := uint64(len(h.keys) - 1)
	i := hashAddr(key) & mask
	for {
		k := h.keys[i]
		if k == key {
			h.counts[i]++
			return int(h.counts[i])
		}
		if k == 0 {
			h.keys[i] = key
			h.counts[i] = 1
			h.n++
			return 1
		}
		i = (i + 1) & mask
	}
}

// Get returns key's current counter (0 when absent) without mutating the
// table. The batch observers use it to decide whether the next Inc would
// cross the hot threshold — and hence whether to fall back to the exact
// per-edge path — before performing any side effect.
func (h *hotTab) Get(key uint64) int {
	if key == 0 {
		if h.zeroLive {
			return int(h.zeroCount)
		}
		return 0
	}
	mask := uint64(len(h.keys) - 1)
	i := hashAddr(key) & mask
	for {
		k := h.keys[i]
		if k == key {
			return int(h.counts[i])
		}
		if k == 0 {
			return 0
		}
		i = (i + 1) & mask
	}
}

// Del removes key's counter (the strategies reset a head's counter once it
// anchors a trace). Uses backward-shift deletion so no tombstones
// accumulate.
func (h *hotTab) Del(key uint64) {
	if key == 0 {
		h.zeroLive = false
		h.zeroCount = 0
		return
	}
	mask := uint64(len(h.keys) - 1)
	i := hashAddr(key) & mask
	for h.keys[i] != key {
		if h.keys[i] == 0 {
			return
		}
		i = (i + 1) & mask
	}
	// Backward-shift: close the hole by moving displaced entries up.
	h.n--
	for {
		h.keys[i] = 0
		h.counts[i] = 0
		j := i
		for {
			j = (j + 1) & mask
			k := h.keys[j]
			if k == 0 {
				return
			}
			home := hashAddr(k) & mask
			// Entry at j may move into the hole at i if its home position
			// does not lie (cyclically) strictly between i and j.
			if (j-home)&mask >= (j-i)&mask {
				h.keys[i] = k
				h.counts[i] = h.counts[j]
				i = j
				break
			}
		}
	}
}

// Len returns the number of live counters.
func (h *hotTab) Len() int {
	if h.zeroLive {
		return h.n + 1
	}
	return h.n
}

func (h *hotTab) grow() {
	old := h.keys
	oldC := h.counts
	h.keys = make([]uint64, len(old)*2)
	h.counts = make([]int32, len(old)*2)
	h.n = 0
	mask := uint64(len(h.keys) - 1)
	for i, k := range old {
		if k == 0 {
			continue
		}
		j := hashAddr(k) & mask
		for h.keys[j] != 0 {
			j = (j + 1) & mask
		}
		h.keys[j] = k
		h.counts[j] = oldC[i]
		h.n++
	}
}

// addrSet is an open-addressed membership set of block head addresses (the
// tree strategies' loop-head set). Add on an already-present key touches one
// slot in the common case, which matters because every taken backward
// branch re-marks its (long since marked) loop head.
type addrSet struct {
	keys     []uint64
	n        int
	zeroLive bool
}

func newAddrSet() *addrSet {
	return &addrSet{keys: make([]uint64, hotTabMinSize)}
}

// Add inserts key (idempotent).
func (s *addrSet) Add(key uint64) {
	if key == 0 {
		s.zeroLive = true
		return
	}
	if (s.n+1)*2 >= len(s.keys) {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	i := hashAddr(key) & mask
	for {
		k := s.keys[i]
		if k == key {
			return
		}
		if k == 0 {
			s.keys[i] = key
			s.n++
			return
		}
		i = (i + 1) & mask
	}
}

// Has reports membership.
func (s *addrSet) Has(key uint64) bool {
	if key == 0 {
		return s.zeroLive
	}
	mask := uint64(len(s.keys) - 1)
	i := hashAddr(key) & mask
	for {
		k := s.keys[i]
		if k == key {
			return true
		}
		if k == 0 {
			return false
		}
		i = (i + 1) & mask
	}
}

// Len returns the number of members.
func (s *addrSet) Len() int {
	if s.zeroLive {
		return s.n + 1
	}
	return s.n
}

func (s *addrSet) grow() {
	old := s.keys
	s.keys = make([]uint64, len(old)*2)
	s.n = 0
	mask := uint64(len(s.keys) - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		j := hashAddr(k) & mask
		for s.keys[j] != 0 {
			j = (j + 1) & mask
		}
		s.keys[j] = k
		s.n++
	}
}

// extTab is the open-addressed analogue for the tree strategies' side-exit
// counters, keyed by (exit TBB, target head). The full key is stored, so
// there are no collision merges — counts are exact.
type extTab struct {
	keys   []extKey
	counts []int32
	n      int
}

func newExtTab() *extTab {
	return &extTab{
		keys:   make([]extKey, hotTabMinSize),
		counts: make([]int32, hotTabMinSize),
	}
}

// hashExt mixes the TBB identity (trace ID and index — stable, unlike the
// pointer) with the target address.
func hashExt(k extKey) uint64 {
	h := uint64(k.tbb.Trace.ID)<<32 ^ uint64(uint32(k.tbb.Index))
	return hashAddr(h ^ hashAddr(k.target))
}

func (t *extTab) empty(i uint64) bool { return t.keys[i].tbb == nil }

// Inc increments the counter for k and returns the new value.
func (t *extTab) Inc(k extKey) int {
	if (t.n+1)*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := hashExt(k) & mask
	for {
		if t.keys[i] == k {
			t.counts[i]++
			return int(t.counts[i])
		}
		if t.empty(i) {
			t.keys[i] = k
			t.counts[i] = 1
			t.n++
			return 1
		}
		i = (i + 1) & mask
	}
}

// Get returns k's current counter (0 when absent) without mutating the
// table.
func (t *extTab) Get(k extKey) int {
	mask := uint64(len(t.keys) - 1)
	i := hashExt(k) & mask
	for {
		if t.keys[i] == k {
			return int(t.counts[i])
		}
		if t.empty(i) {
			return 0
		}
		i = (i + 1) & mask
	}
}

// Del removes k's counter with backward-shift deletion.
func (t *extTab) Del(k extKey) {
	mask := uint64(len(t.keys) - 1)
	i := hashExt(k) & mask
	for t.keys[i] != k {
		if t.empty(i) {
			return
		}
		i = (i + 1) & mask
	}
	t.n--
	for {
		t.keys[i] = extKey{}
		t.counts[i] = 0
		j := i
		for {
			j = (j + 1) & mask
			if t.empty(j) {
				return
			}
			home := hashExt(t.keys[j]) & mask
			if (j-home)&mask >= (j-i)&mask {
				t.keys[i] = t.keys[j]
				t.counts[i] = t.counts[j]
				i = j
				break
			}
		}
	}
}

// Len returns the number of live counters.
func (t *extTab) Len() int { return t.n }

func (t *extTab) grow() {
	old := t.keys
	oldC := t.counts
	t.keys = make([]extKey, len(old)*2)
	t.counts = make([]int32, len(old)*2)
	t.n = 0
	mask := uint64(len(t.keys) - 1)
	for i := range old {
		if old[i].tbb == nil {
			continue
		}
		j := hashExt(old[i]) & mask
		for !t.empty(j) {
			j = (j + 1) & mask
		}
		t.keys[j] = old[i]
		t.counts[j] = oldC[i]
		t.n++
	}
}
