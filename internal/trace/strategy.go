package trace

import (
	"context"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
)

// Config carries the knobs shared by all selection strategies.
type Config struct {
	// HotThreshold is the execution count at which a candidate trace head
	// becomes hot (Dynamo used ~50).
	HotThreshold int
	// MaxTraceBlocks bounds a linear (MRET/MFET) trace.
	MaxTraceBlocks int
	// MaxTreeBlocks bounds one trace tree (TT/CTT); once a tree reaches the
	// bound it is frozen and no longer extended.
	MaxTreeBlocks int
	// MaxSetBlocks bounds the total TBBs in the set; once reached, no new
	// traces or extensions are recorded. Zero selects the default; a
	// negative value means unbounded.
	MaxSetBlocks int
}

// DefaultConfig mirrors common DBT defaults (Dynamo's threshold of 50).
func DefaultConfig() Config {
	return Config{
		HotThreshold:   50,
		MaxTraceBlocks: 64,
		MaxTreeBlocks:  2048,
		MaxSetBlocks:   1 << 20,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HotThreshold <= 0 {
		c.HotThreshold = d.HotThreshold
	}
	if c.MaxTraceBlocks <= 0 {
		c.MaxTraceBlocks = d.MaxTraceBlocks
	}
	if c.MaxTreeBlocks <= 0 {
		c.MaxTreeBlocks = d.MaxTreeBlocks
	}
	switch {
	case c.MaxSetBlocks == 0:
		c.MaxSetBlocks = d.MaxSetBlocks
	case c.MaxSetBlocks < 0:
		c.MaxSetBlocks = 0 // unbounded
	}
	return c
}

// Strategy is a trace-selection policy consuming the dynamic edge stream.
// Implementations accumulate finished traces into their Set.
type Strategy interface {
	// Name identifies the strategy ("mret", "tt", "ctt", "mfet").
	Name() string
	// Observe consumes one edge. It returns the trace that was completed or
	// extended at this edge, or nil when the set did not change. The
	// returned trace lets an online consumer (the TEA recorder of
	// Algorithm 2) extend its automaton incrementally.
	Observe(e cfg.Edge) *Trace
	// Recording reports whether a trace is currently under construction —
	// Algorithm 2's Creating state.
	Recording() bool
	// Set returns the traces recorded so far.
	Set() *Set
}

// NewStrategy constructs a strategy by name.
func NewStrategy(name string, prog programSymbols, c Config) (Strategy, bool) {
	switch name {
	case "mret":
		return NewMRET(prog, c), true
	case "tt":
		return NewTT(prog, c), true
	case "ctt":
		return NewCTT(prog, c), true
	case "mfet":
		return NewMFET(prog, c), true
	}
	return nil, false
}

// StrategyNames lists the strategies evaluated in the paper's Table 1 plus
// the MFET extension, in the paper's column order.
func StrategyNames() []string { return []string{"mret", "ctt", "tt"} }

// RunInfo summarizes one recorded execution.
type RunInfo struct {
	// Steps counts dynamic instructions StarDBT-style (REP ops once).
	Steps uint64
	// PinSteps counts dynamic instructions Pin-style (REP iterations).
	PinSteps uint64
	// Edges counts block-to-block transitions.
	Edges uint64
	// Blocks is the number of distinct dynamic blocks discovered.
	Blocks int
}

// Record resets the machine, runs it to completion under the given block
// discipline, and feeds every edge to the strategy. It returns the recorded
// trace set. maxSteps caps the run; 0 means unbounded.
func Record(m *cpu.Machine, style cfg.Style, s Strategy, maxSteps uint64) (*Set, *RunInfo, error) {
	return RecordContext(context.Background(), m, style, s, maxSteps)
}

// ctxCheckMask batches the recorder's context polls to one per 1024 block
// edges, keeping the cancellation guard off the per-block hot path.
const ctxCheckMask = 1<<10 - 1

// RecordContext is Record with cancellation: a program that never halts
// cannot hang the caller when the context carries a deadline or is
// cancelled. The partial set and run info are returned alongside ctx.Err().
func RecordContext(ctx context.Context, m *cpu.Machine, style cfg.Style, s Strategy, maxSteps uint64) (*Set, *RunInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r := cfg.NewRunner(m, style)
	info := &RunInfo{}
	var canceled error
	var iter uint64
	for {
		if maxSteps > 0 && m.Steps() >= maxSteps {
			break
		}
		if iter&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				canceled = ctx.Err()
			default:
			}
			if canceled != nil {
				break
			}
		}
		iter++
		e, ok, err := r.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		if e.From != nil {
			info.Edges++
		}
		s.Observe(e)
		if e.To == nil {
			break
		}
	}
	info.Steps = m.Steps()
	info.PinSteps = m.PinSteps()
	info.Blocks = r.Cache().Len()
	return s.Set(), info, canceled
}

// backwardTaken reports whether the edge is a taken direct branch to an
// address at or before the branch: the loop back-edges MRET and the tree
// strategies key on.
func backwardTaken(e cfg.Edge) bool {
	if e.From == nil || e.To == nil || !e.Taken {
		return false
	}
	t := e.From.Term
	if t.IsIndirect() || !t.IsBranch() || t.IsCall() {
		return false
	}
	return t.Target <= t.Addr
}

// backFast computes the same predicate as backwardTaken from an edge
// pointer: the batch scans evaluate it once per edge, so it reads the
// flag cfg precomputed at decode time (Block.BackSrc is exactly the
// terminator conjunction backwardTaken re-derives) instead of chasing the
// terminator instruction.
func backFast(e *cfg.Edge) bool {
	return e.Taken && e.From != nil && e.To != nil && e.From.BackSrc
}
