package trace

// OccupancySource is implemented by strategies that can report the live
// size of their per-edge bookkeeping tables. The observability layer
// samples it at sync time into gauges: hot-head counter occupancy is the
// direct analogue of the paper's "how much cold-code profiling state does
// selection carry" question, and side-exit counter occupancy measures the
// tree strategies' extra bookkeeping.
type OccupancySource interface {
	// Occupancy returns the live hot-head counter count and the live
	// side-exit counter count (0 for strategies without side-exit counters).
	Occupancy() (hot, ext int)
}

// Occupancy reports MRET's live hot-head counters (MRET keeps no side-exit
// counters).
func (m *MRET) Occupancy() (hot, ext int) { return m.counters.Len(), 0 }

// Occupancy reports MFET's live hot-head counters (MFET keeps no side-exit
// counters).
func (m *MFET) Occupancy() (hot, ext int) { return m.counters.Len(), 0 }

// Occupancy reports the tree strategies' live loop-anchor counters and
// side-exit counters.
func (t *treeSelector) Occupancy() (hot, ext int) {
	return t.anchors.Len(), t.extCounts.Len()
}
