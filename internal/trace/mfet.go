package trace

import "github.com/lsc-tea/tea/internal/cfg"

// MFET implements Most Frequently Executed Tail selection [Cifuentes & Van
// Emmerik 2000], the edge-profiling strategy the paper contrasts with MRET
// in §5. It is not part of the paper's evaluation (Table 1 covers MRET, CTT
// and TT) and is provided as an extension. MFET instruments every edge;
// when a loop-header candidate becomes hot it forms the trace along the
// *most frequently executed* successor edges rather than the most recently
// executed path, which makes it robust to unluckily-timed recording but
// costs edge counters on the whole program.
type MFET struct {
	cfg Config
	set *Set

	counters *hotTab
	// edgeFreq[from] histograms the successor heads observed from block
	// `from` (keyed by head address).
	edgeFreq map[uint64]map[uint64]uint64
	// blocks remembers each observed block by head so traces can be formed
	// from the profile alone.
	blocks map[uint64]*cfg.Block
}

// NewMFET creates an MFET selector.
func NewMFET(prog programSymbols, c Config) *MFET {
	return &MFET{
		cfg:      c.withDefaults(),
		set:      NewSet("mfet", prog),
		counters: newHotTab(),
		edgeFreq: make(map[uint64]map[uint64]uint64),
		blocks:   make(map[uint64]*cfg.Block),
	}
}

// Name implements Strategy.
func (m *MFET) Name() string { return "mfet" }

// Set implements Strategy.
func (m *MFET) Set() *Set { return m.set }

// Observe implements Strategy.
func (m *MFET) Observe(e cfg.Edge) *Trace {
	if e.To == nil {
		return nil
	}
	m.blocks[e.To.Head] = e.To
	if e.From != nil {
		f := m.edgeFreq[e.From.Head]
		if f == nil {
			f = make(map[uint64]uint64, 2)
			m.edgeFreq[e.From.Head] = f
		}
		f[e.To.Head]++
	}
	if !backwardTaken(e) {
		return nil
	}
	head := e.To.Head
	if _, exists := m.set.ByEntry(head); exists {
		return nil
	}
	if m.counters.Inc(head) < m.cfg.HotThreshold {
		return nil
	}
	if m.cfg.MaxSetBlocks > 0 && m.set.NumTBBs() >= m.cfg.MaxSetBlocks {
		return nil
	}
	m.counters.Del(head)
	return m.form(e.To)
}

// form materializes a linear trace from the edge profile, following the
// hottest successor edge from each block.
func (m *MFET) form(head *cfg.Block) *Trace {
	t, err := m.set.NewTrace(head)
	if err != nil {
		return nil
	}
	seen := map[uint64]*TBB{head.Head: t.Head()}
	last := t.Head()
	for t.Len() < m.cfg.MaxTraceBlocks {
		nextHead, ok := m.hottestSucc(last.Block.Head)
		if !ok {
			break
		}
		// Cycle back into the trace: link and stop.
		if prev, ok := seen[nextHead]; ok {
			mustLink(last, prev)
			break
		}
		// Reached another trace: stop at its entry.
		if _, other := m.set.ByEntry(nextHead); other {
			break
		}
		b, ok := m.blocks[nextHead]
		if !ok {
			break
		}
		tbb := t.Append(b)
		mustLink(last, tbb)
		seen[nextHead] = tbb
		last = tbb
	}
	return t
}

// hottestSucc returns the most frequent successor head of `from`, breaking
// ties toward the lower address for determinism.
func (m *MFET) hottestSucc(from uint64) (uint64, bool) {
	f := m.edgeFreq[from]
	if len(f) == 0 {
		return 0, false
	}
	var best uint64
	var bestN uint64
	found := false
	for head, n := range f {
		if !found || n > bestN || (n == bestN && head < best) {
			best, bestN, found = head, n, true
		}
	}
	return best, true
}

// Recording implements Strategy. MFET forms traces instantly from its edge
// profile, so it is never in a Creating state. It has no ObserveFused fast
// path — its per-edge work is the edge-profile map update itself — so the
// batched recorder falls back to the sequential path for it.
func (m *MFET) Recording() bool { return false }
