package trace

import (
	"context"
	"errors"
	"testing"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/progs"
)

func TestRecordContextCanceled(t *testing.T) {
	p, err := asm.Assemble("spin", "e:\n addi eax, 1\n jmp e\n")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewStrategy("mret", p, Config{HotThreshold: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	set, info, err := RecordContext(ctx, cpu.New(p), cfg.StarDBT, s, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if set == nil || info == nil {
		t.Fatal("no partial results returned on cancellation")
	}
}

func TestRecordContextStepCap(t *testing.T) {
	p := progs.Figure2(60, 300)
	s, _ := NewStrategy("mret", p, Config{HotThreshold: 50})
	set, info, err := RecordContext(context.Background(), cpu.New(p), cfg.StarDBT, s, 500)
	if err != nil {
		t.Fatal(err)
	}
	if set == nil || info.Steps < 500 {
		t.Fatalf("capped run: set=%v steps=%d", set, info.Steps)
	}

	_, full, err := Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps >= full.Steps {
		t.Errorf("capped run executed the whole program: %d steps", info.Steps)
	}
}

func TestRecordContextNil(t *testing.T) {
	p := progs.Figure1(10, 1)
	s, _ := NewStrategy("mret", p, Config{HotThreshold: 5})
	if _, _, err := RecordContext(nil, cpu.New(p), cfg.StarDBT, s, 0); err != nil { //nolint:staticcheck
		t.Fatalf("nil context: %v", err)
	}
}
