package trace

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/progs"
)

// recordOn runs the named strategy over a program and returns the set.
func recordOn(t *testing.T, p *isa.Program, strategy string, c Config) (*Set, *RunInfo) {
	t.Helper()
	s, ok := NewStrategy(strategy, p, c)
	if !ok {
		t.Fatalf("unknown strategy %q", strategy)
	}
	set, info, err := Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	return set, info
}

func TestMRETFigure2Traces(t *testing.T) {
	p := progs.Figure2(60, 120)
	set, _ := recordOn(t, p, "mret", Config{HotThreshold: 50})

	// The scan loop must anchor a trace at $$header.
	header := p.Labels["header"]
	t1, ok := set.ByEntry(header)
	if !ok {
		t.Fatalf("no trace anchored at header; entries: %#x", set.Entries())
	}
	// T1 is header -> next -> back to header (the jne-not-taken path or the
	// inc path, whichever executed at recording time).
	if t1.Len() < 2 {
		t.Fatalf("T1 too short: %v", t1)
	}
	if t1.EntryAddr() != header {
		t.Errorf("T1 entry = 0x%x", t1.EntryAddr())
	}
	// The trace closes its cycle: the last TBB links back to the head.
	last := t1.TBBs[len(t1.TBBs)-1]
	if _, ok := last.Succs[header]; !ok {
		t.Errorf("T1 tail does not link back to header; succs=%v", last.SuccLabels())
	}

	// The other path out of the header's jne gets its own trace (the
	// paper's T2 anchored at $$inc or at $$next, depending on which path
	// recorded first).
	if set.Len() < 2 {
		t.Fatalf("expected at least 2 traces, got %v", set)
	}

	// Coverage sanity: all traces hold distinct TBBs.
	seen := make(map[*TBB]bool)
	for _, tr := range set.Traces {
		for _, b := range tr.TBBs {
			if seen[b] {
				t.Fatalf("TBB %v appears twice", b)
			}
			seen[b] = true
			if b.Trace != tr {
				t.Fatalf("TBB %v has wrong owner", b)
			}
		}
	}
}

func TestMRETThreshold(t *testing.T) {
	p := progs.Figure1(100, 2)
	// Only 2×100 = 200 iterations; a huge threshold records nothing.
	set, _ := recordOn(t, p, "mret", Config{HotThreshold: 100000})
	if set.Len() != 0 {
		t.Errorf("expected no traces below threshold, got %v", set)
	}
	set, _ = recordOn(t, p, "mret", Config{HotThreshold: 50})
	if set.Len() == 0 {
		t.Error("expected traces at threshold 50")
	}
}

func TestMRETMaxTraceBlocks(t *testing.T) {
	p := progs.Figure2(60, 120)
	set, _ := recordOn(t, p, "mret", Config{HotThreshold: 10, MaxTraceBlocks: 2})
	for _, tr := range set.Traces {
		if tr.Len() > 2 {
			t.Errorf("%v exceeds MaxTraceBlocks", tr)
		}
	}
}

func TestTBBNamesUsePaperNotation(t *testing.T) {
	p := progs.Figure2(60, 120)
	set, _ := recordOn(t, p, "mret", Config{HotThreshold: 50})
	t1, ok := set.ByEntry(p.Labels["header"])
	if !ok {
		t.Fatal("no header trace")
	}
	want := "$$T" + itoa(int(t1.ID)) + ".header"
	if got := t1.Head().Name(); got != want {
		t.Errorf("head name = %q, want %q", got, want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTTBuildsTreeWithBackEdges(t *testing.T) {
	p := progs.Figure2(60, 200)
	set, _ := recordOn(t, p, "tt", Config{HotThreshold: 20})
	header := p.Labels["header"]
	tree, ok := set.ByEntry(header)
	if !ok {
		t.Fatalf("no tree at header; entries %#x", set.Entries())
	}
	// Both sides of the jne eventually join the tree, so the tree grows
	// beyond the single recorded path.
	if tree.Len() < 3 {
		t.Errorf("tree only has %d TBBs; side exit never grew", tree.Len())
	}
	// Every leaf path links back to the anchor: at least two TBBs must have
	// the anchor as successor.
	back := 0
	for _, b := range tree.TBBs {
		if s, ok := b.Succs[header]; ok && s == tree.Head() {
			back++
		}
	}
	if back < 2 {
		t.Errorf("only %d back links to anchor", back)
	}
}

func TestCTTSmallerThanTT(t *testing.T) {
	// On a program with a branchy loop body, CTT should never be larger
	// than TT (it shares tails at loop headers).
	p := progs.Figure2(64, 400)
	tt, _ := recordOn(t, p, "tt", Config{HotThreshold: 20})
	ctt, _ := recordOn(t, p, "ctt", Config{HotThreshold: 20})
	if ctt.NumTBBs() > tt.NumTBBs() {
		t.Errorf("CTT (%d TBBs) larger than TT (%d TBBs)", ctt.NumTBBs(), tt.NumTBBs())
	}
}

func TestTreeFrozenAtCap(t *testing.T) {
	p := progs.Figure2(64, 400)
	set, _ := recordOn(t, p, "tt", Config{HotThreshold: 10, MaxTreeBlocks: 4})
	for _, tr := range set.Traces {
		if tr.Len() > 4 {
			t.Errorf("%v exceeds MaxTreeBlocks", tr)
		}
	}
}

func TestMFETFormsTracesFromProfile(t *testing.T) {
	p := progs.Figure2(60, 200)
	set, _ := recordOn(t, p, "mfet", Config{HotThreshold: 50})
	header := p.Labels["header"]
	tr, ok := set.ByEntry(header)
	if !ok {
		t.Fatalf("MFET recorded no trace at header")
	}
	// MFET follows the hottest successor: with values cycling 0..3 the
	// not-taken (non-inc) side dominates, so the trace follows jne to next.
	if tr.Len() < 2 {
		t.Errorf("MFET trace too short: %v", tr)
	}
}

func TestSetCodeBytesGrowsWithTraces(t *testing.T) {
	p := progs.Figure2(60, 200)
	set, _ := recordOn(t, p, "mret", Config{HotThreshold: 50})
	if set.Len() == 0 {
		t.Fatal("no traces")
	}
	if set.CodeBytes() == 0 {
		t.Error("CodeBytes = 0")
	}
	// Replication cost exceeds the raw instruction bytes (stubs, headers).
	var raw uint64
	for _, tr := range set.Traces {
		raw += tr.CodeBytes()
	}
	if set.CodeBytes() <= raw {
		t.Errorf("CodeBytes (%d) should exceed raw code bytes (%d)", set.CodeBytes(), raw)
	}
}

func TestSetEntriesSortedAndUnique(t *testing.T) {
	p := progs.Figure2(60, 200)
	set, _ := recordOn(t, p, "mret", Config{HotThreshold: 20})
	entries := set.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i-1] >= entries[i] {
			t.Fatal("entries unsorted or duplicated")
		}
	}
	for _, a := range entries {
		if _, ok := set.ByEntry(a); !ok {
			t.Fatalf("entry 0x%x unresolvable", a)
		}
	}
}

func TestNewTraceRejectsDuplicateEntry(t *testing.T) {
	p := progs.Figure1(10, 1)
	c := cfg.NewCache(p, cfg.StarDBT)
	b, err := c.BlockAt(p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	set := NewSet("x", p)
	if _, err := set.NewTrace(b); err != nil {
		t.Fatal(err)
	}
	if _, err := set.NewTrace(b); err == nil {
		t.Error("duplicate entry accepted")
	}
}

func TestLinkAcrossTracesErrors(t *testing.T) {
	p := progs.Figure1(10, 1)
	c := cfg.NewCache(p, cfg.StarDBT)
	b, _ := c.BlockAt(p.Entry)
	b2, _ := c.BlockAt(p.Labels["loop"])
	set := NewSet("x", p)
	t1, _ := set.NewTrace(b)
	t2, _ := set.NewTrace(b2)
	if err := t1.Head().Link(t2.Head()); err == nil {
		t.Error("cross-trace Link did not error")
	}
	if len(t1.Head().Succs) != 0 {
		t.Error("failed Link mutated the TBB")
	}
	// Same-trace linking still works and is idempotent.
	tb := t1.Append(b2)
	if err := t1.Head().Link(tb); err != nil {
		t.Fatalf("same-trace Link: %v", err)
	}
	if err := t1.Head().Link(tb); err != nil {
		t.Fatalf("repeated Link: %v", err)
	}
}

func TestRunInfoCounts(t *testing.T) {
	p := progs.Figure1(50, 4)
	s := NewMRET(p, Config{HotThreshold: 30})
	_, info, err := Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps == 0 || info.Edges == 0 || info.Blocks == 0 {
		t.Errorf("info = %+v", info)
	}
	if info.PinSteps < info.Steps {
		t.Errorf("PinSteps (%d) < Steps (%d)", info.PinSteps, info.Steps)
	}
}

func TestRecordRespectsMaxSteps(t *testing.T) {
	p := progs.Figure1(100, 100)
	s := NewMRET(p, Config{})
	m := cpu.New(p)
	_, info, err := Record(m, cfg.StarDBT, s, 500)
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps > 700 { // a block or two of slack beyond the cap
		t.Errorf("Steps = %d, cap was 500", info.Steps)
	}
}

func TestStrategyNames(t *testing.T) {
	for _, name := range append(StrategyNames(), "mfet") {
		s, ok := NewStrategy(name, nil, Config{})
		if !ok || s.Name() != name {
			t.Errorf("NewStrategy(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := NewStrategy("bogus", nil, Config{}); ok {
		t.Error("bogus strategy accepted")
	}
}

func TestFindByBlock(t *testing.T) {
	p := progs.Figure2(60, 200)
	set, _ := recordOn(t, p, "tt", Config{HotThreshold: 20})
	for _, tr := range set.Traces {
		for _, b := range tr.TBBs {
			found := tr.FindByBlock(b.Block.Head)
			ok := false
			for _, f := range found {
				if f == b {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("FindByBlock lost %v", b)
			}
		}
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c != d {
		t.Errorf("withDefaults = %+v, want %+v", c, d)
	}
	c2 := Config{HotThreshold: 7}.withDefaults()
	if c2.HotThreshold != 7 || c2.MaxTraceBlocks != d.MaxTraceBlocks {
		t.Errorf("partial defaults wrong: %+v", c2)
	}
}
