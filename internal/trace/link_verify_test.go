// Static-verifier assertions over trace.Link live in an external test
// package: internal/verify imports internal/trace, so the in-package test
// could not import the verifier without a cycle.
package trace_test

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/verify"
	"github.com/lsc-tea/tea/internal/workload"
)

// TestLinkOutputsVerify: for every strategy, the linked trace structure the
// recorder produces — Succs maps, head anchoring, chain indices — passes
// the full automaton rule family against the program image.
func TestLinkOutputsVerify(t *testing.T) {
	for _, strategy := range []string{"mret", "tt", "ctt", "mfet"} {
		for _, seed := range []int64{2, 13} {
			spec, _ := workload.ByName("181.mcf")
			spec.Seed = seed
			spec.WorkScale = 8
			p := workload.Program(spec)
			s, ok := trace.NewStrategy(strategy, p, trace.Config{HotThreshold: 10})
			if !ok {
				t.Fatalf("strategy %q", strategy)
			}
			set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			a := core.Build(set)
			if r := verify.Automaton(a, cfg.NewCache(p, cfg.StarDBT)); !r.Clean() {
				t.Errorf("%s seed %d: recorded links fail verification:\n%s", strategy, seed, r)
			}
		}
	}
}

// TestManualLinkVerifies: hand-built linking through the public Link API —
// the same calls the strategies make — yields a verifiable automaton, and
// re-linking the same successor stays idempotent under verification.
func TestManualLinkVerifies(t *testing.T) {
	spec, _ := workload.ByName("181.mcf")
	spec.Seed = 2
	spec.WorkScale = 8
	p := workload.Program(spec)
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 10})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var tr *trace.Trace
	for _, c := range set.Traces {
		if len(c.TBBs) >= 2 {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Skip("no trace with 2 TBBs")
	}
	// Idempotent re-link of an existing in-trace edge.
	if err := tr.TBBs[0].Link(tr.TBBs[1]); err != nil {
		t.Fatal(err)
	}
	a := core.Build(set)
	if r := verify.Automaton(a, cfg.NewCache(p, cfg.StarDBT)); !r.Clean() {
		t.Fatalf("re-linked set fails verification:\n%s", r)
	}
}
