package trace

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/workload"
)

// edgeSink captures every dynamic edge of a run.
type edgeSink struct{ edges []cfg.Edge }

func (s *edgeSink) Edge(e cfg.Edge, _ uint64) { s.edges = append(s.edges, e) }
func (s *edgeSink) Fini(uint64)               {}

// TestBackFastMatchesBackwardTaken checks, over real captured edge streams,
// that the flag-based back-edge test the batch scans use (Block.BackSrc,
// precomputed at decode time) agrees with backwardTaken's re-derivation
// from the terminator on every edge — including the initial From=nil
// pseudo-edge, the final To=nil edge, untaken conditionals, indirect
// branches and calls.
func TestBackFastMatchesBackwardTaken(t *testing.T) {
	for _, name := range []string{"176.gcc", "181.mcf", "253.perlbmk"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		p, err := workload.Generate(spec, 120_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sink := &edgeSink{}
		if _, err := pin.New().Run(p, sink, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mismatch, backs := 0, 0
		for i := range sink.edges {
			e := &sink.edges[i]
			slow := backwardTaken(*e)
			if slow {
				backs++
			}
			if fast := backFast(e); fast != slow {
				mismatch++
				if mismatch <= 5 {
					t.Errorf("%s edge %d: backFast=%v backwardTaken=%v (taken=%v)", name, i, fast, slow, e.Taken)
				}
			}
		}
		if mismatch > 0 {
			t.Fatalf("%s: %d mismatching edges", name, mismatch)
		}
		if backs == 0 {
			t.Fatalf("%s: stream has no taken backward branches; test exercised nothing", name)
		}
	}
}
