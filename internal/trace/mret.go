package trace

import "github.com/lsc-tea/tea/internal/cfg"

// MRET implements Most Recently Executed Tail selection — the NET strategy
// of Dynamo [Bala et al. 2000; Duesterwald & Bala 2000] that the paper uses
// for its recording experiment (Table 3). Potential trace heads are the
// targets of taken backward branches and the targets of exits from existing
// traces; when a head's execution counter crosses the hot threshold, the
// very next executed path is recorded as a linear trace (a superblock)
// until it closes a cycle, reaches another trace, takes an indirect branch,
// or hits the length cap.
type MRET struct {
	cfg Config
	set *Set

	counters *hotTab

	// pos tracks the TBB we would be executing if the recorded traces were
	// live; it detects trace exits so exit targets can be counted as head
	// candidates, mirroring Dynamo.
	pos *TBB

	recording bool
	cur       *Trace
	last      *TBB
}

// NewMRET creates an MRET selector.
func NewMRET(prog programSymbols, c Config) *MRET {
	return &MRET{
		cfg:      c.withDefaults(),
		set:      NewSet("mret", prog),
		counters: newHotTab(),
	}
}

// Name implements Strategy.
func (m *MRET) Name() string { return "mret" }

// Set implements Strategy.
func (m *MRET) Set() *Set { return m.set }

// Observe implements Strategy.
func (m *MRET) Observe(e cfg.Edge) *Trace {
	if e.To == nil {
		// Program end: a trace still being recorded is finished as-is.
		if m.recording {
			return m.finish()
		}
		return nil
	}
	if m.recording {
		return m.extend(e)
	}

	exitTarget := m.track(e)

	candidate := backwardTaken(e) || exitTarget
	if !candidate {
		return nil
	}
	head := e.To.Head
	if _, exists := m.set.ByEntry(head); exists {
		return nil
	}
	if m.counters.Inc(head) < m.cfg.HotThreshold {
		return nil
	}
	if m.cfg.MaxSetBlocks > 0 && m.set.NumTBBs() >= m.cfg.MaxSetBlocks {
		return nil
	}
	t, err := m.set.NewTrace(e.To)
	if err != nil {
		return nil
	}
	m.counters.Del(head)
	m.recording = true
	m.cur = t
	m.last = t.Head()
	m.pos = nil
	return nil
}

// track follows execution through already-recorded traces and reports
// whether this edge exits one (making e.To a trace-exit target and hence a
// head candidate).
func (m *MRET) track(e cfg.Edge) bool {
	wasIn := m.pos != nil
	if m.pos != nil {
		if next, ok := m.pos.Succs[e.To.Head]; ok {
			m.pos = next
			return false
		}
		m.pos = nil
	}
	if t, ok := m.set.ByEntry(e.To.Head); ok {
		m.pos = t.Head()
		return false
	}
	return wasIn
}

// extend appends the next executed block to the trace under construction,
// or ends the trace per the MRET stop rules.
func (m *MRET) extend(e cfg.Edge) *Trace {
	// Cycle closed back to the trace head: link and finish.
	if e.To.Head == m.cur.EntryAddr() {
		mustLink(m.last, m.cur.Head())
		return m.finish()
	}
	// Reached another trace or took a backward branch (end of loop body):
	// finish without the new block. Indirect branches are recorded through,
	// as Dynamo does — the next executed target simply becomes the next TBB.
	if _, other := m.set.ByEntry(e.To.Head); other ||
		backwardTaken(e) ||
		m.cur.Len() >= m.cfg.MaxTraceBlocks {
		return m.finish()
	}
	tbb := m.cur.Append(e.To)
	mustLink(m.last, tbb)
	m.last = tbb
	return nil
}

func (m *MRET) finish() *Trace {
	t := m.cur
	m.recording = false
	m.cur, m.last = nil, nil
	return t
}

// Recording implements Strategy.
func (m *MRET) Recording() bool { return m.recording }

// room reports whether the set may still grow (the MaxSetBlocks guard).
func (m *MRET) room() bool {
	return m.cfg.MaxSetBlocks <= 0 || m.set.NumTBBs() < m.cfg.MaxSetBlocks
}

// HotCandidate implements QuietObserver: it answers, without mutating
// anything, whether counting this head candidate would trigger recording —
// exactly the decide-before-mutate test ObserveFused applies.
func (m *MRET) HotCandidate(head uint64) bool {
	return m.counters.Get(head)+1 >= m.cfg.HotThreshold && m.room()
}

// CountCandidate implements QuietObserver: the non-triggering arm of the
// candidate policy.
func (m *MRET) CountCandidate(head uint64) { m.counters.Inc(head) }

// SeekTBB implements QuietObserver: it repositions the trace-following
// cursor, re-establishing lockstep after out-of-band (speculatively
// scanned) edges were accounted past the strategy.
func (m *MRET) SeekTBB(t *TBB) { m.pos = t }

// CursorTBB implements QuietObserver.
func (m *MRET) CursorTBB() *TBB { return m.pos }

// ObserveFused implements FusedObserver: one scan performs both the
// replayer's automaton dispatch (cursor, counters — via v) and MRET's own
// bookkeeping, because the automaton's transitions mirror the TBB links the
// strategy would otherwise re-follow. The span hit/miss outcome stands in
// for the trace-following cursor: a hit is an in-trace move, a miss that
// resolves to an entry state is a transfer into another trace, and a miss
// that resolves to NTE is a trace exit (whose target Dynamo counts as a
// head candidate regardless of branch direction). The counter policy
// mirrors Observe exactly — decide-before-mutate — so the eventful edge
// reaches Observe with no strategy side effect applied; its replayer
// transition, though, is applied first, which is the sequential recorder's
// Advance-before-Observe order.
func (m *MRET) ObserveFused(edges []cfg.Edge, instrs []uint64, v *AutoView) (int, *Trace) {
	cur := v.Cur
	// The strategy cursor and the automaton cursor must be in lockstep for
	// one dispatch to serve both; if they are not (possible transiently for
	// other strategies after a link event), ask the caller to step
	// sequentially until they reconverge.
	if cur == 0 {
		if m.pos != nil {
			return 0, nil
		}
	} else if v.TBBs[cur] != m.pos {
		return 0, nil
	}
	i, n := 0, len(edges)
	thresh := m.cfg.HotThreshold
	start, labs, tgts := v.Start, v.Labels, v.Targets
	// Entry-table storage, hoisted for the manually inlined home-slot probe
	// below (the method form exceeds the inlining budget). The table cannot
	// change mid-scan: entries are only added by the caller's sync, which
	// runs after the scan returns.
	ekeys, evals := v.EKeys, v.EVals
	emask := uint64(len(ekeys) - 1)
	haveEntries := len(ekeys) != 0
	srcBlk, srcBack := v.SrcBlock, v.SrcBack
	var blocks, dynInstrs, traceBlocks, traceInstrs uint64
	var inTraceHits, enters, globalLookups, globalHits uint64
	flush := func() {
		v.Cur = cur
		v.Blocks += blocks
		v.Instrs += dynInstrs
		v.TraceBlocks += traceBlocks
		v.TraceInstrs += traceInstrs
		v.InTraceHits += inTraceHits
		v.Enters += enters
		v.GlobalLookups += globalLookups
		v.GlobalHits += globalHits
	}
	for i < n {
		e := &edges[i]
		if ins := instrs[i]; ins != 0 {
			blocks++
			dynInstrs += ins
			if cur != 0 {
				traceBlocks++
				traceInstrs += ins
			}
		}
		if e.To == nil {
			// Program end: account only — no transition, and the strategy
			// (not recording) ignores the edge.
			i++
			continue
		}
		head := e.To.Head
		prev := cur
		// backFast(e), answered from the flat per-state cache when the
		// edge's source is the current state's own block (the lockstep
		// case) — the pointer compare avoids dereferencing e.From.
		back := false
		if e.Taken {
			if f := e.From; f != nil {
				if f == srcBlk[prev] {
					back = srcBack[prev]
				} else {
					back = f.BackSrc
				}
			}
		}
		hit := false
		if cur != 0 {
			lo, hi := int(start[cur]), int(start[cur+1])
			if hi-lo <= 8 {
				for j := lo; j < hi; j++ {
					if labs[j] == head {
						cur = tgts[j]
						hit = true
						break
					}
				}
			} else {
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if labs[mid] < head {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo < int(start[cur+1]) && labs[lo] == head {
					cur = tgts[lo]
					hit = true
				}
			}
			if hit {
				inTraceHits++
			} else {
				cur = v.miss(cur, head)
			}
		} else {
			globalLookups++
			cur = 0
			if haveEntries && head != 0 {
				// Home slot inline; only displaced keys spill to the probe
				// loop. Entry states are never 0, so a hit always enters.
				if j := HashAddr(head) & emask; ekeys[j] == head {
					globalHits++
					cur = evals[j]
				} else if ekeys[j] != 0 {
					if s, ok := v.entrySpill(head, j, emask); ok {
						globalHits++
						cur = s
					}
				}
			} else if s, ok := v.entry(head); ok {
				globalHits++
				cur = s
			}
			if cur != 0 {
				enters++
			}
		}
		if cur != 0 && v.Desynced {
			v.Desynced = false
			v.Resyncs++
		}
		// Strategy bookkeeping. Candidates: taken backward branches anywhere,
		// plus trace-exit targets; a target that already anchors a trace is
		// never counted.
		candidate := false
		if hit {
			if back {
				// A hit landing on a root state means head anchors that
				// trace — traced without probing the entry table. MRET
				// closes loops back to the trace head, so this is the
				// steady-state back edge.
				if !v.Root[cur] {
					if _, traced := v.entry(head); !traced {
						candidate = true
					}
				}
			}
		} else if cur == 0 {
			candidate = prev != 0 || back
		}
		if candidate {
			if m.counters.Get(head)+1 >= thresh && m.room() {
				// The next increment triggers recording: re-run this edge's
				// strategy logic through Observe (its replayer transition is
				// already applied above).
				m.pos = v.TBBs[prev]
				rec := m.recording
				changed := m.Observe(edges[i])
				i++
				if changed != nil || m.recording != rec {
					flush()
					return i, changed
				}
				// The event did not materialize (e.g. the trace could not be
				// created); Observe applied the edge, so the cursors are
				// still in lockstep — keep scanning.
				continue
			}
			m.counters.Inc(head)
		}
		i++
	}
	flush()
	m.pos = v.TBBs[cur]
	return n, nil
}
