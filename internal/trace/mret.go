package trace

import "github.com/lsc-tea/tea/internal/cfg"

// MRET implements Most Recently Executed Tail selection — the NET strategy
// of Dynamo [Bala et al. 2000; Duesterwald & Bala 2000] that the paper uses
// for its recording experiment (Table 3). Potential trace heads are the
// targets of taken backward branches and the targets of exits from existing
// traces; when a head's execution counter crosses the hot threshold, the
// very next executed path is recorded as a linear trace (a superblock)
// until it closes a cycle, reaches another trace, takes an indirect branch,
// or hits the length cap.
type MRET struct {
	cfg Config
	set *Set

	counters map[uint64]int

	// pos tracks the TBB we would be executing if the recorded traces were
	// live; it detects trace exits so exit targets can be counted as head
	// candidates, mirroring Dynamo.
	pos *TBB

	recording bool
	cur       *Trace
	last      *TBB
}

// NewMRET creates an MRET selector.
func NewMRET(prog programSymbols, c Config) *MRET {
	return &MRET{
		cfg:      c.withDefaults(),
		set:      NewSet("mret", prog),
		counters: make(map[uint64]int),
	}
}

// Name implements Strategy.
func (m *MRET) Name() string { return "mret" }

// Set implements Strategy.
func (m *MRET) Set() *Set { return m.set }

// Observe implements Strategy.
func (m *MRET) Observe(e cfg.Edge) *Trace {
	if e.To == nil {
		// Program end: a trace still being recorded is finished as-is.
		if m.recording {
			return m.finish()
		}
		return nil
	}
	if m.recording {
		return m.extend(e)
	}

	exitTarget := m.track(e)

	candidate := backwardTaken(e) || exitTarget
	if !candidate {
		return nil
	}
	head := e.To.Head
	if _, exists := m.set.ByEntry(head); exists {
		return nil
	}
	m.counters[head]++
	if m.counters[head] < m.cfg.HotThreshold {
		return nil
	}
	if m.cfg.MaxSetBlocks > 0 && m.set.NumTBBs() >= m.cfg.MaxSetBlocks {
		return nil
	}
	t, err := m.set.NewTrace(e.To)
	if err != nil {
		return nil
	}
	delete(m.counters, head)
	m.recording = true
	m.cur = t
	m.last = t.Head()
	m.pos = nil
	return nil
}

// track follows execution through already-recorded traces and reports
// whether this edge exits one (making e.To a trace-exit target and hence a
// head candidate).
func (m *MRET) track(e cfg.Edge) bool {
	wasIn := m.pos != nil
	if m.pos != nil {
		if next, ok := m.pos.Succs[e.To.Head]; ok {
			m.pos = next
			return false
		}
		m.pos = nil
	}
	if t, ok := m.set.ByEntry(e.To.Head); ok {
		m.pos = t.Head()
		return false
	}
	return wasIn
}

// extend appends the next executed block to the trace under construction,
// or ends the trace per the MRET stop rules.
func (m *MRET) extend(e cfg.Edge) *Trace {
	// Cycle closed back to the trace head: link and finish.
	if e.To.Head == m.cur.EntryAddr() {
		mustLink(m.last, m.cur.Head())
		return m.finish()
	}
	// Reached another trace or took a backward branch (end of loop body):
	// finish without the new block. Indirect branches are recorded through,
	// as Dynamo does — the next executed target simply becomes the next TBB.
	if _, other := m.set.ByEntry(e.To.Head); other ||
		backwardTaken(e) ||
		m.cur.Len() >= m.cfg.MaxTraceBlocks {
		return m.finish()
	}
	tbb := m.cur.Append(e.To)
	mustLink(m.last, tbb)
	m.last = tbb
	return nil
}

func (m *MRET) finish() *Trace {
	t := m.cur
	m.recording = false
	m.cur, m.last = nil, nil
	return t
}

// Recording implements Strategy.
func (m *MRET) Recording() bool { return m.recording }
