package trace

import "github.com/lsc-tea/tea/internal/cfg"

// treeSelector implements Trace Trees (TT) [Gal & Franz 2006] and Compact
// Trace Trees (CTT) [Porto et al. 2009], the other two strategies of
// Table 1. A tree is anchored at a hot loop header; its main path is
// recorded until execution returns to the anchor, and every hot side exit
// is later grown into a new branch of the tree by duplicating the blocks on
// the path back to the anchor. CTT differs only in where a growing path may
// stop: at *any* loop header already present in the tree, not just the
// anchor, which removes most of the tail duplication TT suffers — that
// difference is exactly the TT-column blowup Table 1 shows for gzip/bzip2.
type treeSelector struct {
	name    string
	compact bool
	cfg     Config
	set     *Set

	// anchors counts executions of loop-header candidates.
	anchors map[uint64]int
	// loopHeads is every address observed as the target of a taken
	// backward branch.
	loopHeads map[uint64]bool
	// extCounts counts executions of a specific side exit (TBB × target).
	extCounts map[extKey]int

	// frozen marks trees that hit MaxTreeBlocks and must not grow.
	frozen map[*Trace]bool
	// headerTBBs maps, per tree, a loop-header address to the TBB a CTT
	// path may link back to.
	headerTBBs map[*Trace]map[uint64]*TBB

	// pos is the TBB execution currently sits on, when inside a tree.
	pos *TBB

	// recording state: a path growing toward the anchor of tree cur.
	recording bool
	cur       *Trace
	last      *TBB
}

type extKey struct {
	tbb    *TBB
	target uint64
}

// NewTT creates a Trace Trees selector.
func NewTT(prog programSymbols, c Config) Strategy {
	return newTree("tt", false, prog, c)
}

// NewCTT creates a Compact Trace Trees selector.
func NewCTT(prog programSymbols, c Config) Strategy {
	return newTree("ctt", true, prog, c)
}

func newTree(name string, compact bool, prog programSymbols, c Config) *treeSelector {
	return &treeSelector{
		name:       name,
		compact:    compact,
		cfg:        c.withDefaults(),
		set:        NewSet(name, prog),
		anchors:    make(map[uint64]int),
		loopHeads:  make(map[uint64]bool),
		extCounts:  make(map[extKey]int),
		frozen:     make(map[*Trace]bool),
		headerTBBs: make(map[*Trace]map[uint64]*TBB),
	}
}

// Name implements Strategy.
func (t *treeSelector) Name() string { return t.name }

// Set implements Strategy.
func (t *treeSelector) Set() *Set { return t.set }

// Observe implements Strategy.
func (t *treeSelector) Observe(e cfg.Edge) *Trace {
	if e.To == nil {
		if t.recording {
			// Program ended mid-path; the blocks already added stay in the
			// tree with their tail exiting to cold code.
			return t.finishPath()
		}
		return nil
	}
	if backwardTaken(e) {
		t.loopHeads[e.To.Head] = true
	}
	if t.recording {
		return t.grow(e)
	}
	if changed := t.follow(e); changed != nil {
		return changed
	}
	t.countAnchor(e)
	return nil
}

// grow extends the path being recorded by one block, or closes it.
func (t *treeSelector) grow(e cfg.Edge) *Trace {
	// Path closes at the anchor.
	if e.To.Head == t.cur.EntryAddr() {
		mustLink(t.last, t.cur.Head())
		return t.finishPath()
	}
	// CTT: the path may also close at any loop header already in the tree.
	if t.compact {
		if tb, ok := t.headerTBBs[t.cur][e.To.Head]; ok {
			mustLink(t.last, tb)
			return t.finishPath()
		}
	}
	if t.cur.Len() >= t.cfg.MaxTreeBlocks {
		t.frozen[t.cur] = true
		return t.finishPath()
	}
	if t.cfg.MaxSetBlocks > 0 && t.set.NumTBBs() >= t.cfg.MaxSetBlocks {
		return t.finishPath()
	}
	tbb := t.cur.Append(e.To)
	mustLink(t.last, tbb)
	t.last = tbb
	t.registerHeader(t.cur, tbb)
	return nil
}

// follow tracks execution through recorded trees and grows hot side exits.
// It returns a non-nil trace when the tree changed (a free link was added
// or an extension started, which adds a TBB).
func (t *treeSelector) follow(e cfg.Edge) *Trace {
	if t.pos != nil {
		if next, ok := t.pos.Succs[e.To.Head]; ok {
			t.pos = next
			return nil
		}
		// Side exit from t.pos toward e.To.
		exitFrom := t.pos
		tree := exitFrom.Trace
		t.pos = nil
		if changed := t.sideExit(tree, exitFrom, e); changed != nil {
			return changed
		}
	}
	if tr, ok := t.set.ByEntry(e.To.Head); ok {
		t.pos = tr.Head()
	}
	return nil
}

// sideExit handles execution leaving the tree at exitFrom toward e.To.
func (t *treeSelector) sideExit(tree *Trace, exitFrom *TBB, e cfg.Edge) *Trace {
	// A transfer straight back to the anchor — or, for CTT, to a loop
	// header already in the tree — needs no duplication: link immediately.
	if e.To.Head == tree.EntryAddr() {
		mustLink(exitFrom, tree.Head())
		t.pos = tree.Head()
		return tree
	}
	if t.compact {
		if tb, ok := t.headerTBBs[tree][e.To.Head]; ok {
			mustLink(exitFrom, tb)
			t.pos = tb
			return tree
		}
	}
	if t.frozen[tree] {
		return nil
	}
	if t.cfg.MaxSetBlocks > 0 && t.set.NumTBBs() >= t.cfg.MaxSetBlocks {
		return nil
	}
	// Entering another tree is preferred over growing this one.
	if _, other := t.set.ByEntry(e.To.Head); other {
		return nil
	}
	k := extKey{exitFrom, e.To.Head}
	t.extCounts[k]++
	if t.extCounts[k] < t.cfg.HotThreshold {
		return nil
	}
	delete(t.extCounts, k)
	if tree.Len() >= t.cfg.MaxTreeBlocks {
		t.frozen[tree] = true
		return nil
	}
	// Start growing a new branch: duplicate e.To into the tree.
	tbb := tree.Append(e.To)
	mustLink(exitFrom, tbb)
	t.recording = true
	t.cur = tree
	t.last = tbb
	t.registerHeader(tree, tbb)
	return tree
}

// countAnchor counts loop-header executions and roots a new tree when one
// becomes hot.
func (t *treeSelector) countAnchor(e cfg.Edge) {
	if !backwardTaken(e) {
		return
	}
	head := e.To.Head
	if _, exists := t.set.ByEntry(head); exists {
		return
	}
	t.anchors[head]++
	if t.anchors[head] < t.cfg.HotThreshold {
		return
	}
	if t.cfg.MaxSetBlocks > 0 && t.set.NumTBBs() >= t.cfg.MaxSetBlocks {
		return
	}
	tr, err := t.set.NewTrace(e.To)
	if err != nil {
		return
	}
	delete(t.anchors, head)
	t.recording = true
	t.cur = tr
	t.last = tr.Head()
	t.registerHeader(tr, tr.Head())
	t.pos = nil
}

// registerHeader remembers the first TBB instance of each loop header per
// tree, so CTT paths can link back to it.
func (t *treeSelector) registerHeader(tr *Trace, tbb *TBB) {
	if !t.compact {
		return
	}
	addr := tbb.Block.Head
	if addr != tr.EntryAddr() && !t.loopHeads[addr] {
		return
	}
	m := t.headerTBBs[tr]
	if m == nil {
		m = make(map[uint64]*TBB)
		t.headerTBBs[tr] = m
	}
	if _, ok := m[addr]; !ok {
		m[addr] = tbb
	}
}

func (t *treeSelector) finishPath() *Trace {
	tr := t.cur
	t.recording = false
	t.cur, t.last = nil, nil
	return tr
}

// Recording implements Strategy.
func (t *treeSelector) Recording() bool { return t.recording }
