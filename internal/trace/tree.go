package trace

import "github.com/lsc-tea/tea/internal/cfg"

// treeSelector implements Trace Trees (TT) [Gal & Franz 2006] and Compact
// Trace Trees (CTT) [Porto et al. 2009], the other two strategies of
// Table 1. A tree is anchored at a hot loop header; its main path is
// recorded until execution returns to the anchor, and every hot side exit
// is later grown into a new branch of the tree by duplicating the blocks on
// the path back to the anchor. CTT differs only in where a growing path may
// stop: at *any* loop header already present in the tree, not just the
// anchor, which removes most of the tail duplication TT suffers — that
// difference is exactly the TT-column blowup Table 1 shows for gzip/bzip2.
type treeSelector struct {
	name    string
	compact bool
	cfg     Config
	set     *Set

	// anchors counts executions of loop-header candidates.
	anchors *hotTab
	// loopHeads is every address observed as the target of a taken
	// backward branch.
	loopHeads *addrSet
	// extCounts counts executions of a specific side exit (TBB × target).
	extCounts *extTab

	// frozen marks trees that hit MaxTreeBlocks and must not grow.
	frozen map[*Trace]bool
	// headerTBBs maps, per tree, a loop-header address to the TBB a CTT
	// path may link back to.
	headerTBBs map[*Trace]map[uint64]*TBB

	// pos is the TBB execution currently sits on, when inside a tree.
	pos *TBB

	// recording state: a path growing toward the anchor of tree cur.
	recording bool
	cur       *Trace
	last      *TBB
}

type extKey struct {
	tbb    *TBB
	target uint64
}

// NewTT creates a Trace Trees selector.
func NewTT(prog programSymbols, c Config) Strategy {
	return newTree("tt", false, prog, c)
}

// NewCTT creates a Compact Trace Trees selector.
func NewCTT(prog programSymbols, c Config) Strategy {
	return newTree("ctt", true, prog, c)
}

func newTree(name string, compact bool, prog programSymbols, c Config) *treeSelector {
	return &treeSelector{
		name:       name,
		compact:    compact,
		cfg:        c.withDefaults(),
		set:        NewSet(name, prog),
		anchors:    newHotTab(),
		loopHeads:  newAddrSet(),
		extCounts:  newExtTab(),
		frozen:     make(map[*Trace]bool),
		headerTBBs: make(map[*Trace]map[uint64]*TBB),
	}
}

// Name implements Strategy.
func (t *treeSelector) Name() string { return t.name }

// Set implements Strategy.
func (t *treeSelector) Set() *Set { return t.set }

// Observe implements Strategy.
func (t *treeSelector) Observe(e cfg.Edge) *Trace {
	if e.To == nil {
		if t.recording {
			// Program ended mid-path; the blocks already added stay in the
			// tree with their tail exiting to cold code.
			return t.finishPath()
		}
		return nil
	}
	if backwardTaken(e) {
		t.loopHeads.Add(e.To.Head)
	}
	if t.recording {
		return t.grow(e)
	}
	if changed := t.follow(e); changed != nil {
		return changed
	}
	t.countAnchor(e)
	return nil
}

// grow extends the path being recorded by one block, or closes it.
func (t *treeSelector) grow(e cfg.Edge) *Trace {
	// Path closes at the anchor.
	if e.To.Head == t.cur.EntryAddr() {
		mustLink(t.last, t.cur.Head())
		return t.finishPath()
	}
	// CTT: the path may also close at any loop header already in the tree.
	if t.compact {
		if tb, ok := t.headerTBBs[t.cur][e.To.Head]; ok {
			mustLink(t.last, tb)
			return t.finishPath()
		}
	}
	if t.cur.Len() >= t.cfg.MaxTreeBlocks {
		t.frozen[t.cur] = true
		return t.finishPath()
	}
	if t.cfg.MaxSetBlocks > 0 && t.set.NumTBBs() >= t.cfg.MaxSetBlocks {
		return t.finishPath()
	}
	tbb := t.cur.Append(e.To)
	mustLink(t.last, tbb)
	t.last = tbb
	t.registerHeader(t.cur, tbb)
	return nil
}

// follow tracks execution through recorded trees and grows hot side exits.
// It returns a non-nil trace when the tree changed (a free link was added
// or an extension started, which adds a TBB).
func (t *treeSelector) follow(e cfg.Edge) *Trace {
	if t.pos != nil {
		if next, ok := t.pos.Succs[e.To.Head]; ok {
			t.pos = next
			return nil
		}
		// Side exit from t.pos toward e.To.
		exitFrom := t.pos
		tree := exitFrom.Trace
		t.pos = nil
		if changed := t.sideExit(tree, exitFrom, e); changed != nil {
			return changed
		}
	}
	if tr, ok := t.set.ByEntry(e.To.Head); ok {
		t.pos = tr.Head()
	}
	return nil
}

// sideExit handles execution leaving the tree at exitFrom toward e.To.
func (t *treeSelector) sideExit(tree *Trace, exitFrom *TBB, e cfg.Edge) *Trace {
	// A transfer straight back to the anchor — or, for CTT, to a loop
	// header already in the tree — needs no duplication: link immediately.
	if e.To.Head == tree.EntryAddr() {
		mustLink(exitFrom, tree.Head())
		t.pos = tree.Head()
		return tree
	}
	if t.compact {
		if tb, ok := t.headerTBBs[tree][e.To.Head]; ok {
			mustLink(exitFrom, tb)
			t.pos = tb
			return tree
		}
	}
	if t.frozen[tree] {
		return nil
	}
	if t.cfg.MaxSetBlocks > 0 && t.set.NumTBBs() >= t.cfg.MaxSetBlocks {
		return nil
	}
	// Entering another tree is preferred over growing this one.
	if _, other := t.set.ByEntry(e.To.Head); other {
		return nil
	}
	k := extKey{exitFrom, e.To.Head}
	if t.extCounts.Inc(k) < t.cfg.HotThreshold {
		return nil
	}
	t.extCounts.Del(k)
	if tree.Len() >= t.cfg.MaxTreeBlocks {
		t.frozen[tree] = true
		return nil
	}
	// Start growing a new branch: duplicate e.To into the tree.
	tbb := tree.Append(e.To)
	mustLink(exitFrom, tbb)
	t.recording = true
	t.cur = tree
	t.last = tbb
	t.registerHeader(tree, tbb)
	return tree
}

// countAnchor counts loop-header executions and roots a new tree when one
// becomes hot.
func (t *treeSelector) countAnchor(e cfg.Edge) {
	if !backwardTaken(e) {
		return
	}
	head := e.To.Head
	if _, exists := t.set.ByEntry(head); exists {
		return
	}
	if t.anchors.Inc(head) < t.cfg.HotThreshold {
		return
	}
	if t.cfg.MaxSetBlocks > 0 && t.set.NumTBBs() >= t.cfg.MaxSetBlocks {
		return
	}
	tr, err := t.set.NewTrace(e.To)
	if err != nil {
		return
	}
	t.anchors.Del(head)
	t.recording = true
	t.cur = tr
	t.last = tr.Head()
	t.registerHeader(tr, tr.Head())
	t.pos = nil
}

// registerHeader remembers the first TBB instance of each loop header per
// tree, so CTT paths can link back to it.
func (t *treeSelector) registerHeader(tr *Trace, tbb *TBB) {
	if !t.compact {
		return
	}
	addr := tbb.Block.Head
	if addr != tr.EntryAddr() && !t.loopHeads.Has(addr) {
		return
	}
	m := t.headerTBBs[tr]
	if m == nil {
		m = make(map[uint64]*TBB)
		t.headerTBBs[tr] = m
	}
	if _, ok := m[addr]; !ok {
		m[addr] = tbb
	}
}

func (t *treeSelector) finishPath() *Trace {
	tr := t.cur
	t.recording = false
	t.cur, t.last = nil, nil
	return tr
}

// Recording implements Strategy.
func (t *treeSelector) Recording() bool { return t.recording }

// room reports whether the set may still grow (the MaxSetBlocks guard).
func (t *treeSelector) room() bool {
	return t.cfg.MaxSetBlocks <= 0 || t.set.NumTBBs() < t.cfg.MaxSetBlocks
}

// ObserveFused implements FusedObserver: one scan performs both the
// replayer's automaton dispatch (cursor, counters — via v) and the tree
// selector's bookkeeping, the automaton's transitions standing in for the
// TBB links the strategy would otherwise re-follow. Edges that would mutate
// a tree — an immediate link back to the anchor or to a CTT header, a hot
// side exit growing a branch, a hot anchor rooting a new tree — run through
// the exact Observe logic after their replayer transition has been applied
// (the sequential recorder's Advance-before-Observe order); everything else
// commits its side effects in Observe's own order (loop-head mark,
// side-exit count, anchor count) after all fallback decisions are made.
//
// An immediate link sets the strategy cursor to a mid-tree header while the
// automaton cursor (computed before the link existed) fell back to NTE;
// until the two reconverge — at the latest on the next transfer out of the
// tree — the entry lockstep check fails and the caller steps sequentially.
func (t *treeSelector) ObserveFused(edges []cfg.Edge, instrs []uint64, v *AutoView) (int, *Trace) {
	cur := v.Cur
	if cur == 0 {
		if t.pos != nil {
			return 0, nil
		}
	} else if v.TBBs[cur] != t.pos {
		return 0, nil
	}
	i, n := 0, len(edges)
	thresh := t.cfg.HotThreshold
	start, labs, tgts := v.Start, v.Labels, v.Targets
	// Entry-table storage, hoisted for the manually inlined home-slot probe
	// below (the method form exceeds the inlining budget). The table cannot
	// change mid-scan: entries are only added by the caller's sync, which
	// runs after the scan returns.
	ekeys, evals := v.EKeys, v.EVals
	emask := uint64(len(ekeys) - 1)
	haveEntries := len(ekeys) != 0
	srcBlk, srcBack := v.SrcBlock, v.SrcBack
	var blocks, dynInstrs, traceBlocks, traceInstrs uint64
	var inTraceHits, enters, globalLookups, globalHits uint64
	flush := func() {
		v.Cur = cur
		v.Blocks += blocks
		v.Instrs += dynInstrs
		v.TraceBlocks += traceBlocks
		v.TraceInstrs += traceInstrs
		v.InTraceHits += inTraceHits
		v.Enters += enters
		v.GlobalLookups += globalLookups
		v.GlobalHits += globalHits
	}
	for i < n {
		e := &edges[i]
		if ins := instrs[i]; ins != 0 {
			blocks++
			dynInstrs += ins
			if cur != 0 {
				traceBlocks++
				traceInstrs += ins
			}
		}
		if e.To == nil {
			i++
			continue
		}
		head := e.To.Head
		prev := cur
		// backFast(e), answered from the flat per-state cache when the
		// edge's source is the current state's own block (the lockstep
		// case) — the pointer compare avoids dereferencing e.From.
		back := false
		if e.Taken {
			if f := e.From; f != nil {
				if f == srcBlk[prev] {
					back = srcBack[prev]
				} else {
					back = f.BackSrc
				}
			}
		}
		hit := false
		if cur != 0 {
			lo, hi := int(start[cur]), int(start[cur+1])
			if hi-lo <= 8 {
				for j := lo; j < hi; j++ {
					if labs[j] == head {
						cur = tgts[j]
						hit = true
						break
					}
				}
			} else {
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if labs[mid] < head {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo < int(start[cur+1]) && labs[lo] == head {
					cur = tgts[lo]
					hit = true
				}
			}
			if hit {
				inTraceHits++
			} else {
				cur = v.miss(cur, head)
			}
		} else {
			globalLookups++
			cur = 0
			if haveEntries && head != 0 {
				// Home slot inline; only displaced keys spill to the probe
				// loop. Entry states are never 0, so a hit always enters.
				if j := HashAddr(head) & emask; ekeys[j] == head {
					globalHits++
					cur = evals[j]
				} else if ekeys[j] != 0 {
					if s, ok := v.entrySpill(head, j, emask); ok {
						globalHits++
						cur = s
					}
				}
			} else if s, ok := v.entry(head); ok {
				globalHits++
				cur = s
			}
			if cur != 0 {
				enters++
			}
		}
		if cur != 0 && v.Desynced {
			v.Desynced = false
			v.Resyncs++
		}
		// Strategy bookkeeping, decide-before-mutate.
		fallback := false
		if prev != 0 {
			if hit {
				// In-tree move; a backward branch still marks the loop head
				// and counts the anchor candidate.
				if back {
					// A hit landing on a root state means head anchors that
					// tree — traced without the entry probe.
					traced := v.Root[cur]
					if !traced {
						_, traced = v.entry(head)
					}
					if !traced {
						if t.anchors.Get(head)+1 >= thresh && t.room() {
							fallback = true
						} else {
							t.loopHeads.Add(head)
							t.anchors.Inc(head)
						}
					} else {
						t.loopHeads.Add(head)
					}
				}
			} else {
				// Side exit from prev toward head. Immediate links (back to
				// the anchor, or to a CTT header) mutate the tree: fall back.
				exitFrom := v.TBBs[prev]
				tree := exitFrom.Trace
				traced := cur != 0
				if head == tree.EntryAddr() {
					fallback = true
				} else if t.compact && t.headerTBBs[tree][head] != nil {
					fallback = true
				} else {
					extEligible := !t.frozen[tree] && !traced && t.room()
					var k extKey
					if extEligible {
						k = extKey{exitFrom, head}
						if t.extCounts.Get(k)+1 >= thresh {
							fallback = true // the exit would grow (or freeze) the tree
						}
					}
					anchor := back && !traced
					if !fallback && anchor && t.anchors.Get(head)+1 >= thresh && t.room() {
						fallback = true // the target would root a new tree
					}
					if !fallback {
						if back {
							t.loopHeads.Add(head)
						}
						if extEligible {
							t.extCounts.Inc(k)
						}
						if anchor {
							t.anchors.Inc(head)
						}
					}
				}
			}
		} else {
			// Cold code.
			if cur != 0 {
				if back {
					t.loopHeads.Add(head)
				}
			} else if back {
				if t.anchors.Get(head)+1 >= thresh && t.room() {
					fallback = true
				} else {
					t.loopHeads.Add(head)
					t.anchors.Inc(head)
				}
			}
		}
		if fallback {
			t.pos = v.TBBs[prev]
			rec := t.recording
			changed := t.Observe(edges[i])
			i++
			if changed != nil || t.recording != rec {
				flush()
				return i, changed
			}
			// No event materialized (e.g. the side exit froze the tree);
			// Observe applied the edge. A divergence would need a tree
			// mutation, and every tree mutation reports a changed trace —
			// so the cursors are still in lockstep; keep scanning.
			continue
		}
		i++
	}
	flush()
	t.pos = v.TBBs[cur]
	return n, nil
}
