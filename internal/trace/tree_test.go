package trace

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/progs"
)

func TestTreeSetBlocksCapStopsGrowth(t *testing.T) {
	p := progs.Figure2(64, 400)
	s := newTree("tt", false, p, Config{HotThreshold: 10, MaxSetBlocks: 6})
	set, _, err := Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The cap bounds total TBBs (one in-flight path may overshoot by a
	// block or two before the cap check fires).
	if set.NumTBBs() > 10 {
		t.Errorf("set grew to %d TBBs under cap 6", set.NumTBBs())
	}
}

func TestMRETSetBlocksCap(t *testing.T) {
	p := progs.Figure2(64, 400)
	s := NewMRET(p, Config{HotThreshold: 10, MaxSetBlocks: 4})
	set, _, err := Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumTBBs() > 4+DefaultConfig().MaxTraceBlocks {
		t.Errorf("MRET ignored the set cap: %d TBBs", set.NumTBBs())
	}
}

func TestTreeImmediateAnchorLinkNeedsNoHotness(t *testing.T) {
	// A side exit that lands straight on the anchor links immediately (no
	// duplication, no counter) — the tree gains the back edge on first
	// observation.
	p := progs.Figure2(60, 400)
	s := newTree("tt", false, p, Config{HotThreshold: 1 << 30}) // extensions never get hot
	set, _, err := Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trees exist only if anchors got hot; with an impossible threshold
	// nothing is recorded at all.
	if set.Len() != 0 {
		t.Fatalf("recorded %d trees with impossible threshold", set.Len())
	}

	s2 := newTree("tt", false, p, Config{HotThreshold: 20})
	set2, _, err := Record(cpu.New(p), cfg.StarDBT, s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At least one non-head TBB links back to its anchor.
	found := false
	for _, tr := range set2.Traces {
		for _, b := range tr.TBBs[1:] {
			if succ, ok := b.Succs[tr.EntryAddr()]; ok && succ == tr.Head() {
				found = true
			}
		}
	}
	if !found {
		t.Error("no back links to anchors formed")
	}
}

func TestCTTLinksToInnerLoopHeaders(t *testing.T) {
	// A program with a nested loop: CTT paths may terminate at the inner
	// header instead of duplicating the tail back to the outer anchor.
	p := progs.Figure1(60, 300) // copy loop nested in round loop
	ctt := newTree("ctt", true, p, Config{HotThreshold: 20})
	set, _, err := Record(cpu.New(p), cfg.StarDBT, ctt, 0)
	if err != nil {
		t.Fatal(err)
	}
	tt := newTree("tt", false, p, Config{HotThreshold: 20})
	setTT, _, err := Record(cpu.New(p), cfg.StarDBT, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumTBBs() > setTT.NumTBBs() {
		t.Errorf("CTT (%d TBBs) bigger than TT (%d)", set.NumTBBs(), setTT.NumTBBs())
	}
}

func TestTreeRecordingStateVisible(t *testing.T) {
	p := progs.Figure2(60, 200)
	s := newTree("tt", false, p, Config{HotThreshold: 10})
	m := cpu.New(p)
	r := cfg.NewRunner(m, cfg.StarDBT)
	sawRecording := false
	for {
		e, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		s.Observe(e)
		if s.Recording() {
			sawRecording = true
		}
		if e.To == nil {
			break
		}
	}
	if !sawRecording {
		t.Error("tree selector never entered recording state")
	}
	if s.Recording() {
		t.Error("still recording after program end")
	}
}

func TestMFETNeverRecordsState(t *testing.T) {
	p := progs.Figure2(60, 200)
	s := NewMFET(p, Config{HotThreshold: 10})
	m := cpu.New(p)
	r := cfg.NewRunner(m, cfg.StarDBT)
	for {
		e, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		s.Observe(e)
		if s.Recording() {
			t.Fatal("MFET reported a Creating state")
		}
		if e.To == nil {
			break
		}
	}
	if s.Set().Len() == 0 {
		t.Error("MFET recorded nothing")
	}
}
