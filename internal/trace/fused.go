package trace

import "github.com/lsc-tea/tea/internal/cfg"

// AutoView is the recorder's automaton-dispatch state, compiled into flat
// arrays by the core package and lent to a strategy for one fused batch
// scan. It exists because the online recorder walks two mirrored structures
// per edge — the strategy follows TBB links, the replayer follows the
// automaton transitions synced from those same links — and in the batched
// fast path one dispatch can serve both: the automaton's transition on a
// label succeeds exactly when the strategy's TBB cursor has that successor,
// and its entry table answers exactly the "does a trace anchor here?"
// question the selectors ask. A strategy's ObserveFused therefore performs
// the replayer's cursor motion and counter updates inline (in locals),
// instead of the recorder traversing the run twice.
//
// State 0 is NTE (cold code). The view aliases the owner's arrays; the
// owner refreshes it before every fused call and folds the counters back
// after.
type AutoView struct {
	// Cur is the automaton cursor; 0 is NTE.
	Cur int32
	// Desynced mirrors the replayer's desync flag.
	Desynced bool

	// Per-state transition spans: state s resolves label l by searching the
	// sorted Labels[Start[s]:Start[s+1]]; Targets is parallel to Labels.
	Start   []int32
	Labels  []uint64
	Targets []int32
	// TBBs maps state → TBB (index 0, NTE, is nil).
	TBBs []*TBB
	// Root marks states whose TBB heads its trace (Index 0): a transition
	// landing on a root state proves its label anchors a trace, without a
	// TBB pointer chase or an entry-table probe.
	Root []bool
	// SrcBlock/SrcBack cache each state's block pointer and that block's
	// BackSrc flag: when an edge's From is the current state's own block
	// (the lockstep case, verified by pointer compare), the scans evaluate
	// backFast from the flat flag instead of dereferencing e.From.
	SrcBlock []*cfg.Block
	SrcBack  []bool
	// Wild/SuccA/SuccB precompute the plausible-successor test per state:
	// plausible(s, l) = Wild[s] || l == SuccA[s] || l == SuccB[s]. Absent
	// successors hold an impossible label (^0).
	Wild  []bool
	SuccA []uint64
	SuccB []uint64

	// EKeys/EVals alias the replayer's flat entry table (open-addressed,
	// power-of-two sized, linear probing, key 0 = empty with the zero key
	// displaced to EZero*). Entry probes use the same hash as the writer
	// (HashAddr), so results agree with the replayer's by construction.
	EKeys     []uint64
	EVals     []int32
	EZeroLive bool
	EZeroVal  int32

	// Resolve is the replayer's in-trace miss path (local cache in front of
	// the global container, with their hit/miss counters). It returns the
	// entry state anchored at label, or 0.
	Resolve func(from int32, label uint64) int32

	// Counters accumulated by the fused scan, folded into the replayer's
	// Stats by the owner. Semantics match Replayer.Advance exactly.
	Blocks, Instrs, TraceBlocks, TraceInstrs uint64
	InTraceHits, Enters, Links, Exits        uint64
	GlobalLookups, GlobalHits                uint64
	Desyncs, Resyncs                         uint64
}

// HashAddr mixes a block address into a hash-table slot seed (splitmix64
// finalizer). It is shared by the core entry table and the view's inline
// probe, which must agree slot for slot.
func HashAddr(a uint64) uint64 {
	a ^= a >> 30
	a *= 0xbf58476d1ce4e5b9
	a ^= a >> 27
	a *= 0x94d049bb133111eb
	a ^= a >> 31
	return a
}

// entry probes the entry table for the state anchored at label. The home
// slot is resolved inline — it decides almost every probe (hit or certain
// miss) without a call — and only displaced keys spill to the probe loop,
// which cannot be inlined.
func (v *AutoView) entry(label uint64) (int32, bool) {
	if label == 0 {
		return v.EZeroVal, v.EZeroLive
	}
	if len(v.EKeys) == 0 {
		return 0, false
	}
	mask := uint64(len(v.EKeys) - 1)
	i := HashAddr(label) & mask
	k := v.EKeys[i]
	if k == label {
		return v.EVals[i], true
	}
	if k == 0 {
		return 0, false
	}
	return v.entrySpill(label, i, mask)
}

// entrySpill continues an entry probe past an occupied home slot. Kept out
// of line so entry itself stays within the inlining budget — the home slot
// decides almost every probe, and the scan loops call entry per cold edge.
//
//go:noinline
func (v *AutoView) entrySpill(label, i, mask uint64) (int32, bool) {
	for {
		i = (i + 1) & mask
		k := v.EKeys[i]
		if k == label {
			return v.EVals[i], true
		}
		if k == 0 {
			return 0, false
		}
	}
}

// miss is the out-of-line tail of an in-trace transition whose label is not
// in the state's span: the plausibility check (desync detection) followed by
// the replayer's resolve path, with the exit/link counters — exactly
// Replayer.Advance's miss arm. Kept out of the scan loops so their hit path
// stays small and register-resident.
func (v *AutoView) miss(cur int32, label uint64) int32 {
	if !(v.Wild[cur] || label == v.SuccA[cur] || label == v.SuccB[cur]) {
		v.Desyncs++
		v.Desynced = true
	}
	next := v.Resolve(cur, label)
	if next == 0 {
		v.Exits++
	} else {
		v.Links++
	}
	return next
}

// FusedObserver is the batched fast path of the online recorder: the
// strategy consumes a run of edges while performing the automaton cursor
// motion of the recorder's replayer inline through v. The observable effect
// over the consumed prefix is exactly that of, per edge, Replayer.Advance
// (or AccountOnly for a nil To) followed by Strategy.Observe — the
// sequential recorder's Executing-state order. The scan stops after the
// first eventful edge (trace created or extended, or recording started):
// that edge's replayer transition and Observe call have already been
// applied, and the changed trace (if any) is returned for the caller to
// sync.
//
// Preconditions: the strategy is not recording, v was refreshed after the
// last sync, and v.Cur is the replayer's cursor. The caller folds v's
// counters back into its Stats after the call.
type FusedObserver interface {
	ObserveFused(edges []cfg.Edge, instrs []uint64, v *AutoView) (int, *Trace)
}

// QuietObserver is the contract the decoupled pipeline's drain needs beyond
// FusedObserver: a strategy whose steady-state (no trace being recorded, no
// automaton mutation) reaction to a scanned chunk is fully described by its
// head-candidate list. The drain replays the candidate policy itself —
// CountCandidate for the cold ones, a handoff back to the sequential
// recorder at the first HotCandidate — and keeps the trace-following cursor
// in lockstep via SeekTBB, so a quiet chunk never touches the strategy's
// per-edge path at all. Strategies that cannot express this (their quiet
// scan has other side effects) simply don't implement it, and the pipeline
// degrades to sequential chunk processing.
type QuietObserver interface {
	FusedObserver
	// HotCandidate reports, without side effects, whether counting this head
	// would trigger recording (the decide-before-mutate threshold test).
	HotCandidate(head uint64) bool
	// CountCandidate applies the non-triggering arm: one hotness increment.
	CountCandidate(head uint64)
	// SeekTBB repositions the trace-following cursor to the given block
	// (nil for NTE), re-establishing lockstep with the automaton cursor.
	SeekTBB(t *TBB)
	// CursorTBB returns the trace-following cursor's current block.
	CursorTBB() *TBB
}
