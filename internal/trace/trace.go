// Package trace defines the trace model of the paper (§3, Definitions 1-3)
// and implements the three trace-selection strategies evaluated in §4:
// MRET (Most Recently Executed Tail, the Dynamo/NET strategy), TT (Trace
// Trees) and CTT (Compact Trace Trees), plus MFET (Most Frequently Executed
// Tail) as an extension.
//
// A Trace is a collection of Trace Basic Blocks (TBBs) and the control-flow
// edges between them (Definition 3). A TBB is one *instance* of a dynamic
// basic block inside a trace (Definition 2): the same block may appear in
// several traces, or several times in one trace tree, and each occurrence
// is a distinct TBB — that distinction is exactly what TEA's states encode.
package trace

import (
	"fmt"
	"sort"

	"github.com/lsc-tea/tea/internal/cfg"
)

// ID numbers a trace within its Set, starting at 1 (to read like the
// paper's T1, T2, ...).
type ID int32

// TBB is one instance of a basic block inside a trace (Definition 2).
type TBB struct {
	// Trace owns this TBB.
	Trace *Trace
	// Index is the position of this TBB in Trace.TBBs.
	Index int
	// Block is the underlying dynamic basic block.
	Block *cfg.Block
	// Succs maps a successor block head address to the in-trace TBB that
	// instance of the block flows to. A TBB has at most one successor per
	// label, keeping the automaton deterministic.
	Succs map[uint64]*TBB
}

// Name renders the paper's $$Ti.block notation, using the program symbol
// for the block head when one exists.
func (t *TBB) Name() string {
	sym, ok := t.Trace.prog.SymbolFor(t.Block.Head)
	if !ok {
		sym = fmt.Sprintf("0x%x", t.Block.Head)
	}
	return fmt.Sprintf("$$T%d.%s", t.Trace.ID, sym)
}

func (t *TBB) String() string { return t.Name() }

// Link records that this TBB flows to succ when control reaches succ's
// block head. Linking is idempotent for the same label and requires succ to
// belong to the same trace: cross-trace transfers are resolved through the
// entry table instead, so linking across traces is rejected with an error.
// Callers that construct both TBBs themselves (the selection strategies)
// may use mustLink, which turns the same check into an invariant.
//
// Every effective link (a new label, or a label rebound to a different
// TBB) is appended to the trace's change log, which is what lets
// core.Automaton.SyncTrace apply an N-TBB trace extension as a delta
// instead of rebuilding every state's transition table.
func (t *TBB) Link(succ *TBB) error {
	if succ.Trace != t.Trace {
		return fmt.Errorf("trace: cannot link %v -> %v across traces", t, succ)
	}
	label := succ.Block.Head
	if t.Succs == nil {
		t.Succs = make(map[uint64]*TBB, 2)
	} else if old, ok := t.Succs[label]; ok && old == succ {
		// No-op relink: the successor table and the change log both
		// already describe this edge.
		return nil
	}
	t.Succs[label] = succ
	t.Trace.links = append(t.Trace.links, LinkEvent{From: t, Label: label, To: succ})
	return nil
}

// mustLink links two TBBs the caller just created inside the same trace.
// The same-trace property is a true internal invariant there (both ends
// come from the same Append/NewTrace sequence), so a violation is a bug in
// this package and panics rather than returning an error.
func mustLink(from, to *TBB) {
	if err := from.Link(to); err != nil {
		panic("trace: " + err.Error())
	}
}

// SuccLabels returns the in-trace successor labels in ascending order.
func (t *TBB) SuccLabels() []uint64 {
	out := make([]uint64, 0, len(t.Succs))
	for a := range t.Succs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkEvent is one effective mutation of a TBB's successor table: From
// gained (or rebound) the transition on Label toward To. The per-trace log
// of these events is the delta feed for incremental automaton
// synchronization: replaying a trace's log from the beginning reproduces
// exactly the successor tables its TBBs hold now.
type LinkEvent struct {
	From  *TBB
	Label uint64
	To    *TBB
}

// Trace is a recorded hot-code region (Definition 3): a superblock for
// MRET/MFET, a tree for TT/CTT.
type Trace struct {
	ID   ID
	TBBs []*TBB

	prog programSymbols
	set  *Set
	// links is the append-only change log of every effective Link call on
	// this trace's TBBs, in application order.
	links []LinkEvent
}

// programSymbols is the slice of isa.Program the trace model needs; it
// keeps this package decoupled from program construction.
type programSymbols interface {
	SymbolFor(addr uint64) (string, bool)
}

// Head returns the entry TBB. Every trace is entered only at its head.
func (t *Trace) Head() *TBB { return t.TBBs[0] }

// EntryAddr returns the program address that starts the trace.
func (t *Trace) EntryAddr() uint64 { return t.TBBs[0].Block.Head }

// Len returns the number of TBBs.
func (t *Trace) Len() int { return len(t.TBBs) }

// Instrs returns the total static instruction count across TBBs (counting
// duplicated instances separately, as code replication would).
func (t *Trace) Instrs() int {
	n := 0
	for _, b := range t.TBBs {
		n += b.Block.NumInstrs
	}
	return n
}

// CodeBytes returns the bytes of code replication this trace costs a
// conventional DBT: every TBB instance is a fresh copy of its block.
func (t *Trace) CodeBytes() uint64 {
	var n uint64
	for _, b := range t.TBBs {
		n += b.Block.Bytes
	}
	return n
}

// LinkLog returns the trace's append-only link change log. Consumers that
// mirror the trace (core.Automaton.SyncTrace) remember how much of the log
// they have applied and replay only the tail on the next sync; the log is
// never truncated or reordered, so a suffix is always a valid delta.
func (t *Trace) LinkLog() []LinkEvent { return t.links }

// Append adds a fresh TBB instance for block at the tail of the trace.
// TBBs of traces that belong to a Set are slab-allocated from the set's
// pool, so online recording costs one heap allocation per slab of TBBs
// rather than one per TBB.
func (t *Trace) Append(b *cfg.Block) *TBB {
	var tbb *TBB
	if t.set != nil {
		tbb = t.set.allocTBB()
	} else {
		tbb = new(TBB)
	}
	tbb.Trace = t
	tbb.Index = len(t.TBBs)
	tbb.Block = b
	t.TBBs = append(t.TBBs, tbb)
	if t.set != nil {
		t.set.numTBBs++
	}
	return tbb
}

// FindByBlock returns every TBB instance of the block headed at addr.
func (t *Trace) FindByBlock(addr uint64) []*TBB {
	var out []*TBB
	for _, b := range t.TBBs {
		if b.Block.Head == addr {
			out = append(out, b)
		}
	}
	return out
}

func (t *Trace) String() string {
	return fmt.Sprintf("T%d(entry=0x%x, %d TBBs)", t.ID, t.EntryAddr(), len(t.TBBs))
}

// Set is the collection of traces recorded for one program run.
type Set struct {
	Strategy string
	Traces   []*Trace

	prog    programSymbols
	byEntry map[uint64]*Trace

	// slab is the current TBB allocation slab; TBB pointers are stable for
	// the life of the set (slabs are abandoned when full, never resized).
	slab []TBB

	// numTBBs counts TBB instances across the set's traces, maintained by
	// Append: the selection strategies consult the total on their per-edge
	// paths (the MaxSetBlocks guard), which must not walk every trace.
	numTBBs int
}

// tbbSlab is the number of TBB instances carved from one heap allocation.
const tbbSlab = 64

// allocTBB hands out the next pooled TBB.
func (s *Set) allocTBB() *TBB {
	if len(s.slab) == cap(s.slab) {
		s.slab = make([]TBB, 0, tbbSlab)
	}
	s.slab = append(s.slab, TBB{})
	return &s.slab[len(s.slab)-1]
}

// NewSet creates an empty set; prog supplies symbol names for rendering and
// may be nil.
func NewSet(strategy string, prog programSymbols) *Set {
	if prog == nil {
		prog = noSymbols{}
	}
	return &Set{Strategy: strategy, prog: prog, byEntry: make(map[uint64]*Trace)}
}

type noSymbols struct{}

func (noSymbols) SymbolFor(uint64) (string, bool) { return "", false }

// SymbolFor delegates to the set's program, letting a Set serve as the
// symbol source for sets derived from it (trace duplication and the like).
func (s *Set) SymbolFor(addr uint64) (string, bool) { return s.prog.SymbolFor(addr) }

// NewTrace allocates the next trace, entered at head. At most one trace may
// be anchored at a given entry address; NewTrace returns an error on a
// duplicate entry.
func (s *Set) NewTrace(head *cfg.Block) (*Trace, error) {
	if old, ok := s.byEntry[head.Head]; ok {
		return nil, fmt.Errorf("trace: entry 0x%x already anchors %s", head.Head, old)
	}
	t := &Trace{ID: ID(len(s.Traces) + 1), prog: s.prog, set: s}
	t.Append(head)
	s.Traces = append(s.Traces, t)
	s.byEntry[head.Head] = t
	return t, nil
}

// ByEntry returns the trace anchored at addr, if any.
func (s *Set) ByEntry(addr uint64) (*Trace, bool) {
	t, ok := s.byEntry[addr]
	return t, ok
}

// Len returns the number of traces.
func (s *Set) Len() int { return len(s.Traces) }

// NumTBBs returns the total TBB instances across all traces.
func (s *Set) NumTBBs() int { return s.numTBBs }

// Entries returns every trace entry address in ascending order.
func (s *Set) Entries() []uint64 {
	out := make([]uint64, 0, len(s.byEntry))
	for a := range s.byEntry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CodeBytes returns the total code-replication cost of the set: the bytes a
// conventional DBT spends materializing the traces as executable code —
// one fresh copy of every TBB's instructions, a stub per side exit, and a
// per-trace entry/epilogue. This is the "DBT" column of Table 1.
func (s *Set) CodeBytes() uint64 {
	var n uint64
	for _, t := range s.Traces {
		n += t.CodeBytes() + TraceOverheadBytes
		for _, b := range t.TBBs {
			n += exitStubBytes(b)
		}
	}
	return n
}

// ExitStubBytes is the modelled cost of one trace-exit stub: the trampoline
// a DBT emits so a side exit can spill the exit identity and transfer back
// to the dispatcher (or be patched later to link traces). StarDBT-style
// stubs are a push-immediate plus a near jump with alignment padding.
const ExitStubBytes = 12

// TraceOverheadBytes is the modelled per-trace entry/epilogue cost a DBT
// pays once per trace (entry-point registration and prologue).
const TraceOverheadBytes = 16

// exitStubBytes charges one stub per potential off-trace successor of the
// TBB: a conditional terminator has two successors, an unconditional one,
// and every successor not linked inside the trace needs a stub.
func exitStubBytes(b *TBB) uint64 {
	succs := 1
	if b.Block.Term.IsCondBranch() {
		succs = 2
	}
	inTrace := len(b.Succs)
	if inTrace > succs {
		inTrace = succs
	}
	return uint64(succs-inTrace) * ExitStubBytes
}

func (s *Set) String() string {
	return fmt.Sprintf("Set(%s, %d traces, %d TBBs)", s.Strategy, len(s.Traces), s.NumTBBs())
}
