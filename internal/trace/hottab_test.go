package trace

import (
	"math/rand"
	"testing"
)

// TestHotTabMatchesMap drives hotTab and a reference map through the same
// random Inc/Get/Del sequence — including key 0, growth past several
// doublings, and delete/reinsert churn that exercises backward-shift
// deletion — and requires identical counts throughout.
func TestHotTabMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := newHotTab()
	ref := map[uint64]int{}
	// A small key universe forces collisions and repeated delete/reinsert
	// of the same keys; the explicit 0 key covers the displaced-zero slot.
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = rng.Uint64() >> 40 // clustered low-entropy addresses
	}
	keys[0] = 0
	for op := 0; op < 20000; op++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(4) {
		case 0, 1: // Inc twice as likely as the others
			ref[k]++
			if got := h.Inc(k); got != ref[k] {
				t.Fatalf("op %d: Inc(%#x) = %d, want %d", op, k, got, ref[k])
			}
		case 2:
			if got := h.Get(k); got != ref[k] {
				t.Fatalf("op %d: Get(%#x) = %d, want %d", op, k, got, ref[k])
			}
		case 3:
			delete(ref, k)
			h.Del(k)
			if got := h.Get(k); got != 0 {
				t.Fatalf("op %d: Get(%#x) after Del = %d", op, k, got)
			}
		}
		if h.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, h.Len(), len(ref))
		}
	}
	for k, want := range ref {
		if got := h.Get(k); got != want {
			t.Fatalf("final: Get(%#x) = %d, want %d", k, got, want)
		}
	}
}

// TestAddrSetMatchesMap drives addrSet and a reference map set through the
// same random Add/Has sequence, across growth and including key 0.
func TestAddrSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newAddrSet()
	ref := map[uint64]bool{}
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64() >> 40
	}
	keys[0] = 0
	for op := 0; op < 10000; op++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(2) == 0 {
			ref[k] = true
			s.Add(k)
		}
		if got := s.Has(k); got != ref[k] {
			t.Fatalf("op %d: Has(%#x) = %v, want %v", op, k, got, ref[k])
		}
		if s.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, s.Len(), len(ref))
		}
	}
}

// TestExtTabMatchesMap drives extTab and a reference map through the same
// random Inc/Get/Del sequence over (TBB, target) keys. Exactness matters:
// collision merges would inflate side-exit counts and change tree growth.
func TestExtTabMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	et := newExtTab()
	ref := map[extKey]int{}
	// Distinct TBB identities (trace ID, index) crossed with a few targets.
	var tbbs []*TBB
	for id := 1; id <= 10; id++ {
		tr := &Trace{ID: ID(id)}
		for idx := 0; idx < 5; idx++ {
			tbbs = append(tbbs, &TBB{Trace: tr, Index: idx})
		}
	}
	kset := make([]extKey, 150)
	for i := range kset {
		kset[i] = extKey{tbb: tbbs[rng.Intn(len(tbbs))], target: uint64(rng.Intn(20)) * 16}
	}
	for op := 0; op < 20000; op++ {
		k := kset[rng.Intn(len(kset))]
		switch rng.Intn(4) {
		case 0, 1:
			ref[k]++
			if got := et.Inc(k); got != ref[k] {
				t.Fatalf("op %d: Inc = %d, want %d", op, got, ref[k])
			}
		case 2:
			if got := et.Get(k); got != ref[k] {
				t.Fatalf("op %d: Get = %d, want %d", op, got, ref[k])
			}
		case 3:
			delete(ref, k)
			et.Del(k)
		}
		if et.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, et.Len(), len(ref))
		}
	}
	for k, want := range ref {
		if got := et.Get(k); got != want {
			t.Fatalf("final: Get(%+v) = %d, want %d", k, got, want)
		}
	}
}
