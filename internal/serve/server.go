package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/obs"
)

// Config tunes one Server.
type Config struct {
	// Lookup selects the replay transition-function configuration sessions
	// run with (Local settings; the compiled path always uses the flat
	// entry table).
	Lookup core.LookupConfig
	// Quota bounds per-tenant and per-session consumption.
	Quota Quota
	// BreakerThreshold consecutive failed sessions quarantine an image
	// (0 selects DefaultBreakerThreshold; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the quarantine window before a verify-gated
	// readmission attempt (0 selects DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// IdleTimeout bounds every single read and write on a connection, so a
	// stalled or half-dead peer can never wedge a handler goroutine
	// (0 selects DefaultIdleTimeout).
	IdleTimeout time.Duration
	// MaxPublishInFlight bounds concurrent publish admissions server-wide;
	// beyond it publishes are rejected with CodeBackpressure (0 selects
	// DefaultMaxPublishInFlight).
	MaxPublishInFlight int
	// MaxTenantSeries caps the per-tenant label cardinality of the tenant
	// metric families; tenants beyond the cap share one overflow series
	// (0 selects obs.DefaultMaxSeries).
	MaxTenantSeries int
	// DisableSessionEvents turns off the per-session trace events
	// (open/resume/close/fail/quota/backpressure) stamped into the event
	// ring. The flight recorder still trips; only the steady-state event
	// stream is silenced, which is the obs-off serve row in BENCH_obs.json.
	DisableSessionEvents bool
	// Obs receives the server's metrics and health; nil creates a private
	// context (reachable via Server.Obs for scraping).
	Obs *obs.Obs
}

// Config defaults.
const (
	DefaultBreakerThreshold   = 3
	DefaultBreakerCooldown    = time.Second
	DefaultIdleTimeout        = 30 * time.Second
	DefaultMaxPublishInFlight = 2
)

func (c Config) withDefaults() Config {
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.MaxPublishInFlight == 0 {
		c.MaxPublishInFlight = DefaultMaxPublishInFlight
	}
	c.Quota = c.Quota.withDefaults()
	return c
}

// serveMetrics is the server's pre-resolved global metric set, plus the
// labeled families for the per-tenant and per-image dimensions.
type serveMetrics struct {
	opened, resumed, completed, failed *obs.Counter
	panics, rejBackpressure, rejQuota  *obs.Counter
	breakerTrips, publishes, pubRej    *obs.Counter
	edges, bytesIn, bytesOut           *obs.Counter
	active, parked                     *obs.Gauge

	tenantSessions, tenantEdges, tenantRejects *obs.CounterVec
	imageGen                                   *obs.GaugeVec
	imageTrips                                 *obs.CounterVec
}

// tenantMetrics is one tenant's pre-resolved series, bound out of the
// labeled families on first Hello so the per-frame paths never re-hash the
// tenant name. The series are released when the tenant is evicted (no
// connections, no attached or parked sessions), which is what keeps the
// label sets bounded over a long-lived server.
type tenantMetrics struct {
	sessions, edges, rejects *obs.Counter
}

// Server hosts a fleet of compiled automata and serves concurrent
// replay/publish sessions over the wire protocol. One poisoned session
// never takes the process down: every connection handler converts panics
// into CodeInternal error frames, every read and write carries a deadline,
// and all per-session state is isolated behind per-tenant quotas.
type Server struct {
	cfg    Config
	store  *Store
	obs    *obs.Obs
	health *obs.Health
	m      serveMetrics

	pubSem chan struct{}

	mu       sync.Mutex
	tenants  map[string]*tenant
	sessions map[string]*session
	conns    map[net.Conn]struct{}

	nextID    atomic.Uint64
	closed    atomic.Bool
	listeners []net.Listener
	wg        sync.WaitGroup
}

// NewServer creates a server with no hosted images; Host images before
// (or while) serving. The server reports ready once it hosts at least one
// image and is not draining.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		store:    NewStore(cfg.Lookup, cfg.BreakerThreshold, cfg.BreakerCooldown),
		obs:      o,
		health:   obs.NewHealth(),
		pubSem:   make(chan struct{}, cfg.MaxPublishInFlight),
		tenants:  make(map[string]*tenant),
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
	c := func(name, help string) *obs.Counter { return o.Reg.Counter(name, help) }
	s.m = serveMetrics{
		opened:          c("tea_serve_sessions_opened_total", "sessions opened"),
		resumed:         c("tea_serve_sessions_resumed_total", "sessions resumed from a park"),
		completed:       c("tea_serve_sessions_completed_total", "sessions closed with final stats"),
		failed:          c("tea_serve_sessions_failed_total", "sessions terminated by a structured error"),
		panics:          c("tea_serve_panics_recovered_total", "panics converted to CodeInternal errors"),
		rejBackpressure: c("tea_serve_rejects_backpressure_total", "opens rejected at the concurrency bound"),
		rejQuota:        c("tea_serve_rejects_quota_total", "sessions terminated by step/byte quotas"),
		breakerTrips:    c("tea_serve_breaker_trips_total", "image circuit-breaker quarantines"),
		publishes:       c("tea_serve_publishes_total", "image generations admitted"),
		pubRej:          c("tea_serve_publish_rejects_total", "publishes refused admission"),
		edges:           c("tea_serve_edges_total", "stream edges replayed across all sessions"),
		bytesIn:         c("tea_serve_bytes_in_total", "wire payload bytes received"),
		bytesOut:        c("tea_serve_bytes_out_total", "wire payload bytes sent"),
		active:          o.Reg.Gauge("tea_serve_sessions_active", "sessions currently attached"),
		parked:          o.Reg.Gauge("tea_serve_sessions_parked", "sessions parked for resume"),
		tenantSessions: o.Reg.CounterVec("tea_serve_tenant_sessions_total",
			"sessions opened per tenant", "tenant", cfg.MaxTenantSeries),
		tenantEdges: o.Reg.CounterVec("tea_serve_tenant_edges_total",
			"stream edges replayed per tenant", "tenant", cfg.MaxTenantSeries),
		tenantRejects: o.Reg.CounterVec("tea_serve_tenant_rejects_total",
			"admission and quota rejections per tenant", "tenant", cfg.MaxTenantSeries),
		imageGen: o.Reg.GaugeVec("tea_serve_image_gen",
			"last generation served per hosted image", "image", 0),
		imageTrips: o.Reg.CounterVec("tea_serve_image_breaker_trips_total",
			"circuit-breaker quarantines per hosted image", "image", 0),
	}
	return s
}

// event stamps one session-scoped trace event into the event ring: the
// session's source id plus its accepted-edge watermark as the logical
// clock, so a spliced multi-session stream stays causally ordered per
// source. Disabled (one branch) when Config.DisableSessionEvents is set.
//
//tea:hotpath
func (s *Server) event(kind obs.EventKind, src uint32, edge, aux uint64) {
	if s.cfg.DisableSessionEvents {
		return
	}
	s.obs.SessionEvent(kind, src, edge, aux)
}

// Host admits an automaton (static verification included) under name.
func (s *Server) Host(name string, p *isa.Program, a *core.Automaton) error {
	if err := s.store.Add(name, p, a); err != nil {
		return err
	}
	s.health.SetReady(!s.closed.Load())
	return nil
}

// Store exposes the image store (introspection and tests).
func (s *Server) Store() *Store { return s.store }

// Obs exposes the server's observability context.
func (s *Server) Obs() *obs.Obs { return s.obs }

// Health exposes the liveness/readiness state.
func (s *Server) Health() *obs.Health { return s.health }

// PanicsRecovered reports how many connection-handler panics the server
// has converted into structured errors — the chaos suite asserts zero.
func (s *Server) PanicsRecovered() uint64 { return s.m.panics.Value() }

// Handler serves the admin surface: the obs endpoints (/metrics,
// /metrics.json, /debug/events, /debug/pprof/*) plus /healthz and /readyz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(s.obs))
	mux.Handle("/healthz", obs.HealthHandler(s.health))
	mux.Handle("/readyz", obs.HealthHandler(s.health))
	return mux
}

// Serve accepts connections until the listener fails or Shutdown runs.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Shutdown drains the server: new sessions are rejected with CodeShutdown,
// listeners close, and handlers get until ctx's deadline to finish before
// their connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.health.SetReady(false)
	s.mu.Lock()
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.health.SetLive(false)
	return err
}

// tenantLocked returns (creating if needed) the tenant record, binding its
// metric series out of the labeled families. mu held.
func (s *Server) tenantLocked(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name, m: tenantMetrics{
			sessions: s.m.tenantSessions.With(name),
			edges:    s.m.tenantEdges.With(name),
			rejects:  s.m.tenantRejects.With(name),
		}}
		s.tenants[name] = t
	}
	return t
}

// releaseTenant drops one connection's reference on t, evicting the tenant
// record — and releasing its metric series — once nothing keeps it alive:
// no connections, no attached sessions, and no parked session still worth
// resuming (a live, unexpired one pins the tenant; done or expired parks
// only existed for idempotent stats re-fetch, and that grace ends with the
// tenant's last connection — a later resume gets CodeUnknownSession). This
// is the bound on per-tenant label cardinality: a tenant that came and went
// costs nothing forever after.
func (s *Server) releaseTenant(t *tenant) {
	if t == nil {
		return
	}
	s.mu.Lock()
	t.conns--
	evict := t.conns <= 0 && t.attached == 0
	if evict {
		now := time.Now()
		for _, p := range t.parked {
			if !p.done && !p.expired(now) {
				evict = false
				break
			}
		}
	}
	if evict {
		for _, p := range t.parked {
			delete(s.sessions, p.id)
		}
		t.parked = nil
		delete(s.tenants, t.name)
	}
	s.mu.Unlock()
	if evict {
		s.m.tenantSessions.Release(t.name)
		s.m.tenantEdges.Release(t.name)
		s.m.tenantRejects.Release(t.name)
	}
}

// connHandler is the per-connection state machine.
type connHandler struct {
	s      *Server
	conn   net.Conn
	tenant *tenant
	sess   *session // currently attached session, nil between sessions

	rbuf    []byte      // frame read buffer, reused
	wbuf    []byte      // frame write buffer, reused
	edgeBuf []core.Edge // parsed-edge scratch, reused
}

// ServeConn drives one connection to completion. It is safe to call
// directly with one end of a net.Pipe (the chaos tests do); Serve calls it
// per accepted connection. Panics anywhere below are converted into a
// best-effort CodeInternal error frame and a failed session — the
// process-scope blast radius of any single connection is zero.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	h := &connHandler{s: s, conn: conn}
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Add(1)
			serr := errf(CodeInternal, "recovered panic: %v", r)
			var src uint32
			var edge uint64
			if h.sess != nil {
				src, edge = h.sess.src, h.sess.edges
			}
			s.event(obs.EvPanicRecovered, src, edge, 0)
			if h.sess != nil {
				h.finishSessionReason(serr, "panic")
			} else {
				s.obs.Flight.Trip("panic", src, serr.Error(),
					obs.Event{Edge: edge, Src: src, State: -1, Kind: obs.EvPanicRecovered})
			}
			_ = h.sendError(serr)
		}
		h.detach()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.releaseTenant(h.tenant)
	}()
	if !h.handshake() {
		return
	}
	for h.serveFrame() {
	}
}

// readFrame reads one frame under the idle deadline.
func (h *connHandler) readFrame() ([]byte, error) {
	_ = h.conn.SetReadDeadline(time.Now().Add(h.s.cfg.IdleTimeout))
	payload, err := ReadFrame(h.conn, h.rbuf)
	if err != nil {
		return nil, err
	}
	h.rbuf = payload[:cap(payload)]
	h.s.m.bytesIn.Add(uint64(len(payload)))
	return payload, nil
}

// write sends one frame under the idle deadline — a peer that stops
// reading cannot wedge the handler, it gets its connection closed.
func (h *connHandler) write(payload []byte) error {
	_ = h.conn.SetWriteDeadline(time.Now().Add(h.s.cfg.IdleTimeout))
	h.s.m.bytesOut.Add(uint64(len(payload)))
	return WriteFrame(h.conn, payload)
}

// sendError writes a structured error frame (best effort).
func (h *connHandler) sendError(serr *Error) error {
	h.wbuf = AppendError(h.wbuf[:0], serr)
	return h.write(h.wbuf)
}

// handshake performs Hello/HelloAck and resolves the tenant.
func (h *connHandler) handshake() bool {
	payload, err := h.readFrame()
	if err != nil {
		return false
	}
	typ, body, perr := ParseFrame(payload)
	if perr != nil || typ != FrameHello {
		_ = h.sendError(errf(CodeProto, "expected Hello"))
		return false
	}
	hello, herr := ParseHello(body)
	if herr != nil {
		_ = h.sendError(asError(herr))
		return false
	}
	if hello.Version != ProtoVersion {
		_ = h.sendError(errf(CodeProto, "protocol version %d unsupported", hello.Version))
		return false
	}
	h.s.mu.Lock()
	h.tenant = h.s.tenantLocked(hello.Tenant)
	h.tenant.conns++
	h.s.mu.Unlock()
	ack := HelloAck{Version: ProtoVersion}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// serveFrame reads and dispatches one frame; false ends the connection.
func (h *connHandler) serveFrame() bool {
	payload, err := h.readFrame()
	if err != nil {
		if serr, ok := err.(*Error); ok {
			_ = h.sendError(serr)
		}
		return false
	}
	typ, body, perr := ParseFrame(payload)
	if perr != nil {
		_ = h.sendError(asError(perr))
		return false
	}
	switch typ {
	case FrameOpen:
		return h.handleOpen(body)
	case FrameEdges:
		return h.handleEdges(body)
	case FrameClose:
		return h.handleClose()
	case FramePublish:
		return h.handlePublish(body)
	default:
		_ = h.sendError(errf(CodeProto, "unexpected frame %s", typ))
		return false
	}
}

// handleOpen admits a new session or resumes a parked one.
func (h *connHandler) handleOpen(body []byte) bool {
	m, err := ParseOpen(body)
	if err != nil {
		_ = h.sendError(asError(err))
		return false
	}
	if h.sess != nil {
		_ = h.sendError(errf(CodeProto, "session already open on connection"))
		return false
	}
	if h.s.closed.Load() {
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errRetry(CodeShutdown, h.s.cfg.Quota.RetryAfter, "server draining"))
		return true
	}
	if m.Resume != "" {
		return h.resume(m.Resume)
	}

	q := h.s.cfg.Quota
	s := h.s
	s.mu.Lock()
	if h.tenant.attached >= q.MaxConcurrent {
		attached := uint64(h.tenant.attached)
		s.mu.Unlock()
		s.m.rejBackpressure.Add(1)
		h.tenant.m.rejects.Add(1)
		s.event(obs.EvBackpressure, m.Src, 0, attached)
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter,
			"tenant %s at %d concurrent sessions", h.tenant.name, q.MaxConcurrent))
		return true
	}
	s.mu.Unlock()

	// Breaker-gated image admission happens outside mu: readmission may run
	// a full static verification.
	img, serr := s.store.Get(m.Image)
	if serr != nil {
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(serr)
		return true
	}

	id := s.nextID.Add(1)
	src := m.Src
	if src == 0 {
		// No client trace context: assign a server-side source id so the
		// session's events are still attributable after splicing.
		src = uint32(id)
	}
	sess := &session{
		id:       fmt.Sprintf("s%08x", id),
		tenant:   h.tenant.name,
		img:      img,
		src:      src,
		rep:      core.NewCompiledReplayer(img.Compiled),
		deadline: time.Now().Add(q.SessionTimeout),
		attached: true,
	}
	s.mu.Lock()
	// Re-check under the lock: the slot may have been taken while verifying.
	if h.tenant.attached >= q.MaxConcurrent {
		attached := uint64(h.tenant.attached)
		s.mu.Unlock()
		s.m.rejBackpressure.Add(1)
		h.tenant.m.rejects.Add(1)
		s.event(obs.EvBackpressure, m.Src, 0, attached)
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter,
			"tenant %s at %d concurrent sessions", h.tenant.name, q.MaxConcurrent))
		return true
	}
	h.tenant.attached++
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	h.sess = sess
	s.m.opened.Add(1)
	s.m.active.Set(s.activeCount())
	h.tenant.m.sessions.Add(1)
	s.m.imageGen.With(img.Name).Set(img.Gen)
	s.event(obs.EvSessionOpen, src, 0, img.Gen)

	ack := OpenAck{Session: sess.id, Gen: img.Gen, Src: src}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// resume re-attaches a parked session. The token must name a session of
// the same tenant: a token leaked across tenants resolves to
// CodeUnknownSession, indistinguishable from an expired one, so session
// state can never cross a tenant boundary.
func (h *connHandler) resume(token string) bool {
	q := h.s.cfg.Quota
	s := h.s
	s.mu.Lock()
	sess, ok := s.sessions[token]
	if !ok || sess.tenant != h.tenant.name {
		s.mu.Unlock()
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errf(CodeUnknownSession, "no resumable session %q", token))
		return true
	}
	if sess.attached {
		s.mu.Unlock()
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter, "session %s still attached", token))
		return true
	}
	if !sess.done && h.tenant.attached >= q.MaxConcurrent {
		s.mu.Unlock()
		s.m.rejBackpressure.Add(1)
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter,
			"tenant %s at %d concurrent sessions", h.tenant.name, q.MaxConcurrent))
		return true
	}
	sess.attached = true
	if !sess.done {
		h.tenant.attached++
	}
	h.tenant.unpark(sess)
	s.mu.Unlock()
	h.sess = sess
	s.m.resumed.Add(1)
	s.m.active.Set(s.activeCount())
	s.m.parked.Set(s.parkedCount())
	s.event(obs.EvSessionResume, sess.src, sess.edges, sess.edges)

	ack := OpenAck{Session: sess.id, Gen: sess.img.Gen, Watermark: sess.edges, Src: sess.src}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// handleEdges replays one batch on the attached session.
func (h *connHandler) handleEdges(body []byte) bool {
	sess := h.sess
	if sess == nil {
		_ = h.sendError(errf(CodeProto, "Edges without an open session"))
		return false
	}
	if sess.done {
		_ = h.sendError(errf(CodeProto, "Edges on a closed session"))
		return false
	}
	if sess.expired(time.Now()) {
		h.failSession(errf(CodeDeadline, "session %s exceeded its deadline", sess.id))
		return true
	}
	if serr := sess.chargeBytes(uint64(len(body)), h.s.cfg.Quota); serr != nil {
		h.s.m.rejQuota.Add(1)
		h.s.event(obs.EvQuotaReject, sess.src, sess.edges, uint64(serr.Code))
		h.failSession(serr)
		return true
	}
	edges, clock, err := ParseEdges(body, h.edgeBuf)
	if err != nil {
		_ = h.sendError(asError(err))
		return false
	}
	h.edgeBuf = edges[:cap(edges)]
	// Trace-context clock check: a batch that claims a watermark other than
	// the session's accepted one means the sender's stream cursor desynced
	// from the server's (a confused retry loop would otherwise replay edges
	// twice or skip a suffix silently). Frames without a clock skip the
	// check — old clients stay valid.
	if clock != NoClock && uint64(clock) != sess.edges {
		h.failSession(errf(CodeProto,
			"stream clock skew: batch claims watermark %d, session %s at %d", clock, sess.id, sess.edges))
		return true
	}
	if serr := sess.chargeEdges(uint64(len(edges)), h.s.cfg.Quota); serr != nil {
		h.s.m.rejQuota.Add(1)
		h.s.event(obs.EvQuotaReject, sess.src, sess.edges, uint64(serr.Code))
		h.failSession(serr)
		return true
	}

	// The replay itself: one bounded batch on the pinned immutable image.
	// MaxBatchEdges bounds the work between deadline checks, so a session
	// cannot smuggle an unbounded loop into the handler.
	sess.rep.AdvanceBatch(edges)
	sess.edges += uint64(len(edges))
	h.s.m.edges.Add(uint64(len(edges)))
	h.tenant.m.edges.Add(uint64(len(edges)))

	ack := EdgesAck{Watermark: sess.edges}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// handleClose finalizes the attached session and returns its stats. A
// resumed-after-done session gets the same frozen stats again — Close is
// idempotent, which is what makes client retry safe.
func (h *connHandler) handleClose() bool {
	sess := h.sess
	if sess == nil {
		_ = h.sendError(errf(CodeProto, "Close without an open session"))
		return false
	}
	if !sess.done {
		h.finishSession(nil)
	} else if sess.err != nil {
		// Resumed into a failed session: replay the terminal error.
		serr := sess.err
		h.sess = nil
		h.parkSession(sess)
		_ = h.sendError(serr)
		return true
	}
	h.wbuf = sess.final.Append(h.wbuf[:0])
	h.sess = nil
	h.parkSession(sess)
	return h.write(h.wbuf) == nil
}

// handlePublish admits a new image generation under bounded concurrency.
func (h *connHandler) handlePublish(body []byte) bool {
	m, err := ParsePublish(body)
	if err != nil {
		_ = h.sendError(asError(err))
		return false
	}
	select {
	case h.s.pubSem <- struct{}{}:
	default:
		h.s.m.rejBackpressure.Add(1)
		_ = h.sendError(errRetry(CodeBackpressure, h.s.cfg.Quota.RetryAfter, "publish admission busy"))
		return true
	}
	gen, serr := h.s.store.Publish(m.Image, m.Data)
	<-h.s.pubSem
	if serr != nil {
		h.s.m.pubRej.Add(1)
		_ = h.sendError(serr)
		return true
	}
	h.s.m.publishes.Add(1)
	ack := PublishAck{Gen: gen}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// asError coerces any error into the structured taxonomy (parse helpers
// always return *Error; this keeps a future non-conforming error from
// panicking a handler).
func asError(err error) *Error {
	if e, ok := err.(*Error); ok {
		return e
	}
	return errf(CodeProto, "%v", err)
}

// failSession terminates the attached session with a structured error
// frame; the connection survives (the tenant may open another session).
func (h *connHandler) failSession(serr *Error) {
	sess := h.sess
	h.finishSession(serr)
	h.sess = nil
	h.parkSession(sess)
	_ = h.sendError(serr)
}

// finishSession settles the attached session (if any, and not already
// done), releases its concurrency slot, and feeds the image breaker.
func (h *connHandler) finishSession(serr *Error) {
	h.finishSessionReason(serr, "session-fail")
}

// finishSessionReason is finishSession with an explicit flight-recorder
// trigger class (the panic path labels its artifact "panic" instead of
// "session-fail"). Every terminating path lands in the event ring and —
// when something actually went wrong — in a flight artifact whose event
// log ends with the terminal event:
//
//   - structured error  → EvSessionFail (Aux = code) + artifact
//   - desync threshold  → EvSessionFail (Aux = 0)    + artifact "desync-threshold"
//   - clean completion  → EvSessionClose, no artifact
//   - breaker trip      → additionally EvBreakerTrip + artifact "breaker-open"
func (h *connHandler) finishSessionReason(serr *Error, reason string) {
	sess := h.sess
	if sess == nil || sess.done {
		return
	}
	s := h.s
	s.mu.Lock()
	sess.finish(serr, s.cfg.Quota)
	h.tenant.attached--
	s.mu.Unlock()
	if serr == nil {
		s.m.completed.Add(1)
		if sess.failed {
			// Completed for the tenant, but desync-dominated: evidence
			// against the image, and a post-mortem worth keeping.
			s.obs.Flight.Trip("desync-threshold", sess.src, "",
				obs.Event{Edge: sess.edges, Src: sess.src, State: -1, Kind: obs.EvSessionFail})
		} else {
			s.event(obs.EvSessionClose, sess.src, sess.edges, sess.edges)
		}
	} else {
		s.m.failed.Add(1)
		s.obs.Flight.Trip(reason, sess.src, serr.Error(),
			obs.Event{Edge: sess.edges, Aux: uint64(serr.Code), Src: sess.src, State: -1, Kind: obs.EvSessionFail})
	}
	s.m.active.Set(s.activeCount())
	if s.store.Result(sess.img.Name, sess.failed) {
		s.m.breakerTrips.Add(1)
		s.m.imageTrips.With(sess.img.Name).Add(1)
		s.obs.Flight.Trip("breaker-open", sess.src, "",
			obs.Event{Edge: sess.edges, Aux: sess.img.Gen, Src: sess.src, State: -1, Kind: obs.EvBreakerTrip})
	}
}

// parkSession detaches sess and parks it for resume (or, when done, for
// idempotent stats re-fetch), bounding the parked pool oldest-first.
func (h *connHandler) parkSession(sess *session) {
	if sess == nil {
		return
	}
	s := h.s
	s.mu.Lock()
	sess.attached = false
	h.tenant.parked = append(h.tenant.parked, sess)
	for len(h.tenant.parked) > s.cfg.Quota.MaxParked {
		old := h.tenant.parked[0]
		h.tenant.parked = h.tenant.parked[1:]
		delete(s.sessions, old.id)
	}
	s.mu.Unlock()
	s.m.active.Set(s.activeCount())
	s.m.parked.Set(s.parkedCount())
}

// detach parks the attached session on connection teardown so the tenant
// can resume it, releasing its concurrency slot if it was still live.
func (h *connHandler) detach() {
	sess := h.sess
	h.sess = nil
	if sess == nil {
		return
	}
	s := h.s
	s.mu.Lock()
	if !sess.done {
		h.tenant.attached--
	}
	s.mu.Unlock()
	h.parkSession(sess)
}

// activeCount totals attached sessions across tenants.
func (s *Server) activeCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, t := range s.tenants {
		n += uint64(t.attached)
	}
	return n
}

// parkedCount totals parked sessions across tenants.
func (s *Server) parkedCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, t := range s.tenants {
		n += uint64(len(t.parked))
	}
	return n
}
