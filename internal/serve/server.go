package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/obs"
)

// Config tunes one Server.
type Config struct {
	// Lookup selects the replay transition-function configuration sessions
	// run with (Local settings; the compiled path always uses the flat
	// entry table).
	Lookup core.LookupConfig
	// Quota bounds per-tenant and per-session consumption.
	Quota Quota
	// BreakerThreshold consecutive failed sessions quarantine an image
	// (0 selects DefaultBreakerThreshold; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the quarantine window before a verify-gated
	// readmission attempt (0 selects DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// IdleTimeout bounds every single read and write on a connection, so a
	// stalled or half-dead peer can never wedge a handler goroutine
	// (0 selects DefaultIdleTimeout).
	IdleTimeout time.Duration
	// MaxPublishInFlight bounds concurrent publish admissions server-wide;
	// beyond it publishes are rejected with CodeBackpressure (0 selects
	// DefaultMaxPublishInFlight).
	MaxPublishInFlight int
	// Obs receives the server's metrics and health; nil creates a private
	// context (reachable via Server.Obs for scraping).
	Obs *obs.Obs
}

// Config defaults.
const (
	DefaultBreakerThreshold   = 3
	DefaultBreakerCooldown    = time.Second
	DefaultIdleTimeout        = 30 * time.Second
	DefaultMaxPublishInFlight = 2
)

func (c Config) withDefaults() Config {
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.MaxPublishInFlight == 0 {
		c.MaxPublishInFlight = DefaultMaxPublishInFlight
	}
	c.Quota = c.Quota.withDefaults()
	return c
}

// serveMetrics is the server's pre-resolved global metric set.
type serveMetrics struct {
	opened, resumed, completed, failed *obs.Counter
	panics, rejBackpressure, rejQuota  *obs.Counter
	breakerTrips, publishes, pubRej    *obs.Counter
	edges, bytesIn, bytesOut           *obs.Counter
	active, parked                     *obs.Gauge
}

// tenantMetrics is one tenant's pre-resolved metric cells, registered
// lazily under a sanitized tenant name on first Hello.
type tenantMetrics struct {
	sessions, edges, rejects *obs.Counter
}

// Server hosts a fleet of compiled automata and serves concurrent
// replay/publish sessions over the wire protocol. One poisoned session
// never takes the process down: every connection handler converts panics
// into CodeInternal error frames, every read and write carries a deadline,
// and all per-session state is isolated behind per-tenant quotas.
type Server struct {
	cfg    Config
	store  *Store
	obs    *obs.Obs
	health *obs.Health
	m      serveMetrics

	pubSem chan struct{}

	mu       sync.Mutex
	tenants  map[string]*tenant
	sessions map[string]*session
	conns    map[net.Conn]struct{}

	nextID    atomic.Uint64
	closed    atomic.Bool
	listeners []net.Listener
	wg        sync.WaitGroup
}

// NewServer creates a server with no hosted images; Host images before
// (or while) serving. The server reports ready once it hosts at least one
// image and is not draining.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		store:    NewStore(cfg.Lookup, cfg.BreakerThreshold, cfg.BreakerCooldown),
		obs:      o,
		health:   obs.NewHealth(),
		pubSem:   make(chan struct{}, cfg.MaxPublishInFlight),
		tenants:  make(map[string]*tenant),
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
	c := func(name, help string) *obs.Counter { return o.Reg.Counter(name, help) }
	s.m = serveMetrics{
		opened:          c("tea_serve_sessions_opened_total", "sessions opened"),
		resumed:         c("tea_serve_sessions_resumed_total", "sessions resumed from a park"),
		completed:       c("tea_serve_sessions_completed_total", "sessions closed with final stats"),
		failed:          c("tea_serve_sessions_failed_total", "sessions terminated by a structured error"),
		panics:          c("tea_serve_panics_recovered_total", "panics converted to CodeInternal errors"),
		rejBackpressure: c("tea_serve_rejects_backpressure_total", "opens rejected at the concurrency bound"),
		rejQuota:        c("tea_serve_rejects_quota_total", "sessions terminated by step/byte quotas"),
		breakerTrips:    c("tea_serve_breaker_trips_total", "image circuit-breaker quarantines"),
		publishes:       c("tea_serve_publishes_total", "image generations admitted"),
		pubRej:          c("tea_serve_publish_rejects_total", "publishes refused admission"),
		edges:           c("tea_serve_edges_total", "stream edges replayed across all sessions"),
		bytesIn:         c("tea_serve_bytes_in_total", "wire payload bytes received"),
		bytesOut:        c("tea_serve_bytes_out_total", "wire payload bytes sent"),
		active:          o.Reg.Gauge("tea_serve_sessions_active", "sessions currently attached"),
		parked:          o.Reg.Gauge("tea_serve_sessions_parked", "sessions parked for resume"),
	}
	return s
}

// Host admits an automaton (static verification included) under name.
func (s *Server) Host(name string, p *isa.Program, a *core.Automaton) error {
	if err := s.store.Add(name, p, a); err != nil {
		return err
	}
	s.health.SetReady(!s.closed.Load())
	return nil
}

// Store exposes the image store (introspection and tests).
func (s *Server) Store() *Store { return s.store }

// Obs exposes the server's observability context.
func (s *Server) Obs() *obs.Obs { return s.obs }

// Health exposes the liveness/readiness state.
func (s *Server) Health() *obs.Health { return s.health }

// PanicsRecovered reports how many connection-handler panics the server
// has converted into structured errors — the chaos suite asserts zero.
func (s *Server) PanicsRecovered() uint64 { return s.m.panics.Value() }

// Handler serves the admin surface: the obs endpoints (/metrics,
// /metrics.json, /debug/events, /debug/pprof/*) plus /healthz and /readyz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(s.obs))
	mux.Handle("/healthz", obs.HealthHandler(s.health))
	mux.Handle("/readyz", obs.HealthHandler(s.health))
	return mux
}

// Serve accepts connections until the listener fails or Shutdown runs.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Shutdown drains the server: new sessions are rejected with CodeShutdown,
// listeners close, and handlers get until ctx's deadline to finish before
// their connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.health.SetReady(false)
	s.mu.Lock()
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.health.SetLive(false)
	return err
}

// tenantLocked returns (creating if needed) the tenant record. mu held.
func (s *Server) tenantLocked(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		san := obs.SanitizeMetricName(name)
		t = &tenant{name: name, m: tenantMetrics{
			sessions: s.obs.Reg.Counter("tea_serve_tenant_"+san+"_sessions_total", "sessions opened by tenant "+name),
			edges:    s.obs.Reg.Counter("tea_serve_tenant_"+san+"_edges_total", "edges replayed for tenant "+name),
			rejects:  s.obs.Reg.Counter("tea_serve_tenant_"+san+"_rejects_total", "rejections for tenant "+name),
		}}
		s.tenants[name] = t
	}
	return t
}

// connHandler is the per-connection state machine.
type connHandler struct {
	s      *Server
	conn   net.Conn
	tenant *tenant
	sess   *session // currently attached session, nil between sessions

	rbuf    []byte      // frame read buffer, reused
	wbuf    []byte      // frame write buffer, reused
	edgeBuf []core.Edge // parsed-edge scratch, reused
}

// ServeConn drives one connection to completion. It is safe to call
// directly with one end of a net.Pipe (the chaos tests do); Serve calls it
// per accepted connection. Panics anywhere below are converted into a
// best-effort CodeInternal error frame and a failed session — the
// process-scope blast radius of any single connection is zero.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	h := &connHandler{s: s, conn: conn}
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Add(1)
			serr := errf(CodeInternal, "recovered panic: %v", r)
			h.finishSession(serr)
			_ = h.sendError(serr)
		}
		h.detach()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if !h.handshake() {
		return
	}
	for h.serveFrame() {
	}
}

// readFrame reads one frame under the idle deadline.
func (h *connHandler) readFrame() ([]byte, error) {
	_ = h.conn.SetReadDeadline(time.Now().Add(h.s.cfg.IdleTimeout))
	payload, err := ReadFrame(h.conn, h.rbuf)
	if err != nil {
		return nil, err
	}
	h.rbuf = payload[:cap(payload)]
	h.s.m.bytesIn.Add(uint64(len(payload)))
	return payload, nil
}

// write sends one frame under the idle deadline — a peer that stops
// reading cannot wedge the handler, it gets its connection closed.
func (h *connHandler) write(payload []byte) error {
	_ = h.conn.SetWriteDeadline(time.Now().Add(h.s.cfg.IdleTimeout))
	h.s.m.bytesOut.Add(uint64(len(payload)))
	return WriteFrame(h.conn, payload)
}

// sendError writes a structured error frame (best effort).
func (h *connHandler) sendError(serr *Error) error {
	h.wbuf = AppendError(h.wbuf[:0], serr)
	return h.write(h.wbuf)
}

// handshake performs Hello/HelloAck and resolves the tenant.
func (h *connHandler) handshake() bool {
	payload, err := h.readFrame()
	if err != nil {
		return false
	}
	typ, body, perr := ParseFrame(payload)
	if perr != nil || typ != FrameHello {
		_ = h.sendError(errf(CodeProto, "expected Hello"))
		return false
	}
	hello, herr := ParseHello(body)
	if herr != nil {
		_ = h.sendError(asError(herr))
		return false
	}
	if hello.Version != ProtoVersion {
		_ = h.sendError(errf(CodeProto, "protocol version %d unsupported", hello.Version))
		return false
	}
	h.s.mu.Lock()
	h.tenant = h.s.tenantLocked(hello.Tenant)
	h.s.mu.Unlock()
	ack := HelloAck{Version: ProtoVersion}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// serveFrame reads and dispatches one frame; false ends the connection.
func (h *connHandler) serveFrame() bool {
	payload, err := h.readFrame()
	if err != nil {
		if serr, ok := err.(*Error); ok {
			_ = h.sendError(serr)
		}
		return false
	}
	typ, body, perr := ParseFrame(payload)
	if perr != nil {
		_ = h.sendError(asError(perr))
		return false
	}
	switch typ {
	case FrameOpen:
		return h.handleOpen(body)
	case FrameEdges:
		return h.handleEdges(body)
	case FrameClose:
		return h.handleClose()
	case FramePublish:
		return h.handlePublish(body)
	default:
		_ = h.sendError(errf(CodeProto, "unexpected frame %s", typ))
		return false
	}
}

// handleOpen admits a new session or resumes a parked one.
func (h *connHandler) handleOpen(body []byte) bool {
	m, err := ParseOpen(body)
	if err != nil {
		_ = h.sendError(asError(err))
		return false
	}
	if h.sess != nil {
		_ = h.sendError(errf(CodeProto, "session already open on connection"))
		return false
	}
	if h.s.closed.Load() {
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errRetry(CodeShutdown, h.s.cfg.Quota.RetryAfter, "server draining"))
		return true
	}
	if m.Resume != "" {
		return h.resume(m.Resume)
	}

	q := h.s.cfg.Quota
	s := h.s
	s.mu.Lock()
	if h.tenant.attached >= q.MaxConcurrent {
		s.mu.Unlock()
		s.m.rejBackpressure.Add(1)
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter,
			"tenant %s at %d concurrent sessions", h.tenant.name, q.MaxConcurrent))
		return true
	}
	s.mu.Unlock()

	// Breaker-gated image admission happens outside mu: readmission may run
	// a full static verification.
	img, serr := s.store.Get(m.Image)
	if serr != nil {
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(serr)
		return true
	}

	sess := &session{
		id:       fmt.Sprintf("s%08x", s.nextID.Add(1)),
		tenant:   h.tenant.name,
		img:      img,
		rep:      core.NewCompiledReplayer(img.Compiled),
		deadline: time.Now().Add(q.SessionTimeout),
		attached: true,
	}
	s.mu.Lock()
	// Re-check under the lock: the slot may have been taken while verifying.
	if h.tenant.attached >= q.MaxConcurrent {
		s.mu.Unlock()
		s.m.rejBackpressure.Add(1)
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter,
			"tenant %s at %d concurrent sessions", h.tenant.name, q.MaxConcurrent))
		return true
	}
	h.tenant.attached++
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	h.sess = sess
	s.m.opened.Add(1)
	s.m.active.Set(s.activeCount())
	h.tenant.m.sessions.Add(1)

	ack := OpenAck{Session: sess.id, Gen: img.Gen}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// resume re-attaches a parked session. The token must name a session of
// the same tenant: a token leaked across tenants resolves to
// CodeUnknownSession, indistinguishable from an expired one, so session
// state can never cross a tenant boundary.
func (h *connHandler) resume(token string) bool {
	q := h.s.cfg.Quota
	s := h.s
	s.mu.Lock()
	sess, ok := s.sessions[token]
	if !ok || sess.tenant != h.tenant.name {
		s.mu.Unlock()
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errf(CodeUnknownSession, "no resumable session %q", token))
		return true
	}
	if sess.attached {
		s.mu.Unlock()
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter, "session %s still attached", token))
		return true
	}
	if !sess.done && h.tenant.attached >= q.MaxConcurrent {
		s.mu.Unlock()
		s.m.rejBackpressure.Add(1)
		h.tenant.m.rejects.Add(1)
		_ = h.sendError(errRetry(CodeBackpressure, q.RetryAfter,
			"tenant %s at %d concurrent sessions", h.tenant.name, q.MaxConcurrent))
		return true
	}
	sess.attached = true
	if !sess.done {
		h.tenant.attached++
	}
	h.tenant.unpark(sess)
	s.mu.Unlock()
	h.sess = sess
	s.m.resumed.Add(1)
	s.m.active.Set(s.activeCount())
	s.m.parked.Set(s.parkedCount())

	ack := OpenAck{Session: sess.id, Gen: sess.img.Gen, Watermark: sess.edges}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// handleEdges replays one batch on the attached session.
func (h *connHandler) handleEdges(body []byte) bool {
	sess := h.sess
	if sess == nil {
		_ = h.sendError(errf(CodeProto, "Edges without an open session"))
		return false
	}
	if sess.done {
		_ = h.sendError(errf(CodeProto, "Edges on a closed session"))
		return false
	}
	if sess.expired(time.Now()) {
		h.failSession(errf(CodeDeadline, "session %s exceeded its deadline", sess.id))
		return true
	}
	if serr := sess.chargeBytes(uint64(len(body)), h.s.cfg.Quota); serr != nil {
		h.s.m.rejQuota.Add(1)
		h.failSession(serr)
		return true
	}
	edges, err := ParseEdges(body, h.edgeBuf)
	if err != nil {
		_ = h.sendError(asError(err))
		return false
	}
	h.edgeBuf = edges[:cap(edges)]
	if serr := sess.chargeEdges(uint64(len(edges)), h.s.cfg.Quota); serr != nil {
		h.s.m.rejQuota.Add(1)
		h.failSession(serr)
		return true
	}

	// The replay itself: one bounded batch on the pinned immutable image.
	// MaxBatchEdges bounds the work between deadline checks, so a session
	// cannot smuggle an unbounded loop into the handler.
	sess.rep.AdvanceBatch(edges)
	sess.edges += uint64(len(edges))
	h.s.m.edges.Add(uint64(len(edges)))
	h.tenant.m.edges.Add(uint64(len(edges)))

	ack := EdgesAck{Watermark: sess.edges}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// handleClose finalizes the attached session and returns its stats. A
// resumed-after-done session gets the same frozen stats again — Close is
// idempotent, which is what makes client retry safe.
func (h *connHandler) handleClose() bool {
	sess := h.sess
	if sess == nil {
		_ = h.sendError(errf(CodeProto, "Close without an open session"))
		return false
	}
	if !sess.done {
		h.finishSession(nil)
	} else if sess.err != nil {
		// Resumed into a failed session: replay the terminal error.
		serr := sess.err
		h.sess = nil
		h.parkSession(sess)
		_ = h.sendError(serr)
		return true
	}
	h.wbuf = sess.final.Append(h.wbuf[:0])
	h.sess = nil
	h.parkSession(sess)
	return h.write(h.wbuf) == nil
}

// handlePublish admits a new image generation under bounded concurrency.
func (h *connHandler) handlePublish(body []byte) bool {
	m, err := ParsePublish(body)
	if err != nil {
		_ = h.sendError(asError(err))
		return false
	}
	select {
	case h.s.pubSem <- struct{}{}:
	default:
		h.s.m.rejBackpressure.Add(1)
		_ = h.sendError(errRetry(CodeBackpressure, h.s.cfg.Quota.RetryAfter, "publish admission busy"))
		return true
	}
	gen, serr := h.s.store.Publish(m.Image, m.Data)
	<-h.s.pubSem
	if serr != nil {
		h.s.m.pubRej.Add(1)
		_ = h.sendError(serr)
		return true
	}
	h.s.m.publishes.Add(1)
	ack := PublishAck{Gen: gen}
	h.wbuf = ack.Append(h.wbuf[:0])
	return h.write(h.wbuf) == nil
}

// asError coerces any error into the structured taxonomy (parse helpers
// always return *Error; this keeps a future non-conforming error from
// panicking a handler).
func asError(err error) *Error {
	if e, ok := err.(*Error); ok {
		return e
	}
	return errf(CodeProto, "%v", err)
}

// failSession terminates the attached session with a structured error
// frame; the connection survives (the tenant may open another session).
func (h *connHandler) failSession(serr *Error) {
	sess := h.sess
	h.finishSession(serr)
	h.sess = nil
	h.parkSession(sess)
	_ = h.sendError(serr)
}

// finishSession settles the attached session (if any, and not already
// done), releases its concurrency slot, and feeds the image breaker.
func (h *connHandler) finishSession(serr *Error) {
	sess := h.sess
	if sess == nil || sess.done {
		return
	}
	s := h.s
	s.mu.Lock()
	sess.finish(serr, s.cfg.Quota)
	h.tenant.attached--
	s.mu.Unlock()
	if serr == nil {
		s.m.completed.Add(1)
	} else {
		s.m.failed.Add(1)
	}
	s.m.active.Set(s.activeCount())
	if s.store.Result(sess.img.Name, sess.failed) {
		s.m.breakerTrips.Add(1)
	}
}

// parkSession detaches sess and parks it for resume (or, when done, for
// idempotent stats re-fetch), bounding the parked pool oldest-first.
func (h *connHandler) parkSession(sess *session) {
	if sess == nil {
		return
	}
	s := h.s
	s.mu.Lock()
	sess.attached = false
	h.tenant.parked = append(h.tenant.parked, sess)
	for len(h.tenant.parked) > s.cfg.Quota.MaxParked {
		old := h.tenant.parked[0]
		h.tenant.parked = h.tenant.parked[1:]
		delete(s.sessions, old.id)
	}
	s.mu.Unlock()
	s.m.active.Set(s.activeCount())
	s.m.parked.Set(s.parkedCount())
}

// detach parks the attached session on connection teardown so the tenant
// can resume it, releasing its concurrency slot if it was still live.
func (h *connHandler) detach() {
	sess := h.sess
	h.sess = nil
	if sess == nil {
		return
	}
	s := h.s
	s.mu.Lock()
	if !sess.done {
		h.tenant.attached--
	}
	s.mu.Unlock()
	h.parkSession(sess)
}

// activeCount totals attached sessions across tenants.
func (s *Server) activeCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, t := range s.tenants {
		n += uint64(t.attached)
	}
	return n
}

// parkedCount totals parked sessions across tenants.
func (s *Server) parkedCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, t := range s.tenants {
		n += uint64(len(t.parked))
	}
	return n
}
