package serve

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/obs"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
)

// fixture builds a recorded demo program, its automaton, and the captured
// edge stream the tests replay through the server.
type fixture struct {
	prog  *isa.Program
	auto  *core.Automaton
	edges []core.Edge
	want  core.Stats
	final core.StateID
}

var (
	fixOnce sync.Once
	fix     fixture
)

func testFixture(t testing.TB) fixture {
	t.Helper()
	fixOnce.Do(func() {
		p := progs.Figure1(6, 40)
		strat, ok := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 5})
		if !ok {
			panic("mret strategy missing")
		}
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, strat, 0)
		if err != nil {
			panic(err)
		}
		a := core.Build(set)
		tool := teatool.NewCaptureTool()
		if _, err := pin.New().Run(p, tool, 0); err != nil {
			panic(err)
		}
		edges := tool.Stream()
		want, final := core.SequentialReplay(core.Compile(a, core.LookupConfig{}), edges)
		fix = fixture{prog: p, auto: a, edges: edges, want: want, final: final}
	})
	return fix
}

// newTestServer hosts the fixture image under "img" and returns the server.
func newTestServer(t testing.TB, cfgOverride func(*Config)) *Server {
	t.Helper()
	f := testFixture(t)
	c := Config{IdleTimeout: 2 * time.Second}
	if cfgOverride != nil {
		cfgOverride(&c)
	}
	s := NewServer(c)
	if err := s.Host("img", f.prog, f.auto); err != nil {
		t.Fatalf("Host: %v", err)
	}
	return s
}

// testConn is a raw frame-level client over one half of a net.Pipe.
type testConn struct {
	t    testing.TB
	c    net.Conn
	rbuf []byte
}

// dialPipe connects a testConn to the server through an in-memory pipe.
func dialPipe(t testing.TB, s *Server) *testConn {
	t.Helper()
	cli, srv := net.Pipe()
	go s.ServeConn(srv)
	return &testConn{t: t, c: cli}
}

func (tc *testConn) send(payload []byte) {
	tc.t.Helper()
	_ = tc.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(tc.c, payload); err != nil {
		tc.t.Fatalf("WriteFrame: %v", err)
	}
}

func (tc *testConn) recv() (FrameType, []byte) {
	tc.t.Helper()
	_ = tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := ReadFrame(tc.c, tc.rbuf)
	if err != nil {
		tc.t.Fatalf("ReadFrame: %v", err)
	}
	tc.rbuf = payload[:cap(payload)]
	typ, body, err := ParseFrame(payload)
	if err != nil {
		tc.t.Fatalf("ParseFrame: %v", err)
	}
	return typ, body
}

// hello performs the handshake.
func (tc *testConn) hello(tenant string) {
	tc.t.Helper()
	h := Hello{Version: ProtoVersion, Tenant: tenant}
	tc.send(h.Append(nil))
	typ, _ := tc.recv()
	if typ != FrameHelloAck {
		tc.t.Fatalf("handshake: got %v", typ)
	}
}

// open opens or resumes a session and returns the ack or error.
func (tc *testConn) open(image, resume string) (OpenAck, *Error) {
	tc.t.Helper()
	o := Open{Image: image, Resume: resume}
	tc.send(o.Append(nil))
	typ, body := tc.recv()
	switch typ {
	case FrameOpenAck:
		ack, err := ParseOpenAck(body)
		if err != nil {
			tc.t.Fatalf("ParseOpenAck: %v", err)
		}
		return ack, nil
	case FrameError:
		serr, err := ParseError(body)
		if err != nil {
			tc.t.Fatalf("ParseError: %v", err)
		}
		return OpenAck{}, serr
	}
	tc.t.Fatalf("open: unexpected frame %v", typ)
	return OpenAck{}, nil
}

// edges sends one batch and returns the ack watermark or error.
func (tc *testConn) sendEdges(batch []core.Edge) (uint64, *Error) {
	tc.t.Helper()
	tc.send(AppendEdges(nil, batch, NoClock))
	typ, body := tc.recv()
	switch typ {
	case FrameEdgesAck:
		ack, err := ParseEdgesAck(body)
		if err != nil {
			tc.t.Fatalf("ParseEdgesAck: %v", err)
		}
		return ack.Watermark, nil
	case FrameError:
		serr, err := ParseError(body)
		if err != nil {
			tc.t.Fatalf("ParseError: %v", err)
		}
		return 0, serr
	}
	tc.t.Fatalf("edges: unexpected frame %v", typ)
	return 0, nil
}

// close requests final stats (or the session's terminal error).
func (tc *testConn) closeSession() (StatsMsg, *Error) {
	tc.t.Helper()
	tc.send([]byte{byte(FrameClose)})
	typ, body := tc.recv()
	switch typ {
	case FrameStats:
		m, err := ParseStats(body)
		if err != nil {
			tc.t.Fatalf("ParseStats: %v", err)
		}
		return m, nil
	case FrameError:
		serr, err := ParseError(body)
		if err != nil {
			tc.t.Fatalf("ParseError: %v", err)
		}
		return StatsMsg{}, serr
	}
	tc.t.Fatalf("close: unexpected frame %v", typ)
	return StatsMsg{}, nil
}

func TestServeHappyPath(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	ack, serr := tc.open("img", "")
	if serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if ack.Gen != 1 || ack.Watermark != 0 {
		t.Fatalf("ack: %+v", ack)
	}
	for off := 0; off < len(f.edges); off += 64 {
		end := off + 64
		if end > len(f.edges) {
			end = len(f.edges)
		}
		wm, serr := tc.sendEdges(f.edges[off:end])
		if serr != nil {
			t.Fatalf("edges: %v", serr)
		}
		if wm != uint64(end) {
			t.Fatalf("watermark %d, want %d", wm, end)
		}
	}
	m, serr := tc.closeSession()
	if serr != nil {
		t.Fatalf("close: %v", serr)
	}
	if m.Stats != f.want || m.Final != f.final {
		t.Fatalf("served stats diverged from sequential replay:\n got %+v\nwant %+v", m.Stats, f.want)
	}
}

func TestOpenUnknownImage(t *testing.T) {
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	_, serr := tc.open("nope", "")
	if serr == nil || serr.Code != CodeUnknownImage {
		t.Fatalf("got %v, want unknown-image", serr)
	}
}

func TestBackpressureBoundedRejection(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Quota = Quota{MaxConcurrent: 1, RetryAfter: 20 * time.Millisecond}
	})
	tc1 := dialPipe(t, s)
	defer tc1.c.Close()
	tc1.hello("acme")
	if _, serr := tc1.open("img", ""); serr != nil {
		t.Fatalf("first open: %v", serr)
	}
	tc2 := dialPipe(t, s)
	defer tc2.c.Close()
	tc2.hello("acme")
	_, serr := tc2.open("img", "")
	if serr == nil || serr.Code != CodeBackpressure {
		t.Fatalf("got %v, want backpressure", serr)
	}
	if serr.RetryAfter <= 0 {
		t.Fatalf("backpressure must carry a retry-after hint: %+v", serr)
	}
	if !serr.Temporary() {
		t.Fatal("backpressure must be temporary")
	}
	// Another tenant is not affected by acme's bound.
	tc3 := dialPipe(t, s)
	defer tc3.c.Close()
	tc3.hello("globex")
	if _, serr := tc3.open("img", ""); serr != nil {
		t.Fatalf("other tenant open: %v", serr)
	}
}

func TestEdgeQuotaTerminatesSession(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, func(c *Config) {
		c.Quota = Quota{MaxSessionEdges: 10}
	})
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	ack, serr := tc.open("img", "")
	if serr != nil {
		t.Fatalf("open: %v", serr)
	}
	_, serr = tc.sendEdges(f.edges[:32])
	if serr == nil || serr.Code != CodeQuotaSteps {
		t.Fatalf("got %v, want quota-steps", serr)
	}
	// The terminal error replays on resume: quota failures are sticky.
	tc2 := dialPipe(t, s)
	defer tc2.c.Close()
	tc2.hello("acme")
	if _, serr := tc2.open("img", ack.Session); serr != nil {
		t.Fatalf("resume: %v", serr)
	}
	_, serr = tc2.closeSession()
	if serr == nil || serr.Code != CodeQuotaSteps {
		t.Fatalf("resumed close: got %v, want replayed quota-steps", serr)
	}
}

func TestByteQuotaTerminatesSession(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, func(c *Config) {
		c.Quota = Quota{MaxSessionBytes: 8}
	})
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	if _, serr := tc.open("img", ""); serr != nil {
		t.Fatalf("open: %v", serr)
	}
	_, serr := tc.sendEdges(f.edges[:32])
	if serr == nil || serr.Code != CodeQuotaBytes {
		t.Fatalf("got %v, want quota-bytes", serr)
	}
}

func TestSessionDeadline(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, func(c *Config) {
		c.Quota = Quota{SessionTimeout: time.Millisecond}
	})
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	if _, serr := tc.open("img", ""); serr != nil {
		t.Fatalf("open: %v", serr)
	}
	time.Sleep(5 * time.Millisecond)
	_, serr := tc.sendEdges(f.edges[:4])
	if serr == nil || serr.Code != CodeDeadline {
		t.Fatalf("got %v, want deadline", serr)
	}
}

func TestResumeIdempotent(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, nil)
	half := len(f.edges) / 2

	tc := dialPipe(t, s)
	tc.hello("acme")
	ack, serr := tc.open("img", "")
	if serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if _, serr := tc.sendEdges(f.edges[:half]); serr != nil {
		t.Fatalf("first half: %v", serr)
	}
	tc.c.Close() // connection dies; the session parks

	tc2 := dialPipe(t, s)
	defer tc2.c.Close()
	tc2.hello("acme")
	var rack OpenAck
	// The dead handler may still be detaching; resume reports the session
	// attached (backpressure, temporary) until the park lands.
	for i := 0; ; i++ {
		var rerr *Error
		rack, rerr = tc2.open("img", ack.Session)
		if rerr == nil {
			break
		}
		if rerr.Code != CodeBackpressure || i > 100 {
			t.Fatalf("resume: %v", rerr)
		}
		time.Sleep(time.Millisecond)
	}
	if rack.Session != ack.Session || rack.Watermark != uint64(half) {
		t.Fatalf("resume ack %+v, want session %s watermark %d", rack, ack.Session, half)
	}
	// The client re-sends from the watermark — the consumed prefix is never
	// replayed twice.
	if _, serr := tc2.sendEdges(f.edges[half:]); serr != nil {
		t.Fatalf("second half: %v", serr)
	}
	m, serr := tc2.closeSession()
	if serr != nil {
		t.Fatalf("close: %v", serr)
	}
	if m.Stats != f.want || m.Final != f.final {
		t.Fatalf("resumed stats diverged:\n got %+v\nwant %+v", m.Stats, f.want)
	}
	// Close is idempotent: re-resume and fetch the same frozen stats.
	tc3 := dialPipe(t, s)
	defer tc3.c.Close()
	tc3.hello("acme")
	if _, serr := tc3.open("img", ack.Session); serr != nil {
		t.Fatalf("re-resume: %v", serr)
	}
	m2, serr := tc3.closeSession()
	if serr != nil || m2 != m {
		t.Fatalf("idempotent close: %+v, %v", m2, serr)
	}
}

func TestCrossTenantResumeDenied(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	tc.hello("acme")
	ack, serr := tc.open("img", "")
	if serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if _, serr := tc.sendEdges(f.edges[:8]); serr != nil {
		t.Fatalf("edges: %v", serr)
	}
	tc.c.Close()
	time.Sleep(5 * time.Millisecond) // let the session park

	evil := dialPipe(t, s)
	defer evil.c.Close()
	evil.hello("mallory")
	_, serr = evil.open("img", ack.Session)
	if serr == nil || serr.Code != CodeUnknownSession {
		t.Fatalf("cross-tenant resume: got %v, want unknown-session", serr)
	}
}

// panicConn panics on the first Read after the handshake, modeling a
// poisoned connection handler.
type panicConn struct {
	net.Conn
	reads int
}

func (p *panicConn) Read(b []byte) (int, error) {
	p.reads++
	if p.reads > 2 { // survive the two handshake reads (header+payload)
		panic("poisoned connection")
	}
	return p.Conn.Read(b)
}

func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.IdleTimeout = 200 * time.Millisecond })
	cli, srv := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(&panicConn{Conn: srv})
	}()
	tc := &testConn{t: t, c: cli}
	tc.hello("acme")
	// Drive the poisoned read; the handler must recover, not crash.
	h := Hello{Version: ProtoVersion, Tenant: "acme"}
	_ = WriteFrame(cli, h.Append(nil))
	<-done
	cli.Close()
	if got := s.m.panics.Value(); got != 1 {
		t.Fatalf("panics recovered: %d, want 1", got)
	}
	// The server survives and serves new sessions.
	f := testFixture(t)
	tc2 := dialPipe(t, s)
	defer tc2.c.Close()
	tc2.hello("acme")
	if _, serr := tc2.open("img", ""); serr != nil {
		t.Fatalf("post-panic open: %v", serr)
	}
	if _, serr := tc2.sendEdges(f.edges[:8]); serr != nil {
		t.Fatalf("post-panic edges: %v", serr)
	}
}

func TestPublishSwapsGenerationAndBadImageRefused(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, nil)
	data, err := core.Encode(f.auto)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("ops")
	pub := Publish{Image: "img", Data: data}
	tc.send(pub.Append(nil))
	typ, body := tc.recv()
	if typ != FramePublishAck {
		t.Fatalf("publish: got %v", typ)
	}
	ack, perr := ParsePublishAck(body)
	if perr != nil || ack.Gen != 2 {
		t.Fatalf("publish ack: %+v, %v", ack, perr)
	}
	// New sessions see the new generation.
	ack2, serr := tc.open("img", "")
	if serr != nil || ack2.Gen != 2 {
		t.Fatalf("open after publish: %+v, %v", ack2, serr)
	}
	if _, serr := tc.closeSession(); serr != nil {
		t.Fatalf("close: %v", serr)
	}

	// A corrupted image is refused admission with a structured error.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xff
	pub = Publish{Image: "img", Data: bad}
	tc.send(pub.Append(nil))
	typ, body = tc.recv()
	if typ != FrameError {
		t.Fatalf("bad publish: got %v", typ)
	}
	serr2, perr := ParseError(body)
	if perr != nil || serr2.Code != CodeBadImage {
		t.Fatalf("bad publish: %+v, %v", serr2, perr)
	}
	// The refused image never becomes visible.
	img, gerr := s.Store().Peek("img")
	if gerr != nil || img.Gen != 2 {
		t.Fatalf("generation after refused publish: %+v, %v", img, gerr)
	}
}

func TestBreakerQuarantinesAndReadmits(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = 30 * time.Millisecond
		c.Quota = Quota{MaxSessionDesyncs: 1}
	})
	// The reversed stream enters traces and then diverges on every visit:
	// each completed session desyncs far past the threshold, so it counts
	// as failure evidence against the image.
	garbage := make([]core.Edge, len(f.edges))
	for i := range garbage {
		garbage[i] = f.edges[len(f.edges)-1-i]
	}
	failOnce := func() {
		tc := dialPipe(t, s)
		defer tc.c.Close()
		tc.hello("acme")
		if _, serr := tc.open("img", ""); serr != nil {
			t.Fatalf("open: %v", serr)
		}
		if _, serr := tc.sendEdges(garbage); serr != nil {
			t.Fatalf("edges: %v", serr)
		}
		if _, serr := tc.closeSession(); serr != nil {
			t.Fatalf("close: %v", serr)
		}
	}
	failOnce()
	if s.Store().Quarantined("img") {
		t.Fatal("breaker tripped below threshold")
	}
	failOnce()
	if !s.Store().Quarantined("img") {
		t.Fatal("breaker did not trip at threshold")
	}
	// While quarantined, opens are refused with the remaining cooldown.
	tc := dialPipe(t, s)
	tc.hello("acme")
	_, serr := tc.open("img", "")
	if serr == nil || serr.Code != CodeQuarantined {
		t.Fatalf("got %v, want quarantined", serr)
	}
	if !serr.Temporary() || serr.RetryAfter <= 0 {
		t.Fatalf("quarantine must be temporary with retry-after: %+v", serr)
	}
	tc.c.Close()

	// After the cooldown the image re-verifies (it is statically clean) and
	// is readmitted; a healthy session closes the breaker.
	time.Sleep(40 * time.Millisecond)
	tc2 := dialPipe(t, s)
	defer tc2.c.Close()
	tc2.hello("acme")
	if _, serr := tc2.open("img", ""); serr != nil {
		t.Fatalf("readmission open: %v", serr)
	}
	if _, serr := tc2.sendEdges(f.edges[:64]); serr != nil {
		t.Fatalf("healthy edges: %v", serr)
	}
	if _, serr := tc2.closeSession(); serr != nil {
		t.Fatalf("healthy close: %v", serr)
	}
	if s.Store().Quarantined("img") {
		t.Fatal("breaker still open after clean re-verify and healthy session")
	}
	if got := s.m.breakerTrips.Value(); got != 1 {
		t.Fatalf("breaker trips: %d, want 1", got)
	}
}

func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t, nil)
	if !s.Health().Ready() {
		t.Fatal("server with a hosted image must be ready")
	}
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	// Draining: new opens are refused with CodeShutdown.
	_, serr := tc.open("img", "")
	if serr == nil || serr.Code != CodeShutdown {
		t.Fatalf("got %v, want shutdown", serr)
	}
	tc.c.Close()
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if s.Health().Ready() || s.Health().Live() {
		t.Fatal("health flags not cleared after drain")
	}
}

func TestTenantMetricsSanitized(t *testing.T) {
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	defer tc.c.Close()
	// A hostile tenant name must not panic the metrics registry, and the
	// label value must land in the scrape with quote/backslash escaping so
	// it cannot forge extra series or break the exposition format.
	tc.hello(`evil" tenant{} -1`)
	if _, serr := tc.open("img", ""); serr != nil {
		t.Fatalf("open: %v", serr)
	}
	var sb strings.Builder
	if err := s.Obs().Reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `tea_serve_tenant_sessions_total{tenant="evil\" tenant{} -1"}`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped tenant series %q missing from scrape:\n%s", want, sb.String())
	}
}

// TestStreamClockSkewRejected: a batch claiming a watermark other than the
// session's accepted one is a desynced sender; the session dies with a
// structured CodeProto error instead of silently double-applying edges.
func TestStreamClockSkewRejected(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	if _, serr := tc.open("img", ""); serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if _, serr := tc.sendEdges(f.edges[:8]); serr != nil {
		t.Fatalf("first batch: %v", serr)
	}
	// Claim watermark 3 while the session sits at 8.
	tc.send(AppendEdges(nil, f.edges[8:16], 3))
	typ, body := tc.recv()
	if typ != FrameError {
		t.Fatalf("skewed batch: got %v, want error frame", typ)
	}
	serr, err := ParseError(body)
	if err != nil {
		t.Fatalf("ParseError: %v", err)
	}
	if serr.Code != CodeProto || !strings.Contains(serr.Msg, "clock skew") {
		t.Fatalf("got %v, want clock-skew proto error", serr)
	}
	// An honest clock is accepted.
	tc2 := dialPipe(t, s)
	defer tc2.c.Close()
	tc2.hello("acme")
	if _, serr := tc2.open("img", ""); serr != nil {
		t.Fatalf("open2: %v", serr)
	}
	tc2.send(AppendEdges(nil, f.edges[:8], 0))
	if typ, _ := tc2.recv(); typ != FrameEdgesAck {
		t.Fatalf("honest clock: got %v, want ack", typ)
	}
	tc2.send(AppendEdges(nil, f.edges[8:16], 8))
	if typ, _ := tc2.recv(); typ != FrameEdgesAck {
		t.Fatalf("honest clock at 8: got %v, want ack", typ)
	}
}

// TestSessionEventStream: an open → edges → close lifecycle lands causally
// ordered events in the ring, all stamped with the session's source id.
func TestSessionEventStream(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	ack, serr := tc.open("img", "")
	if serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if ack.Src == 0 {
		t.Fatal("server did not assign a source id")
	}
	if _, serr := tc.sendEdges(f.edges[:16]); serr != nil {
		t.Fatalf("edges: %v", serr)
	}
	if _, serr := tc.closeSession(); serr != nil {
		t.Fatalf("close: %v", serr)
	}
	events, _ := s.Obs().Tracer.Snapshot()
	var kinds []obs.EventKind
	for _, e := range events {
		if e.Src != ack.Src {
			t.Fatalf("event %v carries src %d, want %d", e.Kind, e.Src, ack.Src)
		}
		kinds = append(kinds, e.Kind)
	}
	want := []obs.EventKind{obs.EvSessionOpen, obs.EvSessionClose}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds %v, want %v", kinds, want)
		}
	}
	if last := events[len(events)-1]; last.Edge != 16 || last.Aux != 16 {
		t.Fatalf("close event clock %d/%d, want 16/16", last.Edge, last.Aux)
	}
}

// TestClientSrcProposalHonored: an Open carrying a client trace context gets
// it echoed on the OpenAck and stamped on the session's events.
func TestClientSrcProposalHonored(t *testing.T) {
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	o := Open{Image: "img", Src: 0xbeef}
	tc.send(o.Append(nil))
	typ, body := tc.recv()
	if typ != FrameOpenAck {
		t.Fatalf("got %v", typ)
	}
	ack, err := ParseOpenAck(body)
	if err != nil {
		t.Fatalf("ParseOpenAck: %v", err)
	}
	if ack.Src != 0xbeef {
		t.Fatalf("ack src %#x, want 0xbeef", ack.Src)
	}
	events, _ := s.Obs().Tracer.Snapshot()
	if len(events) == 0 || events[0].Kind != obs.EvSessionOpen || events[0].Src != 0xbeef {
		t.Fatalf("open event not stamped with client src: %+v", events)
	}
}

// TestQuotaFailureTripsFlightRecorder: a quota-killed session must leave a
// decodable flight artifact whose event log ends with the EvSessionFail
// carrying the structured code that terminated it.
func TestQuotaFailureTripsFlightRecorder(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, func(c *Config) {
		c.Quota = Quota{MaxSessionEdges: 10}
	})
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	ack, serr := tc.open("img", "")
	if serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if _, serr := tc.sendEdges(f.edges[:32]); serr == nil || serr.Code != CodeQuotaSteps {
		t.Fatalf("got %v, want quota-steps", serr)
	}
	rec, ok := s.Obs().Flight.Last()
	if !ok {
		t.Fatal("no flight artifact after quota kill")
	}
	if rec.Reason != "session-fail" || rec.Src != ack.Src || rec.Err == "" {
		t.Fatalf("artifact metadata wrong: %+v", rec)
	}
	// The artifact must survive an encode/decode round trip and end with
	// the terminal event.
	dec, err := obs.DecodeFlight(obs.EncodeFlight(rec))
	if err != nil {
		t.Fatalf("DecodeFlight: %v", err)
	}
	last := dec.Events[len(dec.Events)-1]
	if last.Kind != obs.EvSessionFail || last.Aux != uint64(CodeQuotaSteps) || last.Src != ack.Src {
		t.Fatalf("artifact does not end with the quota failure: %+v", last)
	}
	// The quota rejection itself precedes the failure in the suffix.
	if n := len(dec.Events); n < 2 || dec.Events[n-2].Kind != obs.EvQuotaReject {
		t.Fatalf("quota-reject event missing before the failure: %+v", dec.Events)
	}
}

// TestTenantEvictionReleasesSeries: when a tenant's last connection drops
// and nothing resumable remains, its metric series leave the registry —
// the per-tenant label set is bounded by live tenants, not by history.
func TestTenantEvictionReleasesSeries(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, nil)
	tc := dialPipe(t, s)
	tc.hello("evictme")
	if _, serr := tc.open("img", ""); serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if _, serr := tc.sendEdges(f.edges[:8]); serr != nil {
		t.Fatalf("edges: %v", serr)
	}
	if _, serr := tc.closeSession(); serr != nil {
		t.Fatalf("close: %v", serr)
	}
	scrape := func() string {
		var sb strings.Builder
		if err := s.Obs().Reg.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return sb.String()
	}
	if !strings.Contains(scrape(), `tenant="evictme"`) {
		t.Fatal("tenant series missing while connected")
	}
	tc.c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for strings.Contains(scrape(), `tenant="evictme"`) {
		if time.Now().After(deadline) {
			t.Fatal("tenant series still present after last connection dropped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A returning tenant gets fresh series, starting from zero.
	tc2 := dialPipe(t, s)
	defer tc2.c.Close()
	tc2.hello("evictme")
	if !strings.Contains(scrape(), `tea_serve_tenant_sessions_total{tenant="evictme"} 0`) {
		t.Fatalf("returning tenant did not get a fresh series:\n%s", scrape())
	}
}

// TestDisableSessionEventsSilencesStream: the obs-off serve configuration
// keeps the event ring empty while sessions still work and the flight
// recorder still trips.
func TestDisableSessionEventsSilencesStream(t *testing.T) {
	f := testFixture(t)
	s := newTestServer(t, func(c *Config) {
		c.DisableSessionEvents = true
		c.Quota = Quota{MaxSessionEdges: 10}
	})
	tc := dialPipe(t, s)
	defer tc.c.Close()
	tc.hello("acme")
	if _, serr := tc.open("img", ""); serr != nil {
		t.Fatalf("open: %v", serr)
	}
	if _, serr := tc.sendEdges(f.edges[:32]); serr == nil || serr.Code != CodeQuotaSteps {
		t.Fatalf("got %v, want quota-steps", serr)
	}
	if _, ok := s.Obs().Flight.Last(); !ok {
		t.Fatal("flight recorder silenced by DisableSessionEvents")
	}
	events, _ := s.Obs().Tracer.Snapshot()
	// The flight trip appends only its terminal event; nothing else may
	// have reached the ring.
	if len(events) != 1 || events[0].Kind != obs.EvSessionFail {
		t.Fatalf("session events leaked with DisableSessionEvents: %+v", events)
	}
}
