// Package client is the wire client for the TEA serving layer
// (internal/serve): it dials a server, opens replay sessions, streams edge
// batches, and survives the failures the chaos suite injects — connection
// loss, truncated frames, backpressure rejections, server restarts —
// through retry with jittered exponential backoff and idempotent session
// resume.
//
// Idempotency contract: every batch is acknowledged with the session's
// cumulative accepted-edge watermark, and a resumed session's OpenAck
// carries the same watermark, so after any interruption the client
// re-sends exactly the un-acknowledged suffix. A replay therefore consumes
// each edge exactly once server-side no matter how many times the
// connection died in between.
package client

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"time"

	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/obs"
	"github.com/lsc-tea/tea/internal/serve"
)

// Config tunes one Client.
type Config struct {
	// Tenant is the identity sent in Hello (required).
	Tenant string
	// Dial opens a transport connection (required unless using Dial()).
	Dial func() (net.Conn, error)
	// Retries bounds reconnect/backoff attempts per operation
	// (0 selects DefaultRetries; negative disables retry).
	Retries int
	// BaseBackoff and MaxBackoff shape the exponential backoff curve
	// (0 selects the defaults). The sleep before attempt n is a uniformly
	// jittered value in [d/2, d) with d = min(MaxBackoff, BaseBackoff<<n),
	// floored by any server-provided retry-after hint.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Timeout bounds each frame read/write (0 selects DefaultTimeout).
	Timeout time.Duration
	// Seed makes the jitter deterministic for tests; 0 derives from time.
	Seed int64
	// Obs, when non-nil, receives client-side trace events (EvClientRetry,
	// stamped with the session's source id and acknowledged watermark), so
	// a spliced client+server event stream shows each retry in causal order
	// with the server's park/resume events for the same source.
	Obs *obs.Obs
}

// Config defaults.
const (
	DefaultRetries     = 6
	DefaultBaseBackoff = 5 * time.Millisecond
	DefaultMaxBackoff  = 500 * time.Millisecond
	DefaultTimeout     = 10 * time.Second
	// DefaultBatch is the edge-batch size Replay uses when none is given.
	DefaultBatch = 8192
)

func (c Config) withDefaults() Config {
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

// Client is a wire client bound to one tenant identity. It is not safe for
// concurrent use; open one Client per concurrent session.
type Client struct {
	cfg  Config
	rng  *rand.Rand
	conn net.Conn
	rbuf []byte
	wbuf []byte
}

// New creates a client over cfg.Dial.
func New(cfg Config) (*Client, error) {
	if cfg.Tenant == "" {
		return nil, errors.New("client: empty tenant")
	}
	if cfg.Dial == nil {
		return nil, errors.New("client: nil Dial")
	}
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Dial creates a client connecting to a TCP address.
func Dial(addr string, cfg Config) (*Client, error) {
	cfg.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	return New(cfg)
}

// Close drops the transport connection (sessions park server-side and stay
// resumable until evicted).
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// ensure dials and performs the Hello handshake if no connection is live.
func (c *Client) ensure() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.cfg.Dial()
	if err != nil {
		return err
	}
	c.conn = conn
	hello := serve.Hello{Version: serve.ProtoVersion, Tenant: c.cfg.Tenant}
	typ, body, err := c.roundTrip(hello.Append(c.wbuf[:0]))
	if err != nil {
		c.drop()
		return err
	}
	if typ != serve.FrameHelloAck {
		c.drop()
		return &serve.Error{Code: serve.CodeProto, Msg: "expected HelloAck, got " + typ.String()}
	}
	if _, err := serve.ParseHelloAck(body); err != nil {
		c.drop()
		return err
	}
	return nil
}

// drop discards the connection so the next attempt redials.
func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// roundTrip writes one frame and reads the response frame, both under the
// configured timeout. A FrameError response is parsed into *serve.Error
// and returned as the error with frame type FrameError.
func (c *Client) roundTrip(payload []byte) (serve.FrameType, []byte, error) {
	c.wbuf = payload
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.cfg.Timeout))
	if err := serve.WriteFrame(c.conn, payload); err != nil {
		return 0, nil, err
	}
	_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.Timeout))
	resp, err := serve.ReadFrame(c.conn, c.rbuf)
	if err != nil {
		return 0, nil, err
	}
	c.rbuf = resp[:cap(resp)]
	typ, body, err := serve.ParseFrame(resp)
	if err != nil {
		return 0, nil, err
	}
	if typ == serve.FrameError {
		serr, perr := serve.ParseError(body)
		if perr != nil {
			return 0, nil, perr
		}
		return typ, nil, serr
	}
	return typ, body, nil
}

// transient classifies an error as retryable: transport failures (the
// connection may have died mid-frame) and temporary structured errors
// (backpressure, quarantine cooldown, draining replica).
func transient(err error) bool {
	var serr *serve.Error
	if errors.As(err, &serr) {
		return serr.Temporary()
	}
	// Anything non-structured is a transport failure.
	return true
}

// backoff sleeps the jittered exponential delay for attempt n, floored by
// a server retry-after hint, honoring ctx.
func (c *Client) backoff(ctx context.Context, attempt int, err error) error {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	var serr *serve.Error
	if errors.As(err, &serr) && serr.RetryAfter > d {
		d = serr.RetryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Replay streams edges through a server-side session against image and
// returns the final statistics and state. batch <= 0 selects DefaultBatch.
// Interruptions retry up to cfg.Retries times with jittered exponential
// backoff, resuming the same session from the server's watermark.
func (c *Client) Replay(ctx context.Context, image string, edges []core.Edge, batch int) (*core.Stats, core.StateID, error) {
	if batch <= 0 {
		batch = DefaultBatch
	}
	if batch > serve.MaxBatchEdges {
		batch = serve.MaxBatchEdges
	}
	var (
		sessionID string
		sent      uint64 // acknowledged watermark
		attempt   int
	)
	// The session's trace-context source id: proposed from the jitter rng
	// (deterministic under Config.Seed, never 0), confirmed or replaced by
	// the server's OpenAck echo.
	src := uint32(c.rng.Int63())>>15 | 1
	for {
		stats, final, err := c.replayOnce(image, edges, batch, &sessionID, &sent, &src)
		if err == nil {
			return stats, final, nil
		}
		c.drop()
		if ctx.Err() != nil {
			return nil, core.NTE, ctx.Err()
		}
		if !transient(err) || attempt >= c.cfg.Retries {
			return nil, core.NTE, err
		}
		if berr := c.backoff(ctx, attempt, err); berr != nil {
			return nil, core.NTE, berr
		}
		attempt++
		if c.cfg.Obs != nil {
			c.cfg.Obs.SessionEvent(obs.EvClientRetry, src, sent, uint64(attempt))
		}
	}
}

// replayOnce drives one connection's worth of the session: (re)open,
// stream the unacknowledged suffix, close for stats.
func (c *Client) replayOnce(image string, edges []core.Edge, batch int, sessionID *string, sent *uint64, src *uint32) (*core.Stats, core.StateID, error) {
	if err := c.ensure(); err != nil {
		return nil, core.NTE, err
	}
	open := serve.Open{Image: image, Resume: *sessionID, Src: *src}
	typ, body, err := c.roundTrip(open.Append(c.wbuf[:0]))
	if err != nil {
		return nil, core.NTE, err
	}
	if typ != serve.FrameOpenAck {
		return nil, core.NTE, &serve.Error{Code: serve.CodeProto, Msg: "expected OpenAck, got " + typ.String()}
	}
	ack, err := serve.ParseOpenAck(body)
	if err != nil {
		return nil, core.NTE, err
	}
	*sessionID = ack.Session
	*sent = ack.Watermark
	if ack.Src != 0 {
		*src = ack.Src
	}
	if *sent > uint64(len(edges)) {
		return nil, core.NTE, &serve.Error{Code: serve.CodeProto, Msg: "server watermark beyond stream length"}
	}

	for *sent < uint64(len(edges)) {
		end := *sent + uint64(batch)
		if end > uint64(len(edges)) {
			end = uint64(len(edges))
		}
		payload := serve.AppendEdges(c.wbuf[:0], edges[*sent:end], int64(*sent))
		typ, body, err := c.roundTrip(payload)
		if err != nil {
			return nil, core.NTE, err
		}
		if typ != serve.FrameEdgesAck {
			return nil, core.NTE, &serve.Error{Code: serve.CodeProto, Msg: "expected EdgesAck, got " + typ.String()}
		}
		eack, err := serve.ParseEdgesAck(body)
		if err != nil {
			return nil, core.NTE, err
		}
		if eack.Watermark < *sent || eack.Watermark > uint64(len(edges)) {
			return nil, core.NTE, &serve.Error{Code: serve.CodeProto, Msg: "server watermark regressed"}
		}
		*sent = eack.Watermark
	}

	closeFrame := append(c.wbuf[:0], byte(serve.FrameClose))
	typ, body, err = c.roundTrip(closeFrame)
	if err != nil {
		return nil, core.NTE, err
	}
	if typ != serve.FrameStats {
		return nil, core.NTE, &serve.Error{Code: serve.CodeProto, Msg: "expected Stats, got " + typ.String()}
	}
	msg, err := serve.ParseStats(body)
	if err != nil {
		return nil, core.NTE, err
	}
	stats := msg.Stats
	return &stats, msg.Final, nil
}

// Publish uploads a serialized TEA (core.Encode bytes) as image's next
// generation, retrying transient failures. Publishing is idempotent in
// content but not in generation number: a retry after a lost ack may admit
// the same image twice, which is harmless (generations are equivalent).
func (c *Client) Publish(ctx context.Context, image string, data []byte) (uint64, error) {
	attempt := 0
	for {
		gen, err := c.publishOnce(image, data)
		if err == nil {
			return gen, nil
		}
		c.drop()
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if !transient(err) || attempt >= c.cfg.Retries {
			return 0, err
		}
		if berr := c.backoff(ctx, attempt, err); berr != nil {
			return 0, berr
		}
		attempt++
	}
}

func (c *Client) publishOnce(image string, data []byte) (uint64, error) {
	if err := c.ensure(); err != nil {
		return 0, err
	}
	pub := serve.Publish{Image: image, Data: data}
	typ, body, err := c.roundTrip(pub.Append(c.wbuf[:0]))
	if err != nil {
		return 0, err
	}
	if typ != serve.FramePublishAck {
		return 0, &serve.Error{Code: serve.CodeProto, Msg: "expected PublishAck, got " + typ.String()}
	}
	ack, err := serve.ParsePublishAck(body)
	if err != nil {
		return 0, err
	}
	return ack.Gen, nil
}
