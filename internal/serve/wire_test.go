package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/faultinject"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{byte(FrameClose), 1, 2, 3}
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %x want %x", got, payload)
	}
}

func TestFrameChecksumDetectsEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendEdges(nil, []core.Edge{{Label: 0x1000, Instrs: 7}, {Label: 0x1008, Instrs: 3}}, NoClock)
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	frame := buf.Bytes()
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		_, err := ReadFrame(bytes.NewReader(mut), nil)
		if err == nil {
			t.Fatalf("bit flip %d went undetected", bit)
		}
		// Every detected failure is either structured (corrupt length /
		// checksum) or a clean transport error from a shortened read.
		var serr *Error
		if errors.As(err, &serr) {
			if serr.Code != CodeCorrupt {
				t.Fatalf("bit flip %d: code %v, want corrupt", bit, serr.Code)
			}
		} else if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Fatalf("bit flip %d: unexpected error %v", bit, err)
		}
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(hdr), nil); err == nil {
		t.Fatal("oversized length accepted")
	}
	hdr = []byte{0, 0, 0, 1, 0, 0, 0, 0} // below checksum size
	if _, err := ReadFrame(bytes.NewReader(hdr), nil); err == nil {
		t.Fatal("undersized length accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	parse := func(payload []byte, want FrameType) []byte {
		t.Helper()
		typ, body, err := ParseFrame(payload)
		if err != nil {
			t.Fatalf("ParseFrame: %v", err)
		}
		if typ != want {
			t.Fatalf("frame type %v, want %v", typ, want)
		}
		return body
	}

	hello := Hello{Version: ProtoVersion, Tenant: "acme"}
	if got, err := ParseHello(parse(hello.Append(nil), FrameHello)); err != nil || got != hello {
		t.Fatalf("Hello round trip: %+v, %v", got, err)
	}
	open := Open{Image: "gcc", Resume: "s0000002a"}
	if got, err := ParseOpen(parse(open.Append(nil), FrameOpen)); err != nil || got != open {
		t.Fatalf("Open round trip: %+v, %v", got, err)
	}
	ack := OpenAck{Session: "s01", Gen: 3, Watermark: 99}
	if got, err := ParseOpenAck(parse(ack.Append(nil), FrameOpenAck)); err != nil || got != ack {
		t.Fatalf("OpenAck round trip: %+v, %v", got, err)
	}
	sm := StatsMsg{
		Stats: core.Stats{Blocks: 10, Instrs: 50, Desyncs: 2, Resyncs: 2,
			TraceEnters: 4, TraceExits: 4, GlobalLookups: 6, GlobalHits: 4},
		Final:     core.StateID(17),
		Watermark: 10,
	}
	if got, err := ParseStats(parse(sm.Append(nil), FrameStats)); err != nil || got != sm {
		t.Fatalf("Stats round trip: %+v, %v", got, err)
	}
	serr := &Error{Code: CodeBackpressure, RetryAfter: 250 * time.Millisecond, Msg: "busy"}
	got, err := ParseError(parse(AppendError(nil, serr), FrameError))
	if err != nil || *got != *serr {
		t.Fatalf("Error round trip: %+v, %v", got, err)
	}
	pub := Publish{Image: "gcc", Data: []byte{1, 2, 3, 4}}
	pgot, err := ParsePublish(parse(pub.Append(nil), FramePublish))
	if err != nil || pgot.Image != pub.Image || !bytes.Equal(pgot.Data, pub.Data) {
		t.Fatalf("Publish round trip: %+v, %v", pgot, err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	edges := []core.Edge{
		{Label: 0x400000, Instrs: 12},
		{Label: 0x400010, Instrs: 3},
		{Label: 0x3ffff0, Instrs: 9}, // negative delta
		{Label: 0, Instrs: 0},
	}
	payload := AppendEdges(nil, edges, 96)
	typ, body, err := ParseFrame(payload)
	if err != nil || typ != FrameEdges {
		t.Fatalf("ParseFrame: %v %v", typ, err)
	}
	got, clock, err := ParseEdges(body, nil)
	if err != nil {
		t.Fatalf("ParseEdges: %v", err)
	}
	if clock != 96 {
		t.Fatalf("clock %d, want 96", clock)
	}
	if len(got) != len(edges) {
		t.Fatalf("len %d, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %+v want %+v", i, got[i], edges[i])
		}
	}
}

func TestParseEdgesRejectsForgedCount(t *testing.T) {
	// A count far beyond the bytes present must fail before allocating.
	body := []byte{0xff, 0xff, 0x3} // uvarint 65535 with no edge bytes
	if _, _, err := ParseEdges(body, nil); err == nil {
		t.Fatal("forged count accepted")
	}
	big := AppendEdges(nil, make([]core.Edge, 8), NoClock)[1:]
	big[0] = 0xff // corrupt the count upward
	if _, _, err := ParseEdges(big, nil); err == nil {
		t.Fatal("corrupt count accepted")
	}
}

// TestParsersSurviveMutation drives every parser with deterministic
// mutations of valid bodies: any outcome but a panic or unbounded loop is
// acceptable, and errors must carry the structured taxonomy.
func TestParsersSurviveMutation(t *testing.T) {
	inj := faultinject.New(7)
	hello := Hello{Version: 1, Tenant: "t"}
	open := Open{Image: "img", Resume: "s01"}
	sm := StatsMsg{Final: core.NTE, Watermark: 4}
	edges := AppendEdges(nil, []core.Edge{{Label: 5, Instrs: 5}, {Label: 9, Instrs: 1}}, 2)
	seeds := [][]byte{
		hello.Append(nil), open.Append(nil), sm.Append(nil), edges,
		AppendError(nil, errf(CodeInternal, "x")),
		(&Publish{Image: "i", Data: []byte{1}}).Append(nil),
	}
	for _, seed := range seeds {
		for round := 0; round < 200; round++ {
			mut := inj.Mutate(seed)
			typ, body, err := ParseFrame(mut)
			if err != nil {
				continue
			}
			var perr error
			switch typ {
			case FrameHello:
				_, perr = ParseHello(body)
			case FrameOpen:
				_, perr = ParseOpen(body)
			case FrameOpenAck:
				_, perr = ParseOpenAck(body)
			case FrameEdges:
				_, _, perr = ParseEdges(body, nil)
			case FrameEdgesAck:
				_, perr = ParseEdgesAck(body)
			case FrameStats:
				_, perr = ParseStats(body)
			case FrameError:
				_, perr = ParseError(body)
			case FramePublish:
				_, perr = ParsePublish(body)
			case FramePublishAck:
				_, perr = ParsePublishAck(body)
			}
			if perr != nil {
				var serr *Error
				if !errors.As(perr, &serr) {
					t.Fatalf("%v parse error not structured: %v", typ, perr)
				}
			}
		}
	}
}

func TestErrorTaxonomy(t *testing.T) {
	for c := CodeOK; c <= CodeCorrupt; c++ {
		if s := c.String(); len(s) == 0 || s[len(s)-1] == ')' {
			t.Fatalf("code %d has placeholder name %q", uint32(c), s)
		}
	}
	if (&Error{Code: CodeBackpressure}).Temporary() != true {
		t.Fatal("backpressure must be temporary")
	}
	if (&Error{Code: CodeQuotaSteps}).Temporary() {
		t.Fatal("quota exhaustion must not be temporary")
	}
	if (&Error{Code: CodeCorrupt}).Temporary() != true {
		t.Fatal("corruption must be temporary (reconnect + resume recovers)")
	}
}

// TestTraceContextOptionalFields: the Src trace-context fields on Open and
// OpenAck, and the stream clock on Edges, round-trip — and bodies written
// by pre-trace-context peers (no trailing field) still parse, with the
// zero/absent value.
func TestTraceContextOptionalFields(t *testing.T) {
	o := Open{Image: "img", Resume: "s01", Src: 0xdeadbeef}
	_, body, err := ParseFrame(o.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, perr := ParseOpen(body)
	if perr != nil || got != o {
		t.Fatalf("Open round trip: %+v, %v", got, perr)
	}
	// Legacy body: same layout minus the trailing Src uvarint.
	legacy := Open{Image: "img", Resume: "s01"}
	full := legacy.Append(nil)
	_, body, _ = ParseFrame(full[:len(full)-1]) // strip the one-byte Src 0
	if got, perr := ParseOpen(body); perr != nil || got != legacy {
		t.Fatalf("legacy Open: %+v, %v", got, perr)
	}

	a := OpenAck{Session: "s01", Gen: 3, Watermark: 128, Src: 1<<32 - 1}
	_, body, err = ParseFrame(a.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got, perr := ParseOpenAck(body); perr != nil || got != a {
		t.Fatalf("OpenAck round trip: %+v, %v", got, perr)
	}
	lack := OpenAck{Session: "s01", Gen: 3, Watermark: 128}
	full = lack.Append(nil)
	_, body, _ = ParseFrame(full[:len(full)-1])
	if got, perr := ParseOpenAck(body); perr != nil || got != lack {
		t.Fatalf("legacy OpenAck: %+v, %v", got, perr)
	}

	// Edges without a clock parses to the NoClock sentinel.
	_, body, _ = ParseFrame(AppendEdges(nil, []core.Edge{{Label: 4, Instrs: 2}}, NoClock))
	_, clock, perr := ParseEdges(body, nil)
	if perr != nil || clock != NoClock {
		t.Fatalf("clockless Edges: clock %d, %v", clock, perr)
	}
}
