package serve

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseBody dispatches a frame body to its typed parser, mirroring what
// the server and client do with a frame they just read.
func parseBody(t FrameType, body []byte) error {
	switch t {
	case FrameHello:
		_, err := ParseHello(body)
		return err
	case FrameHelloAck:
		_, err := ParseHelloAck(body)
		return err
	case FrameOpen:
		_, err := ParseOpen(body)
		return err
	case FrameOpenAck:
		_, err := ParseOpenAck(body)
		return err
	case FrameEdges:
		_, _, err := ParseEdges(body, nil)
		return err
	case FrameEdgesAck:
		_, err := ParseEdgesAck(body)
		return err
	case FrameStats:
		_, err := ParseStats(body)
		return err
	case FrameError:
		_, err := ParseError(body)
		return err
	case FramePublish:
		_, err := ParsePublish(body)
		return err
	case FramePublishAck:
		_, err := ParsePublishAck(body)
		return err
	}
	return errf(CodeProto, "unknown frame type %d", t)
}

// TestWireCorpus replays the checked-in malformed-wire-frame corpus
// (scripts/gencorpus regenerates it): every *-valid.bin frame must read
// and parse cleanly, and every mutant must either be caught — by the
// frame checksum or a parser — with a structured *Error, or decode as a
// harmlessly different valid frame. Nothing in the corpus may panic, and
// truncated frames must surface as clean io errors from ReadFrame.
func TestWireCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "wire_corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus missing (run `go run ./scripts/gencorpus`): %v", err)
	}
	valid, mutants, rejected := 0, 0, 0
	for _, e := range entries {
		name := e.Name()
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		payload, rerr := ReadFrame(bytes.NewReader(data), nil)
		if strings.HasSuffix(name, "-valid.bin") {
			valid++
			if rerr != nil {
				t.Errorf("%s: ReadFrame: %v", name, rerr)
				continue
			}
			ft, body, perr := ParseFrame(payload)
			if perr != nil {
				t.Errorf("%s: ParseFrame: %v", name, perr)
				continue
			}
			if err := parseBody(ft, body); err != nil {
				t.Errorf("%s: parse: %v", name, err)
			}
			continue
		}
		mutants++
		if rerr == nil {
			ft, body, perr := ParseFrame(payload)
			if perr == nil {
				perr = parseBody(ft, body)
			}
			rerr = perr
		}
		if rerr == nil {
			continue // mutated into a different valid frame; harmless
		}
		rejected++
		var serr *Error
		if errors.As(rerr, &serr) {
			continue
		}
		if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
			continue // truncation below a full header/payload
		}
		t.Errorf("%s: unstructured rejection %T: %v", name, rerr, rerr)
	}
	if valid == 0 || mutants == 0 {
		t.Fatalf("corpus incomplete: %d valid, %d mutants", valid, mutants)
	}
	// The checksum plus the parsers must catch a healthy majority of the
	// seeded mutations; if this drops the corpus has gone stale.
	if rejected*2 < mutants {
		t.Fatalf("only %d/%d mutants rejected; corpus or checksum regressed", rejected, mutants)
	}
}
