// Package serve is the fault-tolerant multi-tenant TEA serving layer: a
// long-running server hosting a fleet of compiled automata as shared
// immutable images (generation-swapped on publish) and serving concurrent
// replay sessions over a length-prefixed binary wire protocol.
//
// Robustness is the design center, not an afterthought:
//
//   - every session runs under a context deadline and per-tenant step/byte
//     quotas; exhaustion terminates that session with a structured error,
//     never the process;
//   - ingress is bounded: a tenant at its concurrent-session limit is
//     rejected with an explicit retry-after, not queued unboundedly;
//   - a panic anywhere inside a connection handler is converted to a
//     structured error frame and accounted in metrics — one poisoned
//     session cannot take the server down;
//   - desyncs degrade per-session through the Stats.Desyncs/Resyncs
//     machinery, and repeated session failures against one image trip a
//     per-image circuit breaker that quarantines the image until it passes
//     a fresh static re-verification (internal/verify);
//   - interrupted sessions are resumable: the server keeps a bounded
//     per-tenant pool of parked sessions keyed by session ID, and a client
//     reconnecting with the ID is told the accepted-edge watermark so it
//     can continue idempotently.
//
// The wire protocol and its failure taxonomy are specified in wire.go and
// errors.go; DESIGN.md §13 states the service failure-semantics contract
// the chaos suite (chaos_test.go + internal/faultinject/wire.go) enforces:
// under any injected wire fault, every session ends in a structured error
// or a correct result — never a crash, hang, or cross-tenant leak.
package serve

import (
	"fmt"
	"time"
)

// Code classifies a service failure. Codes are part of the wire format
// (carried in error frames) and must not be renumbered; append new codes
// at the end.
type Code uint32

const (
	// CodeOK is never sent; the zero value marks "no error" internally.
	CodeOK Code = iota
	// CodeProto: the peer violated the wire protocol (bad magic, oversized
	// frame, truncated varint, unknown frame type, frame out of sequence).
	// The connection is closed after the error frame; sessions stay parked.
	CodeProto
	// CodeUnknownImage: OpenSession named an image the server does not host.
	CodeUnknownImage
	// CodeUnknownSession: a resume token named no parked session (expired,
	// evicted, or never existed). The client should open a fresh session.
	CodeUnknownSession
	// CodeBackpressure: the tenant is at its concurrent-session limit; the
	// frame carries a retry-after hint. Bounded rejection, not queueing.
	CodeBackpressure
	// CodeQuotaSteps: the session exceeded its per-session edge quota.
	CodeQuotaSteps
	// CodeQuotaBytes: the session exceeded its per-session wire-byte quota.
	CodeQuotaBytes
	// CodeDeadline: the session outlived its deadline.
	CodeDeadline
	// CodeQuarantined: the image's circuit breaker is open (and the image
	// did not pass re-verification); retry-after carries the cooldown.
	CodeQuarantined
	// CodeBadImage: a published image failed decode or static verification
	// and was refused admission.
	CodeBadImage
	// CodeShutdown: the server is draining; retry against another replica.
	CodeShutdown
	// CodeInternal: a recovered panic or other server-side invariant
	// violation. The session is failed, the process survives.
	CodeInternal
	// CodeCorrupt: frame integrity failed (checksum mismatch or an
	// implausible length prefix) — the link, not the peer's logic, is
	// suspect. Temporary: the remedy is a fresh connection and a resume.
	CodeCorrupt
)

// String returns the stable name of the code.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeProto:
		return "proto"
	case CodeUnknownImage:
		return "unknown-image"
	case CodeUnknownSession:
		return "unknown-session"
	case CodeBackpressure:
		return "backpressure"
	case CodeQuotaSteps:
		return "quota-steps"
	case CodeQuotaBytes:
		return "quota-bytes"
	case CodeDeadline:
		return "deadline"
	case CodeQuarantined:
		return "quarantined"
	case CodeBadImage:
		return "bad-image"
	case CodeShutdown:
		return "shutdown"
	case CodeInternal:
		return "internal"
	case CodeCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("code(%d)", uint32(c))
}

// Error is the service's structured failure: a stable code, an optional
// retry-after hint for temporary conditions, and a human-readable message.
// Every failure the server reports — protocol violations, quota
// exhaustion, quarantined images, recovered panics — crosses the wire as
// one of these, so clients can branch on Code instead of parsing strings.
type Error struct {
	Code       Code
	RetryAfter time.Duration // 0 = not retryable at this address
	Msg        string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Msg == "" {
		return "serve: " + e.Code.String()
	}
	return "serve: " + e.Code.String() + ": " + e.Msg
}

// Temporary reports whether the failure is worth retrying (with backoff):
// backpressure, shutdown of one replica, quarantine cooldowns, and wire
// corruption (a fresh connection plus session resume recovers).
func (e *Error) Temporary() bool {
	switch e.Code {
	case CodeBackpressure, CodeShutdown, CodeQuarantined, CodeCorrupt:
		return true
	}
	return false
}

// errf builds a *Error with a formatted message.
func errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// errRetry builds a temporary *Error carrying a retry-after hint.
func errRetry(code Code, retryAfter time.Duration, format string, args ...any) *Error {
	return &Error{Code: code, RetryAfter: retryAfter, Msg: fmt.Sprintf(format, args...)}
}
