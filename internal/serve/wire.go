package serve

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"time"

	"github.com/lsc-tea/tea/internal/core"
)

// Wire protocol: length-prefixed, checksummed binary frames.
//
//	frame   := length(uint32 big-endian) crc(uint32 big-endian) payload
//	payload := type(1 byte) body
//	length  := 4 + len(payload)   // counts the crc, so frame boundaries
//	                              // derive from the length prefix alone
//	crc     := IEEE CRC-32 of payload
//
// The checksum is what turns in-flight corruption from a silent
// wrong-answer into a structured CodeCorrupt error: without it, a bit flip
// inside an Edges body could decode as a different — but wire-valid —
// batch and replay the wrong stream. The chaos suite's WireCorrupt class
// asserts exactly this detection.
//
// The body encodings reuse the internal/obs event-log idiom: uvarints for
// counts and magnitudes, zigzag varints for deltas (edge labels are
// near-monotonic addresses, so label deltas are small). Every parse
// validates declared counts against the bytes actually present, so a
// hostile or fault-injected frame yields a structured *Error (CodeProto),
// never an allocation bomb, a panic, or an unbounded loop.
//
// Conversation: the client sends Hello once, then any sequence of
// Open → (Edges → EdgesAck)* → Close → Stats, or Publish → PublishAck.
// Any server-detected failure crosses as an Error frame; protocol
// violations additionally close the connection (parked sessions survive
// and can be resumed on a new connection).

// ProtoVersion is the wire protocol version carried in Hello.
const ProtoVersion = 1

// MaxFrame bounds one frame's payload; a larger declared length is a
// protocol violation (a corrupt or hostile length prefix must not make the
// server allocate unboundedly).
const MaxFrame = 1 << 20

// MaxBatchEdges bounds the edges in one Edges frame.
const MaxBatchEdges = 1 << 16

// maxString bounds tenant/image/session identifier lengths on the wire.
const maxString = 256

// FrameType identifies one frame's payload. The numeric values are part of
// the wire format; append new types at the end.
type FrameType byte

const (
	// FrameHello opens a connection: protocol version + tenant identity.
	FrameHello FrameType = 1 + iota
	// FrameHelloAck acknowledges Hello with the server's version.
	FrameHelloAck
	// FrameOpen opens (or resumes) a replay session against a named image.
	FrameOpen
	// FrameOpenAck returns the session ID, image generation and the
	// accepted-edge watermark (nonzero when resuming).
	FrameOpenAck
	// FrameEdges streams a batch of dynamic block-stream edges.
	FrameEdges
	// FrameEdgesAck acknowledges a batch with the cumulative watermark.
	FrameEdgesAck
	// FrameClose ends the session and requests final statistics.
	FrameClose
	// FrameStats carries the final replay statistics and final state.
	FrameStats
	// FrameError carries a structured *Error.
	FrameError
	// FramePublish uploads a serialized TEA image for a hosted program.
	FramePublish
	// FramePublishAck acknowledges a publish with the new generation.
	FramePublishAck
)

// String returns the stable name of the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "Hello"
	case FrameHelloAck:
		return "HelloAck"
	case FrameOpen:
		return "Open"
	case FrameOpenAck:
		return "OpenAck"
	case FrameEdges:
		return "Edges"
	case FrameEdgesAck:
		return "EdgesAck"
	case FrameClose:
		return "Close"
	case FrameStats:
		return "Stats"
	case FrameError:
		return "Error"
	case FramePublish:
		return "Publish"
	case FramePublishAck:
		return "PublishAck"
	}
	return "FrameType(?)"
}

// WriteFrame writes one length-prefixed, checksummed frame payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return errf(CodeProto, "frame payload %d exceeds MaxFrame", len(payload))
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(4+len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload, reusing buf when it is large enough.
// A declared length beyond MaxFrame, a length too short to hold the
// checksum, or a checksum mismatch is a protocol violation (*Error,
// CodeCorrupt); a short read surfaces as the transport's error (typically
// io.EOF or io.ErrUnexpectedEOF on truncation).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 4 {
		return nil, errf(CodeCorrupt, "frame length %d below checksum size", n)
	}
	n -= 4
	if n > MaxFrame {
		return nil, errf(CodeCorrupt, "frame length %d exceeds MaxFrame", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if sum := crc32.ChecksumIEEE(buf); sum != binary.BigEndian.Uint32(hdr[4:]) {
		return nil, errf(CodeCorrupt, "frame checksum mismatch")
	}
	return buf, nil
}

// ParseFrame splits a payload into its type and body.
func ParseFrame(payload []byte) (FrameType, []byte, error) {
	if len(payload) == 0 {
		return 0, nil, errf(CodeProto, "empty frame")
	}
	return FrameType(payload[0]), payload[1:], nil
}

// wireReader is a cursor over one frame body with structured failures.
type wireReader struct {
	data []byte
	off  int
}

func (r *wireReader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errf(CodeProto, "truncated %s at offset %d", field, r.off)
	}
	r.off += n
	return v, nil
}

func (r *wireReader) varint(field string) (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, errf(CodeProto, "truncated %s at offset %d", field, r.off)
	}
	r.off += n
	return v, nil
}

func (r *wireReader) str(field string) (string, error) {
	n, err := r.uvarint(field + " length")
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", errf(CodeProto, "%s length %d exceeds %d", field, n, maxString)
	}
	if uint64(len(r.data)-r.off) < n {
		return "", errf(CodeProto, "truncated %s at offset %d", field, r.off)
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *wireReader) bytes(field string, max int) ([]byte, error) {
	n, err := r.uvarint(field + " length")
	if err != nil {
		return nil, err
	}
	if n > uint64(max) || uint64(len(r.data)-r.off) < n {
		return nil, errf(CodeProto, "%s length %d exceeds available bytes", field, n)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *wireReader) done(what string) error {
	if r.off != len(r.data) {
		return errf(CodeProto, "%d trailing bytes after %s", len(r.data)-r.off, what)
	}
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Hello is the connection-opening frame body.
type Hello struct {
	Version uint64
	Tenant  string
}

// Append serializes the message after a FrameHello type byte.
func (m *Hello) Append(dst []byte) []byte {
	dst = append(dst, byte(FrameHello))
	dst = binary.AppendUvarint(dst, m.Version)
	return appendString(dst, m.Tenant)
}

// ParseHello parses a FrameHello body.
func ParseHello(body []byte) (Hello, error) {
	r := wireReader{data: body}
	var m Hello
	var err error
	if m.Version, err = r.uvarint("version"); err != nil {
		return m, err
	}
	if m.Tenant, err = r.str("tenant"); err != nil {
		return m, err
	}
	if m.Tenant == "" {
		return m, errf(CodeProto, "empty tenant")
	}
	return m, r.done("Hello")
}

// HelloAck acknowledges Hello.
type HelloAck struct {
	Version uint64
}

// Append serializes the message after a FrameHelloAck type byte.
func (m *HelloAck) Append(dst []byte) []byte {
	dst = append(dst, byte(FrameHelloAck))
	return binary.AppendUvarint(dst, m.Version)
}

// ParseHelloAck parses a FrameHelloAck body.
func ParseHelloAck(body []byte) (HelloAck, error) {
	r := wireReader{data: body}
	var m HelloAck
	var err error
	if m.Version, err = r.uvarint("version"); err != nil {
		return m, err
	}
	return m, r.done("HelloAck")
}

// Open opens a new session (Resume == "") or resumes a parked one. Src is
// the client's trace-context source id: the stamp its events carry in
// spliced event streams (0 asks the server to assign one). The field is
// optional-trailing on the wire — frames from pre-trace-context clients
// parse with Src 0, and the regression corpus of old frames stays valid.
type Open struct {
	Image  string
	Resume string
	Src    uint32
}

// Append serializes the message after a FrameOpen type byte.
func (m *Open) Append(dst []byte) []byte {
	dst = append(dst, byte(FrameOpen))
	dst = appendString(dst, m.Image)
	dst = appendString(dst, m.Resume)
	return binary.AppendUvarint(dst, uint64(m.Src))
}

// ParseOpen parses a FrameOpen body.
func ParseOpen(body []byte) (Open, error) {
	r := wireReader{data: body}
	var m Open
	var err error
	if m.Image, err = r.str("image"); err != nil {
		return m, err
	}
	if m.Resume, err = r.str("resume token"); err != nil {
		return m, err
	}
	if r.off < len(r.data) {
		src, err := r.uvarint("source id")
		if err != nil {
			return m, err
		}
		if src > 1<<32-1 {
			return m, errf(CodeProto, "source id %d out of range", src)
		}
		m.Src = uint32(src)
	}
	return m, r.done("Open")
}

// OpenAck acknowledges Open: the session identity, the generation of the
// image the session is pinned to, and the accepted-edge watermark (nonzero
// only when resuming). Src echoes the session's trace-context source id
// (the client's requested id, or a server-assigned one when the client
// sent 0); optional-trailing like Open.Src.
type OpenAck struct {
	Session   string
	Gen       uint64
	Watermark uint64
	Src       uint32
}

// Append serializes the message after a FrameOpenAck type byte.
func (m *OpenAck) Append(dst []byte) []byte {
	dst = append(dst, byte(FrameOpenAck))
	dst = appendString(dst, m.Session)
	dst = binary.AppendUvarint(dst, m.Gen)
	dst = binary.AppendUvarint(dst, m.Watermark)
	return binary.AppendUvarint(dst, uint64(m.Src))
}

// ParseOpenAck parses a FrameOpenAck body.
func ParseOpenAck(body []byte) (OpenAck, error) {
	r := wireReader{data: body}
	var m OpenAck
	var err error
	if m.Session, err = r.str("session"); err != nil {
		return m, err
	}
	if m.Gen, err = r.uvarint("generation"); err != nil {
		return m, err
	}
	if m.Watermark, err = r.uvarint("watermark"); err != nil {
		return m, err
	}
	if r.off < len(r.data) {
		src, err := r.uvarint("source id")
		if err != nil {
			return m, err
		}
		if src > 1<<32-1 {
			return m, errf(CodeProto, "source id %d out of range", src)
		}
		m.Src = uint32(src)
	}
	return m, r.done("OpenAck")
}

// NoClock is the ParseEdges clock result for frames that carry no
// trace-context clock (pre-trace-context senders).
const NoClock = int64(-1)

// AppendEdges serializes an Edges frame: a uvarint count, then per edge a
// zigzag-varint label delta against the previous label and a uvarint
// instruction count (the same delta idiom as the obs event log), then —
// when clock is not NoClock — the sender's logical stream clock: the edge
// watermark this batch starts at, which the server checks against the
// session's accepted watermark so a confused retry loop desyncing its own
// stream surfaces as a structured CodeProto error instead of silently
// replaying edges twice.
func AppendEdges(dst []byte, edges []core.Edge, clock int64) []byte {
	dst = append(dst, byte(FrameEdges))
	dst = binary.AppendUvarint(dst, uint64(len(edges)))
	prev := uint64(0)
	for i := range edges {
		dst = binary.AppendVarint(dst, int64(edges[i].Label-prev))
		prev = edges[i].Label
		dst = binary.AppendUvarint(dst, edges[i].Instrs)
	}
	if clock != NoClock {
		dst = binary.AppendUvarint(dst, uint64(clock))
	}
	return dst
}

// ParseEdges parses a FrameEdges body into dst (reused when large enough).
// The declared count is validated against both MaxBatchEdges and the bytes
// present (an edge occupies at least two bytes), so a forged count cannot
// drive allocation. The returned clock is the sender's stream clock, or
// NoClock for frames without one (the field is optional-trailing, so old
// corpus frames still parse).
func ParseEdges(body []byte, dst []core.Edge) ([]core.Edge, int64, error) {
	r := wireReader{data: body}
	count, err := r.uvarint("edge count")
	if err != nil {
		return nil, NoClock, err
	}
	if count > MaxBatchEdges {
		return nil, NoClock, errf(CodeProto, "edge count %d exceeds MaxBatchEdges", count)
	}
	if count > uint64(len(body))/2+1 {
		return nil, NoClock, errf(CodeProto, "edge count %d exceeds frame size", count)
	}
	if uint64(cap(dst)) < count {
		dst = make([]core.Edge, count)
	}
	dst = dst[:count]
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := r.varint("label delta")
		if err != nil {
			return nil, NoClock, err
		}
		prev += uint64(delta)
		instrs, err := r.uvarint("instrs")
		if err != nil {
			return nil, NoClock, err
		}
		dst[i] = core.Edge{Label: prev, Instrs: instrs}
	}
	clock := NoClock
	if r.off < len(r.data) {
		c, err := r.uvarint("stream clock")
		if err != nil {
			return nil, NoClock, err
		}
		if c > 1<<62 {
			return nil, NoClock, errf(CodeProto, "stream clock %d out of range", c)
		}
		clock = int64(c)
	}
	return dst, clock, r.done("Edges")
}

// EdgesAck acknowledges a batch with the session's cumulative watermark.
type EdgesAck struct {
	Watermark uint64
}

// Append serializes the message after a FrameEdgesAck type byte.
func (m *EdgesAck) Append(dst []byte) []byte {
	dst = append(dst, byte(FrameEdgesAck))
	return binary.AppendUvarint(dst, m.Watermark)
}

// ParseEdgesAck parses a FrameEdgesAck body.
func ParseEdgesAck(body []byte) (EdgesAck, error) {
	r := wireReader{data: body}
	var m EdgesAck
	var err error
	if m.Watermark, err = r.uvarint("watermark"); err != nil {
		return m, err
	}
	return m, r.done("EdgesAck")
}

// StatsMsg carries a session's final result: the full replay statistics,
// the final automaton state, and the total edges accepted.
type StatsMsg struct {
	Stats     core.Stats
	Final     core.StateID
	Watermark uint64
}

// statsFields flattens Stats into its wire order. The order is part of the
// wire format; append new fields at the end.
func statsFields(s *core.Stats) [14]uint64 {
	return [14]uint64{
		s.Blocks, s.Instrs, s.TraceBlocks, s.TraceInstrs,
		s.InTraceHits, s.LocalHits, s.LocalMisses,
		s.GlobalLookups, s.GlobalHits,
		s.TraceEnters, s.TraceLinks, s.TraceExits,
		s.Desyncs, s.Resyncs,
	}
}

// Append serializes the message after a FrameStats type byte.
func (m *StatsMsg) Append(dst []byte) []byte {
	dst = append(dst, byte(FrameStats))
	for _, v := range statsFields(&m.Stats) {
		dst = binary.AppendUvarint(dst, v)
	}
	dst = binary.AppendVarint(dst, int64(m.Final))
	return binary.AppendUvarint(dst, m.Watermark)
}

// ParseStats parses a FrameStats body.
func ParseStats(body []byte) (StatsMsg, error) {
	r := wireReader{data: body}
	var m StatsMsg
	var f [14]uint64
	for i := range f {
		v, err := r.uvarint("stats field")
		if err != nil {
			return m, err
		}
		f[i] = v
	}
	m.Stats = core.Stats{
		Blocks: f[0], Instrs: f[1], TraceBlocks: f[2], TraceInstrs: f[3],
		InTraceHits: f[4], LocalHits: f[5], LocalMisses: f[6],
		GlobalLookups: f[7], GlobalHits: f[8],
		TraceEnters: f[9], TraceLinks: f[10], TraceExits: f[11],
		Desyncs: f[12], Resyncs: f[13],
	}
	final, err := r.varint("final state")
	if err != nil {
		return m, err
	}
	if final < -1 || final >= 1<<31 {
		return m, errf(CodeProto, "final state %d out of range", final)
	}
	m.Final = core.StateID(final)
	if m.Watermark, err = r.uvarint("watermark"); err != nil {
		return m, err
	}
	return m, r.done("Stats")
}

// AppendError serializes an Error frame.
func AppendError(dst []byte, e *Error) []byte {
	dst = append(dst, byte(FrameError))
	dst = binary.AppendUvarint(dst, uint64(e.Code))
	dst = binary.AppendUvarint(dst, uint64(e.RetryAfter/time.Millisecond))
	msg := e.Msg
	if len(msg) > maxString {
		msg = msg[:maxString]
	}
	return appendString(dst, msg)
}

// ParseError parses a FrameError body back into a *Error.
func ParseError(body []byte) (*Error, error) {
	r := wireReader{data: body}
	code, err := r.uvarint("error code")
	if err != nil {
		return nil, err
	}
	retryMs, err := r.uvarint("retry-after")
	if err != nil {
		return nil, err
	}
	msg, err := r.str("error message")
	if err != nil {
		return nil, err
	}
	if err := r.done("Error"); err != nil {
		return nil, err
	}
	return &Error{
		Code:       Code(code),
		RetryAfter: time.Duration(retryMs) * time.Millisecond,
		Msg:        msg,
	}, nil
}

// Publish uploads a serialized TEA image (core.Encode bytes) for a hosted
// program; admission decodes it against the program, statically verifies
// it, compiles it, and swaps it in as the image's next generation.
type Publish struct {
	Image string
	Data  []byte
}

// Append serializes the message after a FramePublish type byte.
func (m *Publish) Append(dst []byte) []byte {
	dst = append(dst, byte(FramePublish))
	dst = appendString(dst, m.Image)
	dst = binary.AppendUvarint(dst, uint64(len(m.Data)))
	return append(dst, m.Data...)
}

// ParsePublish parses a FramePublish body. The image bytes alias the frame
// buffer; the store copies what it keeps.
func ParsePublish(body []byte) (Publish, error) {
	r := wireReader{data: body}
	var m Publish
	var err error
	if m.Image, err = r.str("image"); err != nil {
		return m, err
	}
	if m.Data, err = r.bytes("image data", MaxFrame); err != nil {
		return m, err
	}
	return m, r.done("Publish")
}

// PublishAck acknowledges a publish with the image's new generation.
type PublishAck struct {
	Gen uint64
}

// Append serializes the message after a FramePublishAck type byte.
func (m *PublishAck) Append(dst []byte) []byte {
	dst = append(dst, byte(FramePublishAck))
	return binary.AppendUvarint(dst, m.Gen)
}

// ParsePublishAck parses a FramePublishAck body.
func ParsePublishAck(body []byte) (PublishAck, error) {
	r := wireReader{data: body}
	var m PublishAck
	var err error
	if m.Gen, err = r.uvarint("generation"); err != nil {
		return m, err
	}
	return m, r.done("PublishAck")
}
