// Chaos suite for the serving layer. Runs in the external test package so
// it can drive the real client (internal/serve/client imports serve).
//
// The invariant under test, from DESIGN.md §13: under every injected
// wire-fault class — truncate, corrupt, reorder, stall, drop — every
// session terminates with a structured error or the exact
// sequential-replay result; the server never panics, never wedges a
// handler, and never leaks state across tenants. Run with -race.
package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/faultinject"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/obs"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/progs"
	"github.com/lsc-tea/tea/internal/serve"
	"github.com/lsc-tea/tea/internal/serve/client"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
)

// chaosImage is one hosted image plus its ground truth: the captured edge
// stream and the sequential-replay answer every served session must match.
type chaosImage struct {
	name  string
	prog  *isa.Program
	auto  *core.Automaton
	edges []core.Edge
	want  core.Stats
	final core.StateID
}

var (
	chaosOnce   sync.Once
	chaosImages []chaosImage
)

// chaosFixture records two distinct demo programs. Their streams and stats
// differ, which is what makes cross-tenant or cross-image leakage visible:
// a session served from the wrong image cannot produce its own answer.
func chaosFixture(t testing.TB) []chaosImage {
	t.Helper()
	chaosOnce.Do(func() {
		for _, d := range []struct {
			name string
			prog *isa.Program
		}{
			{"figure1", progs.Figure1(6, 40)},
			{"figure2", progs.Figure2(8, 30)},
		} {
			strat, ok := trace.NewStrategy("mret", d.prog, trace.Config{HotThreshold: 5})
			if !ok {
				panic("mret strategy missing")
			}
			set, _, err := trace.Record(cpu.New(d.prog), cfg.StarDBT, strat, 0)
			if err != nil {
				panic(err)
			}
			a := core.Build(set)
			tool := teatool.NewCaptureTool()
			if _, err := pin.New().Run(d.prog, tool, 0); err != nil {
				panic(err)
			}
			edges := tool.Stream()
			want, final := core.SequentialReplay(core.Compile(a, core.LookupConfig{}), edges)
			chaosImages = append(chaosImages, chaosImage{
				name: d.name, prog: d.prog, auto: a,
				edges: edges, want: want, final: final,
			})
		}
	})
	return chaosImages
}

// startChaosServer hosts the fixture images on a loopback TCP listener.
func startChaosServer(t testing.TB, cfgOverride func(*serve.Config)) (*serve.Server, string) {
	t.Helper()
	c := serve.Config{IdleTimeout: 500 * time.Millisecond}
	if cfgOverride != nil {
		cfgOverride(&c)
	}
	s := serve.NewServer(c)
	for _, img := range chaosFixture(t) {
		if err := s.Host(img.name, img.prog, img.auto); err != nil {
			t.Fatalf("Host %s: %v", img.name, err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = s.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, l.Addr().String()
}

// faultyFirstDialer returns a dial function whose first connection carries
// the fault and whose retries are clean — the recoverable-outage shape.
func faultyFirstDialer(addr string, seed int64, fault faultinject.WireFault, target int) func() (net.Conn, error) {
	inj := faultinject.New(seed)
	dials := 0
	return func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			return faultinject.NewFaultyConn(conn, inj, fault, target, time.Millisecond), nil
		}
		return conn, nil
	}
}

// checkOutcome enforces the chaos invariant on one session result.
func checkOutcome(t *testing.T, label string, img chaosImage, stats *core.Stats, final core.StateID, err error) {
	t.Helper()
	if err == nil {
		if *stats != img.want || final != img.final {
			t.Errorf("%s: completed with wrong answer:\n got %+v\nwant %+v", label, *stats, img.want)
		}
		return
	}
	var serr *serve.Error
	if errors.As(err, &serr) {
		return // structured termination is within contract
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return // the session's own context ended it
	}
	t.Errorf("%s: unstructured failure: %v", label, err)
}

// TestChaosMatrix sweeps every fault class against several frame indices:
// index 0 hits the Hello, 1 the Open, later indices hit Edges batches. In
// every cell the client must converge to the exact answer (via resume) or
// a structured error — and the server must survive with zero panics.
func TestChaosMatrix(t *testing.T) {
	images := chaosFixture(t)
	s, addr := startChaosServer(t, nil)
	img := images[0]

	for _, fault := range faultinject.WireFaults {
		for _, target := range []int{0, 1, 2, 4, 7} {
			label := fmt.Sprintf("%v@%d", fault, target)
			c, err := client.New(client.Config{
				Tenant:  "chaos",
				Dial:    faultyFirstDialer(addr, int64(1000+target), fault, target),
				Seed:    int64(target + 1),
				Timeout: time.Second,
			})
			if err != nil {
				t.Fatalf("%s: client: %v", label, err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			stats, final, rerr := c.Replay(ctx, img.name, img.edges, 32)
			cancel()
			c.Close()
			checkOutcome(t, label, img, stats, final, rerr)
		}
	}
	if got := s.PanicsRecovered(); got != 0 {
		t.Fatalf("server recovered %d panics during the matrix, want 0", got)
	}
	// The server is still healthy: a clean session gets the exact answer.
	c, err := client.New(client.Config{
		Tenant:  "chaos",
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Seed:    99,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	stats, final, rerr := c.Replay(ctx, img.name, img.edges, 64)
	if rerr != nil {
		t.Fatalf("post-chaos clean session: %v", rerr)
	}
	if *stats != img.want || final != img.final {
		t.Fatalf("post-chaos stats diverged")
	}
}

// TestChaosPersistentFaultTerminates pins the no-hang half of the
// invariant: when EVERY connection is faulty the client must still
// terminate within its retry budget — with an error, not a wedge.
func TestChaosPersistentFaultTerminates(t *testing.T) {
	images := chaosFixture(t)
	_, addr := startChaosServer(t, nil)
	img := images[0]
	for _, fault := range faultinject.WireFaults {
		if fault == faultinject.WireStall {
			continue // a 1ms stall on every frame still converges; nothing to pin
		}
		inj := faultinject.New(7)
		dial := func() (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			// Every connection faults its Edges frames (index 2 onward).
			return faultinject.NewFaultyConn(conn, inj, fault, 2, time.Millisecond), nil
		}
		c, err := client.New(client.Config{
			Tenant: "storm", Dial: dial, Seed: 3, Retries: 3, Timeout: time.Second,
			BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, _, rerr := c.Replay(ctx, img.name, img.edges, 16)
		cancel()
		c.Close()
		if elapsed := time.Since(start); elapsed > 25*time.Second {
			t.Fatalf("%v: client wedged for %v", fault, elapsed)
		}
		// Drop and reorder can still converge through resume; the others
		// must surface an error.
		if rerr != nil {
			var serr *serve.Error
			if !errors.As(rerr, &serr) && !errors.Is(rerr, faultinject.ErrTruncated) &&
				!errors.Is(rerr, context.DeadlineExceeded) {
				// Transport-level termination is acceptable; a wedge is not.
				t.Logf("%v: terminated with transport error: %v", fault, rerr)
			}
		}
	}
}

// TestChaosConcurrentTenants is the cross-tenant isolation storm: many
// tenants replay different images through faulty first connections
// concurrently (run under -race). Every completed session must return its
// OWN image's answer — any cross-session or cross-tenant state leak shows
// up as a wrong-stats failure or a race report.
func TestChaosConcurrentTenants(t *testing.T) {
	images := chaosFixture(t)
	s, addr := startChaosServer(t, func(c *serve.Config) {
		c.Quota = serve.Quota{MaxConcurrent: 64, MaxParked: 128}
	})
	const (
		tenants  = 4
		sessions = 3
	)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		for si := 0; si < sessions; si++ {
			wg.Add(1)
			go func(ti, si int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(ti*100 + si)))
				img := images[(ti+si)%len(images)]
				fault := faultinject.WireFaults[rng.Intn(len(faultinject.WireFaults))]
				target := rng.Intn(6)
				label := fmt.Sprintf("tenant%d/s%d/%v@%d", ti, si, fault, target)
				c, err := client.New(client.Config{
					Tenant:  fmt.Sprintf("tenant%d", ti),
					Dial:    faultyFirstDialer(addr, int64(ti*1000+si), fault, target),
					Seed:    int64(ti + si + 1),
					Timeout: time.Second,
				})
				if err != nil {
					t.Errorf("%s: %v", label, err)
					return
				}
				defer c.Close()
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(4) == 0 {
					// Random mid-flight cancels: cancellation must surface as
					// ctx.Err, never as a hang or a server casualty.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(20))*time.Millisecond)
				} else {
					ctx, cancel = context.WithTimeout(ctx, 30*time.Second)
				}
				defer cancel()
				stats, final, rerr := c.Replay(ctx, img.name, img.edges, 16+rng.Intn(64))
				checkOutcome(t, label, img, stats, final, rerr)
			}(ti, si)
		}
	}
	wg.Wait()
	if got := s.PanicsRecovered(); got != 0 {
		t.Fatalf("server recovered %d panics during the storm, want 0", got)
	}
}

// TestChaosFlightRecorderSuffix: for EVERY wire-fault class, a session that
// the server kills with a structured error — here a tiny edge quota, hit
// after the client claws its way through the faulty first connection — must
// leave a flight artifact that (a) survives an encode/decode round trip,
// and (b) whose event log ends with the EvSessionFail carrying the exact
// code that terminated the session, preceded by its quota rejection. Run
// with -race: trips happen on handler goroutines while this test scrapes.
func TestChaosFlightRecorderSuffix(t *testing.T) {
	images := chaosFixture(t)
	img := images[0]
	for fi, fault := range faultinject.WireFaults {
		t.Run(fault.String(), func(t *testing.T) {
			s, addr := startChaosServer(t, func(c *serve.Config) {
				c.Quota = serve.Quota{MaxSessionEdges: 24}
			})
			c, err := client.New(client.Config{
				Tenant:  "doomed",
				Dial:    faultyFirstDialer(addr, int64(500+fi), fault, 2),
				Seed:    int64(fi + 1),
				Timeout: time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			_, _, rerr := c.Replay(ctx, img.name, img.edges, 32)
			var serr *serve.Error
			if !errors.As(rerr, &serr) || serr.Code != serve.CodeQuotaSteps {
				t.Fatalf("expected quota-steps kill, got %v", rerr)
			}

			rec, ok := s.Obs().Flight.Last()
			if !ok {
				t.Fatal("no flight artifact after the kill")
			}
			if rec.Reason != "session-fail" || rec.Err == "" || rec.Src == 0 {
				t.Fatalf("artifact metadata incoherent: reason=%q src=%d err=%q",
					rec.Reason, rec.Src, rec.Err)
			}
			dec, derr := obs.DecodeFlight(obs.EncodeFlight(rec))
			if derr != nil {
				t.Fatalf("artifact does not decode: %v", derr)
			}
			n := len(dec.Events)
			if n == 0 {
				t.Fatal("artifact event log empty")
			}
			last := dec.Events[n-1]
			if last.Kind != obs.EvSessionFail || last.Aux != uint64(serve.CodeQuotaSteps) ||
				last.Src != rec.Src {
				t.Fatalf("artifact suffix does not end with the structured kill: %+v", last)
			}
			if n < 2 || dec.Events[n-2].Kind != obs.EvQuotaReject ||
				dec.Events[n-2].Src != rec.Src {
				t.Fatalf("quota-reject event missing before the kill: %+v", dec.Events)
			}
			if len(dec.Metrics) == 0 {
				t.Fatal("artifact carries no registry snapshot")
			}
		})
	}
}
