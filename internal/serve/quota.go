package serve

import "time"

// Quota bounds what one tenant — and each of its sessions — may consume.
// Every limit fails loudly with a structured error instead of degrading
// the process: admission beyond MaxConcurrent is rejected with an explicit
// retry-after (bounded ingress, no unbounded buffering), and a session
// crossing its step/byte quota or deadline is terminated with the matching
// code while every other session keeps running.
type Quota struct {
	// MaxConcurrent caps a tenant's attached (actively served) sessions.
	// An Open beyond the cap is rejected with CodeBackpressure and a
	// RetryAfter hint. 0 selects DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxParked caps a tenant's parked (resumable) sessions; beyond it the
	// oldest parked session is evicted (its resume token dies, a later
	// resume gets CodeUnknownSession). 0 selects DefaultMaxParked.
	MaxParked int
	// MaxSessionEdges caps stream edges per session (the step quota,
	// extending the PR 1 maxSteps guards to the service). 0 = unbounded.
	MaxSessionEdges uint64
	// MaxSessionBytes caps wire payload bytes per session. 0 = unbounded.
	MaxSessionBytes uint64
	// MaxSessionDesyncs classifies a completed session as failed — feeding
	// the image's circuit breaker — when its Desyncs exceed it. The session
	// itself still completes with correct degraded stats (desync is
	// graceful per-session degradation, not an error). 0 = never classify.
	MaxSessionDesyncs uint64
	// SessionTimeout is the per-session context deadline. 0 selects
	// DefaultSessionTimeout.
	SessionTimeout time.Duration
	// RetryAfter is the hint attached to backpressure rejections. 0
	// selects DefaultRetryAfter.
	RetryAfter time.Duration
}

// Quota defaults.
const (
	DefaultMaxConcurrent  = 8
	DefaultMaxParked      = 16
	DefaultSessionTimeout = time.Minute
	DefaultRetryAfter     = 50 * time.Millisecond
)

// withDefaults fills zero fields.
func (q Quota) withDefaults() Quota {
	if q.MaxConcurrent == 0 {
		q.MaxConcurrent = DefaultMaxConcurrent
	}
	if q.MaxParked == 0 {
		q.MaxParked = DefaultMaxParked
	}
	if q.SessionTimeout == 0 {
		q.SessionTimeout = DefaultSessionTimeout
	}
	if q.RetryAfter == 0 {
		q.RetryAfter = DefaultRetryAfter
	}
	return q
}

// tenant is the server-side record of one tenant: attached-session count
// for backpressure, the parked-session order for bounded resume state, and
// the tenant's pre-resolved metric cells. Guarded by Server.mu.
type tenant struct {
	name     string
	attached int
	conns    int        // live connections holding this tenant record
	parked   []*session // attach order; evicted oldest-first beyond MaxParked

	m tenantMetrics
}

// unpark removes s from the parked list (it is being resumed or evicted).
func (t *tenant) unpark(s *session) {
	for i, p := range t.parked {
		if p == s {
			t.parked = append(t.parked[:i], t.parked[i+1:]...)
			return
		}
	}
}
