package serve

import (
	"sync"
	"time"
)

// breaker is the per-image circuit breaker. It exists because a corrupted
// or stale image manifests as a *pattern* of failing sessions — desync
// storms, recovered panics — long before any single session proves the
// image bad. Rather than letting every tenant keep burning quota against
// it, the breaker counts consecutive session failures and, at the
// threshold, quarantines the image: new sessions are rejected with
// CodeQuarantined until the cooldown elapses AND the image passes a fresh
// static re-verification (the store runs internal/verify over the current
// generation). A clean re-verify closes the breaker; findings keep it open
// until a new generation is published, which always resets the breaker.
//
// States:
//
//	closed      normal admission; consecutive failures counted
//	open        quarantined; admission rejected until cooldown elapses
//	(readmit)   cooldown elapsed: next admission attempt triggers the
//	            verify gate; pass → closed, fail → open with a fresh
//	            cooldown window
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // quarantine window before a re-verify attempt
	now       func() time.Time

	open     bool
	fails    int
	openedAt time.Time
}

// newBreaker builds a breaker; threshold <= 0 disables tripping entirely.
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// admit reports whether a new session may use the image. When the breaker
// is open and the cooldown has elapsed it returns (false, true): the
// caller must run the verify gate and settle the outcome via verdict.
func (b *breaker) admit() (ok bool, verifyDue bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true, false
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		return false, true
	}
	return false, false
}

// remaining returns the time left in the current quarantine window (the
// retry-after hint for rejected opens).
func (b *breaker) remaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return 0
	}
	left := b.cooldown - b.now().Sub(b.openedAt)
	if left < 0 {
		left = 0
	}
	return left
}

// verdict settles a verify-gate attempt: a clean report closes the
// breaker; findings re-arm the cooldown so the (expensive) verification
// does not rerun on every rejected open.
func (b *breaker) verdict(clean bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if clean {
		b.open = false
		b.fails = 0
		return
	}
	b.openedAt = b.now()
}

// result records one finished session against the image. Failures are
// counted consecutively; a success resets the count. It returns true when
// this failure tripped the breaker open.
func (b *breaker) result(failed bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !failed {
		b.fails = 0
		return false
	}
	b.fails++
	if b.threshold > 0 && !b.open && b.fails >= b.threshold {
		b.open = true
		b.openedAt = b.now()
		return true
	}
	return false
}

// reset force-closes the breaker (a new generation was published: the old
// failure evidence no longer describes the hosted image).
func (b *breaker) reset() {
	b.mu.Lock()
	b.open = false
	b.fails = 0
	b.mu.Unlock()
}

// isOpen reports the current state (metrics/introspection only).
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
