package serve

import (
	"time"

	"github.com/lsc-tea/tea/internal/core"
)

// session is one tenant's replay session: a CompiledReplayer cursor pinned
// to one image generation, plus the accounting the quotas and the resume
// protocol need. A session is exclusively owned by the connection it is
// attached to; detached ("parked") sessions are resumable by the same
// tenant on a new connection, which is what makes client retry idempotent:
// the OpenAck watermark tells the resuming client how many edges the
// server already accepted, so re-sent batches skip the consumed prefix.
//
// Lifecycle:
//
//	open ──attach──▶ attached ──conn loss──▶ parked ──resume──▶ attached
//	                    │
//	                  close/fail ──▶ done (parked for idempotent stats
//	                                 re-fetch until evicted)
type session struct {
	id     string
	tenant string
	img    *Image // pinned generation; publish swaps never touch it
	src    uint32 // trace-context source id stamped on the session's events
	rep    *core.CompiledReplayer

	deadline time.Time // context deadline: crossing it fails the session
	edges    uint64    // accepted-edge watermark (the resume cursor)
	bytes    uint64    // wire payload bytes consumed

	attached bool
	done     bool
	failed   bool   // classification fed to the image's circuit breaker
	err      *Error // terminal error, nil for a successful close
	final    StatsMsg
}

// expired reports whether the session's deadline has passed.
func (s *session) expired(now time.Time) bool {
	return now.After(s.deadline)
}

// chargeEdges enforces the step quota before consuming n more edges.
func (s *session) chargeEdges(n uint64, q Quota) *Error {
	if q.MaxSessionEdges != 0 && s.edges+n > q.MaxSessionEdges {
		return errf(CodeQuotaSteps, "session %s: edge quota %d exhausted", s.id, q.MaxSessionEdges)
	}
	return nil
}

// chargeBytes enforces the byte quota for one frame payload.
func (s *session) chargeBytes(n uint64, q Quota) *Error {
	s.bytes += n
	if q.MaxSessionBytes != 0 && s.bytes > q.MaxSessionBytes {
		return errf(CodeQuotaBytes, "session %s: byte quota %d exhausted", s.id, q.MaxSessionBytes)
	}
	return nil
}

// finish settles the session into its terminal state. A nil serr is a
// successful close: the final stats are frozen and the session is
// classified against the desync threshold (a desync-dominated session
// completed correctly for the tenant but is failure evidence against the
// image). A non-nil serr is a hard failure: deadline, quota, protocol or
// internal — only internal failures are image evidence, since quota and
// deadline exhaustion indict the tenant, not the automaton.
func (s *session) finish(serr *Error, q Quota) {
	if s.done {
		return
	}
	s.done = true
	s.err = serr
	if serr == nil {
		st := s.rep.Stats()
		s.final = StatsMsg{Stats: *st, Final: s.rep.Cur(), Watermark: s.edges}
		s.failed = q.MaxSessionDesyncs != 0 && st.Desyncs > q.MaxSessionDesyncs
		return
	}
	s.failed = serr.Code == CodeInternal
}
