package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/verify"
)

// Image is one immutable generation of a hosted automaton. Sessions pin
// the *Image they opened against, so a generation swap never mutates
// anything a live session can observe — the PR 4 invalidation discipline
// lifted to the service: swap pointers, never edit in place.
type Image struct {
	Name      string
	Gen       uint64
	Automaton *core.Automaton
	Compiled  *core.Compiled
}

// imageEntry is the mutable slot behind one image name: the current
// generation (atomically swapped on publish), the program images decode
// against, and the entry's circuit breaker.
type imageEntry struct {
	cur     atomic.Pointer[Image]
	program *isa.Program
	brk     *breaker
}

// Store hosts the fleet of named images. All methods are safe for
// concurrent use; Get is a lock-free pointer load on the hot path.
type Store struct {
	mu      sync.RWMutex
	images  map[string]*imageEntry
	lookup  core.LookupConfig
	brkThr  int
	brkCool time.Duration
	now     func() time.Time
}

// NewStore creates an empty store. Sessions replay with lookup's Local
// configuration; breakerThreshold consecutive failed sessions quarantine
// an image for breakerCooldown before a verify-gated readmission
// (threshold <= 0 disables the breaker).
func NewStore(lookup core.LookupConfig, breakerThreshold int, breakerCooldown time.Duration) *Store {
	return &Store{
		images: make(map[string]*imageEntry),
		lookup: lookup,
		brkThr: breakerThreshold, brkCool: breakerCooldown,
		now: time.Now,
	}
}

// Add hosts an automaton under name with generation 1. The automaton is
// statically verified before admission — the store never serves an image
// it cannot prove; the same gate guards Publish and breaker readmission.
func (s *Store) Add(name string, p *isa.Program, a *core.Automaton) error {
	if err := s.admitVerify(a, p); err != nil {
		return err
	}
	c := core.Compile(a, s.lookup)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.images[name]; ok {
		return errf(CodeBadImage, "image %q already hosted", name)
	}
	e := &imageEntry{program: p, brk: newBreaker(s.brkThr, s.brkCool, s.now)}
	e.cur.Store(&Image{Name: name, Gen: 1, Automaton: a, Compiled: c})
	s.images[name] = e
	return nil
}

// admitVerify is the static admission gate: automaton rules against the
// program image plus the full compiled-form audit.
func (s *Store) admitVerify(a *core.Automaton, p *isa.Program) error {
	var cache *cfg.Cache
	if p != nil {
		cache = cfg.NewCache(p, cfg.StarDBT)
	}
	r := verify.Automaton(a, cache)
	r.Merge(verify.Compiled(core.Compile(a, s.lookup)))
	if err := r.Err(); err != nil {
		return errf(CodeBadImage, "verification failed: %v", err)
	}
	return nil
}

// lookupEntry returns the entry for name.
func (s *Store) lookupEntry(name string) (*imageEntry, *Error) {
	s.mu.RLock()
	e, ok := s.images[name]
	s.mu.RUnlock()
	if !ok {
		return nil, errf(CodeUnknownImage, "image %q not hosted", name)
	}
	return e, nil
}

// Get returns the current generation of name for a new session, enforcing
// the circuit breaker: a quarantined image is rejected with
// CodeQuarantined (retry-after = remaining cooldown), except that once the
// cooldown has elapsed the open attempt triggers a static re-verification
// of the current generation — pass readmits the image, findings re-arm the
// quarantine. The re-verify runs on the opener's goroutine: admission cost
// lands on the tenant asking, never on sessions already running.
func (s *Store) Get(name string) (*Image, *Error) {
	e, serr := s.lookupEntry(name)
	if serr != nil {
		return nil, serr
	}
	ok, verifyDue := e.brk.admit()
	if !ok {
		if verifyDue {
			img := e.cur.Load()
			clean := s.admitVerify(img.Automaton, e.program) == nil
			e.brk.verdict(clean)
			if clean {
				return img, nil
			}
		}
		retry := e.brk.remaining()
		if retry <= 0 {
			retry = time.Millisecond
		}
		return nil, errRetry(CodeQuarantined, retry, "image %q quarantined", name)
	}
	return e.cur.Load(), nil
}

// Peek returns the current generation of name without consulting the
// breaker (metrics, resumed sessions that already hold a pin).
func (s *Store) Peek(name string) (*Image, *Error) {
	e, serr := s.lookupEntry(name)
	if serr != nil {
		return nil, serr
	}
	return e.cur.Load(), nil
}

// Publish admits a serialized TEA as the image's next generation: decode
// against the hosted program, statically verify end-to-end, compile, and
// atomically swap. A successful publish resets the circuit breaker — the
// failure evidence that tripped it described the previous generation.
func (s *Store) Publish(name string, data []byte) (uint64, *Error) {
	e, serr := s.lookupEntry(name)
	if serr != nil {
		return 0, serr
	}
	cache := cfg.NewCache(e.program, cfg.StarDBT)
	if r := verify.Image(data, cache, s.lookup); r.Err() != nil {
		return 0, errf(CodeBadImage, "publish rejected: %v", r.Err())
	}
	// Decode again for the automaton itself; verify.Image proved it decodes.
	a, err := core.Decode(data, cfg.NewCache(e.program, cfg.StarDBT))
	if err != nil {
		return 0, errf(CodeBadImage, "publish decode: %v", err)
	}
	c := core.Compile(a, s.lookup)

	s.mu.Lock()
	old := e.cur.Load()
	next := &Image{Name: name, Gen: old.Gen + 1, Automaton: a, Compiled: c}
	e.cur.Store(next)
	s.mu.Unlock()
	e.brk.reset()
	return next.Gen, nil
}

// Result records a finished session against the image, feeding the
// breaker. It returns true when this failure tripped the quarantine.
func (s *Store) Result(name string, failed bool) bool {
	e, serr := s.lookupEntry(name)
	if serr != nil {
		return false
	}
	return e.brk.result(failed)
}

// Quarantined reports whether name's breaker is currently open.
func (s *Store) Quarantined(name string) bool {
	e, serr := s.lookupEntry(name)
	if serr != nil {
		return false
	}
	return e.brk.isOpen()
}

// Names lists the hosted image names (unordered).
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.images))
	for n := range s.images {
		out = append(out, n)
	}
	return out
}
