// Package difftest differentially tests the production interpreter
// (internal/cpu) against an independent reference implementation, on
// randomly seeded synthetic programs. It lives outside internal/cpu only
// because the workload generator imports cpu.
package difftest

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/workload"
)

// refMachine is an independent re-implementation of the ISA semantics used
// only for differential testing: sparse map memory instead of a slice, a
// saved comparison value instead of flag bits, and a recursive-descent
// style evaluator. Divergence between the two implementations on any
// program is a bug in one of them.
type refMachine struct {
	prog *isa.Program
	pc   uint64
	regs map[isa.Reg]int64
	mem  map[int64]int64
	cmp  int64 // last flag-setting result
	halt bool
}

func newRef(p *isa.Program) *refMachine {
	r := &refMachine{
		prog: p,
		pc:   p.Entry,
		regs: make(map[isa.Reg]int64),
		mem:  make(map[int64]int64),
	}
	for a, v := range p.InitData {
		r.mem[r.wrap(a)] = v
	}
	r.regs[isa.ESP] = int64(p.MemWords)
	return r
}

func (r *refMachine) wrap(a int64) int64 {
	n := int64(r.prog.MemWords)
	return ((a % n) + n) % n
}

func (r *refMachine) load(a int64) int64     { return r.mem[r.wrap(a)] }
func (r *refMachine) store(a, v int64)       { r.mem[r.wrap(a)] = v }
func (r *refMachine) get(x isa.Reg) int64    { return r.regs[x] }
func (r *refMachine) set(x isa.Reg, v int64) { r.regs[x] = v }

func (r *refMachine) cond(c isa.Cond) bool {
	switch c {
	case isa.CondEQ:
		return r.cmp == 0
	case isa.CondNE:
		return r.cmp != 0
	case isa.CondLT:
		return r.cmp < 0
	case isa.CondGE:
		return r.cmp >= 0
	case isa.CondLE:
		return r.cmp <= 0
	case isa.CondGT:
		return r.cmp > 0
	}
	return false
}

// step executes one instruction; errors mirror the production machine's
// fault conditions approximately (good enough for differential runs on
// fault-free programs).
func (r *refMachine) step() error {
	if r.halt {
		return fmt.Errorf("halted")
	}
	in, ok := r.prog.At(r.pc)
	if !ok {
		return fmt.Errorf("no instruction at 0x%x", r.pc)
	}
	next := in.Next()
	flag := func(v int64) { r.cmp = v }
	switch in.Op {
	case isa.NOP, isa.CPUID:
	case isa.MOV:
		r.set(in.Dst, r.get(in.Src))
	case isa.MOVI:
		r.set(in.Dst, in.Imm)
	case isa.LOAD:
		r.set(in.Dst, r.load(r.get(in.Src)+int64(in.Disp)))
	case isa.STORE:
		r.store(r.get(in.Dst)+int64(in.Disp), r.get(in.Src))
	case isa.ADD:
		r.set(in.Dst, r.get(in.Dst)+r.get(in.Src))
		flag(r.get(in.Dst))
	case isa.ADDI:
		r.set(in.Dst, r.get(in.Dst)+in.Imm)
		flag(r.get(in.Dst))
	case isa.SUB:
		r.set(in.Dst, r.get(in.Dst)-r.get(in.Src))
		flag(r.get(in.Dst))
	case isa.SUBI:
		r.set(in.Dst, r.get(in.Dst)-in.Imm)
		flag(r.get(in.Dst))
	case isa.MUL:
		r.set(in.Dst, r.get(in.Dst)*r.get(in.Src))
	case isa.AND:
		r.set(in.Dst, r.get(in.Dst)&r.get(in.Src))
		flag(r.get(in.Dst))
	case isa.OR:
		r.set(in.Dst, r.get(in.Dst)|r.get(in.Src))
		flag(r.get(in.Dst))
	case isa.XOR:
		r.set(in.Dst, r.get(in.Dst)^r.get(in.Src))
		flag(r.get(in.Dst))
	case isa.SHL:
		r.set(in.Dst, r.get(in.Dst)<<(uint64(in.Imm)&63))
	case isa.SHR:
		r.set(in.Dst, r.get(in.Dst)>>(uint64(in.Imm)&63))
	case isa.CMP:
		flag(r.get(in.Dst) - r.get(in.Src))
	case isa.CMPI:
		flag(r.get(in.Dst) - in.Imm)
	case isa.TEST:
		flag(r.get(in.Dst) & r.get(in.Src))
	case isa.JMP:
		next = in.Target
	case isa.JCC:
		if r.cond(in.Cond) {
			next = in.Target
		}
	case isa.JIND:
		next = uint64(r.get(in.Src))
	case isa.CALL, isa.CALLIND:
		sp := r.get(isa.ESP) - 1
		r.set(isa.ESP, sp)
		r.mem[sp] = int64(in.Next())
		if in.Op == isa.CALL {
			next = in.Target
		} else {
			next = uint64(r.get(in.Src))
		}
	case isa.RET:
		sp := r.get(isa.ESP)
		r.set(isa.ESP, sp+1)
		next = uint64(r.mem[sp])
	case isa.PUSH:
		sp := r.get(isa.ESP) - 1
		r.set(isa.ESP, sp)
		r.mem[sp] = r.get(in.Src)
	case isa.POP:
		sp := r.get(isa.ESP)
		r.set(isa.ESP, sp+1)
		r.set(in.Dst, r.mem[sp])
	case isa.REPMOVS:
		n := r.get(isa.ECX)
		if n < 0 {
			n = 0
		}
		if max := int64(r.prog.MemWords); n > max {
			n = max
		}
		src, dst := r.get(isa.ESI), r.get(isa.EDI)
		for i := int64(0); i < n; i++ {
			r.store(dst+i, r.load(src+i))
		}
		r.set(isa.ESI, src+n)
		r.set(isa.EDI, dst+n)
		r.set(isa.ECX, 0)
	case isa.REPSTOS:
		n := r.get(isa.ECX)
		if n < 0 {
			n = 0
		}
		if max := int64(r.prog.MemWords); n > max {
			n = max
		}
		dst := r.get(isa.EDI)
		for i := int64(0); i < n; i++ {
			r.store(dst+i, r.get(isa.EAX))
		}
		r.set(isa.EDI, dst+n)
		r.set(isa.ECX, 0)
	case isa.HALT:
		r.halt = true
		return nil
	}
	r.pc = next
	return nil
}

// TestDifferentialAgainstReference runs the production interpreter and the
// reference side by side on randomly seeded synthetic programs, comparing
// PC and the full register file after every instruction.
func TestDifferentialAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		spec, _ := workload.ByName("181.mcf")
		spec.Seed = seed
		spec.WorkScale = 2
		p := workload.Program(spec)

		m := cpu.New(p)
		ref := newRef(p)
		const maxSteps = 100_000
		for i := 0; i < maxSteps && !m.Halted(); i++ {
			if _, err := m.Step(); err != nil {
				t.Logf("seed %d: machine fault: %v", seed, err)
				return false
			}
			if err := ref.step(); err != nil {
				t.Logf("seed %d: reference fault: %v", seed, err)
				return false
			}
			if m.PC() != ref.pc {
				t.Logf("seed %d step %d: PC 0x%x vs 0x%x", seed, i, m.PC(), ref.pc)
				return false
			}
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if m.Reg(r) != ref.get(r) {
					t.Logf("seed %d step %d: %v = %d vs %d", seed, i, r, m.Reg(r), ref.get(r))
					return false
				}
			}
		}
		if m.Halted() != ref.halt {
			t.Logf("seed %d: halt disagreement", seed)
			return false
		}
		// Spot-check data memory agreement over the interesting regions.
		for a := int64(0); a < 12; a++ {
			if m.Mem(a) != ref.load(a) {
				t.Logf("seed %d: mem[%d] = %d vs %d", seed, a, m.Mem(a), ref.load(a))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
