package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{4}, 4},
		{[]float64{1, 4}, 2},
		{[]float64{2, 8}, 4},
		{[]float64{0, -1}, 0},   // non-positive ignored
		{[]float64{0, 2, 8}, 4}, // zero skipped
		{[]float64{1, 1, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := GeoMean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("GeoMean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// GeoMean lies between min and max of its positive inputs.
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				pos = append(pos, x)
			}
		}
		g := GeoMean(pos)
		if len(pos) == 0 {
			return g == 0
		}
		lo, hi := pos[0], pos[0]
		for _, x := range pos {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo-1e-9*lo && g <= hi+1e-9*hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("benchmark", "DBT", "TEA")
	tb.AddRow("168.wupwise", "329", "81")
	tb.AddSeparator()
	tb.AddRow("GeoMean", "", "77%")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Header first, rule second and fourth.
	if !strings.HasPrefix(lines[0], "benchmark") {
		t.Errorf("header line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") || !strings.HasPrefix(lines[3], "---") {
		t.Error("rules missing")
	}
	// Numeric columns right-aligned: all lines same width per column.
	if !strings.Contains(lines[2], "329") {
		t.Error("data row missing")
	}
	// Short rows padded.
	tb2 := NewTable("a", "b", "c")
	tb2.AddRow("only")
	if !strings.Contains(tb2.String(), "only") {
		t.Error("short row lost")
	}
}

func TestFormatters(t *testing.T) {
	if KB(0) != "0" || KB(512) != "1" || KB(1024) != "1" || KB(10240) != "10" {
		t.Errorf("KB: %s %s %s %s", KB(0), KB(512), KB(1024), KB(10240))
	}
	if Pct(0.975) != "97.5%" {
		t.Errorf("Pct = %s", Pct(0.975))
	}
	if Ratio(13.531) != "13.53" {
		t.Errorf("Ratio = %s", Ratio(13.531))
	}
}
