// Package stats provides the small numeric and table-rendering helpers the
// experiment harness uses to report results in the paper's format.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs, ignoring non-positive values
// the way benchmark summaries conventionally do. It returns 0 for an empty
// (or all non-positive) input.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table renders fixed-width text tables in the style of the paper.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// String renders the table with column-aligned cells: the first column
// left-aligned (benchmark names), the rest right-aligned (numbers).
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	rule := strings.Repeat("-", total-2)
	b.WriteString(rule)
	b.WriteByte('\n')
	for _, r := range t.rows {
		if r == nil {
			b.WriteString(rule)
			b.WriteByte('\n')
			continue
		}
		writeRow(r)
	}
	return b.String()
}

// KB renders a byte count as integer kilobytes, matching Table 1's units.
func KB(bytes uint64) string {
	kb := (bytes + 512) / 1024
	return fmt.Sprintf("%d", kb)
}

// Pct renders a fraction as a percentage with one decimal ("99.8%").
func Pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

// Ratio renders a slowdown factor with two decimals ("13.53").
func Ratio(f float64) string {
	return fmt.Sprintf("%.2f", f)
}
