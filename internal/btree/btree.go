// Package btree implements a B+ tree keyed by 64-bit addresses.
//
// The paper's optimized TEA transition function keeps all trace entry
// points in "a global B+ tree" consulted whenever execution transfers from
// cold code to a trace or between traces (§4.2, Table 4). This package is
// that structure. The tree counts node probes so the experiment harness can
// charge a realistic cost per lookup, and the fanout is configurable so the
// ablation bench can sweep it.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the default maximum number of keys per node.
const DefaultOrder = 16

// Map is a B+ tree from uint64 keys to values of type V. The zero value is
// not usable; construct with New.
type Map[V any] struct {
	order  int
	root   node[V]
	height int
	size   int
	probes uint64

	// probeHook, when set, receives each Get/Floor search's node-visit
	// count as it completes — the observability layer's per-lookup probe
	// depth, as opposed to the cumulative probes counter.
	probeHook func(depth uint64)
}

type node[V any] interface {
	// probe-visits are charged by the caller.
	isNode()
}

type leaf[V any] struct {
	keys []uint64
	vals []V
	next *leaf[V]
}

type inner[V any] struct {
	// keys[i] is the smallest key reachable under kids[i+1].
	keys []uint64
	kids []node[V]
}

func (*leaf[V]) isNode()  {}
func (*inner[V]) isNode() {}

// New creates an empty tree with the given order (maximum keys per node).
// Orders below 3 are raised to 3.
func New[V any](order int) *Map[V] {
	if order < 3 {
		order = 3
	}
	return &Map[V]{order: order, root: &leaf[V]{}, height: 1}
}

// Bulk builds a tree of the given order directly from strictly ascending
// keys and their values — the freeze path used when an automaton's whole
// entry table is known up front. Leaves are packed to the maximum occupancy
// (a frozen tree is read-mostly, so density beats insert headroom), built
// left to right with the sibling chain threaded as they are laid down, and
// the inner levels are derived bottom-up from the subtree minima. The
// result is a valid tree by Check's invariants and remains fully mutable:
// Put and Delete work normally afterwards, which is what lets the online
// recorder keep extending a bulk-loaded container.
//
// Unsorted or duplicate keys fall back to repeated Put, so Bulk is always
// safe to call; the fast path just requires the caller's natural case
// (entry tables are produced in ascending address order).
func Bulk[V any](order int, keys []uint64, vals []V) *Map[V] {
	if order < 3 {
		order = 3
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t := New[V](order)
			for j := range keys {
				t.Put(keys[j], vals[j])
			}
			return t
		}
	}
	if len(keys) == 0 {
		return New[V](order)
	}

	t := &Map[V]{order: order, size: len(keys)}

	// Lay down the leaf level. Chunk sizes are the full order except that a
	// final underflowing chunk borrows from its left neighbour so every
	// non-root leaf holds at least minKeys.
	sizes := bulkChunks(len(keys), order, t.minKeys())
	leaves := make([]node[V], 0, len(sizes))
	mins := make([]uint64, 0, len(sizes))
	var prev *leaf[V]
	off := 0
	for _, n := range sizes {
		l := &leaf[V]{
			keys: append([]uint64(nil), keys[off:off+n]...),
			vals: append([]V(nil), vals[off:off+n]...),
		}
		if prev != nil {
			prev.next = l
		}
		prev = l
		leaves = append(leaves, l)
		mins = append(mins, l.keys[0])
		off += n
	}

	// Build inner levels until one node remains. An inner node with k kids
	// carries k-1 separators, so the per-node capacity is order+1 kids and
	// the non-root minimum is minKeys+1 kids.
	level, levelMins := leaves, mins
	t.height = 1
	for len(level) > 1 {
		sizes := bulkChunks(len(level), order+1, t.minKeys()+1)
		up := make([]node[V], 0, len(sizes))
		upMins := make([]uint64, 0, len(sizes))
		off := 0
		for _, n := range sizes {
			in := &inner[V]{
				keys: append([]uint64(nil), levelMins[off+1:off+n]...),
				kids: append([]node[V](nil), level[off:off+n]...),
			}
			up = append(up, in)
			upMins = append(upMins, levelMins[off])
			off += n
		}
		level, levelMins = up, upMins
		t.height++
	}
	t.root = level[0]
	return t
}

// bulkChunks splits n items into runs of at most max items where every run
// but a lone first one holds at least min items: full runs, with the final
// remainder rebalanced against its left neighbour when it would underflow.
func bulkChunks(n, max, min int) []int {
	var out []int
	for n > 0 {
		take := max
		if n < take {
			take = n
		}
		rest := n - take
		if rest > 0 && rest < min {
			// The next (final) chunk would underflow; even this one out.
			take = (n + 1) / 2
			if take > max {
				take = max
			}
		}
		out = append(out, take)
		n -= take
	}
	return out
}

// Len returns the number of keys stored.
func (t *Map[V]) Len() int { return t.size }

// Height returns the number of node levels (1 for a single leaf).
func (t *Map[V]) Height() int { return t.height }

// Probes returns the cumulative number of tree nodes visited by Get, Put
// and Delete since construction (or the last ResetProbes). The experiment
// cost model charges lookups by this count.
func (t *Map[V]) Probes() uint64 { return t.probes }

// ResetProbes zeroes the probe counter.
func (t *Map[V]) ResetProbes() { t.probes = 0 }

// SetProbeHook installs (or with nil removes) a per-search observer: after
// every Get or Floor it receives that search's node-visit count. The hook
// must be cheap and must not call back into the tree.
func (t *Map[V]) SetProbeHook(h func(depth uint64)) { t.probeHook = h }

// Get returns the value stored under key.
func (t *Map[V]) Get(key uint64) (V, bool) {
	n := t.root
	depth := uint64(0)
	for {
		depth++
		switch x := n.(type) {
		case *inner[V]:
			n = x.kids[childIndex(x.keys, key)]
		case *leaf[V]:
			t.probes += depth
			if t.probeHook != nil {
				t.probeHook(depth)
			}
			i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= key })
			if i < len(x.keys) && x.keys[i] == key {
				return x.vals[i], true
			}
			var zero V
			return zero, false
		}
	}
}

// Floor returns the largest key <= key and its value. It reports ok=false
// when every stored key is greater than key.
//
// The descent needs no backtracking: an inner node routes key to child i
// only when the child's subtree minimum (the separator keys[i-1]) is <=
// key, so a miss inside the located leaf can only happen in the globally
// leftmost leaf — where there is no floor at all.
func (t *Map[V]) Floor(key uint64) (uint64, V, bool) {
	var zero V
	n := t.root
	depth := uint64(0)
	for {
		depth++
		switch x := n.(type) {
		case *inner[V]:
			n = x.kids[childIndex(x.keys, key)]
		case *leaf[V]:
			t.probes += depth
			if t.probeHook != nil {
				t.probeHook(depth)
			}
			i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] > key })
			if i > 0 {
				return x.keys[i-1], x.vals[i-1], true
			}
			return 0, zero, false
		}
	}
}

// childIndex returns which child of an inner node covers key.
func childIndex(keys []uint64, key uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > key })
}

// Put stores val under key, replacing any previous value.
func (t *Map[V]) Put(key uint64, val V) {
	split, sepKey, right := t.put(t.root, key, val)
	if split {
		t.root = &inner[V]{keys: []uint64{sepKey}, kids: []node[V]{t.root, right}}
		t.height++
	}
}

func (t *Map[V]) put(n node[V], key uint64, val V) (split bool, sepKey uint64, right node[V]) {
	t.probes++
	switch x := n.(type) {
	case *leaf[V]:
		i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= key })
		if i < len(x.keys) && x.keys[i] == key {
			x.vals[i] = val
			return false, 0, nil
		}
		x.keys = append(x.keys, 0)
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = key
		var zero V
		x.vals = append(x.vals, zero)
		copy(x.vals[i+1:], x.vals[i:])
		x.vals[i] = val
		t.size++
		if len(x.keys) <= t.order {
			return false, 0, nil
		}
		mid := len(x.keys) / 2
		r := &leaf[V]{
			keys: append([]uint64(nil), x.keys[mid:]...),
			vals: append([]V(nil), x.vals[mid:]...),
			next: x.next,
		}
		x.keys = x.keys[:mid:mid]
		x.vals = x.vals[:mid:mid]
		x.next = r
		return true, r.keys[0], r

	case *inner[V]:
		ci := childIndex(x.keys, key)
		childSplit, childSep, childRight := t.put(x.kids[ci], key, val)
		if !childSplit {
			return false, 0, nil
		}
		x.keys = append(x.keys, 0)
		copy(x.keys[ci+1:], x.keys[ci:])
		x.keys[ci] = childSep
		x.kids = append(x.kids, nil)
		copy(x.kids[ci+2:], x.kids[ci+1:])
		x.kids[ci+1] = childRight
		if len(x.keys) <= t.order {
			return false, 0, nil
		}
		mid := len(x.keys) / 2
		sep := x.keys[mid]
		r := &inner[V]{
			keys: append([]uint64(nil), x.keys[mid+1:]...),
			kids: append([]node[V](nil), x.kids[mid+1:]...),
		}
		x.keys = x.keys[:mid:mid]
		x.kids = x.kids[: mid+1 : mid+1]
		return true, sep, r
	}
	panic("btree: unreachable")
}

// Delete removes key, reporting whether it was present.
func (t *Map[V]) Delete(key uint64) bool {
	removed := t.del(t.root, key)
	if root, ok := t.root.(*inner[V]); ok && len(root.kids) == 1 {
		t.root = root.kids[0]
		t.height--
	}
	return removed
}

// minKeys is the underflow threshold for non-root nodes.
func (t *Map[V]) minKeys() int { return t.order / 2 }

func (t *Map[V]) del(n node[V], key uint64) bool {
	t.probes++
	switch x := n.(type) {
	case *leaf[V]:
		i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= key })
		if i >= len(x.keys) || x.keys[i] != key {
			return false
		}
		x.keys = append(x.keys[:i], x.keys[i+1:]...)
		x.vals = append(x.vals[:i], x.vals[i+1:]...)
		t.size--
		return true

	case *inner[V]:
		ci := childIndex(x.keys, key)
		removed := t.del(x.kids[ci], key)
		if removed {
			t.rebalance(x, ci)
		}
		return removed
	}
	panic("btree: unreachable")
}

// rebalance fixes up child ci of parent p after a deletion, borrowing from
// or merging with a sibling when the child underflowed.
func (t *Map[V]) rebalance(p *inner[V], ci int) {
	switch c := p.kids[ci].(type) {
	case *leaf[V]:
		if len(c.keys) >= t.minKeys() {
			return
		}
		if ci > 0 {
			left := p.kids[ci-1].(*leaf[V])
			if len(left.keys) > t.minKeys() {
				// Borrow the rightmost entry of the left sibling.
				n := len(left.keys) - 1
				c.keys = append([]uint64{left.keys[n]}, c.keys...)
				c.vals = append([]V{left.vals[n]}, c.vals...)
				left.keys, left.vals = left.keys[:n], left.vals[:n]
				p.keys[ci-1] = c.keys[0]
				return
			}
		}
		if ci < len(p.kids)-1 {
			right := p.kids[ci+1].(*leaf[V])
			if len(right.keys) > t.minKeys() {
				c.keys = append(c.keys, right.keys[0])
				c.vals = append(c.vals, right.vals[0])
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				p.keys[ci] = right.keys[0]
				return
			}
		}
		// Merge with a sibling.
		if ci > 0 {
			left := p.kids[ci-1].(*leaf[V])
			left.keys = append(left.keys, c.keys...)
			left.vals = append(left.vals, c.vals...)
			left.next = c.next
			removeChild(p, ci)
		} else {
			right := p.kids[ci+1].(*leaf[V])
			c.keys = append(c.keys, right.keys...)
			c.vals = append(c.vals, right.vals...)
			c.next = right.next
			removeChild(p, ci+1)
		}

	case *inner[V]:
		if len(c.keys) >= t.minKeys() {
			return
		}
		if ci > 0 {
			left := p.kids[ci-1].(*inner[V])
			if len(left.keys) > t.minKeys() {
				// Rotate through the parent separator.
				c.keys = append([]uint64{p.keys[ci-1]}, c.keys...)
				c.kids = append([]node[V]{left.kids[len(left.kids)-1]}, c.kids...)
				p.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.kids = left.kids[:len(left.kids)-1]
				return
			}
		}
		if ci < len(p.kids)-1 {
			right := p.kids[ci+1].(*inner[V])
			if len(right.keys) > t.minKeys() {
				c.keys = append(c.keys, p.keys[ci])
				c.kids = append(c.kids, right.kids[0])
				p.keys[ci] = right.keys[0]
				right.keys = right.keys[1:]
				right.kids = right.kids[1:]
				return
			}
		}
		if ci > 0 {
			left := p.kids[ci-1].(*inner[V])
			left.keys = append(left.keys, p.keys[ci-1])
			left.keys = append(left.keys, c.keys...)
			left.kids = append(left.kids, c.kids...)
			removeChild(p, ci)
		} else {
			right := p.kids[ci+1].(*inner[V])
			c.keys = append(c.keys, p.keys[ci])
			c.keys = append(c.keys, right.keys...)
			c.kids = append(c.kids, right.kids...)
			removeChild(p, ci+1)
		}
	}
}

// removeChild drops child ci and its left separator from p.
func removeChild[V any](p *inner[V], ci int) {
	p.keys = append(p.keys[:ci-1], p.keys[ci:]...)
	p.kids = append(p.kids[:ci], p.kids[ci+1:]...)
}

// Ascend calls fn for every key in ascending order until fn returns false.
func (t *Map[V]) Ascend(fn func(key uint64, val V) bool) {
	n := t.root
	for {
		if in, ok := n.(*inner[V]); ok {
			n = in.kids[0]
			continue
		}
		break
	}
	for l := n.(*leaf[V]); l != nil; l = l.next {
		for i, k := range l.keys {
			if !fn(k, l.vals[i]) {
				return
			}
		}
	}
}

// Check validates the structural invariants of the tree: sorted keys,
// separator correctness, node occupancy and leaf chaining. It returns an
// error describing the first violation found. Intended for tests.
func (t *Map[V]) Check() error {
	count := 0
	var prevLeaf *leaf[V]
	var walk func(n node[V], lo, hi uint64, depth int, root bool) error
	maxDepth := -1
	walk = func(n node[V], lo, hi uint64, depth int, root bool) error {
		switch x := n.(type) {
		case *leaf[V]:
			if maxDepth < 0 {
				maxDepth = depth
			} else if depth != maxDepth {
				return fmt.Errorf("btree: leaves at unequal depths %d vs %d", depth, maxDepth)
			}
			if !root && len(x.keys) < t.minKeys() {
				return fmt.Errorf("btree: leaf underflow: %d keys", len(x.keys))
			}
			if len(x.keys) > t.order {
				return fmt.Errorf("btree: leaf overflow: %d keys", len(x.keys))
			}
			for i, k := range x.keys {
				if k < lo || k >= hi {
					return fmt.Errorf("btree: key %d outside [%d,%d)", k, lo, hi)
				}
				if i > 0 && x.keys[i-1] >= k {
					return fmt.Errorf("btree: unsorted leaf keys")
				}
			}
			if prevLeaf != nil && prevLeaf.next != x {
				return fmt.Errorf("btree: broken leaf chain")
			}
			prevLeaf = x
			count += len(x.keys)
			return nil
		case *inner[V]:
			if len(x.kids) != len(x.keys)+1 {
				return fmt.Errorf("btree: inner with %d keys, %d kids", len(x.keys), len(x.kids))
			}
			if !root && len(x.keys) < t.minKeys() {
				return fmt.Errorf("btree: inner underflow: %d keys", len(x.keys))
			}
			if len(x.keys) > t.order {
				return fmt.Errorf("btree: inner overflow: %d keys", len(x.keys))
			}
			childLo := lo
			for i := range x.kids {
				childHi := hi
				if i < len(x.keys) {
					childHi = x.keys[i]
				}
				if childLo > childHi {
					return fmt.Errorf("btree: separator order violation")
				}
				if err := walk(x.kids[i], childLo, childHi, depth+1, false); err != nil {
					return err
				}
				if i < len(x.keys) {
					childLo = x.keys[i]
				}
			}
			return nil
		}
		return fmt.Errorf("btree: unknown node type")
	}
	if err := walk(t.root, 0, ^uint64(0), 1, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d keys reachable", t.size, count)
	}
	if maxDepth != t.height {
		return fmt.Errorf("btree: height %d but leaves at depth %d", t.height, maxDepth)
	}
	return nil
}
