package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	m := New[int](8)
	if m.Len() != 0 || m.Height() != 1 {
		t.Errorf("Len=%d Height=%d", m.Len(), m.Height())
	}
	if _, ok := m.Get(1); ok {
		t.Error("Get on empty tree succeeded")
	}
	if m.Delete(1) {
		t.Error("Delete on empty tree succeeded")
	}
	if err := m.Check(); err != nil {
		t.Error(err)
	}
}

func TestPutGetOverwrite(t *testing.T) {
	m := New[string](4)
	m.Put(10, "a")
	m.Put(10, "b")
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	if v, ok := m.Get(10); !ok || v != "b" {
		t.Errorf("Get = %q, %v", v, ok)
	}
}

func TestOrderClamped(t *testing.T) {
	m := New[int](1)
	for i := uint64(0); i < 100; i++ {
		m.Put(i, int(i))
	}
	if err := m.Check(); err != nil {
		t.Error(err)
	}
}

func TestSequentialInsertAndSplit(t *testing.T) {
	m := New[int](4)
	const n = 1000
	for i := uint64(0); i < n; i++ {
		m.Put(i, int(i*2))
		if err := m.Check(); err != nil {
			t.Fatalf("after Put(%d): %v", i, err)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	if m.Height() < 3 {
		t.Errorf("Height = %d, expected deep tree at order 4", m.Height())
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Get(i); !ok || v != int(i*2) {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestAscendOrdered(t *testing.T) {
	m := New[int](6)
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		m.Put(uint64(i), i)
	}
	var got []uint64
	m.Ascend(func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 500 {
		t.Fatalf("Ascend visited %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Ascend out of order at %d", i)
		}
	}
	// Early termination.
	count := 0
	m.Ascend(func(k uint64, v int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early-stop Ascend visited %d", count)
	}
}

func TestFloor(t *testing.T) {
	m := New[int](4)
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		m.Put(k, int(k))
	}
	cases := []struct {
		q, want uint64
		ok      bool
	}{
		{5, 0, false},
		{10, 10, true},
		{15, 10, true},
		{30, 30, true},
		{49, 40, true},
		{1000, 50, true},
	}
	for _, c := range cases {
		k, _, ok := m.Floor(c.q)
		if ok != c.ok || (ok && k != c.want) {
			t.Errorf("Floor(%d) = %d, %v; want %d, %v", c.q, k, ok, c.want, c.ok)
		}
	}
}

func TestFloorDense(t *testing.T) {
	m := New[int](4)
	for i := uint64(0); i < 300; i++ {
		m.Put(i*3, int(i))
	}
	for q := uint64(0); q < 900; q++ {
		k, _, ok := m.Floor(q)
		if !ok || k != q-q%3 {
			t.Fatalf("Floor(%d) = %d, %v; want %d", q, k, ok, q-q%3)
		}
	}
}

func TestDeleteWithRebalance(t *testing.T) {
	m := New[int](4)
	const n = 800
	for i := uint64(0); i < n; i++ {
		m.Put(i, int(i))
	}
	// Delete in a shuffled order, checking invariants as the tree shrinks.
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for step, pi := range perm {
		k := uint64(pi)
		if !m.Delete(k) {
			t.Fatalf("Delete(%d) reported missing", k)
		}
		if m.Delete(k) {
			t.Fatalf("double Delete(%d) succeeded", k)
		}
		if err := m.Check(); err != nil {
			t.Fatalf("after %d deletes: %v", step+1, err)
		}
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after deleting everything", m.Len())
	}
}

func TestProbesAccumulate(t *testing.T) {
	m := New[int](4)
	for i := uint64(0); i < 100; i++ {
		m.Put(i, 1)
	}
	m.ResetProbes()
	m.Get(50)
	if m.Probes() == 0 {
		t.Error("Get did not count probes")
	}
	p := m.Probes()
	if int(p) != m.Height() {
		t.Errorf("one Get probed %d nodes; height is %d", p, m.Height())
	}
}

// TestQuickAgainstMap drives a random operation sequence against a
// reference map and validates full agreement plus structural invariants.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, orderBits uint8) bool {
		order := 3 + int(orderBits%14)
		rng := rand.New(rand.NewSource(seed))
		m := New[int](order)
		ref := make(map[uint64]int)
		const keySpace = 200
		for op := 0; op < 600; op++ {
			k := uint64(rng.Intn(keySpace))
			switch rng.Intn(3) {
			case 0:
				v := rng.Int()
				m.Put(k, v)
				ref[k] = v
			case 1:
				_, wantOK := ref[k]
				if got := m.Delete(k); got != wantOK {
					t.Logf("Delete(%d) = %v, want %v", k, got, wantOK)
					return false
				}
				delete(ref, k)
			case 2:
				want, wantOK := ref[k]
				got, ok := m.Get(k)
				if ok != wantOK || (ok && got != want) {
					t.Logf("Get(%d) = %d,%v want %d,%v", k, got, ok, want, wantOK)
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			t.Logf("Len = %d, want %d", m.Len(), len(ref))
			return false
		}
		if err := m.Check(); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New[int](DefaultOrder)
	const n = 1 << 14
	for i := uint64(0); i < n; i++ {
		m.Put(i*7, int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i%n) * 7)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New[int](DefaultOrder)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i), i)
	}
}

func TestBulkMatchesPut(t *testing.T) {
	for _, order := range []int{3, 4, 8, 16, 64} {
		for _, n := range []int{0, 1, 2, 3, 7, 15, 16, 17, 100, 1000} {
			keys := make([]uint64, n)
			vals := make([]int, n)
			for i := range keys {
				keys[i] = uint64(i)*37 + 0x8048000
				vals[i] = i
			}
			bulk := Bulk(order, keys, vals)
			if err := bulk.Check(); err != nil {
				t.Fatalf("order=%d n=%d: %v", order, n, err)
			}
			if bulk.Len() != n {
				t.Fatalf("order=%d n=%d: Len = %d", order, n, bulk.Len())
			}
			for i, k := range keys {
				if v, ok := bulk.Get(k); !ok || v != vals[i] {
					t.Fatalf("order=%d n=%d: Get(%d) = %d, %v", order, n, k, v, ok)
				}
			}
			if _, ok := bulk.Get(0xdead); ok {
				t.Fatalf("order=%d n=%d: Get on absent key succeeded", order, n)
			}
			// Same ascending content as an insert-built tree.
			ref := New[int](order)
			for i := range keys {
				ref.Put(keys[i], vals[i])
			}
			var got, want []uint64
			bulk.Ascend(func(k uint64, _ int) bool { got = append(got, k); return true })
			ref.Ascend(func(k uint64, _ int) bool { want = append(want, k); return true })
			if len(got) != len(want) {
				t.Fatalf("order=%d n=%d: Ascend lengths %d vs %d", order, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("order=%d n=%d: Ascend[%d] = %d, want %d", order, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBulkThenMutate(t *testing.T) {
	keys := make([]uint64, 500)
	vals := make([]int, 500)
	for i := range keys {
		keys[i] = uint64(i) * 3
		vals[i] = i
	}
	m := Bulk(8, keys, vals)
	// Inserts between and beyond the frozen keys must keep the invariants.
	for i := uint64(0); i < 200; i++ {
		m.Put(i*3+1, int(i))
		if err := m.Check(); err != nil {
			t.Fatalf("after Put(%d): %v", i*3+1, err)
		}
	}
	for i := 0; i < 100; i++ {
		if !m.Delete(keys[i]) {
			t.Fatalf("Delete(%d) missed", keys[i])
		}
		if err := m.Check(); err != nil {
			t.Fatalf("after Delete(%d): %v", keys[i], err)
		}
	}
	if m.Len() != 500+200-100 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestBulkUnsortedFallsBack(t *testing.T) {
	keys := []uint64{5, 1, 9, 1} // unsorted and duplicated
	vals := []int{50, 10, 90, 11}
	m := Bulk(4, keys, vals)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicate collapsed)", m.Len())
	}
	if v, ok := m.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d, %v; want last write 11", v, ok)
	}
}
