// Package cfg discovers dynamic basic blocks and turns a machine execution
// into a stream of block-to-block edges.
//
// The paper's most troublesome implementation issue (§4.1) was that StarDBT
// and Pin identify dynamic basic blocks differently: both start blocks at
// branch targets and end them at branch instructions, but Pin additionally
// ends blocks at "unexpected" instructions (CPUID) and at REP-prefixed
// instructions, which it expands into loops. Both disciplines are modelled
// here as a Style, and the edge stream a Runner produces is the common
// currency consumed by the DBT, the Pin-like engine, the trace selectors
// and the TEA recorder/replayer.
package cfg

import (
	"fmt"
	"sort"

	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
)

// Style selects the dynamic basic-block discipline.
type Style int

const (
	// StarDBT blocks start at branch targets and end at branch instructions.
	StarDBT Style = iota
	// Pin blocks additionally end at CPUID and REP-prefixed instructions
	// (paper §4.1).
	Pin
)

func (s Style) String() string {
	if s == Pin {
		return "pin"
	}
	return "stardbt"
}

// MaxBlockLen caps the number of instructions decoded into one block; real
// translators bound block size similarly.
const MaxBlockLen = 128

// Block is a dynamic basic block: a single-entry single-exit run of
// instructions (paper Definition 1) discovered at run time from some head
// address.
type Block struct {
	// Head is the address of the first instruction; it identifies the block
	// within one Cache.
	Head uint64
	// End is the address of the last (terminating) instruction.
	End uint64
	// NumInstrs is the static instruction count of the block.
	NumInstrs int
	// Bytes is the total encoded size of the block's instructions; this is
	// what code replication pays per copy.
	Bytes uint64
	// Term is the terminating instruction.
	Term *isa.Instr
	// BackSrc precomputes whether Term, when taken, is a direct backward
	// branch (not indirect, not a call, target at or before the branch):
	// the loop back-edge test the trace selectors apply per edge, hoisted
	// to decode time so the hot paths read one flag instead of re-deriving
	// it from the terminator.
	BackSrc bool
}

// FallThrough returns the address control reaches when the terminator does
// not take its branch, and whether such an edge exists.
func (b *Block) FallThrough() (uint64, bool) {
	if b.Term.FallsThrough() {
		return b.Term.Next(), true
	}
	return 0, false
}

func (b *Block) String() string {
	return fmt.Sprintf("[0x%x..0x%x %di %dB %s]", b.Head, b.End, b.NumInstrs, b.Bytes, b.Term.Op)
}

// Cache memoizes block decoding per head address, exactly like a DBT's
// block directory.
type Cache struct {
	prog   *isa.Program
	style  Style
	blocks map[uint64]*Block
}

// NewCache creates an empty block cache over prog with the given discipline.
func NewCache(prog *isa.Program, style Style) *Cache {
	return &Cache{prog: prog, style: style, blocks: make(map[uint64]*Block)}
}

// Program returns the program the cache decodes.
func (c *Cache) Program() *isa.Program { return c.prog }

// Style returns the cache's block discipline.
func (c *Cache) Style() Style { return c.style }

// BlockAt decodes (or returns the memoized) block starting at head.
func (c *Cache) BlockAt(head uint64) (*Block, error) {
	if b, ok := c.blocks[head]; ok {
		return b, nil
	}
	b, err := c.decode(head)
	if err != nil {
		return nil, err
	}
	c.blocks[head] = b
	return b, nil
}

// Known returns all decoded blocks ordered by head address.
func (c *Cache) Known() []*Block {
	out := make([]*Block, 0, len(c.blocks))
	for _, b := range c.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Head < out[j].Head })
	return out
}

// Len returns the number of decoded blocks.
func (c *Cache) Len() int { return len(c.blocks) }

func (c *Cache) decode(head uint64) (*Block, error) {
	in, ok := c.prog.At(head)
	if !ok {
		return nil, fmt.Errorf("cfg: block head 0x%x is not an instruction", head)
	}
	b := &Block{Head: head}
	for n := 0; n < MaxBlockLen; n++ {
		b.NumInstrs++
		b.Bytes += uint64(in.Size)
		b.End = in.Addr
		b.Term = in
		if c.ends(in) {
			b.sealTerm()
			return b, nil
		}
		next, ok := c.prog.At(in.Next())
		if !ok {
			// Fell off the program text: treat the last instruction as the
			// terminator; the machine will fault if control really goes there.
			b.sealTerm()
			return b, nil
		}
		in = next
	}
	b.sealTerm()
	return b, nil
}

// sealTerm derives the terminator-dependent flags once the block's extent
// is final.
func (b *Block) sealTerm() {
	t := b.Term
	b.BackSrc = !t.IsIndirect() && t.IsBranch() && !t.IsCall() && t.Target <= t.Addr
}

// ends reports whether in terminates a block under the cache's discipline.
func (c *Cache) ends(in *isa.Instr) bool {
	if in.IsBranch() {
		return true
	}
	if c.style == Pin && (in.Op == isa.CPUID || in.IsRep()) {
		return true
	}
	return false
}

// Edge is one control transfer between two dynamic blocks.
type Edge struct {
	// From is the block that just finished executing; nil for the initial
	// pseudo-edge into the program entry.
	From *Block
	// To is the block about to execute; nil on the final edge after HALT.
	To *Block
	// Taken reports, for conditional terminators, whether the branch was
	// taken; unconditional transfers report true, pure fall-through
	// (Pin-split blocks, calls' returns aside) report false.
	Taken bool
}

// Runner drives a machine block by block, producing the edge stream.
type Runner struct {
	m     *cpu.Machine
	cache *Cache
	cur   *Block
	begun bool
	done  bool
}

// NewRunner resets the machine and prepares a runner over it.
func NewRunner(m *cpu.Machine, style Style) *Runner {
	m.Reset()
	return &Runner{m: m, cache: NewCache(m.Program(), style)}
}

// Cache exposes the runner's block cache.
func (r *Runner) Cache() *Cache { return r.cache }

// Machine exposes the underlying machine (for instruction counts).
func (r *Runner) Machine() *cpu.Machine { return r.m }

// Next advances the execution by one edge. The first call emits the
// pseudo-edge into the entry block without executing anything. Subsequent
// calls execute the current block to completion and emit the edge to the
// next block; after HALT the final edge has To == nil and ok is false for
// every later call.
func (r *Runner) Next() (Edge, bool, error) {
	if r.done {
		return Edge{}, false, nil
	}
	if !r.begun {
		r.begun = true
		b, err := r.cache.BlockAt(r.m.PC())
		if err != nil {
			return Edge{}, false, err
		}
		r.cur = b
		return Edge{From: nil, To: b, Taken: true}, true, nil
	}

	from := r.cur
	for i := 0; i < from.NumInstrs; i++ {
		if _, err := r.m.Step(); err != nil {
			return Edge{}, false, err
		}
	}
	if r.m.Halted() {
		r.done = true
		return Edge{From: from, To: nil}, true, nil
	}
	to, err := r.cache.BlockAt(r.m.PC())
	if err != nil {
		return Edge{}, false, err
	}
	taken := true
	if from.Term.IsCondBranch() {
		taken = to.Head == from.Term.Target
	} else if !from.Term.IsBranch() {
		// Pin-style split on CPUID/REP: pure fall-through.
		taken = false
	}
	r.cur = to
	return Edge{From: from, To: to, Taken: taken}, true, nil
}

// Done reports whether the runner has emitted its final edge.
func (r *Runner) Done() bool { return r.done }
