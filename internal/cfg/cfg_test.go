package cfg

import (
	"testing"

	"github.com/lsc-tea/tea/internal/asm"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
)

const loopSrc = `
.entry main
main:
    movi ecx, 3
loop:
    subi ecx, 1
    jne loop
    halt
`

func TestBlockDecoding(t *testing.T) {
	p := asm.MustAssemble("loop", loopSrc)
	c := NewCache(p, StarDBT)
	b, err := c.BlockAt(p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	// Entry block runs from movi through the jne terminator.
	if b.NumInstrs != 3 {
		t.Errorf("entry block has %d instrs, want 3", b.NumInstrs)
	}
	if !b.Term.IsCondBranch() {
		t.Errorf("terminator = %v", b.Term)
	}
	loop, err := c.BlockAt(p.Labels["loop"])
	if err != nil {
		t.Fatal(err)
	}
	if loop.NumInstrs != 2 {
		t.Errorf("loop block has %d instrs, want 2", loop.NumInstrs)
	}
	// Memoized.
	again, _ := c.BlockAt(p.Entry)
	if again != b {
		t.Error("BlockAt did not memoize")
	}
	if c.Len() != 2 {
		t.Errorf("cache Len = %d", c.Len())
	}
}

func TestBlockFallThrough(t *testing.T) {
	p := asm.MustAssemble("ft", loopSrc)
	c := NewCache(p, StarDBT)
	loop, _ := c.BlockAt(p.Labels["loop"])
	ft, ok := loop.FallThrough()
	if !ok {
		t.Fatal("conditional block has no fall-through")
	}
	if in, valid := p.At(ft); !valid || in.Op.String() != "halt" {
		t.Errorf("fall-through at 0x%x is not the halt", ft)
	}
	// Unconditional jmp block has none.
	p2 := asm.MustAssemble("j", "e: jmp e\n")
	c2 := NewCache(p2, StarDBT)
	b2, _ := c2.BlockAt(p2.Entry)
	if _, ok := b2.FallThrough(); ok {
		t.Error("jmp block reported fall-through")
	}
}

func TestBlockAtBadAddress(t *testing.T) {
	p := asm.MustAssemble("x", "e: halt\n")
	c := NewCache(p, StarDBT)
	if _, err := c.BlockAt(12345); err == nil {
		t.Error("BlockAt accepted bad head")
	}
}

func TestPinStyleSplitsOnRepAndCpuid(t *testing.T) {
	src := `
.entry e
e:
    movi ecx, 2
    repmovs
    cpuid
    addi eax, 1
    halt
`
	p := asm.MustAssemble("rep", src)

	sd := NewCache(p, StarDBT)
	b, _ := sd.BlockAt(p.Entry)
	if b.NumInstrs != 5 {
		t.Errorf("StarDBT block = %d instrs, want 5 (no splits)", b.NumInstrs)
	}

	pin := NewCache(p, Pin)
	b1, _ := pin.BlockAt(p.Entry)
	if b1.NumInstrs != 2 || !b1.Term.IsRep() {
		t.Errorf("Pin first block = %d instrs term %v; want split after repmovs", b1.NumInstrs, b1.Term)
	}
	b2, _ := pin.BlockAt(b1.Term.Next())
	if b2.NumInstrs != 1 || b2.Term.Op.String() != "cpuid" {
		t.Errorf("Pin second block = %v", b2)
	}
}

func collectEdges(t *testing.T, src string, style Style) []Edge {
	t.Helper()
	p := asm.MustAssemble("t", src)
	m := cpu.New(p)
	r := NewRunner(m, style)
	var edges []Edge
	for {
		e, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		edges = append(edges, e)
		if e.To == nil {
			break
		}
	}
	if !r.Done() {
		t.Error("runner not done")
	}
	return edges
}

func TestRunnerEdgeStream(t *testing.T) {
	edges := collectEdges(t, loopSrc, StarDBT)
	// pseudo-entry, loop->loop (taken) ×2... exactly:
	// entry edge, then entry-block -> loop (not taken? entry block ends at
	// jne: first two iterations ecx=2,1 -> jne taken back to loop), wait:
	// entry block is movi+subi+jne: after it ecx=2, jne taken to loop.
	// Then loop->loop (ecx=1, taken), loop->halt (ecx=0, not taken),
	// halt-block -> nil.
	if len(edges) != 5 {
		t.Fatalf("got %d edges: %v", len(edges), edges)
	}
	if edges[0].From != nil || edges[0].To == nil {
		t.Error("first edge is not the entry pseudo-edge")
	}
	if edges[1].From == nil || !edges[1].Taken {
		t.Error("second edge should be a taken branch")
	}
	last := edges[len(edges)-1]
	if last.To != nil {
		t.Error("final edge should have To == nil")
	}
}

func TestRunnerTakenFlag(t *testing.T) {
	src := `
.entry e
e:
    movi eax, 1
    cmpi eax, 0
    jeq never
    addi eax, 1
never:
    halt
`
	edges := collectEdges(t, src, StarDBT)
	// Edge after the jeq must be the fall-through (not taken).
	if len(edges) < 3 {
		t.Fatalf("edges: %v", edges)
	}
	if edges[1].Taken {
		t.Error("untaken jeq reported Taken")
	}
}

func TestRunnerPinSplitEdgesNotTaken(t *testing.T) {
	src := `
.entry e
e:
    cpuid
    addi eax, 1
    halt
`
	edges := collectEdges(t, src, Pin)
	// Edge out of the cpuid-terminated block is a pure fall-through.
	if edges[1].Taken {
		t.Error("Pin split edge reported Taken")
	}
	if edges[1].From.Term.IsBranch() {
		t.Error("split block terminator should not be a branch")
	}
}

func TestRunnerCountsMatchMachine(t *testing.T) {
	p := asm.MustAssemble("c", loopSrc)
	m := cpu.New(p)
	r := NewRunner(m, StarDBT)
	for {
		_, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	// Full program: movi + (subi+jne)*3 + halt = 8 steps.
	if m.Steps() != 8 {
		t.Errorf("Steps = %d, want 8", m.Steps())
	}
}

func TestKnownSorted(t *testing.T) {
	p := asm.MustAssemble("k", loopSrc)
	c := NewCache(p, StarDBT)
	c.BlockAt(p.Labels["loop"])
	c.BlockAt(p.Entry)
	blocks := c.Known()
	if len(blocks) != 2 || blocks[0].Head > blocks[1].Head {
		t.Errorf("Known() = %v", blocks)
	}
}

func TestStyleString(t *testing.T) {
	if StarDBT.String() != "stardbt" || Pin.String() != "pin" {
		t.Error("Style strings wrong")
	}
}

func TestOverlappingBlocks(t *testing.T) {
	// Jumping into the middle of a block yields a second, overlapping block
	// — normal in DBTs.
	src := `
.entry e
e:
    movi eax, 5
mid:
    subi eax, 1
    jgt mid
    halt
`
	p := asm.MustAssemble("o", src)
	c := NewCache(p, StarDBT)
	whole, _ := c.BlockAt(p.Entry)
	mid, _ := c.BlockAt(p.Labels["mid"])
	if whole.End != mid.End {
		t.Error("overlapping blocks should share the terminator")
	}
	if whole.NumInstrs != mid.NumInstrs+1 {
		t.Errorf("whole=%d mid=%d", whole.NumInstrs, mid.NumInstrs)
	}
}

func TestStylesAgreeOnExecution(t *testing.T) {
	// Both block disciplines drive the same machine semantics: identical
	// instruction counts, identical final architectural state.
	src := `
.entry e
e:
    movi ebp, 20
l:
    movi ecx, 4
    movi esi, 100
    movi edi, 200
    repmovs
    cpuid
    addi eax, 1
    subi ebp, 1
    jgt l
    halt
`
	p := asm.MustAssemble("agree", src)
	run := func(style Style) (uint64, int64) {
		m := cpu.New(p)
		r := NewRunner(m, style)
		for {
			_, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		return m.Steps(), m.Reg(0) // eax
	}
	s1, a1 := run(StarDBT)
	s2, a2 := run(Pin)
	if s1 != s2 || a1 != a2 {
		t.Errorf("styles diverge: steps %d/%d eax %d/%d", s1, s2, a1, a2)
	}
}

func TestEveryStarDBTBoundaryIsAPinBoundary(t *testing.T) {
	// Pin splits strictly more than StarDBT: every StarDBT block head that
	// execution visits is also a Pin block head.
	p := asm.MustAssemble("b", `
.entry e
e:
    movi ebp, 10
l:
    movi ecx, 3
    movi esi, 50
    movi edi, 90
    repmovs
    addi eax, 2
    cpuid
    subi ebp, 1
    jgt l
    halt
`)
	heads := func(style Style) map[uint64]bool {
		m := cpu.New(p)
		r := NewRunner(m, style)
		out := make(map[uint64]bool)
		for {
			e, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok || e.To == nil {
				break
			}
			out[e.To.Head] = true
		}
		return out
	}
	sd := heads(StarDBT)
	pin := heads(Pin)
	for h := range sd {
		if !pin[h] {
			t.Errorf("StarDBT head 0x%x not a Pin head", h)
		}
	}
	if len(pin) <= len(sd) {
		t.Error("Pin should discover strictly more heads on REP/CPUID code")
	}
}

func TestMaxBlockLenRespected(t *testing.T) {
	// A long straight-line run is capped at MaxBlockLen.
	b := isa.NewBuilder("long")
	b.Label("e")
	for i := 0; i < MaxBlockLen+40; i++ {
		b.Emit(isa.Instr{Op: isa.NOP})
	}
	b.Emit(isa.Instr{Op: isa.HALT})
	p, err := b.Build("e", 64)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(p, StarDBT)
	blk, err := c.BlockAt(p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumInstrs != MaxBlockLen {
		t.Errorf("block has %d instrs, cap is %d", blk.NumInstrs, MaxBlockLen)
	}
}
