// Package failsem is the typed port of the old cmd/tealint go/ast walker:
// it enforces the repository's failure-semantics conventions in the
// packages that own them (the panic→error conversion work of PR 1 keeps
// regressing risk otherwise):
//
//	panic   — a call to the predeclared panic inside a guarded package;
//	noerror — an exported function or method in a guarded package whose
//	          results carry no error.
//
// Being typed buys two corrections over the AST version: panic is resolved
// to the builtin (a local function named panic no longer counts), and
// "returns an error" means any result assignable to the error interface
// (a function returning *serve.Error satisfies the convention even though
// no result is spelled `error`).
//
// Both kinds are ratcheted: keys are "<kind> <pkg>.<func>" — the exact
// baseline.txt grammar tealint used — counted per function, compared
// against cmd/teavet's shared baseline, so the suite fails only on findings
// beyond the recorded state and ratchets downward without a flag-day
// cleanup.
package failsem

import (
	"go/ast"
	"go/types"

	"github.com/lsc-tea/tea/internal/analysis/driver"
)

// DefaultGuarded are the packages whose failure semantics the check owns,
// matched as trailing import-path segments.
var DefaultGuarded = []string{
	"internal/core",
	"internal/optim",
	"internal/trace",
	"internal/isa",
	"internal/serve",
	"internal/serve/client",
	"internal/faultinject",
}

// Analyzer guards DefaultGuarded.
var Analyzer = New(DefaultGuarded)

// New builds the analyzer over a custom guarded-package list (fixtures pass
// their own).
func New(guarded []string) *driver.Analyzer {
	return &driver.Analyzer{
		Name: "failsem",
		Doc:  "ratchet panic call sites and exported no-error functions in the packages owning the repo's failure semantics",
		Run: func(pass *driver.Pass) error {
			return run(pass, guarded)
		},
	}
}

func run(pass *driver.Pass, guarded []string) error {
	errType := types.Universe.Lookup("error").Type()
	for _, p := range pass.Prog.Packages {
		if !isGuarded(p.ImportPath, guarded) {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := funcKey(p, fd)
				if fd.Body != nil {
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
							if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
								pass.Report(call.Pos(), "panic "+key,
									"panic in %s: convert to a structured error (guarded package)", key)
							}
						}
						return true
					})
				}
				if fd.Name.IsExported() && !returnsError(p, fd, errType) {
					pass.Report(fd.Pos(), "noerror "+key,
						"exported %s returns no error; new API in guarded packages should report failures as errors", key)
				}
			}
		}
	}
	return nil
}

// isGuarded matches the import path against the guarded patterns.
func isGuarded(path string, guarded []string) bool {
	for _, g := range guarded {
		if driver.PathMatches(path, g) {
			return true
		}
	}
	return false
}

// returnsError reports whether any declared result is assignable to the
// predeclared error interface.
func returnsError(p *driver.Package, fd *ast.FuncDecl, errType types.Type) bool {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if types.AssignableTo(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// funcKey renders pkg.Func or pkg.(*Recv).Method — the tealint baseline
// grammar, kept verbatim so old baselines read naturally.
func funcKey(p *driver.Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return p.Name + "." + recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return p.Name + "." + fd.Name.Name
}

func recvString(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(e.X) + ")"
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvString(e.X)
	case *ast.IndexListExpr:
		return recvString(e.X)
	default:
		return "?"
	}
}
