// Package core is guarded: panic call sites and exported no-error
// functions are ratcheted here.
package core

import "errors"

// Engine exists to exercise the method key grammar.
type Engine struct{}

// Run panics on bad input — the call site is flagged under the
// pkg.(*Recv).Method key grammar.
func (e *Engine) Run(n int) error {
	if n < 0 {
		panic("negative") // want `panic in core\.\(\*Engine\)\.Run: convert to a structured error`
	}
	return nil
}

// Reset is exported and reports nothing.
func Reset() { // want `exported core\.Reset returns no error`
	cleanup()
}

// Parse returns a plain error: the convention is satisfied.
func Parse(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	return len(s), nil
}

// CodedError is a concrete error type.
type CodedError struct{ Code int }

// Error implements error; it is itself an exported method with no error
// result, so the ratchet counts it (the repo baselines these).
func (e *CodedError) Error() string { return "coded" } // want `exported core\.\(\*CodedError\)\.Error returns no error`

// Load returns a concrete *CodedError, not the error interface; typed
// analysis sees it is assignable to error, so no finding.
func Load(n int) (int, *CodedError) {
	if n < 0 {
		return 0, &CodedError{Code: n}
	}
	return n, nil
}

// cleanup is unexported: the no-error convention only binds exported API.
func cleanup() {}

// Shadowed calls a local variable named panic — the typed check resolves
// the builtin and must not flag it.
func Shadowed() error {
	panic := func(string) {}
	panic("not the builtin")
	return nil
}
