// Package free is outside the guarded list: nothing here is flagged.
package free

// Explode panics and returns no error, but the package owns no failure
// semantics, so failsem stays silent.
func Explode() {
	panic("unguarded")
}
