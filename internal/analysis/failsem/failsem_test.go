package failsem_test

import (
	"testing"

	"github.com/lsc-tea/tea/internal/analysis/analysistest"
	"github.com/lsc-tea/tea/internal/analysis/driver"
	"github.com/lsc-tea/tea/internal/analysis/failsem"
)

// TestGuarded checks both finding kinds against the fixture wants and the
// tealint-compatible key grammar; the fixture also carries the non-flagging
// cases (error-returning API, concrete error types, unexported helpers, a
// shadowed panic, and an unguarded package that panics freely).
func TestGuarded(t *testing.T) {
	a := failsem.New([]string{"internal/core"})
	diags := analysistest.Run(t, "testdata/src/failfix", a)
	want := map[string]bool{
		"failsem panic core.(*Engine).Run":         true,
		"failsem noerror core.Reset":               true,
		"failsem noerror core.(*CodedError).Error": true,
	}
	got := make(map[string]bool)
	for _, d := range diags {
		got[d.Key] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing key %q (got %v)", k, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("unexpected keys: got %v, want %v", got, want)
	}
}

// TestUnguarded runs with a guard list matching nothing: the same fixture
// must be silent, proving findings come from the guard match, not the
// constructs. analysistest would demand the `// want` comments still match,
// so this drives the driver directly.
func TestUnguarded(t *testing.T) {
	prog, err := driver.Load("testdata/src/failfix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(prog, failsem.New([]string{"does/not/exist"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("unguarded run produced %d diagnostics: %v", len(diags), diags)
	}
}
