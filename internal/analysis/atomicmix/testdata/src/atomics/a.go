// Package a exercises both atomicmix finding kinds plus every sanctioned
// access shape: atomic-call arguments, atomic-method receivers, &field
// pointer hand-offs, constructor initialization and never-atomic fields.
package a

import "sync/atomic"

// Counter mixes a legacy uint64 driven through sync/atomic functions with
// an atomic.Uint64 and a field never touched atomically.
type Counter struct {
	n    uint64
	hits atomic.Uint64
	cold int
}

// NewCounter initializes plainly: constructors are exempt because the
// value is not shared yet.
func NewCounter(start uint64) *Counter {
	c := &Counter{}
	c.n = start
	c.cold = 1
	return c
}

// Add is the sanctioned access pattern for both fields.
func (c *Counter) Add() {
	atomic.AddUint64(&c.n, 1)
	c.hits.Add(1)
}

// Bad reads an atomically-driven field without sync/atomic.
func (c *Counter) Bad() uint64 {
	return c.n // want `field a\.Counter\.n is accessed atomically elsewhere; this plain access races it`
}

// BadStore writes it plainly, which races Add.
func (c *Counter) BadStore(v uint64) {
	c.n = v // want `field a\.Counter\.n is accessed atomically elsewhere`
}

// BadCopy copies an atomic-typed field by value, forking its identity.
func (c *Counter) BadCopy() atomic.Uint64 {
	return c.hits // want `field a\.Counter\.hits has atomic type sync/atomic\.Uint64; copying it reads the word non-atomically`
}

// Ok loads through sync/atomic.
func (c *Counter) Ok() uint64 {
	return atomic.LoadUint64(&c.n)
}

// OkPtr hands the atomic field out by pointer — no value copy.
func (c *Counter) OkPtr() *atomic.Uint64 {
	return &c.hits
}

// OkCold touches a field no one accesses atomically.
func (c *Counter) OkCold() int {
	return c.cold
}
