module atomics

go 1.22
