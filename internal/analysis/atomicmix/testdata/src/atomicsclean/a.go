// Package a is the non-flagging control: disciplined atomic use — method
// receivers, pointer hand-offs, pointer-to-atomic copies — must stay clean.
package a

import "sync/atomic"

// Gauge uses the atomic struct types exclusively through their methods.
type Gauge struct {
	val  atomic.Int64
	stop *atomic.Bool
}

// NewGauge wires a shared stop flag; copying the *atomic.Bool pointer is
// harmless and must not be flagged.
func NewGauge(stop *atomic.Bool) *Gauge {
	return &Gauge{stop: stop}
}

// Set stores through the atomic method.
func (g *Gauge) Set(v int64) {
	if g.stop.Load() {
		return
	}
	g.val.Store(v)
}

// Get loads through the atomic method.
func (g *Gauge) Get() int64 {
	return g.val.Load()
}

// Stop shares the pointer, not the value.
func (g *Gauge) Stop() *atomic.Bool {
	return g.stop
}
