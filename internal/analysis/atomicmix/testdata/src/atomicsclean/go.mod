module atomicsclean

go 1.22
