// Package atomicmix flags struct fields that are accessed both atomically
// and with plain loads/stores — the mixed-access race class in
// internal/pipeline's rings and internal/serve's counters that `go test
// -race` only catches when the schedule happens to interleave the two
// access kinds. The Go memory model gives a plain access racing an atomic
// one undefined behaviour; the repo's rule is: once a field is touched
// through sync/atomic anywhere, every access outside its constructors must
// be atomic.
//
// Two finding kinds:
//
//	plain — a field passed to a sync/atomic function (atomic.AddUint64(&f)
//	        etc.) somewhere is read or written directly elsewhere. Accesses
//	        inside functions whose name starts with New/new/make (value
//	        construction, before the value is shared) are exempt.
//	copy  — a field of one of the sync/atomic struct types (atomic.Uint64,
//	        atomic.Pointer[T], ...) is used other than as a method-call
//	        receiver or an operand of &: copying such a value reads its
//	        word non-atomically and forks its identity.
//
// Keys are "<pkg>.<Struct>.<field> <kind>", position-independent so the
// cmd/teavet ratchet survives unrelated edits.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/lsc-tea/tea/internal/analysis/driver"
)

// Analyzer is the mixed atomic/plain access check.
var Analyzer = &driver.Analyzer{
	Name: "atomicmix",
	Doc:  "flag plain accesses to struct fields that are elsewhere accessed through sync/atomic",
	Run:  run,
}

func run(pass *driver.Pass) error {
	prog := pass.Prog

	// Pass 1: collect every field whose address reaches a sync/atomic
	// function, and every selector already accounted as a sanctioned use —
	// the &f of an atomic call, the receiver of an atomic-type method
	// call, or a bare &f handing the field out by pointer.
	atomicFields := make(map[*types.Var]string) // field -> rendered key
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isAtomicFuncCall(p.Info, n) {
						for _, arg := range n.Args {
							if sel := addressedField(p.Info, arg); sel != nil {
								fld := fieldOf(p.Info, sel)
								atomicFields[fld] = fieldKey(fld)
								sanctioned[sel] = true
							}
						}
					}
				case *ast.SelectorExpr:
					// Receiver of an atomic-type method call: p.pub.Load().
					if isAtomicMethod(p.Info, n) {
						if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && fieldOf(p.Info, sel) != nil {
							sanctioned[sel] = true
						}
					}
				case *ast.UnaryExpr:
					// &p.pub passes the field by pointer, not by value.
					if n.Op == token.AND {
						if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && fieldOf(p.Info, sel) != nil {
							sanctioned[sel] = true
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: any selector resolving to an atomically-accessed field that
	// pass 1 did not sanction is a plain access; any unsanctioned selector
	// to a field of a sync/atomic struct type is a value copy.
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || isConstructorName(fd.Name.Name) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || sanctioned[sel] {
						return true
					}
					fld := fieldOf(p.Info, sel)
					if fld == nil {
						return true
					}
					if key, ok := atomicFields[fld]; ok {
						pass.Report(sel.Pos(), key+" plain",
							"field %s is accessed atomically elsewhere; this plain access races it (use sync/atomic or move into a constructor)", key)
					} else if isAtomicStructType(fld.Type()) {
						pass.Report(sel.Pos(), fieldKey(fld)+" copy",
							"field %s has atomic type %s; copying it reads the word non-atomically", fieldKey(fld), fld.Type())
					}
					return true
				})
			}
		}
	}
	return nil
}

// addressedField unwraps &expr down to a field selector, or returns nil.
func addressedField(info *types.Info, arg ast.Expr) *ast.SelectorExpr {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok || fieldOf(info, sel) == nil {
		return nil
	}
	return sel
}

// isAtomicFuncCall reports whether the call invokes a sync/atomic
// package-level function (AddUint64, LoadPointer, ...).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// isAtomicMethod reports whether the selector names a method of one of the
// sync/atomic struct types (Uint64.Load, Pointer[T].Store, ...).
func isAtomicMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	fn := s.Obj().(*types.Func)
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicStructType reports whether t is one of the sync/atomic struct
// types. Pointers to them are deliberately not unwrapped: copying a
// *atomic.Bool copies the pointer, which is harmless.
func isAtomicStructType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		if alias, ok := t.(*types.Alias); ok {
			return isAtomicStructType(types.Unalias(alias))
		}
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isConstructorName exempts value-construction helpers, where the value is
// not yet shared and plain initialization is the idiom.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "make") || name == "init"
}

// fieldKey renders pkg.Struct.field.
func fieldKey(fld *types.Var) string {
	pkg := "?"
	if fld.Pkg() != nil {
		pkg = fld.Pkg().Name()
	}
	owner := "?"
	if named := owningNamed(fld); named != nil {
		owner = named.Obj().Name()
	}
	return pkg + "." + owner + "." + fld.Name()
}

// owningNamed finds the named struct type declaring the field by scanning
// the field's package scope (types.Var carries no back-pointer). Fields of
// unnamed (anonymous) struct types come back nil and render as "?".
func owningNamed(fld *types.Var) *types.Named {
	if fld.Pkg() == nil {
		return nil
	}
	scope := fld.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return named
			}
		}
	}
	return nil
}
