package atomicmix_test

import (
	"testing"

	"github.com/lsc-tea/tea/internal/analysis/analysistest"
	"github.com/lsc-tea/tea/internal/analysis/atomicmix"
)

// TestFlagging checks both finding kinds against the fixture's `// want`
// expectations and the position-independent ratchet-key shape.
func TestFlagging(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/atomics", atomicmix.Analyzer)
	want := map[string]int{
		"atomicmix a.Counter.n plain":   2,
		"atomicmix a.Counter.hits copy": 1,
	}
	got := make(map[string]int)
	for _, d := range diags {
		got[d.Key]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("key %q: got %d findings, want %d (all: %v)", k, got[k], n, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("unexpected ratchet keys: got %v, want %v", got, want)
	}
}

// TestClean verifies disciplined atomic use — method calls, &field
// hand-offs, pointer-to-atomic copies — produces no findings.
func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata/src/atomicsclean", atomicmix.Analyzer); len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics", len(diags))
	}
}
