// Package hotalloc flags allocation-inducing constructs inside the
// repository's declared hot paths — the static complement to the runtime
// zero-alloc gates (testing.AllocsPerRun assertions and the benchdiff
// -zero-allocs CI checks), which prove the steady state but only for the
// schedules and inputs a bench happens to drive.
//
// A function is hot when its doc comment carries the //tea:hotpath
// directive, or when it is statically reachable from a hot function through
// direct calls inside the module (the "intra-module callee closure").
// Indirect calls — function values, interface method dispatch — are not
// followed; the kernels this guards were designed devirtualized precisely so
// the closure is static.
//
// Flagged constructs (each a distinct ratchet key suffix):
//
//	make, new        — explicit heap/backing-store allocation
//	append           — growth reallocates; zero-alloc code pre-sizes
//	composite        — &T{...} or slice/map literals (value struct
//	                   literals are not flagged: they are stores)
//	mapwrite         — map assignment may grow buckets
//	iface            — boxing a concrete value into an interface
//	closure          — a func literal capturing variables
//	deferloop        — defer inside a loop is heap-allocated
//	gostmt           — spawning a goroutine in a hot path
//	fmt              — any call into package fmt
//	strconcat        — non-constant string concatenation
//	strconv          — string<->[]byte/[]rune conversion copies
//	variadic         — calling a variadic function materializes the
//	                   argument slice
//
// Every finding is keyed "<pkg>.<func> <construct>" so cmd/teavet's ratchet
// can absorb deliberate slow-branch allocations (with a justification in
// the baseline) while any new construct in a hot closure fails CI.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/lsc-tea/tea/internal/analysis/driver"
)

// Directive marks a function as a hot-path root.
const Directive = "//tea:hotpath"

// Analyzer is the hot-path allocation check.
var Analyzer = &driver.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-inducing constructs in //tea:hotpath functions and their static intra-module callee closure",
	Run:  run,
}

// hotFunc is one member of the hot closure.
type hotFunc struct {
	pkg  *driver.Package
	decl *ast.FuncDecl
	fn   *types.Func
	root string // the //tea:hotpath root this function is reached from
}

func run(pass *driver.Pass) error {
	prog := pass.Prog

	// Seed the worklist with the annotated roots.
	var work []*hotFunc
	seen := make(map[*types.Func]bool)
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !isHotDirective(fd.Doc) {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok || seen[fn] {
					continue
				}
				seen[fn] = true
				work = append(work, &hotFunc{pkg: p, decl: fd, fn: fn, root: funcKey(p, fd)})
			}
		}
	}

	// Breadth-first closure over direct intra-module callees; each function
	// is checked once, attributed to the first root that reached it.
	for len(work) > 0 {
		h := work[0]
		work = work[1:]
		for _, callee := range check(pass, h) {
			if seen[callee] {
				continue
			}
			cp, cd := prog.FuncDecl(callee)
			if cd == nil || cd.Body == nil {
				continue // outside the module (stdlib) or bodyless
			}
			seen[callee] = true
			work = append(work, &hotFunc{pkg: cp, decl: cd, fn: callee, root: h.root})
		}
	}
	return nil
}

// isHotDirective reports whether the doc group carries //tea:hotpath.
func isHotDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// check walks one hot function, reporting its allocation constructs and
// returning the direct intra-module callees to pull into the closure.
func check(pass *driver.Pass, h *hotFunc) []*types.Func {
	if h.decl.Body == nil {
		return nil
	}
	w := &walker{
		pass: pass,
		pkg:  h.pkg,
		info: h.pkg.Info,
		h:    h,
		key:  funcKey(h.pkg, h.decl),
	}
	w.sig, _ = h.fn.Type().(*types.Signature)
	w.stmtList(h.decl.Body.List, 0)
	return w.callees
}

// walker scans one function body, tracking loop depth for the defer check
// and stopping at func-literal boundaries (a literal's body only runs when
// called; the literal itself is flagged when it captures).
type walker struct {
	pass    *driver.Pass
	pkg     *driver.Package
	info    *types.Info
	h       *hotFunc
	key     string
	sig     *types.Signature
	callees []*types.Func
}

func (w *walker) report(pos token.Pos, construct, format string, args ...any) {
	args = append(args, w.h.root)
	w.pass.Report(pos, w.key+" "+construct, format+" in hot path (root %s)", args...)
}

func (w *walker) stmtList(list []ast.Stmt, loop int) {
	for _, s := range list {
		w.stmt(s, loop)
	}
}

func (w *walker) stmt(s ast.Stmt, loop int) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.IncDecStmt:
		w.mapWriteLHS(s.X)
		w.expr(s.X)
	case *ast.DeferStmt:
		if loop > 0 {
			w.report(s.Pos(), "deferloop", "defer inside a loop allocates per iteration")
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		w.report(s.Pos(), "gostmt", "go statement spawns a goroutine")
		w.expr(s.Call)
	case *ast.ReturnStmt:
		if w.sig != nil && w.sig.Results().Len() == len(s.Results) {
			for i, r := range s.Results {
				w.boxed(w.sig.Results().At(i).Type(), r)
			}
		}
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.BlockStmt:
		w.stmtList(s.List, loop)
	case *ast.IfStmt:
		w.stmt(s.Init, loop)
		w.expr(s.Cond)
		w.stmt(s.Body, loop)
		w.stmt(s.Else, loop)
	case *ast.ForStmt:
		w.stmt(s.Init, loop)
		w.expr(s.Cond)
		w.stmt(s.Post, loop+1)
		w.stmt(s.Body, loop+1)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmt(s.Body, loop+1)
	case *ast.SwitchStmt:
		w.stmt(s.Init, loop)
		w.expr(s.Tag)
		w.stmt(s.Body, loop)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, loop)
		w.stmt(s.Assign, loop)
		w.stmt(s.Body, loop)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmtList(s.Body, loop)
	case *ast.SelectStmt:
		w.stmt(s.Body, loop)
	case *ast.CommClause:
		w.stmt(s.Comm, loop)
		w.stmtList(s.Body, loop)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, loop)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if i < len(vs.Names) {
						w.boxed(w.info.TypeOf(vs.Names[i]), v)
					}
					w.expr(v)
				}
			}
		}
	}
}

// assign flags map writes, string-append concatenation and interface
// boxing on the statement, then descends into both sides.
func (w *walker) assign(s *ast.AssignStmt) {
	for _, l := range s.Lhs {
		w.mapWriteLHS(l)
	}
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isString(w.info.TypeOf(s.Lhs[0])) {
		w.report(s.Pos(), "strconcat", "string += concatenation allocates")
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			w.boxed(w.info.TypeOf(s.Lhs[i]), s.Rhs[i])
		}
	}
	for _, e := range s.Rhs {
		w.expr(e)
	}
	for _, e := range s.Lhs {
		if _, ok := e.(*ast.Ident); !ok {
			w.expr(e)
		}
	}
}

// mapWriteLHS flags assignment through a map index.
func (w *walker) mapWriteLHS(l ast.Expr) {
	ix, ok := l.(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := w.info.TypeOf(ix.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			w.report(l.Pos(), "mapwrite", "map write may grow the bucket array")
		}
	}
}

// expr inspects one expression tree.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if caps := w.captures(n); len(caps) > 0 {
				w.report(n.Pos(), "closure", "func literal captures %s and allocates", strings.Join(caps, ", "))
			}
			return false // the body runs only when called
		case *ast.CompositeLit:
			w.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.report(n.Pos(), "composite", "&composite literal escapes to the heap")
					// The literal itself was already reported; don't
					// double-flag slice/map element literals below it.
					w.exprChildren(cl)
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(w.info.TypeOf(n)) && w.info.Types[n].Value == nil {
				w.report(n.Pos(), "strconcat", "string concatenation allocates")
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// exprChildren walks a composite literal's elements without re-flagging the
// literal node itself.
func (w *walker) exprChildren(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		w.expr(el)
	}
}

// composite flags literals whose underlying type has a backing store.
func (w *walker) composite(n *ast.CompositeLit) {
	t := w.info.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		w.report(n.Pos(), "composite", "slice literal allocates its backing array")
	case *types.Map:
		w.report(n.Pos(), "composite", "map literal allocates")
	}
}

// call classifies one call: builtin allocators, conversions, fmt, variadic
// materialization, interface-boxing arguments, and (for plain functions and
// methods declared in the module) closure growth.
func (w *walker) call(n *ast.CallExpr) {
	// Conversions: T(x).
	if tv, ok := w.info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
		w.conversion(n, tv.Type)
		return
	}

	switch fun := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		if b, ok := w.info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.report(n.Pos(), "make", "make allocates")
			case "new":
				w.report(n.Pos(), "new", "new allocates")
			case "append":
				w.report(n.Pos(), "append", "append may grow and reallocate")
			}
			return
		}
	}

	if fn := w.callee(n); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			w.report(n.Pos(), "fmt", "fmt.%s call formats through interfaces", fn.Name())
		}
		w.callees = append(w.callees, fn)
	}

	sig, _ := w.info.TypeOf(n.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if n.Ellipsis.IsValid() {
				continue // the slice is passed through, not built
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			w.boxed(pt, arg)
		}
	}
	if sig.Variadic() && !n.Ellipsis.IsValid() && len(n.Args) >= params.Len() {
		w.report(n.Pos(), "variadic", "variadic call materializes its argument slice")
	}
}

// conversion flags string<->byte/rune-slice copies and boxing conversions.
func (w *walker) conversion(n *ast.CallExpr, dst types.Type) {
	src := w.info.TypeOf(n.Args[0])
	if src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if isString(dst) && isByteOrRuneSlice(su) || isString(src) && isByteOrRuneSlice(du) {
		// Constant string conversions are materialized at compile time.
		if w.info.Types[n].Value == nil {
			w.report(n.Pos(), "strconv", "string/slice conversion copies")
		}
		return
	}
	w.boxed(dst, n.Args[0])
}

// boxed flags storing a concrete value into an interface-typed destination.
func (w *walker) boxed(dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := w.info.TypeOf(src)
	if st == nil || st == types.Typ[types.UntypedNil] {
		return
	}
	if tv, ok := w.info.Types[src]; ok && tv.IsNil() {
		return
	}
	if _, ok := st.Underlying().(*types.Interface); ok {
		return // interface-to-interface carries the existing box
	}
	w.report(src.Pos(), "iface", "%s value boxed into interface", st)
}

// callee resolves a call to the *types.Func it invokes when that is
// statically known (plain function or concrete method).
func (w *walker) callee(n *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		if fn, ok := w.info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := w.info.Uses[fun.Sel].(*types.Func); ok {
			// Interface-method calls have no body to follow; still return
			// the func so fmt detection works, but FuncDecl lookup will
			// come back empty for them.
			return fn
		}
	}
	return nil
}

// captures lists the variables a func literal closes over: identifiers
// resolving to non-field, non-package-level variables declared outside the
// literal.
func (w *walker) captures(fl *ast.FuncLit) []string {
	var out []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Pkg() == nil {
			return true
		}
		// Package-level variables are not captured through the closure.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() < fl.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(u types.Type) bool {
	s, ok := u.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// funcKey renders pkg.Func or pkg.(*Recv).Method — the same shape the old
// tealint baseline used, so keys stay human-scannable.
func funcKey(p *driver.Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return p.Name + "." + recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return p.Name + "." + fd.Name.Name
}

func recvString(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(e.X) + ")"
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvString(e.X)
	case *ast.IndexListExpr:
		return recvString(e.X)
	default:
		return "?"
	}
}
