package hotalloc_test

import (
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/analysis/analysistest"
	"github.com/lsc-tea/tea/internal/analysis/hotalloc"
)

// TestFlagging checks every construct class against the fixture's `// want`
// expectations, plus the ratchet-key shape and closure attribution.
func TestFlagging(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src/hot", hotalloc.Analyzer)
	if len(diags) == 0 {
		t.Fatal("no diagnostics from the flagging fixture")
	}
	keys := make(map[string]bool)
	for _, d := range diags {
		if d.Key == "" {
			t.Errorf("hotalloc produced an unkeyed (hard) diagnostic: %s", d.Message)
		}
		keys[d.Key] = true
	}
	// The closure member is keyed under its own name, not the root's.
	if !keys["hotalloc a.callee mapwrite"] {
		t.Errorf("missing closure-callee key %q in %v", "hotalloc a.callee mapwrite", keys)
	}
	if !keys["hotalloc a.Hot make"] {
		t.Errorf("missing root key %q in %v", "hotalloc a.Hot make", keys)
	}
	// The callee's finding is attributed to the root that reached it.
	for _, d := range diags {
		if d.Key == "hotalloc a.callee mapwrite" && !strings.Contains(d.Message, "(root a.Hot)") {
			t.Errorf("callee finding not attributed to root a.Hot: %s", d.Message)
		}
	}
}

// TestClean runs the analyzer over a realistic pre-sized kernel that must
// produce no findings (the fixture has no want comments, so any diagnostic
// fails the run).
func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, "testdata/src/hotclean", hotalloc.Analyzer); len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics", len(diags))
	}
}
