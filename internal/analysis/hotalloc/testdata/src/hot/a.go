// Package a exercises every hotalloc construct class from a //tea:hotpath
// root and checks the closure follows direct calls.
package a

var (
	sink      []int
	sinkMap   = map[string]int{}
	sinkIface any
	sinkStr   string
)

type pair struct{ x, y int }

// Hot is a hot-path root: builtin allocators plus a direct callee.
//
//tea:hotpath
func Hot(n int) {
	s := make([]int, n)    // want `make allocates`
	p := new(int)          // want `new allocates`
	sink = append(sink, n) // want `append may grow and reallocate`
	_ = s
	_ = p
	callee(n)
}

// callee is not annotated; it is hot because Hot calls it directly.
func callee(n int) {
	sinkMap["k"] = n // want `map write may grow the bucket array`
}

// Cold allocates freely: it is neither annotated nor reachable from a
// root, so nothing in it is flagged.
func Cold(n int) {
	_ = make([]int, n)
	sinkMap["c"] = n
	_ = []int{n}
}
