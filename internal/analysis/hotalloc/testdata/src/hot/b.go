package a

import "fmt"

// HotMore covers the remaining construct classes: composites, boxing,
// string building, conversions, closures, defer-in-loop, go statements
// and fmt/variadic calls. Value struct literals and capture-free func
// literals appear as non-flagging controls.
//
//tea:hotpath
func HotMore(n int, bs []byte) {
	v := []int{1, 2, n} // want `slice literal allocates its backing array`
	_ = v
	m := map[int]int{} // want `map literal allocates`
	_ = m
	pp := &pair{x: n} // want `&composite literal escapes to the heap`
	_ = pp
	vp := pair{x: n, y: 2} // value struct literal: a store, not flagged
	_ = vp
	sinkIface = n                // want `int value boxed into interface`
	sinkStr += "x"               // want `string \+= concatenation allocates`
	sinkStr = sinkStr + "y"      // want `string concatenation allocates`
	_ = string(bs)               // want `string/slice conversion copies`
	f := func() int { return n } // want `func literal captures n and allocates`
	_ = f
	g := func() int { return 1 } // capture-free literal: not flagged
	_ = g
	for i := 0; i < n; i++ {
		defer cleanup() // want `defer inside a loop allocates per iteration`
	}
	go cleanup()   // want `go statement spawns a goroutine`
	fmt.Println(n) // want `fmt\.Println call formats through interfaces` `variadic call materializes its argument slice` `int value boxed into interface`
}

func cleanup() {}
