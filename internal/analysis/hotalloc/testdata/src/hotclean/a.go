// Package a is the non-flagging control: a realistic pre-sized kernel loop
// under //tea:hotpath that hotalloc must pass without findings.
package a

// Table is a pre-sized flat transition table.
type Table struct {
	next []int32
	buf  [64]uint64
}

// Advance walks edges through the table writing into caller-owned storage:
// index reads/writes, slicing an existing array, value-struct copies and a
// direct call to a clean helper, none of which allocate.
//
//tea:hotpath
func (t *Table) Advance(edges []int32, out []uint64) int {
	n := 0
	scratch := t.buf[:0]
	for i, e := range edges {
		if int(e) >= len(t.next) {
			break
		}
		s := t.next[e]
		if i < len(out) {
			out[i] = uint64(s)
		}
		if len(scratch) < cap(scratch) {
			scratch = scratch[:len(scratch)+1]
			scratch[len(scratch)-1] = uint64(s)
		}
		n += step(int(s))
	}
	return n
}

// step is in the hot closure and stays allocation-free.
func step(s int) int {
	if s < 0 {
		return 0
	}
	return 1
}
