module hotclean

go 1.22
