package driver_test

import (
	"go/ast"
	"go/token"
	"go/types"
	"testing"

	"github.com/lsc-tea/tea/internal/analysis/driver"
)

// load loads the mini fixture once per test binary.
func load(t *testing.T) *driver.Program {
	t.Helper()
	prog, err := driver.Load("testdata/src/mini")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return prog
}

// TestLoad checks the loader's core guarantees: both module packages are
// present in dependency order, fully typechecked, with stdlib imports
// resolved from export data.
func TestLoad(t *testing.T) {
	prog := load(t)
	if len(prog.Packages) != 2 {
		t.Fatalf("got %d packages, want 2", len(prog.Packages))
	}
	if prog.Packages[0].ImportPath != "mini/lib" || prog.Packages[1].ImportPath != "mini" {
		t.Errorf("dependency order violated: %s before %s",
			prog.Packages[0].ImportPath, prog.Packages[1].ImportPath)
	}
	lib := prog.Package("mini/lib")
	if lib == nil {
		t.Fatal("Package(mini/lib) = nil")
	}
	// Twice's stdlib call must have typechecked against real export data.
	obj := lib.Pkg.Scope().Lookup("Twice")
	if obj == nil {
		t.Fatal("lib.Twice not in package scope")
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		t.Errorf("lib.Twice signature wrong: %v", sig)
	}
	if prog.Package("strings") != nil {
		t.Error("stdlib package leaked into the module package list")
	}
}

// TestFuncDecl checks cross-package function and method resolution, and
// that stdlib functions come back (nil, nil).
func TestFuncDecl(t *testing.T) {
	prog := load(t)
	main := prog.Package("mini")
	var twice, repeat *types.Func
	for _, f := range main.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn, ok := main.Info.Uses[sel.Sel].(*types.Func); ok {
				switch fn.Name() {
				case "Twice":
					twice = fn
				}
			}
			return true
		})
	}
	if twice == nil {
		t.Fatal("did not resolve the lib.Twice call in package mini")
	}
	pkg, decl := prog.FuncDecl(twice)
	if pkg == nil || decl == nil || pkg.ImportPath != "mini/lib" || decl.Name.Name != "Twice" {
		t.Fatalf("FuncDecl(Twice) = %v, %v", pkg, decl)
	}
	// A stdlib function has no declaration in the module.
	strPkg := pkg.Pkg.Imports()[0] // strings, lib's only import
	repeat, _ = strPkg.Scope().Lookup("Repeat").(*types.Func)
	if repeat == nil {
		t.Fatal("strings.Repeat not importable")
	}
	if p, d := prog.FuncDecl(repeat); p != nil || d != nil {
		t.Errorf("FuncDecl(strings.Repeat) = %v, %v; want nil, nil", p, d)
	}
}

// TestReportAndRun checks key prefixing, hard findings and position sorting
// through the public Run path.
func TestReportAndRun(t *testing.T) {
	prog := load(t)
	a := &driver.Analyzer{
		Name: "demo",
		Doc:  "test analyzer",
		Run: func(pass *driver.Pass) error {
			// Report out of order to exercise the sort; one keyed, one hard,
			// one position-less.
			for _, p := range pass.Prog.Packages {
				for _, f := range p.Files {
					for _, d := range f.Decls {
						if fd, ok := d.(*ast.FuncDecl); ok {
							pass.Report(fd.Pos(), "site "+fd.Name.Name, "func %s", fd.Name.Name)
						}
					}
				}
			}
			pass.Report(token.NoPos, "", "module-level hard finding")
			return nil
		},
	}
	diags, err := driver.Run(prog, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics unsorted: %v before %v", a, b)
		}
	}
	var hard, keyed int
	for _, d := range diags {
		if d.Key == "" {
			hard++
			continue
		}
		keyed++
		if want := "demo site "; len(d.Key) < len(want) || d.Key[:len(want)] != want {
			t.Errorf("key %q not prefixed with analyzer name", d.Key)
		}
	}
	if hard != 1 {
		t.Errorf("got %d hard findings, want 1", hard)
	}
	if keyed == 0 {
		t.Error("no keyed findings")
	}
}

// TestPathMatches pins the guard-pattern semantics.
func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"internal/core", "internal/core", true},
		{"github.com/lsc-tea/tea/internal/core", "internal/core", true},
		{"selftest/internal/core", "internal/core", true},
		{"internal/coreplus", "internal/core", false},
		{"notinternal/core", "internal/core", false},
		{"internal/core/sub", "internal/core", false},
	}
	for _, c := range cases {
		if got := driver.PathMatches(c.path, c.pattern); got != c.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}
