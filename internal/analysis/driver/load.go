package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *listErr
}

type listErr struct {
	Err string
}

// Load typechecks every package the patterns name inside the module rooted
// at (or containing) dir, plus nothing else: dependencies — the standard
// library and, for fixture modules, nothing more — are imported from the
// compiler export data `go list -export` leaves in the build cache, so the
// loader needs no network, no GOPATH layout and no third-party machinery.
// Non-test files only, parsed with comments (analyzers read directives).
//
// Packages come back in dependency order, so an analyzer walking
// Program.Packages sees a callee's package before its callers'.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", dir, err, errb.String())
	}

	var module []*listPkg
	exports := make(map[string]string)
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", dir, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: package %s: %s", dir, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			pp := p
			module = append(module, &pp)
		}
	}
	if len(module) == 0 {
		return nil, fmt.Errorf("go list %s: no module packages matched %v", dir, patterns)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package, len(module)),
	}

	// Imports resolve first against the module packages already typechecked
	// (dependency order guarantees they exist by the time a dependent needs
	// them), then against export data from the build cache.
	gcLookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	gc := importer.ForCompiler(prog.Fset, "gc", gcLookup)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if p := prog.byPath[path]; p != nil {
			return p.Pkg, nil
		}
		return gc.Import(path)
	})

	sizes := types.SizesFor("gc", runtime.GOARCH)
	for _, lp := range module {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(lp.Dir, name), err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %v", lp.ImportPath, err)
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Files:      files,
			Pkg:        tpkg,
			Info:       info,
		}
		prog.Packages = append(prog.Packages, p)
		prog.byPath[lp.ImportPath] = p
	}
	return prog, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
