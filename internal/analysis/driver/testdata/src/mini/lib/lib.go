// Package lib is the dependency: the driver must typecheck it before main
// and serve cross-package FuncDecl lookups into it.
package lib

import "strings"

// Twice doubles a string using the stdlib, proving export-data imports
// resolve.
func Twice(s string) string {
	return strings.Repeat(s, 2)
}

// Thing carries a method for the method-index path.
type Thing struct{ N int }

// Bump increments.
func (t *Thing) Bump() { t.N++ }
