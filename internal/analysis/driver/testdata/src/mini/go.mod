module mini

go 1.22
