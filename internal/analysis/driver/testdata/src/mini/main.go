// Package mini is the root package depending on lib.
package mini

import "mini/lib"

// Use exercises a cross-package call.
func Use() string {
	t := lib.Thing{}
	t.Bump()
	return lib.Twice("ab")
}
