// Package driver is the repository's typed static-analysis framework: a
// deliberately small, stdlib-only analogue of golang.org/x/tools/go/analysis
// (which this module does not depend on). It loads a module's packages with
// full type information — parsing the module's own sources and importing
// every dependency, standard library included, from the build cache's
// compiler export data via `go list -export` — and runs Analyzers over the
// result.
//
// Two deliberate deviations from x/tools/go/analysis:
//
//   - Analyzers run module-wide, not per package: a Pass sees the whole
//     Program. The repo's invariants are cross-package by nature (a
//     //tea:hotpath kernel in internal/core calls into internal/obs; the
//     wire-stable constants live in two packages), so module scope replaces
//     the Facts machinery.
//
//   - Diagnostics carry an optional ratchet Key. cmd/teavet aggregates keyed
//     diagnostics into per-key counts compared against a checked-in
//     baseline (the tealint model), so an analyzer can land against an
//     imperfect codebase without a flag-day cleanup; un-keyed diagnostics
//     are hard findings that always fail.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the whole Program and reports
// findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ratchet keys.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the analysis. A returned error is an analyzer failure
	// (exit 2 territory), not a finding.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding (may be a zero Position for findings about
	// absent code, e.g. a removed wire constant).
	Pos token.Position
	// Analyzer is the reporting Analyzer's Name.
	Analyzer string
	// Key is the stable ratchet key ("analyzer rest..."), independent of
	// line numbers so baselines survive unrelated edits. Empty marks a hard
	// finding that no baseline can absorb.
	Key string
	// Message explains the finding.
	Message string
}

// String renders the diagnostic in file:line:col style.
func (d Diagnostic) String() string {
	pos := "-"
	if d.Pos.IsValid() {
		pos = d.Pos.String()
	}
	return fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message)
}

// Pass carries one Analyzer's view of the loaded Program and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Report records a finding at pos with ratchet key key (empty = hard
// finding). The analyzer name is prefixed onto non-empty keys so baselines
// from different analyzers cannot collide.
func (p *Pass) Report(pos token.Pos, key, format string, args ...any) {
	var position token.Position
	if pos.IsValid() {
		position = p.Prog.Fset.Position(pos)
	}
	if key != "" {
		key = p.Analyzer.Name + " " + key
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Key:      key,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes one analyzer over the program and returns its diagnostics
// sorted by position.
func Run(prog *Program, a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Prog: prog}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.SliceStable(pass.diags, func(i, j int) bool {
		a, b := pass.diags[i].Pos, pass.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return pass.diags, nil
}

// Package is one typechecked module package.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Name is the package name (the `package` clause).
	Name string
	// Dir is the directory holding the sources.
	Dir string
	// Files holds the parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info maps syntax to types and objects for Files.
	Info *types.Info
}

// Program is a load result: every package of the target module, typechecked,
// in dependency order (dependencies before dependents).
type Program struct {
	// Fset positions all parsed files.
	Fset *token.FileSet
	// Packages are the module's packages in dependency order.
	Packages []*Package

	byPath  map[string]*Package
	funcIdx map[*types.Func]funcSite // built lazily by FuncDecl
}

type funcSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Package returns the loaded module package with the given import path, or
// nil when the path names a dependency outside the module (or nothing).
func (pr *Program) Package(path string) *Package { return pr.byPath[path] }

// FuncDecl resolves a function object to its declaration inside the module,
// returning (nil, nil) for functions declared outside it (standard library,
// interface methods without bodies). The index over every module function is
// built on first use.
func (pr *Program) FuncDecl(fn *types.Func) (*Package, *ast.FuncDecl) {
	if pr.funcIdx == nil {
		pr.funcIdx = make(map[*types.Func]funcSite)
		for _, p := range pr.Packages {
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						pr.funcIdx[obj] = funcSite{pkg: p, decl: fd}
					}
				}
			}
		}
	}
	site, ok := pr.funcIdx[fn]
	if !ok {
		return nil, nil
	}
	return site.pkg, site.decl
}

// PathMatches reports whether importPath is guarded by pattern: an exact
// match or a trailing path-segment match ("internal/serve" matches
// "github.com/lsc-tea/tea/internal/serve").
func PathMatches(importPath, pattern string) bool {
	return importPath == pattern || strings.HasSuffix(importPath, "/"+pattern)
}
