// Package analysistest runs a driver.Analyzer over a self-contained fixture
// module and checks its diagnostics against `// want` comments in the
// fixture sources — the stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory holding its own go.mod (the go tool ignores it in
// the enclosing module because it lives under testdata/). Expectations are
// written on the offending line:
//
//	m[k] = v // want `map write`
//	x := f() // want `first` `second`
//
// Each backquoted or double-quoted string is a regexp that must match the
// message of a distinct diagnostic reported on that line; diagnostics on a
// line with no matching expectation, and expectations no diagnostic
// matched, both fail the test. Diagnostics with an invalid position (a
// finding about absent code) match `// want:file` expectations declared on
// any line of the named file — pass "-" to match position-less findings.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/analysis/driver"
)

// wantRe captures the expectation strings on a `// want` comment;
// wantFileRe the `// want:FILE` whole-file form.
var (
	wantRe     = regexp.MustCompile("//\\s*want((?:\\s+(?:`[^`]*`|\"[^\"]*\"))+)")
	wantFileRe = regexp.MustCompile("//\\s*want:(\\S+)((?:\\s+(?:`[^`]*`|\"[^\"]*\"))+)")
)

// expectation is one unmatched want regexp.
type expectation struct {
	file string // fixture-relative path
	line int    // 0 for whole-file expectations
	re   *regexp.Regexp
}

// Run loads the fixture module at dir (relative paths resolve against the
// test's working directory), runs the analyzer, and reports any mismatch
// between diagnostics and `// want` expectations as test errors. It returns
// the diagnostics so a test can make further assertions (ratchet keys,
// ordering).
func Run(t *testing.T, dir string, a *driver.Analyzer) []driver.Diagnostic {
	t.Helper()
	prog, err := driver.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := driver.Run(prog, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("resolving %s: %v", dir, err)
	}
	rel := func(path string) string {
		if r, err := filepath.Rel(abs, path); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return path
	}

	var wants []*expectation
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			wants = append(wants, fileWants(t, prog, f, rel)...)
		}
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		file, line := "-", 0
		if d.Pos.IsValid() {
			file, line = rel(d.Pos.Filename), d.Pos.Line
		}
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != file {
				continue
			}
			if w.line != line && w.line != 0 {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s: %s", dir, posLabel(file, line), d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: no diagnostic matched want %q at %s", dir, w.re, posLabel(w.file, w.line))
		}
	}
	return diags
}

func posLabel(file string, line int) string {
	if line == 0 {
		return file
	}
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// fileWants extracts the expectations declared in one parsed file.
// `// want:FILE re...` comments expect diagnostics anywhere in FILE
// (including "-" for position-less findings); plain `// want re...`
// expects them on the comment's own line.
func fileWants(t *testing.T, prog *driver.Program, f *ast.File, rel func(string) string) []*expectation {
	t.Helper()
	var out []*expectation
	tf := prog.Fset.File(f.Pos())
	self := rel(tf.Name())
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			file, line := self, prog.Fset.Position(c.Pos()).Line
			var quoted string
			if m := wantFileRe.FindStringSubmatch(c.Text); m != nil {
				file, line, quoted = m[1], 0, m[2]
			} else if m := wantRe.FindStringSubmatch(c.Text); m != nil {
				quoted = m[1]
			} else {
				continue
			}
			for _, q := range splitQuoted(quoted) {
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", self, line, q, err)
				}
				out = append(out, &expectation{file: file, line: line, re: re})
			}
		}
	}
	return out
}

// splitQuoted pulls the payloads out of a run of `...` / "..." segments.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out
		}
		quote := s[0]
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[2+end:]
	}
}
