package wirelock_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/analysis/analysistest"
	"github.com/lsc-tea/tea/internal/analysis/driver"
	"github.com/lsc-tea/tea/internal/analysis/wirelock"
)

var fixtureLocks = []wirelock.Lock{{PkgName: "wire", TypeName: "Code"}}

// TestClean verifies a golden that matches the source produces no findings.
func TestClean(t *testing.T) {
	a := wirelock.New("testdata/src/wire_ok/golden.json", fixtureLocks)
	if diags := analysistest.Run(t, "testdata/src/wire_ok", a); len(diags) != 0 {
		t.Errorf("matching golden produced %d diagnostics", len(diags))
	}
}

// TestDrift checks all three divergence kinds — removal (anchored on the
// type declaration), renumber and append — and that every wirelock finding
// is hard (unkeyed, so no baseline can absorb it).
func TestDrift(t *testing.T) {
	a := wirelock.New("testdata/src/wire_drift/golden.json", fixtureLocks)
	diags := analysistest.Run(t, "testdata/src/wire_drift", a)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	for _, d := range diags {
		if d.Key != "" {
			t.Errorf("wirelock finding has ratchet key %q; must be hard", d.Key)
		}
	}
}

// TestMissingGolden verifies the analyzer reports a position-less hard
// finding when the golden file has never been created.
func TestMissingGolden(t *testing.T) {
	prog, err := driver.Load("testdata/src/wire_ok")
	if err != nil {
		t.Fatal(err)
	}
	a := wirelock.New(filepath.Join(t.TempDir(), "absent.json"), fixtureLocks)
	diags, err := driver.Run(prog, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "does not exist; run with -update") {
		t.Fatalf("got %v, want one does-not-exist finding", diags)
	}
	if diags[0].Pos.IsValid() {
		t.Errorf("missing-golden finding should be position-less, got %v", diags[0].Pos)
	}
}

// TestUpdate covers the three -update behaviours: creating a fresh golden,
// locking a pure append, and refusing removals/renumbers.
func TestUpdate(t *testing.T) {
	ok, err := driver.Load("testdata/src/wire_ok")
	if err != nil {
		t.Fatal(err)
	}
	drift, err := driver.Load("testdata/src/wire_drift")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("create", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "golden.json")
		if err := wirelock.Update(path, ok, fixtureLocks); err != nil {
			t.Fatal(err)
		}
		g, err := wirelock.ReadGolden(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Groups) != 1 || len(g.Groups[0].Values) != 3 {
			t.Fatalf("created golden has wrong shape: %+v", g)
		}
		diags, err := driver.Run(ok, wirelock.New(path, fixtureLocks))
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Errorf("freshly created golden still yields %d findings", len(diags))
		}
	})

	t.Run("append", func(t *testing.T) {
		// Golden agrees with the drift source except for the appended
		// CodeNew; -update must lock it.
		path := filepath.Join(t.TempDir(), "golden.json")
		subset := `{"groups":[{"package":"wire","type":"Code","values":[{"name":"CodeOK","value":0},{"name":"CodeSlow","value":5}]}]}`
		if err := os.WriteFile(path, []byte(subset), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := wirelock.Update(path, drift, fixtureLocks); err != nil {
			t.Fatal(err)
		}
		g, err := wirelock.ReadGolden(path)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(g.Groups[0].Values); n != 3 {
			t.Fatalf("appended golden has %d values, want 3", n)
		}
	})

	t.Run("refuse", func(t *testing.T) {
		// The checked-in drift golden records a removed and a renumbered
		// value; -update must not regenerate over either.
		src, err := os.ReadFile("testdata/src/wire_drift/golden.json")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "golden.json")
		if err := os.WriteFile(path, src, 0o644); err != nil {
			t.Fatal(err)
		}
		err = wirelock.Update(path, drift, fixtureLocks)
		if err == nil || !strings.Contains(err.Error(), "refusing -update") {
			t.Fatalf("Update over a removal/renumber: got %v, want refusal", err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(after) != string(src) {
			t.Error("refused Update still rewrote the golden")
		}
	})
}
