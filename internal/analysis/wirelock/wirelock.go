// Package wirelock enforces the append-only stability of the repository's
// wire-visible enumerations: the serve failure-Code taxonomy (carried in
// error frames; DESIGN.md §13) and the obs EventKind tags (part of the
// binary event-log format). Both are documented "append new values at the
// end, never renumber or remove" — a convention this analyzer turns into a
// checked invariant by extracting the constants from the typechecked source
// and diffing them against a checked-in golden (cmd/teavet/wirelock.json).
//
// Renumbering or removing a value is a hard finding that no baseline or
// -update absorbs: the golden writer itself refuses to regenerate over a
// removal or renumber. Appending a value is a finding only until `go run
// ./cmd/teavet -update` records it in the golden, which is the intended
// review point for every wire-format extension.
package wirelock

import (
	"encoding/json"
	"fmt"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"sort"

	"github.com/lsc-tea/tea/internal/analysis/driver"
)

// Lock names one wire-stable enumeration: every package-scope constant of
// named type TypeName declared in a package named PkgName.
type Lock struct {
	PkgName  string `json:"package"`
	TypeName string `json:"type"`
}

// DefaultLocks are the repository's wire-stable enumerations.
var DefaultLocks = []Lock{
	{PkgName: "serve", TypeName: "Code"},
	{PkgName: "obs", TypeName: "EventKind"},
}

// Value is one locked constant.
type Value struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Group is the extracted state of one Lock.
type Group struct {
	Lock
	Values []Value `json:"values"`

	pos map[string]token.Pos // constant name -> declaration position
	tok token.Pos            // the type declaration, anchor for removals
}

// Golden is the on-disk shape of the golden file.
type Golden struct {
	Comment string  `json:"comment,omitempty"`
	Groups  []Group `json:"groups"`
}

// New builds the analyzer against a golden file path and lock set (nil
// locks = DefaultLocks). The golden is read at Run time so one analyzer
// value can serve both the repo and test fixtures.
func New(goldenPath string, locks []Lock) *driver.Analyzer {
	if locks == nil {
		locks = DefaultLocks
	}
	return &driver.Analyzer{
		Name: "wirelock",
		Doc:  "diff the wire-stable serve Code and obs EventKind constants against the checked-in golden; renumber/removal is a hard failure, appends update via -update",
		Run: func(pass *driver.Pass) error {
			return run(pass, goldenPath, locks)
		},
	}
}

func run(pass *driver.Pass, goldenPath string, locks []Lock) error {
	groups, err := Extract(pass.Prog, locks)
	if err != nil {
		return err
	}
	for _, g := range groups {
		if len(g.Values) == 0 {
			pass.Report(token.NoPos, "", "lock %s.%s: no constants found; the wire-stable enumeration is missing from the build", g.PkgName, g.TypeName)
		}
	}

	golden, err := ReadGolden(goldenPath)
	if os.IsNotExist(err) {
		pass.Report(token.NoPos, "", "golden %s does not exist; run with -update to create it", goldenPath)
		return nil
	}
	if err != nil {
		return err
	}

	for _, d := range Diff(golden, groups) {
		pass.Report(d.pos, "", "%s", d.msg)
	}
	return nil
}

// delta is one golden/source divergence; append marks the recoverable
// kind (a new value -update may lock), as opposed to removals/renumbers.
type delta struct {
	pos    token.Pos
	msg    string
	append bool
}

// Diff compares the golden against the extracted groups. Every divergence
// is a hard finding; only pure appends are recoverable via -update.
func Diff(golden *Golden, groups []Group) []delta {
	var out []delta
	byLock := make(map[Lock]Group, len(groups))
	for _, g := range groups {
		byLock[g.Lock] = g
	}
	for _, gg := range golden.Groups {
		cur, ok := byLock[gg.Lock]
		if !ok {
			out = append(out, delta{token.NoPos, fmt.Sprintf(
				"lock %s.%s recorded in golden but absent from the source", gg.PkgName, gg.TypeName), false})
			continue
		}
		curBy := make(map[string]int64, len(cur.Values))
		for _, v := range cur.Values {
			curBy[v.Name] = v.Value
		}
		for _, gv := range gg.Values {
			have, ok := curBy[gv.Name]
			if !ok {
				out = append(out, delta{cur.tok, fmt.Sprintf(
					"wire constant %s.%s (=%d) removed; values are append-only and may never be deleted", gg.TypeName, gv.Name, gv.Value), false})
				continue
			}
			if have != gv.Value {
				out = append(out, delta{cur.pos[gv.Name], fmt.Sprintf(
					"wire constant %s.%s renumbered %d -> %d; values are append-only and may never change", gg.TypeName, gv.Name, gv.Value, have), false})
			}
		}
		goldenBy := make(map[string]bool, len(gg.Values))
		for _, v := range gg.Values {
			goldenBy[v.Name] = true
		}
		for _, v := range cur.Values {
			if !goldenBy[v.Name] {
				out = append(out, delta{cur.pos[v.Name], fmt.Sprintf(
					"wire constant %s.%s (=%d) not in golden; run -update to lock the appended value", gg.TypeName, v.Name, v.Value), true})
			}
		}
	}
	byGolden := make(map[Lock]bool, len(golden.Groups))
	for _, gg := range golden.Groups {
		byGolden[gg.Lock] = true
	}
	for _, g := range groups {
		if !byGolden[g.Lock] && len(g.Values) > 0 {
			out = append(out, delta{g.tok, fmt.Sprintf(
				"lock %s.%s not in golden; run -update to lock it", g.PkgName, g.TypeName), true})
		}
	}
	return out
}

// Extract pulls the locked enumerations out of the typechecked program,
// one Group per Lock in order, values sorted by numeric value then name.
func Extract(prog *driver.Program, locks []Lock) ([]Group, error) {
	groups := make([]Group, len(locks))
	for i, l := range locks {
		groups[i] = Group{Lock: l, pos: make(map[string]token.Pos)}
	}
	for _, p := range prog.Packages {
		for gi := range groups {
			g := &groups[gi]
			if p.Name != g.PkgName {
				continue
			}
			tobj, ok := p.Pkg.Scope().Lookup(g.TypeName).(*types.TypeName)
			if !ok {
				continue
			}
			g.tok = tobj.Pos()
			scope := p.Pkg.Scope()
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok || c.Type() != tobj.Type() {
					continue
				}
				v, ok := constant.Int64Val(c.Val())
				if !ok {
					return nil, fmt.Errorf("wirelock: constant %s.%s is not integral", g.PkgName, name)
				}
				g.Values = append(g.Values, Value{Name: name, Value: v})
				g.pos[name] = c.Pos()
			}
			sort.Slice(g.Values, func(a, b int) bool {
				if g.Values[a].Value != g.Values[b].Value {
					return g.Values[a].Value < g.Values[b].Value
				}
				return g.Values[a].Name < g.Values[b].Name
			})
		}
	}
	return groups, nil
}

// ReadGolden loads a golden file.
func ReadGolden(path string) (*Golden, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(b, &g); err != nil {
		return nil, fmt.Errorf("wirelock: %s: %w", path, err)
	}
	return &g, nil
}

// Update rewrites the golden from the extracted groups — but refuses to
// absorb a removal or renumber of an already-locked value: -update is the
// escape hatch for appends only. A missing golden is created.
func Update(path string, prog *driver.Program, locks []Lock) error {
	if locks == nil {
		locks = DefaultLocks
	}
	groups, err := Extract(prog, locks)
	if err != nil {
		return err
	}
	if golden, err := ReadGolden(path); err == nil {
		for _, d := range Diff(golden, groups) {
			if !d.append {
				return fmt.Errorf("wirelock: refusing -update: %s", d.msg)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	out := Golden{
		Comment: "wire-stable enumerations; append-only, regenerated by `go run ./cmd/teavet -update`",
		Groups:  groups,
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
