module wire_ok

go 1.22
