// Package wire is the non-flagging wirelock control: the checked-in golden
// matches these constants exactly.
package wire

// Code is a wire-stable enumeration.
type Code uint32

const (
	CodeOK   Code = 0
	CodeSlow Code = 1
	CodeBad  Code = 2
)
