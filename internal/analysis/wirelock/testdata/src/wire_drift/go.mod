module wire_drift

go 1.22
