// Package wire drifts from its golden in all three ways: CodeGone (=2 in
// the golden) was removed, CodeSlow was renumbered 1 -> 5, and CodeNew was
// appended. Removal findings anchor on the type declaration.
package wire

// Code is a wire-stable enumeration.
type Code uint32 // want `wire constant Code\.CodeGone \(=2\) removed; values are append-only`

const (
	CodeOK   Code = 0
	CodeSlow Code = 5 // want `wire constant Code\.CodeSlow renumbered 1 -> 5`
	CodeNew  Code = 9 // want `wire constant Code\.CodeNew \(=9\) not in golden; run -update to lock the appended value`
)
