package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble hammers the assembler: arbitrary source must produce either
// an error or a valid, re-runnable program — never a panic, never a
// program with dangling branch targets.
func FuzzAssemble(f *testing.F) {
	f.Add("e: halt\n")
	f.Add(".entry main\nmain:\n movi eax, 1\nloop:\n subi eax, 1\n jgt loop\n halt\n")
	f.Add(".mem 64\n.data 1 = 2\ne:\n load eax, [esi+4]\n repmovs\n cpuid\n ret\n")
	f.Add("a: b: nop ; comment\n jmp a\n")
	f.Add(".entry x\n")
	f.Add("movi eax")
	f.Add("label-with-dash: halt")
	f.Add(strings.Repeat("l: nop\n", 50) + "halt\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		// Valid program: layout is contiguous and all direct branch
		// targets resolve (Program validation guarantees it; re-check).
		for i := 0; i < p.Len(); i++ {
			in := p.Instr(i)
			if i > 0 {
				prev := p.Instr(i - 1)
				if in.Addr != prev.Addr+uint64(prev.Size) {
					t.Fatalf("layout gap at instruction %d", i)
				}
			}
			if in.IsBranch() && !in.IsIndirect() && in.Op.String() != "halt" && in.Op.String() != "ret" {
				if _, ok := p.At(in.Target); !ok {
					t.Fatalf("dangling branch target 0x%x", in.Target)
				}
			}
		}
		if _, ok := p.At(p.Entry); !ok {
			t.Fatal("entry not an instruction")
		}
	})
}
