package asm

import (
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/isa"
)

func TestAssembleFigure1Loop(t *testing.T) {
	// The word-copy loop of the paper's Figure 1(a).
	src := `
; Figure 1(a)
.entry main
.mem 1024
main:
    movi ecx, 100
    movi esi, 0
    movi edi, 200
loop:
    load  eax, [esi+0]
    store [edi+0], eax
    addi  esi, 1
    addi  edi, 1
    subi  ecx, 1
    jne   loop
    halt
`
	p, err := Assemble("fig1", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 10 {
		t.Fatalf("Len = %d, want 10", p.Len())
	}
	loop, ok := p.Labels["loop"]
	if !ok {
		t.Fatal("loop label missing")
	}
	// The jne must target the loop label.
	var jcc *isa.Instr
	for i := 0; i < p.Len(); i++ {
		if p.Instr(i).Op == isa.JCC {
			jcc = p.Instr(i)
		}
	}
	if jcc == nil || jcc.Target != loop {
		t.Fatalf("jne target = %+v, want 0x%x", jcc, loop)
	}
	if jcc.Cond != isa.CondNE {
		t.Errorf("cond = %v, want ne", jcc.Cond)
	}
}

func TestAssembleAllForms(t *testing.T) {
	src := `
.entry e
.mem 256
.data 10 = 42
.data 0x20 = -7
e:
    nop
    cpuid
    mov eax, ebx
    movi ecx, 0x10
    load edx, [esi-4]
    store [edi+8], eax
    add eax, ebx
    addi eax, 5
    sub eax, ebx
    subi eax, 5
    mul eax, ebx
    and eax, ebx
    or eax, ebx
    xor eax, ebx
    shl eax, 3
    shr eax, 3
    cmp eax, ebx
    cmpi eax, 0
    test eax, ebx
    push ebp
    pop ebp
    repmovs
    repstos
tgt: jmp over
over:
    jeq tgt
    jne tgt
    jlt tgt
    jge tgt
    jle tgt
    jgt tgt
    call fn
    jind eax
fn:
    callind ebx
    ret
    halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.InitData[10] != 42 || p.InitData[0x20] != -7 {
		t.Errorf("InitData = %v", p.InitData)
	}
	if p.MemWords != 256 {
		t.Errorf("MemWords = %d", p.MemWords)
	}
	if _, ok := p.Labels["fn"]; !ok {
		t.Error("fn label missing")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "e:\n frob eax\n", "unknown mnemonic"},
		{"undefined label", ".entry e\ne:\n jmp nowhere\n halt\n", "undefined label"},
		{"bad register", "e:\n mov eax, r9\n halt\n", "registers"},
		{"bad mem operand", "e:\n load eax, esi\n halt\n", "memory operand"},
		{"bad immediate", "e:\n movi eax, xyz\n halt\n", "immediate"},
		{"bad directive", ".frobnicate 3\ne:\n halt\n", "unknown directive"},
		{"bad data", ".data 1\ne:\n halt\n", "ADDR = VALUE"},
		{"operand count", "e:\n mov eax\n halt\n", "wants"},
		{"missing entry", ".entry gone\ne:\n halt\n", "not defined"},
		{"bad label", "a b:\n halt\n", "bad label"},
		{"bad mem size", ".mem -1\ne:\n halt\n", "bad .mem"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("bad", c.src)
			if err == nil {
				t.Fatalf("Assemble accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("bad", "e:\n nop\n frob\n halt\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !asErr(err, &ae) {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("Line = %d, want 3", ae.Line)
	}
}

func asErr(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble("c", "; leading comment\n\ne: nop ; trailing\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p, err := Assemble("m", "a: b: nop\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != p.Labels["b"] {
		t.Error("labels a and b differ")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic")
		}
	}()
	MustAssemble("bad", "frob\n")
}
