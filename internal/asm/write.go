package asm

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lsc-tea/tea/internal/isa"
)

// Write renders a program back to assembler source that Assemble accepts
// and that reproduces the program exactly: same layout, same instruction
// stream, same entry and initial data. Existing label names are preserved;
// unnamed branch targets get synthetic "L_<hex>" labels.
//
// The round trip holds because instruction sizes are deterministic in the
// operands (never in label distances), so a re-assembly lays every
// instruction at its original address.
func Write(p *isa.Program) string {
	labels := collectLabels(p)

	var b strings.Builder
	fmt.Fprintf(&b, "; %s — written by asm.Write; assembles back to the identical program.\n", p.Name)
	if entry := labels[p.Entry]; len(entry) > 0 {
		fmt.Fprintf(&b, ".entry %s\n", entry[0])
	}
	fmt.Fprintf(&b, ".mem %d\n", p.MemWords)

	dataAddrs := make([]int64, 0, len(p.InitData))
	for a := range p.InitData {
		dataAddrs = append(dataAddrs, a)
	}
	sort.Slice(dataAddrs, func(i, j int) bool { return dataAddrs[i] < dataAddrs[j] })
	for _, a := range dataAddrs {
		fmt.Fprintf(&b, ".data %d = %d\n", a, p.InitData[a])
	}

	for i := 0; i < p.Len(); i++ {
		in := p.Instr(i)
		for _, name := range labels[in.Addr] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		b.WriteString("    ")
		b.WriteString(render(in, labels))
		b.WriteByte('\n')
	}
	return b.String()
}

// collectLabels maps every labelled address to its (sorted) names,
// inventing names for unlabelled branch targets and for the entry.
func collectLabels(p *isa.Program) map[uint64][]string {
	out := make(map[uint64][]string)
	for name, addr := range p.Labels {
		out[addr] = append(out[addr], name)
	}
	need := func(addr uint64) {
		if len(out[addr]) == 0 {
			out[addr] = []string{fmt.Sprintf("L_%x", addr)}
		}
	}
	need(p.Entry)
	for i := 0; i < p.Len(); i++ {
		in := p.Instr(i)
		switch in.Op {
		case isa.JMP, isa.JCC, isa.CALL:
			need(in.Target)
		}
	}
	for addr := range out {
		sort.Strings(out[addr])
	}
	return out
}

// render prints one instruction in assembler syntax; direct branches use
// label names.
func render(in *isa.Instr, labels map[uint64][]string) string {
	switch in.Op {
	case isa.JMP:
		return fmt.Sprintf("jmp %s", labels[in.Target][0])
	case isa.CALL:
		return fmt.Sprintf("call %s", labels[in.Target][0])
	case isa.JCC:
		return fmt.Sprintf("j%s %s", in.Cond, labels[in.Target][0])
	default:
		// Instr.String already matches the assembler's operand syntax.
		return in.String()
	}
}
