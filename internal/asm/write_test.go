package asm

import (
	"strings"
	"testing"

	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/workload"
)

// assertSameProgram compares two programs instruction by instruction.
func assertSameProgram(t *testing.T, a, b *isa.Program) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	if a.Entry != b.Entry {
		t.Fatalf("entries differ: 0x%x vs 0x%x", a.Entry, b.Entry)
	}
	if a.MemWords != b.MemWords {
		t.Fatalf("mem sizes differ")
	}
	for i := 0; i < a.Len(); i++ {
		x, y := a.Instr(i), b.Instr(i)
		if *x != *y {
			t.Fatalf("instruction %d differs:\n  %v (addr 0x%x size %d)\n  %v (addr 0x%x size %d)",
				i, x, x.Addr, x.Size, y, y.Addr, y.Size)
		}
	}
	if len(a.InitData) != len(b.InitData) {
		t.Fatalf("init data sizes differ")
	}
	for k, v := range a.InitData {
		if b.InitData[k] != v {
			t.Fatalf("init data at %d differs", k)
		}
	}
}

func TestWriteRoundTripSimple(t *testing.T) {
	src := `
.entry main
.mem 512
.data 10 = -7
.data 11 = 42
main:
    movi ecx, 5
loop:
    load eax, [esi+0]
    store [edi-3], eax
    addi esi, 1
    subi ecx, 1
    jne loop
    call fn
    halt
fn:
    cpuid
    repmovs
    push ebp
    pop ebp
    jind eax
`
	p1 := MustAssemble("rt", src)
	text := Write(p1)
	p2, err := Assemble("rt2", text)
	if err != nil {
		t.Fatalf("rewritten source does not assemble: %v\n%s", err, text)
	}
	assertSameProgram(t, p1, p2)
}

func TestWriteRoundTripAllBenchmarks(t *testing.T) {
	// The strongest property: every synthetic SPEC program survives the
	// write → assemble round trip byte-exactly, and the re-assembled
	// program executes identically.
	for _, spec := range workload.Benchmarks() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			spec.WorkScale = 1
			p1 := workload.Program(spec)
			p2, err := Assemble(spec.Name, Write(p1))
			if err != nil {
				t.Fatalf("round trip failed to assemble: %v", err)
			}
			assertSameProgram(t, p1, p2)

			m1, m2 := cpu.New(p1), cpu.New(p2)
			if err := m1.Run(50_000_000); err != nil {
				t.Fatal(err)
			}
			if err := m2.Run(50_000_000); err != nil {
				t.Fatal(err)
			}
			if m1.Steps() != m2.Steps() || m1.PinSteps() != m2.PinSteps() {
				t.Error("round-tripped program executes differently")
			}
		})
	}
}

func TestWritePreservesLabelNames(t *testing.T) {
	p := MustAssemble("l", ".entry main\nmain:\n nop\ntarget:\n jmp target\n")
	text := Write(p)
	for _, want := range []string{".entry main", "main:", "target:", "jmp target"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestWriteInventsLabelsForAnonymousTargets(t *testing.T) {
	// A program built directly (no label on the branch target) still
	// round-trips via synthetic labels.
	b := isa.NewBuilder("anon")
	b.Label("e")
	b.Emit(isa.Instr{Op: isa.NOP, Dst: isa.NoReg, Src: isa.NoReg})
	target := b.PC()
	b.Emit(isa.Instr{Op: isa.ADDI, Dst: isa.EAX, Src: isa.NoReg, Imm: 1})
	j := b.Emit(isa.Instr{Op: isa.JMP, Dst: isa.NoReg, Src: isa.NoReg})
	b.PatchTarget(j, target)
	b.Emit(isa.Instr{Op: isa.HALT, Dst: isa.NoReg, Src: isa.NoReg})
	p1, err := b.Build("e", 64)
	if err != nil {
		t.Fatal(err)
	}
	text := Write(p1)
	if !strings.Contains(text, "L_") {
		t.Errorf("no synthetic label:\n%s", text)
	}
	p2, err := Assemble("anon2", text)
	if err != nil {
		t.Fatal(err)
	}
	assertSameProgram(t, p1, p2)
}
