// Package asm implements a small two-pass assembler for the synthetic ISA.
//
// The source format mirrors the paper's figures so that the motivating
// examples (the memcopy loop of Figure 1 and the linked-list scan of
// Figure 2) can be written verbatim:
//
//	; word-copy loop from Figure 1(a)
//	.entry main
//	.mem 4096
//	main:
//	    movi ecx, 100
//	loop:
//	    load  eax, [esi+0]
//	    store [edi+0], eax
//	    addi  esi, 1
//	    addi  edi, 1
//	    subi  ecx, 1
//	    jne   loop
//	    halt
//
// Directives: ".entry LABEL" names the entry point, ".mem N" sets the data
// memory size in words, ".data ADDR = VALUE" initializes one data word.
// Branch targets are labels; encoded instruction sizes never depend on the
// distance to the target, so one emit pass plus a fixup pass suffices.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/lsc-tea/tea/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type fixup struct {
	index int
	label string
	line  int
}

// Assemble translates source text into a laid-out Program.
func Assemble(name, src string) (*isa.Program, error) {
	b := isa.NewBuilder(name)
	var fixups []fixup
	entry := ""
	memWords := 1 << 16
	type dataInit struct{ addr, val int64 }
	var inits []dataInit

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		lineNo := ln + 1
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		// Directives.
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".entry":
				if len(fields) != 2 {
					return nil, &Error{lineNo, ".entry takes one label"}
				}
				entry = fields[1]
			case ".mem":
				if len(fields) != 2 {
					return nil, &Error{lineNo, ".mem takes one size"}
				}
				n, err := parseInt(fields[1])
				if err != nil || n <= 0 {
					return nil, &Error{lineNo, "bad .mem size"}
				}
				memWords = int(n)
			case ".data":
				rest := strings.TrimSpace(strings.TrimPrefix(line, ".data"))
				parts := strings.SplitN(rest, "=", 2)
				if len(parts) != 2 {
					return nil, &Error{lineNo, ".data wants ADDR = VALUE"}
				}
				addr, err1 := parseInt(strings.TrimSpace(parts[0]))
				val, err2 := parseInt(strings.TrimSpace(parts[1]))
				if err1 != nil || err2 != nil {
					return nil, &Error{lineNo, "bad .data operands"}
				}
				inits = append(inits, dataInit{addr, val})
			default:
				return nil, &Error{lineNo, fmt.Sprintf("unknown directive %s", fields[0])}
			}
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, &Error{lineNo, fmt.Sprintf("bad label %q", label)}
			}
			b.Label(label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		in, labelRef, err := parseInstr(line)
		if err != nil {
			return nil, &Error{lineNo, err.Error()}
		}
		idx := b.Emit(in)
		if labelRef != "" {
			fixups = append(fixups, fixup{idx, labelRef, lineNo})
		}
	}

	for _, f := range fixups {
		addr, ok := b.LabelAddr(f.label)
		if !ok {
			return nil, &Error{f.line, fmt.Sprintf("undefined label %q", f.label)}
		}
		b.PatchTarget(f.index, addr)
	}

	p, err := b.Build(entry, memWords)
	if err != nil {
		return nil, err
	}
	for _, d := range inits {
		p.InitData[d.addr] = d.val
	}
	return p, nil
}

// MustAssemble is Assemble for known-good sources; it panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// parseInstr parses one instruction line. When the instruction references a
// label as its branch target, the label is returned for later fixup.
func parseInstr(line string) (isa.Instr, string, error) {
	var in isa.Instr
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	ops := splitOperands(rest)

	switch mnemonic {
	case "nop", "cpuid", "halt", "ret", "repmovs", "repstos":
		if len(ops) != 0 {
			return in, "", fmt.Errorf("%s takes no operands", mnemonic)
		}
		switch mnemonic {
		case "nop":
			in.Op = isa.NOP
		case "cpuid":
			in.Op = isa.CPUID
		case "halt":
			in.Op = isa.HALT
		case "ret":
			in.Op = isa.RET
		case "repmovs":
			in.Op = isa.REPMOVS
		case "repstos":
			in.Op = isa.REPSTOS
		}
		in.Dst, in.Src = isa.NoReg, isa.NoReg
		return in, "", nil

	case "mov", "add", "sub", "mul", "and", "or", "xor", "cmp", "test":
		if len(ops) != 2 {
			return in, "", fmt.Errorf("%s wants dst, src", mnemonic)
		}
		dst, ok1 := isa.RegByName(ops[0])
		src, ok2 := isa.RegByName(ops[1])
		if !ok1 || !ok2 {
			return in, "", fmt.Errorf("%s wants two registers", mnemonic)
		}
		in.Op = map[string]isa.Op{
			"mov": isa.MOV, "add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL,
			"and": isa.AND, "or": isa.OR, "xor": isa.XOR, "cmp": isa.CMP, "test": isa.TEST,
		}[mnemonic]
		in.Dst, in.Src = dst, src
		return in, "", nil

	case "movi", "addi", "subi", "cmpi", "shl", "shr":
		if len(ops) != 2 {
			return in, "", fmt.Errorf("%s wants dst, imm", mnemonic)
		}
		dst, ok := isa.RegByName(ops[0])
		if !ok {
			return in, "", fmt.Errorf("%s wants a register destination", mnemonic)
		}
		imm, err := parseInt(ops[1])
		if err != nil {
			return in, "", fmt.Errorf("bad immediate %q", ops[1])
		}
		in.Op = map[string]isa.Op{
			"movi": isa.MOVI, "addi": isa.ADDI, "subi": isa.SUBI,
			"cmpi": isa.CMPI, "shl": isa.SHL, "shr": isa.SHR,
		}[mnemonic]
		in.Dst, in.Src, in.Imm = dst, isa.NoReg, imm
		return in, "", nil

	case "load":
		if len(ops) != 2 {
			return in, "", fmt.Errorf("load wants dst, [base+disp]")
		}
		dst, ok := isa.RegByName(ops[0])
		if !ok {
			return in, "", fmt.Errorf("load wants a register destination")
		}
		base, disp, err := parseMem(ops[1])
		if err != nil {
			return in, "", err
		}
		in.Op, in.Dst, in.Src, in.Disp = isa.LOAD, dst, base, disp
		return in, "", nil

	case "store":
		if len(ops) != 2 {
			return in, "", fmt.Errorf("store wants [base+disp], src")
		}
		base, disp, err := parseMem(ops[0])
		if err != nil {
			return in, "", err
		}
		src, ok := isa.RegByName(ops[1])
		if !ok {
			return in, "", fmt.Errorf("store wants a register source")
		}
		in.Op, in.Dst, in.Src, in.Disp = isa.STORE, base, src, disp
		return in, "", nil

	case "jmp", "call":
		if len(ops) != 1 {
			return in, "", fmt.Errorf("%s wants one target label", mnemonic)
		}
		if mnemonic == "jmp" {
			in.Op = isa.JMP
		} else {
			in.Op = isa.CALL
		}
		in.Dst, in.Src = isa.NoReg, isa.NoReg
		return in, ops[0], nil

	case "jind", "callind", "push":
		if len(ops) != 1 {
			return in, "", fmt.Errorf("%s wants one register", mnemonic)
		}
		r, ok := isa.RegByName(ops[0])
		if !ok {
			return in, "", fmt.Errorf("%s wants a register", mnemonic)
		}
		switch mnemonic {
		case "jind":
			in.Op = isa.JIND
		case "callind":
			in.Op = isa.CALLIND
		case "push":
			in.Op = isa.PUSH
		}
		in.Dst, in.Src = isa.NoReg, r
		return in, "", nil

	case "pop":
		if len(ops) != 1 {
			return in, "", fmt.Errorf("pop wants one register")
		}
		r, ok := isa.RegByName(ops[0])
		if !ok {
			return in, "", fmt.Errorf("pop wants a register")
		}
		in.Op, in.Dst, in.Src = isa.POP, r, isa.NoReg
		return in, "", nil
	}

	// Conditional branches: jeq, jne, jlt, jge, jle, jgt.
	if strings.HasPrefix(mnemonic, "j") {
		if c, ok := isa.CondByName(mnemonic[1:]); ok {
			if len(ops) != 1 {
				return in, "", fmt.Errorf("%s wants one target label", mnemonic)
			}
			in.Op, in.Cond = isa.JCC, c
			in.Dst, in.Src = isa.NoReg, isa.NoReg
			return in, ops[0], nil
		}
	}
	return in, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// parseMem parses a "[reg+disp]" / "[reg-disp]" / "[reg]" memory operand.
func parseMem(s string) (isa.Reg, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return isa.NoReg, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	sign := int64(1)
	regPart, dispPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, dispPart = strings.TrimSpace(inner[:i]), strings.TrimSpace(inner[i+1:])
	}
	r, ok := isa.RegByName(regPart)
	if !ok {
		return isa.NoReg, 0, fmt.Errorf("bad base register in %q", s)
	}
	var disp int64
	if dispPart != "" {
		d, err := parseInt(dispPart)
		if err != nil {
			return isa.NoReg, 0, fmt.Errorf("bad displacement in %q", s)
		}
		disp = sign * d
	}
	return r, int32(disp), nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}
