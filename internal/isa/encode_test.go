package isa

import (
	"testing"
	"testing/quick"
)

// TestEncodeInstrSizeAgreement: for every encodable instruction shape, the
// byte encoding's length equals EncodedSize.
func TestEncodeInstrSizeAgreement(t *testing.T) {
	cases := []Instr{
		{Op: NOP}, {Op: RET}, {Op: HALT}, {Op: CPUID},
		{Op: REPMOVS}, {Op: REPSTOS},
		{Op: MOV, Dst: EAX, Src: EBX},
		{Op: ADD, Dst: ECX, Src: EDX},
		{Op: MUL, Dst: EAX, Src: EBX},
		{Op: SHL, Dst: EAX, Imm: 5},
		{Op: SHR, Dst: EAX, Imm: 63},
		{Op: MOVI, Dst: EDI, Imm: 1},
		{Op: MOVI, Dst: EDI, Imm: -1},
		{Op: MOVI, Dst: EDI, Imm: 1 << 40},
		{Op: ADDI, Dst: EAX, Imm: 100},
		{Op: ADDI, Dst: EAX, Imm: 100000},
		{Op: SUBI, Dst: EAX, Imm: -128},
		{Op: CMPI, Dst: EAX, Imm: 127},
		{Op: LOAD, Dst: EAX, Src: ESI},
		{Op: LOAD, Dst: EAX, Src: ESI, Disp: 100},
		{Op: LOAD, Dst: EAX, Src: ESI, Disp: -5000},
		{Op: STORE, Dst: EDI, Src: EAX, Disp: 1},
		{Op: PUSH, Src: EBP}, {Op: POP, Dst: EBP},
		{Op: JIND, Src: EAX}, {Op: CALLIND, Src: EBX},
	}
	for _, in := range cases {
		in := in
		in.Addr = BaseAddr
		in.Size = EncodedSize(&in)
		got, err := EncodeInstr(nil, &in)
		if err != nil {
			t.Errorf("%v: %v", &in, err)
			continue
		}
		if len(got) != int(in.Size) {
			t.Errorf("%v: encoded %d bytes, size %d", &in, len(got), in.Size)
		}
	}
	// Branches need valid layout for rel32 computation.
	b := NewBuilder("enc")
	b.Label("e")
	j := b.Emit(Instr{Op: JMP})
	k := b.Emit(Instr{Op: JCC, Cond: CondNE})
	c := b.Emit(Instr{Op: CALL})
	b.Emit(Instr{Op: HALT})
	entry, _ := b.LabelAddr("e")
	for _, idx := range []int{j, k, c} {
		b.PatchTarget(idx, entry)
	}
	p, err := b.Build("e", 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{j, k, c} {
		in := p.Instr(idx)
		got, err := EncodeInstr(nil, in)
		if err != nil {
			t.Errorf("%v: %v", in, err)
			continue
		}
		if len(got) != int(in.Size) {
			t.Errorf("%v: encoded %d bytes, size %d", in, len(got), in.Size)
		}
	}
}

// TestQuickEncodeImmediates: immediate-carrying forms always encode to
// exactly their declared size, for arbitrary immediates.
func TestQuickEncodeImmediates(t *testing.T) {
	f := func(imm int64, disp int32, op uint8) bool {
		ops := []Op{MOVI, ADDI, SUBI, CMPI, LOAD, STORE}
		in := Instr{Op: ops[int(op)%len(ops)], Dst: EAX, Src: EBX, Imm: imm, Disp: disp}
		in.Size = EncodedSize(&in)
		enc, err := EncodeInstr(nil, &in)
		return err == nil && len(enc) == int(in.Size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEncodeRangeMatchesBlockBytes: a range encoding is byte-for-byte as
// long as the size accounting says.
func TestEncodeRangeMatchesBlockBytes(t *testing.T) {
	b := NewBuilder("r")
	b.Label("e")
	b.Emit(Instr{Op: MOVI, Dst: ECX, Imm: 7})
	b.Label("l")
	b.Emit(Instr{Op: ADDI, Dst: EAX, Imm: 1})
	b.Emit(Instr{Op: SUBI, Dst: ECX, Imm: 1})
	j := b.Emit(Instr{Op: JCC, Cond: CondGT})
	b.Emit(Instr{Op: HALT})
	loop, _ := b.LabelAddr("l")
	b.PatchTarget(j, loop)
	p, err := b.Build("e", 64)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.EncodeRange(p.Entry, p.Entry+p.StaticBytes())
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(img)) != p.StaticBytes() {
		t.Errorf("image %d bytes, static %d", len(img), p.StaticBytes())
	}
	// Distinct instructions produce distinct prefixes (opcode first).
	if img[0] == img[5] && p.Instr(0).Op != p.Instr(1).Op {
		t.Error("suspicious encoding collision")
	}
}
