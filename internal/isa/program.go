package isa

import (
	"fmt"
	"sort"
)

// BaseAddr is the address at which program text is laid out by default. A
// non-zero base keeps address arithmetic honest (zero is never a valid PC).
const BaseAddr uint64 = 0x08048000

// Program is an immutable laid-out program: a code image plus entry point,
// symbol table and initial data memory. Programs are built either by the
// assembler (internal/asm) or by the workload generator.
type Program struct {
	Name  string
	Entry uint64

	instrs []Instr
	index  map[uint64]int

	// Labels maps symbol names to code addresses (filled by the assembler).
	Labels map[string]uint64

	// MemWords is the size of data memory in 64-bit words. The stack
	// occupies the top of this region.
	MemWords int

	// InitData holds initial values for data memory, keyed by word address.
	InitData map[int64]int64
}

// Builder accumulates instructions and lays them out into a Program.
type Builder struct {
	name   string
	base   uint64
	next   uint64
	instrs []Instr
	labels map[string]uint64
}

// NewBuilder returns a Builder laying out code from BaseAddr.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, base: BaseAddr, next: BaseAddr, labels: make(map[string]uint64)}
}

// PC returns the address the next appended instruction will occupy.
func (b *Builder) PC() uint64 { return b.next }

// Label records a symbol at the current PC.
func (b *Builder) Label(name string) { b.labels[name] = b.next }

// Emit appends an instruction, assigning its address and encoded size.
// Branch targets may be patched later via PatchTarget.
func (b *Builder) Emit(i Instr) int {
	i.Addr = b.next
	i.Size = EncodedSize(&i)
	b.next += uint64(i.Size)
	b.instrs = append(b.instrs, i)
	return len(b.instrs) - 1
}

// PatchTarget rewrites the branch target of a previously emitted
// instruction (two-pass assembly of forward references).
func (b *Builder) PatchTarget(idx int, target uint64) {
	b.instrs[idx].Target = target
}

// LabelAddr reports the address of a previously recorded label.
func (b *Builder) LabelAddr(name string) (uint64, bool) {
	a, ok := b.labels[name]
	return a, ok
}

// Build finalizes the program. Entry defaults to the base address when the
// named entry label is empty or absent.
func (b *Builder) Build(entry string, memWords int) (*Program, error) {
	p := &Program{
		Name:     b.name,
		Entry:    b.base,
		instrs:   b.instrs,
		index:    make(map[uint64]int, len(b.instrs)),
		Labels:   b.labels,
		MemWords: memWords,
		InitData: make(map[int64]int64),
	}
	for i := range p.instrs {
		p.index[p.instrs[i].Addr] = i
	}
	if entry != "" {
		a, ok := b.labels[entry]
		if !ok {
			return nil, fmt.Errorf("isa: entry label %q not defined", entry)
		}
		p.Entry = a
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Program) validate() error {
	if len(p.instrs) == 0 {
		return fmt.Errorf("isa: program %q has no instructions", p.Name)
	}
	for i := range p.instrs {
		in := &p.instrs[i]
		switch in.Op {
		case JMP, JCC, CALL:
			if _, ok := p.index[in.Target]; !ok {
				return fmt.Errorf("isa: %s at 0x%x targets 0x%x which is not an instruction boundary", in.Op, in.Addr, in.Target)
			}
		}
	}
	if _, ok := p.index[p.Entry]; !ok {
		return fmt.Errorf("isa: entry 0x%x is not an instruction boundary", p.Entry)
	}
	return nil
}

// At returns the instruction at the exact address.
func (p *Program) At(addr uint64) (*Instr, bool) {
	i, ok := p.index[addr]
	if !ok {
		return nil, false
	}
	return &p.instrs[i], true
}

// MustAt is At for addresses known to be valid; it panics otherwise.
func (p *Program) MustAt(addr uint64) *Instr {
	in, ok := p.At(addr)
	if !ok {
		panic(fmt.Sprintf("isa: no instruction at 0x%x in %s", addr, p.Name))
	}
	return in
}

// Len returns the static instruction count.
func (p *Program) Len() int { return len(p.instrs) }

// Instr returns the i-th instruction in layout order.
func (p *Program) Instr(i int) *Instr { return &p.instrs[i] }

// IndexOf returns the layout index of the instruction at addr.
func (p *Program) IndexOf(addr uint64) (int, bool) {
	i, ok := p.index[addr]
	return i, ok
}

// StaticBytes returns the total encoded size of the program text.
func (p *Program) StaticBytes() uint64 {
	if len(p.instrs) == 0 {
		return 0
	}
	last := &p.instrs[len(p.instrs)-1]
	return last.Addr + uint64(last.Size) - p.instrs[0].Addr
}

// SymbolFor returns the name of the label at addr, if any. When several
// labels share an address the lexicographically smallest is returned, so
// output is deterministic.
func (p *Program) SymbolFor(addr uint64) (string, bool) {
	var names []string
	for n, a := range p.Labels {
		if a == addr {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return "", false
	}
	sort.Strings(names)
	return names[0], true
}

// Disassemble renders the instructions in [lo, hi) as text, one per line,
// with addresses and any labels.
func (p *Program) Disassemble(lo, hi uint64) string {
	out := ""
	for i := range p.instrs {
		in := &p.instrs[i]
		if in.Addr < lo || in.Addr >= hi {
			continue
		}
		if sym, ok := p.SymbolFor(in.Addr); ok {
			out += fmt.Sprintf("%s:\n", sym)
		}
		out += fmt.Sprintf("  0x%08x  %s\n", in.Addr, in)
	}
	return out
}
