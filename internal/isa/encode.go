package isa

import "fmt"

// Byte-level instruction encoding. The interpreter executes decoded
// instructions directly, but the DBT's code cache stores real bytes — the
// code-replication costs of Table 1 are sums of these encodings — and
// round-tripping through them keeps the size model honest: EncodeInstr's
// output length is exactly EncodedSize.
//
// The encoding is a simple tag-structured format, not IA-32 machine code:
//
//	byte 0: opcode
//	byte 1 (when present): operand byte — Dst in the low nibble, Src in
//	        the high nibble, or the condition code for JCC
//	remainder: immediate / displacement / target, little-endian, with the
//	        width EncodedSize chose (imm8/imm32/imm64, rel32)

// EncodeInstr appends the instruction's encoding to dst and returns the
// extended slice. The number of bytes appended always equals in.Size. An
// instruction with an unknown opcode, or whose Size disagrees with its
// encoding (a hand-built or corrupted Instr), is rejected with an error
// and dst is returned unchanged.
func EncodeInstr(dst []byte, in *Instr) ([]byte, error) {
	start := len(dst)
	dst = append(dst, byte(in.Op))
	switch in.Op {
	case NOP, RET, HALT:
		// opcode only
	case CPUID, REPMOVS, REPSTOS:
		dst = append(dst, 0)
	case PUSH, POP, JIND, CALLIND:
		dst = append(dst, regByte(in))
	case MOV, ADD, SUB, AND, OR, XOR, CMP, TEST:
		dst = append(dst, regByte(in))
	case MUL:
		dst = append(dst, regByte(in), 0)
	case SHL, SHR:
		dst = append(dst, regByte(in), byte(in.Imm&63))
	case MOVI:
		// Like x86's mov r32, imm32: the register rides in the opcode byte
		// (opcodes fit in 5 bits), keeping the short form at 5 bytes.
		dst[start] = byte(in.Op) | byte(in.Dst&7)<<5
		if fitsInt32(in.Imm) {
			dst = appendLE(dst, uint64(uint32(int32(in.Imm))), 4)
		} else {
			dst = append(dst, 0xFF) // wide-immediate marker
			dst = appendLE(dst, uint64(in.Imm), 8)
		}
	case ADDI, SUBI, CMPI:
		dst = append(dst, regByte(in))
		if fitsInt8(in.Imm) {
			dst = append(dst, byte(int8(in.Imm)))
		} else {
			dst = appendLE(dst, uint64(uint32(int32(in.Imm))), 4)
		}
	case LOAD, STORE:
		dst = append(dst, regByte(in))
		switch {
		case in.Disp == 0:
		case fitsInt8(int64(in.Disp)):
			dst = append(dst, byte(int8(in.Disp)))
		default:
			dst = appendLE(dst, uint64(uint32(in.Disp)), 4)
		}
	case JMP, CALL:
		dst = appendLE(dst, in.Target-in.Next(), 4) // rel32
	case JCC:
		dst = append(dst, byte(in.Cond))
		dst = appendLE(dst, in.Target-in.Next(), 4)
	default:
		return dst[:start], fmt.Errorf("isa: cannot encode op %v", in.Op)
	}
	if got := len(dst) - start; got != int(in.Size) {
		return dst[:start], fmt.Errorf("isa: encoded %v to %d bytes, size says %d", in, got, in.Size)
	}
	return dst, nil
}

// regByte packs Dst (low nibble) and Src (high nibble); NoReg packs as 0xF.
func regByte(in *Instr) byte {
	return nib(in.Dst) | nib(in.Src)<<4
}

func nib(r Reg) byte {
	if r == NoReg {
		return 0xF
	}
	return byte(r) & 0xF
}

func appendLE(dst []byte, v uint64, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

// EncodeRange encodes the instructions of [lo, hi) (program addresses)
// into a fresh byte slice — what a DBT copies when it replicates a block.
func (p *Program) EncodeRange(lo, hi uint64) ([]byte, error) {
	var out []byte
	for i := 0; i < len(p.instrs); i++ {
		in := &p.instrs[i]
		if in.Addr < lo || in.Addr >= hi {
			continue
		}
		var err error
		out, err = EncodeInstr(out, in)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
