// Package isa defines the synthetic x86-like instruction set used by every
// substrate in this repository.
//
// The instruction set is deliberately x86-flavoured: instructions have
// variable encoded lengths (1-10 bytes), there are condition flags set by
// arithmetic and compare instructions and consumed by conditional branches,
// string operations carry REP prefixes that iterate at run time, and CPUID
// exists solely because Pin splits basic blocks on it (paper §4.1). TEA
// itself only consumes the dynamic program-counter stream and static code
// bytes, so this ISA exercises exactly the code paths the paper's IA-32
// substrate exercised: variable-length size accounting, conditional and
// indirect control flow, and the REP iteration-counting discrepancy between
// StarDBT and Pin.
package isa

import "fmt"

// Reg names one of the eight general-purpose registers. The names mirror
// IA-32 so that examples read like the paper's figures.
type Reg uint8

// General-purpose registers. ESP is the stack pointer used implicitly by
// PUSH, POP, CALL and RET. ESI/EDI/ECX are used implicitly by the REP
// string operations, exactly as on IA-32.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	// NoReg marks an unused register operand.
	NoReg Reg = 0xFF
)

// NumRegs is the size of the architectural register file.
const NumRegs = 8

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

func (r Reg) String() string {
	if r == NoReg {
		return "-"
	}
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// RegByName resolves an assembler register name ("eax", "edi", ...).
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return NoReg, false
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. The set is small but covers every control-flow and sizing shape
// that matters to trace recording: direct and indirect jumps and calls,
// conditional branches, returns, REP-prefixed string ops, and CPUID.
const (
	NOP     Op = iota
	MOV        // Dst <- Src
	MOVI       // Dst <- Imm
	LOAD       // Dst <- mem[Src+Disp]
	STORE      // mem[Dst+Disp] <- Src
	ADD        // Dst <- Dst + Src, sets flags
	ADDI       // Dst <- Dst + Imm, sets flags
	SUB        // Dst <- Dst - Src, sets flags
	SUBI       // Dst <- Dst - Imm, sets flags
	MUL        // Dst <- Dst * Src
	AND        // Dst <- Dst & Src, sets flags
	OR         // Dst <- Dst | Src, sets flags
	XOR        // Dst <- Dst ^ Src, sets flags
	SHL        // Dst <- Dst << (Imm & 63)
	SHR        // Dst <- int64(Dst) >> (Imm & 63)
	CMP        // flags from Dst - Src
	CMPI       // flags from Dst - Imm
	TEST       // flags from Dst & Src
	JMP        // unconditional direct jump to Target
	JCC        // conditional direct jump to Target if Cond holds
	JIND       // indirect jump to address in Src
	CALL       // push return address, jump to Target
	CALLIND    // push return address, jump to address in Src
	RET        // pop return address, jump to it
	PUSH       // push Src
	POP        // pop into Dst
	REPMOVS    // copy ECX words from [ESI] to [EDI]; ECX, ESI, EDI updated
	REPSTOS    // store EAX into ECX words at [EDI]; ECX, EDI updated
	CPUID      // no-op that splits Pin-style blocks (paper §4.1)
	HALT       // stop the machine
	numOps
)

var opNames = [numOps]string{
	"nop", "mov", "movi", "load", "store", "add", "addi", "sub", "subi",
	"mul", "and", "or", "xor", "shl", "shr", "cmp", "cmpi", "test",
	"jmp", "jcc", "jind", "call", "callind", "ret", "push", "pop",
	"repmovs", "repstos", "cpuid", "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Cond selects the flag predicate of a JCC.
type Cond uint8

// Branch conditions, evaluated against the ZF/SF flags that compare and
// arithmetic instructions produce.
const (
	CondEQ Cond = iota // ZF
	CondNE             // !ZF
	CondLT             // SF
	CondGE             // !SF
	CondLE             // SF || ZF
	CondGT             // !SF && !ZF
	numConds
)

var condNames = [numConds]string{"eq", "ne", "lt", "ge", "le", "gt"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond?%d", uint8(c))
}

// CondByName resolves an assembler condition suffix ("eq", "lt", ...).
func CondByName(name string) (Cond, bool) {
	for i, n := range condNames {
		if n == name {
			return Cond(i), true
		}
	}
	return 0, false
}

// Instr is one decoded instruction. Addr and Size are filled in when the
// instruction is laid out into a Program; Size models the variable-length
// IA-32 encoding and is what the DBT code-replication size accounting sums.
type Instr struct {
	Addr   uint64
	Op     Op
	Cond   Cond
	Dst    Reg
	Src    Reg
	Disp   int32
	Imm    int64
	Target uint64
	Size   uint8
}

// IsBranch reports whether the instruction may transfer control anywhere
// other than the next sequential instruction.
func (i *Instr) IsBranch() bool {
	switch i.Op {
	case JMP, JCC, JIND, CALL, CALLIND, RET, HALT:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch, the
// only kind of branch with both a taken and a fall-through edge.
func (i *Instr) IsCondBranch() bool { return i.Op == JCC }

// IsIndirect reports whether the branch target is computed at run time.
func (i *Instr) IsIndirect() bool {
	switch i.Op {
	case JIND, CALLIND, RET:
		return true
	}
	return false
}

// IsCall reports whether the instruction pushes a return address.
func (i *Instr) IsCall() bool { return i.Op == CALL || i.Op == CALLIND }

// IsRep reports whether the instruction carries a REP prefix. StarDBT
// counts a REP instruction once; Pin expands it into a loop and counts each
// iteration (paper §4.1).
func (i *Instr) IsRep() bool { return i.Op == REPMOVS || i.Op == REPSTOS }

// FallsThrough reports whether control may continue at the next sequential
// instruction after this one executes.
func (i *Instr) FallsThrough() bool {
	switch i.Op {
	case JMP, JIND, RET, HALT:
		return false
	}
	return true
}

// Next returns the address of the sequentially following instruction.
func (i *Instr) Next() uint64 { return i.Addr + uint64(i.Size) }

func (i *Instr) String() string {
	switch i.Op {
	case NOP, CPUID, HALT, RET, REPMOVS, REPSTOS:
		return i.Op.String()
	case MOV, ADD, SUB, MUL, AND, OR, XOR, CMP, TEST:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, i.Src)
	case MOVI, ADDI, SUBI, CMPI, SHL, SHR:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Dst, i.Imm)
	case LOAD:
		return fmt.Sprintf("load %s, [%s%+d]", i.Dst, i.Src, i.Disp)
	case STORE:
		return fmt.Sprintf("store [%s%+d], %s", i.Dst, i.Disp, i.Src)
	case JMP, CALL:
		return fmt.Sprintf("%s 0x%x", i.Op, i.Target)
	case JCC:
		return fmt.Sprintf("j%s 0x%x", i.Cond, i.Target)
	case JIND, CALLIND:
		return fmt.Sprintf("%s %s", i.Op, i.Src)
	case PUSH:
		return fmt.Sprintf("push %s", i.Src)
	case POP:
		return fmt.Sprintf("pop %s", i.Dst)
	}
	return i.Op.String()
}

// EncodedSize returns the modelled IA-32 encoding length in bytes for the
// instruction. The model is deterministic in the operands so that programs
// have stable layouts: short immediates use sign-extended imm8 forms, wide
// immediates imm32/imm64 forms, and branches always use near (rel32) forms.
func EncodedSize(i *Instr) uint8 {
	switch i.Op {
	case NOP, RET, HALT:
		return 1
	case CPUID, REPMOVS, REPSTOS, PUSH, POP, JIND, CALLIND:
		return 2
	case MOV, ADD, SUB, AND, OR, XOR, CMP, TEST:
		return 2
	case MUL:
		return 3
	case SHL, SHR:
		return 3
	case MOVI:
		if fitsInt32(i.Imm) {
			return 5
		}
		return 10
	case ADDI, SUBI, CMPI:
		if fitsInt8(i.Imm) {
			return 3
		}
		return 6
	case LOAD, STORE:
		switch {
		case i.Disp == 0:
			return 2
		case fitsInt8(int64(i.Disp)):
			return 3
		default:
			return 6
		}
	case JMP, CALL:
		return 5
	case JCC:
		return 6
	}
	return 1
}

func fitsInt8(v int64) bool  { return v >= -128 && v <= 127 }
func fitsInt32(v int64) bool { return v >= -(1<<31) && v < (1<<31) }
