package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegNamesRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		name := r.String()
		got, ok := RegByName(name)
		if !ok || got != r {
			t.Errorf("RegByName(%q) = %v, %v; want %v", name, got, ok, r)
		}
	}
	if _, ok := RegByName("r15"); ok {
		t.Error("RegByName accepted unknown register")
	}
	if NoReg.String() != "-" {
		t.Errorf("NoReg.String() = %q", NoReg.String())
	}
}

func TestCondNamesRoundTrip(t *testing.T) {
	for c := Cond(0); c < numConds; c++ {
		got, ok := CondByName(c.String())
		if !ok || got != c {
			t.Errorf("CondByName(%q) = %v, %v; want %v", c.String(), got, ok, c)
		}
	}
	if _, ok := CondByName("xx"); ok {
		t.Error("CondByName accepted unknown condition")
	}
}

func TestOpStrings(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		if s := o.String(); s == "" || strings.HasPrefix(s, "op?") {
			t.Errorf("Op(%d) has no name", o)
		}
	}
}

func TestInstrPredicates(t *testing.T) {
	cases := []struct {
		op                                  Op
		branch, cond, indirect, call, falls bool
	}{
		{NOP, false, false, false, false, true},
		{MOV, false, false, false, false, true},
		{JMP, true, false, false, false, false},
		{JCC, true, true, false, false, true},
		{JIND, true, false, true, false, false},
		{CALL, true, false, false, true, true},
		{CALLIND, true, false, true, true, true},
		{RET, true, false, true, false, false},
		{HALT, true, false, false, false, false},
		{REPMOVS, false, false, false, false, true},
		{CPUID, false, false, false, false, true},
	}
	for _, c := range cases {
		in := &Instr{Op: c.op}
		if in.IsBranch() != c.branch {
			t.Errorf("%s.IsBranch() = %v", c.op, in.IsBranch())
		}
		if in.IsCondBranch() != c.cond {
			t.Errorf("%s.IsCondBranch() = %v", c.op, in.IsCondBranch())
		}
		if in.IsIndirect() != c.indirect {
			t.Errorf("%s.IsIndirect() = %v", c.op, in.IsIndirect())
		}
		if in.IsCall() != c.call {
			t.Errorf("%s.IsCall() = %v", c.op, in.IsCall())
		}
		if in.FallsThrough() != c.falls {
			t.Errorf("%s.FallsThrough() = %v", c.op, in.FallsThrough())
		}
	}
}

func TestIsRep(t *testing.T) {
	if !(&Instr{Op: REPMOVS}).IsRep() || !(&Instr{Op: REPSTOS}).IsRep() {
		t.Error("REP ops not recognized")
	}
	if (&Instr{Op: MOV}).IsRep() {
		t.Error("MOV recognized as REP")
	}
}

func TestEncodedSizeImmediateWidths(t *testing.T) {
	small := &Instr{Op: ADDI, Imm: 100}
	big := &Instr{Op: ADDI, Imm: 1000}
	if EncodedSize(small) >= EncodedSize(big) {
		t.Errorf("imm8 form (%d) not smaller than imm32 form (%d)", EncodedSize(small), EncodedSize(big))
	}
	if EncodedSize(&Instr{Op: MOVI, Imm: 1}) != 5 {
		t.Errorf("MOVI imm32 size = %d, want 5", EncodedSize(&Instr{Op: MOVI, Imm: 1}))
	}
	if EncodedSize(&Instr{Op: MOVI, Imm: 1 << 40}) != 10 {
		t.Errorf("MOVI imm64 size = %d, want 10", EncodedSize(&Instr{Op: MOVI, Imm: 1 << 40}))
	}
	if EncodedSize(&Instr{Op: LOAD, Disp: 0}) != 2 ||
		EncodedSize(&Instr{Op: LOAD, Disp: 100}) != 3 ||
		EncodedSize(&Instr{Op: LOAD, Disp: 1000}) != 6 {
		t.Error("LOAD displacement widths wrong")
	}
}

func TestEncodedSizePositive(t *testing.T) {
	f := func(op uint8, imm int64, disp int32) bool {
		in := &Instr{Op: Op(op % uint8(numOps)), Imm: imm, Disp: disp}
		sz := EncodedSize(in)
		return sz >= 1 && sz <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrNext(t *testing.T) {
	in := &Instr{Op: NOP, Addr: 0x1000, Size: 1}
	if in.Next() != 0x1001 {
		t.Errorf("Next() = 0x%x", in.Next())
	}
}

func TestBuilderLayout(t *testing.T) {
	b := NewBuilder("t")
	b.Label("main")
	i0 := b.Emit(Instr{Op: MOVI, Dst: EAX, Imm: 1})
	b.Label("loop")
	b.Emit(Instr{Op: ADDI, Dst: EAX, Imm: 1})
	j := b.Emit(Instr{Op: JMP})
	loopAddr, ok := b.LabelAddr("loop")
	if !ok {
		t.Fatal("loop label missing")
	}
	b.PatchTarget(j, loopAddr)
	b.Emit(Instr{Op: HALT})
	p, err := b.Build("main", 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != BaseAddr {
		t.Errorf("entry = 0x%x, want 0x%x", p.Entry, BaseAddr)
	}
	if p.Len() != 4 {
		t.Errorf("Len = %d, want 4", p.Len())
	}
	first := p.Instr(i0)
	if first.Addr != BaseAddr || first.Size != 5 {
		t.Errorf("first instr at 0x%x size %d", first.Addr, first.Size)
	}
	// Addresses are contiguous.
	for i := 1; i < p.Len(); i++ {
		prev := p.Instr(i - 1)
		if p.Instr(i).Addr != prev.Addr+uint64(prev.Size) {
			t.Errorf("instr %d not contiguous", i)
		}
	}
	if p.StaticBytes() == 0 {
		t.Error("StaticBytes = 0")
	}
}

func TestBuilderValidatesTargets(t *testing.T) {
	b := NewBuilder("bad")
	b.Emit(Instr{Op: JMP, Target: 0xdeadbeef})
	if _, err := b.Build("", 64); err == nil {
		t.Error("Build accepted wild branch target")
	}

	b2 := NewBuilder("empty")
	if _, err := b2.Build("", 64); err == nil {
		t.Error("Build accepted empty program")
	}

	b3 := NewBuilder("noentry")
	b3.Emit(Instr{Op: HALT})
	if _, err := b3.Build("missing", 64); err == nil {
		t.Error("Build accepted undefined entry label")
	}
}

func TestProgramAt(t *testing.T) {
	b := NewBuilder("t")
	b.Emit(Instr{Op: NOP})
	b.Emit(Instr{Op: HALT})
	p, err := b.Build("", 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.At(BaseAddr); !ok {
		t.Error("At(entry) failed")
	}
	if _, ok := p.At(BaseAddr + 12345); ok {
		t.Error("At accepted bogus address")
	}
	if got := p.MustAt(BaseAddr); got.Op != NOP {
		t.Errorf("MustAt returned %v", got.Op)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAt did not panic on bad address")
		}
	}()
	p.MustAt(0)
}

func TestSymbolForDeterministic(t *testing.T) {
	b := NewBuilder("t")
	b.Label("zeta")
	b.Label("alpha")
	b.Emit(Instr{Op: HALT})
	p, err := b.Build("", 64)
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := p.SymbolFor(BaseAddr)
	if !ok || sym != "alpha" {
		t.Errorf("SymbolFor = %q, %v; want alpha", sym, ok)
	}
	if _, ok := p.SymbolFor(0x1); ok {
		t.Error("SymbolFor found symbol at bogus address")
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Label("main")
	b.Emit(Instr{Op: MOVI, Dst: EAX, Imm: 7})
	b.Emit(Instr{Op: HALT})
	p, err := b.Build("main", 64)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Disassemble(0, ^uint64(0))
	if !strings.Contains(text, "main:") || !strings.Contains(text, "movi eax, 7") {
		t.Errorf("Disassemble output missing content:\n%s", text)
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MOV, Dst: EAX, Src: EBX}, "mov eax, ebx"},
		{Instr{Op: MOVI, Dst: ECX, Imm: -3}, "movi ecx, -3"},
		{Instr{Op: LOAD, Dst: EAX, Src: ESI, Disp: 4}, "load eax, [esi+4]"},
		{Instr{Op: STORE, Dst: EDI, Src: EAX, Disp: -2}, "store [edi-2], eax"},
		{Instr{Op: JCC, Cond: CondNE, Target: 0x10}, "jne 0x10"},
		{Instr{Op: PUSH, Src: EBP}, "push ebp"},
		{Instr{Op: POP, Dst: EBP}, "pop ebp"},
		{Instr{Op: JIND, Src: EAX}, "jind eax"},
		{Instr{Op: RET}, "ret"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
