package optim

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/workload"
)

// twoRunSets records the same program with two different thresholds,
// producing overlapping but distinct trace sets (a stand-in for two runs
// with different inputs).
func twoRunSets(t *testing.T) (*trace.Set, *trace.Set) {
	t.Helper()
	spec, _ := workload.ByName("181.mcf")
	p, err := workload.Generate(spec, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	record := func(threshold int) *trace.Set {
		s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: threshold})
		set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	return record(12), record(40)
}

func TestMergeUnionsEntries(t *testing.T) {
	a, b := twoRunSets(t)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}

	entries := make(map[uint64]bool)
	for _, e := range m.Entries() {
		entries[e] = true
	}
	for _, s := range []*trace.Set{a, b} {
		for _, e := range s.Entries() {
			if !entries[e] {
				t.Fatalf("entry 0x%x lost in merge", e)
			}
		}
	}
	if m.Len() < a.Len() || m.Len() < b.Len() {
		t.Errorf("merge smaller than an input: %d vs %d/%d", m.Len(), a.Len(), b.Len())
	}
	// The merged set builds a valid automaton.
	if err := core.Build(m).Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeKeepsLargerTrace(t *testing.T) {
	a, b := twoRunSets(t)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range m.Traces {
		ta, okA := a.ByEntry(tr.EntryAddr())
		tb, okB := b.ByEntry(tr.EntryAddr())
		want := 0
		if okA && ta.Len() > want {
			want = ta.Len()
		}
		if okB && tb.Len() > want {
			want = tb.Len()
		}
		if tr.Len() != want {
			t.Fatalf("entry 0x%x merged to %d TBBs, want %d", tr.EntryAddr(), tr.Len(), want)
		}
	}
}

func TestMergeDeterministic(t *testing.T) {
	a, b := twoRunSets(t)
	m1, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := core.Encode(core.Build(m1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.Encode(core.Build(m2))
	if err != nil {
		t.Fatal(err)
	}
	if string(e1) != string(e2) {
		t.Error("merge not deterministic")
	}
}

func TestMergeEmpty(t *testing.T) {
	m, err := Merge()
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Error("empty merge not empty")
	}
	a, _ := twoRunSets(t)
	got, err := Merge(a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != a.Len() {
		t.Error("single-set merge changed the set")
	}
}
