package optim

import "github.com/lsc-tea/tea/internal/trace"

// Merge unions trace sets recorded on different runs (for instance with
// different inputs) of the *same* program into one set — the multi-run
// half of the paper's "reuse in future executions" use case: the merged
// TEA covers the hot code of every profiled input.
//
// Entry conflicts (two sets anchoring a trace at the same address) keep
// the larger trace: more TBBs means more recorded paths through that
// region. Sets recorded under different strategies may be merged; the
// result carries the first set's strategy label.
func Merge(sets ...*trace.Set) (*trace.Set, error) {
	if len(sets) == 0 {
		return trace.NewSet("merged", nil), nil
	}
	out := trace.NewSet(sets[0].Strategy, sets[0])

	// Pick, per entry address, the biggest trace across all sets,
	// preserving first-seen order for determinism.
	var order []uint64
	best := make(map[uint64]*trace.Trace)
	for _, s := range sets {
		for _, t := range s.Traces {
			e := t.EntryAddr()
			if prev, ok := best[e]; !ok {
				best[e] = t
				order = append(order, e)
			} else if t.Len() > prev.Len() {
				best[e] = t
			}
		}
	}
	for _, e := range order {
		if _, err := copyTrace(out, best[e]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
