package optim

import (
	"testing"

	"github.com/lsc-tea/tea/internal/cfg"
	"github.com/lsc-tea/tea/internal/core"
	"github.com/lsc-tea/tea/internal/cpu"
	"github.com/lsc-tea/tea/internal/isa"
	"github.com/lsc-tea/tea/internal/pin"
	"github.com/lsc-tea/tea/internal/teatool"
	"github.com/lsc-tea/tea/internal/trace"
	"github.com/lsc-tea/tea/internal/workload"
)

// profiledRun records traces on a benchmark, then replays with profiling.
func profiledRun(t *testing.T) (*isa.Program, *trace.Set, *teatool.ProfileTool) {
	t.Helper()
	spec, _ := workload.ByName("181.mcf")
	p, err := workload.Generate(spec, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := trace.NewStrategy("mret", p, trace.Config{HotThreshold: 12})
	set, _, err := trace.Record(cpu.New(p), cfg.StarDBT, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Build(set)
	tool := teatool.NewProfileTool(a, core.ConfigGlobalLocal, nil)
	if _, err := pin.New().Run(p, tool, 0); err != nil {
		t.Fatal(err)
	}
	return p, set, tool
}

func TestPruneDropsColdTraces(t *testing.T) {
	p, set, tool := profiledRun(t)
	prof := tool.Profile()

	const minEnters = 24
	pruned, err := Prune(set, prof, minEnters)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() >= set.Len() {
		t.Fatalf("pruning removed nothing: %d -> %d traces", set.Len(), pruned.Len())
	}
	if pruned.Len() == 0 {
		t.Fatal("pruning removed everything")
	}
	// Every surviving trace was genuinely hot.
	a := tool.Replayer().Automaton()
	for _, tr := range pruned.Traces {
		orig, ok := set.ByEntry(tr.EntryAddr())
		if !ok {
			t.Fatalf("pruned set invented a trace at 0x%x", tr.EntryAddr())
		}
		id, _ := a.StateFor(orig.Head())
		if prof.StateCount(id) < minEnters {
			t.Fatalf("cold trace survived: %v entered %d times", tr, prof.StateCount(id))
		}
	}

	// The pruned automaton still passes invariants and keeps most of the
	// coverage on a fresh run.
	pa := core.Build(pruned)
	if err := pa.Check(); err != nil {
		t.Fatal(err)
	}
	full := replayCoverage(t, p, core.Build(set))
	lean := replayCoverage(t, p, pa)
	if lean < full-0.10 {
		t.Errorf("pruned coverage %.3f fell far below full %.3f", lean, full)
	}
	// And it is genuinely smaller on the wire.
	if core.EncodedSize(pa) >= core.EncodedSize(core.Build(set)) {
		t.Error("pruned automaton not smaller")
	}
}

func replayCoverage(t *testing.T, p *isa.Program, a *core.Automaton) float64 {
	t.Helper()
	tool := teatool.NewReplayTool(a, core.ConfigGlobalLocal)
	if _, err := pin.New().Run(p, tool, 0); err != nil {
		t.Fatal(err)
	}
	return tool.Stats().Coverage()
}

func TestPruneThresholdZeroKeepsEverything(t *testing.T) {
	_, set, tool := profiledRun(t)
	pruned, err := Prune(set, tool.Profile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() != set.Len() || pruned.NumTBBs() != set.NumTBBs() {
		t.Errorf("threshold 0 changed the set: %d/%d vs %d/%d",
			pruned.Len(), pruned.NumTBBs(), set.Len(), set.NumTBBs())
	}
}

func TestPruneDecodedMatchesLivePrune(t *testing.T) {
	p, set, tool := profiledRun(t)
	prof := tool.Profile()
	a := tool.Replayer().Automaton()

	// Serialize automaton + profile; decode on the "next run".
	data, err := core.EncodeWithProfile(a, prof)
	if err != nil {
		t.Fatal(err)
	}
	b, counts, err := core.DecodeWithProfile(data, cfg.NewCache(p, cfg.StarDBT))
	if err != nil {
		t.Fatal(err)
	}
	const min = 50
	live, err := Prune(set, prof, min)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := PruneDecoded(b, counts, min)
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != decoded.Len() {
		t.Errorf("live prune kept %d traces, decoded prune %d", live.Len(), decoded.Len())
	}
}
